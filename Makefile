GO ?= go

.PHONY: all build test vet race bench-smoke check bench-snapshot fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the small parallel matrix: proves the worker-pool fan-out
# runs end to end without paying for a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkParallelMatrix$$' -benchtime=1x .

check: vet build race bench-smoke

# Short coverage-guided runs of every fuzz target (native Go fuzzing; the
# committed corpora under testdata/fuzz are regression seeds). One -fuzz
# pattern per invocation — go test only fuzzes a single target at a time.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzUnpack$$' -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz '^FuzzPackUnpackRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz '^FuzzMasterFile$$' -fuzztime $(FUZZTIME) ./internal/zone

# Writes BENCH_parallel.json (benchmark name -> ns/op, B/op, allocs/op)
# for the hot-path micro-benchmarks. See scripts/bench_snapshot.sh.
bench-snapshot:
	./scripts/bench_snapshot.sh
