GO ?= go

.PHONY: all build test vet race bench-smoke check bench-snapshot scale-smoke scale-snapshot trace-snapshot trace-smoke fuzz wheel-snapshot bench-regress adversary-smoke transport-smoke campaign-smoke timeline-smoke report-regress observe-snapshot regen-tables size-guard

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the small parallel matrix: proves the worker-pool fan-out
# runs end to end without paying for a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkParallelMatrix$$' -benchtime=1x .

check: vet build race bench-smoke

# Short coverage-guided runs of every fuzz target (native Go fuzzing; the
# committed corpora under testdata/fuzz are regression seeds). One -fuzz
# pattern per invocation — go test only fuzzes a single target at a time.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzUnpack$$' -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz '^FuzzPackUnpackRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz '^FuzzMasterFile$$' -fuzztime $(FUZZTIME) ./internal/zone

# Writes BENCH_parallel.json (benchmark name -> ns/op, B/op, allocs/op)
# for the hot-path micro-benchmarks. See scripts/bench_snapshot.sh.
bench-snapshot:
	./scripts/bench_snapshot.sh

# Sharded-engine scale gate: one 100k-probe 4-shard DDoS run (spec H)
# under the race detector with a peak-RSS ceiling. Small cells keep the
# resident set inside CI-runner memory even with the race detector's
# shadow overhead. The ceiling tightened 6144 -> 4096 with the
# timing-wheel engine (DESIGN.md §13): this configuration peaked at
# ~1.9 GiB pre-wheel, and a 10^6-probe 8-shard run without the race
# detector peaks at ~2.9 GiB (BENCH_wheel.json).
SCALE_PROBES ?= 100000
SCALE_SHARDS ?= 4
SCALE_SHARD_PROBES ?= 2048
SCALE_RSS_MB ?= 4096
scale-smoke:
	SCALE_SMOKE=1 SCALE_PROBES=$(SCALE_PROBES) SCALE_SHARDS=$(SCALE_SHARDS) \
	SCALE_SHARD_PROBES=$(SCALE_SHARD_PROBES) SCALE_RSS_MB=$(SCALE_RSS_MB) \
	$(GO) test -race -run '^TestScaleSmoke$$' -timeout 60m -v .

# Writes BENCH_scale.json (probes/shards -> wall time, peak_rss_mb, vps)
# for the sharded engine, one process per configuration.
scale-snapshot:
	./scripts/bench_snapshot.sh scale

# Writes BENCH_wheel.json: the timing-wheel engine's committed baseline —
# hot-path micro-benchmarks plus the 10^6/10^7-probe sharded acceptance
# runs (peak_rss_mb, vps). Refresh it on the machine class CI uses when a
# deliberate perf change lands; the bench-regress gate diffs against it.
wheel-snapshot:
	./scripts/bench_snapshot.sh wheel

# Benchmark regression gate: re-runs the hot-path benches and fails if
# ns/op or allocs/op regressed beyond the tolerance vs BENCH_wheel.json
# (scale rows in the snapshot have no fresh counterpart and are skipped).
BENCH_REGRESS_TOL ?= 10%
bench-regress:
	$(GO) test -run '^$$' \
	    -bench '^Benchmark(WirePack|WireUnpack|CachePutGet|CachePutPeek|NetworkDelivery|ResolveThroughSim)$$' \
	    -benchmem -benchtime 1s . | \
	    $(GO) run ./cmd/benchsnap -compare BENCH_wheel.json -max-regress $(BENCH_REGRESS_TOL) >/dev/null

# Writes BENCH_trace.json: sharded spec-H runs with tracing off, sampled,
# and full. The "off" row is the nil-check-only baseline production runs
# pay; it must stay within 2% of the untraced engine's snapshot.
trace-snapshot:
	./scripts/bench_snapshot.sh trace

# End-to-end trace pipeline check: record a small traced DDoS run, then
# validate, analyze, and convert it. See scripts/trace_smoke.sh.
trace-smoke:
	./scripts/trace_smoke.sh

# Adversary-family gate: the three adversarial scenarios (NXNS
# amplification, off-path poisoning, reflection) small-scale, sharded,
# under the race detector, plus the adversarial resolver property axis.
adversary-smoke:
	$(GO) test -race -run '^TestAdversarySmoke$$' -v ./internal/experiment
	$(GO) test -race -run '^TestAdversarialReferralProperty$$' ./internal/recursive

# Transport-family gate: the DoTCP-fallback scenario (EDNS0 buffer sweep
# crossed with TCP-fallback coverage) sharded under the race detector,
# plus the truncation regression tests on both legs of the wire path.
transport-smoke:
	$(GO) test -race -run '^TestTransport(Smoke|ShardDeterminism)$$' -v ./internal/experiment
	$(GO) test -race -run 'Truncat|TCPFallback|UpstreamTC|EDNSSize' ./internal/recursive ./internal/stub

# Campaign/spec-DSL gate: spec validation + expansion + compile goldens
# for every examples/specs/*.json (fails when the schema drifts without
# regenerating the goldens), plus the small sharded campaign-runner
# suite (shard invariance, staged phases, error surfacing, cancellation)
# under the race detector, and one tiny end-to-end `dikes campaign` run
# of the staged multi-phase spec.
campaign-smoke:
	$(GO) test -race -v ./internal/spec
	$(GO) test -race -run '^TestCampaign|^TestMatrixCtx' -v ./internal/experiment
	$(GO) run ./cmd/dikes -probes 60 campaign examples/specs/staged.json >/dev/null

# Observability gate: the timeline pipeline (collection, exact merge,
# shard invariance, marks), the OpenMetrics exposition goldens, the
# progress-telemetry concurrency tests, and the offline diff engine,
# all under the race detector, plus one tiny end-to-end `dikes
# timeline` run with CSV/JSON export.
timeline-smoke:
	$(GO) test -race -v ./internal/timeline ./internal/regress
	$(GO) test -race -run 'OpenMetrics|Serve|Progress|Finish' -v ./internal/telemetry
	$(GO) test -race -run '^TestTimeline|^TestSpecMarks' -v ./internal/experiment
	tmp=$$(mktemp -d) && \
	    $(GO) run ./cmd/dikes -probes 120 -shards 2 timeline -exp H \
	        -bucket 10m -csv $$tmp/tl.csv -json $$tmp/tl.json >/dev/null && \
	    rm -rf $$tmp

# Report/timeline regression gate: re-runs the committed baseline
# configurations and diffs the fresh output against testdata/regress/
# with zero tolerance (both documents are deterministic, so any drift in
# any direction fails). Exercises `dikes diff`'s non-zero exit in CI.
# Refresh the baselines with the same commands when behaviour changes
# deliberately (see testdata/regress/README.md).
report-regress:
	tmp=$$(mktemp -d) && \
	    $(GO) run ./cmd/dikes -probes 300 -shards 4 -exp B,H \
	        -report $$tmp/report.json ddos >/dev/null && \
	    $(GO) run ./cmd/dikes diff testdata/regress/ddos_report.json $$tmp/report.json && \
	    $(GO) run ./cmd/dikes -probes 300 -shards 1 timeline -exp H \
	        -bucket 10m -json $$tmp/tl.json >/dev/null && \
	    $(GO) run ./cmd/dikes diff testdata/regress/timeline_H.json $$tmp/tl.json && \
	    rm -rf $$tmp

# Writes BENCH_observe.json: sharded spec-H runs with timeline
# collection off and on. The "off" row is the nil-check-only baseline;
# the "on" row must stay within ~2% of it (the series is fixed-size
# integer buckets, far off the hot path).
observe-snapshot:
	./scripts/bench_snapshot.sh observe

# Regenerates the committed report tables (paper_run*.txt) from
# examples/specs/ via the campaign runner, verifying -shards 1 and
# -shards 4 agree byte-for-byte first. See scripts/regen_tables.sh.
regen-tables:
	./scripts/regen_tables.sh

# Fails if any tracked or staged file exceeds the 1 MB budget (build
# artifacts and run logs do not belong in the tree).
size-guard:
	./scripts/size_guard.sh
