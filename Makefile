GO ?= go

.PHONY: all build test vet race bench-smoke check bench-snapshot

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the small parallel matrix: proves the worker-pool fan-out
# runs end to end without paying for a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkParallelMatrix$$' -benchtime=1x .

check: vet build race bench-smoke

# Writes BENCH_parallel.json (benchmark name -> ns/op, B/op, allocs/op)
# for the hot-path micro-benchmarks. See scripts/bench_snapshot.sh.
bench-snapshot:
	./scripts/bench_snapshot.sh
