// Scale harness for the sharded streaming engine: an env-gated smoke
// test with a peak-RSS ceiling (the CI scale job) and a benchmark that
// reports peak RSS and probe throughput as custom metrics (recorded into
// BENCH_scale.json by scripts/bench_snapshot.sh). Both run one
// configuration per process, because VmHWM is a process-lifetime
// high-water mark — mixing configurations in one process would attribute
// the largest run's peak to every run.
package dikes_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	dikes "repro"
)

// scaleSpec is the attack the scale harness emulates: the paper's
// experiment H (TTL 1800, 90% loss) — the configuration the 1M-VP
// acceptance run uses.
func scaleSpec(tb testing.TB) dikes.DDoSSpec {
	spec, ok := dikes.SpecByName("H")
	if !ok {
		tb.Fatal("spec H missing")
	}
	return spec
}

// envInt reads an integer knob with a default.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// peakRSSMB reads the process peak resident set (VmHWM) in MiB.
// Returns 0 on platforms without /proc.
func peakRSSMB() float64 {
	if runtime.GOOS != "linux" {
		return 0
	}
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// runScale executes one sharded spec-H run and returns the result plus
// wall time.
func runScale(tb testing.TB, probes, shards, shardProbes int) (*dikes.Outcome, time.Duration) {
	tb.Helper()
	start := time.Now()
	out, err := dikes.Run(context.Background(), dikes.DDoSScenario(scaleSpec(tb)), dikes.RunConfig{
		Probes: probes, Seed: 42, Shards: shards, ShardProbes: shardProbes,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return out, time.Since(start)
}

// TestScaleSmoke is the CI scale gate. Enable with SCALE_SMOKE=1; tune
// with SCALE_PROBES / SCALE_SHARDS / SCALE_SHARD_PROBES, and enforce a
// peak-RSS ceiling (MiB) with SCALE_RSS_MB (0 disables the ceiling).
// The Makefile's default ceiling is 4096 MiB for the 100k/4-shard race
// run; for calibration, the timing-wheel engine peaks at ~2.9 GiB on a
// 10^6-probe 8-shard run without the race detector (BENCH_wheel.json
// records peak_rss_mb per configuration).
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the scale smoke test")
	}
	probes := envInt("SCALE_PROBES", 100_000)
	shards := envInt("SCALE_SHARDS", 4)
	shardProbes := envInt("SCALE_SHARD_PROBES", 0)
	ceiling := envInt("SCALE_RSS_MB", 0)

	out, wall := runScale(t, probes, shards, shardProbes)
	if out.Report == nil {
		t.Fatal("no run report")
	}
	if !out.Report.OK() {
		t.Fatalf("invariants failed at scale: %+v", out.Report.FailedInvariants())
	}
	if got := out.DDoS.Table4.Probes; got != probes {
		t.Fatalf("run covered %d probes, want %d", got, probes)
	}
	rss := peakRSSMB()
	t.Logf("probes=%d shards=%d shard_probes=%d wall=%v peak_rss=%.0fMiB",
		probes, shards, shardProbes, wall.Round(time.Second), rss)
	if ceiling > 0 && rss > float64(ceiling) {
		t.Fatalf("peak RSS %.0f MiB exceeds ceiling %d MiB", rss, ceiling)
	}
}

// BenchmarkScaleShards runs one sharded spec-H configuration (from
// SCALE_PROBES / SCALE_SHARDS, small defaults otherwise) and reports
// peak RSS and probe throughput. Run with -benchtime=1x; one
// configuration per process for a meaningful peak_rss_mb.
func BenchmarkScaleShards(b *testing.B) {
	probes := envInt("SCALE_PROBES", 6_000)
	shards := envInt("SCALE_SHARDS", 4)
	shardProbes := envInt("SCALE_SHARD_PROBES", 0)
	b.Run(fmt.Sprintf("probes=%d/shards=%d", probes, shards), func(b *testing.B) {
		var wall time.Duration
		for i := 0; i < b.N; i++ {
			_, w := runScale(b, probes, shards, shardProbes)
			wall = w
		}
		b.ReportMetric(peakRSSMB(), "peak_rss_mb")
		if s := wall.Seconds(); s > 0 {
			b.ReportMetric(float64(probes)/s, "vps")
		}
	})
}
