package dikes_test

import (
	"fmt"
	"time"

	dikes "repro"
)

// ExampleCanonicalName shows the canonical domain-name form used
// throughout the library.
func ExampleCanonicalName() {
	fmt.Println(dikes.CanonicalName("WWW.Example.NL"))
	fmt.Println(dikes.CanonicalName(""))
	// Output:
	// www.example.nl.
	// .
}

// Example_resolve builds a one-zone world on the virtual clock and
// resolves a name through it. The simulation is deterministic, so the
// output is stable.
func Example_resolve() {
	clk := dikes.NewVirtualClock(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 1)

	z, err := dikes.ParseZoneString(`
$ORIGIN example.nl.
$TTL 300
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::80
`, "")
	if err != nil {
		panic(err)
	}
	dikes.NewAuthoritative(z).Attach(net, "192.0.2.1")

	r := dikes.NewResolver(clk, dikes.ResolverConfig{
		RootHints: []dikes.ServerHint{{Name: "ns1.example.nl.", Addr: "192.0.2.1"}},
	})
	r.Attach(net, "10.0.0.53")

	r.Resolve("www.example.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) {
		fmt.Printf("%s (TTL %d, rcode %s)\n",
			res.Answers[0].Data, res.Answers[0].TTL, res.RCode)
	})
	clk.Run()
	// Output:
	// 2001:db8::80 (TTL 300, rcode NOERROR)
}

// Example_ddos emulates a complete authoritative failure and shows the
// cache riding it out until the TTL expires.
func Example_ddos() {
	clk := dikes.NewVirtualClock(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 1)
	z, _ := dikes.ParseZoneString(`
$ORIGIN shop.nl.
$TTL 120
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::443
`, "")
	dikes.NewAuthoritative(z).Attach(net, "192.0.2.1")
	r := dikes.NewResolver(clk, dikes.ResolverConfig{
		RootHints: []dikes.ServerHint{{Name: "ns1.shop.nl.", Addr: "192.0.2.1"}},
	})
	r.Attach(net, "10.0.0.53")

	lookup := func(label string) {
		r.Resolve("www.shop.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) {
			switch {
			case res.ServFail:
				fmt.Printf("%s: SERVFAIL\n", label)
			case res.FromCache:
				fmt.Printf("%s: answered from cache\n", label)
			default:
				fmt.Printf("%s: answered by the authoritative\n", label)
			}
		})
		clk.RunFor(30 * time.Second)
	}

	lookup("before the attack")
	dikes.ScheduleAttack(clk, net, dikes.Attack{
		Targets: []dikes.Addr{"192.0.2.1"}, Loss: 1, Start: time.Second,
	})
	lookup("attack, cache warm ") // within the 120 s TTL
	clk.RunFor(2 * time.Minute)   // let the cache expire
	lookup("attack, cache cold ")
	// Output:
	// before the attack: answered by the authoritative
	// attack, cache warm : answered from cache
	// attack, cache cold : SERVFAIL
}
