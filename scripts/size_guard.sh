#!/bin/sh
# size_guard.sh — fail if any tracked (or staged) file exceeds the size
# budget. Guards against committing build artifacts and run logs (a
# repro.test binary and a rec2.log once slipped in); report tables,
# snapshots, and fuzz corpora are all far below the limit.
set -eu

LIMIT_BYTES="${SIZE_GUARD_LIMIT:-1048576}" # 1 MB

fail=0
# Tracked files plus anything staged but not yet committed.
for f in $(git ls-files; git diff --cached --name-only --diff-filter=A); do
    [ -f "$f" ] || continue
    size=$(wc -c <"$f")
    if [ "$size" -gt "$LIMIT_BYTES" ]; then
        echo "size_guard: $f is $size bytes (limit $LIMIT_BYTES)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "size_guard: FAILED — files above the size budget" >&2
    exit 1
fi
echo "size_guard: OK (limit $LIMIT_BYTES bytes)"
