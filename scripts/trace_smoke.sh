#!/bin/sh
# End-to-end check of the tracing pipeline (the CI trace-smoke job):
# record a small traced DDoS run, validate the JSONL trace structurally,
# run the failure analysis, convert to Chrome trace_event JSON, and
# validate that too. Everything is offline after the first step.
set -eu

cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

echo "== record: traced 120-probe spec-H run ==" >&2
go run ./cmd/dikes -probes 120 -exp H \
    -trace "$dir/run.jsonl" -trace-chrome "$dir/run-chrome.json" \
    -progress ddos >/dev/null

echo "== validate JSONL ==" >&2
go run ./cmd/dikes trace -validate "$dir/run.jsonl"

echo "== summary ==" >&2
go run ./cmd/dikes trace "$dir/run.jsonl"

echo "== first-failure analysis ==" >&2
go run ./cmd/dikes trace -fail "$dir/run.jsonl"

echo "== Chrome conversion (offline) matches the run's own export ==" >&2
go run ./cmd/dikes trace -chrome "$dir/converted.json" "$dir/run.jsonl"
go run ./cmd/dikes trace -validate-chrome "$dir/converted.json"
go run ./cmd/dikes trace -validate-chrome "$dir/run-chrome.json"

echo "trace smoke OK" >&2
