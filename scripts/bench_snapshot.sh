#!/bin/sh
# Records the hot-path micro-benchmarks into BENCH_parallel.json at the
# repository root. Usage: scripts/bench_snapshot.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"

go test -run '^$' \
    -bench '^Benchmark(WirePack|WireUnpack|CachePutGet|CachePutPeek|NetworkDelivery|ResolveThroughSim|ParallelMatrix)$' \
    -benchmem -benchtime "$benchtime" . |
    go run ./cmd/benchsnap > BENCH_parallel.json

echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json
