#!/bin/sh
# Records benchmark snapshots at the repository root.
#
#   scripts/bench_snapshot.sh [benchtime]     hot-path micro-benchmarks
#                                             -> BENCH_parallel.json
#   scripts/bench_snapshot.sh scale [matrix]  sharded scale runs
#                                             -> BENCH_scale.json
#   scripts/bench_snapshot.sh trace [benchtime]  tracing overhead
#                                             -> BENCH_trace.json
#   scripts/bench_snapshot.sh observe [benchtime]  timeline overhead
#                                             -> BENCH_observe.json
#   scripts/bench_snapshot.sh wheel [benchtime]  timing-wheel engine gate
#                                             -> BENCH_wheel.json
#
# The scale matrix is a space-separated list of probes:shards pairs
# (default: $SCALE_MATRIX or "100000:1 100000:4 1000000:8"). Each
# configuration runs in its own process because peak_rss_mb comes from
# VmHWM, a process-lifetime high-water mark.
#
# The wheel snapshot combines the hot-path micro-benchmarks with
# full-scale sharded runs ($WHEEL_MATRIX, default "1000000:8
# 10000000:8") in one file: it is the committed baseline the CI
# bench-regress job compares fresh bench runs against, and the record of
# the 10^6/10^7-probe acceptance runs (peak_rss_mb, vps).
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "scale" ]; then
    matrix="${2:-${SCALE_MATRIX:-100000:1 100000:4 1000000:8}}"
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    for cfg in $matrix; do
        probes="${cfg%%:*}"
        shards="${cfg##*:}"
        echo "scale run: probes=$probes shards=$shards" >&2
        SCALE_PROBES="$probes" SCALE_SHARDS="$shards" \
            go test -run '^$' -bench '^BenchmarkScaleShards$' \
            -benchtime 1x -timeout 0 . >>"$tmp"
    done
    go run ./cmd/benchsnap <"$tmp" >BENCH_scale.json
    echo "wrote BENCH_scale.json:"
    cat BENCH_scale.json
    exit 0
fi

if [ "${1:-}" = "wheel" ]; then
    benchtime="${2:-1s}"
    matrix="${WHEEL_MATRIX:-1000000:8 10000000:8}"
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    go test -run '^$' \
        -bench '^Benchmark(WirePack|WireUnpack|CachePutGet|CachePutPeek|NetworkDelivery|ResolveThroughSim)$' \
        -benchmem -benchtime "$benchtime" . >"$tmp"
    for cfg in $matrix; do
        probes="${cfg%%:*}"
        shards="${cfg##*:}"
        echo "wheel scale run: probes=$probes shards=$shards" >&2
        SCALE_PROBES="$probes" SCALE_SHARDS="$shards" \
            go test -run '^$' -bench '^BenchmarkScaleShards$' \
            -benchtime 1x -timeout 0 . >>"$tmp"
    done
    go run ./cmd/benchsnap <"$tmp" >BENCH_wheel.json
    echo "wrote BENCH_wheel.json:"
    cat BENCH_wheel.json
    exit 0
fi

if [ "${1:-}" = "trace" ]; then
    benchtime="${2:-3x}"
    go test -run '^$' -bench '^BenchmarkTraceOverhead$' \
        -benchmem -benchtime "$benchtime" -timeout 0 . |
        go run ./cmd/benchsnap > BENCH_trace.json
    echo "wrote BENCH_trace.json:"
    cat BENCH_trace.json
    exit 0
fi

if [ "${1:-}" = "observe" ]; then
    benchtime="${2:-3x}"
    go test -run '^$' -bench '^BenchmarkTimelineOverhead$' \
        -benchmem -benchtime "$benchtime" -timeout 0 . |
        go run ./cmd/benchsnap > BENCH_observe.json
    echo "wrote BENCH_observe.json:"
    cat BENCH_observe.json
    exit 0
fi

benchtime="${1:-1s}"

go test -run '^$' \
    -bench '^Benchmark(WirePack|WireUnpack|CachePutGet|CachePutPeek|NetworkDelivery|ResolveThroughSim|ParallelMatrix)$' \
    -benchmem -benchtime "$benchtime" . |
    go run ./cmd/benchsnap > BENCH_parallel.json

echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json
