#!/bin/sh
# Regenerate the committed report tables (paper_run.txt,
# paper_run_adversary.txt, paper_run_transport.txt,
# paper_run_timeline.txt) from the declarative scenario specs in
# examples/specs/ via the campaign runner.
#
# Each campaign is run twice — at -shards 1 and -shards 4 — and the two
# outputs are diffed (minus the wall-time line) to enforce the engine's
# determinism contract before anything is written. The committed file is
# the -shards 1 output with the wall-time line stripped and an invocation
# header prepended.
set -eu

cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

regen() {
    out="$1"
    specs="$2"
    note="$3"

    echo "== campaign $specs (shards 1) ==" >&2
    go run ./cmd/dikes campaign "$specs" | grep -v '^total wall time' >"$dir/s1.txt"
    echo "== campaign $specs (shards 4) ==" >&2
    go run ./cmd/dikes -shards 4 campaign "$specs" | grep -v '^total wall time' >"$dir/s4.txt"
    diff "$dir/s1.txt" "$dir/s4.txt" >&2

    {
        echo "# dikes campaign — committed report tables"
        echo "#"
        echo "# Invocation: go run ./cmd/dikes campaign $specs"
        echo "# Output below is byte-identical with -shards 4 (verified by diff,"
        echo "# excluding the wall-time line), per the engine's determinism contract."
        if [ -n "$note" ]; then
            echo "#"
            echo "# $note"
        fi
        echo "#"
        echo ""
        cat "$dir/s1.txt"
    } >"$out"
    echo "wrote $out" >&2
}

regen paper_run.txt examples/specs/paper \
    "Earlier revisions of this file were produced by the pre-sharding
# monolithic engine (-shards 0), whose RNG stream differs from the
# sharded engine; counts shifted slightly when the campaign runner
# standardised on the sharded path (-shards >= 1)."
regen paper_run_adversary.txt examples/specs/adversary ""
regen paper_run_transport.txt examples/specs/transport.json ""
regen paper_run_timeline.txt examples/specs/timeline.json \
    "Per-bucket simulated-time series (observability.timeline): answer/
# failure/stale-serve/retry counts across the attack event, annotated
# with the phase boundaries. The sparkline is the answer-rate series."
