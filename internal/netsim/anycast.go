package netsim

import "hash/fnv"

// Anycast support (§2.2 of the paper): one service address announced from
// multiple sites, with BGP-like catchments mapping each source to a stable
// site. The paper's §8 discussion — why the Root rode out its attacks
// while a DNS provider's customers suffered — depends on this replication
// model, and the RootVsCDN scenario exercises it.

// anycastGroup routes one shared address to its member sites.
type anycastGroup struct {
	sites     []Addr
	catchment func(src Addr) int
}

// BindAnycast announces addr from every site in sites (each already bound
// with Bind). Packets to addr are delivered to the catchment-selected
// site; replies must be sent from addr (use the returned Port), as anycast
// services do. A nil catchment assigns sources to sites by stable hash.
//
// Per-site inbound loss still applies at the site's own address, so an
// attack can saturate one site while others stay clean — the uneven
// per-site damage observed in the root events [23].
func (n *Network) BindAnycast(addr Addr, sites []Addr, catchment func(src Addr) int) *Port {
	if len(sites) == 0 {
		panic("netsim: anycast group needs at least one site")
	}
	if catchment == nil {
		catchment = func(src Addr) int {
			h := fnv.New32a()
			h.Write([]byte(src))
			h.Write([]byte(addr))
			return int(h.Sum32() % uint32(len(sites)))
		}
	}
	group := &anycastGroup{sites: append([]Addr(nil), sites...), catchment: catchment}
	n.mu.Lock()
	if n.anycast == nil {
		n.anycast = make(map[Addr]*anycastGroup)
	}
	n.anycast[addr] = group
	n.mu.Unlock()
	return &Port{net: n, addr: addr}
}

// anycastSite resolves dst to the concrete site for src, if dst is an
// anycast address. The site's own inbound loss governs the drop decision.
func (n *Network) anycastSite(src, dst Addr) (Addr, bool) {
	group, ok := n.anycast[dst]
	if !ok {
		return dst, false
	}
	return group.sites[group.catchment(src)], true
}
