package netsim

import (
	"testing"
	"time"
)

// TestTCPHandshakeLatency checks the connection-setup model: a cold pair
// pays one extra round trip (SYN + SYN-ACK) before the data segment, a
// warm connection rides the plain one-way delay, and an idle connection
// expires back to cold.
func TestTCPHandshakeLatency(t *testing.T) {
	clk, net := newNet()
	const oneWay = 10 * time.Millisecond
	net.SetPairDelay("a", "b", oneWay)

	var arrivals []time.Time
	net.BindTCP("b", func(Addr, []byte) { arrivals = append(arrivals, clk.Now()) })

	send := func() {
		net.SendTCP("a", "b", []byte("q"))
		clk.Run()
	}

	send() // cold: handshake + data = 3x one-way
	if got, want := arrivals[0].Sub(epoch), 3*oneWay; got != want {
		t.Errorf("cold delivery after %v, want %v", got, want)
	}

	mark := clk.Now()
	send() // warm: data segment only
	if got, want := arrivals[1].Sub(mark), oneWay; got != want {
		t.Errorf("warm delivery after %v, want %v", got, want)
	}

	// The reply direction shares the initiator's connection.
	net.BindTCP("a", func(Addr, []byte) { arrivals = append(arrivals, clk.Now()) })
	mark = clk.Now()
	net.SendTCP("b", "a", []byte("r"))
	clk.Run()
	if got, want := arrivals[2].Sub(mark), oneWay; got != want {
		t.Errorf("reply delivery after %v, want %v", got, want)
	}

	// Past the idle timeout the pair is cold again.
	clk.RunFor(tcpIdleTimeout + time.Second)
	mark = clk.Now()
	send()
	if got, want := arrivals[3].Sub(mark), 3*oneWay; got != want {
		t.Errorf("post-idle delivery after %v, want %v", got, want)
	}

	if s := net.Stats(); s.TCPConnects != 2 || s.TCPSent != 4 || s.TCPDelivered != 4 {
		t.Errorf("stats = %+v", s)
	}
}

// TestTCPSeparateLoss checks that the TCP plane has its own loss dial: a
// UDP flood drop rate leaves TCP untouched, and vice versa.
func TestTCPSeparateLoss(t *testing.T) {
	clk, net := newNet()
	var udp, tcp int
	net.Bind("b", func(Addr, []byte) { udp++ })
	net.BindTCP("b", func(Addr, []byte) { tcp++ })

	net.SetInboundLoss("b", 1) // UDP dead, TCP alive
	for i := 0; i < 10; i++ {
		net.Send("a", "b", []byte("u"))
		net.SendTCP("a", "b", []byte("t"))
	}
	clk.Run()
	if udp != 0 || tcp != 10 {
		t.Fatalf("udp=%d tcp=%d with UDP loss armed, want 0/10", udp, tcp)
	}

	net.SetInboundLoss("b", 0)
	net.SetInboundLossTCP("b", 1) // TCP dead, UDP alive
	for i := 0; i < 10; i++ {
		net.Send("a", "b", []byte("u"))
		net.SendTCP("a", "b", []byte("t"))
	}
	clk.Run()
	if udp != 10 || tcp != 10 {
		t.Fatalf("udp=%d tcp=%d with TCP loss armed, want 10/10", udp, tcp)
	}
	s := net.Stats()
	if s.TCPDropped != 10 || s.TCPDelivered != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.Dropped != 10 || s.Delivered != 10 {
		t.Errorf("udp stats = %+v", s)
	}
}

// TestPathMTUDropsOversizedUDP checks the collapsed fragmentation model:
// UDP datagrams over the path MTU are dropped at arrival, TCP ignores
// the limit, and clearing the limit restores delivery.
func TestPathMTUDropsOversizedUDP(t *testing.T) {
	clk, net := newNet()
	var udp, tcp int
	net.Bind("b", func(Addr, []byte) { udp++ })
	net.BindTCP("b", func(Addr, []byte) { tcp++ })

	net.SetPathMTU("b", 100)
	if got := net.PathMTU("b"); got != 100 {
		t.Fatalf("PathMTU = %d", got)
	}
	net.Send("a", "b", make([]byte, 101)) // over: dropped
	net.Send("a", "b", make([]byte, 100)) // exactly at: delivered
	net.SendTCP("a", "b", make([]byte, 4096))
	clk.Run()
	if udp != 1 || tcp != 1 {
		t.Fatalf("udp=%d tcp=%d, want 1/1", udp, tcp)
	}
	s := net.Stats()
	if s.MTUDropped != 1 || s.Dropped != 1 {
		t.Errorf("stats = %+v", s)
	}

	net.SetPathMTU("b", 0)
	net.Send("a", "b", make([]byte, 4096))
	clk.Run()
	if udp != 2 {
		t.Errorf("delivery after clearing MTU: udp=%d, want 2", udp)
	}
}

// TestTCPDeadHost checks accounting for messages to an unbound TCP
// address.
func TestTCPDeadHost(t *testing.T) {
	clk, net := newNet()
	net.SendTCP("a", "nowhere", []byte("q"))
	clk.Run()
	if s := net.Stats(); s.TCPDead != 1 || s.TCPDelivered != 0 {
		t.Errorf("stats = %+v", s)
	}
}
