package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/clock"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func newNet() (*clock.Virtual, *Network) {
	clk := clock.NewVirtual(epoch)
	return clk, New(clk, 42)
}

func TestDelivery(t *testing.T) {
	clk, net := newNet()
	var got []byte
	var from Addr
	net.Bind("b", func(src Addr, payload []byte) { got, from = payload, src })
	net.Bind("a", nil)
	net.Send("a", "b", []byte("hello"))
	clk.Run()
	if string(got) != "hello" || from != "a" {
		t.Fatalf("got %q from %q", got, from)
	}
	s := net.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Dropped != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLatencyIsPositiveAndStablePerPair(t *testing.T) {
	clk, net := newNet()
	var times []time.Time
	net.Bind("b", func(Addr, []byte) { times = append(times, clk.Now()) })
	for i := 0; i < 10; i++ {
		net.Send("a", "b", nil)
	}
	clk.Run()
	if len(times) != 10 {
		t.Fatalf("delivered %d", len(times))
	}
	var min, max time.Duration
	for _, at := range times {
		d := at.Sub(epoch)
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// Jitter is bounded to base/6, so max/min stays within ~17%.
	if float64(max) > float64(min)*1.25 {
		t.Errorf("per-pair delay too variable: min %v max %v", min, max)
	}
}

func TestSetPairDelay(t *testing.T) {
	clk, net := newNet()
	var at time.Time
	net.Bind("b", func(Addr, []byte) { at = clk.Now() })
	net.SetPairDelay("a", "b", 7*time.Millisecond)
	net.Send("a", "b", nil)
	clk.Run()
	if got := at.Sub(epoch); got != 7*time.Millisecond {
		t.Errorf("delay = %v, want 7ms", got)
	}
	// And the reverse direction.
	var at2 time.Time
	net.Bind("a", func(Addr, []byte) { at2 = clk.Now() })
	net.Send("b", "a", nil)
	clk.Run()
	if got := at2.Sub(at); got != 7*time.Millisecond {
		t.Errorf("reverse delay = %v, want 7ms", got)
	}
}

func TestInboundLossRate(t *testing.T) {
	clk, net := newNet()
	delivered := 0
	net.Bind("b", func(Addr, []byte) { delivered++ })
	net.SetInboundLoss("b", 0.9)
	const total = 5000
	for i := 0; i < total; i++ {
		net.Send("a", "b", nil)
	}
	clk.Run()
	rate := 1 - float64(delivered)/total
	if math.Abs(rate-0.9) > 0.02 {
		t.Errorf("observed loss %.3f, want ~0.9", rate)
	}
	s := net.Stats()
	if s.Dropped+s.Delivered != total {
		t.Errorf("dropped %d + delivered %d != %d", s.Dropped, s.Delivered, total)
	}
}

func TestLossAppliedAtArrival(t *testing.T) {
	clk, net := newNet()
	delivered := 0
	net.Bind("b", func(Addr, []byte) { delivered++ })
	net.SetPairDelay("a", "b", 10*time.Millisecond)
	// Packet is in flight when loss switches to 100%.
	net.Send("a", "b", nil)
	clk.RunFor(time.Millisecond)
	net.SetInboundLoss("b", 1)
	clk.Run()
	if delivered != 0 {
		t.Error("packet in flight should have been dropped at arrival")
	}
}

func TestLossZeroAndOne(t *testing.T) {
	clk, net := newNet()
	delivered := 0
	net.Bind("b", func(Addr, []byte) { delivered++ })
	net.SetInboundLoss("b", 1)
	for i := 0; i < 100; i++ {
		net.Send("a", "b", nil)
	}
	clk.Run()
	if delivered != 0 {
		t.Errorf("100%% loss delivered %d packets", delivered)
	}
	net.SetInboundLoss("b", 0)
	if got := net.InboundLoss("b"); got != 0 {
		t.Errorf("InboundLoss = %v after reset", got)
	}
	for i := 0; i < 100; i++ {
		net.Send("a", "b", nil)
	}
	clk.Run()
	if delivered != 100 {
		t.Errorf("0%% loss delivered %d/100", delivered)
	}
}

func TestTapSeesDroppedPackets(t *testing.T) {
	clk, net := newNet()
	net.Bind("b", func(Addr, []byte) {})
	net.SetInboundLoss("b", 1)
	var events []Event
	net.AddTap(func(ev Event) { events = append(events, ev) })
	net.Send("a", "b", []byte("q"))
	clk.Run()
	if len(events) != 1 {
		t.Fatalf("tap saw %d events, want 1", len(events))
	}
	ev := events[0]
	if !ev.Dropped || ev.Src != "a" || ev.Dst != "b" || string(ev.Payload) != "q" {
		t.Errorf("event = %+v", ev)
	}
}

func TestDeadDestination(t *testing.T) {
	clk, net := newNet()
	net.Send("a", "nowhere", nil)
	clk.Run()
	if s := net.Stats(); s.Dead != 1 {
		t.Errorf("Dead = %d, want 1", s.Dead)
	}
	// Detach makes a live host dead.
	net.Bind("b", func(Addr, []byte) { t.Error("detached host received packet") })
	net.Detach("b")
	net.Send("a", "b", nil)
	clk.Run()
	if s := net.Stats(); s.Dead != 2 {
		t.Errorf("Dead = %d, want 2", s.Dead)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (delivered int) {
		clk := clock.NewVirtual(epoch)
		net := New(clk, 7)
		net.Bind("b", func(Addr, []byte) { delivered++ })
		net.SetInboundLoss("b", 0.5)
		for i := 0; i < 1000; i++ {
			net.Send("a", "b", nil)
		}
		clk.Run()
		return
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave different outcomes: %d vs %d", a, b)
	}
}

func TestPortSend(t *testing.T) {
	clk, net := newNet()
	var from Addr
	net.Bind("b", func(src Addr, _ []byte) { from = src })
	p := net.Bind("a", nil)
	if p.Addr() != "a" {
		t.Errorf("Addr = %q", p.Addr())
	}
	p.Send("b", nil)
	clk.Run()
	if from != "a" {
		t.Errorf("src = %q, want a", from)
	}
}

func TestBadLossPanics(t *testing.T) {
	_, net := newNet()
	defer func() {
		if recover() == nil {
			t.Error("SetInboundLoss(1.5) did not panic")
		}
	}()
	net.SetInboundLoss("b", 1.5)
}
