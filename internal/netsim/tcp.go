// TCP plane of the simulated network (DESIGN.md §15). DNS-over-TCP in
// this simulator is message-level like the UDP plane — framing is the
// transport daemons' concern (internal/udprun) — but it models the three
// properties that matter for DoTCP-fallback experiments:
//
//   - connection-setup cost: the first message between a host pair pays
//     one extra round trip (SYN / SYN-ACK) before the data segment, and
//     an idle connection expires so later exchanges pay it again;
//   - higher per-query latency: even warm connections ride the same
//     one-way delay model as UDP, so a TC→TCP retry always costs at
//     least one additional RTT on top of the truncated UDP exchange;
//   - separate capacity under flood: inbound loss for the TCP plane is
//     its own dial (SetInboundLossTCP), so a volumetric UDP flood at an
//     authoritative can leave TCP usable (or a state-exhaustion attack
//     can do the opposite). A lost TCP exchange is not retransmitted by
//     the simulator — the loss probability models the whole exchange
//     failing under flood, and the application-level timeout recovers.
//
// TCP arrivals are not shown to taps: taps exist to count queries
// arriving at the authoritatives "before the simulated DDoS drop", and
// the conservation invariants built on them are defined over the UDP
// plane. TCP traffic is accounted by its own Stats counters instead.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// tcpIdleTimeout is how long an established simulated connection stays
// warm after its last message; afterwards the next exchange pays the
// handshake again. RFC 7766 recommends resolvers keep idle connections
// open for a few seconds to tens of seconds.
const tcpIdleTimeout = 30 * time.Second

// connKey normalizes a host pair so both directions of an exchange share
// one simulated connection (the responder answers on the connection the
// initiator opened, it does not dial back).
func connKey(a, b Addr) [2]Addr {
	if b < a {
		a, b = b, a
	}
	return [2]Addr{a, b}
}

// BindTCP attaches recv as addr's TCP-plane receiver and returns a
// TCPPort for sending from it. The UDP and TCP planes are separate
// namespaces: binding one does not bind the other.
func (n *Network) BindTCP(addr Addr, recv func(src Addr, payload []byte)) *TCPPort {
	if addr == "" {
		panic("netsim: empty address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tcpHosts == nil {
		n.tcpHosts = make(map[Addr]func(src Addr, payload []byte), 16)
	}
	n.tcpHosts[addr] = recv
	return &TCPPort{net: n, addr: addr}
}

// DetachTCP removes the TCP-plane host at addr.
func (n *Network) DetachTCP(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.tcpHosts, addr)
}

// SetInboundLossTCP sets the probability in [0,1] that a TCP exchange
// arriving at dst fails. It is independent of the UDP-plane loss: a
// query flood saturating an authoritative's UDP receive path does not
// necessarily exhaust its TCP listener, and vice versa.
func (n *Network) SetInboundLossTCP(dst Addr, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("netsim: tcp loss probability %v out of range", p))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if p == 0 {
		delete(n.tcpLoss, dst)
	} else {
		if n.tcpLoss == nil {
			n.tcpLoss = make(map[Addr]float64)
		}
		n.tcpLoss[dst] = p
	}
}

// InboundLossTCP returns the current TCP-plane loss probability for dst.
func (n *Network) InboundLossTCP(dst Addr) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tcpLoss[dst]
}

// SetPathMTU limits the UDP payload size deliverable to dst: larger
// datagrams are dropped at arrival (the collapsed model of
// fragmentation loss — fragments filtered or never reassembled), counted
// in Stats.MTUDropped as well as Dropped. Zero removes the limit. The
// TCP plane ignores path MTU: a byte stream segments below it.
func (n *Network) SetPathMTU(dst Addr, bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: path mtu %d out of range", bytes))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if bytes == 0 {
		delete(n.mtu, dst)
	} else {
		if n.mtu == nil {
			n.mtu = make(map[Addr]int)
		}
		n.mtu[dst] = bytes
	}
}

// PathMTU returns the UDP payload limit toward dst (0 = unlimited).
func (n *Network) PathMTU(dst Addr) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mtu[dst]
}

// SendTCP schedules delivery of payload from src to dst over the TCP
// plane. A cold host pair pays one extra round trip for the handshake
// before the data segment; the connection then stays warm for
// tcpIdleTimeout after its last message. Like Send, the payload is
// copied before returning and the loss decision is made at arrival.
func (n *Network) SendTCP(src, dst Addr, payload []byte) {
	n.mu.Lock()
	oneWay := n.pairDelayLocked(src, dst)
	delay := oneWay
	key := connKey(src, dst)
	now := n.clk.Now()
	connected := false
	if exp, ok := n.tcpConns[key]; !ok || now.After(exp) {
		delay += 2 * oneWay // SYN + SYN-ACK before the data segment
		connected = true
		n.stats.TCPConnects++
	}
	if n.tcpConns == nil {
		n.tcpConns = make(map[[2]Addr]time.Time, 16)
	}
	n.tcpConns[key] = now.Add(delay + tcpIdleTimeout)
	n.stats.TCPSent++
	n.mu.Unlock()

	if connected {
		if tr := n.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvTCPConnect,
				Probe: trace.ProbeFromWire(payload),
				Src:   string(src), Dst: string(dst)})
		}
	}
	if n.argClk != nil {
		p := packetPool.Get().(*packet)
		p.buf = append(p.buf[:0], payload...)
		p.net, p.src, p.dst, p.payload, p.tcp = n, src, dst, p.buf, true
		n.argClk.AfterFuncArg(delay, deliverPacket, p)
		return
	}
	buf := append([]byte(nil), payload...)
	n.clk.AfterFunc(delay, func() { n.arriveTCP(src, dst, buf) })
}

// arriveTCP applies the TCP-plane loss dial and hands the message to the
// bound receiver. Lazy hosts materialize exactly as on the UDP plane, so
// population builders need no TCP-specific wiring.
func (n *Network) arriveTCP(src, dst Addr, payload []byte) {
	n.mu.Lock()
	loss := n.tcpLoss[dst]
	dropped := loss > 0 && n.rng.Float64() < loss
	recv := n.tcpHosts[dst]
	if recv == nil && !dropped && n.lazy != nil {
		if h := n.lazy[dst]; h != nil {
			delete(n.lazy, dst)
			n.mu.Unlock()
			h.Materialize()
			n.mu.Lock()
			recv = n.tcpHosts[dst]
		}
	}
	switch {
	case dropped:
		n.stats.TCPDropped++
	case recv == nil:
		n.stats.TCPDead++
	default:
		n.stats.TCPDelivered++
	}
	n.mu.Unlock()

	if tr := n.trace; tr != nil {
		t := trace.EvNetDeliver
		if dropped {
			t = trace.EvNetDrop
		}
		tr.Emit(trace.Event{Type: t, Probe: trace.ProbeFromWire(payload),
			Src: string(src), Dst: string(dst)})
	}
	if !dropped && recv != nil {
		recv(src, payload)
	}
}

// TCPPort is a bound TCP-plane address on the network.
type TCPPort struct {
	net  *Network
	addr Addr
}

// Addr returns the bound address.
func (p *TCPPort) Addr() Addr { return p.addr }

// Send transmits payload from this port's address to dst over TCP.
func (p *TCPPort) Send(dst Addr, payload []byte) {
	p.net.SendTCP(p.addr, dst, payload)
}

var _ Conn = (*TCPPort)(nil)
