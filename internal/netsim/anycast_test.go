package netsim

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestAnycastCatchmentIsStable(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := New(clk, 1)
	received := map[Addr]int{}
	for _, site := range []Addr{"site-1", "site-2", "site-3"} {
		site := site
		net.Bind(site, func(Addr, []byte) { received[site]++ })
	}
	net.BindAnycast("9.9.9.9", []Addr{"site-1", "site-2", "site-3"}, nil)

	// The same source always lands at the same site.
	for i := 0; i < 10; i++ {
		net.Send("client-a", "9.9.9.9", nil)
	}
	clk.Run()
	sites := 0
	for _, n := range received {
		if n > 0 {
			sites++
			if n != 10 {
				t.Errorf("catchment unstable: %v", received)
			}
		}
	}
	if sites != 1 {
		t.Fatalf("one source hit %d sites", sites)
	}

	// Different sources spread over sites.
	for i := 0; i < 64; i++ {
		net.Send(Addr("client-"+string(rune('a'+i))), "9.9.9.9", nil)
	}
	clk.Run()
	spread := 0
	for _, n := range received {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("catchments did not spread: %v", received)
	}
}

func TestAnycastExplicitCatchment(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := New(clk, 1)
	hits := map[Addr]int{}
	net.Bind("east", func(Addr, []byte) { hits["east"]++ })
	net.Bind("west", func(Addr, []byte) { hits["west"]++ })
	net.BindAnycast("svc", []Addr{"east", "west"}, func(src Addr) int {
		if src == "tokyo" {
			return 1
		}
		return 0
	})
	net.Send("tokyo", "svc", nil)
	net.Send("boston", "svc", nil)
	clk.Run()
	if hits["west"] != 1 || hits["east"] != 1 {
		t.Errorf("hits = %v", hits)
	}
}

func TestAnycastPerSiteLoss(t *testing.T) {
	// An attack saturating one site leaves other catchments clean — the
	// uneven per-letter damage of the root events.
	clk := clock.NewVirtual(epoch)
	net := New(clk, 1)
	hits := map[Addr]int{}
	net.Bind("dirty", func(Addr, []byte) { hits["dirty"]++ })
	net.Bind("clean", func(Addr, []byte) { hits["clean"]++ })
	net.BindAnycast("svc", []Addr{"dirty", "clean"}, func(src Addr) int {
		if src == "victim" {
			return 0
		}
		return 1
	})
	net.SetInboundLoss("dirty", 1)
	for i := 0; i < 20; i++ {
		net.Send("victim", "svc", nil)
		net.Send("lucky", "svc", nil)
	}
	clk.Run()
	if hits["dirty"] != 0 {
		t.Errorf("saturated site delivered %d", hits["dirty"])
	}
	if hits["clean"] != 20 {
		t.Errorf("clean site delivered %d, want 20", hits["clean"])
	}
}

func TestAnycastReplyFromServiceAddr(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := New(clk, 1)
	var port *Port
	net.Bind("site-1", func(src Addr, payload []byte) {
		port.Send(src, payload) // reply from the anycast address
	})
	port = net.BindAnycast("svc", []Addr{"site-1"}, nil)

	var replySrc Addr
	net.Bind("client", func(src Addr, _ []byte) { replySrc = src })
	net.Send("client", "svc", []byte("ping"))
	clk.Run()
	if replySrc != "svc" {
		t.Errorf("reply came from %q, want the anycast address", replySrc)
	}
}

func TestAnycastEmptyPanics(t *testing.T) {
	clk := clock.NewVirtual(time.Time{})
	net := New(clk, 1)
	defer func() {
		if recover() == nil {
			t.Error("empty anycast group did not panic")
		}
	}()
	net.BindAnycast("svc", nil, nil)
}
