// Package netsim is a message-level network simulator. Hosts are identified
// by string addresses; packets are delivered through a clock.Clock with a
// deterministic per-pair latency model, per-host inbound loss (the knob used
// to emulate volumetric DDoS, mirroring the paper's random iptables drop of
// queries arriving at the authoritatives), and taps that observe traffic
// before the drop decision (the paper measures queries "before they are
// dropped by our simulated DDoS", §6.1).
package netsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Addr identifies a host on the simulated network (by convention an IP
// address literal, but any non-empty string works).
type Addr string

// Event describes one packet arrival as seen by a tap, before the inbound
// loss decision is applied.
type Event struct {
	Time    time.Time
	Src     Addr
	Dst     Addr
	Payload []byte
	Dropped bool
}

// LatencyFunc samples the one-way delay for a packet from src to dst.
type LatencyFunc func(src, dst Addr, rng *rand.Rand) time.Duration

// Stats are cumulative network counters.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // lost to inbound loss (including MTU drops)
	Dead      int64 // destination not attached
	// UDP size semantics and the TCP plane (tcp.go).
	MTUDropped   int64 // datagrams over the path MTU toward dst
	TCPSent      int64
	TCPDelivered int64
	TCPDropped   int64 // lost to the TCP-plane inbound loss dial
	TCPDead      int64 // destination has no TCP receiver
	TCPConnects  int64 // simulated connection handshakes paid
}

// Network simulates a lossy packet network on top of a Clock.
//
// Delivery is zero-copy: the payload slice handed to Send is the same
// slice the receiver and the taps observe. Senders must not mutate a
// payload after Send, and receivers must not retain it past the handler
// call (every engine in this repository encodes a fresh message per send
// and decodes on arrival, so neither happens).
type Network struct {
	clk clock.Clock
	// argClk is clk's closure-free scheduling extension, when available
	// (the virtual clock implements it); nil otherwise.
	argClk clock.ArgScheduler

	mu      sync.Mutex
	rng     *rand.Rand
	hosts   map[Addr]func(src Addr, payload []byte)
	lazy    map[Addr]LazyHost // deferred host constructors, see BindLazy
	inLoss  map[Addr]float64
	pairs   map[[2]Addr]time.Duration
	latency LatencyFunc
	taps    []func(Event)
	anycast map[Addr]*anycastGroup
	trace   *trace.Buffer
	stats   Stats
	// UDP size semantics and the TCP plane (tcp.go).
	mtu      map[Addr]int // per-destination UDP payload limit
	tcpHosts map[Addr]func(src Addr, payload []byte)
	tcpLoss  map[Addr]float64
	tcpConns map[[2]Addr]time.Time // established pair -> idle expiry
}

// SetTrace enables delivery/drop tracing (nil disables). Events are
// attributed to probes by parsing the first question label from the
// wire payload, allocation-free.
func (n *Network) SetTrace(tr *trace.Buffer) { n.trace = tr }

// New creates a network on clk with a seeded RNG; identical seeds give
// identical packet fates.
func New(clk clock.Clock, seed int64) *Network {
	// inLoss and pairs stay nil until the first override: reads of a nil
	// map are fine, and most networks never install one.
	n := &Network{
		clk:   clk,
		rng:   rand.New(rand.NewSource(seed)),
		hosts: make(map[Addr]func(src Addr, payload []byte), 64),
	}
	n.latency = n.defaultLatency
	n.argClk, _ = clk.(clock.ArgScheduler)
	return n
}

// Clock returns the clock the network delivers on.
func (n *Network) Clock() clock.Clock { return n.clk }

// defaultLatency derives a stable base one-way delay in [2 ms, 52 ms] from
// the address pair, plus up to 15% jitter per packet.
func (n *Network) defaultLatency(src, dst Addr, rng *rand.Rand) time.Duration {
	h := fnv.New32a()
	h.Write([]byte(src))
	h.Write([]byte{'|'})
	h.Write([]byte(dst))
	base := 2*time.Millisecond + time.Duration(h.Sum32()%50_000)*time.Microsecond
	jitter := time.Duration(rng.Int63n(int64(base)/6 + 1))
	return base + jitter
}

// Bind attaches recv at addr and returns a Port for sending from it.
// Binding an already-bound address replaces the handler.
func (n *Network) Bind(addr Addr, recv func(src Addr, payload []byte)) *Port {
	if addr == "" {
		panic("netsim: empty address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[addr] = recv
	return &Port{net: n, addr: addr}
}

// BindPort is Bind returning the Port by value, for callers that embed
// the port in their own struct instead of holding a pointer.
func (n *Network) BindPort(addr Addr, recv func(src Addr, payload []byte)) Port {
	n.Bind(addr, recv)
	return Port{net: n, addr: addr}
}

// Detach removes the host at addr; in-flight packets to it are counted as
// Dead on arrival.
func (n *Network) Detach(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, addr)
	delete(n.lazy, addr)
}

// LazyHost is a deferred host constructor registered with BindLazy. An
// interface (rather than a func value) lets callers register an existing
// object without allocating a bound-method closure per host.
type LazyHost interface {
	// Materialize builds the host and registers its real receiver via
	// Bind (directly or through a client/resolver Attach). Called at most
	// once, outside the network lock.
	Materialize()
}

// BindLazy defers a host's construction until the first packet is
// delivered to addr. Population builders use this so the many resolvers
// a cell describes but never exercises cost nothing: a lazy host is
// "bound" for liveness accounting (arrivals are never counted Dead) but
// allocates only on first traffic.
func (n *Network) BindLazy(addr Addr, h LazyHost) {
	if addr == "" {
		panic("netsim: empty address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lazy == nil {
		n.lazy = make(map[Addr]LazyHost, 64)
	}
	n.lazy[addr] = h
}

// SetInboundLoss sets the probability in [0,1] that a packet arriving at
// dst is dropped. This is the DDoS dial: the paper's emulation drops
// incoming DNS queries at the authoritative with iptables (§5.1).
func (n *Network) SetInboundLoss(dst Addr, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("netsim: loss probability %v out of range", p))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if p == 0 {
		delete(n.inLoss, dst)
	} else {
		if n.inLoss == nil {
			n.inLoss = make(map[Addr]float64)
		}
		n.inLoss[dst] = p
	}
}

// InboundLoss returns the current inbound loss probability for dst.
func (n *Network) InboundLoss(dst Addr) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inLoss[dst]
}

// SetLatency replaces the latency model.
func (n *Network) SetLatency(fn LatencyFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = fn
}

// SetPairDelay fixes the one-way delay between a and b in both directions,
// overriding the latency model for that pair.
func (n *Network) SetPairDelay(a, b Addr, oneWay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pairs == nil {
		n.pairs = make(map[[2]Addr]time.Duration)
	}
	n.pairs[[2]Addr{a, b}] = oneWay
	n.pairs[[2]Addr{b, a}] = oneWay
}

// AddTap registers an observer called for every packet arrival, including
// ones dropped by inbound loss.
func (n *Network) AddTap(tap func(Event)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps = append(n.taps, tap)
}

// Stats returns a snapshot of the cumulative counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// CollectMetrics folds the network's counters into s.
func (n *Network) CollectMetrics(s *metrics.Scope) {
	st := n.Stats()
	s.Counter("sent").Add(st.Sent)
	s.Counter("delivered").Add(st.Delivered)
	s.Counter("dropped").Add(st.Dropped)
	s.Counter("dead").Add(st.Dead)
	s.Counter("mtu_dropped").Add(st.MTUDropped)
	s.Counter("tcp_sent").Add(st.TCPSent)
	s.Counter("tcp_delivered").Add(st.TCPDelivered)
	s.Counter("tcp_dropped").Add(st.TCPDropped)
	s.Counter("tcp_dead").Add(st.TCPDead)
	s.Counter("tcp_connects").Add(st.TCPConnects)
}

// packet is an in-flight delivery, pooled so the simulation's hottest
// path (one Send per simulated query/response) allocates nothing per
// packet beyond the payload its caller already built.
type packet struct {
	net      *Network
	src, dst Addr
	payload  []byte // aliases buf; valid until the packet is pooled
	buf      []byte // owned storage, recycled across packets
	tcp      bool   // deliver on the TCP plane (arriveTCP)
}

var packetPool = sync.Pool{New: func() any { return new(packet) }}

// deliverPacket is the static arrival callback handed to ArgScheduler.
// The packet (and the payload aliasing its buffer) returns to the pool
// only after the receiver ran: receive callbacks may read the payload for
// the duration of the call but must not retain it.
func deliverPacket(arg any) {
	p := arg.(*packet)
	if p.tcp {
		p.net.arriveTCP(p.src, p.dst, p.payload)
	} else {
		p.net.arrive(p.src, p.dst, p.payload)
	}
	p.net, p.src, p.dst, p.payload, p.tcp = nil, "", "", nil, false
	packetPool.Put(p)
}

// Send schedules delivery of payload from src to dst after the modeled
// one-way delay. The loss decision is made at arrival time, so loss-rate
// changes (DDoS onset/end) apply to packets already in flight, as they
// would at a congested last-hop router.
//
// The network copies payload before returning: callers may reuse their
// buffer for the next send, and receivers must not retain the delivered
// slice past their callback.
func (n *Network) Send(src, dst Addr, payload []byte) {
	n.mu.Lock()
	// Anycast destinations resolve to the catchment-selected site; both
	// latency and the inbound loss decision are the site's.
	site, _ := n.anycastSite(src, dst)
	delay := n.pairDelayLocked(src, site)
	n.stats.Sent++
	n.mu.Unlock()

	if n.argClk != nil {
		p := packetPool.Get().(*packet)
		p.buf = append(p.buf[:0], payload...)
		p.net, p.src, p.dst, p.payload = n, src, site, p.buf
		n.argClk.AfterFuncArg(delay, deliverPacket, p)
		return
	}
	buf := append([]byte(nil), payload...)
	n.clk.AfterFunc(delay, func() { n.arrive(src, site, buf) })
}

func (n *Network) pairDelayLocked(src, dst Addr) time.Duration {
	if d, ok := n.pairs[[2]Addr{src, dst}]; ok {
		return d
	}
	return n.latency(src, dst, n.rng)
}

func (n *Network) arrive(src, dst Addr, payload []byte) {
	n.mu.Lock()
	loss := n.inLoss[dst]
	dropped := loss > 0 && n.rng.Float64() < loss
	// Datagrams over the path MTU never arrive: the collapsed model of
	// fragmentation loss (SetPathMTU). Checked after the loss draw so
	// enabling an MTU does not shift the RNG stream of lossy paths.
	if m := n.mtu[dst]; !dropped && m > 0 && len(payload) > m {
		dropped = true
		n.stats.MTUDropped++
	}
	recv := n.hosts[dst]
	if recv == nil && !dropped && n.lazy != nil {
		if h := n.lazy[dst]; h != nil {
			delete(n.lazy, dst)
			// Materialize outside the lock: the host registers its
			// receiver via Bind, which re-locks. Dropped packets skip
			// materialization — a drop never reaches the host either way.
			n.mu.Unlock()
			h.Materialize()
			n.mu.Lock()
			recv = n.hosts[dst]
		}
	}
	taps := n.taps
	switch {
	case dropped:
		n.stats.Dropped++
	case recv == nil:
		n.stats.Dead++
	default:
		n.stats.Delivered++
	}
	now := n.clk.Now()
	n.mu.Unlock()

	if tr := n.trace; tr != nil {
		t := trace.EvNetDeliver
		if dropped {
			t = trace.EvNetDrop
		}
		tr.Emit(trace.Event{Type: t, Probe: trace.ProbeFromWire(payload),
			Src: string(src), Dst: string(dst)})
	}
	ev := Event{Time: now, Src: src, Dst: dst, Payload: payload, Dropped: dropped}
	for _, tap := range taps {
		tap(ev)
	}
	if !dropped && recv != nil {
		recv(src, payload)
	}
}

// Port is a bound address on the network.
type Port struct {
	net  *Network
	addr Addr
}

// Addr returns the bound address.
func (p *Port) Addr() Addr { return p.addr }

// Send transmits payload from this port's address to dst.
func (p *Port) Send(dst Addr, payload []byte) {
	p.net.Send(p.addr, dst, payload)
}

// Conn is the transport contract the DNS engines program against: the
// simulator's Port implements it, and cmd/ wraps real UDP sockets in it.
// Conn is the transport half a protocol endpoint needs. Send must copy
// (or otherwise finish with) the payload before returning, so callers can
// recycle one buffer across sends; Network.Send and UDP writes both do.
type Conn interface {
	Addr() Addr
	Send(dst Addr, payload []byte)
}

var _ Conn = (*Port)(nil)
