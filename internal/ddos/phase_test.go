package ddos

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

func TestSchedulePhasesStagedDrops(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	SchedulePhases(clk, net, Plan{
		Targets: []netsim.Addr{"a", "b"},
		Phases: []Phase{
			{Start: 10 * time.Minute, Duration: 20 * time.Minute, Intensity: 0.5, Mode: ModeDrop},
			{Start: 30 * time.Minute, Duration: 20 * time.Minute, Intensity: 1, Mode: ModeDrop},
		},
	})
	check := func(at time.Duration, want float64) {
		t.Helper()
		clk.RunUntil(epoch.Add(at))
		for _, target := range []netsim.Addr{"a", "b"} {
			if got := net.InboundLoss(target); got != want {
				t.Errorf("loss(%s) at %v = %v, want %v", target, at, got, want)
			}
		}
	}
	check(5*time.Minute, 0)    // before the first phase
	check(15*time.Minute, 0.5) // partial outage
	check(35*time.Minute, 1)   // total outage
	check(55*time.Minute, 0)   // recovery
}

func TestSchedulePhasesTargetCount(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	SchedulePhases(clk, net, Plan{
		Targets: []netsim.Addr{"a", "b"},
		Phases: []Phase{
			{Start: time.Minute, Intensity: 0.9, Mode: ModeDrop, TargetCount: 1},
		},
	})
	clk.RunFor(2 * time.Minute)
	if got := net.InboundLoss("a"); got != 0.9 {
		t.Errorf("loss(a) = %v, want 0.9", got)
	}
	if got := net.InboundLoss("b"); got != 0 {
		t.Errorf("loss(b) = %v, want 0 (TargetCount 1)", got)
	}
}

// rcodeRecorder records SetForcedRCode calls in order.
type rcodeRecorder struct {
	calls []rcodeCall
}

type rcodeCall struct {
	rc    dnswire.RCode
	frac  float64
	names []string
}

func (r *rcodeRecorder) SetForcedRCode(rc dnswire.RCode, frac float64, names ...string) {
	r.calls = append(r.calls, rcodeCall{rc: rc, frac: frac, names: names})
}

func TestSchedulePhasesRCodeModes(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	srv := &rcodeRecorder{}
	SchedulePhases(clk, net, Plan{
		Targets: []netsim.Addr{"a"},
		Servers: []RCodeServer{srv},
		Phases: []Phase{
			{Start: time.Minute, Duration: time.Minute, Intensity: 0.75,
				Mode: ModeServFail, Records: []string{"1414.cachetest.nl."}},
			{Start: 3 * time.Minute, Duration: time.Minute, Intensity: 1, Mode: ModeNXDomain},
		},
	})
	clk.RunFor(10 * time.Minute)
	want := []rcodeCall{
		{rc: dnswire.RCodeServFail, frac: 0.75, names: []string{"1414.cachetest.nl."}},
		{rc: dnswire.RCodeServFail, frac: 0},
		{rc: dnswire.RCodeNXDomain, frac: 1},
		{rc: dnswire.RCodeNXDomain, frac: 0},
	}
	if len(srv.calls) != len(want) {
		t.Fatalf("calls = %+v, want %+v", srv.calls, want)
	}
	for i := range want {
		got := srv.calls[i]
		if got.rc != want[i].rc || got.frac != want[i].frac ||
			!reflect.DeepEqual(got.names, want[i].names) &&
				!(len(got.names) == 0 && len(want[i].names) == 0) {
			t.Errorf("call %d = %+v, want %+v", i, got, want[i])
		}
	}
	// An rcode phase must not touch the packet-loss dial.
	if got := net.InboundLoss("a"); got != 0 {
		t.Errorf("rcode phase changed inbound loss: %v", got)
	}
}

// TestFailureModeRCode pins the mode-to-rcode mapping the spec compiler
// and trace analysis rely on.
func TestFailureModeRCode(t *testing.T) {
	if ModeDrop.RCode() != dnswire.RCodeNoError ||
		ModeNXDomain.RCode() != dnswire.RCodeNXDomain ||
		ModeServFail.RCode() != dnswire.RCodeServFail {
		t.Error("FailureMode.RCode mapping changed")
	}
	if ModeDrop.String() != "drop" || ModeNXDomain.String() != "nxdomain" ||
		ModeServFail.String() != "servfail" {
		t.Error("FailureMode.String mapping changed")
	}
}
