package ddos

import (
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// FailureMode selects what a disruption phase does to the queries that
// reach its targets. The paper's emulation drops packets (§5.1); the
// declarative disruption DSL also models servers that stay reachable but
// answer wrongly — the NXDOMAIN/SERVFAIL failure families of
// chaos-engineering disruption specs.
type FailureMode int

const (
	// ModeDrop discards the phase's fraction of inbound packets at the
	// network delivery point (the paper's iptables emulation).
	ModeDrop FailureMode = iota
	// ModeNXDomain makes the target authoritatives answer the phase's
	// fraction of queries with NXDOMAIN instead of zone data.
	ModeNXDomain
	// ModeServFail makes the target authoritatives answer the phase's
	// fraction of queries with SERVFAIL.
	ModeServFail
)

func (m FailureMode) String() string {
	switch m {
	case ModeDrop:
		return "drop"
	case ModeNXDomain:
		return "nxdomain"
	case ModeServFail:
		return "servfail"
	}
	return "unknown"
}

// RCode returns the forced response code of an answer-corrupting mode
// (0/NoError for ModeDrop, which corrupts nothing).
func (m FailureMode) RCode() dnswire.RCode {
	switch m {
	case ModeNXDomain:
		return dnswire.RCodeNXDomain
	case ModeServFail:
		return dnswire.RCodeServFail
	}
	return dnswire.RCodeNoError
}

// Phase is one time window of a staged disruption: from Start (relative
// to schedule time) for Duration, Intensity of the traffic at the
// selected targets fails in the given Mode.
type Phase struct {
	Start    time.Duration
	Duration time.Duration // 0 = never ends within the experiment
	// Intensity is the affected fraction: the packet-loss rate for
	// ModeDrop, the forced-answer fraction for the rcode modes.
	Intensity float64
	Mode      FailureMode
	// TargetCount selects the first k of the plan's targets; 0 means
	// every target (the paper's "all NSes" vs "one NS" axis).
	TargetCount int
	// Records, for the rcode modes, limits the forced answers to these
	// query names (per-record disruption); nil corrupts every name.
	Records []string
}

// targets returns the slice of plan targets this phase applies to.
func (ph Phase) targets(all []netsim.Addr) []netsim.Addr {
	if ph.TargetCount > 0 && ph.TargetCount < len(all) {
		return all[:ph.TargetCount]
	}
	return all
}

// RCodeServer is the authoritative-side hook the rcode failure modes
// drive; *authoritative.Server implements it.
type RCodeServer interface {
	SetForcedRCode(rc dnswire.RCode, frac float64, names ...string)
}

// Plan is a staged multi-phase disruption against a fixed target set.
type Plan struct {
	// Targets are the attacked addresses; Phase.TargetCount indexes into
	// this slice.
	Targets []netsim.Addr
	// Servers, parallel to Targets, are the authoritative engines behind
	// the addresses. Only the rcode failure modes need them; a plan of
	// pure ModeDrop phases may leave Servers nil.
	Servers []RCodeServer
	Phases  []Phase
	// Trace, when set, records each phase's edges (EvAttackStart /
	// EvAttackEnd per target; B carries the forced rcode, 0 for drops).
	Trace *trace.Buffer
}

// SchedulePhases arms every phase of the plan on net using clk. It
// returns immediately; the per-phase transitions fire at the configured
// offsets. Phases targeting the same address must not overlap in time
// (the end of one phase clears the dial the next one sets); the spec
// compiler rejects overlapping windows before they get here.
func SchedulePhases(clk clock.Clock, net *netsim.Network, p Plan) {
	targets := append([]netsim.Addr(nil), p.Targets...)
	servers := append([]RCodeServer(nil), p.Servers...)
	tr := p.Trace
	for _, ph := range p.Phases {
		ph := ph
		clk.AfterFunc(ph.Start, func() {
			applyPhase(net, targets, servers, ph, tr, true)
		})
		if ph.Duration > 0 {
			clk.AfterFunc(ph.Start+ph.Duration, func() {
				applyPhase(net, targets, servers, ph, tr, false)
			})
		}
	}
}

// applyPhase raises (on=true) or clears one phase's failure dial at its
// targets.
func applyPhase(net *netsim.Network, targets []netsim.Addr, servers []RCodeServer,
	ph Phase, tr *trace.Buffer, on bool) {

	for i, t := range ph.targets(targets) {
		switch ph.Mode {
		case ModeDrop:
			if on {
				net.SetInboundLoss(t, ph.Intensity)
			} else {
				net.SetInboundLoss(t, 0)
			}
		default:
			if i >= len(servers) || servers[i] == nil {
				continue
			}
			if on {
				servers[i].SetForcedRCode(ph.Mode.RCode(), ph.Intensity, ph.Records...)
			} else {
				servers[i].SetForcedRCode(ph.Mode.RCode(), 0)
			}
		}
		if tr == nil {
			continue
		}
		if on {
			tr.Force(trace.Event{Type: trace.EvAttackStart,
				A: uint32(ph.Intensity * 1e6), B: uint32(ph.Mode.RCode()),
				Dst: string(t)})
		} else {
			tr.Force(trace.Event{Type: trace.EvAttackEnd,
				B: uint32(ph.Mode.RCode()), Dst: string(t)})
		}
	}
}
