// Package ddos schedules emulated volumetric attacks against authoritative
// servers: timed changes of the inbound packet-loss rate at the targets,
// mirroring the paper's iptables-based random drop of incoming queries
// (§5.1). Loss is applied at the network's delivery point, so the
// authoritative-side taps still observe (and count) the dropped queries,
// exactly like the paper's pre-drop packet captures (§6.1).
package ddos

import (
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// Attack describes one emulated DDoS: Loss fraction of inbound packets to
// every target dropped from Start (relative to schedule time) for
// Duration. Duration 0 means the attack never ends within the experiment.
type Attack struct {
	Targets  []netsim.Addr
	Loss     float64
	Start    time.Duration
	Duration time.Duration
	// Trace, when set, records the attack window edges (EvAttackStart /
	// EvAttackEnd per target) so trace analysis can correlate drops with
	// the flood window.
	Trace *trace.Buffer
}

// Schedule arms the attack on net using clk. It returns immediately; the
// loss changes fire at the configured offsets. An Attack is the
// one-phase packet-drop special case of a Plan (see SchedulePhases);
// callers and RNG streams of the single-window form are untouched.
func Schedule(clk clock.Clock, net *netsim.Network, a Attack) {
	SchedulePhases(clk, net, Plan{
		Targets: a.Targets,
		Trace:   a.Trace,
		Phases: []Phase{{
			Start: a.Start, Duration: a.Duration,
			Intensity: a.Loss, Mode: ModeDrop,
		}},
	})
}

// Flood describes a volumetric attack by offered load instead of a loss
// rate: AttackQPS of junk lands on each target whose ingress handles
// CapacityQPS. The observable loss follows from the overload — a server
// at 10x its capacity drops 90% (the arithmetic of §6.1: "a server
// experiencing a volumetric attack causing 90% loss must be receiving
// 10x its capacity"). Legitimate traffic is negligible against the flood,
// as in the paper.
type Flood struct {
	Targets     []netsim.Addr
	AttackQPS   float64
	CapacityQPS float64
	Start       time.Duration
	Duration    time.Duration // 0 = never ends
}

// LossRate converts the overload into the random-drop probability a
// legitimate query experiences.
func (f Flood) LossRate() float64 {
	if f.CapacityQPS <= 0 {
		return 1
	}
	// No loss unless the attack alone exceeds capacity: the legitimate
	// load rides within the server's headroom, so an attack that merely
	// fills capacity (attack == capacity) must not shed legitimate
	// queries.
	if f.AttackQPS <= f.CapacityQPS {
		return 0
	}
	offered := f.AttackQPS + f.CapacityQPS*0.01 // legit load ≪ capacity
	return 1 - f.CapacityQPS/offered
}

// ScheduleFlood arms the flood as its equivalent loss window.
func ScheduleFlood(clk clock.Clock, net *netsim.Network, f Flood) {
	Schedule(clk, net, Attack{
		Targets: f.Targets, Loss: f.LossRate(),
		Start: f.Start, Duration: f.Duration,
	})
}
