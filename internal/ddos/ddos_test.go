package ddos

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func TestScheduleAppliesAndLifts(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	Schedule(clk, net, Attack{
		Targets:  []netsim.Addr{"a", "b"},
		Loss:     0.9,
		Start:    10 * time.Minute,
		Duration: 60 * time.Minute,
	})
	if got := net.InboundLoss("a"); got != 0 {
		t.Errorf("loss before start = %v", got)
	}
	clk.RunFor(11 * time.Minute)
	if got := net.InboundLoss("a"); got != 0.9 {
		t.Errorf("loss during attack = %v", got)
	}
	if got := net.InboundLoss("b"); got != 0.9 {
		t.Errorf("loss on second target = %v", got)
	}
	clk.RunFor(60 * time.Minute)
	if got := net.InboundLoss("a"); got != 0 {
		t.Errorf("loss after end = %v", got)
	}
}

func TestScheduleWithoutEnd(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	Schedule(clk, net, Attack{Targets: []netsim.Addr{"a"}, Loss: 1, Start: time.Minute})
	clk.RunFor(24 * time.Hour)
	if got := net.InboundLoss("a"); got != 1 {
		t.Errorf("unbounded attack lifted: loss = %v", got)
	}
}

func TestFloodLossRate(t *testing.T) {
	cases := []struct {
		attack, capacity float64
		wantLo, wantHi   float64
	}{
		{0, 1000, 0, 0},           // no attack: no loss
		{500, 1000, 0, 0},         // under capacity: no loss
		{1000, 1000, 0, 0},        // attack exactly fills capacity: still no loss
		{10000, 1000, 0.89, 0.91}, // 10x capacity: ~90% loss (§6.1)
		{100000, 1000, 0.98, 1.0}, // 100x: ~99%
		{1000, 0, 1, 1},           // no capacity at all
	}
	for _, c := range cases {
		f := Flood{AttackQPS: c.attack, CapacityQPS: c.capacity}
		got := f.LossRate()
		if got < c.wantLo || got > c.wantHi {
			t.Errorf("LossRate(%v qps vs %v cap) = %.3f, want [%.2f, %.2f]",
				c.attack, c.capacity, got, c.wantLo, c.wantHi)
		}
	}
}

func TestScheduleFlood(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	ScheduleFlood(clk, net, Flood{
		Targets: []netsim.Addr{"a"}, AttackQPS: 10000, CapacityQPS: 1000,
		Start: time.Minute, Duration: time.Hour,
	})
	clk.RunFor(2 * time.Minute)
	if got := net.InboundLoss("a"); got < 0.89 || got > 0.91 {
		t.Errorf("flood loss = %.3f, want ~0.9", got)
	}
	clk.RunFor(time.Hour)
	if got := net.InboundLoss("a"); got != 0 {
		t.Errorf("flood not lifted: %.3f", got)
	}
}
