// Package parallel is the experiment orchestration layer: a bounded
// worker pool that fans independent, deterministically-seeded simulation
// runs across cores. Every campaign in the reproduction — the Table 4
// DDoS matrix, the Table 1 TTL sweep, Replicate's multi-seed confidence
// runs, and the `dikes` CLI — schedules through it.
//
// Determinism: each unit of work owns its whole world (testbed, virtual
// clock, network, RNGs seeded from its own seed), so running units
// concurrently cannot change any unit's result, and Map/ForEach return
// results in input order. A parallel run is therefore bit-for-bit
// identical to a sequential one; TestMatrixParallelMatchesSequential in
// internal/experiment enforces this per paper experiment.
//
// Sizing: pass an explicit worker count, or <= 0 to use the process
// default (GOMAXPROCS, itself adjustable with the GOMAXPROCS env var).
// The `dikes` CLI exposes the knob as -workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// the number of usable cores (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) for every i in [0, n), fanning calls across at most
// workers goroutines (<= 0 means Workers' default). It returns when every
// call has finished. fn must be safe for concurrent invocation; calls are
// claimed in index order but may complete in any order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every item on the worker pool and returns the results
// in input order. fn receives the item's index alongside the item so
// seeded runs can derive per-item seeds deterministically.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEach(workers, len(items), func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// Do runs heterogeneous tasks concurrently on the default pool and waits
// for all of them — the shape of an ablation (baseline vs variant) or a
// self-test that fans out unrelated experiments.
func Do(fns ...func()) {
	ForEach(0, len(fns), func(i int) { fns[i]() })
}
