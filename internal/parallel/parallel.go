// Package parallel is the experiment orchestration layer: a bounded
// worker pool that fans independent, deterministically-seeded simulation
// runs across cores. Every campaign in the reproduction — the Table 4
// DDoS matrix, the Table 1 TTL sweep, Replicate's multi-seed confidence
// runs, and the `dikes` CLI — schedules through it.
//
// Determinism: each unit of work owns its whole world (testbed, virtual
// clock, network, RNGs seeded from its own seed), so running units
// concurrently cannot change any unit's result, and Map/ForEach return
// results in input order. A parallel run is therefore bit-for-bit
// identical to a sequential one; TestMatrixParallelMatchesSequential in
// internal/experiment enforces this per paper experiment.
//
// Sizing: pass an explicit worker count, or <= 0 to use the process
// default (GOMAXPROCS, itself adjustable with the GOMAXPROCS env var).
// The `dikes` CLI exposes the knob as -workers.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// the number of usable cores (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) for every i in [0, n), fanning calls across at most
// workers goroutines (<= 0 means Workers' default). It returns when every
// call has finished. fn must be safe for concurrent invocation; calls are
// claimed in index order but may complete in any order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation: workers check ctx
// before claiming each index, stop claiming once it is done, and let
// in-flight calls finish (a simulation run cannot be interrupted mid
// event loop, so cancellation granularity is one unit of work). It
// returns ctx.Err() when the context fired before every index ran, nil
// otherwise. Indices are still claimed in order, so on an uncancelled
// run the behavior is identical to ForEach.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if int(next.Load()) < n {
		return ctx.Err()
	}
	return ctx.Err()
}

// MapCtx is Map with cooperative cancellation. On cancellation the
// returned slice holds the results of every call that completed (zero
// values elsewhere) alongside ctx.Err(), so callers can merge partial
// work — the experiment engine folds the shards that finished into a
// partial outcome.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) R) ([]R, error) {
	out := make([]R, len(items))
	done := make([]atomic.Bool, len(items))
	err := ForEachCtx(ctx, workers, len(items), func(i int) {
		out[i] = fn(i, items[i])
		done[i].Store(true)
	})
	if err != nil {
		// Zero any slot whose fn was claimed but did not finish (there are
		// none today — workers drain in-flight calls — but this keeps the
		// contract "out[i] is valid iff fn(i) completed" future-proof).
		for i := range out {
			if !done[i].Load() {
				var zero R
				out[i] = zero
			}
		}
	}
	return out, err
}

// Map applies fn to every item on the worker pool and returns the results
// in input order. fn receives the item's index alongside the item so
// seeded runs can derive per-item seeds deterministically.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEach(workers, len(items), func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// Do runs heterogeneous tasks concurrently on the default pool and waits
// for all of them — the shape of an ablation (baseline vs variant) or a
// self-test that fans out unrelated experiments.
func Do(fns ...func()) {
	ForEach(0, len(fns), func(i int) { fns[i]() })
}
