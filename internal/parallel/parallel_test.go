package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 2
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := Map(workers, items, func(i, item int) int { return item + i })
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(4, nil, func(i int, s string) string { return s })
	if len(got) != 0 {
		t.Errorf("Map(nil) = %v", got)
	}
}

func TestForEachRunsEachIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	ForEach(8, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	ForEach(workers, 100, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, limit %d", p, workers)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Errorf("Do skipped a task: %v %v %v", a.Load(), b.Load(), c.Load())
	}
}
