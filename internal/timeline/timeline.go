// Package timeline collects fixed simulated-time-bucket series over a
// run: per-bucket counts of client answers, failures, SERVFAILs, stale
// serves, cache hits, upstream retries, TCP fallbacks, and upstream
// timeouts, annotated with the attack-phase boundaries of the run's
// disruption spec. The paper's headline figures are exactly such series
// — answer rate per minute across the attack event — and whole-run
// aggregates cannot regenerate them.
//
// Collection is per cell: each cell of a sharded run owns one Collector
// with a bin layout derived only from (testbed start, run horizon,
// bucket width), never from the data, so every cell's Timeline has the
// same shape and the cross-cell Merge is an element-wise integer sum —
// commutative, associative, and therefore byte-identical for any shard
// count, like every other accumulator in internal/experiment.
package timeline

import (
	"time"
)

// Metric is one tracked per-bucket series.
type Metric int

const (
	// Answered counts VP queries answered with valid data (vantage
	// Answer.Ok()), binned at the simulated answer arrival time.
	Answered Metric = iota
	// Failed counts VP queries that timed out (no answer), binned at the
	// time the vantage point gave up.
	Failed
	// ServFail counts VP queries answered but not usable (SERVFAIL or
	// discarded data).
	ServFail
	// StaleServed counts resolver answers served from expired cache
	// entries (the §5.3 serve-stale mitigation firing).
	StaleServed
	// CacheHit counts resolver client answers served from fresh cache.
	CacheHit
	// Retry counts upstream retransmissions (the §6.2 retry
	// amplification, over time).
	Retry
	// TCPFallback counts TC=1-triggered TCP retries (the DoTCP family's
	// responsiveness signal).
	TCPFallback
	// UpstreamTimeout counts upstream queries that timed out at the
	// resolver.
	UpstreamTimeout

	// NumMetrics is the series count; bins are [NumMetrics]int64 rows.
	NumMetrics
)

// metricNames are the stable exposition names, indexed by Metric.
var metricNames = [NumMetrics]string{
	"answered", "failed", "servfail", "stale_served",
	"cache_hit", "retries", "tcp_fallback", "upstream_timeouts",
}

// Name returns the metric's stable exposition name.
func (m Metric) Name() string {
	if m < 0 || m >= NumMetrics {
		return "unknown"
	}
	return metricNames[m]
}

// MetricNames returns the exposition names in Metric order.
func MetricNames() []string {
	out := make([]string, NumMetrics)
	copy(out, metricNames[:])
	return out
}

// DefaultBucket is the paper's figure resolution.
const DefaultBucket = time.Minute

// Config sizes a run's timeline collection.
type Config struct {
	// Bucket is the simulated-time bin width (default one minute, the
	// paper's figure resolution).
	Bucket time.Duration
}

func (c Config) withDefaults() Config {
	if c.Bucket <= 0 {
		c.Bucket = DefaultBucket
	}
	return c
}

// Collector accumulates per-bucket counts for one cell. It is used from
// the cell's single simulator goroutine, so plain integers suffice. The
// bin count is fixed at construction from the run horizon: every cell of
// a run allocates the same shape, which is what makes the merged series
// independent of how the population was cut into cells.
type Collector struct {
	start  time.Time
	bucket time.Duration
	bins   [][NumMetrics]int64
}

// NewCollector builds a collector covering [start, start+horizon] in
// cfg.Bucket-wide bins. Observations outside the window clamp to the
// first/last bin, so a late answer can never grow the series shape.
func NewCollector(start time.Time, horizon time.Duration, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	n := int(horizon/cfg.Bucket) + 1
	if n < 1 {
		n = 1
	}
	return &Collector{
		start:  start,
		bucket: cfg.Bucket,
		bins:   make([][NumMetrics]int64, n),
	}
}

// ObserveAt counts one event of metric m at simulated time at. Safe on a
// nil collector (timeline off).
func (c *Collector) ObserveAt(at time.Time, m Metric) {
	if c == nil {
		return
	}
	i := int(at.Sub(c.start) / c.bucket)
	if i < 0 {
		i = 0
	} else if i >= len(c.bins) {
		i = len(c.bins) - 1
	}
	c.bins[i][m]++
}

// Finalize renders the collector as a mergeable Timeline.
func (c *Collector) Finalize() *Timeline {
	t := &Timeline{
		Bucket:  c.bucket,
		Metrics: MetricNames(),
		Bins:    make([][]int64, len(c.bins)),
	}
	for i := range c.bins {
		row := make([]int64, NumMetrics)
		copy(row, c.bins[i][:])
		t.Bins[i] = row
	}
	return t
}

// Mark is one attack-phase boundary annotation, at an offset from the
// run start.
type Mark struct {
	At    time.Duration `json:"at"`
	Label string        `json:"label"`
}

// Timeline is one run's merged per-bucket series. Bins is indexed
// [bucket][metric] with metrics in Metric order (the Metrics field names
// them for consumers that only see the JSON). Marks carry the disruption
// boundaries; they describe the spec, not the data, so Merge leaves them
// alone.
type Timeline struct {
	Bucket  time.Duration `json:"bucket"`
	Metrics []string      `json:"metrics"`
	Bins    [][]int64     `json:"bins"`
	Marks   []Mark        `json:"marks,omitempty"`
}

// Merge folds another cell's timeline into t, element-wise. Cells of one
// run share bucket width and bin count by construction; a shape mismatch
// is a programming error and panics like a mismatched RoundSeries merge
// would.
func (t *Timeline) Merge(o *Timeline) {
	if o == nil {
		return
	}
	if t.Bucket != o.Bucket || len(t.Bins) != len(o.Bins) {
		panic("timeline: merging timelines of different shapes")
	}
	for i := range t.Bins {
		for j := range t.Bins[i] {
			t.Bins[i][j] += o.Bins[i][j]
		}
	}
}

// Get returns the count of metric m in bucket i (0 when out of range).
func (t *Timeline) Get(i int, m Metric) int64 {
	if i < 0 || i >= len(t.Bins) || int(m) >= len(t.Bins[i]) {
		return 0
	}
	return t.Bins[i][m]
}

// Total sums metric m over every bucket.
func (t *Timeline) Total(m Metric) int64 {
	var sum int64
	for i := range t.Bins {
		sum += t.Get(i, m)
	}
	return sum
}

// AnswerRate returns answered/(answered+failed+servfail) for bucket i,
// and false when the bucket saw no client outcomes at all.
func (t *Timeline) AnswerRate(i int) (float64, bool) {
	a := t.Get(i, Answered)
	total := a + t.Get(i, Failed) + t.Get(i, ServFail)
	if total == 0 {
		return 0, false
	}
	return float64(a) / float64(total), true
}
