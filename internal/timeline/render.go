package timeline

// Text renderers: the per-bucket table and CSV the `dikes timeline`
// subcommand prints, plus an ASCII sparkline of the answer-rate curve —
// the shape of the paper's Figures 6/8/14, one glyph per bucket.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table renders the series as an aligned text table, one row per bucket
// with a non-zero count (fully idle buckets are skipped — a 190-minute
// run at 1-minute buckets is mostly empty rows), with the marks as
// in-band annotation lines.
func (t *Timeline) Table() string {
	var b strings.Builder
	widths := make([]int, len(t.Metrics))
	fmt.Fprintf(&b, "%8s", "minute")
	for j, name := range t.Metrics {
		widths[j] = len(name)
		if widths[j] < 9 {
			widths[j] = 9
		}
		fmt.Fprintf(&b, " %*s", widths[j], name)
	}
	b.WriteByte('\n')
	nextMark := 0
	for i := range t.Bins {
		off := time.Duration(i) * t.Bucket
		for nextMark < len(t.Marks) && t.Marks[nextMark].At <= off {
			fmt.Fprintf(&b, "%8s -- %s (t=%v)\n", "", t.Marks[nextMark].Label, t.Marks[nextMark].At)
			nextMark++
		}
		if rowEmpty(t.Bins[i]) {
			continue
		}
		fmt.Fprintf(&b, "%8.0f", off.Minutes())
		for j := range t.Metrics {
			fmt.Fprintf(&b, " %*d", widths[j], t.Bins[i][j])
		}
		b.WriteByte('\n')
	}
	for ; nextMark < len(t.Marks); nextMark++ {
		fmt.Fprintf(&b, "%8s -- %s (t=%v)\n", "", t.Marks[nextMark].Label, t.Marks[nextMark].At)
	}
	return b.String()
}

func rowEmpty(row []int64) bool {
	for _, v := range row {
		if v != 0 {
			return false
		}
	}
	return true
}

// CSV renders every bucket (including empty ones — downstream plotting
// wants a dense time axis) as comma-separated rows.
func (t *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("minute")
	for _, name := range t.Metrics {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for i := range t.Bins {
		fmt.Fprintf(&b, "%g", (time.Duration(i) * t.Bucket).Minutes())
		for j := range t.Metrics {
			fmt.Fprintf(&b, ",%d", t.Bins[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON writes the timeline as indented JSON.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// sparkGlyphs are the eight answer-rate levels, lowest to highest.
var sparkGlyphs = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Sparkline renders the answer-rate curve one glyph per bucket ('█' =
// every client query answered, '▁' = none, '.' = an idle bucket), with a
// second line carrying '^' markers under the attack-phase boundaries.
// This is the paper's answer-rate-over-event figure as one terminal row.
func (t *Timeline) Sparkline() string {
	var curve, marks strings.Builder
	markAt := make(map[int]bool, len(t.Marks))
	for _, m := range t.Marks {
		i := int(m.At / t.Bucket)
		if i >= 0 && i < len(t.Bins) {
			markAt[i] = true
		}
	}
	anyMark := false
	for i := range t.Bins {
		rate, ok := t.AnswerRate(i)
		if !ok {
			curve.WriteByte('.')
		} else {
			lvl := int(rate * float64(len(sparkGlyphs)))
			if lvl >= len(sparkGlyphs) {
				lvl = len(sparkGlyphs) - 1
			}
			curve.WriteRune(sparkGlyphs[lvl])
		}
		if markAt[i] {
			marks.WriteByte('^')
			anyMark = true
		} else {
			marks.WriteByte(' ')
		}
	}
	out := "answer rate |" + curve.String() + "|\n"
	if anyMark {
		out += "             " + strings.TrimRight(marks.String(), " ") + "\n"
		for _, m := range t.Marks {
			out += fmt.Sprintf("             ^ t=%v %s\n", m.At, m.Label)
		}
	}
	return out
}
