package timeline

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)

func TestCollectorBinningAndClamp(t *testing.T) {
	c := NewCollector(t0, 10*time.Minute, Config{})
	if got, want := len(c.bins), 11; got != want {
		t.Fatalf("bin count = %d, want %d", got, want)
	}
	c.ObserveAt(t0, Answered)
	c.ObserveAt(t0.Add(59*time.Second), Answered)
	c.ObserveAt(t0.Add(60*time.Second), Failed)
	c.ObserveAt(t0.Add(-time.Hour), ServFail)       // clamps to bin 0
	c.ObserveAt(t0.Add(24*time.Hour), StaleServed)  // clamps to last bin
	tl := c.Finalize()
	if got := tl.Get(0, Answered); got != 2 {
		t.Errorf("bin0 answered = %d, want 2", got)
	}
	if got := tl.Get(1, Failed); got != 1 {
		t.Errorf("bin1 failed = %d, want 1", got)
	}
	if got := tl.Get(0, ServFail); got != 1 {
		t.Errorf("bin0 servfail (clamped early) = %d, want 1", got)
	}
	if got := tl.Get(10, StaleServed); got != 1 {
		t.Errorf("last-bin stale (clamped late) = %d, want 1", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.ObserveAt(t0, Answered) // must not panic
}

func TestMergeIsExactAndOrderIndependent(t *testing.T) {
	build := func(obs ...int) *Timeline {
		c := NewCollector(t0, 3*time.Minute, Config{})
		for _, m := range obs {
			c.ObserveAt(t0.Add(time.Duration(m)*time.Minute), Answered)
		}
		return c.Finalize()
	}
	a, b := build(0, 1, 1), build(1, 2)

	ab := build(0, 1, 1)
	ab.Merge(build(1, 2))
	ba := build(1, 2)
	ba.Merge(build(0, 1, 1))

	ja, _ := json.Marshal(ab)
	jb, _ := json.Marshal(ba)
	if string(ja) != string(jb) {
		t.Fatalf("merge order changed bytes:\n%s\n%s", ja, jb)
	}
	if ab.Get(1, Answered) != a.Get(1, Answered)+b.Get(1, Answered) {
		t.Errorf("merged bin1 = %d", ab.Get(1, Answered))
	}
	if ab.Total(Answered) != 5 {
		t.Errorf("merged total = %d, want 5", ab.Total(Answered))
	}
}

func TestMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a := NewCollector(t0, 2*time.Minute, Config{}).Finalize()
	b := NewCollector(t0, 5*time.Minute, Config{}).Finalize()
	a.Merge(b)
}

func TestAnswerRate(t *testing.T) {
	c := NewCollector(t0, 2*time.Minute, Config{})
	c.ObserveAt(t0, Answered)
	c.ObserveAt(t0, Answered)
	c.ObserveAt(t0, Failed)
	c.ObserveAt(t0, ServFail)
	tl := c.Finalize()
	rate, ok := tl.AnswerRate(0)
	if !ok || rate != 0.5 {
		t.Errorf("rate = %v ok=%v, want 0.5 true", rate, ok)
	}
	if _, ok := tl.AnswerRate(1); ok {
		t.Errorf("empty bucket reported a rate")
	}
	// Resolver-side metrics must not dilute the client answer rate.
	c.ObserveAt(t0, CacheHit)
	c.ObserveAt(t0, Retry)
	tl = c.Finalize()
	if rate, _ := tl.AnswerRate(0); rate != 0.5 {
		t.Errorf("rate after resolver-side observes = %v, want 0.5", rate)
	}
}

func TestRenderers(t *testing.T) {
	c := NewCollector(t0, 4*time.Minute, Config{})
	c.ObserveAt(t0.Add(1*time.Minute), Answered)
	c.ObserveAt(t0.Add(3*time.Minute), Failed)
	tl := c.Finalize()
	tl.Marks = []Mark{{At: 2 * time.Minute, Label: "attack start (90% loss)"}}

	table := tl.Table()
	if !strings.Contains(table, "answered") || !strings.Contains(table, "attack start") {
		t.Errorf("table missing header or mark:\n%s", table)
	}
	// Idle bucket 0 is skipped, bucket 1 is printed.
	if strings.Contains(table, "\n       0 ") {
		t.Errorf("idle bucket rendered:\n%s", table)
	}

	csv := tl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+5 {
		t.Errorf("csv has %d lines, want header+5 buckets:\n%s", len(lines), csv)
	}
	if lines[0] != "minute,"+strings.Join(MetricNames(), ",") {
		t.Errorf("csv header = %q", lines[0])
	}

	spark := tl.Sparkline()
	if !strings.Contains(spark, "█") || !strings.Contains(spark, "▁") {
		t.Errorf("sparkline missing full/empty glyphs:\n%s", spark)
	}
	if !strings.Contains(spark, "^") {
		t.Errorf("sparkline missing mark row:\n%s", spark)
	}

	var buf strings.Builder
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Get(1, Answered) != 1 || len(back.Marks) != 1 {
		t.Errorf("round-trip lost data: %+v", back)
	}
}
