// Package classify implements the paper's answer taxonomy (§3.4): each
// answer a vantage point receives is labeled by where it came from and
// where it was expected to come from.
//
//	AA — expected and correctly from the authoritative
//	CC — expected and correct from a recursive cache (cache hit)
//	AC — from the authoritative but expected from cache (a cache miss)
//	CA — from a cache but expected from the authoritative (extended cache)
//
// The observed source is inferred from the serial encoded in the answer
// (only the current zone round's serial can come from the authoritative);
// the expectation is tracked from the previous answer's remaining TTL.
package classify

import (
	"time"

	"repro/internal/vantage"
)

// Category is the answer class.
type Category int

// Answer categories. Warmup is the paper's AAi: the first valid answer of
// a vantage point, necessarily from the authoritative.
const (
	Unclassified Category = iota
	Warmup
	AA
	CC
	AC
	CA
)

func (c Category) String() string {
	switch c {
	case Warmup:
		return "Warmup"
	case AA:
		return "AA"
	case CC:
		return "CC"
	case AC:
		return "AC"
	case CA:
		return "CA"
	}
	return "Unclassified"
}

// ttlAlteredTolerance is the paper's 10% threshold for reporting an
// altered TTL.
const ttlAlteredTolerance = 0.10

// Outcome is the classification of one answer.
type Outcome struct {
	Category Category
	// TTLAltered reports a returned TTL differing from the zone TTL by
	// more than 10% on an authoritative-sourced answer.
	TTLAltered bool
	// SerialDecreased reports a serial lower than a previously seen one —
	// evidence of cache fragmentation (CCdec/CAdec in Table 2).
	SerialDecreased bool
	// Duplicate marks an answer repeating the previous one's serial in
	// the same round at warm-up time.
	Duplicate bool
}

// Tracker classifies the answer stream of a single vantage point. Answers
// must be fed in send-time order.
type Tracker struct {
	seen       bool
	warm       bool
	lastExpiry time.Time
	maxSerial  uint16
}

// NewTracker returns a fresh per-VP tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Classify labels one answer given the serial the zone was serving when
// the answer's query was sent.
func (t *Tracker) Classify(a vantage.Answer, currentSerial uint16) Outcome {
	if !a.Ok() {
		return Outcome{}
	}
	var out Outcome

	// The serial alone separates the observed source: only the current
	// zone round's serial can come from the authoritative, and with
	// probing intervals at or above the rotation interval a cached answer
	// always carries an older serial (§3.2: "The serial number in each
	// reply allows us to distinguish cached results from prior rounds
	// from fresh data in this round"). TTL rewriting therefore cannot
	// disguise a fresh fetch as a cache hit.
	fromAuth := a.Serial == currentSerial

	if a.Serial < t.maxSerial {
		out.SerialDecreased = true
	}
	if a.Serial > t.maxSerial {
		t.maxSerial = a.Serial
	}

	if !t.seen {
		t.seen = true
		t.warm = true
		t.lastExpiry = a.SentAt.Add(time.Duration(a.AnswerTTL) * time.Second)
		out.Category = Warmup
		out.TTLAltered = ttlAltered(a)
		return out
	}

	expectCache := a.SentAt.Before(t.lastExpiry)
	switch {
	case expectCache && !fromAuth:
		out.Category = CC
	case expectCache && fromAuth:
		out.Category = AC
		out.TTLAltered = ttlAltered(a)
	case !expectCache && fromAuth:
		out.Category = AA
		out.TTLAltered = ttlAltered(a)
	default:
		out.Category = CA
	}

	// The next expectation follows from what the client was just told.
	t.lastExpiry = a.SentAt.Add(time.Duration(a.AnswerTTL) * time.Second)
	return out
}

// ttlAltered applies the paper's 10% rule against the zone-configured TTL.
func ttlAltered(a vantage.Answer) bool {
	want := float64(a.EncTTL)
	got := float64(a.AnswerTTL)
	if want == 0 {
		return got != 0
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff/want > ttlAlteredTolerance
}

// Table2 aggregates outcomes into the rows of the paper's Table 2.
type Table2 struct {
	AnswersValid     int
	OneAnswerVPs     int
	Warmup           int
	Duplicates       int
	WarmupTTLZone    int
	WarmupTTLAltered int

	AA           int
	CC           int
	CCdec        int
	AC           int
	ACTTLZone    int
	ACTTLAltered int
	CA           int
	CAdec        int
}

// Add folds one outcome into the table.
func (t *Table2) Add(o Outcome) {
	switch o.Category {
	case Warmup:
		t.Warmup++
		if o.TTLAltered {
			t.WarmupTTLAltered++
		} else {
			t.WarmupTTLZone++
		}
	case AA:
		t.AA++
	case CC:
		t.CC++
		if o.SerialDecreased {
			t.CCdec++
		}
	case AC:
		t.AC++
		if o.TTLAltered {
			t.ACTTLAltered++
		} else {
			t.ACTTLZone++
		}
	case CA:
		t.CA++
		if o.SerialDecreased {
			t.CAdec++
		}
	}
}

// MissRate returns the paper's cache-miss fraction:
// AC / (valid answers - warmup - one-answer VPs).
func (t *Table2) MissRate() float64 {
	denom := t.AA + t.CC + t.AC + t.CA
	if denom == 0 {
		return 0
	}
	return float64(t.AC) / float64(denom)
}
