package classify

import (
	"testing"
	"time"

	"repro/internal/vantage"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

// ans builds an answer at minute m with the given serial and TTLs.
func ans(m int, serial uint16, encTTL, answerTTL uint32) vantage.Answer {
	return vantage.Answer{
		ProbeID: 1, Recursive: "r", Valid: true,
		SentAt: epoch.Add(time.Duration(m) * time.Minute),
		Serial: serial, EncTTL: encTTL, AnswerTTL: answerTTL,
	}
}

func TestWarmupThenAA(t *testing.T) {
	tr := NewTracker()
	// TTL 60 s, probing every 20 min: every answer after warm-up should
	// be a fresh AA (the paper's left bar of Figure 3).
	o := tr.Classify(ans(0, 1, 60, 60), 1)
	if o.Category != Warmup || o.TTLAltered {
		t.Fatalf("first = %+v", o)
	}
	o = tr.Classify(ans(20, 3, 60, 60), 3)
	if o.Category != AA {
		t.Errorf("second = %v, want AA", o.Category)
	}
}

func TestCCWithinTTL(t *testing.T) {
	tr := NewTracker()
	// TTL 3600 s, probing every 20 min: second answer is an old serial
	// with decremented TTL, a correct cache hit.
	tr.Classify(ans(0, 1, 3600, 3600), 1)
	o := tr.Classify(ans(20, 1, 3600, 2400), 3)
	if o.Category != CC {
		t.Errorf("got %v, want CC", o.Category)
	}
}

func TestACCacheMiss(t *testing.T) {
	tr := NewTracker()
	tr.Classify(ans(0, 1, 3600, 3600), 1)
	// Within TTL, but the answer is fresh (current serial, full TTL):
	// the recursive went to the authoritative anyway.
	o := tr.Classify(ans(20, 3, 3600, 3600), 3)
	if o.Category != AC {
		t.Errorf("got %v, want AC", o.Category)
	}
	if o.TTLAltered {
		t.Error("full-TTL AC flagged as altered")
	}
}

func TestCAExtendedCache(t *testing.T) {
	tr := NewTracker()
	tr.Classify(ans(0, 1, 60, 60), 1)
	// TTL expired long ago, yet the answer is an old serial: stale cache
	// (serve-stale, §5.3).
	o := tr.Classify(ans(20, 1, 60, 0), 3)
	if o.Category != CA {
		t.Errorf("got %v, want CA", o.Category)
	}
}

func TestTTLAlteredOnWarmup(t *testing.T) {
	tr := NewTracker()
	// Zone says 86400 but the resolver caps at 21600 (the paper's 30%
	// day-long truncations).
	o := tr.Classify(ans(0, 1, 86400, 21600), 1)
	if o.Category != Warmup || !o.TTLAltered {
		t.Errorf("outcome = %+v", o)
	}
	// And expectation tracking uses the *returned* TTL: at +7h the cap
	// has expired, so a fresh answer is AA, not AC.
	o = tr.Classify(ans(7*60, 43, 86400, 86400), 43)
	if o.Category != AA {
		t.Errorf("got %v, want AA", o.Category)
	}
}

func TestSerialDecreaseDetected(t *testing.T) {
	tr := NewTracker()
	tr.Classify(ans(0, 1, 3600, 3600), 1)
	tr.Classify(ans(20, 3, 3600, 3600), 3)      // AC, maxSerial=3
	o := tr.Classify(ans(40, 1, 3600, 1200), 5) // old serial resurfaces
	if !o.SerialDecreased {
		t.Error("serial decrease not detected (cache fragmentation)")
	}
	if o.Category != CC {
		t.Errorf("got %v, want CC", o.Category)
	}
}

func TestInvalidAnswersUnclassified(t *testing.T) {
	tr := NewTracker()
	bad := vantage.Answer{Timeout: true}
	if o := tr.Classify(bad, 1); o.Category != Unclassified {
		t.Errorf("timeout classified as %v", o.Category)
	}
}

func TestTable2Aggregation(t *testing.T) {
	var tab Table2
	outcomes := []Outcome{
		{Category: Warmup},
		{Category: Warmup, TTLAltered: true},
		{Category: AA},
		{Category: CC},
		{Category: CC, SerialDecreased: true},
		{Category: AC},
		{Category: AC, TTLAltered: true},
		{Category: CA, SerialDecreased: true},
	}
	for _, o := range outcomes {
		tab.Add(o)
	}
	if tab.Warmup != 2 || tab.WarmupTTLZone != 1 || tab.WarmupTTLAltered != 1 {
		t.Errorf("warmup rows = %d/%d/%d", tab.Warmup, tab.WarmupTTLZone, tab.WarmupTTLAltered)
	}
	if tab.AA != 1 || tab.CC != 2 || tab.CCdec != 1 {
		t.Errorf("AA/CC/CCdec = %d/%d/%d", tab.AA, tab.CC, tab.CCdec)
	}
	if tab.AC != 2 || tab.ACTTLZone != 1 || tab.ACTTLAltered != 1 {
		t.Errorf("AC rows = %d/%d/%d", tab.AC, tab.ACTTLZone, tab.ACTTLAltered)
	}
	if tab.CA != 1 || tab.CAdec != 1 {
		t.Errorf("CA rows = %d/%d", tab.CA, tab.CAdec)
	}
	want := 2.0 / 6.0
	if got := tab.MissRate(); got != want {
		t.Errorf("MissRate = %v, want %v", got, want)
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		Warmup: "Warmup", AA: "AA", CC: "CC", AC: "AC", CA: "CA",
		Unclassified: "Unclassified",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %s", c, c.String())
		}
	}
}
