package recursive

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// attackerApex is the marker domain every adversarial record in the
// property trials points into. Nothing legitimate lives under it, so a
// single cache scan at the end of a trial decides the bailiwick
// property: any cached (non-negative) record owned under this apex is an
// out-of-bailiwick write.
const attackerApex = "attacker.test."

// rogueAuth replaces the cachetest.nl. authoritatives with a generator
// of adversarially-shaped responses: NXNS-style wide glueless NS sets,
// poisoned glue additionals owned under attackerApex, lame upward and
// sideways referrals, duplicate and wrong-ID replies, silence, and raw
// garbage. All draws come from the trial's seeded rng, so every trial
// replays exactly.
type rogueAuth struct {
	rng  *rand.Rand
	port *netsim.Port
	msg  dnswire.Message
}

func (a *rogueAuth) attach(net *netsim.Network, addr netsim.Addr) {
	a.port = net.Bind(addr, a.handle)
}

func (a *rogueAuth) handle(src netsim.Addr, payload []byte) {
	m := &a.msg
	if dnswire.UnpackInto(m, payload) != nil || m.Response || len(m.Questions) == 0 {
		return
	}
	switch a.rng.Intn(10) {
	case 0: // silence: force the timeout/retry path
		return
	case 1: // raw garbage of random length
		junk := make([]byte, a.rng.Intn(600))
		a.rng.Read(junk)
		a.port.Send(src, junk)
		return
	}

	resp := dnswire.Message{}
	resp.ResetResponse(m)
	if a.rng.Intn(8) == 0 {
		resp.ID = uint16(a.rng.Intn(1 << 16)) // mismatched ID: must be ignored
	}
	qname := dnswire.CanonicalName(m.Question1().Name)

	// Referral owner: mostly valid downward progress (the query name
	// itself), sometimes sideways, upward, or entirely off-tree — the
	// resolver must treat those as lame, never descend, never cache
	// their glue.
	owner := qname
	switch a.rng.Intn(6) {
	case 0:
		owner = "cachetest.nl."
	case 1:
		owner = "nl."
	case 2:
		owner = "evil." + attackerApex
	}

	width := 1 + a.rng.Intn(64) // oversized NXNS-shaped NS sets
	for j := 0; j < width; j++ {
		resp.Authorities = append(resp.Authorities, dnswire.RR{
			Name: owner, Class: dnswire.ClassIN, TTL: 600,
			Data: dnswire.NS{Host: fmt.Sprintf("ns%d.g%d.%s", j, a.rng.Intn(1e6), attackerApex)},
		})
	}
	// Poisoned additionals: address records owned under attackerApex,
	// sometimes matching an NS target exactly (credible-looking glue),
	// sometimes random. With the bailiwick check on, none may be cached.
	for g, n := 0, a.rng.Intn(10); g < n; g++ {
		name := fmt.Sprintf("h%d.%s", a.rng.Intn(1e6), attackerApex)
		if a.rng.Intn(2) == 0 && len(resp.Authorities) > 0 {
			pick := resp.Authorities[a.rng.Intn(len(resp.Authorities))]
			name = pick.Data.(dnswire.NS).Host
		}
		var data dnswire.RData = dnswire.A{Addr: dnswire.MustAddr("203.0.113.66")}
		if a.rng.Intn(3) == 0 {
			data = dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::66")}
		}
		resp.Additionals = append(resp.Additionals, dnswire.RR{
			Name: name, Class: dnswire.ClassIN, TTL: 600, Data: data,
		})
	}

	wire, err := resp.Pack()
	if err != nil {
		return
	}
	a.port.Send(src, wire)
	if a.rng.Intn(8) == 0 {
		a.port.Send(src, wire) // duplicate delivery
	}
}

// sprayForged injects off-path forged referrals at the resolver: spoofed
// source, guessed query IDs, in-hierarchy NS owner (so the referral
// itself is plausible) but attacker-owned glue. Whatever the ID race
// outcome, the bailiwick check must keep the glue out of the cache.
func sprayForged(clk clock.Clock, net *netsim.Network, rng *rand.Rand, qname string, at time.Duration) {
	id := uint16(1 + rng.Intn(32))
	m := dnswire.NewQuery(id, qname, dnswire.TypeAAAA)
	m.Response = true
	width := 1 + rng.Intn(40)
	for j := 0; j < width; j++ {
		m.Authorities = append(m.Authorities, dnswire.RR{
			Name: "cachetest.nl.", Class: dnswire.ClassIN, TTL: 600,
			Data: dnswire.NS{Host: fmt.Sprintf("ns%d.f%d.%s", j, rng.Intn(1e6), attackerApex)},
		})
	}
	m.Additionals = append(m.Additionals, dnswire.RR{
		Name:  fmt.Sprintf("f%d.%s", rng.Intn(1e6), attackerApex),
		Class: dnswire.ClassIN, TTL: 600,
		Data: dnswire.A{Addr: dnswire.MustAddr("203.0.113.99")},
	})
	wire, err := m.Pack()
	if err != nil {
		return
	}
	clk.AfterFunc(at, func() { net.Send(ns1Addr, resAddr, wire) })
}

// TestAdversarialReferralProperty is the adversarial property axis: for
// every seeded trial of randomized spoofed/oversized referral traffic,
// the resolver (a) never panics, (b) completes every client resolution,
// and (c) never caches a positive record owned under the attacker's
// domain — the bailiwick property cacheAuthorityAndGlue documents.
func TestAdversarialReferralProperty(t *testing.T) {
	t.Parallel()
	const queries = 6
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			clk := clock.NewVirtual(epoch)
			net := netsim.New(clk, int64(trial))

			root := authoritative.New(mustZone(t, rootZoneText))
			nl := authoritative.New(mustZone(t, nlZoneText), mustZone(t, otherZoneText))
			root.Attach(net, rootAddr)
			nl.Attach(net, nlAddr)
			rogue := &rogueAuth{rng: rng}
			rogue.attach(net, ns1Addr)
			rogue.attach(net, ns2Addr)

			cfg := Config{
				RootHints: []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}},
				MaxFetch:  []int{0, 4}[trial%2], // mitigation off / armed
				Seed:      int64(trial),
			}
			res := NewResolver(clk, cfg)
			res.Attach(net, resAddr)

			done := 0
			for i := 0; i < queries; i++ {
				qname := fmt.Sprintf("%d.cachetest.nl.", i+1)
				start := time.Duration(i) * 50 * time.Millisecond
				clk.AfterFunc(start, func() {
					res.Resolve(qname, dnswire.TypeAAAA, 0, func(Result) { done++ })
				})
				for s := 0; s < 3; s++ {
					sprayForged(clk, net, rng, qname,
						start+time.Duration(rng.Intn(100))*time.Millisecond)
				}
			}
			clk.Run()

			if done != queries {
				t.Fatalf("only %d/%d resolutions completed", done, queries)
			}
			for shard := 0; shard < res.Cache().Shards(); shard++ {
				for _, rr := range res.Cache().Dump(shard) {
					owner := dnswire.CanonicalName(rr.Name)
					if dnswire.IsSubdomain(owner, attackerApex) {
						t.Errorf("out-of-bailiwick cache write: %v", rr)
					}
				}
			}
			// The cache keys scanned above come from Dump; make the scan
			// itself falsifiable by checking one poisoned glue name the
			// forged sprays always carry is absent even via direct Peek.
			if v := res.Cache().Peek(cache.Key{Name: "h0." + attackerApex, Type: dnswire.TypeA}, 0); v.Hit && !v.Negative {
				t.Error("attacker glue reachable via Peek")
			}
		})
	}
}
