package recursive

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// wideWorld builds a hierarchy where wide.nl is delegated to `width`
// glueless NS hosts under many.nl — names the nl server answers NXDOMAIN
// for — so every NS-address fetch costs exactly one query at nl. It
// returns the resolver and a counter of A-queries for those hosts.
func wideWorld(t *testing.T, width int, cfg Config) (*clock.Virtual, *Resolver, *int) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)

	var nlText strings.Builder
	nlText.WriteString(`
$ORIGIN nl.
$TTL 7200
@   IN SOA ns1.dns.nl. hostmaster.dns.nl. 2018050100 3600 600 2419200 60
@   IN NS ns1.dns.nl.
ns1.dns IN A 194.0.28.53
`)
	for i := 1; i <= width; i++ {
		fmt.Fprintf(&nlText, "wide 3600 IN NS ns%d.many.nl.\n", i)
	}

	root := authoritative.New(mustZone(t, rootZoneText))
	nl := authoritative.New(mustZone(t, nlText.String()))
	root.Attach(net, rootAddr)
	nl.Attach(net, nlAddr)

	fetches := new(int)
	net.AddTap(func(ev netsim.Event) {
		if ev.Dst != netsim.Addr(nlAddr) {
			return
		}
		var m dnswire.Message
		if dnswire.UnpackInto(&m, ev.Payload) != nil || len(m.Questions) == 0 || m.Response {
			return
		}
		q := m.Questions[0]
		if q.Type == dnswire.TypeA && strings.HasSuffix(dnswire.CanonicalName(q.Name), ".many.nl.") {
			*fetches++
		}
	})

	cfg.RootHints = []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}}
	res := NewResolver(clk, cfg)
	res.Attach(net, resAddr)
	return clk, res, fetches
}

// TestMaxFetchCapsGluelessFanout pins the NXNSAttack max-fetch(k)
// mitigation: a glueless delegation of width 12 costs 12 NS-address
// fetches without the cap and exactly k with it.
func TestMaxFetchCapsGluelessFanout(t *testing.T) {
	const width = 12
	run := func(maxFetch int) int {
		clk, res, fetches := wideWorld(t, width, Config{Seed: 3, MaxFetch: maxFetch})
		res.Resolve("host.wide.nl.", dnswire.TypeAAAA, 0, func(Result) {})
		clk.RunFor(30 * time.Second)
		return *fetches
	}
	if got := run(0); got != width {
		t.Errorf("uncapped glueless fan-out = %d NS fetches, want %d", got, width)
	}
	for _, k := range []int{1, 4} {
		if got := run(k); got != k {
			t.Errorf("MaxFetch=%d fan-out = %d NS fetches, want %d", k, got, k)
		}
	}
}

// TestRandomIDsEntropy pins the query-ID allocation modes: the default
// counter hands out 1, 2, 3, ... on a fresh resolver (trivially guessable
// by an off-path spoofer), and RandomIDs replaces it with seeded draws
// from the full 16-bit space.
func TestRandomIDsEntropy(t *testing.T) {
	collect := func(cfg Config) []uint16 {
		clk := clock.NewVirtual(epoch)
		net := netsim.New(clk, 1)
		root := authoritative.New(mustZone(t, rootZoneText))
		nl := authoritative.New(mustZone(t, nlZoneText), mustZone(t, otherZoneText))
		ns1 := authoritative.New(mustZone(t, cachetestZoneText))
		ns2 := authoritative.New(mustZone(t, cachetestZoneText))
		root.Attach(net, rootAddr)
		nl.Attach(net, nlAddr)
		ns1.Attach(net, ns1Addr)
		ns2.Attach(net, ns2Addr)
		var ids []uint16
		net.AddTap(func(ev netsim.Event) {
			if ev.Src == netsim.Addr(resAddr) && len(ev.Payload) >= 2 {
				ids = append(ids, binary.BigEndian.Uint16(ev.Payload[:2]))
			}
		})
		cfg.RootHints = []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}}
		res := NewResolver(clk, cfg)
		res.Attach(net, resAddr)
		res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(Result) {})
		clk.RunFor(30 * time.Second)
		return ids
	}

	seq := collect(Config{Seed: 11})
	if len(seq) < 3 {
		t.Fatalf("sequential run issued %d upstream queries, want >= 3", len(seq))
	}
	for i, id := range seq[:3] {
		if id != uint16(i+1) {
			t.Fatalf("sequential IDs = %v, want 1,2,3,...", seq[:3])
		}
	}

	rnd := collect(Config{Seed: 11, RandomIDs: true})
	if len(rnd) < 3 {
		t.Fatalf("random-ID run issued %d upstream queries, want >= 3", len(rnd))
	}
	low := true
	for _, id := range rnd {
		if id == 0 {
			t.Fatalf("random IDs contain 0: %v", rnd)
		}
		if id > 256 {
			low = false
		}
	}
	if low {
		t.Fatalf("random IDs all in the guessable low range: %v", rnd)
	}

	// Determinism: the draw sequence is a function of Seed.
	again := collect(Config{Seed: 11, RandomIDs: true})
	if fmt.Sprint(again) != fmt.Sprint(rnd) {
		t.Fatalf("random IDs not reproducible per seed: %v vs %v", again, rnd)
	}
}
