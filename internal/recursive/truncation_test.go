package recursive

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// fatName is a TXT record whose response outgrows the classic 512-octet
// UDP budget (and the flag-day 1232) but fits in 4096.
const fatName = "fat.cachetest.nl."

// newFatWorld is newWorld plus the fat TXT record on both cachetest
// authoritatives and TCP bindings for them, so truncation and fallback
// are exercisable on the upstream leg.
func newFatWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	w := &world{clk: clock.NewVirtual(epoch)}
	w.net = netsim.New(w.clk, 1)

	fat := mustZone(t, cachetestZoneText)
	for i := 0; i < 8; i++ {
		fat.MustAdd(dnswire.RR{Name: fatName, TTL: 3600,
			Data: dnswire.TXT{Strings: []string{
				string(rune('a'+i)) + strings.Repeat("x", 180)}}})
	}

	w.root = authoritative.New(mustZone(t, rootZoneText))
	w.nl = authoritative.New(mustZone(t, nlZoneText), mustZone(t, otherZoneText))
	w.ns1 = authoritative.New(fat)
	w.ns2 = authoritative.New(fat)

	w.root.Attach(w.net, rootAddr)
	w.nl.Attach(w.net, nlAddr)
	w.ns1.Attach(w.net, ns1Addr)
	w.ns1.AttachTCP(w.net, ns1Addr)
	w.ns2.Attach(w.net, ns2Addr)
	w.ns2.AttachTCP(w.net, ns2Addr)

	if len(cfg.Forwarders) == 0 && len(cfg.RootHints) == 0 {
		cfg.RootHints = []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}}
	}
	w.res = NewResolver(w.clk, cfg)
	w.res.Attach(w.net, resAddr)
	return w
}

// askWire sends a packed client query to the resolver over the wire path
// (serveClient → respond) and returns the raw response.
func askWire(t *testing.T, w *world, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	var got *dnswire.Message
	var port *netsim.Port
	port = w.net.Bind("10.9.9.9", func(src netsim.Addr, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Fatalf("unpack response: %v", err)
		}
		got = m
	})
	defer w.net.Detach("10.9.9.9")
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	port.Send(resAddr, wire)
	w.clk.RunFor(30 * time.Second)
	if got == nil {
		t.Fatalf("no response to %s", q.Question1().Name)
	}
	return got
}

// TestRespondHonorsAdvertisedEDNSSize is the client-leg regression test:
// a query advertising a 4096-octet EDNS0 buffer must receive the fat
// answer in full over UDP. Pre-fix, respond() clamped every UDP response
// at 512 octets and truncated it regardless of the advertised size.
func TestRespondHonorsAdvertisedEDNSSize(t *testing.T) {
	w := newFatWorld(t, Config{EDNSSize: 4096})
	q := dnswire.NewQuery(7, fatName, dnswire.TypeTXT)
	q.AddEDNS(4096, false)
	resp := askWire(t, w, q)
	if resp.Truncated {
		t.Fatal("response truncated despite a 4096-octet advertised buffer")
	}
	if len(resp.Answers) != 8 {
		t.Fatalf("answers = %d, want 8", len(resp.Answers))
	}
	if w.res.Stats().ClientTruncated != 0 {
		t.Errorf("ClientTruncated = %d, want 0", w.res.Stats().ClientTruncated)
	}
}

// TestTruncatedResponseKeepsOPT checks RFC 6891 behavior on the client
// leg: a response truncated to a small advertised buffer strips the data
// sections, sets TC, and retains the OPT record.
func TestTruncatedResponseKeepsOPT(t *testing.T) {
	w := newFatWorld(t, Config{EDNSSize: 4096})
	q := dnswire.NewQuery(8, fatName, dnswire.TypeTXT)
	q.AddEDNS(512, false)
	resp := askWire(t, w, q)
	if !resp.Truncated {
		t.Fatal("fat answer not truncated at a 512-octet buffer")
	}
	if len(resp.Answers) != 0 || len(resp.Authorities) != 0 {
		t.Errorf("truncated response kept data: %d answers, %d authorities",
			len(resp.Answers), len(resp.Authorities))
	}
	if _, _, ok := resp.EDNS(); !ok {
		t.Error("truncated response lost its OPT record")
	}
	if got := w.res.Stats().ClientTruncated; got != 1 {
		t.Errorf("ClientTruncated = %d, want 1", got)
	}
}

// TestTruncationBoundary pins the exact threshold: a response packed to
// exactly the advertised size passes untouched; one octet less and it is
// truncated.
func TestTruncationBoundary(t *testing.T) {
	w := newFatWorld(t, Config{EDNSSize: 4096})

	// Learn the response's exact wire size with a roomy buffer.
	q := dnswire.NewQuery(9, fatName, dnswire.TypeTXT)
	q.AddEDNS(4096, false)
	full := askWire(t, w, q)
	wire, err := full.Pack()
	if err != nil {
		t.Fatal(err)
	}
	size := len(wire)
	if size <= 512 || size >= 4096 {
		t.Fatalf("fat response is %d octets; the test needs 512 < size < 4096", size)
	}

	q = dnswire.NewQuery(10, fatName, dnswire.TypeTXT)
	q.AddEDNS(uint16(size), false)
	if resp := askWire(t, w, q); resp.Truncated {
		t.Errorf("response of exactly %d octets truncated at a %d-octet buffer", size, size)
	}

	q = dnswire.NewQuery(11, fatName, dnswire.TypeTXT)
	q.AddEDNS(uint16(size-1), false)
	if resp := askWire(t, w, q); !resp.Truncated {
		t.Errorf("response of %d octets not truncated at a %d-octet buffer", size, size-1)
	}
}

// TestIteratorReactsToUpstreamTC is the upstream-leg regression test:
// without EDNS the authoritative truncates the fat answer at 512, and
// the resolver must not treat the stripped TC=1 response as an answer.
// Pre-fix, handleResponse absorbed it and returned an empty NOERROR.
func TestIteratorReactsToUpstreamTC(t *testing.T) {
	w := newFatWorld(t, Config{}) // no EDNS, no fallback
	res := resolveOn(t, w.clk, w.res, fatName, dnswire.TypeTXT)
	if !res.ServFail {
		t.Fatalf("result = %+v, want SERVFAIL (TC with no fallback path)", res)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers from a truncated exchange: %v", res.Answers)
	}
	if got := w.res.Stats().Truncated; got == 0 {
		t.Error("Stats.Truncated = 0, want the upstream TC=1 responses counted")
	}
}

// TestIteratorTCPFallback checks the recovery leg: with TCPFallback
// armed the resolver retries the truncated upstream exchange over TCP
// and assembles the full answer.
func TestIteratorTCPFallback(t *testing.T) {
	w := newFatWorld(t, Config{TCPFallback: true}) // still no EDNS
	res := resolveOn(t, w.clk, w.res, fatName, dnswire.TypeTXT)
	if res.ServFail || res.RCode != dnswire.RCodeNoError {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Answers) != 8 {
		t.Fatalf("answers = %d, want 8", len(res.Answers))
	}
	if got := w.res.Stats().Truncated; got == 0 {
		t.Error("Stats.Truncated = 0, want the TC that triggered fallback counted")
	}
	if s := w.net.Stats(); s.TCPDelivered == 0 {
		t.Errorf("no TCP traffic: %+v", s)
	}
}

// TestForwarderReactsToUpstreamTC covers the forwarding mode leg: a
// forwarder receiving TC=1 from its upstream retries over TCP when
// armed, and fails closed (never "answers" with the stripped message)
// when not.
func TestForwarderReactsToUpstreamTC(t *testing.T) {
	// The upstream truncates over UDP and serves the real answer on TCP.
	build := func(cfg Config) (*clock.Virtual, *Resolver, *netsim.Network) {
		clk := clock.NewVirtual(epoch)
		net := netsim.New(clk, 1)
		const upAddr = "10.0.0.2"
		var uport *netsim.Port
		uport = net.Bind(upAddr, func(src netsim.Addr, payload []byte) {
			q, err := dnswire.Unpack(payload)
			if err != nil || q.Response {
				return
			}
			resp := dnswire.NewResponse(q)
			resp.RecursionAvailable = true
			resp.Truncated = true
			wire, _ := resp.Pack()
			uport.Send(src, wire)
		})
		var utcp *netsim.TCPPort
		utcp = net.BindTCP(upAddr, func(src netsim.Addr, payload []byte) {
			q, err := dnswire.Unpack(payload)
			if err != nil || q.Response {
				return
			}
			resp := dnswire.NewResponse(q)
			resp.RecursionAvailable = true
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: q.Question1().Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::2")},
			})
			wire, _ := resp.Pack()
			utcp.Send(src, wire)
		})
		cfg.Forwarders = []netsim.Addr{upAddr}
		r := NewResolver(clk, cfg)
		r.Attach(net, resAddr)
		return clk, r, net
	}

	clk, r, _ := build(Config{TCPFallback: true})
	res := resolveOn(t, clk, r, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail || len(res.Answers) != 1 {
		t.Fatalf("forwarder with fallback: %+v", res)
	}
	if r.Stats().Truncated == 0 {
		t.Error("forwarder Stats.Truncated = 0")
	}

	clk, r, _ = build(Config{})
	res = resolveOn(t, clk, r, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if !res.ServFail {
		t.Fatalf("forwarder without fallback: %+v, want SERVFAIL", res)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers from a truncated forward: %v", res.Answers)
	}
}
