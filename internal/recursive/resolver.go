// Package recursive implements a caching recursive DNS resolver engine.
//
// The engine supports the two deployment shapes the paper studies:
//
//   - Iterative mode: full resolution from root hints, chasing referrals
//     and CNAMEs, with per-server SRTT tracking, retries with exponential
//     backoff, a bounded work budget per client query, RFC 2308 negative
//     caching, RFC 2181 credibility ranking, and optional serve-stale
//     (§5.3 of the paper).
//
//   - Forwarding mode: a first-level recursive (R1 in the paper's Figure 1)
//     that relays queries to one or more upstream resolvers (Rn), retrying
//     across them on failure — the behavior that amplifies legitimate
//     traffic during DDoS (§6.2, Figure 11/12).
//
// The engine is event-driven against clock.Clock and netsim.Conn, so the
// same code runs inside the deterministic simulation and on real UDP
// sockets (cmd/recursived).
package recursive

import (
	"math/rand"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// ServerHint names a root (or forwarder) server.
type ServerHint struct {
	Name string
	Addr netsim.Addr
}

// HarvestMode selects how eagerly a resolver re-fetches a delegated
// zone's nameserver records (§6.2: part of why implementations differ in
// their query mix).
type HarvestMode int

const (
	// HarvestNone never issues background NS-record fetches (BIND-like).
	HarvestNone HarvestMode = iota
	// HarvestAAAA fetches only the missing AAAA records of a zone's
	// nameservers (the Unbound behavior Appendix E measures: its extra
	// queries over BIND are AAAA-for-NS lookups).
	HarvestAAAA
	// HarvestFull re-fetches the NS set and both address types whenever
	// the cached copies are not authoritatively confirmed, replacing glue
	// with child data (Appendix A) and producing the full Figure 10 mix.
	HarvestFull
)

// Config tunes a Resolver. NewResolver fills zero fields with defaults.
type Config struct {
	// Cache configures the resolver cache (TTL caps, shards, serve-stale,
	// capacity). Cache.ServeStale is forced to match ServeStale.
	Cache cache.Config
	// RootHints seed iterative resolution. Required unless forwarding.
	RootHints []ServerHint
	// Forwarders, when non-empty, puts the resolver in forwarding mode.
	Forwarders []netsim.Addr
	// NoCache disables caching entirely (a pass-through R1, one of the
	// cache-miss causes in §3.5).
	NoCache bool

	// InitialTimeout is the first per-upstream-query timeout. It doubles
	// each time the candidate server list has been exhausted (each retry
	// *round*, not each attempt), up to MaxTimeout, so every server in a
	// round is probed with the same deadline. Default 750 ms / 3 s.
	InitialTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxAttempts bounds upstream tries per fetch (across servers).
	// Default 7, matching the ~6-7 retries prior work and §6.2 observe
	// when authoritatives are dead.
	MaxAttempts int
	// WorkBudget bounds total upstream queries spawned by one client
	// query, including NS-address harvesting. Default 40.
	WorkBudget int
	// MaxCNAME bounds alias chains. Default 8.
	MaxCNAME int
	// MaxDepth bounds nested NS-address resolutions. Default 3.
	MaxDepth int
	// ClientTimeout is the deadline after which a client query is
	// answered SERVFAIL (or stale). Default 8 s.
	ClientTimeout time.Duration
	// ServeStale enables answering with expired cache entries (TTL 0)
	// when resolution fails, per draft-tale-dnsop-serve-stale.
	ServeStale bool
	// StaleAnswerDelay is how long a serve-stale resolver keeps trying
	// upstream before answering the client with expired data (the
	// draft's client-response timer, ~1.8 s). The refresh continues in
	// the background. Default 1.8 s.
	StaleAnswerDelay time.Duration
	// Prefetch, when positive, refreshes a cache entry in the background
	// whenever a hit finds less than this fraction of the original TTL
	// remaining (Unbound's prefetch uses 0.1). Prefetching keeps popular
	// names continuously cached, which extends DDoS protection past one
	// TTL — an extension experiment beyond the paper. 0 disables.
	Prefetch float64
	// TrustAnchors enables DNSSEC validation: upstream queries carry the
	// EDNS0 DO bit, and answers from any zone listed here must carry an
	// RRSIG that verifies against the anchored DNSKEY (simplified
	// validation: per-zone anchors instead of DS-chain chasing; no
	// authenticated denial). Bogus answers become SERVFAIL, as validating
	// resolvers do.
	TrustAnchors map[string]dnswire.DNSKEY
	// Harvest controls background fetching of a newly learned zone's
	// NS / A-for-NS / AAAA-for-NS records, the behavior that produces the
	// paper's Figure 10 query mix at the authoritatives.
	Harvest HarvestMode
	// ExplorationProb is the probability of querying a random candidate
	// server instead of the lowest-SRTT one, modeling the "recursives
	// query all authoritatives over time" behavior of [27]. Default 0.25.
	ExplorationProb float64
	// AnswerFromReferral lets cached referral data (NS sets and glue
	// learned from parent-side responses, credibility below RankAnswer)
	// be returned directly to clients. Standards-conforming resolvers do
	// not do this (RFC 2181 §5.4.1); the paper's Appendix A finds a small
	// minority of deployed resolvers that answer with the parent's TTL,
	// which this flag models.
	AnswerFromReferral bool
	// MaxFetch caps how many of a glueless referral's NS hosts the
	// resolver will try to resolve addresses for — the NXNSAttack
	// "Max Fetch(k)" mitigation (Afek et al.; see internal/adversary).
	// 0 leaves the fan-out bounded only by WorkBudget and MaxDepth.
	MaxFetch int
	// RandomIDs draws upstream query IDs uniformly from the full 16-bit
	// space (seeded by Seed) instead of the sequential counter.
	// Sequential IDs are trivially predictable by an off-path spoofer;
	// this knob is the ID-entropy axis of the poisoning experiments.
	RandomIDs bool
	// NoBailiwick disables the bailiwick credibility check on
	// authority/additional-section records, modeling a pre-hardening
	// resolver for the adversary experiments. Never enable it outside
	// experiments: it admits Kaminsky-style poisoning by design.
	NoBailiwick bool
	// EDNSSize, when non-zero, advertises this EDNS0 UDP payload size on
	// upstream queries (RFC 6891), raising the truncation threshold at
	// the authoritatives above the classic 512 octets. Zero sends no OPT
	// record unless DNSSEC validation needs one (TrustAnchors, which
	// advertises 4096).
	EDNSSize uint16
	// TCPFallback retries a TC=1 upstream response over the simulated
	// TCP plane against the same server (RFC 7766) instead of rotating
	// to the next candidate. Requires a TCP transport (Attach binds one;
	// SetTCPConn for custom transports).
	TCPFallback bool
	// Seed makes the resolver's random choices reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 750 * time.Millisecond
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 3 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 7
	}
	if c.WorkBudget == 0 {
		c.WorkBudget = 40
	}
	if c.MaxCNAME == 0 {
		c.MaxCNAME = 8
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.ClientTimeout == 0 {
		c.ClientTimeout = 8 * time.Second
	}
	if c.ExplorationProb == 0 {
		c.ExplorationProb = 0.25
	}
	if c.StaleAnswerDelay == 0 {
		c.StaleAnswerDelay = 1800 * time.Millisecond
	}
	c.Cache.ServeStale = c.ServeStale
	return c
}

// Stats is a point-in-time snapshot of the resolver's counters.
type Stats struct {
	ClientQueries   int64
	ClientResponses int64
	CacheHits       int64
	CacheMisses     int64
	NegativeHits    int64
	StaleServes     int64
	// LateAnswers counts upstream responses that arrived after the client
	// was already answered (stale serve or timeout) and were absorbed into
	// the cache — the serve-stale refresh completing late.
	LateAnswers     int64
	UpstreamQueries int64
	UpstreamRetries int64
	Timeouts        int64
	ServFails       int64
	Lame            int64
	Bogus           int64
	// Truncated counts TC=1 responses received from upstreams (each one
	// either retried over TCP or rotated past, never consumed as data).
	Truncated int64
	// ClientTruncated counts responses this resolver truncated to fit a
	// client's advertised UDP size when serving.
	ClientTruncated int64
}

// counters is the live metric set behind Stats: embedded by value so the
// resolver hot paths pay one atomic add per event and zero allocations.
type counters struct {
	clientQueries   metrics.Counter
	clientResponses metrics.Counter
	cacheHits       metrics.Counter
	cacheMisses     metrics.Counter
	negativeHits    metrics.Counter
	staleServes     metrics.Counter
	lateAnswers     metrics.Counter
	upstreamQueries metrics.Counter
	upstreamRetries metrics.Counter
	timeouts        metrics.Counter
	servFails       metrics.Counter
	lame            metrics.Counter
	bogus           metrics.Counter
	truncated       metrics.Counter
	clientTruncated metrics.Counter
	// upstreamRTTms observes every upstream round-trip sample, in
	// milliseconds (the same samples that feed SRTT selection).
	upstreamRTTms metrics.Histogram
}

// Result is the outcome of a Resolve call.
type Result struct {
	RCode   dnswire.RCode
	Answers []dnswire.RR
	SOA     dnswire.RR // present on negative answers
	// Stale marks answers served from expired cache entries.
	Stale bool
	// FromCache reports that no upstream query was needed.
	FromCache bool
	// ServFail is true when resolution failed outright.
	ServFail bool
}

// Resolver is a caching recursive resolver bound to one network address.
type Resolver struct {
	clk   clock.Clock
	cfg   Config
	cache cache.Cache
	rng   *rand.Rand // lazy; use random()
	conn  netsim.Conn
	// tcpConn is the TCP-plane transport (nil when unbound): TC=1
	// fallback retries go out on it, and clients reached over it are
	// answered without the UDP size limit.
	tcpConn netsim.Conn

	nextID   uint16
	inflight map[uint16]*outquery
	oqFree   *outquery // outquery freelist
	srtt     map[netsim.Addr]time.Duration
	coalesce map[coalesceKey]*clientJob
	harvests map[string]time.Time // zone -> last NS harvest
	trace    *trace.Buffer
	timeline *timeline.Collector
	m        counters

	// rrScratch and nsScratch are reusable record buffers for the
	// single-threaded response-processing path (cacheAuthorityAndGlue and
	// referralNS respectively); their contents never survive an event
	// dispatch.
	rrScratch []dnswire.RR
	nsScratch []dnswire.RR
	// upMsg is the scratch decode target for upstream responses. Response
	// processing never retains the message or its section slices (data
	// that outlives the dispatch — cache sets, Result answers — is always
	// copied), so one message per resolver serves every response.
	upMsg dnswire.Message
	// qMsg and respMsg are scratch encode sources (upstream queries and
	// client responses), and packBuf the scratch wire buffer; all three
	// are transmitted before the dispatch returns and never retained
	// (Conn.Send copies).
	qMsg    dnswire.Message
	respMsg dnswire.Message
	packBuf []byte
}

// SetTrace enables query-lifecycle tracing on the resolver and its cache
// (nil disables).
func (r *Resolver) SetTrace(tr *trace.Buffer) {
	r.trace = tr
	r.cache.SetTrace(tr)
}

// SetTimeline points the resolver at a per-cell timeline collector (nil
// disables). Unlike trace buffers there is one collector per cell, shared
// by every resolver in it; that is safe because a cell is single-threaded.
func (r *Resolver) SetTimeline(c *timeline.Collector) {
	r.timeline = c
}

// observe counts one timeline event at the current simulated time; a
// no-op when timeline collection is off.
func (r *Resolver) observe(m timeline.Metric) {
	if r.timeline != nil {
		r.timeline.ObserveAt(r.clk.Now(), m)
	}
}

type coalesceKey struct {
	name  string
	qtype dnswire.Type
	shard int
}

// NewResolver creates a resolver on clk. Call Attach (or SetConn) before
// resolving.
func NewResolver(clk clock.Clock, cfg Config) *Resolver {
	cfg = cfg.withDefaults()
	// Hot state (rng, in-flight and SRTT maps, the RTT histogram) is
	// created on first use: a large population builds thousands of
	// resolvers per cell but exercises only the handful its probes query,
	// so an idle resolver must cost a couple of allocations, not dozens.
	r := &Resolver{clk: clk, cfg: cfg}
	r.cache.Init(clk, cfg.Cache)
	r.m.upstreamRTTms.Init(metrics.DefaultLatencyBucketsMs) // aliases shared bounds; no allocation
	return r
}

// random returns the resolver's deterministic RNG, creating it on first
// draw (the draw sequence for a given seed is unchanged by the laziness).
func (r *Resolver) random() *rand.Rand {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.cfg.Seed))
	}
	return r.rng
}

// Cache exposes the resolver cache (tests and the Appendix A cache-dump
// reproduction use it).
func (r *Resolver) Cache() *cache.Cache { return &r.cache }

// Stats returns a snapshot of the counters.
func (r *Resolver) Stats() Stats {
	return Stats{
		ClientQueries:   r.m.clientQueries.Value(),
		ClientResponses: r.m.clientResponses.Value(),
		CacheHits:       r.m.cacheHits.Value(),
		CacheMisses:     r.m.cacheMisses.Value(),
		NegativeHits:    r.m.negativeHits.Value(),
		StaleServes:     r.m.staleServes.Value(),
		LateAnswers:     r.m.lateAnswers.Value(),
		UpstreamQueries: r.m.upstreamQueries.Value(),
		UpstreamRetries: r.m.upstreamRetries.Value(),
		Timeouts:        r.m.timeouts.Value(),
		ServFails:       r.m.servFails.Value(),
		Lame:            r.m.lame.Value(),
		Bogus:           r.m.bogus.Value(),
		Truncated:       r.m.truncated.Value(),
		ClientTruncated: r.m.clientTruncated.Value(),
	}
}

// CollectMetrics folds this resolver's counters into a metrics scope;
// experiment testbeds merge every resolver of a run into one "resolver"
// scope of the run's registry.
func (r *Resolver) CollectMetrics(s *metrics.Scope) {
	s.Counter("client_queries").Add(r.m.clientQueries.Value())
	s.Counter("client_responses").Add(r.m.clientResponses.Value())
	s.Counter("cache_hits").Add(r.m.cacheHits.Value())
	s.Counter("cache_misses").Add(r.m.cacheMisses.Value())
	s.Counter("negative_hits").Add(r.m.negativeHits.Value())
	s.Counter("stale_serves").Add(r.m.staleServes.Value())
	s.Counter("late_answers").Add(r.m.lateAnswers.Value())
	s.Counter("upstream_queries").Add(r.m.upstreamQueries.Value())
	s.Counter("upstream_retries").Add(r.m.upstreamRetries.Value())
	s.Counter("timeouts").Add(r.m.timeouts.Value())
	s.Counter("servfails").Add(r.m.servFails.Value())
	s.Counter("lame").Add(r.m.lame.Value())
	s.Counter("bogus").Add(r.m.bogus.Value())
	s.Counter("truncated").Add(r.m.truncated.Value())
	s.Counter("client_truncated").Add(r.m.clientTruncated.Value())
	s.Histogram("upstream_rtt_ms", metrics.DefaultLatencyBucketsMs).Merge(&r.m.upstreamRTTms)
}

// Addr returns the resolver's bound address, or "" before Attach.
func (r *Resolver) Addr() netsim.Addr {
	if r.conn == nil {
		return ""
	}
	return r.conn.Addr()
}

// SetConn binds the resolver to an existing transport.
func (r *Resolver) SetConn(conn netsim.Conn) { r.conn = conn }

// SetTCPConn binds the resolver's TCP-plane transport (nil disables
// TC-bit fallback and TCP client serving).
func (r *Resolver) SetTCPConn(conn netsim.Conn) { r.tcpConn = conn }

// Attach binds the resolver at addr on the simulated network; with
// Config.TCPFallback armed it binds the TCP plane too, so TC=1 fallback
// and TCP clients work out of the box (SetTCPConn binds the TCP plane
// independently). The UDP-only default keeps Attach allocation-parity
// with the pre-TCP engine on benchmark hot paths. Inbound packets are
// dispatched to the client-serving or upstream-response paths by the QR
// bit.
func (r *Resolver) Attach(net *netsim.Network, addr netsim.Addr) {
	r.conn = net.Bind(addr, r.Receive)
	if r.cfg.TCPFallback {
		r.tcpConn = net.BindTCP(addr, r.ReceiveTCP)
	}
}

// headerLen is the fixed DNS header size; anything shorter cannot carry
// a QR bit, let alone a message.
const headerLen = 12

// Receive is the raw packet entry point (exported for custom transports).
// The QR bit routes before decoding: responses decode into the resolver's
// scratch message, while client queries get a fresh one (coalescing
// retains them until the answer is delivered).
func (r *Resolver) Receive(src netsim.Addr, payload []byte) {
	if len(payload) < headerLen {
		return
	}
	if payload[2]&0x80 != 0 {
		if err := dnswire.UnpackInto(&r.upMsg, payload); err != nil {
			return
		}
		r.handleUpstream(&r.upMsg)
		return
	}
	m, err := dnswire.Unpack(payload)
	if err != nil {
		return
	}
	r.serveClient(src, m, false)
}

// ReceiveTCP is Receive for the TCP plane. Responses route to the same
// in-flight table (query IDs are transport-agnostic); client queries are
// answered over TCP without the UDP size limit.
func (r *Resolver) ReceiveTCP(src netsim.Addr, payload []byte) {
	if len(payload) < headerLen {
		return
	}
	if payload[2]&0x80 != 0 {
		if err := dnswire.UnpackInto(&r.upMsg, payload); err != nil {
			return
		}
		r.handleUpstream(&r.upMsg)
		return
	}
	m, err := dnswire.Unpack(payload)
	if err != nil {
		return
	}
	r.serveClient(src, m, true)
}

// allocID returns a message ID not currently in flight.
func (r *Resolver) allocID() uint16 {
	if r.cfg.RandomIDs {
		// Full 16-bit entropy: the defense the poisoning experiments
		// measure. Re-draw on the rare collision with an in-flight ID.
		rng := r.random()
		for {
			id := uint16(rng.Intn(1 << 16))
			if _, busy := r.inflight[id]; !busy && id != 0 {
				return id
			}
		}
	}
	for {
		r.nextID++
		if _, busy := r.inflight[r.nextID]; !busy && r.nextID != 0 {
			return r.nextID
		}
	}
}

// outquery is one upstream query awaiting a response or timeout. Nodes
// are pooled on the resolver (see getOQ/putOQ): the continuation is the
// owning task plus a mode bit instead of per-send closures, so a query
// burst allocates nothing after the first rotation.
type outquery struct {
	id     uint16
	fwd    bool // forward-mode continuation (forwardNext vs tryNextServer)
	tcp    bool // sent over the TCP plane (a TC=1 fallback retry)
	server netsim.Addr
	sentAt time.Time
	timer  clock.TimerRef
	t      *task
	next   *outquery // freelist link
}

func (r *Resolver) getOQ() *outquery {
	if oq := r.oqFree; oq != nil {
		r.oqFree = oq.next
		oq.next = nil
		return oq
	}
	return new(outquery)
}

func (r *Resolver) putOQ(oq *outquery) {
	*oq = outquery{next: r.oqFree}
	r.oqFree = oq
}

// send transmits the task's (name, qtype) to server and arms a timeout.
// fwd marks forwarding mode: the recursion-desired bit is set (the
// upstream is itself a recursive) and failures continue the forwarder
// rotation instead of the iterative one.
func (r *Resolver) send(t *task, server netsim.Addr, fwd bool) {
	r.sendVia(t, server, fwd, false)
}

// sendVia is send with an explicit transport: tcp routes the query over
// the TCP plane (the TC=1 fallback retry path).
func (r *Resolver) sendVia(t *task, server netsim.Addr, fwd, tcp bool) {
	id := r.allocID()
	oq := r.getOQ()
	oq.id, oq.fwd, oq.tcp, oq.server, oq.sentAt, oq.t = id, fwd, tcp, server, r.clk.Now(), t
	if r.inflight == nil {
		r.inflight = make(map[uint16]*outquery)
	}
	r.inflight[id] = oq
	r.m.upstreamQueries.Inc()
	if tr := r.trace; tr != nil {
		tr.Emit(trace.Event{Type: trace.EvUpstreamQuery,
			Probe: trace.ProbeFromName(t.name), Name: t.name, A: uint32(t.qtype),
			Src: string(r.Addr()), Dst: string(server)})
	}

	q := &r.qMsg
	q.ResetQuery(id, t.name, t.qtype)
	q.RecursionDesired = fwd
	do := len(r.cfg.TrustAnchors) > 0
	if size := r.cfg.EDNSSize; size > 0 {
		q.AddEDNS(size, do)
	} else if do {
		q.AddEDNS(4096, true)
	}
	wire, err := q.AppendPack(r.packBuf[:0])
	r.packBuf = wire[:0]
	if err != nil {
		delete(r.inflight, id)
		r.putOQ(oq)
		if fwd {
			t.forwardNext()
		} else {
			t.tryNextServer()
		}
		return
	}
	oq.timer = clock.AfterFuncRef(r.clk, t.timeout, outqueryTimeout, oq)
	if tcp {
		r.tcpConn.Send(server, wire)
		return
	}
	r.conn.Send(server, wire)
}

// outqueryTimeout is the static timeout callback armed by send.
func outqueryTimeout(arg any) {
	oq := arg.(*outquery)
	t, server, fwd := oq.t, oq.server, oq.fwd
	r := t.r
	if r.inflight[oq.id] != oq {
		return
	}
	delete(r.inflight, oq.id)
	r.m.timeouts.Inc()
	r.observe(timeline.UpstreamTimeout)
	r.srttPenalty(server)
	if tr := r.trace; tr != nil {
		tr.Emit(trace.Event{Type: trace.EvUpstreamTimeout,
			Probe: trace.ProbeFromName(t.name), Name: t.name,
			Src: string(r.Addr()), Dst: string(server)})
	}
	r.putOQ(oq)
	if fwd {
		t.forwardNext()
	} else {
		t.tryNextServer()
	}
}

// handleUpstream routes a response to its pending query.
func (r *Resolver) handleUpstream(m *dnswire.Message) {
	oq, ok := r.inflight[m.ID]
	if !ok {
		return // late or spoofed; ignore
	}
	delete(r.inflight, m.ID)
	oq.timer.Stop()
	sample := r.clk.Now().Sub(oq.sentAt)
	r.m.upstreamRTTms.Observe(float64(sample) / float64(time.Millisecond))
	r.srttUpdate(oq.server, sample)
	t, server, fwd, tcp := oq.t, oq.server, oq.fwd, oq.tcp
	r.putOQ(oq)
	if m.Truncated {
		// TC=1 never carries a usable answer: the data sections were
		// stripped to fit the UDP limit. Retry over TCP (or rotate) —
		// consuming it as data is the bug the transport family measures.
		t.handleTruncated(server, fwd, tcp)
		return
	}
	if fwd {
		t.handleForwardResponse(m)
	} else {
		t.handleResponse(server, m)
	}
}

// srttUpdate folds a new RTT sample into the server's smoothed RTT.
func (r *Resolver) srttUpdate(server netsim.Addr, sample time.Duration) {
	if r.srtt == nil {
		r.srtt = make(map[netsim.Addr]time.Duration)
	}
	if old, ok := r.srtt[server]; ok {
		r.srtt[server] = (old*7 + sample*3) / 10
	} else {
		r.srtt[server] = sample
	}
}

// srttPenalty doubles a server's SRTT after a timeout so selection drifts
// away from unresponsive servers (BIND-style decay).
func (r *Resolver) srttPenalty(server netsim.Addr) {
	if r.srtt == nil {
		r.srtt = make(map[netsim.Addr]time.Duration)
	}
	if old, ok := r.srtt[server]; ok {
		penalized := old * 2
		if penalized > 10*time.Second {
			penalized = 10 * time.Second
		}
		r.srtt[server] = penalized
	} else {
		r.srtt[server] = time.Second
	}
}

// pickServer chooses the next candidate index, preferring low SRTT but
// exploring randomly with ExplorationProb, and skipping indices whose bit
// is set in tried.
func (r *Resolver) pickServer(candidates []netsim.Addr, tried []uint64) (int, bool) {
	isTried := func(i int) bool { return tried[i>>6]&(1<<(uint(i)&63)) != 0 }
	n := 0
	for i := range candidates {
		if !isTried(i) {
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	if r.random().Float64() < r.cfg.ExplorationProb {
		k := r.rng.Intn(n)
		for i := range candidates {
			if isTried(i) {
				continue
			}
			if k == 0 {
				return i, true
			}
			k--
		}
	}
	// Lowest SRTT wins; the first server with no SRTT yet is tried
	// eagerly, matching the exploration contract for unknown servers.
	best := -1
	var bestRTT time.Duration
	for i, a := range candidates {
		if isTried(i) {
			continue
		}
		rtt, ok := r.srtt[a]
		if !ok {
			return i, true
		}
		if best < 0 || rtt < bestRTT {
			best, bestRTT = i, rtt
		}
	}
	return best, true
}
