package recursive

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// signedWorld builds the standard hierarchy with cachetest.nl signed, and
// returns the zone key.
func signedWorld(t *testing.T, validate bool) (*world, *dnssec.Key) {
	t.Helper()
	key, err := dnssec.GenerateKey("cachetest.nl.", dnssec.FlagZone,
		detRand{rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	if validate {
		cfg.TrustAnchors = map[string]dnswire.DNSKEY{"cachetest.nl.": key.Public}
	}
	w := newWorld(t, cfg)
	for _, srv := range []*struct{ z *zone.Zone }{
		{w.ns1.Zones()[0]}, {w.ns2.Zones()[0]},
	} {
		if err := dnssec.SignZone(srv.z, key, epoch, 7*24*time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	return w, key
}

// TestValidationAcceptsSignedAnswers: a validating resolver resolves a
// signed zone normally and keeps the signatures with the answer.
func TestValidationAcceptsSignedAnswers(t *testing.T) {
	w, _ := signedWorld(t, true)
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("signed resolution failed: %+v", res)
	}
	// The client did not set DO, so it gets plain answers; the resolver
	// caches the signature alongside the data.
	sig := w.res.Cache().Get(cacheKeyRRSIG("1414.cachetest.nl."), 0)
	if !sig.Hit {
		t.Error("RRSIG not cached with the validated answer")
	}
	if w.res.Stats().Bogus != 0 {
		t.Errorf("bogus count = %d", w.res.Stats().Bogus)
	}
}

// TestValidationRejectsForgedAnswers: when the authoritatives serve
// altered data whose signatures no longer match, the validating resolver
// answers SERVFAIL; a non-validating one accepts the forgery.
func TestValidationRejectsForgedAnswers(t *testing.T) {
	forge := func(w *world) {
		// Change the record *after* signing: the RRSIG no longer covers
		// the data (a cache-poisoning / tampering stand-in).
		for _, z := range []*zone.Zone{w.ns1.Zones()[0], w.ns2.Zones()[0]} {
			if err := z.Replace("1414.cachetest.nl.", dnswire.TypeAAAA, 60,
				dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::bad")}); err != nil {
				t.Fatal(err)
			}
		}
	}

	w, _ := signedWorld(t, true)
	forge(w)
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if !res.ServFail {
		t.Fatalf("validating resolver accepted a forged answer: %+v", res)
	}
	if w.res.Stats().Bogus == 0 {
		t.Error("no bogus answers counted")
	}

	wPlain, _ := signedWorld(t, false)
	forge(wPlain)
	res = wPlain.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("non-validating resolver should accept: %+v", res)
	}
}

// TestValidationIgnoresUnanchoredZones: answers from zones without a
// trust anchor pass through a validating resolver unsigned (insecure).
func TestValidationIgnoresUnanchoredZones(t *testing.T) {
	w, _ := signedWorld(t, true)
	// other.nl is unsigned and unanchored.
	res := w.resolve(t, "www.other.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("insecure zone rejected: %+v", res)
	}
}

func cacheKeyRRSIG(name string) cache.Key {
	return cache.Key{Name: name, Type: dnswire.TypeRRSIG}
}
