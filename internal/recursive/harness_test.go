package recursive

import (
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

// Addresses of the test hierarchy.
const (
	rootAddr = "198.41.0.4"
	nlAddr   = "194.0.28.53"
	ns1Addr  = "192.0.2.1"
	ns2Addr  = "192.0.2.2"
	resAddr  = "10.0.0.53"
)

const rootZoneText = `
$ORIGIN .
$TTL 518400
@   IN SOA a.root-servers.net. nstld.verisign-grs.com. 2018050100 1800 900 604800 86400
@   IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
nl. 172800 IN NS ns1.dns.nl.
ns1.dns.nl. 172800 IN A 194.0.28.53
`

const nlZoneText = `
$ORIGIN nl.
$TTL 7200
@   IN SOA ns1.dns.nl. hostmaster.dns.nl. 2018050100 3600 600 2419200 3600
@   IN NS ns1.dns.nl.
ns1.dns IN A 194.0.28.53
cachetest 3600 IN NS ns1.cachetest.nl.
cachetest 3600 IN NS ns2.cachetest.nl.
ns1.cachetest 3600 IN A 192.0.2.1
ns2.cachetest 3600 IN A 192.0.2.2
`

const cachetestZoneText = `
$ORIGIN cachetest.nl.
$TTL 3600
@       IN SOA ns1 hostmaster 1 7200 3600 864000 60
@       IN NS  ns1
@       IN NS  ns2
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
1414 60 IN AAAA fd0f:3897:faf7:a375:1:586::3c
9999 1800 IN AAAA fd0f:3897:faf7:a375:1:270f:0:1800
www     IN CNAME 1414
alias   IN CNAME www.other.nl.
`

const otherZoneText = `
$ORIGIN other.nl.
$TTL 300
@    IN SOA ns1.dns.nl. h.other.nl. 1 2 3 4 60
@    IN NS ns1.dns.nl.
www  IN AAAA 2001:db8::77
`

// world is a complete simulated DNS hierarchy for resolver tests.
type world struct {
	clk  *clock.Virtual
	net  *netsim.Network
	root *authoritative.Server
	nl   *authoritative.Server
	ns1  *authoritative.Server
	ns2  *authoritative.Server
	res  *Resolver
}

func mustZone(t *testing.T, text string) *zone.Zone {
	t.Helper()
	z, err := zone.ParseString(text, "")
	if err != nil {
		t.Fatal(err)
	}
	return z
}

// newWorld builds the hierarchy and a resolver with cfg (root hints are
// filled in automatically unless forwarding).
func newWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	w := &world{clk: clock.NewVirtual(epoch)}
	w.net = netsim.New(w.clk, 1)

	// The nl zone needs "other.nl" served somewhere; ns1.dns.nl hosts both.
	nlZone := mustZone(t, nlZoneText)
	otherZone := mustZone(t, otherZoneText)

	w.root = authoritative.New(mustZone(t, rootZoneText))
	w.nl = authoritative.New(nlZone, otherZone)
	w.ns1 = authoritative.New(mustZone(t, cachetestZoneText))
	w.ns2 = authoritative.New(mustZone(t, cachetestZoneText))

	w.root.Attach(w.net, rootAddr)
	w.nl.Attach(w.net, nlAddr)
	w.ns1.Attach(w.net, ns1Addr)
	w.ns2.Attach(w.net, ns2Addr)

	if len(cfg.Forwarders) == 0 && len(cfg.RootHints) == 0 {
		cfg.RootHints = []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}}
	}
	w.res = NewResolver(w.clk, cfg)
	w.res.Attach(w.net, resAddr)
	return w
}

// resolve runs a query to completion on the virtual clock and returns the
// result.
func (w *world) resolve(t *testing.T, name string, qtype dnswire.Type) Result {
	t.Helper()
	return resolveOn(t, w.clk, w.res, name, qtype)
}

func resolveOn(t *testing.T, clk *clock.Virtual, r *Resolver, name string, qtype dnswire.Type) Result {
	t.Helper()
	var got *Result
	r.Resolve(name, qtype, 0, func(res Result) { got = &res })
	clk.RunFor(30 * time.Second)
	if got == nil {
		t.Fatalf("resolution of %s %s never completed", name, qtype)
	}
	return *got
}
