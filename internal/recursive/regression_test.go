package recursive

// Regression tests for two defects the property harness (internal/proptest)
// is also wired to detect: the serve-stale refresh discarding its late
// upstream answer, and out-of-bailiwick glue being accepted and cached.

import (
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// TestStaleServeRefreshRepopulatesCache pins the armStaleTimer contract:
// the refresh "keeps running" after the client was answered stale, so a
// late upstream answer must land in the cache. The path to both
// authoritatives is slowed to 1.2 s one-way so the answer arrives at
// ~2.4 s — after the 1.8 s stale-answer timer, before the 3 s query
// timeout. Pre-fix, handleResponse dropped it on t.done and the resolver
// kept serving stale forever.
func TestStaleServeRefreshRepopulatesCache(t *testing.T) {
	w := newWorld(t, Config{
		ServeStale:     true,
		InitialTimeout: 3 * time.Second,
	})
	if res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA); res.Stale || len(res.Answers) == 0 {
		t.Fatalf("warm resolve = %+v", res)
	}
	// Let the 60 s record expire; the delegation NS and glue (TTL 3600)
	// stay cached, so the refresh goes straight to the cachetest servers.
	w.clk.RunFor(2 * time.Minute)
	w.net.SetPairDelay(resAddr, ns1Addr, 1200*time.Millisecond)
	w.net.SetPairDelay(resAddr, ns2Addr, 1200*time.Millisecond)

	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if !res.Stale {
		t.Fatalf("expected a stale answer, got %+v", res)
	}
	// resolve ran the clock 30 s past the query, so the refresh answer has
	// long since arrived; it must be in the cache, fresh.
	v := w.res.Cache().Get(cache.Key{Name: "1414.cachetest.nl.", Type: dnswire.TypeAAAA}, 0)
	if !v.Hit || v.Stale {
		t.Fatalf("late refresh answer was not cached: %+v", v)
	}
	if st := w.res.Stats(); st.LateAnswers == 0 {
		t.Errorf("LateAnswers = 0, want > 0")
	}
	// And the next client query is a plain cache hit, not another stale serve.
	if res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA); res.Stale || !res.FromCache {
		t.Errorf("post-refresh resolve = %+v, want fresh cache hit", res)
	}
}

// TestOutOfBailiwickGlueNotCached reproduces the classic poisoning vector:
// a compromised parent server volunteers additional-section addresses for
// names outside the zone it is delegating. The resolver must still follow
// the legitimate in-bailiwick glue but cache none of the poison.
func TestOutOfBailiwickGlueNotCached(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)

	root := authoritative.New(mustZone(t, rootZoneText))
	root.Attach(net, rootAddr)
	ns1 := authoritative.New(mustZone(t, cachetestZoneText))
	ns1.Attach(net, ns1Addr)

	// A compromised nl. server: every query gets a referral to
	// cachetest.nl carrying the legitimate glue plus two poison records —
	// an address for an unrelated name, and a hijack of nl.'s own
	// nameserver host (which the root referral legitimately cached).
	var port *netsim.Port
	port = net.Bind(nlAddr, func(src netsim.Addr, payload []byte) {
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Response {
			return
		}
		resp := dnswire.NewResponse(q)
		resp.Authorities = append(resp.Authorities, dnswire.RR{
			Name: "cachetest.nl.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.NS{Host: "ns1.cachetest.nl."},
		})
		resp.Additionals = append(resp.Additionals,
			dnswire.RR{Name: "ns1.cachetest.nl.", Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.A{Addr: dnswire.MustAddr("192.0.2.1")}},
			dnswire.RR{Name: "www.bank.nl.", Class: dnswire.ClassIN, TTL: 86400,
				Data: dnswire.A{Addr: dnswire.MustAddr("203.0.113.66")}},
			dnswire.RR{Name: "ns1.dns.nl.", Class: dnswire.ClassIN, TTL: 86400,
				Data: dnswire.A{Addr: dnswire.MustAddr("203.0.113.67")}},
		)
		wire, err := resp.Pack()
		if err != nil {
			t.Errorf("pack: %v", err)
			return
		}
		port.Send(src, wire)
	})

	r := NewResolver(clk, Config{
		RootHints: []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}},
	})
	r.Attach(net, resAddr)

	res := resolveOn(t, clk, r, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail || len(res.Answers) == 0 {
		t.Fatalf("resolution through the legitimate glue failed: %+v", res)
	}
	if v := r.Cache().Peek(cache.Key{Name: "www.bank.nl.", Type: dnswire.TypeA}, 0); v.Hit {
		t.Errorf("out-of-bailiwick additional was cached: %v", v.Records)
	}
	v := r.Cache().Peek(cache.Key{Name: "ns1.dns.nl.", Type: dnswire.TypeA}, 0)
	for _, rr := range v.Records {
		if a, ok := rr.Data.(dnswire.A); ok && a.Addr.String() == "203.0.113.67" {
			t.Errorf("nl. nameserver address hijacked by additional-section poison: %v", rr)
		}
	}
}
