package recursive

import (
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/cache"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

func TestIterativeResolution(t *testing.T) {
	w := newWorld(t, Config{})
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail || res.RCode != dnswire.RCodeNoError {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Answers) != 1 || res.Answers[0].Type() != dnswire.TypeAAAA {
		t.Fatalf("answers = %v", res.Answers)
	}
	want := dnswire.MustAddr("fd0f:3897:faf7:a375:1:586::3c")
	if got := res.Answers[0].Data.(dnswire.AAAA).Addr; got != want {
		t.Errorf("addr = %v", got)
	}
	if res.FromCache {
		t.Error("first resolution claimed cache")
	}
	// The full chain touched root, nl, and one of the cachetest servers.
	if w.root.Stats().Queries != 1 {
		t.Errorf("root queries = %d, want 1", w.root.Stats().Queries)
	}
	if w.nl.Stats().Queries != 1 {
		t.Errorf("nl queries = %d, want 1", w.nl.Stats().Queries)
	}
	if got := w.ns1.Stats().Queries + w.ns2.Stats().Queries; got != 1 {
		t.Errorf("cachetest queries = %d, want 1", got)
	}
}

func TestSecondQueryServedFromCache(t *testing.T) {
	w := newWorld(t, Config{})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	upBefore := w.res.Stats().UpstreamQueries
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if !res.FromCache {
		t.Error("second query not served from cache")
	}
	if got := w.res.Stats().UpstreamQueries; got != upBefore {
		t.Errorf("cache hit sent %d upstream queries", got-upBefore)
	}
	// Cached TTL must have decremented: world advanced ~30s in round 1.
	if ttl := res.Answers[0].TTL; ttl >= 60 {
		t.Errorf("cached TTL = %d, want < 60", ttl)
	}
}

func TestReferralsAreCached(t *testing.T) {
	w := newWorld(t, Config{})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	w.resolve(t, "9999.cachetest.nl.", dnswire.TypeAAAA)
	// The second name reuses the cached delegation: root and nl see no
	// extra queries.
	if got := w.root.Stats().Queries; got != 1 {
		t.Errorf("root queries = %d, want 1", got)
	}
	if got := w.nl.Stats().Queries; got != 1 {
		t.Errorf("nl queries = %d, want 1", got)
	}
}

func TestNegativeCaching(t *testing.T) {
	w := newWorld(t, Config{})
	res := w.resolve(t, "missing.cachetest.nl.", dnswire.TypeAAAA)
	if res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", res.RCode)
	}
	authQueries := w.ns1.Stats().Queries + w.ns2.Stats().Queries
	res = w.resolve(t, "missing.cachetest.nl.", dnswire.TypeAAAA)
	if !res.FromCache || res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("negative answer not cached: %+v", res)
	}
	if got := w.ns1.Stats().Queries + w.ns2.Stats().Queries; got != authQueries {
		t.Error("negative hit still queried authoritatives")
	}
	// SOA minimum is 60 s; after it expires the authoritative is asked
	// again.
	w.clk.RunFor(61 * time.Second)
	res = w.resolve(t, "missing.cachetest.nl.", dnswire.TypeAAAA)
	if res.FromCache {
		t.Error("negative entry outlived its TTL")
	}
}

func TestNoDataCaching(t *testing.T) {
	w := newWorld(t, Config{})
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeA) // only AAAA exists
	if res.RCode != dnswire.RCodeNoError || len(res.Answers) != 0 {
		t.Fatalf("NODATA result = %+v", res)
	}
	if res.SOA.Data == nil {
		t.Error("NODATA without SOA")
	}
	res = w.resolve(t, "1414.cachetest.nl.", dnswire.TypeA)
	if !res.FromCache {
		t.Error("NODATA not cached")
	}
}

func TestCNAMEChaseWithinZone(t *testing.T) {
	w := newWorld(t, Config{})
	res := w.resolve(t, "www.cachetest.nl.", dnswire.TypeAAAA)
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %v", res.Answers)
	}
	if res.Answers[0].Type() != dnswire.TypeCNAME || res.Answers[1].Type() != dnswire.TypeAAAA {
		t.Errorf("chain = %v", res.Answers)
	}
}

func TestCNAMEChaseAcrossZones(t *testing.T) {
	w := newWorld(t, Config{})
	res := w.resolve(t, "alias.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %v", res.Answers)
	}
	last := res.Answers[len(res.Answers)-1]
	if last.Name != "www.other.nl." || last.Type() != dnswire.TypeAAAA {
		t.Errorf("final answer = %v", last)
	}
	// A cached partial chain also resolves.
	res = w.resolve(t, "alias.cachetest.nl.", dnswire.TypeAAAA)
	if len(res.Answers) != 2 {
		t.Errorf("second chase answers = %v", res.Answers)
	}
}

func TestRetryAgainstSecondServer(t *testing.T) {
	w := newWorld(t, Config{})
	w.net.SetInboundLoss(ns1Addr, 1) // ns1 dead, ns2 alive
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("resolution failed with one living server: %+v", res)
	}
	if w.ns2.Stats().Queries == 0 {
		t.Error("second server never queried")
	}
}

func TestCompleteFailureServFail(t *testing.T) {
	w := newWorld(t, Config{})
	w.net.SetInboundLoss(ns1Addr, 1)
	w.net.SetInboundLoss(ns2Addr, 1)
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if !res.ServFail {
		t.Fatalf("expected SERVFAIL, got %+v", res)
	}
	if w.res.Stats().Timeouts == 0 {
		t.Error("no timeouts recorded")
	}
}

func TestRetriesAreBounded(t *testing.T) {
	w := newWorld(t, Config{MaxAttempts: 5, WorkBudget: 20})
	w.net.SetInboundLoss(ns1Addr, 1)
	w.net.SetInboundLoss(ns2Addr, 1)
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	// Attempts against the dead zone are bounded by MaxAttempts (root and
	// nl answered fine, 1 query each).
	up := w.res.Stats().UpstreamQueries
	if up > 7+2 {
		t.Errorf("upstream queries = %d, want <= 9", up)
	}
	if up < 5 {
		t.Errorf("upstream queries = %d, want >= 5 retries", up)
	}
}

func TestServeStaleAfterExpiry(t *testing.T) {
	w := newWorld(t, Config{ServeStale: true, Cache: cache.Config{StaleWindow: time.Hour}})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA) // warm (TTL 60)
	w.clk.RunFor(2 * time.Minute)                        // expire
	w.net.SetInboundLoss(ns1Addr, 1)
	w.net.SetInboundLoss(ns2Addr, 1)
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail || !res.Stale {
		t.Fatalf("expected stale answer, got %+v", res)
	}
	if res.Answers[0].TTL != 0 {
		t.Errorf("stale TTL = %d, want 0 (§5.3: stale answers carry TTL 0)", res.Answers[0].TTL)
	}
	if w.res.Stats().StaleServes != 1 {
		t.Errorf("StaleServes = %d", w.res.Stats().StaleServes)
	}
}

func TestTTLCapRewritesTTL(t *testing.T) {
	// An EC2-style resolver caps all TTLs at 60 s (§3.4).
	w := newWorld(t, Config{Cache: cache.Config{MaxTTL: 60 * time.Second}})
	w.resolve(t, "9999.cachetest.nl.", dnswire.TypeAAAA) // zone TTL 1800
	w.clk.RunFor(90 * time.Second)
	res := w.resolve(t, "9999.cachetest.nl.", dnswire.TypeAAAA)
	if res.FromCache {
		t.Error("capped entry survived past the cap")
	}
}

func TestFragmentedShardsMissIndependently(t *testing.T) {
	w := newWorld(t, Config{Cache: cache.Config{Shards: 4}})
	var first, second Result
	w.res.Resolve("9999.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { first = r })
	w.clk.RunFor(30 * time.Second)
	w.res.Resolve("9999.cachetest.nl.", dnswire.TypeAAAA, 1, func(r Result) { second = r })
	w.clk.RunFor(30 * time.Second)
	if first.FromCache {
		t.Error("first query from cache")
	}
	if second.FromCache {
		t.Error("shard 1 shared shard 0's cache (fragmentation broken)")
	}
	// Same shard does hit.
	var third Result
	w.res.Resolve("9999.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { third = r })
	w.clk.RunFor(time.Second)
	if !third.FromCache {
		t.Error("same shard missed")
	}
}

func TestHarvestNSAddrs(t *testing.T) {
	w := newWorld(t, Config{Harvest: HarvestFull})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	st := w.ns1.Stats()
	st2 := w.ns2.Stats()
	nsQ := st.ByType[dnswire.TypeNS] + st2.ByType[dnswire.TypeNS]
	aQ := st.ByType[dnswire.TypeA] + st2.ByType[dnswire.TypeA]
	aaaaQ := st.ByType[dnswire.TypeAAAA] + st2.ByType[dnswire.TypeAAAA]
	if nsQ == 0 {
		t.Error("no NS harvest queries")
	}
	if aQ == 0 {
		t.Error("no A-for-NS harvest queries")
	}
	// AAAA-for-NS (which do not exist) plus the target AAAA.
	if aaaaQ < 3 {
		t.Errorf("AAAA queries = %d, want >= 3 (target + 2 NS)", aaaaQ)
	}
}

func TestServeOverNetworkAndCoalescing(t *testing.T) {
	w := newWorld(t, Config{})
	responses := 0
	var lastResp *dnswire.Message
	w.net.Bind("10.9.9.9", func(src netsim.Addr, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("bad response: %v", err)
			return
		}
		responses++
		lastResp = m
	})
	q1 := dnswire.NewQuery(1, "1414.cachetest.nl.", dnswire.TypeAAAA)
	q2 := dnswire.NewQuery(2, "1414.cachetest.nl.", dnswire.TypeAAAA)
	wire1, _ := q1.Pack()
	wire2, _ := q2.Pack()
	w.net.Send("10.9.9.9", resAddr, wire1)
	w.net.Send("10.9.9.9", resAddr, wire2)
	w.clk.RunFor(30 * time.Second)
	if responses != 2 {
		t.Fatalf("responses = %d, want 2", responses)
	}
	if !lastResp.RecursionAvailable {
		t.Error("RA bit not set")
	}
	if len(lastResp.Answers) != 1 {
		t.Errorf("answers = %v", lastResp.Answers)
	}
	// Coalescing collapsed the two concurrent queries into one upstream
	// resolution chain (3 queries: root, nl, cachetest).
	if up := w.res.Stats().UpstreamQueries; up > 3 {
		t.Errorf("upstream queries = %d, want <= 3 with coalescing", up)
	}
}

func TestForwardingMode(t *testing.T) {
	w := newWorld(t, Config{})
	// A first-level R1 forwarding to the world's iterative resolver.
	r1 := NewResolver(w.clk, Config{
		Forwarders: []netsim.Addr{resAddr},
		NoCache:    true,
	})
	r1.Attach(w.net, "10.0.0.1")
	res := resolveOn(t, w.clk, r1, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail || len(res.Answers) != 1 {
		t.Fatalf("forwarded result = %+v", res)
	}
}

func TestForwardingFailover(t *testing.T) {
	w := newWorld(t, Config{})
	// Second upstream recursive resolver.
	res2 := NewResolver(w.clk, Config{
		RootHints: []ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}},
	})
	res2.Attach(w.net, "10.0.0.54")
	r1 := NewResolver(w.clk, Config{
		Forwarders: []netsim.Addr{resAddr, "10.0.0.54"},
		NoCache:    true,
	})
	r1.Attach(w.net, "10.0.0.1")
	// First upstream is unreachable. The forwarder shuffles its upstream
	// list per query, so run several queries: every one must succeed, and
	// the ones that picked the dead upstream first must have failed over
	// (visible as timeouts).
	w.net.SetInboundLoss(resAddr, 1)
	for i := 0; i < 8; i++ {
		res := resolveOn(t, w.clk, r1, "1414.cachetest.nl.", dnswire.TypeAAAA)
		if res.ServFail {
			t.Fatalf("query %d: failover did not work: %+v", i, res)
		}
	}
	if r1.Stats().Timeouts == 0 {
		t.Error("no query ever tried the dead upstream; failover untested")
	}
}

func TestForwardingCachesAnswers(t *testing.T) {
	w := newWorld(t, Config{})
	r1 := NewResolver(w.clk, Config{Forwarders: []netsim.Addr{resAddr}})
	r1.Attach(w.net, "10.0.0.1")
	resolveOn(t, w.clk, r1, "9999.cachetest.nl.", dnswire.TypeAAAA)
	up := r1.Stats().UpstreamQueries
	res := resolveOn(t, w.clk, r1, "9999.cachetest.nl.", dnswire.TypeAAAA)
	if !res.FromCache {
		t.Error("forwarding R1 did not cache")
	}
	if r1.Stats().UpstreamQueries != up {
		t.Error("cache hit forwarded anyway")
	}
}

func TestLameServerRotation(t *testing.T) {
	w := newWorld(t, Config{})
	// Replace ns1 with a server that hosts no zones, so it REFUSES
	// everything (a lame delegation).
	authoritative.New().Attach(w.net, ns1Addr)
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("lame rotation failed: %+v", res)
	}
}

func TestResolverClientTimeout(t *testing.T) {
	w := newWorld(t, Config{ClientTimeout: 2 * time.Second, MaxAttempts: 50, WorkBudget: 500,
		InitialTimeout: 900 * time.Millisecond})
	w.net.SetInboundLoss(ns1Addr, 1)
	w.net.SetInboundLoss(ns2Addr, 1)
	var got *Result
	start := w.clk.Now()
	w.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { got = &r })
	w.clk.RunFor(time.Minute)
	if got == nil {
		t.Fatal("no answer")
	}
	if !got.ServFail {
		t.Errorf("result = %+v", got)
	}
	// The SERVFAIL arrived at the client deadline, not after 50 attempts.
	_ = start
}
