package recursive

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// timeSecond avoids importing time twice in TTL math call sites.
const timeSecond = time.Second

// task tracks one resolution (a client query, a CNAME restart, or an
// NS-address subtask). Tasks form a tree sharing one work budget.
type task struct {
	r      *Resolver
	name   string
	qtype  dnswire.Type
	shard  int
	depth  int
	chain  int // CNAME links consumed so far
	budget *int
	prefix []dnswire.RR // CNAME chain accumulated before this task
	done   bool
	// skipCacheLookup forces an upstream fetch even when the cache holds
	// data (used by the NS harvest to replace glue with authoritative
	// records, Appendix A).
	skipCacheLookup bool
	cb              func(Result)
	// root marks the client-facing task created by Resolve; delivery runs
	// the client-response bookkeeping (deadline, metrics, trace) inline
	// instead of through a wrapping closure.
	root     bool
	deadline clock.TimerRef

	// fetch state for the current zone iteration
	zoneName string
	servers  []netsim.Addr
	// tried is a bitset over servers indices (reset each rotation round).
	// A bitset instead of a map: rotation is the hottest retry path and a
	// task reuses one small allocation for its whole life.
	tried   []uint64
	attempt int
	timeout time.Duration
}

// resetTried clears the tried bitset for a candidate list of n servers,
// reusing the task's existing words when they are large enough.
func (t *task) resetTried(n int) {
	w := (n + 63) / 64
	if cap(t.tried) < w {
		t.tried = make([]uint64, w)
		return
	}
	t.tried = t.tried[:w]
	for i := range t.tried {
		t.tried[i] = 0
	}
}

// markTried records that servers[idx] was attempted. Every index holding
// the same address is marked, preserving the semantics of the map this
// replaces (a duplicated candidate was tried once, not per copy).
func (t *task) markTried(idx int) {
	a := t.servers[idx]
	for i, s := range t.servers {
		if s == a {
			t.tried[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Resolve answers (name, qtype) using the cache and, on a miss, upstream
// resolution. The shard hint selects the backend cache in fragmented
// deployments; callers without an opinion pass a random value. cb runs
// exactly once.
func (r *Resolver) Resolve(name string, qtype dnswire.Type, shard int, cb func(Result)) {
	r.m.clientQueries.Inc()
	budget := r.cfg.WorkBudget
	t := &task{
		r: r, name: dnswire.CanonicalName(name), qtype: qtype,
		shard: shard, budget: &budget, cb: cb, root: true,
	}
	if tr := r.trace; tr != nil {
		tr.Emit(trace.Event{Type: trace.EvResolveStart,
			Probe: trace.ProbeFromName(t.name), Name: t.name, A: uint32(qtype),
			Src: string(r.Addr())})
	}
	t.deadline = clock.AfterFuncRef(r.clk, r.cfg.ClientTimeout, taskDeadline, t)
	t.run()
}

// taskDeadline is the static client-timeout callback armed by Resolve.
func taskDeadline(arg any) { arg.(*task).fail() }

func (t *task) run() {
	if t.cacheAnswer() {
		return
	}
	t.r.m.cacheMisses.Inc()
	t.armStaleTimer()
	if len(t.r.cfg.Forwarders) > 0 {
		t.forward()
		return
	}
	if !t.initFetch() {
		t.fail()
		return
	}
	t.tryNextServer()
}

// armStaleTimer makes a serve-stale resolver answer the client with
// expired data after the client-response delay while the refresh keeps
// running (draft-tale-dnsop-serve-stale; the paper observed exactly this
// from public resolvers during outages, §5.3).
func (t *task) armStaleTimer() {
	if !t.r.cfg.ServeStale || t.r.cfg.NoCache {
		return
	}
	v := t.r.cache.GetStale(cache.Key{Name: t.name, Type: t.qtype}, t.shard)
	if !v.Hit || !v.Stale || v.Negative {
		return
	}
	t.r.clk.AfterFunc(t.r.cfg.StaleAnswerDelay, func() {
		if t.done {
			return
		}
		sv := t.r.cache.GetStale(cache.Key{Name: t.name, Type: t.qtype}, t.shard)
		if !sv.Hit || !sv.Stale || sv.Negative {
			return
		}
		t.r.m.staleServes.Inc()
		t.r.observe(timeline.StaleServed)
		if tr := t.r.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvStaleServe,
				Probe: trace.ProbeFromName(t.name), Name: t.name})
		}
		t.finish(Result{RCode: dnswire.RCodeNoError, Answers: sv.Records,
			Stale: true, FromCache: true})
	})
}

// finish delivers res exactly once. Fresh upstream answers get their TTLs
// rewritten per the cache's cap/floor, since that is what the resolver
// would serve for the rest of the record's life (§3.4 TTL rewriting).
func (t *task) finish(res Result) {
	if t.done {
		return
	}
	t.done = true
	if len(t.prefix) > 0 {
		res.Answers = append(append([]dnswire.RR(nil), t.prefix...), res.Answers...)
	}
	if !res.FromCache && !t.r.cfg.NoCache {
		maxTTL := uint32(t.r.cfg.Cache.MaxTTL / timeSecond)
		minTTL := uint32(t.r.cfg.Cache.MinTTL / timeSecond)
		if maxTTL > 0 || minTTL > 0 {
			res.Answers = append([]dnswire.RR(nil), res.Answers...)
			for i := range res.Answers {
				if maxTTL > 0 && res.Answers[i].TTL > maxTTL {
					res.Answers[i].TTL = maxTTL
				}
				if minTTL > 0 && res.Answers[i].TTL < minTTL {
					res.Answers[i].TTL = minTTL
				}
			}
		}
	}
	t.deliver(res)
}

// deliver hands res to the task's callback, running the client-response
// bookkeeping first when this is the Resolve-created root task.
func (t *task) deliver(res Result) {
	if t.root {
		t.deadline.Stop()
		r := t.r
		r.m.clientResponses.Inc()
		if tr := r.trace; tr != nil {
			stale := uint32(0)
			if res.Stale {
				stale = 1
			}
			probe := trace.ProbeFromName(t.name)
			if res.ServFail {
				// Terminal failures bypass sampling so a SERVFAIL chain is
				// never invisible in a sampled trace.
				tr.Force(trace.Event{Type: trace.EvServFail,
					Probe: probe, Name: t.name, Src: string(r.Addr())})
			}
			tr.Emit(trace.Event{Type: trace.EvResolveDone,
				Probe: probe, Name: t.name, A: uint32(res.RCode), B: stale,
				Src: string(r.Addr())})
		}
	}
	t.cb(res)
}

// fail ends the task with serve-stale if available, else SERVFAIL.
func (t *task) fail() {
	if t.done {
		return
	}
	if t.r.cfg.ServeStale && !t.r.cfg.NoCache {
		if v := t.r.cache.GetStale(cache.Key{Name: t.name, Type: t.qtype}, t.shard); v.Hit && !v.Negative {
			t.r.m.staleServes.Inc()
			t.r.observe(timeline.StaleServed)
			if tr := t.r.trace; tr != nil {
				tr.Emit(trace.Event{Type: trace.EvStaleServe,
					Probe: trace.ProbeFromName(t.name), Name: t.name, A: 1})
			}
			t.finish(Result{RCode: dnswire.RCodeNoError, Answers: v.Records, Stale: true, FromCache: true})
			return
		}
	}
	t.r.m.servFails.Inc()
	t.finish(Result{RCode: dnswire.RCodeServFail, ServFail: true})
}

// cacheAnswer tries to answer entirely from cache, chasing CNAMEs. It
// returns true when the task was finished. A partial CNAME chain found in
// cache becomes the task prefix and resolution restarts at the dangling
// target.
func (t *task) cacheAnswer() bool {
	if t.r.cfg.NoCache || t.skipCacheLookup {
		return false
	}
	minRank := cache.RankAnswer
	if t.r.cfg.AnswerFromReferral {
		minRank = cache.RankAdditional
	}
	cur := t.name
	for hop := 0; hop <= t.r.cfg.MaxCNAME; hop++ {
		v := t.r.cache.Get(cache.Key{Name: cur, Type: t.qtype}, t.shard)
		if v.Hit && !v.Negative && v.Rank < minRank {
			// Referral-learned data is good enough to guide resolution
			// but not to answer clients (RFC 2181 §5.4.1).
			v = cache.View{}
		}
		if v.Hit {
			if v.Negative {
				t.r.m.negativeHits.Inc()
				rcode := dnswire.RCodeNoError
				if v.NXDomain {
					rcode = dnswire.RCodeNXDomain
				}
				t.finish(Result{RCode: rcode, SOA: v.SOA, FromCache: true})
				return true
			}
			t.r.m.cacheHits.Inc()
			t.r.observe(timeline.CacheHit)
			t.r.maybePrefetch(cur, t.qtype, t.shard, v)
			t.finish(Result{RCode: dnswire.RCodeNoError, Answers: v.Records, FromCache: true})
			return true
		}
		if t.qtype == dnswire.TypeCNAME {
			break
		}
		cv := t.r.cache.Get(cache.Key{Name: cur, Type: dnswire.TypeCNAME}, t.shard)
		if !cv.Hit || cv.Negative {
			break
		}
		t.prefix = append(t.prefix, cv.Records...)
		cur = dnswire.CanonicalName(cv.Records[0].Data.(dnswire.CNAME).Target)
		t.chain++
		if t.chain > t.r.cfg.MaxCNAME {
			t.fail()
			return true
		}
	}
	t.name = cur
	return false
}

// initFetch seeds the fetch state from the deepest cached delegation with
// usable addresses, falling back to the root hints.
func (t *task) initFetch() bool {
	t.timeout = t.r.cfg.InitialTimeout
	t.attempt = 0

	if !t.r.cfg.NoCache {
		for z := t.name; ; z = dnswire.Parent(z) {
			if addrs := t.zoneServersFromCache(z); len(addrs) > 0 {
				t.zoneName, t.servers = z, addrs
				t.resetTried(len(t.servers))
				return true
			}
			if z == "." {
				break
			}
		}
	}
	if len(t.r.cfg.RootHints) == 0 {
		return false
	}
	t.zoneName = "."
	t.servers = nil
	for _, h := range t.r.cfg.RootHints {
		t.servers = append(t.servers, h.Addr)
	}
	t.resetTried(len(t.servers))
	return true
}

// zoneServersFromCache returns cached addresses for zone's NS set. Only
// the record data is read, so the clone-free Peek suffices.
func (t *task) zoneServersFromCache(zone string) []netsim.Addr {
	ns := t.r.cache.Peek(cache.Key{Name: zone, Type: dnswire.TypeNS}, t.shard)
	if !ns.Hit || ns.Negative {
		return nil
	}
	var addrs []netsim.Addr
	for _, rr := range ns.Records {
		host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
		a := t.r.cache.Peek(cache.Key{Name: host, Type: dnswire.TypeA}, t.shard)
		if a.Hit && !a.Negative {
			for _, arr := range a.Records {
				addrs = append(addrs, internAddr(arr.Data.(dnswire.A).Addr))
			}
		}
	}
	return addrs
}

// tryNextServer sends the query to the next candidate for the current
// zone, handling retry bookkeeping.
func (t *task) tryNextServer() {
	if t.done {
		return
	}
	if t.attempt >= t.r.cfg.MaxAttempts {
		t.fail()
		return
	}
	if *t.budget <= 0 {
		t.fail()
		return
	}
	idx, ok := t.r.pickServer(t.servers, t.tried)
	if !ok {
		// All candidates tried this round; start another round with a
		// doubled timeout. The per-query timeout grows only here, so every
		// server within one round of the list is probed with the same
		// deadline — exponential backoff across rounds, as the
		// Config.InitialTimeout contract documents.
		t.resetTried(len(t.servers))
		t.timeout *= 2
		if t.timeout > t.r.cfg.MaxTimeout {
			t.timeout = t.r.cfg.MaxTimeout
		}
		idx, ok = t.r.pickServer(t.servers, t.tried)
		if !ok {
			t.fail()
			return
		}
	}
	t.markTried(idx)
	t.attempt++
	*t.budget--
	if t.attempt > 1 {
		t.r.m.upstreamRetries.Inc()
		t.r.observe(timeline.Retry)
	}

	t.r.send(t, t.servers[idx], false)
}

// handleTruncated reacts to a TC=1 upstream response (routed here by
// handleUpstream before the per-mode handlers, so neither mode can
// mistake an answer-stripped response for data): retry the same server
// over TCP when fallback is enabled and this attempt was UDP, otherwise
// rotate to the next candidate.
func (t *task) handleTruncated(server netsim.Addr, fwd, tcp bool) {
	r := t.r
	r.m.truncated.Inc()
	if tr := r.trace; tr != nil {
		tr.Emit(trace.Event{Type: trace.EvTruncate,
			Probe: trace.ProbeFromName(t.name), Name: t.name,
			Src: string(r.Addr()), Dst: string(server)})
	}
	if t.done {
		return // late TC response: nothing cacheable to absorb
	}
	if !tcp && r.cfg.TCPFallback && r.tcpConn != nil {
		if t.attempt >= r.cfg.MaxAttempts || *t.budget <= 0 {
			t.fail()
			return
		}
		t.attempt++
		*t.budget--
		r.m.upstreamRetries.Inc()
		r.observe(timeline.Retry)
		r.observe(timeline.TCPFallback)
		if tr := r.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvTCPFallback,
				Probe: trace.ProbeFromName(t.name), Name: t.name,
				Src: string(r.Addr()), Dst: string(server)})
		}
		r.sendVia(t, server, fwd, true)
		return
	}
	// Fallback disabled (or TCP itself claimed truncation): the stripped
	// response is unusable, treat the server like a lame one.
	if fwd {
		t.forwardNext()
	} else {
		t.tryNextServer()
	}
}

// handleResponse processes an upstream reply for the current fetch.
func (t *task) handleResponse(server netsim.Addr, m *dnswire.Message) {
	if t.done {
		// The client was already answered (stale data or a timeout
		// SERVFAIL) but this fetch was still in flight. The refresh
		// contract (armStaleTimer) requires its result to repopulate the
		// cache: dropping it here would leave a serve-stale resolver
		// answering stale long after the upstream recovered.
		t.absorbLateResponse(m)
		return
	}
	switch m.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeNXDomain:
		t.cacheNegative(m, true)
		t.finish(Result{RCode: dnswire.RCodeNXDomain, SOA: soaOf(m)})
		return
	default:
		// SERVFAIL, REFUSED, lame servers: try the next one.
		t.r.m.lame.Inc()
		t.tryNextServer()
		return
	}

	if len(m.Answers) > 0 {
		t.handleAnswer(m)
		return
	}
	if ns := referralNS(t.r, m, t.zoneName, t.name); len(ns) > 0 {
		t.handleReferral(m, ns)
		return
	}
	if m.Authoritative {
		// NODATA.
		t.cacheNegative(m, false)
		t.finish(Result{RCode: dnswire.RCodeNoError, SOA: soaOf(m)})
		return
	}
	// Empty, non-authoritative, no referral: lame.
	t.r.m.lame.Inc()
	t.tryNextServer()
}

// absorbLateResponse caches what a late upstream reply teaches without
// touching the already-delivered client result: positive answers at
// answer rank (with their in-bailiwick authority and glue sections), and
// NXDOMAIN/NODATA negatives. Referrals are not chased — the background
// refresh ends with whichever response lands, it never spawns new
// queries for a client that is no longer waiting.
func (t *task) absorbLateResponse(m *dnswire.Message) {
	switch m.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeNXDomain:
		t.cacheNegative(m, true)
		t.r.m.lateAnswers.Inc()
		return
	default:
		return
	}
	if len(m.Answers) > 0 {
		if !t.validateAnswer(m) {
			return
		}
		t.cacheRRs(m.Answers, cache.RankAnswer)
		t.cacheAuthorityAndGlue(m)
		t.r.m.lateAnswers.Inc()
		return
	}
	// NODATA: trustworthy from an authoritative source, or from the
	// upstream recursive when forwarding (forwarders never set AA).
	if m.Authoritative || len(t.r.cfg.Forwarders) > 0 {
		if soaOf(m).Data != nil {
			t.cacheNegative(m, false)
			t.r.m.lateAnswers.Inc()
		}
	}
}

// handleAnswer caches the answer RRsets and finishes or restarts on a
// dangling CNAME.
func (t *task) handleAnswer(m *dnswire.Message) {
	if !t.validateAnswer(m) {
		// Bogus data: a validating resolver refuses it and tries another
		// server, then fails hard.
		t.r.m.bogus.Inc()
		t.tryNextServer()
		return
	}
	t.cacheRRs(m.Answers, cache.RankAnswer)
	// Also cache authority NS sets delivered alongside answers.
	t.cacheAuthorityAndGlue(m)

	var collected []dnswire.RR
	cur := t.name
	for hop := 0; hop <= t.r.cfg.MaxCNAME; hop++ {
		matched := false
		for _, rr := range m.Answers {
			if dnswire.CanonicalName(rr.Name) != cur {
				continue
			}
			if rr.Type() == t.qtype {
				// Collect the full RRset for cur/qtype.
				for _, rr2 := range m.Answers {
					if dnswire.CanonicalName(rr2.Name) == cur && rr2.Type() == t.qtype {
						collected = append(collected, rr2)
					}
				}
				t.finish(Result{RCode: dnswire.RCodeNoError, Answers: collected})
				return
			}
			if rr.Type() == dnswire.TypeCNAME && t.qtype != dnswire.TypeCNAME {
				collected = append(collected, rr)
				cur = dnswire.CanonicalName(rr.Data.(dnswire.CNAME).Target)
				t.chain++
				matched = true
				break
			}
		}
		if !matched {
			break
		}
		if t.chain > t.r.cfg.MaxCNAME {
			t.fail()
			return
		}
	}
	if len(collected) > 0 {
		// Dangling CNAME: restart resolution at the target.
		t.prefix = append(t.prefix, collected...)
		t.name = cur
		if !t.initFetch() {
			t.fail()
			return
		}
		t.tryNextServer()
		return
	}
	// Answers that do not relate to the question: lame.
	t.r.m.lame.Inc()
	t.tryNextServer()
}

// handleReferral descends into the delegated zone.
func (t *task) handleReferral(m *dnswire.Message, ns []dnswire.RR) {
	newZone := dnswire.CanonicalName(ns[0].Name)
	t.cacheAuthorityAndGlue(m)

	// Gather in-bailiwick glue in NS-host order: count, then fill an
	// exact-size slice (it becomes t.servers, so it must be owned). The
	// host×additional scan replaces a per-referral map; both lists are a
	// handful of records. Out-of-bailiwick glue is skipped: the parent has
	// no authority over addresses outside the zone it is delegating, so a
	// response volunteering them is the classic poisoning vector. Such NS
	// hosts are resolved independently below instead.
	n := 0
	for _, rr := range ns {
		host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
		for _, g := range m.Additionals {
			if _, ok := g.Data.(dnswire.A); !ok {
				continue
			}
			gh := dnswire.CanonicalName(g.Name)
			if gh == host && (t.r.cfg.NoBailiwick || dnswire.IsSubdomain(gh, newZone)) {
				n++
			}
		}
	}
	var addrs []netsim.Addr
	if n > 0 {
		addrs = make([]netsim.Addr, 0, n)
		for _, rr := range ns {
			host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
			for _, g := range m.Additionals {
				a, ok := g.Data.(dnswire.A)
				if !ok {
					continue
				}
				gh := dnswire.CanonicalName(g.Name)
				if gh == host && (t.r.cfg.NoBailiwick || dnswire.IsSubdomain(gh, newZone)) {
					addrs = append(addrs, internAddr(a.Addr))
				}
			}
		}
		t.descend(newZone, addrs)
		return
	}

	// Glueless referral: the host list is only needed now, off the hot
	// path.
	hosts := make([]string, 0, len(ns))
	for _, rr := range ns {
		hosts = append(hosts, dnswire.CanonicalName(rr.Data.(dnswire.NS).Host))
	}
	if !t.r.cfg.NoCache {
		// Try cache for the NS host addresses (they may be out of
		// bailiwick but already known).
		for _, host := range hosts {
			v := t.r.cache.Peek(cache.Key{Name: host, Type: dnswire.TypeA}, t.shard)
			if v.Hit && !v.Negative {
				for _, rr := range v.Records {
					addrs = append(addrs, internAddr(rr.Data.(dnswire.A).Addr))
				}
			}
		}
	}

	if len(addrs) == 0 {
		t.resolveNSAddrs(hosts, newZone)
		return
	}

	t.descend(newZone, addrs)
}

func (t *task) descend(newZone string, addrs []netsim.Addr) {
	if tr := t.r.trace; tr != nil {
		dst := ""
		if len(addrs) > 0 {
			dst = string(addrs[0])
		}
		tr.Emit(trace.Event{Type: trace.EvReferral,
			Probe: trace.ProbeFromName(t.name), Name: newZone,
			A: uint32(len(addrs)), Dst: dst})
	}
	t.zoneName = newZone
	t.servers = addrs
	t.resetTried(len(addrs))
	// Referral progress resets the attempt counter; the shared budget
	// still bounds total work.
	t.attempt = 0
	t.timeout = t.r.cfg.InitialTimeout
	// The client's own query goes out before any background harvesting,
	// so a tight work budget is spent on the answer first.
	t.tryNextServer()
	if t.r.cfg.Harvest != HarvestNone {
		t.r.maybeHarvest(newZone, t.shard, t.budget)
	}
}

// resolveNSAddrs resolves the address of a delegated zone's nameservers
// via a subtask, then descends.
func (t *task) resolveNSAddrs(hosts []string, newZone string) {
	if t.depth >= t.r.cfg.MaxDepth || len(hosts) == 0 {
		t.fail()
		return
	}
	if k := t.r.cfg.MaxFetch; k > 0 && len(hosts) > k {
		// NXNSAttack max-fetch(k): a glueless delegation only gets k
		// NS-address resolutions, capping the fan-out a malicious
		// referral can force (Afek et al. §6).
		hosts = hosts[:k]
	}
	// Try hosts in order until one yields addresses.
	var tryHost func(i int)
	tryHost = func(i int) {
		if t.done {
			return
		}
		if i >= len(hosts) || *t.budget <= 0 {
			t.fail()
			return
		}
		sub := &task{
			r: t.r, name: hosts[i], qtype: dnswire.TypeA,
			shard: t.shard, depth: t.depth + 1, budget: t.budget,
			cb: func(res Result) {
				var addrs []netsim.Addr
				for _, rr := range res.Answers {
					if a, ok := rr.Data.(dnswire.A); ok {
						addrs = append(addrs, internAddr(a.Addr))
					}
				}
				if len(addrs) > 0 {
					t.descend(newZone, addrs)
					return
				}
				tryHost(i + 1)
			},
		}
		sub.run()
	}
	tryHost(0)
}

// maybeHarvest issues background NS/A/AAAA queries for a zone's
// nameservers, at most once per negative-TTL-ish interval. This reproduces
// the authoritative-side query mix of Figure 10: the AAAA-for-NS records
// do not exist, so their negative entries expire quickly and the harvest
// repeats. The harvest runs on its own bounded budget so it never starves
// the client's query.
func (r *Resolver) maybeHarvest(zone string, shard int, _ *int) {
	const harvestInterval = 60 * time.Second
	now := r.clk.Now()
	if last, ok := r.harvests[zone]; ok && now.Sub(last) < harvestInterval {
		return
	}
	if r.harvests == nil {
		r.harvests = make(map[string]time.Time)
	}
	r.harvests[zone] = now
	pool := r.cfg.WorkBudget/4 + 2
	budget := &pool

	ns := r.cache.Peek(cache.Key{Name: zone, Type: dnswire.TypeNS}, shard)
	if !ns.Hit || ns.Negative {
		return
	}
	// Re-fetch the zone's nameserver records. Entries already confirmed
	// by an authoritative answer (RankAnswer) are not re-fetched. In
	// HarvestAAAA mode only the (usually missing) AAAA records are
	// chased; HarvestFull also replaces the referral NS set and glue with
	// child-side data (Appendix A).
	if r.cfg.Harvest == HarvestFull {
		r.background(zone, dnswire.TypeNS, shard, budget, false)
	}
	for _, rr := range ns.Records {
		host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
		if r.cfg.Harvest == HarvestFull {
			r.background(host, dnswire.TypeA, shard, budget, false)
		}
		r.background(host, dnswire.TypeAAAA, shard, budget, false)
	}
}

// maybePrefetch refreshes an entry nearing expiry (Unbound-style
// prefetch): when a hit finds less than cfg.Prefetch of the original TTL
// remaining, the record is refetched in the background so popular names
// never leave the cache.
func (r *Resolver) maybePrefetch(name string, qtype dnswire.Type, shard int, v cache.View) {
	if r.cfg.Prefetch <= 0 || len(v.Records) == 0 {
		return
	}
	remaining := time.Duration(v.Records[0].TTL) * time.Second
	original := v.Age + remaining
	if original <= 0 || float64(remaining) > r.cfg.Prefetch*float64(original) {
		return
	}
	pool := 4
	r.background(name, qtype, shard, &pool, true)
}

// background runs a fire-and-forget resolution sharing the parent budget,
// bypassing cache entries that were not authoritatively confirmed. force
// refetches even over confirmed data (prefetch).
func (r *Resolver) background(name string, qtype dnswire.Type, shard int, budget *int, force bool) {
	if *budget <= 0 {
		return
	}
	name = dnswire.CanonicalName(name)
	if !force {
		if v := r.cache.Peek(cache.Key{Name: name, Type: qtype}, shard); v.Hit && v.Rank >= cache.RankAnswer {
			return // authoritative data already cached
		}
	}
	t := &task{
		r: r, name: name, qtype: qtype,
		shard: shard, depth: r.cfg.MaxDepth, // no nested subtasks
		budget:          budget,
		skipCacheLookup: true,
		cb:              func(Result) {},
	}
	if !t.initFetch() {
		return
	}
	t.tryNextServer()
}

// validateAnswer checks the DNSSEC signatures of every answer RRset whose
// signer zone has a trust anchor. Unsigned data from unanchored zones
// passes (insecure), matching a validator without a chain to it; signed
// or anchored data must verify.
func (t *task) validateAnswer(m *dnswire.Message) bool {
	anchors := t.r.cfg.TrustAnchors
	if len(anchors) == 0 {
		return true
	}
	type setKey struct {
		name string
		typ  dnswire.Type
	}
	sets := make(map[setKey][]dnswire.RR)
	sigs := make(map[setKey]dnswire.RR)
	for _, rr := range m.Answers {
		name := dnswire.CanonicalName(rr.Name)
		if sig, ok := rr.Data.(dnswire.RRSIG); ok {
			sigs[setKey{name, sig.TypeCovered}] = rr
			continue
		}
		k := setKey{name, rr.Type()}
		sets[k] = append(sets[k], rr)
	}
	for k, rrs := range sets {
		// Which anchor zone encloses this owner?
		anchorZone, key, found := "", dnswire.DNSKEY{}, false
		for zone, dk := range anchors {
			zone = dnswire.CanonicalName(zone)
			if dnswire.IsSubdomain(k.name, zone) &&
				(!found || dnswire.CountLabels(zone) > dnswire.CountLabels(anchorZone)) {
				anchorZone, key, found = zone, dk, true
			}
		}
		if !found {
			continue // no anchor: insecure, accepted
		}
		sig, ok := sigs[k]
		if !ok {
			return false // anchored zone data without a signature: bogus
		}
		if err := dnssec.Verify(key, sig, rrs, t.r.clk.Now()); err != nil {
			return false
		}
	}
	return true
}

// cacheRRs groups records into RRsets and stores them at the given rank.
// Grouping is done by rescanning from each first occurrence rather than
// through a scratch map: the lists are a handful of records, the cache
// retains each set (so those slices must be freshly allocated either
// way), and the rescan makes the Put order deterministic.
func (t *task) cacheRRs(rrs []dnswire.RR, rank cache.Rank) {
	if t.r.cfg.NoCache || len(rrs) == 0 {
		return
	}
	for i := range rrs {
		k := cache.Key{Name: dnswire.CanonicalName(rrs[i].Name), Type: rrs[i].Type()}
		n, first := 0, true
		for j := range rrs {
			kj := cache.Key{Name: dnswire.CanonicalName(rrs[j].Name), Type: rrs[j].Type()}
			if kj != k {
				continue
			}
			if j < i {
				first = false
				break
			}
			n++
		}
		if !first {
			continue
		}
		set := make([]dnswire.RR, 0, n)
		for j := i; j < len(rrs); j++ {
			kj := cache.Key{Name: dnswire.CanonicalName(rrs[j].Name), Type: rrs[j].Type()}
			if kj == k {
				set = append(set, rrs[j])
			}
		}
		t.r.cache.Put(k, cache.Entry{Records: set, Rank: rank}, t.shard)
	}
}

// cacheAuthorityAndGlue stores referral NS sets and in-bailiwick glue
// addresses. Glue credibility is scoped by the delegation: an
// additional-section record is cached only when it is an address record
// whose owner sits inside the zone the NS set covers. Anything else —
// addresses outside the bailiwick, or non-address types such as the EDNS
// OPT pseudo-record — is dropped, never cached.
func (t *task) cacheAuthorityAndGlue(m *dnswire.Message) {
	if t.r.cfg.NoCache {
		return
	}
	// The NS and glue lists live only for this call (cacheRRs copies what
	// the cache keeps), so they borrow the resolver's scratch buffer. The
	// event loop is single-threaded and this function never yields, so the
	// buffer cannot be observed mid-use.
	nsRRs := t.r.rrScratch[:0]
	for _, rr := range m.Authorities {
		if rr.Type() == dnswire.TypeNS {
			nsRRs = append(nsRRs, rr)
		}
	}
	rank := cache.RankAuthority
	if m.Authoritative {
		rank = cache.RankAnswer
	}
	t.cacheRRs(nsRRs, rank)

	bailiwick := ""
	if len(nsRRs) > 0 {
		bailiwick = dnswire.CanonicalName(nsRRs[0].Name)
	} else {
		// An authoritative NS answer (no authority NS set) still carries
		// its glue in the additional section; scope it to the answer's
		// owner zone.
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeNS {
				bailiwick = dnswire.CanonicalName(rr.Name)
				break
			}
		}
	}
	if bailiwick == "" {
		t.r.rrScratch = nsRRs[:0]
		return // no NS set in sight: no additional is credible
	}
	glue := nsRRs[:0] // the NS set was copied by cacheRRs above
	for _, rr := range m.Additionals {
		if typ := rr.Type(); typ != dnswire.TypeA && typ != dnswire.TypeAAAA {
			continue
		}
		if !t.r.cfg.NoBailiwick && !dnswire.IsSubdomain(dnswire.CanonicalName(rr.Name), bailiwick) {
			continue
		}
		glue = append(glue, rr)
	}
	t.cacheRRs(glue, cache.RankAdditional)
	t.r.rrScratch = glue[:0]
}

// cacheNegative stores an NXDOMAIN or NODATA entry for the current name.
func (t *task) cacheNegative(m *dnswire.Message, nxdomain bool) {
	if t.r.cfg.NoCache {
		return
	}
	soa := soaOf(m)
	if soa.Data == nil {
		return // unusable without a SOA (RFC 2308)
	}
	t.r.cache.Put(cache.Key{Name: t.name, Type: t.qtype}, cache.Entry{
		Negative: true, NXDomain: nxdomain, SOA: soa, Rank: cache.RankAnswer,
	}, t.shard)
}

// soaOf extracts the authority SOA from a negative response.
func soaOf(m *dnswire.Message) dnswire.RR {
	for _, rr := range m.Authorities {
		if rr.Type() == dnswire.TypeSOA {
			return rr
		}
	}
	return dnswire.RR{}
}

// referralNS returns the NS set of a referral that makes downward
// progress: owned by a name deeper than the current zone and enclosing
// the query name.
// The returned slice borrows r's scratch buffer: it is valid only until
// the next referralNS call on this resolver (callers consume it within
// the same event dispatch).
func referralNS(r *Resolver, m *dnswire.Message, currentZone, qname string) []dnswire.RR {
	if m.Authoritative {
		return nil
	}
	ns := r.nsScratch[:0]
	defer func() { r.nsScratch = ns[:0] }()
	owner := ""
	for _, rr := range m.Authorities {
		if rr.Type() != dnswire.TypeNS {
			continue
		}
		name := dnswire.CanonicalName(rr.Name)
		if owner == "" {
			owner = name
		}
		if name == owner {
			ns = append(ns, rr)
		}
	}
	if owner == "" {
		return nil
	}
	if !dnswire.IsSubdomain(qname, owner) {
		return nil
	}
	if dnswire.CountLabels(owner) <= dnswire.CountLabels(currentZone) {
		return nil // upward or sideways referral: lame
	}
	return ns
}

// internAddr converts a glue address to its simulator string form through
// a process-wide cache: referrals repeat the same handful of server
// addresses millions of times per run, and netip's formatter allocates on
// every call.
func internAddr(a netip.Addr) netsim.Addr {
	addrIntern.mu.Lock()
	s, ok := addrIntern.m[a]
	if !ok {
		s = netsim.Addr(a.String())
		if addrIntern.m == nil {
			addrIntern.m = make(map[netip.Addr]netsim.Addr)
		}
		addrIntern.m[a] = s
	}
	addrIntern.mu.Unlock()
	return s
}

var addrIntern struct {
	mu sync.Mutex
	m  map[netip.Addr]netsim.Addr
}
