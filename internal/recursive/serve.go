package recursive

import (
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// clientJob tracks identical in-flight client queries that share one
// resolution (query coalescing).
type clientJob struct {
	waiters []waiter
}

type waiter struct {
	src netsim.Addr
	q   *dnswire.Message
}

// serveClient answers a query received from a stub (or a downstream R1).
func (r *Resolver) serveClient(src netsim.Addr, q *dnswire.Message) {
	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeNotImp
		r.respond(src, resp)
		return
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassIN {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeRefused
		r.respond(src, resp)
		return
	}
	name := dnswire.CanonicalName(question.Name)

	// Fragmented deployments land each query on an arbitrary backend
	// cache (§3.5): pick the shard here so coalescing is per-backend.
	shard := 0
	if n := r.cache.Shards(); n > 1 {
		shard = r.random().Intn(n)
	}

	key := coalesceKey{name: name, qtype: question.Type, shard: shard}
	if r.coalesce == nil {
		r.coalesce = make(map[coalesceKey]*clientJob)
	}
	if job, ok := r.coalesce[key]; ok {
		job.waiters = append(job.waiters, waiter{src: src, q: q})
		return
	}
	job := &clientJob{waiters: []waiter{{src: src, q: q}}}
	r.coalesce[key] = job

	r.Resolve(name, question.Type, shard, func(res Result) {
		delete(r.coalesce, key)
		for _, w := range job.waiters {
			// respMsg is packed and sent before the next waiter reuses it.
			r.respond(w.src, r.buildResponseInto(&r.respMsg, w.q, res))
		}
	})
}

// HandleQuery answers a parsed client query transport-independently:
// cb receives the complete response message exactly once. cmd/recursived
// uses it to serve DNS over TCP alongside the packet path.
func (r *Resolver) HandleQuery(q *dnswire.Message, cb func(*dnswire.Message)) {
	if q.Response {
		return
	}
	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeNotImp
		cb(resp)
		return
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassIN {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeRefused
		cb(resp)
		return
	}
	shard := 0
	if n := r.cache.Shards(); n > 1 {
		shard = r.random().Intn(n)
	}
	r.Resolve(dnswire.CanonicalName(question.Name), question.Type, shard,
		func(res Result) { cb(r.buildResponse(q, res)) })
}

// buildResponse renders a Result as a DNS response to q.
func (r *Resolver) buildResponse(q *dnswire.Message, res Result) *dnswire.Message {
	return r.buildResponseInto(&dnswire.Message{}, q, res)
}

// buildResponseInto renders the response into resp (typically the
// resolver's scratch message) and returns it.
func (r *Resolver) buildResponseInto(resp, q *dnswire.Message, res Result) *dnswire.Message {
	resp.ResetResponse(q)
	resp.RecursionAvailable = true
	resp.RCode = res.RCode
	resp.Answers = append(resp.Answers, res.Answers...)
	if res.SOA.Data != nil {
		resp.Authorities = append(resp.Authorities, res.SOA)
	}
	return resp
}

// maxUDPPayload mirrors the classic DNS-over-UDP limit; oversized
// responses are truncated with the TC bit so clients retry over TCP.
const maxUDPPayload = 512

func (r *Resolver) respond(dst netsim.Addr, resp *dnswire.Message) {
	wire, err := resp.AppendPack(r.packBuf[:0])
	r.packBuf = wire[:0]
	if err != nil {
		return
	}
	if len(wire) > maxUDPPayload {
		trunc := *resp
		trunc.Truncated = true
		trunc.Answers, trunc.Authorities, trunc.Additionals = nil, nil, nil
		if wire, err = trunc.AppendPack(wire[:0]); err != nil {
			return
		}
	}
	r.conn.Send(dst, wire)
}
