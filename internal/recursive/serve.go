package recursive

import (
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// clientJob tracks identical in-flight client queries that share one
// resolution (query coalescing).
type clientJob struct {
	waiters []waiter
}

type waiter struct {
	src netsim.Addr
	q   *dnswire.Message
	tcp bool // arrived over the TCP plane; answer there, untruncated
}

// serveClient answers a query received from a stub (or a downstream R1).
// tcp marks queries that arrived over the TCP plane.
func (r *Resolver) serveClient(src netsim.Addr, q *dnswire.Message, tcp bool) {
	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeNotImp
		r.respond(src, resp, q, tcp)
		return
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassIN {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeRefused
		r.respond(src, resp, q, tcp)
		return
	}
	name := dnswire.CanonicalName(question.Name)

	// Fragmented deployments land each query on an arbitrary backend
	// cache (§3.5): pick the shard here so coalescing is per-backend.
	shard := 0
	if n := r.cache.Shards(); n > 1 {
		shard = r.random().Intn(n)
	}

	key := coalesceKey{name: name, qtype: question.Type, shard: shard}
	if r.coalesce == nil {
		r.coalesce = make(map[coalesceKey]*clientJob)
	}
	if job, ok := r.coalesce[key]; ok {
		job.waiters = append(job.waiters, waiter{src: src, q: q, tcp: tcp})
		return
	}
	job := &clientJob{waiters: []waiter{{src: src, q: q, tcp: tcp}}}
	r.coalesce[key] = job

	r.Resolve(name, question.Type, shard, func(res Result) {
		delete(r.coalesce, key)
		for _, w := range job.waiters {
			// respMsg is packed and sent before the next waiter reuses it.
			r.respond(w.src, r.buildResponseInto(&r.respMsg, w.q, res), w.q, w.tcp)
		}
	})
}

// HandleQuery answers a parsed client query transport-independently:
// cb receives the complete response message exactly once. cmd/recursived
// uses it to serve DNS over TCP alongside the packet path.
func (r *Resolver) HandleQuery(q *dnswire.Message, cb func(*dnswire.Message)) {
	if q.Response {
		return
	}
	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeNotImp
		cb(resp)
		return
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassIN {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = dnswire.RCodeRefused
		cb(resp)
		return
	}
	shard := 0
	if n := r.cache.Shards(); n > 1 {
		shard = r.random().Intn(n)
	}
	r.Resolve(dnswire.CanonicalName(question.Name), question.Type, shard,
		func(res Result) { cb(r.buildResponse(q, res)) })
}

// buildResponse renders a Result as a DNS response to q.
func (r *Resolver) buildResponse(q *dnswire.Message, res Result) *dnswire.Message {
	return r.buildResponseInto(&dnswire.Message{}, q, res)
}

// buildResponseInto renders the response into resp (typically the
// resolver's scratch message) and returns it.
func (r *Resolver) buildResponseInto(resp, q *dnswire.Message, res Result) *dnswire.Message {
	resp.ResetResponse(q)
	resp.RecursionAvailable = true
	resp.RCode = res.RCode
	resp.Answers = append(resp.Answers, res.Answers...)
	if res.SOA.Data != nil {
		resp.Authorities = append(resp.Authorities, res.SOA)
	}
	if _, do, ok := q.EDNS(); ok {
		// The client speaks EDNS0: echo an OPT advertising our own
		// receive budget (RFC 6891 §6.2.1).
		resp.AddEDNS(4096, do)
	}
	return resp
}

// respond packs and transmits resp to dst. UDP responses larger than the
// size the client's query advertised (512 octets without an OPT record)
// are truncated: data sections stripped, TC set, and the OPT record kept
// so the client can renegotiate or fall back to TCP. TCP responses are
// never truncated.
func (r *Resolver) respond(dst netsim.Addr, resp, q *dnswire.Message, tcp bool) {
	wire, err := resp.AppendPack(r.packBuf[:0])
	r.packBuf = wire[:0]
	if err != nil {
		return
	}
	if limit := q.UDPPayloadLimit(); !tcp && len(wire) > limit {
		r.m.clientTruncated.Inc()
		if tr := r.trace; tr != nil {
			probe := uint16(0)
			if len(q.Questions) == 1 {
				probe = trace.ProbeFromName(q.Questions[0].Name)
			}
			tr.Emit(trace.Event{Type: trace.EvTruncate, Probe: probe,
				A: uint32(len(wire)), B: uint32(limit),
				Src: string(r.Addr()), Dst: string(dst)})
		}
		trunc := *resp
		trunc.Truncated = true
		trunc.Answers, trunc.Authorities, trunc.Additionals = nil, nil, nil
		for i := range resp.Additionals {
			if resp.Additionals[i].Type() == dnswire.TypeOPT {
				trunc.Additionals = resp.Additionals[i : i+1]
				break
			}
		}
		if wire, err = trunc.AppendPack(wire[:0]); err != nil {
			return
		}
	}
	if tcp && r.tcpConn != nil {
		r.tcpConn.Send(dst, wire)
		return
	}
	r.conn.Send(dst, wire)
}
