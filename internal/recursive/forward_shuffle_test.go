package recursive

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// forwardContactOrder builds a world containing only a forwarding
// resolver (its upstreams are dead addresses) and returns the order in
// which it contacts them for one client query. netSeed perturbs the
// simulator's RNG and prelude injects unrelated traffic before the
// resolver exists, so the test can vary everything about the environment
// except the resolver's own Config.Seed.
func forwardContactOrder(t *testing.T, netSeed int64, prelude func(*clock.Virtual, *netsim.Network)) []netsim.Addr {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, netSeed)
	if prelude != nil {
		prelude(clk, net)
	}

	var forwarders []netsim.Addr
	for i := 1; i <= 6; i++ {
		forwarders = append(forwarders, netsim.Addr(fmt.Sprintf("10.9.0.%d", i)))
	}
	res := NewResolver(clk, Config{
		Forwarders:  forwarders,
		Seed:        424242,
		MaxAttempts: len(forwarders),
	})
	resolverAddr := netsim.Addr("10.8.0.53")
	res.Attach(net, resolverAddr)

	var order []netsim.Addr
	net.AddTap(func(ev netsim.Event) {
		if ev.Src == resolverAddr {
			order = append(order, ev.Dst)
		}
	})
	res.Resolve("dead.example.nl.", dnswire.TypeAAAA, 0, func(Result) {})
	clk.RunFor(30 * time.Second)
	if len(order) != len(forwarders) {
		t.Fatalf("resolver contacted %d upstreams, want %d (%v)", len(order), len(forwarders), order)
	}
	return order
}

// TestForwardShuffleSeedInvariant pins that the forwarder rotation order
// is a pure function of the resolver's own Config.Seed: neither the
// simulator's RNG nor unrelated traffic that precedes the resolver may
// perturb it. This is what makes the sharded engine's results
// shard-count-invariant — a cell's resolvers draw rotation order from
// their per-cell seeds, never from shared state whose consumption depends
// on how probes were grouped into cells.
func TestForwardShuffleSeedInvariant(t *testing.T) {
	base := forwardContactOrder(t, 1, nil)

	// Different network seed: latency and loss draws differ, rotation
	// order must not.
	alt := forwardContactOrder(t, 99, nil)
	for i := range base {
		if alt[i] != base[i] {
			t.Fatalf("network seed changed rotation order: %v vs %v", alt, base)
		}
	}

	// Unrelated earlier traffic (another resolver resolving through dead
	// space, consuming simulator state): rotation order must not move.
	busy := forwardContactOrder(t, 1, func(clk *clock.Virtual, net *netsim.Network) {
		other := NewResolver(clk, Config{
			Forwarders:  []netsim.Addr{"10.7.0.1", "10.7.0.2"},
			Seed:        7,
			MaxAttempts: 2,
		})
		other.Attach(net, "10.8.0.54")
		other.Resolve("noise.example.nl.", dnswire.TypeA, 0, func(Result) {})
		clk.RunFor(10 * time.Second)
	})
	for i := range base {
		if busy[i] != base[i] {
			t.Fatalf("unrelated traffic changed rotation order: %v vs %v", busy, base)
		}
	}

	// Sanity: a different resolver seed does reshuffle (otherwise the
	// assertions above would pass vacuously on a constant order).
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	var forwarders []netsim.Addr
	for i := 1; i <= 6; i++ {
		forwarders = append(forwarders, netsim.Addr(fmt.Sprintf("10.9.0.%d", i)))
	}
	res := NewResolver(clk, Config{Forwarders: forwarders, Seed: 5, MaxAttempts: 6})
	res.Attach(net, "10.8.0.53")
	var order []netsim.Addr
	net.AddTap(func(ev netsim.Event) {
		if ev.Src == netsim.Addr("10.8.0.53") {
			order = append(order, ev.Dst)
		}
	})
	res.Resolve("dead.example.nl.", dnswire.TypeAAAA, 0, func(Result) {})
	clk.RunFor(30 * time.Second)
	same := len(order) == len(base)
	for i := 0; same && i < len(base); i++ {
		same = order[i] == base[i]
	}
	if same {
		t.Fatalf("different seeds produced identical rotation order %v", order)
	}
}
