package recursive

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// TestQuickResolveAlwaysTerminatesOnce: for random loss rates on every
// server, a resolution always completes, invokes its callback exactly
// once, and never panics.
func TestQuickResolveAlwaysTerminatesOnce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := newWorld(t, Config{Seed: seed})
		for _, addr := range []netsim.Addr{rootAddr, nlAddr, ns1Addr, ns2Addr} {
			w.net.SetInboundLoss(addr, float64(r.Intn(101))/100)
		}
		callbacks := 0
		w.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(Result) {
			callbacks++
		})
		w.clk.RunFor(2 * time.Minute)
		if callbacks != 1 {
			return false
		}
		// No timers or packets left doing work after the deadline (the
		// run must quiesce).
		w.clk.RunFor(10 * time.Minute)
		return callbacks == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicOutcomes: the same seed gives bit-identical
// resolver statistics under partial loss.
func TestQuickDeterministicOutcomes(t *testing.T) {
	run := func(seed int64) Stats {
		w := newWorld(t, Config{Seed: seed})
		w.net.SetInboundLoss(ns1Addr, 0.7)
		w.net.SetInboundLoss(ns2Addr, 0.7)
		for i := 0; i < 10; i++ {
			name := dnswire.CanonicalName(itoa(9000+i) + ".cachetest.nl.")
			w.res.Resolve(name, dnswire.TypeAAAA, 0, func(Result) {})
		}
		w.clk.RunFor(5 * time.Minute)
		return w.res.Stats()
	}
	f := func(seed int64) bool {
		return run(seed) == run(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickMalformedPacketsNeverCrash: the resolver survives arbitrary
// bytes arriving at its port.
func TestQuickMalformedPacketsNeverCrash(t *testing.T) {
	w := newWorld(t, Config{})
	f := func(junk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		w.res.Receive(netsim.Addr("junk-src"), junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And it still works afterwards.
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Errorf("resolver broken after junk: %+v", res)
	}
}
