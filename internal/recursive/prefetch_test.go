package recursive

import (
	"testing"
	"time"

	"repro/internal/dnswire"
)

// TestPrefetchKeepsEntryWarm: with prefetch on, a name queried every
// 40 s with a 60 s TTL is refreshed in the background before expiry, so
// every client answer is a cache hit after the first.
func TestPrefetchKeepsEntryWarm(t *testing.T) {
	w := newWorld(t, Config{Prefetch: 0.5})
	query := func() Result {
		var got Result
		w.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { got = r })
		w.clk.RunFor(time.Second)
		return got
	}
	query() // warm (TTL 60)
	misses := w.res.Stats().CacheMisses
	for i := 0; i < 5; i++ {
		w.clk.RunFor(35 * time.Second)
		if res := query(); !res.FromCache {
			t.Fatalf("query %d missed the cache despite prefetch", i)
		}
	}
	if got := w.res.Stats().CacheMisses; got != misses {
		t.Errorf("cache misses grew %d -> %d", misses, got)
	}
	// And the prefetches actually reached the authoritatives.
	if got := w.ns1.Stats().Queries + w.ns2.Stats().Queries; got < 3 {
		t.Errorf("authoritative saw %d queries, want prefetch refreshes", got)
	}
}

// TestPrefetchDisabledExpires: the same pacing without prefetch misses
// after the TTL.
func TestPrefetchDisabledExpires(t *testing.T) {
	w := newWorld(t, Config{})
	query := func() Result {
		var got Result
		w.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { got = r })
		w.clk.RunFor(time.Second)
		return got
	}
	query() // warm (TTL 60); one second of clock burned
	w.clk.RunFor(40 * time.Second)
	if res := query(); !res.FromCache {
		t.Fatal("hit expected at ~41s of 60s TTL")
	}
	w.clk.RunFor(40 * time.Second) // ~82s: past expiry of the original entry
	if res := query(); res.FromCache {
		t.Error("entry should have expired without prefetch")
	}
}

// TestPrefetchExtendsDDoSSurvival: an extension beyond the paper — a
// prefetching resolver that was being queried regularly enters the attack
// with a fresher cache.
func TestPrefetchExtendsDDoSSurvival(t *testing.T) {
	survivalWith := func(prefetch float64) time.Duration {
		w := newWorld(t, Config{Prefetch: prefetch})
		// Query every 40 s for 10 minutes, then total outage.
		for i := 0; i < 15; i++ {
			w.resolve(t, "9999.cachetest.nl.", dnswire.TypeAAAA) // TTL 1800
			w.clk.RunFor(40 * time.Second)
		}
		w.net.SetInboundLoss(ns1Addr, 1)
		w.net.SetInboundLoss(ns2Addr, 1)
		start := w.clk.Now()
		for {
			res := w.resolve(t, "9999.cachetest.nl.", dnswire.TypeAAAA)
			if res.ServFail {
				return w.clk.Now().Sub(start)
			}
			w.clk.RunFor(time.Minute)
			if w.clk.Now().Sub(start) > 2*time.Hour {
				return 2 * time.Hour
			}
		}
	}
	plain := survivalWith(0)
	prefetched := survivalWith(0.9)
	if prefetched <= plain {
		t.Errorf("prefetch survival %v <= plain %v", prefetched, plain)
	}
}
