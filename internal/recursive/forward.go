package recursive

import (
	"repro/internal/cache"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/timeline"
)

// forward relays the query to the configured upstream resolvers, trying
// them in a random rotation with backoff. This is the R1 behavior of the
// paper's Figure 1; during a DDoS its retries fan a single client query
// out over many Rn resolvers (§6.2, Figure 11).
func (t *task) forward() {
	t.timeout = t.r.cfg.InitialTimeout * 2 // upstream does full resolution
	t.attempt = 0
	t.servers = append([]netsim.Addr(nil), t.r.cfg.Forwarders...)
	t.r.random().Shuffle(len(t.servers), func(i, j int) {
		t.servers[i], t.servers[j] = t.servers[j], t.servers[i]
	})
	t.resetTried(len(t.servers))
	t.forwardNext()
}

func (t *task) forwardNext() {
	if t.done {
		return
	}
	if t.attempt >= t.r.cfg.MaxAttempts || *t.budget <= 0 {
		t.fail()
		return
	}
	idx, ok := t.r.pickServer(t.servers, t.tried)
	if !ok {
		// Same backoff contract as the iterative path: the timeout doubles
		// per rotation over the forwarder list, not per attempt.
		t.resetTried(len(t.servers))
		t.timeout *= 2
		if t.timeout > t.r.cfg.MaxTimeout {
			t.timeout = t.r.cfg.MaxTimeout
		}
		idx, ok = t.r.pickServer(t.servers, t.tried)
		if !ok {
			t.fail()
			return
		}
	}
	t.markTried(idx)
	t.attempt++
	*t.budget--
	if t.attempt > 1 {
		t.r.m.upstreamRetries.Inc()
		t.r.observe(timeline.Retry)
	}
	t.r.send(t, t.servers[idx], true)
}

func (t *task) handleForwardResponse(m *dnswire.Message) {
	if t.done {
		// Same refresh contract as the iterative path: a reply landing
		// after the client was answered stale still repopulates the cache.
		t.absorbLateResponse(m)
		return
	}
	switch m.RCode {
	case dnswire.RCodeNoError:
		if len(m.Answers) > 0 {
			t.cacheRRs(m.Answers, cache.RankAnswer)
			// Copy: m may be the resolver's scratch message, but a Result
			// can outlive this dispatch (client callbacks retain it).
			answers := make([]dnswire.RR, len(m.Answers))
			copy(answers, m.Answers)
			t.finish(Result{RCode: dnswire.RCodeNoError, Answers: answers})
			return
		}
		// NODATA passthrough.
		if soa := soaOf(m); soa.Data != nil {
			t.cacheNegative(m, false)
			t.finish(Result{RCode: dnswire.RCodeNoError, SOA: soa})
			return
		}
		t.finish(Result{RCode: dnswire.RCodeNoError})
		return
	case dnswire.RCodeNXDomain:
		t.cacheNegative(m, true)
		t.finish(Result{RCode: dnswire.RCodeNXDomain, SOA: soaOf(m)})
		return
	default:
		// Upstream failed: rotate to the next one.
		t.r.m.lame.Inc()
		t.forwardNext()
	}
}
