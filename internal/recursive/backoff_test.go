package recursive

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// TestBackoffDoublesPerRound pins the retry contract documented on
// Config.InitialTimeout: the per-upstream timeout doubles once per retry
// *round* (each exhaustion of the candidate list), not per attempt, so
// both servers of a round are probed with the same deadline. Two dead
// root servers and zero network delay make the send instants a pure
// function of the timeout schedule.
func TestBackoffDoublesPerRound(t *testing.T) {
	const (
		deadA = netsim.Addr("203.0.113.1")
		deadB = netsim.Addr("203.0.113.2")
	)
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	net.SetPairDelay(resAddr, deadA, 0)
	net.SetPairDelay(resAddr, deadB, 0)

	var sends []time.Duration
	net.AddTap(func(ev netsim.Event) {
		if ev.Dst == deadA || ev.Dst == deadB {
			sends = append(sends, ev.Time.Sub(epoch))
		}
	})

	// The default 8 s ClientTimeout would cut the schedule short after
	// attempt 6; raise it so the full retry ladder plays out.
	r := NewResolver(clk, Config{
		ClientTimeout: time.Minute,
		RootHints: []ServerHint{
			{Name: "a.dead.example.", Addr: deadA},
			{Name: "b.dead.example.", Addr: deadB},
		},
	})
	r.Attach(net, resAddr)

	var got *Result
	r.Resolve("www.example.com.", dnswire.TypeA, 0, func(res Result) { got = &res })
	clk.RunFor(60 * time.Second)

	if got == nil {
		t.Fatal("resolution never completed")
	}
	if got.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL", got.RCode)
	}

	// Defaults: 750 ms initial, 3 s cap, 7 attempts over 2 servers.
	// Round 1 (750 ms):  attempts at 0 and 750 ms.
	// Round 2 (1.5 s):   attempts at 1.5 s and 3 s.
	// Round 3 (3 s cap): attempts at 4.5 s and 7.5 s.
	// Round 4 (3 s cap): attempt 7 at 10.5 s, failing at 13.5 s.
	// The pre-fix per-attempt doubling would instead send at
	// 0, 750ms, 2.25s, 5.25s, 8.25s, 11.25s, 14.25s.
	want := []time.Duration{
		0,
		750 * time.Millisecond,
		1500 * time.Millisecond,
		3 * time.Second,
		4500 * time.Millisecond,
		7500 * time.Millisecond,
		10500 * time.Millisecond,
	}
	if len(sends) != len(want) {
		t.Fatalf("sends = %v, want %d attempts", sends, len(want))
	}
	for i, at := range want {
		if sends[i] != at {
			t.Errorf("attempt %d sent at %v, want %v (all: %v)", i+1, sends[i], at, sends)
		}
	}
	if st := r.Stats(); st.Timeouts != 7 {
		t.Errorf("timeouts = %d, want 7", st.Timeouts)
	}
}
