package recursive

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

// TestAnswerFromReferral checks the Appendix A minority behavior: with
// the quirk enabled, a cached referral NS set (parent-side TTL) is
// returned to clients; without it, the resolver re-asks the child and
// returns the authoritative TTL.
func TestAnswerFromReferral(t *testing.T) {
	// Child NS TTL differs from the parent's referral TTL (3600 in the
	// nl zone text): shrink the child's to 60.
	reconfig := func(w *world) {
		child := w.ns1.Zones()[0]
		if err := child.Replace("cachetest.nl.", dnswire.TypeNS, 60,
			dnswire.NS{Host: "ns1.cachetest.nl."},
			dnswire.NS{Host: "ns2.cachetest.nl."}); err != nil {
			t.Fatal(err)
		}
	}

	// Conforming resolver: NS answer carries the child's 60 s.
	w := newWorld(t, Config{})
	reconfig(w)
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA) // cache the referral
	res := w.resolve(t, "cachetest.nl.", dnswire.TypeNS)
	if res.ServFail || len(res.Answers) == 0 {
		t.Fatalf("NS result = %+v", res)
	}
	if ttl := res.Answers[0].TTL; ttl != 60 {
		t.Errorf("conforming resolver returned TTL %d, want child's 60", ttl)
	}

	// Quirky resolver: answers straight from the cached referral (TTL
	// 3600, slightly decremented).
	w2 := newWorld(t, Config{AnswerFromReferral: true})
	reconfig(w2)
	w2.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	res = w2.resolve(t, "cachetest.nl.", dnswire.TypeNS)
	if res.ServFail || len(res.Answers) == 0 {
		t.Fatalf("quirky NS result = %+v", res)
	}
	if ttl := res.Answers[0].TTL; ttl <= 60 || ttl > 3600 {
		t.Errorf("quirky resolver returned TTL %d, want the parent's ~3600", ttl)
	}
	if !res.FromCache {
		t.Error("quirky resolver should answer from the referral cache")
	}
}

// TestStaleAnswerBeatsClientTimeout verifies the serve-stale
// client-response timer: during a total outage the stale answer arrives
// after ~1.8 s, well before a stub's 5 s timeout.
func TestStaleAnswerBeatsClientTimeout(t *testing.T) {
	w := newWorld(t, Config{ServeStale: true})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA) // warm, TTL 60
	w.clk.RunFor(2 * time.Minute)                        // expire
	w.net.SetInboundLoss(ns1Addr, 1)
	w.net.SetInboundLoss(ns2Addr, 1)

	var got *Result
	w.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { got = &r })
	w.clk.RunFor(30 * time.Second)
	if got == nil || !got.Stale {
		t.Fatalf("result = %+v", got)
	}
	// Check the answer arrived early by re-running with a tight window.
	w2 := newWorld(t, Config{ServeStale: true})
	w2.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	w2.clk.RunFor(2 * time.Minute)
	w2.net.SetInboundLoss(ns1Addr, 1)
	w2.net.SetInboundLoss(ns2Addr, 1)
	var early *Result
	w2.res.Resolve("1414.cachetest.nl.", dnswire.TypeAAAA, 0, func(r Result) { early = &r })
	w2.clk.RunFor(2500 * time.Millisecond) // > 1.8s delay, < 5s stub timeout
	if early == nil || !early.Stale {
		t.Errorf("stale answer not delivered within 2.5s: %+v", early)
	}
}

// TestHarvestModes compares the upstream query mixes of the three modes.
func TestHarvestModes(t *testing.T) {
	authQueries := func(cfg Config) (ns, a, aaaa int64) {
		w := newWorld(t, cfg)
		w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
		s1, s2 := w.ns1.Stats(), w.ns2.Stats()
		return s1.ByType[dnswire.TypeNS] + s2.ByType[dnswire.TypeNS],
			s1.ByType[dnswire.TypeA] + s2.ByType[dnswire.TypeA],
			s1.ByType[dnswire.TypeAAAA] + s2.ByType[dnswire.TypeAAAA]
	}

	ns, a, aaaa := authQueries(Config{Harvest: HarvestNone})
	if ns != 0 || a != 0 || aaaa != 1 {
		t.Errorf("HarvestNone mix = NS:%d A:%d AAAA:%d, want 0/0/1", ns, a, aaaa)
	}
	ns, a, aaaa = authQueries(Config{Harvest: HarvestAAAA})
	if ns != 0 || a != 0 {
		t.Errorf("HarvestAAAA fetched NS/A: %d/%d", ns, a)
	}
	if aaaa != 3 { // target + AAAA for both NS hosts
		t.Errorf("HarvestAAAA AAAA queries = %d, want 3", aaaa)
	}
	ns, a, aaaa = authQueries(Config{Harvest: HarvestFull})
	if ns != 1 || a != 2 || aaaa != 3 {
		t.Errorf("HarvestFull mix = NS:%d A:%d AAAA:%d, want 1/2/3", ns, a, aaaa)
	}
}

// TestHarvestReplacesGlueWithChildData: after a HarvestFull resolution,
// the cached NS-host address has answer-level credibility and the child's
// TTL (Appendix A, Listings 3-4).
func TestHarvestReplacesGlueWithChildData(t *testing.T) {
	w := newWorld(t, Config{Harvest: HarvestFull})
	w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	w.clk.RunFor(5 * time.Second)
	v := w.res.Cache().Get(cache.Key{Name: "ns1.cachetest.nl.", Type: dnswire.TypeA}, 0)
	if !v.Hit {
		t.Fatal("NS host address not cached")
	}
	if v.Rank != cache.RankAnswer {
		t.Errorf("rank = %v, want RankAnswer (child-confirmed)", v.Rank)
	}
}

// TestSRTTPrefersFasterServer: with exploration off, the resolver settles
// on the lower-latency authoritative.
func TestSRTTPrefersFasterServer(t *testing.T) {
	w := newWorld(t, Config{ExplorationProb: 0.0001})
	w.net.SetPairDelay(resAddr, ns1Addr, 5*time.Millisecond)
	w.net.SetPairDelay(resAddr, ns2Addr, 80*time.Millisecond)
	// Give both servers one sample, then measure the preference.
	for i := 0; i < 30; i++ {
		name := dnswire.CanonicalName(itoa(9000+i) + ".cachetest.nl.")
		w.resolve(t, name, dnswire.TypeAAAA)
	}
	fast := w.ns1.Stats().Queries
	slow := w.ns2.Stats().Queries
	if fast <= slow {
		t.Errorf("fast server got %d queries, slow got %d; SRTT preference broken", fast, slow)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestWorkBudgetPrioritizesClientQuery: a minimal budget still resolves
// the client's chain — harvesting runs on its own bounded pool and never
// starves it.
func TestWorkBudgetPrioritizesClientQuery(t *testing.T) {
	w := newWorld(t, Config{Harvest: HarvestFull, WorkBudget: 3})
	res := w.resolve(t, "1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.ServFail {
		t.Fatalf("budget 3 should still resolve the main chain: %+v", res)
	}
	// Main chain (3) plus bounded harvests; total stays small.
	if up := w.res.Stats().UpstreamQueries; up > 15 {
		t.Errorf("upstream queries = %d, want tightly bounded", up)
	}
}

// TestCNAMELoopDetected: a CNAME cycle must terminate with SERVFAIL, not
// hang or recurse forever.
func TestCNAMELoopDetected(t *testing.T) {
	w := newWorld(t, Config{})
	child := w.ns1.Zones()[0]
	mustAdd := func(z *zone.Zone, name, target string) {
		if err := z.Add(dnswire.RR{Name: name, TTL: 60, Data: dnswire.CNAME{Target: target}}); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(child, "loopa.cachetest.nl.", "loopb.cachetest.nl.")
	mustAdd(child, "loopb.cachetest.nl.", "loopa.cachetest.nl.")
	// Same records on the second server.
	child2 := w.ns2.Zones()[0]
	mustAdd(child2, "loopa.cachetest.nl.", "loopb.cachetest.nl.")
	mustAdd(child2, "loopb.cachetest.nl.", "loopa.cachetest.nl.")

	res := w.resolve(t, "loopa.cachetest.nl.", dnswire.TypeAAAA)
	if !res.ServFail {
		t.Errorf("CNAME loop returned %+v, want SERVFAIL", res)
	}
}

// TestForwardNoDataPassthrough: a forwarding R1 relays NODATA with the
// SOA and caches the negative entry.
func TestForwardNoDataPassthrough(t *testing.T) {
	w := newWorld(t, Config{})
	r1 := NewResolver(w.clk, Config{Forwarders: []netsim.Addr{resAddr}})
	r1.Attach(w.net, "10.0.0.1")
	res := resolveOn(t, w.clk, r1, "1414.cachetest.nl.", dnswire.TypeA) // only AAAA exists
	if res.RCode != dnswire.RCodeNoError || len(res.Answers) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.SOA.Data == nil {
		t.Error("NODATA relayed without SOA")
	}
	res = resolveOn(t, w.clk, r1, "1414.cachetest.nl.", dnswire.TypeA)
	if !res.FromCache {
		t.Error("forwarded NODATA not cached")
	}
}

// TestHandleQueryTransportIndependent exercises the API cmd/recursived's
// TCP path uses.
func TestHandleQueryTransportIndependent(t *testing.T) {
	w := newWorld(t, Config{})
	var got *dnswire.Message
	q := dnswire.NewQuery(77, "1414.cachetest.nl.", dnswire.TypeAAAA)
	w.res.HandleQuery(q, func(m *dnswire.Message) { got = m })
	w.clk.RunFor(30 * time.Second)
	if got == nil {
		t.Fatal("no response")
	}
	if got.ID != 77 || !got.Response || !got.RecursionAvailable {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != 1 {
		t.Errorf("answers = %v", got.Answers)
	}
	// Malformed shapes answer immediately.
	var notimp *dnswire.Message
	bad := dnswire.NewQuery(1, "x.nl.", dnswire.TypeA)
	bad.Opcode = dnswire.OpcodeUpdate
	w.res.HandleQuery(bad, func(m *dnswire.Message) { notimp = m })
	if notimp == nil || notimp.RCode != dnswire.RCodeNotImp {
		t.Errorf("update query: %v", notimp)
	}
	// Responses are ignored outright.
	resp := dnswire.NewResponse(q)
	w.res.HandleQuery(resp, func(*dnswire.Message) { t.Error("handled a response") })
}
