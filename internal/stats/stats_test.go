package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// Input must not be mutated.
	shuffled := []float64{3, 1, 2}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMeanMedian(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); !almost(got, 3) {
		t.Errorf("Median = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	s := Summarize(vals)
	if s.N != 100 || !almost(s.Mean, 50.5) || !almost(s.Median, 50.5) || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.P90 < 90 || s.P90 > 91 {
		t.Errorf("P90 = %v", s.P90)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almost(got, c.want) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.InverseAt(0.5); got != 2 {
		t.Errorf("InverseAt(0.5) = %v", got)
	}
	if got := e.InverseAt(1); got != 3 {
		t.Errorf("InverseAt(1) = %v", got)
	}
	pts := e.Points(4)
	if len(pts) != 4 || pts[3].Y != 1 {
		t.Errorf("points = %v", pts)
	}
}

// Property: ECDF.At is monotone and bounded in [0,1].
func TestQuickECDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
		}
		e := NewECDF(vals)
		prev := -1.0
		for x := -300.0; x <= 300; x += 10 {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q and within [min, max].
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vals := make([]float64, 1+r.Intn(40))
		for i := range vals {
			vals[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(vals, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins [0,10) ... [40,50)
	for _, v := range []float64{-1, 0, 5, 10, 49.9, 50, 100} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestRoundSeries(t *testing.T) {
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	s := NewRoundSeries(start, 10*time.Minute)
	s.Add(start.Add(5*time.Minute), "OK", 1)
	s.Add(start.Add(5*time.Minute), "OK", 2)
	s.Add(start.Add(25*time.Minute), "SERVFAIL", 4)
	s.Add(start.Add(-time.Minute), "OK", 100) // before start: dropped

	if got := s.Get(0, "OK"); got != 3 {
		t.Errorf("round 0 OK = %v", got)
	}
	if got := s.Get(2, "SERVFAIL"); got != 4 {
		t.Errorf("round 2 SERVFAIL = %v", got)
	}
	if s.Rounds() != 3 {
		t.Errorf("rounds = %d", s.Rounds())
	}
	labels := s.Labels()
	if len(labels) != 2 || labels[0] != "OK" {
		t.Errorf("labels = %v", labels)
	}
	table := s.Table(nil)
	if !strings.Contains(table, "OK") || !strings.Contains(table, "20") {
		t.Errorf("table:\n%s", table)
	}
}
