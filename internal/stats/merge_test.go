package stats

import (
	"math/rand"
	"testing"
	"time"
)

// TestCountsSummaryMatchesSummarize is the lossless-reduction contract:
// for integer-valued samples, Counts.Summary must reproduce Summarize on
// the raw slice bit for bit. The sharded engine's byte-identical merge
// rests on this equivalence.
func TestCountsSummaryMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		c := NewCounts()
		var raw []float64
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(5000))
			if rng.Intn(4) == 0 {
				v = int64(rng.Intn(5)) // force duplicates
			}
			c.Observe(v)
			raw = append(raw, float64(v))
		}
		want := Summarize(raw)
		got := c.Summary()
		if got != want {
			t.Fatalf("trial %d (n=%d): Counts.Summary = %+v, Summarize = %+v",
				trial, n, got, want)
		}
	}
}

// TestCountsMergeOrderIndependent: merging shard multisets in any order
// yields the same summary as observing all samples in one multiset.
func TestCountsMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewCounts()
	parts := []*Counts{NewCounts(), NewCounts(), NewCounts()}
	for i := 0; i < 300; i++ {
		v := int64(rng.Intn(1000))
		whole.Observe(v)
		parts[rng.Intn(len(parts))].Observe(v)
	}
	forward := NewCounts()
	for _, p := range parts {
		forward.Merge(p)
	}
	backward := NewCounts()
	for i := len(parts) - 1; i >= 0; i-- {
		backward.Merge(parts[i])
	}
	if forward.Summary() != whole.Summary() || backward.Summary() != whole.Summary() {
		t.Fatalf("merged summaries diverge: whole=%+v fwd=%+v bwd=%+v",
			whole.Summary(), forward.Summary(), backward.Summary())
	}
	if forward.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", forward.N(), whole.N())
	}
}

// TestRoundSeriesMerge: a merged series must equal the series built from
// the union of observations, for any split.
func TestRoundSeriesMerge(t *testing.T) {
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	whole := NewRoundSeries(start, 10*time.Minute)
	a := NewRoundSeries(start, 10*time.Minute)
	b := NewRoundSeries(start, 10*time.Minute)
	rng := rand.New(rand.NewSource(3))
	labels := []string{"OK", "SERVFAIL", "NoAnswer"}
	for i := 0; i < 500; i++ {
		round := rng.Intn(12)
		label := labels[rng.Intn(len(labels))]
		whole.AddRound(round, label, 1)
		if rng.Intn(2) == 0 {
			a.AddRound(round, label, 1)
		} else {
			b.AddRound(round, label, 1)
		}
	}
	merged := NewRoundSeries(start, 10*time.Minute)
	merged.Merge(b)
	merged.Merge(a)
	if merged.Table(labels) != whole.Table(labels) {
		t.Fatalf("merged series differs from whole:\n%s\nvs\n%s",
			merged.Table(labels), whole.Table(labels))
	}
	if merged.Rounds() != whole.Rounds() {
		t.Fatalf("Rounds = %d, want %d", merged.Rounds(), whole.Rounds())
	}
}
