// Package stats provides the small statistical toolkit the experiment
// harness uses to render the paper's tables and figures: quantiles, means,
// empirical CDFs, histograms, and round-binned time series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median is Quantile(values, 0.5).
func Median(values []float64) float64 { return Quantile(values, 0.5) }

// Summary holds the latency quantiles the paper's Figure 9 plots.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P75    float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary in one pass over a copy of values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P90:    quantileSorted(sorted, 0.90),
		Max:    sorted[len(sorted)-1],
	}
}

// Counts is an exact multiset of integer-valued samples, built for the
// sharded experiment engine's streaming merge: per-shard analyzers fold
// samples in with Observe, shards combine with Merge (a commutative sum
// of key counts, so merge order cannot change the result), and Summary
// recovers the same order statistics Summarize computes from the raw
// sample slice. Every sample the engine summarizes this way — RTTs in
// whole milliseconds, per-probe query counts — is integer-valued, so
// unlike a quantile sketch the reduction is lossless: a K-shard run
// reproduces the 1-shard summaries bit for bit, while memory stays
// bounded by the number of distinct values instead of the sample count.
type Counts struct {
	m   map[int64]int64
	n   int64
	sum int64
}

// NewCounts creates an empty multiset.
func NewCounts() *Counts {
	return &Counts{m: make(map[int64]int64)}
}

// Observe adds one sample.
func (c *Counts) Observe(v int64) {
	c.m[v]++
	c.n++
	c.sum += v
}

// N returns the number of observed samples.
func (c *Counts) N() int64 { return c.n }

// Merge folds o's samples into c.
func (c *Counts) Merge(o *Counts) {
	for v, k := range o.m {
		c.m[v] += k
	}
	c.n += o.n
	c.sum += o.sum
}

// Summary computes the same statistics Summarize would return for the
// multiset expanded into a sorted slice. Means and quantiles match
// Summarize exactly: the mean of integers is the integer sum divided by
// N, and each quantile interpolates between two order statistics that
// the cumulative key counts locate directly.
func (c *Counts) Summary() Summary {
	if c.n == 0 {
		return Summary{}
	}
	keys := make([]int64, 0, len(c.m))
	for v := range c.m {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// orderStat(i) is the value at index i of the expanded sorted slice.
	orderStat := func(i int64) float64 {
		var cum int64
		for _, v := range keys {
			cum += c.m[v]
			if i < cum {
				return float64(v)
			}
		}
		return float64(keys[len(keys)-1])
	}
	quantile := func(q float64) float64 {
		// Mirrors quantileSorted: interpolate between the two order
		// statistics straddling q*(n-1).
		pos := q * float64(c.n-1)
		lo := int64(math.Floor(pos))
		hi := int64(math.Ceil(pos))
		if lo == hi {
			return orderStat(lo)
		}
		frac := pos - float64(lo)
		return orderStat(lo)*(1-frac) + orderStat(hi)*frac
	}
	return Summary{
		N:      int(c.n),
		Mean:   float64(c.sum) / float64(c.n),
		Median: quantile(0.5),
		P75:    quantile(0.75),
		P90:    quantile(0.90),
		Max:    float64(keys[len(keys)-1]),
	}
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from values (copied).
func NewECDF(values []float64) *ECDF {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// InverseAt returns the smallest x with P(X <= x) >= p.
func (e *ECDF) InverseAt(p float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points renders the ECDF at n evenly spaced probabilities, for printing a
// figure as a series.
func (e *ECDF) Points(n int) []Point {
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, Point{X: e.InverseAt(p), Y: p})
	}
	return pts
}

// Point is one (x, y) sample of a rendered series.
type Point struct{ X, Y float64 }

// Histogram counts values into fixed-width bins starting at Min.
type Histogram struct {
	Min    float64
	Width  float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with n bins of the given width.
func NewHistogram(min, width float64, n int) *Histogram {
	return &Histogram{Min: min, Width: width, Counts: make([]int, n)}
}

// Add counts v into its bin.
func (h *Histogram) Add(v float64) {
	if v < h.Min {
		h.Under++
		return
	}
	i := int((v - h.Min) / h.Width)
	if i >= len(h.Counts) {
		h.Over++
		return
	}
	h.Counts[i]++
}

// Total returns the number of added values, including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// RoundSeries accumulates per-round (time-binned) counters keyed by a
// label, producing the "answers over time" series of Figures 6, 8, 10, 12.
type RoundSeries struct {
	Start    time.Time
	Interval time.Duration
	rounds   map[int]map[string]float64
	maxRound int
}

// NewRoundSeries bins observations into intervals from start.
func NewRoundSeries(start time.Time, interval time.Duration) *RoundSeries {
	return &RoundSeries{
		Start: start, Interval: interval,
		rounds: make(map[int]map[string]float64),
	}
}

// RoundOf maps a timestamp to its bin index; times before Start map to -1.
func (s *RoundSeries) RoundOf(at time.Time) int {
	if at.Before(s.Start) {
		return -1
	}
	return int(at.Sub(s.Start) / s.Interval)
}

// Add accumulates delta into (round at, label).
func (s *RoundSeries) Add(at time.Time, label string, delta float64) {
	s.AddRound(s.RoundOf(at), label, delta)
}

// AddRound accumulates delta into the explicit round index.
func (s *RoundSeries) AddRound(round int, label string, delta float64) {
	if round < 0 {
		return
	}
	m, ok := s.rounds[round]
	if !ok {
		m = make(map[string]float64)
		s.rounds[round] = m
	}
	m[label] += delta
	if round > s.maxRound {
		s.maxRound = round
	}
}

// Merge folds o's accumulated values into s, bin by bin. The two series
// must share the same binning (callers construct both from the same
// start and interval); every value in the repository's series is an
// integer-valued count, so the float adds are exact and the merge is
// order-independent — the property the sharded experiment engine's
// deterministic reduction relies on.
func (s *RoundSeries) Merge(o *RoundSeries) {
	for round, m := range o.rounds {
		for label, v := range m {
			s.AddRound(round, label, v)
		}
	}
}

// Rounds returns the number of rounds (max index + 1).
func (s *RoundSeries) Rounds() int {
	if len(s.rounds) == 0 {
		return 0
	}
	return s.maxRound + 1
}

// Get returns the accumulated value at (round, label).
func (s *RoundSeries) Get(round int, label string) float64 {
	return s.rounds[round][label]
}

// Labels returns all labels seen, sorted.
func (s *RoundSeries) Labels() []string {
	seen := make(map[string]bool)
	for _, m := range s.rounds {
		for l := range m {
			seen[l] = true
		}
	}
	labels := make([]string, 0, len(seen))
	for l := range seen {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// Table renders the series as an aligned text table with one row per round
// and one column per label, in the order given (or Labels() if nil).
func (s *RoundSeries) Table(labels []string) string {
	if labels == nil {
		labels = s.Labels()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s", "minute")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %12s", l)
	}
	sb.WriteByte('\n')
	for r := 0; r < s.Rounds(); r++ {
		fmt.Fprintf(&sb, "%8.0f", float64(r)*s.Interval.Minutes())
		for _, l := range labels {
			fmt.Fprintf(&sb, " %12.0f", s.Get(r, l))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
