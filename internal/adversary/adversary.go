// Package adversary implements the malicious actors of the adversarial
// scenario library (experiment family "adversary"):
//
//   - NXNSAuth: a malicious authoritative that answers every in-zone
//     query with a glueless referral to a wide, fabricated NS set under
//     the victim's domain, forcing the resolver to fan one client query
//     out into `width` NS-address resolutions at the victim
//     (NXNSAttack, Afek et al. 2020). internal/recursive's
//     Config.MaxFetch is the max-fetch(k) mitigation it measures.
//
//   - Spoofer: an off-path attacker racing the legitimate answer with
//     forged responses, sweeping a query-ID guess window with a
//     configurable port-guess success rate. Defenses under test:
//     recursive.Config.RandomIDs (ID entropy) and the bailiwick check
//     (recursive.Config.NoBailiwick disables it for baselines).
//
//   - Reflector and VictimSink: a reflection/amplification source that
//     bounces small spoofed-source queries off open servers, and the
//     victim-side byte counter that measures the amplification factor.
//
// All actors are deterministic: they draw nothing from global state, so
// scenario runs embed them in sharded cells and merge results exactly.
package adversary

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// NXNSHostName fabricates the j-th (0-based) NS target of a referral
// triggered by a query whose first label is qlabel. The shape
// "ns<j>.<qlabel>.nx.<victim domain>" keeps every delegation unique per
// triggering query (defeating negative caching across probes) while the
// fixed "nx" marker label lets victim-side taps attribute load.
func NXNSHostName(j int, qlabel, victimDomain string) string {
	return fmt.Sprintf("ns%d.%s.nx.%s", j+1, qlabel, victimDomain)
}

// ParseNXNSHost reports whether name is a fabricated NXNS target and, if
// so, the triggering query's first label.
func ParseNXNSHost(name string) (qlabel string, ok bool) {
	parts := strings.SplitN(name, ".", 4)
	if len(parts) < 4 || parts[2] != "nx" || !strings.HasPrefix(parts[0], "ns") {
		return "", false
	}
	return parts[1], true
}

// NXNSConfig shapes a malicious authoritative.
type NXNSConfig struct {
	// Zone is the apex the attacker controls (delegated from the parent
	// with glue, e.g. "w8.evil.nl.").
	Zone string
	// Width is the number of fabricated out-of-zone NS names per
	// referral — the delegation width axis of the report table.
	Width int
	// VictimDomain is the domain the fabricated NS targets point into.
	// The referral carries no glue, so the resolver must query the
	// victim's authoritatives for every target.
	VictimDomain string
	// TTL of the referral NS set (default 600).
	TTL uint32
}

// NXNSAuth is the malicious authoritative. Attach binds it; it then
// answers every query under its zone with the NXNS referral.
type NXNSAuth struct {
	cfg  NXNSConfig
	port *netsim.Port
	tr   *trace.Buffer

	queries   metrics.Counter
	referrals metrics.Counter

	msg dnswire.Message // scratch; the event loop is single-threaded
	buf []byte
}

// NewNXNSAuth builds a malicious authoritative for cfg.
func NewNXNSAuth(cfg NXNSConfig) *NXNSAuth {
	if cfg.TTL == 0 {
		cfg.TTL = 600
	}
	cfg.Zone = dnswire.CanonicalName(cfg.Zone)
	cfg.VictimDomain = dnswire.CanonicalName(cfg.VictimDomain)
	return &NXNSAuth{cfg: cfg}
}

// Attach binds the server at addr.
func (a *NXNSAuth) Attach(net *netsim.Network, addr netsim.Addr) {
	a.port = net.Bind(addr, a.handle)
}

// SetTrace enables emit sites (nil disables).
func (a *NXNSAuth) SetTrace(tr *trace.Buffer) { a.tr = tr }

func (a *NXNSAuth) handle(src netsim.Addr, payload []byte) {
	m := &a.msg
	if dnswire.UnpackInto(m, payload) != nil || m.Response || len(m.Questions) == 0 {
		return
	}
	a.queries.Inc()
	q := m.Question1()
	qname := dnswire.CanonicalName(q.Name)

	resp := dnswire.Message{}
	resp.ResetResponse(m)
	if !dnswire.IsSubdomain(qname, a.cfg.Zone) {
		resp.RCode = dnswire.RCodeRefused
	} else {
		// The NXNS referral: delegate the query name itself to Width
		// fabricated, glueless NS targets under the victim domain. The
		// owner is one label below the current zone, so the resolver's
		// downward-progress check accepts it; the targets are out of
		// bailiwick, so no glue could be credible even if sent.
		resp.Authoritative = false
		qlabel := qname
		if i := strings.IndexByte(qlabel, '.'); i >= 0 {
			qlabel = qlabel[:i]
		}
		for j := 0; j < a.cfg.Width; j++ {
			resp.Authorities = append(resp.Authorities, dnswire.RR{
				Name: qname, Class: dnswire.ClassIN, TTL: a.cfg.TTL,
				Data: dnswire.NS{Host: NXNSHostName(j, qlabel, a.cfg.VictimDomain)},
			})
		}
		a.referrals.Inc()
		if a.tr != nil {
			a.tr.Emit(trace.Event{Type: trace.EvAdvReferral,
				Probe: trace.ProbeFromName(qname), Name: qname,
				A: uint32(a.cfg.Width), Src: string(a.port.Addr()), Dst: string(src)})
		}
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	a.buf = append(a.buf[:0], wire...)
	a.port.Send(src, a.buf)
}

// CollectMetrics folds the server's counters into s.
func (a *NXNSAuth) CollectMetrics(s *metrics.Scope) {
	s.Counter("nxns_queries").Add(a.queries.Value())
	s.Counter("nxns_referrals").Add(a.referrals.Value())
}

// Referrals returns the number of NXNS referrals served.
func (a *NXNSAuth) Referrals() int64 { return a.referrals.Value() }

// ForgedPayload is the record content of a forged response.
type ForgedPayload struct {
	Answers     []dnswire.RR
	Authorities []dnswire.RR
	Additionals []dnswire.RR
	// AA sets the authoritative-answer bit on the forgery.
	AA bool
}

// SpoofConfig shapes an off-path spoofer.
type SpoofConfig struct {
	// Target is the victim resolver; Source is the impersonated
	// authoritative the forged responses claim to come from.
	Target, Source netsim.Addr
	// IDFirst..IDFirst+IDWindow-1 is the query-ID guess window swept
	// each wave. A fresh sequential-ID resolver allocates 1, 2, 3, ...,
	// so a small window starting at 1 models a realistic attacker;
	// against RandomIDs the same window hits with p ≈ IDWindow/65536.
	// Defaults: 1, 16.
	IDFirst  uint16
	IDWindow int
	// Waves and WaveEvery pace the spray across the resolution window:
	// wave w fires WaveEvery*w after Spray. Defaults: 24, 5ms.
	Waves     int
	WaveEvery time.Duration
	// PortGuess is the per-packet probability that the forged packet
	// lands on the right source port (1 = resolver has a fixed,
	// known port; 1/256, 1/64k... model port randomization). Packets
	// with a wrong port guess never reach the resolver socket and are
	// not injected. Default 1.
	PortGuess float64
	// Seed drives the port-guess draws.
	Seed int64
}

func (c SpoofConfig) withDefaults() SpoofConfig {
	if c.IDFirst == 0 {
		c.IDFirst = 1
	}
	if c.IDWindow == 0 {
		c.IDWindow = 16
	}
	if c.Waves == 0 {
		c.Waves = 24
	}
	if c.WaveEvery == 0 {
		c.WaveEvery = 5 * time.Millisecond
	}
	if c.PortGuess == 0 {
		c.PortGuess = 1
	}
	return c
}

// Spoofer injects forged responses into netsim with a spoofed source
// address, racing the legitimate answer.
type Spoofer struct {
	clk clock.Clock
	net *netsim.Network
	cfg SpoofConfig
	tr  *trace.Buffer
	rng *prng

	sent    metrics.Counter
	elided  metrics.Counter // wrong port guess: never injected
	payload ForgedPayload
	qname   string
	qtype   dnswire.Type
}

// NewSpoofer builds a spoofer; Spray arms it.
func NewSpoofer(clk clock.Clock, net *netsim.Network, cfg SpoofConfig) *Spoofer {
	cfg = cfg.withDefaults()
	return &Spoofer{clk: clk, net: net, cfg: cfg, rng: newPRNG(cfg.Seed)}
}

// SetTrace enables emit sites (nil disables).
func (s *Spoofer) SetTrace(tr *trace.Buffer) { s.tr = tr }

// Spray schedules the full guess sweep for one triggered query: Waves
// bursts, each forging one response per ID in the guess window, starting
// `after` from now. The attacker triggers the query itself, so it times
// the spray relative to its own send.
func (s *Spoofer) Spray(qname string, qtype dnswire.Type, payload ForgedPayload, after time.Duration) {
	s.qname, s.qtype, s.payload = dnswire.CanonicalName(qname), qtype, payload
	for w := 0; w < s.cfg.Waves; w++ {
		w := w
		s.clk.AfterFunc(after+time.Duration(w)*s.cfg.WaveEvery, func() { s.wave(w) })
	}
}

func (s *Spoofer) wave(w int) {
	probe := trace.ProbeFromName(s.qname)
	for i := 0; i < s.cfg.IDWindow; i++ {
		id := s.cfg.IDFirst + uint16(i)
		if s.cfg.PortGuess < 1 && s.rng.float64() >= s.cfg.PortGuess {
			s.elided.Inc()
			continue
		}
		m := dnswire.NewQuery(id, s.qname, s.qtype)
		m.Response = true
		m.RecursionAvailable = true
		m.Authoritative = s.payload.AA
		m.Answers = append(m.Answers, s.payload.Answers...)
		m.Authorities = append(m.Authorities, s.payload.Authorities...)
		m.Additionals = append(m.Additionals, s.payload.Additionals...)
		wire, err := m.Pack()
		if err != nil {
			continue
		}
		s.sent.Inc()
		if s.tr != nil {
			s.tr.Emit(trace.Event{Type: trace.EvSpoofSend, Probe: probe,
				Name: s.qname, A: uint32(id), B: uint32(w),
				Src: string(s.cfg.Source), Dst: string(s.cfg.Target)})
		}
		s.net.Send(s.cfg.Source, s.cfg.Target, wire)
	}
}

// CollectMetrics folds the spoofer's counters into sc.
func (s *Spoofer) CollectMetrics(sc *metrics.Scope) {
	sc.Counter("spoof_sent").Add(s.sent.Value())
	sc.Counter("spoof_wrong_port").Add(s.elided.Value())
}

// Sent returns the number of forged packets injected.
func (s *Spoofer) Sent() int64 { return s.sent.Value() }

// ReflectConfig shapes a reflection source.
type ReflectConfig struct {
	// Victim is the forged source address all reflected responses home
	// to; Servers are the open servers bounced off, round-robin.
	Victim  netsim.Addr
	Servers []netsim.Addr
	// EDNSSize, when non-zero, adds an OPT record advertising this
	// buffer size so responses escape the 512-byte truncation floor —
	// the classic amplification enabler.
	EDNSSize uint16
}

// Reflector sends small spoofed-source queries whose (larger) responses
// flood the victim.
type Reflector struct {
	clk clock.Clock
	net *netsim.Network
	cfg ReflectConfig
	tr  *trace.Buffer

	nextID   uint16
	sent     metrics.Counter
	reqBytes metrics.Counter
}

// NewReflector builds a reflection source.
func NewReflector(clk clock.Clock, net *netsim.Network, cfg ReflectConfig) *Reflector {
	return &Reflector{clk: clk, net: net, cfg: cfg}
}

// SetTrace enables emit sites (nil disables).
func (r *Reflector) SetTrace(tr *trace.Buffer) { r.tr = tr }

// Send bounces one spoofed query for (name, qtype) off the next server
// and returns the request size in bytes (what the attacker paid).
func (r *Reflector) Send(name string, qtype dnswire.Type) int {
	r.nextID++
	m := dnswire.NewQuery(r.nextID, name, qtype)
	if r.cfg.EDNSSize > 0 {
		m.AddEDNS(r.cfg.EDNSSize, false)
	}
	wire, err := m.Pack()
	if err != nil {
		return 0
	}
	server := r.cfg.Servers[int(r.nextID)%len(r.cfg.Servers)]
	r.sent.Inc()
	r.reqBytes.Add(int64(len(wire)))
	if r.tr != nil {
		r.tr.Emit(trace.Event{Type: trace.EvReflect,
			Probe: trace.ProbeFromName(name), Name: name,
			A: uint32(len(wire)), Src: string(r.cfg.Victim), Dst: string(server)})
	}
	r.net.Send(r.cfg.Victim, server, wire)
	return len(wire)
}

// RequestBytes returns the total bytes of spoofed requests sent.
func (r *Reflector) RequestBytes() int64 { return r.reqBytes.Value() }

// Sent returns the number of spoofed requests sent.
func (r *Reflector) Sent() int64 { return r.sent.Value() }

// CollectMetrics folds the reflector's counters into s.
func (r *Reflector) CollectMetrics(s *metrics.Scope) {
	s.Counter("reflect_sent").Add(r.sent.Value())
	s.Counter("reflect_request_bytes").Add(r.reqBytes.Value())
}

// VictimSink binds the reflection victim's address and counts what
// arrives: the response side of the amplification factor.
type VictimSink struct {
	packets metrics.Counter
	bytes   metrics.Counter
}

// NewVictimSink binds a sink at addr.
func NewVictimSink(net *netsim.Network, addr netsim.Addr) *VictimSink {
	v := &VictimSink{}
	net.Bind(addr, func(src netsim.Addr, payload []byte) {
		v.packets.Inc()
		v.bytes.Add(int64(len(payload)))
	})
	return v
}

// Packets returns the number of packets that reached the victim.
func (v *VictimSink) Packets() int64 { return v.packets.Value() }

// Bytes returns the total bytes that reached the victim.
func (v *VictimSink) Bytes() int64 { return v.bytes.Value() }

// CollectMetrics folds the sink's counters into s.
func (v *VictimSink) CollectMetrics(s *metrics.Scope) {
	s.Counter("victim_packets").Add(v.packets.Value())
	s.Counter("victim_bytes").Add(v.bytes.Value())
}

// prng is a tiny splitmix64, so the spoofer's port-guess draws do not
// depend on math/rand's table-walk seeding cost or sequence stability.
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng { return &prng{state: uint64(seed)*0x9e3779b97f4a7c15 + 1} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }
