package adversary

import (
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

var epoch = time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)

func TestNXNSHostNameRoundTrip(t *testing.T) {
	name := NXNSHostName(2, "1414", "cachetest.nl.")
	if name != "ns3.1414.nx.cachetest.nl." {
		t.Fatalf("NXNSHostName = %q", name)
	}
	label, ok := ParseNXNSHost(name)
	if !ok || label != "1414" {
		t.Fatalf("ParseNXNSHost(%q) = %q, %v", name, label, ok)
	}
	if _, ok := ParseNXNSHost("ns1.cachetest.nl."); ok {
		t.Fatal("ParseNXNSHost accepted a victim infrastructure name")
	}
}

func TestNXNSAuthReferralShape(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	auth := NewNXNSAuth(NXNSConfig{
		Zone: "evil.nl.", Width: 7, VictimDomain: "cachetest.nl.",
	})
	auth.Attach(net, "203.0.113.66")

	var got *dnswire.Message
	net.Bind("10.0.0.1", func(src netsim.Addr, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("response unpack: %v", err)
			return
		}
		got = m
	})
	q := dnswire.NewQuery(9, "1414.evil.nl.", dnswire.TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	net.Send("10.0.0.1", "203.0.113.66", wire)
	clk.Run()

	if got == nil {
		t.Fatal("no response")
	}
	if got.Authoritative || got.RCode != dnswire.RCodeNoError || len(got.Answers) != 0 {
		t.Fatalf("referral header wrong: %+v", got)
	}
	if len(got.Authorities) != 7 {
		t.Fatalf("referral carries %d NS records, want 7", len(got.Authorities))
	}
	if len(got.Additionals) != 0 {
		t.Fatalf("NXNS referral must be glueless, got %d additionals", len(got.Additionals))
	}
	for j, rr := range got.Authorities {
		if dnswire.CanonicalName(rr.Name) != "1414.evil.nl." {
			t.Fatalf("NS owner = %q, want the query name", rr.Name)
		}
		host := rr.Data.(dnswire.NS).Host
		if want := NXNSHostName(j, "1414", "cachetest.nl."); host != want {
			t.Fatalf("NS target %d = %q, want %q", j, host, want)
		}
	}
	if auth.Referrals() != 1 {
		t.Fatalf("Referrals = %d", auth.Referrals())
	}

	// Out-of-zone queries are refused, not amplified.
	got = nil
	q = dnswire.NewQuery(10, "www.good.nl.", dnswire.TypeA)
	wire, _ = q.Pack()
	net.Send("10.0.0.1", "203.0.113.66", wire)
	clk.Run()
	if got == nil || got.RCode != dnswire.RCodeRefused {
		t.Fatalf("out-of-zone query: got %+v, want REFUSED", got)
	}
}

func TestSpooferWavesAndPortGuess(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)

	type pkt struct {
		src netsim.Addr
		id  uint16
	}
	var arrived []pkt
	net.Bind("10.0.0.53", func(src netsim.Addr, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("forged packet unpack: %v", err)
			return
		}
		if !m.Response || len(m.Answers) != 1 {
			t.Errorf("forged packet shape: %+v", m)
		}
		arrived = append(arrived, pkt{src, m.ID})
	})

	sp := NewSpoofer(clk, net, SpoofConfig{
		Target: "10.0.0.53", Source: "192.0.2.1",
		IDWindow: 8, Waves: 3, WaveEvery: 2 * time.Millisecond,
	})
	payload := ForgedPayload{Answers: []dnswire.RR{{
		Name: "9.cachetest.nl.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::bad")},
	}}}
	sp.Spray("9.cachetest.nl.", dnswire.TypeAAAA, payload, time.Millisecond)
	clk.Run()

	if len(arrived) != 3*8 {
		t.Fatalf("%d forged packets arrived, want 24", len(arrived))
	}
	seen := map[uint16]int{}
	for _, p := range arrived {
		if p.src != netsim.Addr("192.0.2.1") {
			t.Fatalf("forged packet source = %s, want the spoofed 192.0.2.1", p.src)
		}
		seen[p.id]++
	}
	for id := uint16(1); id <= 8; id++ {
		if seen[id] != 3 {
			t.Fatalf("ID %d forged %d times, want once per wave", id, seen[id])
		}
	}
	if sp.Sent() != 24 {
		t.Fatalf("Sent = %d", sp.Sent())
	}

	// Port randomization defense: a 1/4 port-guess rate drops ~3/4 of
	// the packets before the socket, deterministically per seed.
	arrived = nil
	sp2 := NewSpoofer(clk, net, SpoofConfig{
		Target: "10.0.0.53", Source: "192.0.2.1",
		IDWindow: 64, Waves: 4, PortGuess: 0.25, Seed: 7,
	})
	sp2.Spray("9.cachetest.nl.", dnswire.TypeAAAA, payload, time.Millisecond)
	clk.Run()
	total := int64(64 * 4)
	if sp2.Sent()+int64(len(arrived)) == 0 || sp2.Sent() >= total/2 {
		t.Fatalf("PortGuess=0.25 injected %d of %d packets", sp2.Sent(), total)
	}
}

func TestReflectorAmplification(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)

	z := zone.New("amp.nl.")
	z.MustAdd(dnswire.RR{Name: "amp.nl.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.amp.nl.", RName: "h.amp.nl.",
		Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 60,
	}})
	z.MustAdd(dnswire.RR{Name: "amp.nl.", TTL: 3600, Data: dnswire.NS{Host: "ns1.amp.nl."}})
	z.MustAdd(dnswire.RR{Name: "ns1.amp.nl.", TTL: 3600,
		Data: dnswire.A{Addr: dnswire.MustAddr("192.0.2.9")}})
	big := make([]string, 4)
	for i := range big {
		b := make([]byte, 200)
		for j := range b {
			b[j] = 'x'
		}
		big[i] = string(b)
	}
	z.MustAdd(dnswire.RR{Name: "txt.amp.nl.", TTL: 3600, Data: dnswire.TXT{Strings: big}})
	srv := authoritative.New(z)
	srv.Attach(net, "192.0.2.9")

	sink := NewVictimSink(net, "198.51.100.9")
	refl := NewReflector(clk, net, ReflectConfig{
		Victim:   "198.51.100.9",
		Servers:  []netsim.Addr{"192.0.2.9"},
		EDNSSize: 4096,
	})
	for i := 0; i < 10; i++ {
		refl.Send("txt.amp.nl.", dnswire.TypeTXT)
	}
	clk.Run()

	if sink.Packets() != 10 {
		t.Fatalf("victim received %d packets, want 10", sink.Packets())
	}
	amp := float64(sink.Bytes()) / float64(refl.RequestBytes())
	if amp < 5 {
		t.Fatalf("amplification factor = %.1f (req %d B, resp %d B), want > 5",
			amp, refl.RequestBytes(), sink.Bytes())
	}

	// Without EDNS the 512-byte truncation floor caps the factor.
	sink2 := NewVictimSink(net, "198.51.100.10")
	refl2 := NewReflector(clk, net, ReflectConfig{
		Victim:  "198.51.100.10",
		Servers: []netsim.Addr{"192.0.2.9"},
	})
	for i := 0; i < 10; i++ {
		refl2.Send("txt.amp.nl.", dnswire.TypeTXT)
	}
	clk.Run()
	if sink2.Bytes() >= sink.Bytes() {
		t.Fatalf("truncated responses (%d B) not smaller than EDNS responses (%d B)",
			sink2.Bytes(), sink.Bytes())
	}
}
