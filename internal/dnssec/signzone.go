package dnssec

import (
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// SignZone adds the key's DNSKEY at the apex and an RRSIG for every RRset
// in z (signatures valid from now-1h to now+validity). Existing RRSIGs
// are replaced. Delegation NS sets (below the apex) and glue are not
// signed, per RFC 4035 §2.2: the parent is not authoritative for them.
func SignZone(z *zone.Zone, k *Key, now time.Time, validity time.Duration) error {
	// Remove stale signatures, then install the DNSKEY before signing so
	// the DNSKEY RRset itself gets signed too.
	for _, name := range z.Names() {
		z.Remove(name, dnswire.TypeRRSIG)
	}
	dnskeyTTL := uint32(3600)
	if soa, ok := z.SOA(); ok {
		dnskeyTTL = soa.TTL
	}
	if err := z.Replace(k.Zone, dnswire.TypeDNSKEY, dnskeyTTL, k.Public); err != nil {
		return err
	}

	inception := now.Add(-time.Hour)
	expiration := now.Add(validity)

	for _, name := range z.Names() {
		for _, t := range signableTypes(z, name) {
			rrs := z.RRSet(name, t)
			if len(rrs) == 0 {
				continue
			}
			// Skip delegation-side data: NS sets owned by names below
			// the apex are referrals, and any address record at or below
			// a cut is glue.
			if isDelegated(z, name, t) {
				continue
			}
			sigRR, err := k.Sign(rrs, inception, expiration)
			if err != nil {
				return err
			}
			if err := z.Add(sigRR); err != nil {
				return err
			}
		}
	}
	return nil
}

// signableTypes lists the record types present at name.
func signableTypes(z *zone.Zone, name string) []dnswire.Type {
	var types []dnswire.Type
	for _, t := range []dnswire.Type{
		dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS, dnswire.TypeCNAME,
		dnswire.TypeSOA, dnswire.TypePTR, dnswire.TypeMX, dnswire.TypeTXT,
		dnswire.TypeDS, dnswire.TypeDNSKEY, dnswire.TypeNSEC,
	} {
		if len(z.RRSet(name, t)) > 0 {
			types = append(types, t)
		}
	}
	return types
}

// isDelegated reports whether (name, t) is parent-side delegation data:
// a non-apex NS set, or anything strictly below a zone cut (glue).
func isDelegated(z *zone.Zone, name string, t dnswire.Type) bool {
	name = dnswire.CanonicalName(name)
	if name != z.Origin() && t == dnswire.TypeNS {
		return true
	}
	// Walk proper ancestors of name (excluding name itself) down to the
	// apex: an NS set at any of them makes name occluded glue.
	for n := dnswire.Parent(name); dnswire.IsSubdomain(n, z.Origin()); n = dnswire.Parent(n) {
		if n == z.Origin() {
			break
		}
		if len(z.RRSet(n, dnswire.TypeNS)) > 0 {
			return true
		}
	}
	// Address records at a cut name itself are glue too.
	if name != z.Origin() && (t == dnswire.TypeA || t == dnswire.TypeAAAA) &&
		len(z.RRSet(name, dnswire.TypeNS)) > 0 {
		return true
	}
	return false
}
