package dnssec

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

var now = time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)

// detRand is a deterministic byte stream for reproducible keys in tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func testKey(t *testing.T, zone string) *Key {
	t.Helper()
	// Seed per zone so distinct zones get distinct keys.
	seed := int64(0)
	for _, c := range zone {
		seed = seed*131 + int64(c)
	}
	k, err := GenerateKey(zone, FlagZone, detRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func rrsetA(name string, ttl uint32, ips ...string) []dnswire.RR {
	var rrs []dnswire.RR
	for _, ip := range ips {
		rrs = append(rrs, dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl,
			Data: dnswire.A{Addr: dnswire.MustAddr(ip)}})
	}
	return rrs
}

func TestSignAndVerify(t *testing.T) {
	k := testKey(t, "example.nl.")
	rrs := rrsetA("www.example.nl.", 300, "192.0.2.80", "192.0.2.81")
	sig, err := k.Sign(rrs, now, now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(k.Public, sig, rrs, now.Add(time.Hour)); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// RRset order must not matter (canonical ordering).
	swapped := []dnswire.RR{rrs[1], rrs[0]}
	if err := Verify(k.Public, sig, swapped, now.Add(time.Hour)); err != nil {
		t.Errorf("verify reordered: %v", err)
	}
	// Decremented TTLs (cached copies) must still verify: validation
	// uses the RRSIG's original TTL.
	aged := rrsetA("www.example.nl.", 17, "192.0.2.80", "192.0.2.81")
	if err := Verify(k.Public, sig, aged, now.Add(time.Hour)); err != nil {
		t.Errorf("verify aged TTL: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k := testKey(t, "example.nl.")
	rrs := rrsetA("www.example.nl.", 300, "192.0.2.80")
	sig, err := k.Sign(rrs, now, now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	forged := rrsetA("www.example.nl.", 300, "203.0.113.66")
	if err := Verify(k.Public, sig, forged, now.Add(time.Hour)); err == nil {
		t.Error("tampered RRset verified")
	}
	// Wrong key.
	k2 := testKey(t, "other.nl.")
	k2.Zone = "example.nl."
	if err := Verify(k2.Public, sig, rrs, now.Add(time.Hour)); err == nil {
		t.Error("wrong key verified")
	}
}

func TestVerifyValidityWindow(t *testing.T) {
	k := testKey(t, "example.nl.")
	rrs := rrsetA("www.example.nl.", 300, "192.0.2.80")
	sig, err := k.Sign(rrs, now, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(k.Public, sig, rrs, now.Add(2*time.Hour)); err != ErrExpired {
		t.Errorf("expired signature: %v", err)
	}
	if err := Verify(k.Public, sig, rrs, now.Add(-2*time.Hour)); err != ErrExpired {
		t.Errorf("not-yet-valid signature: %v", err)
	}
}

func TestSignRejectsOutOfZone(t *testing.T) {
	k := testKey(t, "example.nl.")
	if _, err := k.Sign(rrsetA("www.example.com.", 60, "10.0.0.1"), now, now.Add(time.Hour)); err == nil {
		t.Error("out-of-zone RRset signed")
	}
	if _, err := k.Sign(nil, now, now.Add(time.Hour)); err != ErrEmptyRRSet {
		t.Errorf("empty RRset: %v", err)
	}
}

func TestDSMatchesKey(t *testing.T) {
	k := testKey(t, "example.nl.")
	ds := k.DS(3600).Data.(dnswire.DS)
	if err := VerifyDS(ds, "example.nl.", k.Public); err != nil {
		t.Fatalf("VerifyDS: %v", err)
	}
	other := testKey(t, "other.nl.")
	if err := VerifyDS(ds, "example.nl.", other.Public); err == nil {
		t.Error("DS verified against the wrong key")
	}
	if ds.KeyTag != k.KeyTag() {
		t.Error("DS key tag mismatch")
	}
}

func TestRRSIGWireRoundTrip(t *testing.T) {
	k := testKey(t, "example.nl.")
	rrs := rrsetA("www.example.nl.", 300, "192.0.2.80")
	sig, err := k.Sign(rrs, now, now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	m := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	m.Answers = append(m.Answers, rrs...)
	m.Answers = append(m.Answers, sig, k.DNSKEYRecord(3600))
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 3 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	// The signature still verifies after the wire round trip.
	gotSig := got.Answers[1]
	gotKey := got.Answers[2].Data.(dnswire.DNSKEY)
	if err := Verify(gotKey, gotSig, got.Answers[:1], now.Add(time.Hour)); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
}

const signTestZone = `
$ORIGIN example.nl.
$TTL 3600
@       IN SOA ns1 hostmaster 1 7200 3600 864000 60
@       IN NS  ns1
ns1     IN A   192.0.2.1
www 300 IN AAAA 2001:db8::80
sub     IN NS  ns.sub
ns.sub  IN A   192.0.2.53
sub     IN DS  1 15 2 aabb
`

func TestSignZone(t *testing.T) {
	z, err := zone.ParseString(signTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "example.nl.")
	if err := SignZone(z, k, now, 7*24*time.Hour); err != nil {
		t.Fatal(err)
	}
	// DNSKEY installed and signed.
	if got := len(z.RRSet("example.nl.", dnswire.TypeDNSKEY)); got != 1 {
		t.Fatalf("DNSKEY count = %d", got)
	}
	// Authoritative RRsets carry signatures...
	for _, c := range []struct {
		name string
		t    dnswire.Type
	}{
		{"example.nl.", dnswire.TypeSOA},
		{"example.nl.", dnswire.TypeNS},
		{"example.nl.", dnswire.TypeDNSKEY},
		{"www.example.nl.", dnswire.TypeAAAA},
		{"ns1.example.nl.", dnswire.TypeA},
		{"sub.example.nl.", dnswire.TypeDS}, // parent-side DS is signed
	} {
		sigs := z.RRSet(c.name, dnswire.TypeRRSIG)
		found := false
		for _, s := range sigs {
			if s.Data.(dnswire.RRSIG).TypeCovered == c.t {
				found = true
				rrs := z.RRSet(c.name, c.t)
				if err := Verify(k.Public, s, rrs, now); err != nil {
					t.Errorf("%s %s: %v", c.name, c.t, err)
				}
			}
		}
		if !found {
			t.Errorf("%s %s: no signature", c.name, c.t)
		}
	}
	// ...but delegation NS and glue are not signed (RFC 4035 §2.2).
	for _, sig := range z.RRSet("sub.example.nl.", dnswire.TypeRRSIG) {
		if sig.Data.(dnswire.RRSIG).TypeCovered == dnswire.TypeNS {
			t.Error("delegation NS set was signed")
		}
	}
	if sigs := z.RRSet("ns.sub.example.nl.", dnswire.TypeRRSIG); len(sigs) != 0 {
		t.Errorf("glue was signed: %v", sigs)
	}
	// Re-signing replaces rather than duplicates.
	if err := SignZone(z, k, now.Add(time.Hour), 7*24*time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := len(z.RRSet("www.example.nl.", dnswire.TypeRRSIG)); got != 1 {
		t.Errorf("re-sign left %d RRSIGs", got)
	}
}

func TestKeyTagStable(t *testing.T) {
	k := testKey(t, "example.nl.")
	if k.KeyTag() != k.Public.KeyTag() {
		t.Error("key tag mismatch between key and record")
	}
	if k.KeyTag() == 0 {
		t.Error("suspicious zero key tag")
	}
}
