package dnssec

import (
	"sort"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// BuildNSECChain adds the zone's NSEC records (RFC 4035 §2.3): every name
// with authoritative data links to the next in canonical order, carrying
// the bitmap of types present; the last name wraps to the apex. Call it
// before SignZone so the chain gets signed. Existing NSEC records are
// replaced.
func BuildNSECChain(z *zone.Zone) error {
	for _, name := range z.Names() {
		z.Remove(name, dnswire.TypeNSEC)
	}

	// Authoritative owner names only: skip occluded glue; keep cut names
	// (they own the NSEC proving the delegation's type set).
	var names []string
	for _, name := range z.Names() {
		if isGlue(z, name) {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil
	}
	sort.Slice(names, func(i, j int) bool {
		return dnswire.CompareCanonical(names[i], names[j]) < 0
	})

	negTTL := uint32(60)
	if soa, ok := z.SOA(); ok {
		if s, ok := soa.Data.(dnswire.SOA); ok {
			negTTL = s.Minimum
		}
	}

	for i, name := range names {
		next := names[(i+1)%len(names)]
		types := typesAt(z, name)
		types = append(types, dnswire.TypeNSEC, dnswire.TypeRRSIG)
		if err := z.Add(dnswire.RR{
			Name: name, Class: dnswire.ClassIN, TTL: negTTL,
			Data: dnswire.NSEC{NextName: next, Types: types},
		}); err != nil {
			return err
		}
	}
	return nil
}

// typesAt lists the record types present at name.
func typesAt(z *zone.Zone, name string) []dnswire.Type {
	var types []dnswire.Type
	for _, t := range []dnswire.Type{
		dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS, dnswire.TypeCNAME,
		dnswire.TypeSOA, dnswire.TypePTR, dnswire.TypeMX, dnswire.TypeTXT,
		dnswire.TypeDS, dnswire.TypeDNSKEY,
	} {
		if len(z.RRSet(name, t)) > 0 {
			types = append(types, t)
		}
	}
	return types
}

// isGlue reports whether name sits strictly below a zone cut.
func isGlue(z *zone.Zone, name string) bool {
	name = dnswire.CanonicalName(name)
	for n := dnswire.Parent(name); dnswire.IsSubdomain(n, z.Origin()); n = dnswire.Parent(n) {
		if n == z.Origin() {
			return false
		}
		if len(z.RRSet(n, dnswire.TypeNS)) > 0 {
			return true
		}
	}
	return false
}

// CoveringNSEC finds the zone's NSEC record proving the nonexistence of
// qname (for NXDOMAIN) or, when qname exists, the NSEC at qname itself
// (whose bitmap proves NODATA). ok is false when the zone has no chain.
func CoveringNSEC(z *zone.Zone, qname string) (dnswire.RR, bool) {
	qname = dnswire.CanonicalName(qname)
	if own := z.RRSet(qname, dnswire.TypeNSEC); len(own) > 0 {
		return own[0], true
	}
	for _, name := range z.Names() {
		for _, rr := range z.RRSet(name, dnswire.TypeNSEC) {
			if nsec, ok := rr.Data.(dnswire.NSEC); ok && nsec.Covers(rr.Name, qname) {
				return rr, true
			}
		}
	}
	return dnswire.RR{}, false
}

// VerifyDenial checks that nsecRR proves qname/qtype does not exist: either
// the NSEC covers qname (name error), or it is owned by qname and its type
// bitmap lacks qtype (no data).
func VerifyDenial(nsecRR dnswire.RR, qname string, qtype dnswire.Type) bool {
	nsec, ok := nsecRR.Data.(dnswire.NSEC)
	if !ok {
		return false
	}
	qname = dnswire.CanonicalName(qname)
	owner := dnswire.CanonicalName(nsecRR.Name)
	if owner == qname {
		for _, t := range nsec.Types {
			if t == qtype {
				return false
			}
		}
		return true
	}
	return nsec.Covers(owner, qname)
}
