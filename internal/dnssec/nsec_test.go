package dnssec

import (
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

func TestCompareCanonical(t *testing.T) {
	// RFC 4034 §6.1 ordering: by label from the root.
	ordered := []string{
		"example.nl.",
		"a.example.nl.",
		"z.a.example.nl.",
		"b.example.nl.",
		"ns1.example.nl.",
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := dnswire.CompareCanonical(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestNSECBitmapRoundTrip(t *testing.T) {
	n := dnswire.NSEC{
		NextName: "b.example.nl.",
		Types: []dnswire.Type{
			dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNSEC,
			dnswire.TypeRRSIG, dnswire.Type(1234), // a high type forcing a second window
		},
	}
	m := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	m.Answers = append(m.Answers, dnswire.RR{
		Name: "a.example.nl.", Class: dnswire.ClassIN, TTL: 60, Data: n,
	})
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Answers[0].Data.Equal(n) {
		t.Errorf("round trip: %v != %v", got.Answers[0].Data, n)
	}
}

func TestNSECCovers(t *testing.T) {
	n := dnswire.NSEC{NextName: "m.example.nl."}
	cases := []struct {
		owner, name string
		want        bool
	}{
		{"example.nl.", "d.example.nl.", true},
		{"example.nl.", "m.example.nl.", false}, // next name exists
		{"example.nl.", "z.example.nl.", false},
		{"example.nl.", "example.nl.", false}, // owner itself exists
	}
	for _, c := range cases {
		if got := n.Covers(c.owner, c.name); got != c.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.owner, c.name, got, c.want)
		}
	}
	// Wrap-around: the last NSEC covers everything after its owner.
	last := dnswire.NSEC{NextName: "example.nl."}
	if !last.Covers("z.example.nl.", "zz.example.nl.") {
		t.Error("wrap-around NSEC does not cover the tail")
	}
}

func TestBuildNSECChainAndDenial(t *testing.T) {
	z, err := zone.ParseString(signTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildNSECChain(z); err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "example.nl.")
	if err := SignZone(z, k, now, 7*24*time.Hour); err != nil {
		t.Fatal(err)
	}

	// Every authoritative name owns exactly one NSEC, and the chain
	// closes (one record points back to the apex).
	wraps := 0
	count := 0
	for _, name := range z.Names() {
		set := z.RRSet(name, dnswire.TypeNSEC)
		if len(set) == 0 {
			continue
		}
		count++
		nsec := set[0].Data.(dnswire.NSEC)
		if dnswire.CanonicalName(nsec.NextName) == "example.nl." {
			wraps++
		}
		// The NSEC RRset is signed and verifies.
		signed := false
		for _, sigRR := range z.RRSet(name, dnswire.TypeRRSIG) {
			if sigRR.Data.(dnswire.RRSIG).TypeCovered == dnswire.TypeNSEC {
				signed = true
				if err := Verify(k.Public, sigRR, set, now); err != nil {
					t.Errorf("NSEC at %s: %v", name, err)
				}
			}
		}
		if !signed {
			t.Errorf("NSEC at %s unsigned", name)
		}
	}
	if wraps != 1 {
		t.Errorf("chain wraps %d times, want 1", wraps)
	}
	if count < 4 {
		t.Errorf("only %d NSEC records", count)
	}
	// Glue has no NSEC.
	if got := z.RRSet("ns.sub.example.nl.", dnswire.TypeNSEC); len(got) != 0 {
		t.Error("glue received an NSEC record")
	}

	// Denial proofs: a missing name is covered...
	nsec, ok := CoveringNSEC(z, "missing.example.nl.")
	if !ok {
		t.Fatal("no covering NSEC for a missing name")
	}
	if !VerifyDenial(nsec, "missing.example.nl.", dnswire.TypeA) {
		t.Errorf("covering NSEC %v does not deny missing.example.nl.", nsec)
	}
	// ...and an existing name's NSEC proves NODATA for absent types.
	nsec, ok = CoveringNSEC(z, "www.example.nl.")
	if !ok {
		t.Fatal("no NSEC at existing name")
	}
	if !VerifyDenial(nsec, "www.example.nl.", dnswire.TypeA) {
		t.Error("NODATA denial failed (www has only AAAA)")
	}
	if VerifyDenial(nsec, "www.example.nl.", dnswire.TypeAAAA) {
		t.Error("NSEC denies a type that exists")
	}
}
