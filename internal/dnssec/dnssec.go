// Package dnssec implements DNSSEC signing and validation with Ed25519
// (algorithm 15, RFC 8080): key generation, RFC 4034 canonical RRset
// signing, RRSIG verification, DS digests (RFC 4509), and whole-zone
// signing. The paper notes that DNSSEC's extra records (RRSIG, DNSKEY,
// DS) ride the same caches with their own TTLs (§1); this package makes
// the testbed's zones signable so those records exist end to end.
//
// Scope: positive answers only — authenticated denial (NSEC/NSEC3) is not
// implemented.
package dnssec

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dnswire"
)

// AlgorithmEd25519 is the DNSSEC algorithm number for Ed25519 (RFC 8080).
const AlgorithmEd25519 = 15

// Flags for DNSKEY records.
const (
	FlagZone = 256 // ZSK
	FlagSEP  = 257 // KSK (zone + secure entry point)
)

// Validation errors.
var (
	ErrNoSignature    = errors.New("dnssec: no covering RRSIG")
	ErrBadSignature   = errors.New("dnssec: signature verification failed")
	ErrExpired        = errors.New("dnssec: signature expired or not yet valid")
	ErrKeyMismatch    = errors.New("dnssec: RRSIG does not match the key")
	ErrEmptyRRSet     = errors.New("dnssec: empty RRset")
	ErrUnsupportedAlg = errors.New("dnssec: unsupported algorithm")
)

// Key is a zone signing key pair.
type Key struct {
	Zone    string
	Public  dnswire.DNSKEY
	private ed25519.PrivateKey
}

// GenerateKey creates an Ed25519 zone key. Pass crypto/rand.Reader in
// production; tests may pass a deterministic reader.
func GenerateKey(zone string, flags uint16, rng io.Reader) (*Key, error) {
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("dnssec: %w", err)
	}
	return &Key{
		Zone: dnswire.CanonicalName(zone),
		Public: dnswire.DNSKEY{
			Flags: flags, Protocol: 3, Algorithm: AlgorithmEd25519,
			PublicKey: append([]byte(nil), pub...),
		},
		private: priv,
	}, nil
}

// KeyTag returns the key's RFC 4034 tag.
func (k *Key) KeyTag() uint16 { return k.Public.KeyTag() }

// DNSKEYRecord returns the apex DNSKEY RR with the given TTL.
func (k *Key) DNSKEYRecord(ttl uint32) dnswire.RR {
	return dnswire.RR{Name: k.Zone, Class: dnswire.ClassIN, TTL: ttl, Data: k.Public}
}

// DS returns the parent-side delegation-signer record for this key
// (SHA-256 digest, RFC 4509).
func (k *Key) DS(ttl uint32) dnswire.RR {
	h := sha256.New()
	h.Write(dnswire.NameWire(k.Zone))
	h.Write(k.Public.RDataWire())
	return dnswire.RR{
		Name: k.Zone, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.DS{
			KeyTag: k.KeyTag(), Algorithm: AlgorithmEd25519,
			DigestType: 2, Digest: h.Sum(nil),
		},
	}
}

// signedData builds the RFC 4034 §3.1.8.1 input: RRSIG header || each RR
// in canonical form (owner lowercase, original TTL, RDATA wire), sorted by
// RDATA.
func signedData(header []byte, rrs []dnswire.RR, originalTTL uint32) []byte {
	type canon struct{ owner, rdata []byte }
	canons := make([]canon, 0, len(rrs))
	for _, rr := range rrs {
		canons = append(canons, canon{
			owner: dnswire.NameWire(dnswire.CanonicalName(rr.Name)),
			rdata: dnswire.RDataWireOf(rr.Data),
		})
	}
	sort.Slice(canons, func(i, j int) bool {
		return bytes.Compare(canons[i].rdata, canons[j].rdata) < 0
	})

	var buf bytes.Buffer
	buf.Write(header)
	for _, c := range canons {
		buf.Write(c.owner)
		t := rrs[0].Type()
		buf.Write([]byte{byte(t >> 8), byte(t)})
		buf.Write([]byte{0, 1}) // class IN
		buf.Write([]byte{
			byte(originalTTL >> 24), byte(originalTTL >> 16),
			byte(originalTTL >> 8), byte(originalTTL),
		})
		buf.Write([]byte{byte(len(c.rdata) >> 8), byte(len(c.rdata))})
		buf.Write(c.rdata)
	}
	return buf.Bytes()
}

// Sign produces the RRSIG RR covering rrs, valid from inception to
// expiration. All records must share owner, class, type, and TTL.
func (k *Key) Sign(rrs []dnswire.RR, inception, expiration time.Time) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, ErrEmptyRRSet
	}
	owner := dnswire.CanonicalName(rrs[0].Name)
	if !dnswire.IsSubdomain(owner, k.Zone) {
		return dnswire.RR{}, fmt.Errorf("dnssec: %s out of zone %s", owner, k.Zone)
	}
	labels := dnswire.CountLabels(owner)
	if len(dnswire.SplitLabels(owner)) > 0 && dnswire.SplitLabels(owner)[0] == "*" {
		labels-- // wildcard labels are not counted (RFC 4034 §3.1.3)
	}
	sig := dnswire.RRSIG{
		TypeCovered: rrs[0].Type(),
		Algorithm:   AlgorithmEd25519,
		Labels:      uint8(labels),
		OriginalTTL: rrs[0].TTL,
		Expiration:  uint32(expiration.Unix()),
		Inception:   uint32(inception.Unix()),
		KeyTag:      k.KeyTag(),
		SignerName:  k.Zone,
	}
	data := signedData(sig.SignedHeader(), rrs, rrs[0].TTL)
	sig.Signature = ed25519.Sign(k.private, data)
	return dnswire.RR{
		Name: owner, Class: dnswire.ClassIN, TTL: rrs[0].TTL, Data: sig,
	}, nil
}

// Verify checks sig over rrs against the public key at the given time.
func Verify(key dnswire.DNSKEY, sigRR dnswire.RR, rrs []dnswire.RR, at time.Time) error {
	sig, ok := sigRR.Data.(dnswire.RRSIG)
	if !ok {
		return ErrNoSignature
	}
	if len(rrs) == 0 {
		return ErrEmptyRRSet
	}
	if key.Algorithm != AlgorithmEd25519 || sig.Algorithm != AlgorithmEd25519 {
		return ErrUnsupportedAlg
	}
	if sig.KeyTag != key.KeyTag() {
		return ErrKeyMismatch
	}
	now := uint32(at.Unix())
	if now < sig.Inception || now > sig.Expiration {
		return ErrExpired
	}
	if sig.TypeCovered != rrs[0].Type() {
		return fmt.Errorf("%w: covers %s, RRset is %s", ErrKeyMismatch,
			sig.TypeCovered, rrs[0].Type())
	}
	// Validation uses the RRSIG's original TTL, so cache decrementing
	// does not break signatures.
	data := signedData(sig.SignedHeader(), rrs, sig.OriginalTTL)
	if !ed25519.Verify(ed25519.PublicKey(key.PublicKey), data, sig.Signature) {
		return ErrBadSignature
	}
	return nil
}

// VerifyDS checks that a DNSKEY matches its parent-side DS record.
func VerifyDS(ds dnswire.DS, zone string, key dnswire.DNSKEY) error {
	if ds.DigestType != 2 {
		return ErrUnsupportedAlg
	}
	h := sha256.New()
	h.Write(dnswire.NameWire(dnswire.CanonicalName(zone)))
	h.Write(key.RDataWire())
	if !bytes.Equal(h.Sum(nil), ds.Digest) {
		return ErrBadSignature
	}
	if ds.KeyTag != key.KeyTag() {
		return ErrKeyMismatch
	}
	return nil
}
