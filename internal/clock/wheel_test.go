package clock

import (
	"math/rand"
	"testing"
	"time"
)

// --- wheel edge cases (ISSUE 6 satellite) ---

func TestWheelZeroDuration(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(0, func() { order = append(order, 1) })
	v.AfterFunc(0, func() { order = append(order, 2) })
	v.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("zero-duration order = %v, want [1 2]", order)
	}
	if !v.Now().Equal(epoch) {
		t.Errorf("zero-duration timers moved the clock: %v", v.Now())
	}
}

func TestWheelCancelThenReschedule(t *testing.T) {
	v := NewVirtual(epoch)
	fired := make([]string, 0, 4)
	tm := v.AfterFunc(time.Minute, func() { fired = append(fired, "old") })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	// The canceled node goes straight back to the free list; the next
	// schedule reuses it. The stale handle must stay inert.
	v.AfterFunc(30*time.Second, func() { fired = append(fired, "new") })
	if tm.Stop() {
		t.Error("stale Stop canceled the rescheduled (recycled) timer")
	}
	v.Run()
	if len(fired) != 1 || fired[0] != "new" {
		t.Fatalf("fired = %v, want [new]", fired)
	}
}

func TestWheelFarFutureOverflow(t *testing.T) {
	// Deadlines beyond each wheel level, including past the ~52-day
	// level-3 horizon, must fire in order after cascading down.
	v := NewVirtual(epoch)
	delays := []time.Duration{
		100 * time.Millisecond, // level 0
		10 * time.Second,       // level 1
		3 * time.Hour,          // level 2 (multi-hour TTL expiry)
		20 * 24 * time.Hour,    // level 3
		60 * 24 * time.Hour,    // past the horizon: overflow list
		130 * 24 * time.Hour,   // two horizon crossings out
	}
	var fired []time.Duration
	for _, d := range delays {
		d := d
		v.AfterFunc(d, func() { fired = append(fired, d) })
	}
	v.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d of %d far-future events", len(fired), len(delays))
	}
	for i, d := range delays {
		if fired[i] != d {
			t.Fatalf("far-future firing order %v, want %v", fired, delays)
		}
	}
	if got := v.Now(); !got.Equal(epoch.Add(delays[len(delays)-1])) {
		t.Errorf("Now = %v, want epoch+%v", got, delays[len(delays)-1])
	}
}

func TestWheelFarFutureStop(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.AfterFunc(90*24*time.Hour, func() { t.Error("stopped overflow timer fired") })
	if v.Pending() != 1 {
		t.Fatal("overflow timer not pending")
	}
	if !tm.Stop() {
		t.Error("Stop on overflow-list timer returned false")
	}
	if v.Pending() != 0 {
		t.Error("overflow timer still pending after Stop")
	}
	v.Run()
}

func TestWheelSlotCollision(t *testing.T) {
	// Many timers landing in one level-0 slot (same tick, distinct ns)
	// must fire in (at, seq) order; same-instant ones FIFO by seq.
	v := NewVirtual(epoch)
	const n = 500
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		// All within one ~1.05ms tick; every 5th shares an instant.
		d := time.Duration(i/5) * time.Microsecond
		v.AfterFunc(d, func() { fired = append(fired, i) })
	}
	v.Run()
	if len(fired) != n {
		t.Fatalf("fired %d of %d colliding events", len(fired), n)
	}
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("colliding slot order broken at %d: got %d", i, fired[i])
		}
	}
}

func TestWheelStopAfterFireNoDoubleFree(t *testing.T) {
	// Regression (ISSUE 6 satellite): Stop after fire must return false
	// and must not push the pooled node onto the free list a second time.
	// A double free would hand the same node to two schedules at once and
	// one of the two callbacks would be lost.
	v := NewVirtual(epoch)
	tm := v.AfterFunc(time.Second, func() {})
	v.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	if tm.Stop() {
		t.Fatal("second Stop after fire returned true")
	}
	fired := 0
	v.AfterFunc(time.Second, func() { fired++ })
	v.AfterFunc(2*time.Second, func() { fired++ })
	if tm.Stop() {
		t.Fatal("stale Stop canceled a recycled node")
	}
	v.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (double-freed node would drop one)", fired)
	}
	if _, f, _ := v.Counters(); f != 3 {
		t.Errorf("fired counter = %d, want 3", f)
	}
}

func TestWheelTimerRef(t *testing.T) {
	v := NewVirtual(epoch)
	var got []any
	f := func(arg any) { got = append(got, arg) }
	r1 := v.AfterFuncRef(time.Second, f, "fires")
	r2 := v.AfterFuncRef(2*time.Second, f, "stopped")
	if !r2.Stop() {
		t.Error("TimerRef.Stop on pending timer returned false")
	}
	if r2.Stop() {
		t.Error("second TimerRef.Stop returned true")
	}
	v.Run()
	if r1.Stop() {
		t.Error("TimerRef.Stop after fire returned true")
	}
	if len(got) != 1 || got[0] != "fires" {
		t.Errorf("got %v, want [fires]", got)
	}
	var zero TimerRef
	if zero.Stop() {
		t.Error("zero TimerRef.Stop returned true")
	}
}

func TestAfterFuncRefFallback(t *testing.T) {
	// A Clock that is not a RefScheduler gets the closure-wrapping path.
	v := NewVirtual(epoch)
	c := plainClock{v}
	fired := false
	r := AfterFuncRef(c, time.Second, func(arg any) { fired = arg.(bool) }, true)
	v.Run()
	if !fired {
		t.Error("fallback TimerRef did not fire")
	}
	if r.Stop() {
		t.Error("fallback Stop after fire returned true")
	}
}

// plainClock hides Virtual's extensions so only the Clock interface shows.
type plainClock struct{ v *Virtual }

func (p plainClock) Now() time.Time                            { return p.v.Now() }
func (p plainClock) AfterFunc(d time.Duration, f func()) Timer { return p.v.AfterFunc(d, f) }

// --- differential check against the heap reference ---

// driveBoth runs one random schedule through the wheel and the heap
// reference and fails on any divergence in firing order, observed Now at
// each firing, Stop results, or final counters.
func driveBoth(t *testing.T, seed int64) {
	t.Helper()
	type rec struct {
		id  int
		now time.Duration
	}
	run := func(mk func() interface {
		Clock
		Run()
		RunUntil(time.Time)
		Pending() int
		Counters() (int64, int64, int64)
	}) (fired []rec, stops []bool, sched, exec, stopped int64, now time.Time) {
		rng := rand.New(rand.NewSource(seed))
		clk := mk()
		var timers []Timer
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 2 + rng.Intn(6)
			for i := 0; i < n; i++ {
				myID := id
				id++
				var d time.Duration
				switch rng.Intn(6) {
				case 0:
					d = 0
				case 1:
					d = time.Duration(rng.Intn(1000)) * time.Nanosecond
				case 2:
					d = time.Duration(rng.Intn(5000)) * time.Millisecond
				case 3:
					d = time.Duration(rng.Intn(7200)) * time.Second // multi-hour TTLs
				case 4:
					d = time.Duration(rng.Intn(90*24)) * time.Hour // past the horizon
				default:
					d = time.Duration(rng.Intn(64)) * time.Duration(1<<tickBits) // slot collisions
				}
				nested := depth < 2 && rng.Intn(4) == 0
				timers = append(timers, clk.AfterFunc(d, func() {
					fired = append(fired, rec{myID, clk.Now().Sub(epoch)})
					if nested {
						schedule(depth + 1)
					}
				}))
				if rng.Intn(5) == 0 && len(timers) > 0 {
					victim := timers[rng.Intn(len(timers))]
					stops = append(stops, victim.Stop())
				}
			}
		}
		schedule(0)
		// Drain in bounded chunks, then fully.
		clk.RunUntil(epoch.Add(time.Duration(rng.Intn(3600)) * time.Second))
		schedule(0)
		clk.Run()
		sched, exec, stopped = clk.Counters()
		now = clk.Now()
		return
	}

	wf, ws, wsc, wx, wst, wnow := run(func() interface {
		Clock
		Run()
		RunUntil(time.Time)
		Pending() int
		Counters() (int64, int64, int64)
	} {
		return NewVirtual(epoch)
	})
	hf, hs, hsc, hx, hst, hnow := run(func() interface {
		Clock
		Run()
		RunUntil(time.Time)
		Pending() int
		Counters() (int64, int64, int64)
	} {
		return NewHeap(epoch)
	})

	if len(wf) != len(hf) {
		t.Fatalf("seed %d: wheel fired %d events, heap fired %d", seed, len(wf), len(hf))
	}
	for i := range wf {
		if wf[i] != hf[i] {
			t.Fatalf("seed %d: firing %d diverges: wheel %+v heap %+v", seed, i, wf[i], hf[i])
		}
	}
	if len(ws) != len(hs) {
		t.Fatalf("seed %d: stop counts diverge: %d vs %d", seed, len(ws), len(hs))
	}
	for i := range ws {
		if ws[i] != hs[i] {
			t.Fatalf("seed %d: Stop result %d diverges: wheel %v heap %v", seed, i, ws[i], hs[i])
		}
	}
	if wsc != hsc || wx != hx || wst != hst {
		t.Fatalf("seed %d: counters diverge: wheel (%d,%d,%d) heap (%d,%d,%d)",
			seed, wsc, wx, wst, hsc, hx, hst)
	}
	if !wnow.Equal(hnow) {
		t.Fatalf("seed %d: final Now diverges: wheel %v heap %v", seed, wnow, hnow)
	}
}

func TestWheelMatchesHeapRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		driveBoth(t, seed)
	}
}
