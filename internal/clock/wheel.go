// Hierarchical timing wheel: the engine behind Virtual.
//
// The simulation's timers are overwhelmingly short (packet deliveries a
// few ms out, 5 s client timeouts, sub-hour TTL expiries), and most
// cancelable ones are stopped before they fire. A binary heap pays
// O(log n) with poor cache locality for every push, pop, and (amortized)
// cancel; the wheel pays O(1) for insert and cancel and walks occupancy
// bitmaps to skip empty time wholesale.
//
// Layout: 4 levels x 256 slots over a 2^20 ns (~1.05 ms) base tick.
//
//	level 0: 1 tick/slot    — covers ~268 ms
//	level 1: 256 ticks/slot — covers ~68.7 s
//	level 2: 2^16 ticks/slot — covers ~4.9 h
//	level 3: 2^24 ticks/slot — covers ~52 days
//
// Events beyond level 3's horizon sit in an unsorted overflow list and are
// re-placed each time the cursor crosses a level-3 horizon boundary.
//
// Windows are aligned (an event's level is chosen by tick XOR cursor, as
// in the kernel timer wheel), so a level's slots never wrap within one
// window and the per-level scan is a forward bitmap walk. Level-0 slots
// are one tick wide and kept sorted by (at, seq) with insertion sort;
// higher-level slots are unsorted and re-sorted for free when they
// cascade down, so the wheel fires events in exactly the heap's
// (at, seq) order — bit-for-bit identical simulation outcomes.
//
// Nodes are intrusive doubly-linked, recycled through a free list, and
// allocated in slabs of 64, so steady-state scheduling allocates nothing.
package clock

import (
	"math/bits"
	"sync"
	"time"
)

const (
	tickBits  = 20 // one tick = 2^20 ns ≈ 1.05 ms
	slotBits  = 8
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 4
	occWords  = numSlots / 64

	levelFree = -1        // node is on the free list (or firing)
	levelFar  = numLevels // node is on the far-overflow list

	eventSlab = 64 // nodes allocated per slab when the free list is dry
)

// horizonTicks is the span covered by all wheel levels; events further out
// than this from the cursor live on the far list.
const horizonTicks = int64(1) << (numLevels * slotBits)

// event is a scheduled callback: either a plain closure f or the
// closure-free pair (fArg, arg). Nodes are pooled; gen distinguishes the
// timer a caller holds from a later reuse of the same struct.
type event struct {
	at         int64 // ns since the clock's start
	seq        uint64
	next, prev *event
	f          func()
	fArg       func(any)
	arg        any
	gen        uint32
	level      int8 // wheel level, levelFar, or levelFree
	slot       uint8
}

// Virtual is a deterministic simulated clock backed by a hierarchical
// timing wheel. The zero value is not usable; call NewVirtual.
type Virtual struct {
	mu    sync.Mutex
	start time.Time
	nowNs int64 // current time, ns since start
	cur   int64 // wheel cursor in ticks; always <= tick of every stored event
	seq   uint64
	live  int // scheduled, not yet fired or stopped

	slots [numLevels][numSlots]*event
	occ   [numLevels][occWords]uint64
	far   *event // doubly-linked, unsorted overflow beyond the wheel horizon

	free    *event // singly-linked (via next) recycled nodes
	fired   int64
	stopped int64
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{start: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.start.Add(time.Duration(v.nowNs))
}

// allocEvent returns a recycled or slab-fresh node. Caller holds v.mu.
func (v *Virtual) allocEvent() *event {
	if e := v.free; e != nil {
		v.free = e.next
		e.next = nil
		return e
	}
	slab := make([]event, eventSlab)
	for i := 1; i < eventSlab; i++ {
		slab[i].level = levelFree
		slab[i].next = v.free
		v.free = &slab[i]
	}
	slab[0].level = levelFree
	return &slab[0]
}

// recycle returns an unlinked node to the free list, invalidating any
// Timer or TimerRef still pointing at it. Caller holds v.mu.
func (v *Virtual) recycle(e *event) {
	e.gen++
	e.f, e.fArg, e.arg = nil, nil, nil
	e.level = levelFree
	e.next = v.free
	e.prev = nil
	v.free = e
}

// schedule prepares and places a new event. Caller holds v.mu.
func (v *Virtual) schedule(e *event, d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.at = v.nowNs + int64(d)
	e.seq = v.seq
	v.seq++
	v.live++
	v.place(e)
}

// place links e into the wheel (or the far list) according to its deadline
// relative to the cursor. Caller holds v.mu; e must be unlinked.
func (v *Virtual) place(e *event) {
	tick := e.at >> tickBits
	diff := uint64(tick ^ v.cur)
	var level int
	switch {
	case diff < 1<<slotBits:
		level = 0
	case diff < 1<<(2*slotBits):
		level = 1
	case diff < 1<<(3*slotBits):
		level = 2
	case diff < 1<<(4*slotBits):
		level = 3
	default:
		e.level = levelFar
		e.prev = nil
		e.next = v.far
		if v.far != nil {
			v.far.prev = e
		}
		v.far = e
		return
	}
	slot := uint8(tick >> (level * slotBits) & slotMask)
	e.level = int8(level)
	e.slot = slot
	head := v.slots[level][slot]
	if level == 0 && head != nil && !eventLess(e, head) {
		// Level-0 slots stay sorted by (at, seq): a slot is one tick wide,
		// so same-instant FIFO needs only the seq order within it.
		p := head
		for p.next != nil && !eventLess(e, p.next) {
			p = p.next
		}
		e.next = p.next
		e.prev = p
		if p.next != nil {
			p.next.prev = e
		}
		p.next = e
		return
	}
	e.prev = nil
	e.next = head
	if head != nil {
		head.prev = e
	}
	v.slots[level][slot] = e
	v.occ[level][slot>>6] |= 1 << (slot & 63)
}

func eventLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// unlink removes e from its slot or the far list. Caller holds v.mu.
func (v *Virtual) unlink(e *event) {
	if e.next != nil {
		e.next.prev = e.prev
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else if e.level == levelFar {
		v.far = e.next
	} else {
		l, s := e.level, e.slot
		v.slots[l][s] = e.next
		if e.next == nil {
			v.occ[l][s>>6] &^= 1 << (s & 63)
		}
	}
	e.next, e.prev = nil, nil
}

// nextOcc returns the smallest occupied slot index >= from at level, or -1.
func (v *Virtual) nextOcc(level, from int) int {
	if from >= numSlots {
		return -1
	}
	w := from >> 6
	word := v.occ[level][w] >> (from & 63) << (from & 63)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= occWords {
			return -1
		}
		word = v.occ[level][w]
	}
}

// cascade detaches every node in (level, slot) and re-places it relative
// to the (just advanced) cursor. Nodes land at a strictly lower level —
// or back on level 3 / the far list for clamped far-future deadlines.
// Caller holds v.mu.
func (v *Virtual) cascade(level, slot int) {
	e := v.slots[level][slot]
	v.slots[level][slot] = nil
	v.occ[level][slot>>6] &^= 1 << (uint(slot) & 63)
	for e != nil {
		n := e.next
		e.next, e.prev = nil, nil
		v.place(e)
		e = n
	}
}

// advance moves the cursor to the base of the next occupied window and
// cascades it toward level 0. With useBound, it refuses to advance past
// boundTick and reports false (nothing fires at or before the bound).
// Reports false when the wheel holds no events at all. Caller holds v.mu.
func (v *Virtual) advance(boundTick int64, useBound bool) bool {
	for level := 1; level < numLevels; level++ {
		pos := int(v.cur >> (level * slotBits) & slotMask)
		s := v.nextOcc(level, pos+1)
		if s < 0 {
			continue
		}
		base := v.cur&^(int64(1)<<(uint(level+1)*slotBits)-1) | int64(s)<<(level*slotBits)
		if useBound && base > boundTick {
			return false
		}
		v.cur = base
		v.cascade(level, s)
		return true
	}
	if v.far == nil {
		return false
	}
	// Cross one level-3 horizon and give the far list another chance to
	// land in the wheel. Events many horizons out (~52 days each) loop
	// through here once per horizon — a handful of re-places per sim-year.
	base := v.cur&^(horizonTicks-1) + horizonTicks
	if useBound && base > boundTick {
		return false
	}
	v.cur = base
	list := v.far
	v.far = nil
	for e := list; e != nil; {
		n := e.next
		e.next, e.prev = nil, nil
		v.place(e)
		e = n
	}
	return true
}

// peek returns the earliest pending event without unlinking it, advancing
// the cursor (and cascading) as needed. Returns nil if the wheel is empty
// or (with useBound) if nothing is due at or before the bound. Caller
// holds v.mu.
func (v *Virtual) peek(boundTick int64, useBound bool) *event {
	for {
		if s := v.nextOcc(0, int(v.cur&slotMask)); s >= 0 {
			return v.slots[0][s]
		}
		if !v.advance(boundTick, useBound) {
			return nil
		}
	}
}

// AfterFunc implements Clock. Negative durations fire at the current
// instant (still via the event loop, never synchronously).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.f = f
	v.schedule(e, d)
	return virtualTimer{e: e, gen: e.gen, v: v}
}

// AfterFuncArg implements ArgScheduler: like AfterFunc but f receives arg
// and no Timer is returned, so callers with a static callback pay no
// per-event allocation at all.
func (v *Virtual) AfterFuncArg(d time.Duration, f func(any), arg any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.fArg, e.arg = f, arg
	v.schedule(e, d)
}

// AfterFuncRef implements RefScheduler: like AfterFuncArg but returns a
// cancelable TimerRef by value — zero allocations per timer.
func (v *Virtual) AfterFuncRef(d time.Duration, f func(any), arg any) TimerRef {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.fArg, e.arg = f, arg
	v.schedule(e, d)
	return TimerRef{e: e, v: v, gen: e.gen}
}

type virtualTimer struct {
	e   *event
	v   *Virtual
	gen uint32
}

func (t virtualTimer) Stop() bool { return t.v.stopNode(t.e, t.gen) }

// stopNode cancels a pending node if gen still matches the caller's
// handle. A node whose callback already ran (or that was already stopped)
// has been recycled with a bumped generation, so a late Stop reports
// false and cannot double-free the pooled node.
func (v *Virtual) stopNode(e *event, gen uint32) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e.gen != gen || e.level == levelFree {
		return false // already fired (and possibly recycled) or stopped
	}
	v.unlink(e)
	v.recycle(e)
	v.live--
	v.stopped++
	return true
}

// step runs the earliest pending event, if any, and reports whether one
// ran. With useLimit, an event past limitNs does not run; the clock
// advances to the limit instead (matching the Heap reference).
func (v *Virtual) step(limitNs int64, useLimit bool) bool {
	v.mu.Lock()
	if v.live == 0 {
		v.mu.Unlock()
		return false
	}
	var boundTick int64
	if useLimit {
		boundTick = limitNs >> tickBits
	}
	e := v.peek(boundTick, useLimit)
	if e == nil || (useLimit && e.at > limitNs) {
		if useLimit {
			v.nowNs = limitNs
		}
		v.mu.Unlock()
		return false
	}
	v.unlink(e)
	v.cur = e.at >> tickBits
	v.nowNs = e.at
	v.fired++
	v.live--
	f, fArg, arg := e.f, e.fArg, e.arg
	v.recycle(e)
	v.mu.Unlock()
	// Run without the lock so callbacks can schedule more events. The
	// node itself is already recycled; a late Stop on its timer sees the
	// generation bump and reports "too late".
	if fArg != nil {
		fArg(arg)
	} else {
		f()
	}
	return true
}

// Run processes events until none remain.
func (v *Virtual) Run() {
	for v.step(0, false) {
	}
}

// RunUntil processes events with timestamps at or before deadline, then
// advances the clock to deadline.
func (v *Virtual) RunUntil(deadline time.Time) {
	limit := deadline.Sub(v.start)
	for v.step(int64(limit), true) {
	}
	v.mu.Lock()
	if v.nowNs < int64(limit) {
		v.nowNs = int64(limit)
	}
	v.mu.Unlock()
}

// RunFor processes events for d of simulated time from the current instant.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now().Add(d))
}

// Pending returns the number of scheduled live (not canceled) events.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.live
}

// Counters reports cumulative event-loop totals: events scheduled, events
// executed, and timers canceled before firing.
func (v *Virtual) Counters() (scheduled, fired, stopped int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int64(v.seq), v.fired, v.stopped
}
