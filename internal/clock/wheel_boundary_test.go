package clock

import (
	"testing"
	"time"
)

// horizonNs is the wheel's total span in nanoseconds: an event exactly
// this far from a cursor at the window base is the first one that does
// NOT fit in level 3 and must take the far-list path in place().
const horizonNs = time.Duration(horizonTicks << tickBits) // ~52 days

// TestWheelHorizonBoundary pins the place() level-selection boundary: an
// event scheduled exactly at horizonTicks from the cursor goes to the far
// list (diff == 1<<32 hits the default case), is re-placed when advance()
// crosses the level-3 horizon, and fires at its exact deadline — neither
// dropped nor early — interleaved in (at, seq) order with its neighbors
// one tick on either side of the boundary.
func TestWheelHorizonBoundary(t *testing.T) {
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	v := NewVirtual(start)

	tick := time.Duration(1) << tickBits
	type firing struct {
		label string
		at    time.Duration
	}
	var got []firing
	sched := func(label string, d time.Duration) {
		v.AfterFunc(d, func() {
			if now := v.Now().Sub(start); now != d {
				t.Errorf("%s fired at %v, scheduled for %v", label, now, d)
			}
			got = append(got, firing{label, d})
		})
	}

	sched("near", time.Millisecond)
	sched("at-horizon", horizonNs)       // diff == 1<<32: far list
	sched("horizon-1", horizonNs-tick)   // diff == 1<<32 - 1: level 3
	sched("at-horizon-again", horizonNs) // same instant, later seq: FIFO
	sched("horizon+1", horizonNs+tick)   // far list, lands after one crossing
	sched("mid-window", 30*24*time.Hour) // deep level 3, before the crossing
	sched("two-horizons", 2*horizonNs)   // far list, needs two crossings
	sched("two-horizons+3", 2*horizonNs+3*tick)

	// A far-list cancel must unlink from the overflow list, not a slot.
	stop := v.AfterFunc(horizonNs+2*tick, func() {
		t.Error("stopped far-list event fired")
	})
	if !stop.Stop() {
		t.Fatal("Stop on pending far-list event reported false")
	}

	v.Run()

	want := []string{
		"near", "mid-window", "horizon-1", "at-horizon", "at-horizon-again",
		"horizon+1", "two-horizons", "two-horizons+3",
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d (%v)", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].label != w {
			t.Fatalf("firing %d = %s, want %s (full order: %v)", i, got[i].label, w, got)
		}
	}
	if v.Pending() != 0 {
		t.Errorf("%d events still pending after Run", v.Pending())
	}
}

// TestWheelHorizonFromAdvancedCursor repeats the boundary check after the
// cursor has moved off the window base: the XOR level rule means "exactly
// horizonTicks from now" always differs from the cursor in a bit above
// level 3, so the event must still take the far list and survive the next
// rollover no matter where in the window it was scheduled from.
func TestWheelHorizonFromAdvancedCursor(t *testing.T) {
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	v := NewVirtual(start)

	var fired []string
	// First advance the cursor deep into the window, then schedule the
	// boundary events from inside a callback so e.at is measured from a
	// non-zero, unaligned cursor.
	base := 17*time.Hour + 3*time.Minute + 29*time.Millisecond
	v.AfterFunc(base, func() {
		for _, d := range []time.Duration{
			horizonNs,     // crosses into the next window: far list
			horizonNs - 1, // still beyond level 3's aligned window here: far list too
			time.Second,   // control: nearby event
		} {
			d := d
			wantAt := v.Now().Add(d)
			v.AfterFunc(d, func() {
				if !v.Now().Equal(wantAt) {
					t.Errorf("event for +%v fired at %v, want %v", d, v.Now(), wantAt)
				}
				fired = append(fired, d.String())
			})
		}
	})
	v.Run()

	want := []string{time.Second.String(), (horizonNs - 1).String(), horizonNs.String()}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order %v, want %v", fired, want)
		}
	}
}

// TestWheelFarRecascadeMatchesHeap drives the wheel and the Heap reference
// with an identical schedule clustered around multiples of the horizon and
// asserts bit-identical firing order and timestamps across three level-3
// rollovers, including events scheduled from callbacks mid-run.
func TestWheelFarRecascadeMatchesHeap(t *testing.T) {
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	tick := time.Duration(1) << tickBits

	var durations []time.Duration
	for h := 0; h <= 3; h++ {
		for _, off := range []time.Duration{
			-tick, 0, tick, 7 * tick, 300 * tick, time.Hour,
		} {
			d := time.Duration(h)*horizonNs + off
			if d < 0 {
				continue
			}
			durations = append(durations, d)
		}
	}

	type rec struct {
		label int
		at    time.Duration
	}
	run := func(c interface {
		Now() time.Time
		AfterFunc(time.Duration, func()) Timer
	}, runAll func()) []rec {
		var out []rec
		for i, d := range durations {
			i, d := i, d
			c.AfterFunc(d, func() {
				out = append(out, rec{i, c.Now().Sub(start)})
				// Re-schedule across the next rollover from inside the
				// callback: exercises far-list placement at a moved cursor.
				if d == horizonNs {
					c.AfterFunc(horizonNs, func() {
						out = append(out, rec{-1, c.Now().Sub(start)})
					})
				}
			})
		}
		runAll()
		return out
	}

	w := NewVirtual(start)
	wheelOrder := run(w, w.Run)
	h := NewHeap(start)
	heapOrder := run(h, h.Run)

	if len(wheelOrder) != len(heapOrder) {
		t.Fatalf("wheel fired %d events, heap %d", len(wheelOrder), len(heapOrder))
	}
	for i := range wheelOrder {
		if wheelOrder[i] != heapOrder[i] {
			t.Fatalf("divergence at firing %d: wheel %+v, heap %+v",
				i, wheelOrder[i], heapOrder[i])
		}
	}
}
