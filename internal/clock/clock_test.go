package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Errorf("Now = %v, want epoch+3s", got)
	}
}

func TestVirtualSameInstantFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	v := NewVirtual(epoch)
	fired := 0
	v.AfterFunc(time.Second, func() {
		fired++
		v.AfterFunc(time.Second, func() { fired++ })
	})
	v.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if got := v.Now(); !got.Equal(epoch.Add(2 * time.Second)) {
		t.Errorf("Now = %v, want epoch+2s", got)
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	v.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		d := d
		v.AfterFunc(d, func() { fired = append(fired, d) })
	}
	v.RunUntil(epoch.Add(6 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if got := v.Now(); !got.Equal(epoch.Add(6 * time.Second)) {
		t.Errorf("Now = %v, want epoch+6s", got)
	}
	v.RunFor(10 * time.Second)
	if len(fired) != 3 {
		t.Errorf("after RunFor, fired %v", fired)
	}
}

func TestVirtualNegativeDelay(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(-time.Hour, func() { fired = true })
	v.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if !v.Now().Equal(epoch) {
		t.Error("negative delay moved clock backwards")
	}
}

func TestVirtualPending(t *testing.T) {
	v := NewVirtual(epoch)
	t1 := v.AfterFunc(time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	if got := v.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	t1.Stop()
	if got := v.Pending(); got != 1 {
		t.Errorf("Pending after Stop = %d, want 1", got)
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.AfterFunc(time.Second, func() {})
	v.Run()
	if tm.Stop() {
		t.Error("Stop after fire returned true")
	}
	// The fired event's struct is recycled; a stale Stop must not cancel
	// whatever timer reuses it.
	fired := false
	v.AfterFunc(time.Second, func() { fired = true })
	if tm.Stop() {
		t.Error("stale Stop returned true")
	}
	v.Run()
	if !fired {
		t.Error("stale Stop canceled a recycled event")
	}
}

func TestVirtualAfterFuncArg(t *testing.T) {
	v := NewVirtual(epoch)
	var got []any
	f := func(arg any) { got = append(got, arg) }
	v.AfterFuncArg(2*time.Second, f, "b")
	v.AfterFuncArg(time.Second, f, "a")
	v.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("got %v, want [a b]", got)
	}
}

func TestVirtualStopReclaimsNodes(t *testing.T) {
	// The wheel analogue of the old heap-compaction test: canceled timers
	// must leave the wheel immediately (O(1) unlink to the free list), not
	// linger until their far-future deadlines come around.
	v := NewVirtual(epoch)
	const n = 1000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, v.AfterFunc(time.Hour, func() {}))
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop returned false for pending timer")
		}
	}
	if got := v.Pending(); got != 0 {
		t.Errorf("Pending = %d after stopping everything", got)
	}
	v.mu.Lock()
	linked := 0
	for l := range v.slots {
		for s := range v.slots[l] {
			for e := v.slots[l][s]; e != nil; e = e.next {
				linked++
			}
		}
	}
	for e := v.far; e != nil; e = e.next {
		linked++
	}
	v.mu.Unlock()
	if linked != 0 {
		t.Errorf("wheel still links %d nodes after stopping everything", linked)
	}
	fired := false
	v.AfterFunc(time.Minute, func() { fired = true })
	v.Run()
	if !fired {
		t.Error("event scheduled after mass cancel did not fire")
	}
}

func TestHeapDeadCompaction(t *testing.T) {
	// Pins the reference engine's compaction semantics: dead events are
	// dropped from the heap once they outnumber live ones.
	v := NewHeap(epoch)
	const n = 1000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, v.AfterFunc(time.Hour, func() {}))
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop returned false for pending timer")
		}
	}
	if got := v.Pending(); got != 0 {
		t.Errorf("Pending = %d after stopping everything", got)
	}
	v.mu.Lock()
	heapLen, dead := len(v.heap), v.dead
	v.mu.Unlock()
	if heapLen > n/2 {
		t.Errorf("heap still holds %d events (%d dead); compaction did not run", heapLen, dead)
	}
	fired := false
	v.AfterFunc(time.Minute, func() { fired = true })
	v.Run()
	if !fired {
		t.Error("event scheduled after compaction did not fire")
	}
}

func TestVirtualEventReuseKeepsDeterminism(t *testing.T) {
	run := func() []int {
		v := NewVirtual(epoch)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			v.AfterFunc(time.Duration(i%7)*time.Second, func() {
				order = append(order, i)
				if i%3 == 0 {
					v.AfterFunc(time.Second, func() { order = append(order, 1000+i) })
				}
			})
		}
		v.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	ch := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if c.Now().Before(before) {
		t.Error("real clock went backwards")
	}
}
