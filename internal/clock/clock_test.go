package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Errorf("Now = %v, want epoch+3s", got)
	}
}

func TestVirtualSameInstantFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	v := NewVirtual(epoch)
	fired := 0
	v.AfterFunc(time.Second, func() {
		fired++
		v.AfterFunc(time.Second, func() { fired++ })
	})
	v.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if got := v.Now(); !got.Equal(epoch.Add(2 * time.Second)) {
		t.Errorf("Now = %v, want epoch+2s", got)
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	v.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		d := d
		v.AfterFunc(d, func() { fired = append(fired, d) })
	}
	v.RunUntil(epoch.Add(6 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if got := v.Now(); !got.Equal(epoch.Add(6 * time.Second)) {
		t.Errorf("Now = %v, want epoch+6s", got)
	}
	v.RunFor(10 * time.Second)
	if len(fired) != 3 {
		t.Errorf("after RunFor, fired %v", fired)
	}
}

func TestVirtualNegativeDelay(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(-time.Hour, func() { fired = true })
	v.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if !v.Now().Equal(epoch) {
		t.Error("negative delay moved clock backwards")
	}
}

func TestVirtualPending(t *testing.T) {
	v := NewVirtual(epoch)
	t1 := v.AfterFunc(time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	if got := v.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	t1.Stop()
	if got := v.Pending(); got != 1 {
		t.Errorf("Pending after Stop = %d, want 1", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	ch := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if c.Now().Before(before) {
		t.Error("real clock went backwards")
	}
}
