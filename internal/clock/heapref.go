// The original container/heap virtual clock, kept as a reference oracle.
// The timing wheel in wheel.go replaced it on the hot path; the
// differential property tests (internal/proptest and clock_test.go) drive
// random schedules through both engines and require identical firing
// order, Now() observations, and counter totals. Do not modify its
// semantics: it pins the contract the wheel must honor.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Heap is the heap-backed deterministic simulated clock (the pre-wheel
// Virtual). The zero value is not usable; call NewHeap.
//
// Fired and canceled events are recycled through a free list, and the heap
// is compacted when more than half of it is dead timers, so multi-hour
// runs with millions of short-lived timers stay allocation- and
// memory-flat.
type Heap struct {
	mu      sync.Mutex
	now     time.Time
	heap    refEventHeap
	seq     uint64 // tiebreaker for events at the same instant
	dead    int    // canceled events still sitting in the heap
	free    []*refEvent
	fired   int64 // live events executed
	stopped int64 // timers canceled before firing
}

// NewHeap returns a heap-backed virtual clock starting at start.
func NewHeap(start time.Time) *Heap {
	return &Heap{now: start}
}

// refEvent is a scheduled callback: either a plain closure f or the
// closure-free pair (fArg, arg). Events are pooled; gen distinguishes the
// timer a caller holds from a later reuse of the same struct.
type refEvent struct {
	at   time.Time
	seq  uint64
	f    func()
	fArg func(any)
	arg  any
	dead bool
	gen  uint32
}

type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Now implements Clock.
func (v *Heap) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// allocEvent returns a recycled or fresh event. Caller holds v.mu.
func (v *Heap) allocEvent() *refEvent {
	if n := len(v.free); n > 0 {
		e := v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		return e
	}
	return &refEvent{}
}

// recycle returns a popped event to the free list, invalidating any Timer
// still pointing at it. Caller holds v.mu.
func (v *Heap) recycle(e *refEvent) {
	e.gen++
	e.f, e.fArg, e.arg = nil, nil, nil
	e.dead = false
	v.free = append(v.free, e)
}

// schedule inserts a prepared event. Caller holds v.mu.
func (v *Heap) schedule(e *refEvent, d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.at = v.now.Add(d)
	e.seq = v.seq
	v.seq++
	heap.Push(&v.heap, e)
}

// AfterFunc implements Clock. Negative durations fire at the current
// instant (still via the event loop, never synchronously).
func (v *Heap) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.f = f
	v.schedule(e, d)
	return heapTimer{e: e, gen: e.gen, v: v}
}

// AfterFuncArg implements ArgScheduler: like AfterFunc but f receives arg
// and no Timer is returned, so callers with a static callback pay no
// per-event allocation at all.
func (v *Heap) AfterFuncArg(d time.Duration, f func(any), arg any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.fArg, e.arg = f, arg
	v.schedule(e, d)
}

type heapTimer struct {
	e   *refEvent
	v   *Heap
	gen uint32
}

func (t heapTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.e.gen != t.gen || t.e.dead {
		return false // already fired (and possibly recycled) or stopped
	}
	t.e.dead = true
	t.v.dead++
	t.v.stopped++
	t.v.compact()
	return true
}

// compact rebuilds the heap without dead events once they outnumber live
// ones, so canceled timers with far-future deadlines (resolver client
// timeouts, mostly) do not accumulate. Caller holds v.mu.
func (v *Heap) compact() {
	const minDead = 64 // below this the dead events are cheaper than a rebuild
	if v.dead < minDead || v.dead <= len(v.heap)/2 {
		return
	}
	live := v.heap[:0]
	for _, e := range v.heap {
		if e.dead {
			v.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(v.heap); i++ {
		v.heap[i] = nil
	}
	v.heap = live
	v.dead = 0
	heap.Init(&v.heap)
}

// step runs the earliest pending event, if any, and reports whether one ran
// or was discarded.
func (v *Heap) step(limit time.Time, useLimit bool) bool {
	v.mu.Lock()
	if len(v.heap) == 0 {
		v.mu.Unlock()
		return false
	}
	e := v.heap[0]
	if useLimit && e.at.After(limit) {
		v.now = limit
		v.mu.Unlock()
		return false
	}
	heap.Pop(&v.heap)
	if e.dead {
		v.dead--
		v.recycle(e)
		v.mu.Unlock()
		return true
	}
	f, fArg, arg := e.f, e.fArg, e.arg
	v.now = e.at
	v.fired++
	v.recycle(e)
	v.mu.Unlock()
	// Run without the lock so callbacks can schedule more events. The
	// event itself is already recycled; a late Stop on its timer sees the
	// generation bump and reports "too late".
	if fArg != nil {
		fArg(arg)
	} else {
		f()
	}
	return true
}

// Run processes events until none remain.
func (v *Heap) Run() {
	for v.step(time.Time{}, false) {
	}
}

// RunUntil processes events with timestamps at or before deadline, then
// advances the clock to deadline.
func (v *Heap) RunUntil(deadline time.Time) {
	for v.step(deadline, true) {
	}
	v.mu.Lock()
	if v.now.Before(deadline) {
		v.now = deadline
	}
	v.mu.Unlock()
}

// RunFor processes events for d of simulated time from the current instant.
func (v *Heap) RunFor(d time.Duration) {
	v.RunUntil(v.Now().Add(d))
}

// Pending returns the number of scheduled live (not canceled) events.
func (v *Heap) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.heap) - v.dead
}

// Counters reports cumulative event-loop totals: events scheduled, events
// executed, and timers canceled before firing.
func (v *Heap) Counters() (scheduled, fired, stopped int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int64(v.seq), v.fired, v.stopped
}
