// Package clock abstracts time so the DNS engines can run either on the
// wall clock (real servers in cmd/) or on a deterministic virtual clock
// (the discrete-event simulations that reproduce the paper's experiments).
//
// The virtual clock is a single-threaded event loop: callbacks scheduled
// with AfterFunc run on the goroutine that calls Run, in timestamp order.
// Multi-hour experiments with tens of thousands of resolvers execute in
// milliseconds, and runs are bit-for-bit reproducible for a given seed.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides the current time and one-shot timers.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed. The returned Timer
	// can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was stopped
	// before it fired.
	Stop() bool
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Virtual is a deterministic simulated clock. The zero value is not usable;
// call NewVirtual.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	heap eventHeap
	seq  uint64 // tiebreaker for events at the same instant
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type event struct {
	at   time.Time
	seq  uint64
	f    func()
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. Negative durations fire at the current
// instant (still via the event loop, never synchronously).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	e := &event{at: v.now.Add(d), seq: v.seq, f: f}
	v.seq++
	heap.Push(&v.heap, e)
	return virtualTimer{e: e, v: v}
}

type virtualTimer struct {
	e *event
	v *Virtual
}

func (t virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	was := !t.e.dead
	t.e.dead = true
	return was
}

// step runs the earliest pending event, if any, and reports whether one ran
// or was discarded.
func (v *Virtual) step(limit time.Time, useLimit bool) bool {
	v.mu.Lock()
	if len(v.heap) == 0 {
		v.mu.Unlock()
		return false
	}
	e := v.heap[0]
	if useLimit && e.at.After(limit) {
		v.now = limit
		v.mu.Unlock()
		return false
	}
	heap.Pop(&v.heap)
	if e.dead {
		v.mu.Unlock()
		return true
	}
	v.now = e.at
	v.mu.Unlock()
	e.f() // run without the lock so callbacks can schedule more events
	return true
}

// Run processes events until none remain.
func (v *Virtual) Run() {
	for v.step(time.Time{}, false) {
	}
}

// RunUntil processes events with timestamps at or before deadline, then
// advances the clock to deadline.
func (v *Virtual) RunUntil(deadline time.Time) {
	for v.step(deadline, true) {
	}
	v.mu.Lock()
	if v.now.Before(deadline) {
		v.now = deadline
	}
	v.mu.Unlock()
}

// RunFor processes events for d of simulated time from the current instant.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now().Add(d))
}

// Pending returns the number of scheduled (possibly canceled) events.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.heap {
		if !e.dead {
			n++
		}
	}
	return n
}
