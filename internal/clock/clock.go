// Package clock abstracts time so the DNS engines can run either on the
// wall clock (real servers in cmd/) or on a deterministic virtual clock
// (the discrete-event simulations that reproduce the paper's experiments).
//
// The virtual clock is a single-threaded event loop: callbacks scheduled
// with AfterFunc run on the goroutine that calls Run, in timestamp order.
// Multi-hour experiments with tens of thousands of resolvers execute in
// milliseconds, and runs are bit-for-bit reproducible for a given seed.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides the current time and one-shot timers.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed. The returned Timer
	// can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was stopped
	// before it fired.
	Stop() bool
}

// ArgScheduler is an optional Clock extension for hot paths: it schedules
// a fire-and-forget callback with an argument, so the caller pays neither
// a closure allocation per event nor the Timer interface boxing of
// AfterFunc. The simulated network delivers every packet through it.
type ArgScheduler interface {
	AfterFuncArg(d time.Duration, f func(arg any), arg any)
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// AfterFuncArg implements ArgScheduler (via a closure; the allocation
// saving only matters on the virtual clock's simulation hot path).
func (Real) AfterFuncArg(d time.Duration, f func(any), arg any) {
	time.AfterFunc(d, func() { f(arg) })
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Virtual is a deterministic simulated clock. The zero value is not usable;
// call NewVirtual.
//
// Fired and canceled events are recycled through a free list, and the heap
// is compacted when more than half of it is dead timers, so multi-hour
// runs with millions of short-lived timers stay allocation- and
// memory-flat.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	heap    eventHeap
	seq     uint64 // tiebreaker for events at the same instant
	dead    int    // canceled events still sitting in the heap
	free    []*event
	fired   int64 // live events executed
	stopped int64 // timers canceled before firing
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// event is a scheduled callback: either a plain closure f or the
// closure-free pair (fArg, arg). Events are pooled; gen distinguishes the
// timer a caller holds from a later reuse of the same struct.
type event struct {
	at   time.Time
	seq  uint64
	f    func()
	fArg func(any)
	arg  any
	dead bool
	gen  uint32
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// allocEvent returns a recycled or fresh event. Caller holds v.mu.
func (v *Virtual) allocEvent() *event {
	if n := len(v.free); n > 0 {
		e := v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns a popped event to the free list, invalidating any Timer
// still pointing at it. Caller holds v.mu.
func (v *Virtual) recycle(e *event) {
	e.gen++
	e.f, e.fArg, e.arg = nil, nil, nil
	e.dead = false
	v.free = append(v.free, e)
}

// schedule inserts a prepared event. Caller holds v.mu.
func (v *Virtual) schedule(e *event, d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.at = v.now.Add(d)
	e.seq = v.seq
	v.seq++
	heap.Push(&v.heap, e)
}

// AfterFunc implements Clock. Negative durations fire at the current
// instant (still via the event loop, never synchronously).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.f = f
	v.schedule(e, d)
	return virtualTimer{e: e, gen: e.gen, v: v}
}

// AfterFuncArg implements ArgScheduler: like AfterFunc but f receives arg
// and no Timer is returned, so callers with a static callback pay no
// per-event allocation at all.
func (v *Virtual) AfterFuncArg(d time.Duration, f func(any), arg any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.allocEvent()
	e.fArg, e.arg = f, arg
	v.schedule(e, d)
}

type virtualTimer struct {
	e   *event
	v   *Virtual
	gen uint32
}

func (t virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.e.gen != t.gen || t.e.dead {
		return false // already fired (and possibly recycled) or stopped
	}
	t.e.dead = true
	t.v.dead++
	t.v.stopped++
	t.v.compact()
	return true
}

// compact rebuilds the heap without dead events once they outnumber live
// ones, so canceled timers with far-future deadlines (resolver client
// timeouts, mostly) do not accumulate. Caller holds v.mu.
func (v *Virtual) compact() {
	const minDead = 64 // below this the dead events are cheaper than a rebuild
	if v.dead < minDead || v.dead <= len(v.heap)/2 {
		return
	}
	live := v.heap[:0]
	for _, e := range v.heap {
		if e.dead {
			v.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(v.heap); i++ {
		v.heap[i] = nil
	}
	v.heap = live
	v.dead = 0
	heap.Init(&v.heap)
}

// step runs the earliest pending event, if any, and reports whether one ran
// or was discarded.
func (v *Virtual) step(limit time.Time, useLimit bool) bool {
	v.mu.Lock()
	if len(v.heap) == 0 {
		v.mu.Unlock()
		return false
	}
	e := v.heap[0]
	if useLimit && e.at.After(limit) {
		v.now = limit
		v.mu.Unlock()
		return false
	}
	heap.Pop(&v.heap)
	if e.dead {
		v.dead--
		v.recycle(e)
		v.mu.Unlock()
		return true
	}
	f, fArg, arg := e.f, e.fArg, e.arg
	v.now = e.at
	v.fired++
	v.recycle(e)
	v.mu.Unlock()
	// Run without the lock so callbacks can schedule more events. The
	// event itself is already recycled; a late Stop on its timer sees the
	// generation bump and reports "too late".
	if fArg != nil {
		fArg(arg)
	} else {
		f()
	}
	return true
}

// Run processes events until none remain.
func (v *Virtual) Run() {
	for v.step(time.Time{}, false) {
	}
}

// RunUntil processes events with timestamps at or before deadline, then
// advances the clock to deadline.
func (v *Virtual) RunUntil(deadline time.Time) {
	for v.step(deadline, true) {
	}
	v.mu.Lock()
	if v.now.Before(deadline) {
		v.now = deadline
	}
	v.mu.Unlock()
}

// RunFor processes events for d of simulated time from the current instant.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now().Add(d))
}

// Pending returns the number of scheduled live (not canceled) events.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.heap) - v.dead
}

// Counters reports cumulative event-loop totals: events scheduled, events
// executed, and timers canceled before firing.
func (v *Virtual) Counters() (scheduled, fired, stopped int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int64(v.seq), v.fired, v.stopped
}
