// Package clock abstracts time so the DNS engines can run either on the
// wall clock (real servers in cmd/) or on a deterministic virtual clock
// (the discrete-event simulations that reproduce the paper's experiments).
//
// The virtual clock is a single-threaded event loop: callbacks scheduled
// with AfterFunc run on the goroutine that calls Run, in timestamp order.
// Multi-hour experiments with tens of thousands of resolvers execute in
// milliseconds, and runs are bit-for-bit reproducible for a given seed.
//
// Virtual is backed by a hierarchical timing wheel (see wheel.go); the
// previous container/heap implementation survives as Heap (heapref.go),
// the reference oracle for the differential property tests.
package clock

import (
	"time"
)

// Clock provides the current time and one-shot timers.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed. The returned Timer
	// can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was stopped
	// before it fired.
	Stop() bool
}

// ArgScheduler is an optional Clock extension for hot paths: it schedules
// a fire-and-forget callback with an argument, so the caller pays neither
// a closure allocation per event nor the Timer interface boxing of
// AfterFunc. The simulated network delivers every packet through it.
type ArgScheduler interface {
	AfterFuncArg(d time.Duration, f func(arg any), arg any)
}

// RefScheduler is the cancelable flavor of ArgScheduler: it returns a
// TimerRef by value, so a cancelable timer with a static callback costs
// zero allocations on the virtual clock (the resolver and stub timeout
// paths, one per upstream query, run through it).
type RefScheduler interface {
	AfterFuncRef(d time.Duration, f func(arg any), arg any) TimerRef
}

// TimerRef is a cancelable pending callback held by value. The zero
// TimerRef is valid and Stop on it reports false.
type TimerRef struct {
	// Exactly one of the backends is set.
	e   *event   // virtual-clock node
	v   *Virtual // owning wheel
	gen uint32   // node generation at schedule time
	t   Timer    // fallback for foreign Clock implementations
}

// Stop cancels the timer. It reports whether the call was stopped before
// it fired; after the callback ran (or on a second Stop) it reports false.
func (r TimerRef) Stop() bool {
	if r.e != nil {
		return r.v.stopNode(r.e, r.gen)
	}
	if r.t != nil {
		return r.t.Stop()
	}
	return false
}

// AfterFuncRef schedules f(arg) on any Clock, using the allocation-free
// RefScheduler path when clk provides it.
func AfterFuncRef(clk Clock, d time.Duration, f func(arg any), arg any) TimerRef {
	if rs, ok := clk.(RefScheduler); ok {
		return rs.AfterFuncRef(d, f, arg)
	}
	return TimerRef{t: clk.AfterFunc(d, func() { f(arg) })}
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// AfterFuncArg implements ArgScheduler (via a closure; the allocation
// saving only matters on the virtual clock's simulation hot path).
func (Real) AfterFuncArg(d time.Duration, f func(any), arg any) {
	time.AfterFunc(d, func() { f(arg) })
}

// AfterFuncRef implements RefScheduler.
func (Real) AfterFuncRef(d time.Duration, f func(any), arg any) TimerRef {
	return TimerRef{t: realTimer{time.AfterFunc(d, func() { f(arg) })}}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }
