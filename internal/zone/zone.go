// Package zone stores authoritative DNS zone data and implements the
// RFC 1034 §4.3.2 lookup algorithm: authoritative answers, referrals with
// glue, CNAME indirection, wildcard synthesis, and negative answers
// (NXDOMAIN / NODATA) carrying the SOA for RFC 2308 negative caching.
package zone

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dnswire"
)

// Key identifies an RRset within a zone.
type Key struct {
	Name string
	Type dnswire.Type
}

// ResultKind classifies the outcome of a zone lookup.
type ResultKind int

// Lookup outcomes.
const (
	// Success: Records holds the answer RRset.
	Success ResultKind = iota
	// Delegation: the name is at or below a zone cut; Records holds the NS
	// set of the cut, Glue the in-zone addresses of those servers.
	Delegation
	// NXDomain: the name does not exist; SOA is populated.
	NXDomain
	// NoData: the name exists but has no RRset of the queried type; SOA is
	// populated.
	NoData
	// CName: the name owns a CNAME and the query was for another type;
	// Records holds the CNAME RRset.
	CName
	// NotInZone: the name is not within this zone's origin.
	NotInZone
)

func (k ResultKind) String() string {
	switch k {
	case Success:
		return "Success"
	case Delegation:
		return "Delegation"
	case NXDomain:
		return "NXDomain"
	case NoData:
		return "NoData"
	case CName:
		return "CName"
	case NotInZone:
		return "NotInZone"
	}
	return fmt.Sprintf("ResultKind(%d)", int(k))
}

// Result is the outcome of Zone.Lookup.
type Result struct {
	Kind    ResultKind
	Records []dnswire.RR
	Glue    []dnswire.RR
	SOA     dnswire.RR // valid for NXDomain and NoData
}

// Zone is a set of RRsets under a common origin. It is safe for concurrent
// use.
type Zone struct {
	origin string

	mu      sync.RWMutex
	rrsets  map[Key][]dnswire.RR
	nodes   map[string]bool // names that exist (own data or have descendants)
	withers map[string]int  // descendant counts for node bookkeeping

	// cowSrc, when non-nil, marks this zone as a copy-on-write clone still
	// borrowing cowSrc's maps. The first mutation copies them (under
	// cowSrc's read lock) and detaches. See Clone.
	cowSrc *Zone
}

// New creates an empty zone rooted at origin.
func New(origin string) *Zone {
	return &Zone{
		origin:  dnswire.CanonicalName(origin),
		rrsets:  make(map[Key][]dnswire.RR),
		nodes:   make(map[string]bool),
		withers: make(map[string]int),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() string { return z.origin }

// Clone returns a logical copy of the zone: mutating either zone never
// shows through the other. The copy is lazy — it borrows the source's
// maps until its first mutation, when it deep-copies them (sharing RData
// values, which are immutable by contract). A clone that is only ever
// read, the common case for zones stamped out of a shared template, costs
// one struct allocation. Cloning also skips per-record name validation
// and node bookkeeping, which is much cheaper than replaying Add.
//
// Mutating the source while read-only clones are live is safe (the copy
// is taken under the source's lock), but such mutations may or may not be
// visible through a still-borrowing clone — clone from templates that no
// longer change.
func (z *Zone) Clone() *Zone {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return &Zone{
		origin:  z.origin,
		rrsets:  z.rrsets,
		nodes:   z.nodes,
		withers: z.withers,
		cowSrc:  z,
	}
}

// ensureOwnedLocked detaches a copy-on-write clone from its source before
// the first mutation. Caller holds z.mu for writing.
func (z *Zone) ensureOwnedLocked() {
	src := z.cowSrc
	if src == nil {
		return
	}
	src.mu.RLock()
	rrsets := make(map[Key][]dnswire.RR, len(z.rrsets))
	for k, v := range z.rrsets {
		rrsets[k] = copyRRs(v)
	}
	nodes := make(map[string]bool, len(z.nodes))
	for k, v := range z.nodes {
		nodes[k] = v
	}
	withers := make(map[string]int, len(z.withers))
	for k, v := range z.withers {
		withers[k] = v
	}
	src.mu.RUnlock()
	z.rrsets, z.nodes, z.withers, z.cowSrc = rrsets, nodes, withers, nil
}

// Add inserts rr into the zone. All records of one RRset must share a TTL;
// Add normalizes later records to the first one's TTL. Duplicate data is
// ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	rr.Name = dnswire.CanonicalName(rr.Name)
	if rr.Data == nil {
		return fmt.Errorf("zone %s: record %q has no data", z.origin, rr.Name)
	}
	if !dnswire.IsSubdomain(rr.Name, z.origin) {
		return fmt.Errorf("zone %s: record %q out of zone", z.origin, rr.Name)
	}
	if err := dnswire.ValidName(rr.Name); err != nil {
		return fmt.Errorf("zone %s: record %q: %w", z.origin, rr.Name, err)
	}
	if rr.Class == 0 {
		rr.Class = dnswire.ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.ensureOwnedLocked()
	k := Key{Name: rr.Name, Type: rr.Type()}
	set := z.rrsets[k]
	for _, have := range set {
		if have.Data.Equal(rr.Data) {
			return nil
		}
	}
	if len(set) > 0 {
		rr.TTL = set[0].TTL
	}
	z.rrsets[k] = append(set, rr)
	z.addNodeLocked(rr.Name)
	return nil
}

// addNodeLocked marks name and every ancestor up to the origin as existing.
func (z *Zone) addNodeLocked(name string) {
	for n := name; ; n = dnswire.Parent(n) {
		z.nodes[n] = true
		z.withers[n]++
		if n == z.origin || n == "." {
			break
		}
	}
}

func (z *Zone) removeNodeLocked(name string) {
	for n := name; ; n = dnswire.Parent(n) {
		z.withers[n]--
		if z.withers[n] <= 0 {
			delete(z.withers, n)
			delete(z.nodes, n)
		}
		if n == z.origin || n == "." {
			break
		}
	}
}

// MustAdd is Add, panicking on error. For fixture construction.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes the RRset (name, t). Removing a non-existent set is a
// no-op.
func (z *Zone) Remove(name string, t dnswire.Type) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: name, Type: t}
	set, ok := z.rrsets[k]
	if !ok {
		return
	}
	z.ensureOwnedLocked()
	delete(z.rrsets, k)
	for range set {
		z.removeNodeLocked(name)
	}
}

// Replace atomically swaps the RRset (name, t) for the given records, all
// owned by name with TTL ttl. Used by the experiment harness to rotate the
// serial-encoded AAAA answers every zone-file round (§3.2).
func (z *Zone) Replace(name string, t dnswire.Type, ttl uint32, data ...dnswire.RData) error {
	z.Remove(name, t)
	for _, d := range data {
		if d.RType() != t {
			return fmt.Errorf("zone %s: replace %s with %s data", z.origin, t, d.RType())
		}
		if err := z.Add(dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl, Data: d}); err != nil {
			return err
		}
	}
	return nil
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() (dnswire.RR, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]
	if len(set) == 0 {
		return dnswire.RR{}, false
	}
	return set[0], true
}

// Serial returns the zone serial from the SOA, or 0 if there is none.
func (z *Zone) Serial() uint32 {
	rr, ok := z.SOA()
	if !ok {
		return 0
	}
	return rr.Data.(dnswire.SOA).Serial
}

// BumpSerial increments the SOA serial, returning the new value.
func (z *Zone) BumpSerial() uint32 {
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: z.origin, Type: dnswire.TypeSOA}
	if len(z.rrsets[k]) == 0 {
		return 0
	}
	z.ensureOwnedLocked()
	set := z.rrsets[k]
	soa := set[0].Data.(dnswire.SOA)
	soa.Serial++
	set[0].Data = soa
	return soa.Serial
}

// RRSet returns a copy of the RRset (name, t).
func (z *Zone) RRSet(name string, t dnswire.Type) []dnswire.RR {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]dnswire.RR(nil), z.rrsets[Key{Name: name, Type: t}]...)
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range z.rrsets {
		seen[k.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, set := range z.rrsets {
		n += len(set)
	}
	return n
}

// Lookup resolves (name, qtype) within the zone per RFC 1034 §4.3.2.
func (z *Zone) Lookup(name string, qtype dnswire.Type) Result {
	var res Result
	res.Kind, res.SOA = z.AppendLookup(name, qtype, &res.Records, &res.Glue)
	return res
}

// AppendLookup is the allocation-free twin of Lookup: answer records are
// appended onto *recs and delegation glue onto *glue (both may grow), and
// the result kind plus the zone SOA (set only for negative answers) are
// returned. Callers reusing slice capacity pay no per-lookup allocations.
func (z *Zone) AppendLookup(name string, qtype dnswire.Type, recs, glue *[]dnswire.RR) (ResultKind, dnswire.RR) {
	name = dnswire.CanonicalName(name)
	if !dnswire.IsSubdomain(name, z.origin) {
		return NotInZone, dnswire.RR{}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Zone cut? Walk from just below the apex toward the name. A NS set at
	// an intermediate (or the queried) name that is not the apex marks a
	// delegation. DS queries are answered by the parent side of the cut.
	if cut := z.cutLocked(name, qtype); cut != "" {
		ns := z.rrsets[Key{Name: cut, Type: dnswire.TypeNS}]
		*recs = append(*recs, ns...)
		z.appendGlueLocked(glue, ns)
		return Delegation, dnswire.RR{}
	}

	if set := z.rrsets[Key{Name: name, Type: qtype}]; len(set) > 0 {
		*recs = append(*recs, set...)
		return Success, dnswire.RR{}
	}
	if qtype != dnswire.TypeCNAME {
		if set := z.rrsets[Key{Name: name, Type: dnswire.TypeCNAME}]; len(set) > 0 {
			*recs = append(*recs, set...)
			return CName, dnswire.RR{}
		}
	}
	if z.nodes[name] {
		return NoData, z.soaLocked()
	}
	// Wildcard synthesis: find the closest encloser and test *.<encloser>.
	if kind, ok := z.appendWildcardLocked(name, qtype, recs); ok {
		if kind == NoData {
			return NoData, z.soaLocked()
		}
		return kind, dnswire.RR{}
	}
	return NXDomain, z.soaLocked()
}

// cutLocked returns the name of the zone cut covering name, or "".
//
// Every candidate cut is a suffix of the canonical name strictly longer
// than the apex, so the walk slices name at label boundaries instead of
// splitting and re-joining labels — zero allocations on the per-query
// lookup path.
func (z *Zone) cutLocked(name string, qtype dnswire.Type) string {
	limit := len(name) - len(z.origin)
	if z.origin == "." {
		limit = len(name)
	}
	// Candidate cut names from shallowest (just below apex) to the name.
	for o := prevLabelStart(name, limit); o >= 0; o = prevLabelStart(name, o) {
		candidate := name[o:]
		if len(z.rrsets[Key{Name: candidate, Type: dnswire.TypeNS}]) == 0 {
			continue
		}
		// The parent is authoritative for DS at the cut itself.
		if candidate == name && qtype == dnswire.TypeDS {
			continue
		}
		return candidate
	}
	return ""
}

// prevLabelStart returns the largest label-start offset in name strictly
// below bound, or -1 when none remains.
func prevLabelStart(name string, bound int) int {
	if bound <= 0 {
		return -1
	}
	if i := strings.LastIndexByte(name[:bound-1], '.'); i >= 0 {
		return i + 1
	}
	return 0
}

func (z *Zone) appendGlueLocked(glue *[]dnswire.RR, ns []dnswire.RR) {
	for _, rr := range ns {
		host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
		if !dnswire.IsSubdomain(host, z.origin) {
			continue
		}
		*glue = append(*glue, z.rrsets[Key{Name: host, Type: dnswire.TypeA}]...)
		*glue = append(*glue, z.rrsets[Key{Name: host, Type: dnswire.TypeAAAA}]...)
	}
}

func (z *Zone) appendWildcardLocked(name string, qtype dnswire.Type, recs *[]dnswire.RR) (ResultKind, bool) {
	for n := dnswire.Parent(name); dnswire.IsSubdomain(n, z.origin); n = dnswire.Parent(n) {
		wc := dnswire.Join("*", n)
		if set := z.rrsets[Key{Name: wc, Type: qtype}]; len(set) > 0 {
			start := len(*recs)
			*recs = append(*recs, set...)
			for i := range (*recs)[start:] {
				(*recs)[start+i].Name = name
			}
			return Success, true
		}
		if z.nodes[wc] {
			// A wildcard exists but not for this type: NODATA.
			return NoData, true
		}
		if z.nodes[n] {
			// The closest encloser exists without a matching wildcard:
			// stop, the answer is NXDOMAIN.
			return 0, false
		}
		if n == z.origin || n == "." {
			break
		}
	}
	return 0, false
}

func (z *Zone) soaLocked() dnswire.RR {
	if set := z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]; len(set) > 0 {
		return set[0]
	}
	return dnswire.RR{}
}

func copyRRs(rrs []dnswire.RR) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	return append([]dnswire.RR(nil), rrs...)
}
