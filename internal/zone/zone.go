// Package zone stores authoritative DNS zone data and implements the
// RFC 1034 §4.3.2 lookup algorithm: authoritative answers, referrals with
// glue, CNAME indirection, wildcard synthesis, and negative answers
// (NXDOMAIN / NODATA) carrying the SOA for RFC 2308 negative caching.
package zone

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dnswire"
)

// Key identifies an RRset within a zone.
type Key struct {
	Name string
	Type dnswire.Type
}

// ResultKind classifies the outcome of a zone lookup.
type ResultKind int

// Lookup outcomes.
const (
	// Success: Records holds the answer RRset.
	Success ResultKind = iota
	// Delegation: the name is at or below a zone cut; Records holds the NS
	// set of the cut, Glue the in-zone addresses of those servers.
	Delegation
	// NXDomain: the name does not exist; SOA is populated.
	NXDomain
	// NoData: the name exists but has no RRset of the queried type; SOA is
	// populated.
	NoData
	// CName: the name owns a CNAME and the query was for another type;
	// Records holds the CNAME RRset.
	CName
	// NotInZone: the name is not within this zone's origin.
	NotInZone
)

func (k ResultKind) String() string {
	switch k {
	case Success:
		return "Success"
	case Delegation:
		return "Delegation"
	case NXDomain:
		return "NXDomain"
	case NoData:
		return "NoData"
	case CName:
		return "CName"
	case NotInZone:
		return "NotInZone"
	}
	return fmt.Sprintf("ResultKind(%d)", int(k))
}

// Result is the outcome of Zone.Lookup.
type Result struct {
	Kind    ResultKind
	Records []dnswire.RR
	Glue    []dnswire.RR
	SOA     dnswire.RR // valid for NXDomain and NoData
}

// Zone is a set of RRsets under a common origin. It is safe for concurrent
// use.
type Zone struct {
	origin string

	mu      sync.RWMutex
	rrsets  map[Key][]dnswire.RR
	nodes   map[string]bool // names that exist (own data or have descendants)
	withers map[string]int  // descendant counts for node bookkeeping
}

// New creates an empty zone rooted at origin.
func New(origin string) *Zone {
	return &Zone{
		origin:  dnswire.CanonicalName(origin),
		rrsets:  make(map[Key][]dnswire.RR),
		nodes:   make(map[string]bool),
		withers: make(map[string]int),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() string { return z.origin }

// Add inserts rr into the zone. All records of one RRset must share a TTL;
// Add normalizes later records to the first one's TTL. Duplicate data is
// ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	rr.Name = dnswire.CanonicalName(rr.Name)
	if rr.Data == nil {
		return fmt.Errorf("zone %s: record %q has no data", z.origin, rr.Name)
	}
	if !dnswire.IsSubdomain(rr.Name, z.origin) {
		return fmt.Errorf("zone %s: record %q out of zone", z.origin, rr.Name)
	}
	if err := dnswire.ValidName(rr.Name); err != nil {
		return fmt.Errorf("zone %s: record %q: %w", z.origin, rr.Name, err)
	}
	if rr.Class == 0 {
		rr.Class = dnswire.ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: rr.Name, Type: rr.Type()}
	set := z.rrsets[k]
	for _, have := range set {
		if have.Data.Equal(rr.Data) {
			return nil
		}
	}
	if len(set) > 0 {
		rr.TTL = set[0].TTL
	}
	z.rrsets[k] = append(set, rr)
	z.addNodeLocked(rr.Name)
	return nil
}

// addNodeLocked marks name and every ancestor up to the origin as existing.
func (z *Zone) addNodeLocked(name string) {
	for n := name; ; n = dnswire.Parent(n) {
		z.nodes[n] = true
		z.withers[n]++
		if n == z.origin || n == "." {
			break
		}
	}
}

func (z *Zone) removeNodeLocked(name string) {
	for n := name; ; n = dnswire.Parent(n) {
		z.withers[n]--
		if z.withers[n] <= 0 {
			delete(z.withers, n)
			delete(z.nodes, n)
		}
		if n == z.origin || n == "." {
			break
		}
	}
}

// MustAdd is Add, panicking on error. For fixture construction.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes the RRset (name, t). Removing a non-existent set is a
// no-op.
func (z *Zone) Remove(name string, t dnswire.Type) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: name, Type: t}
	set, ok := z.rrsets[k]
	if !ok {
		return
	}
	delete(z.rrsets, k)
	for range set {
		z.removeNodeLocked(name)
	}
}

// Replace atomically swaps the RRset (name, t) for the given records, all
// owned by name with TTL ttl. Used by the experiment harness to rotate the
// serial-encoded AAAA answers every zone-file round (§3.2).
func (z *Zone) Replace(name string, t dnswire.Type, ttl uint32, data ...dnswire.RData) error {
	z.Remove(name, t)
	for _, d := range data {
		if d.RType() != t {
			return fmt.Errorf("zone %s: replace %s with %s data", z.origin, t, d.RType())
		}
		if err := z.Add(dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl, Data: d}); err != nil {
			return err
		}
	}
	return nil
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() (dnswire.RR, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]
	if len(set) == 0 {
		return dnswire.RR{}, false
	}
	return set[0], true
}

// Serial returns the zone serial from the SOA, or 0 if there is none.
func (z *Zone) Serial() uint32 {
	rr, ok := z.SOA()
	if !ok {
		return 0
	}
	return rr.Data.(dnswire.SOA).Serial
}

// BumpSerial increments the SOA serial, returning the new value.
func (z *Zone) BumpSerial() uint32 {
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: z.origin, Type: dnswire.TypeSOA}
	set := z.rrsets[k]
	if len(set) == 0 {
		return 0
	}
	soa := set[0].Data.(dnswire.SOA)
	soa.Serial++
	set[0].Data = soa
	return soa.Serial
}

// RRSet returns a copy of the RRset (name, t).
func (z *Zone) RRSet(name string, t dnswire.Type) []dnswire.RR {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]dnswire.RR(nil), z.rrsets[Key{Name: name, Type: t}]...)
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range z.rrsets {
		seen[k.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, set := range z.rrsets {
		n += len(set)
	}
	return n
}

// Lookup resolves (name, qtype) within the zone per RFC 1034 §4.3.2.
func (z *Zone) Lookup(name string, qtype dnswire.Type) Result {
	name = dnswire.CanonicalName(name)
	if !dnswire.IsSubdomain(name, z.origin) {
		return Result{Kind: NotInZone}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Zone cut? Walk from just below the apex toward the name. A NS set at
	// an intermediate (or the queried) name that is not the apex marks a
	// delegation. DS queries are answered by the parent side of the cut.
	if cut := z.cutLocked(name, qtype); cut != "" {
		ns := z.rrsets[Key{Name: cut, Type: dnswire.TypeNS}]
		return Result{Kind: Delegation, Records: copyRRs(ns), Glue: z.glueLocked(ns)}
	}

	if set := z.rrsets[Key{Name: name, Type: qtype}]; len(set) > 0 {
		return Result{Kind: Success, Records: copyRRs(set)}
	}
	if qtype != dnswire.TypeCNAME {
		if set := z.rrsets[Key{Name: name, Type: dnswire.TypeCNAME}]; len(set) > 0 {
			return Result{Kind: CName, Records: copyRRs(set)}
		}
	}
	if z.nodes[name] {
		return z.negativeLocked(NoData)
	}
	// Wildcard synthesis: find the closest encloser and test *.<encloser>.
	if res, ok := z.wildcardLocked(name, qtype); ok {
		return res
	}
	return z.negativeLocked(NXDomain)
}

// cutLocked returns the name of the zone cut covering name, or "".
func (z *Zone) cutLocked(name string, qtype dnswire.Type) string {
	labels := dnswire.SplitLabels(name)
	originCount := dnswire.CountLabels(z.origin)
	// Candidate cut names from shallowest (just below apex) to the name.
	for i := len(labels) - originCount - 1; i >= 0; i-- {
		candidate := strings.Join(labels[i:], ".") + "."
		if candidate == z.origin {
			continue
		}
		if len(z.rrsets[Key{Name: candidate, Type: dnswire.TypeNS}]) == 0 {
			continue
		}
		// The parent is authoritative for DS at the cut itself.
		if candidate == name && qtype == dnswire.TypeDS {
			continue
		}
		return candidate
	}
	return ""
}

func (z *Zone) glueLocked(ns []dnswire.RR) []dnswire.RR {
	var glue []dnswire.RR
	for _, rr := range ns {
		host := dnswire.CanonicalName(rr.Data.(dnswire.NS).Host)
		if !dnswire.IsSubdomain(host, z.origin) {
			continue
		}
		glue = append(glue, z.rrsets[Key{Name: host, Type: dnswire.TypeA}]...)
		glue = append(glue, z.rrsets[Key{Name: host, Type: dnswire.TypeAAAA}]...)
	}
	return copyRRs(glue)
}

func (z *Zone) wildcardLocked(name string, qtype dnswire.Type) (Result, bool) {
	for n := dnswire.Parent(name); dnswire.IsSubdomain(n, z.origin); n = dnswire.Parent(n) {
		wc := dnswire.Join("*", n)
		if set := z.rrsets[Key{Name: wc, Type: qtype}]; len(set) > 0 {
			out := copyRRs(set)
			for i := range out {
				out[i].Name = name
			}
			return Result{Kind: Success, Records: out}, true
		}
		if z.nodes[wc] {
			// A wildcard exists but not for this type: NODATA.
			return z.negativeLocked(NoData), true
		}
		if z.nodes[n] {
			// The closest encloser exists without a matching wildcard:
			// stop, the answer is NXDOMAIN.
			return Result{}, false
		}
		if n == z.origin || n == "." {
			break
		}
	}
	return Result{}, false
}

func (z *Zone) negativeLocked(kind ResultKind) Result {
	res := Result{Kind: kind}
	if set := z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]; len(set) > 0 {
		res.SOA = set[0]
	}
	return res
}

func copyRRs(rrs []dnswire.RR) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	return append([]dnswire.RR(nil), rrs...)
}
