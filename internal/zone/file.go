package zone

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/dnswire"
)

// Parse reads a zone in RFC 1035 master-file format. It supports $ORIGIN
// and $TTL directives, "@" for the origin, relative names, omitted
// TTL/class fields (inherited from the previous record or $TTL), comments,
// and parenthesized record continuation (as used for SOA records).
//
// The defaultOrigin is used until a $ORIGIN directive appears; pass "" to
// require an explicit $ORIGIN (or only absolute names).
func Parse(r io.Reader, defaultOrigin string) (*Zone, error) {
	p := &fileParser{
		origin:  dnswire.CanonicalName(defaultOrigin),
		class:   dnswire.ClassIN,
		scanner: bufio.NewScanner(r),
	}
	return p.run()
}

// ParseString is Parse on a string.
func ParseString(text, defaultOrigin string) (*Zone, error) {
	return Parse(strings.NewReader(text), defaultOrigin)
}

type fileParser struct {
	scanner *bufio.Scanner
	lineno  int

	origin    string
	class     dnswire.Class
	ttl       uint32
	haveTTL   bool
	lastOwner string

	zone *Zone
}

func (p *fileParser) errf(format string, args ...any) error {
	return fmt.Errorf("zone file line %d: %s", p.lineno, fmt.Sprintf(format, args...))
}

// logicalLine returns the next line with comments stripped and parentheses
// folded (continuation lines merged), or io.EOF.
func (p *fileParser) logicalLine() (string, error) {
	var sb strings.Builder
	depth := 0
	for {
		if !p.scanner.Scan() {
			if err := p.scanner.Err(); err != nil {
				return "", err
			}
			if sb.Len() > 0 {
				return "", p.errf("unterminated parentheses at EOF")
			}
			return "", io.EOF
		}
		p.lineno++
		line := p.scanner.Text()
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case ';':
				line = line[:i]
				i = len(line)
			case '(':
				depth++
				line = line[:i] + " " + line[i+1:]
			case ')':
				depth--
				if depth < 0 {
					return "", p.errf("unbalanced ')'")
				}
				line = line[:i] + " " + line[i+1:]
			}
		}
		sb.WriteString(line)
		sb.WriteByte(' ')
		if depth == 0 {
			text := sb.String()
			if strings.TrimSpace(text) == "" {
				sb.Reset()
				continue
			}
			return text, nil
		}
	}
}

func (p *fileParser) run() (*Zone, error) {
	for {
		line, err := p.logicalLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		startsBlank := line[0] == ' ' || line[0] == '\t'
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], "$") {
			if err := p.directive(fields); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.record(fields, startsBlank); err != nil {
			return nil, err
		}
	}
	if p.zone == nil {
		p.zone = New(p.origin)
	}
	return p.zone, nil
}

func (p *fileParser) directive(fields []string) error {
	switch strings.ToUpper(fields[0]) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return p.errf("$ORIGIN wants one argument")
		}
		if !strings.HasSuffix(fields[1], ".") {
			return p.errf("$ORIGIN must be absolute")
		}
		p.origin = dnswire.CanonicalName(fields[1])
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return p.errf("$TTL wants one argument")
		}
		ttl, err := parseTTL(fields[1])
		if err != nil {
			return p.errf("$TTL: %v", err)
		}
		p.ttl = ttl
		p.haveTTL = true
		return nil
	default:
		return p.errf("unsupported directive %s", fields[0])
	}
}

func (p *fileParser) ensureZone() error {
	if p.zone != nil {
		return nil
	}
	p.zone = New(p.origin)
	return nil
}

func (p *fileParser) record(fields []string, startsBlank bool) error {
	if err := p.ensureZone(); err != nil {
		return err
	}
	owner := p.lastOwner
	if !startsBlank {
		owner = p.absName(fields[0])
		fields = fields[1:]
	}
	if owner == "" {
		return p.errf("record with no owner name")
	}
	p.lastOwner = owner

	ttl := p.ttl
	haveTTL := p.haveTTL
	// TTL and class may appear in either order before the type.
	for len(fields) > 0 {
		f := strings.ToUpper(fields[0])
		if v, err := parseTTL(fields[0]); err == nil {
			ttl = v
			haveTTL = true
			fields = fields[1:]
			continue
		}
		if f == "IN" {
			p.class = dnswire.ClassIN
			fields = fields[1:]
			continue
		}
		break
	}
	if len(fields) == 0 {
		return p.errf("record for %s has no type", owner)
	}
	t := dnswire.ParseType(strings.ToUpper(fields[0]))
	if t == dnswire.TypeNone {
		return p.errf("unsupported record type %q", fields[0])
	}
	if !haveTTL {
		return p.errf("record for %s has no TTL and none inherited", owner)
	}
	data, err := p.rdata(t, fields[1:])
	if err != nil {
		return err
	}
	rr := dnswire.RR{Name: owner, Class: p.class, TTL: ttl, Data: data}
	if err := p.zone.Add(rr); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

// absName resolves a possibly-relative master-file name against the origin.
func (p *fileParser) absName(s string) string {
	if s == "@" {
		return p.origin
	}
	if strings.HasSuffix(s, ".") {
		return dnswire.CanonicalName(s)
	}
	if p.origin == "." {
		return dnswire.CanonicalName(s + ".")
	}
	return dnswire.CanonicalName(s + "." + p.origin)
}

func (p *fileParser) rdata(t dnswire.Type, fields []string) (dnswire.RData, error) {
	wantN := func(n int) error {
		if len(fields) != n {
			return p.errf("%s record wants %d fields, got %d", t, n, len(fields))
		}
		return nil
	}
	switch t {
	case dnswire.TypeA:
		if err := wantN(1); err != nil {
			return nil, err
		}
		addr, err := parseAddr(fields[0], false)
		if err != nil {
			return nil, p.errf("A: %v", err)
		}
		return dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := wantN(1); err != nil {
			return nil, err
		}
		addr, err := parseAddr(fields[0], true)
		if err != nil {
			return nil, p.errf("AAAA: %v", err)
		}
		return dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := wantN(1); err != nil {
			return nil, err
		}
		return dnswire.NS{Host: p.absName(fields[0])}, nil
	case dnswire.TypeCNAME:
		if err := wantN(1); err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: p.absName(fields[0])}, nil
	case dnswire.TypePTR:
		if err := wantN(1); err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: p.absName(fields[0])}, nil
	case dnswire.TypeMX:
		if err := wantN(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, p.errf("MX preference: %v", err)
		}
		return dnswire.MX{Pref: uint16(pref), Host: p.absName(fields[1])}, nil
	case dnswire.TypeTXT:
		if len(fields) == 0 {
			return nil, p.errf("TXT record wants at least one string")
		}
		strs, err := joinQuoted(fields)
		if err != nil {
			return nil, p.errf("TXT: %v", err)
		}
		return dnswire.TXT{Strings: strs}, nil
	case dnswire.TypeSOA:
		if err := wantN(7); err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := parseTTL(fields[2+i])
			if err != nil {
				return nil, p.errf("SOA field %d: %v", 2+i, err)
			}
			nums[i] = v
		}
		return dnswire.SOA{
			MName: p.absName(fields[0]), RName: p.absName(fields[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	case dnswire.TypeDS:
		if err := wantN(4); err != nil {
			return nil, err
		}
		keyTag, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, p.errf("DS key tag: %v", err)
		}
		alg, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return nil, p.errf("DS algorithm: %v", err)
		}
		dt, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return nil, p.errf("DS digest type: %v", err)
		}
		digest, err := parseHex(fields[3])
		if err != nil {
			return nil, p.errf("DS digest: %v", err)
		}
		return dnswire.DS{
			KeyTag: uint16(keyTag), Algorithm: uint8(alg),
			DigestType: uint8(dt), Digest: digest,
		}, nil
	default:
		return nil, p.errf("no master-file syntax for type %s", t)
	}
}

// parseTTL parses a TTL that is either a plain number of seconds or a
// BIND-style duration like 1h30m, 2d, 1w.
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty TTL")
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	var total uint64
	num := uint64(0)
	haveNum := false
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= '0' && c <= '9':
			num = num*10 + uint64(c-'0')
			haveNum = true
		case c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w':
			if !haveNum {
				return 0, fmt.Errorf("bad TTL %q", s)
			}
			mult := map[rune]uint64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'w': 604800}[c]
			total += num * mult
			num, haveNum = 0, false
		default:
			return 0, fmt.Errorf("bad TTL %q", s)
		}
	}
	if haveNum {
		return 0, fmt.Errorf("bad TTL %q", s)
	}
	if total > 1<<31 {
		return 0, fmt.Errorf("TTL %q too large", s)
	}
	return uint32(total), nil
}

func parseAddr(s string, want6 bool) (netip.Addr, error) {
	addr, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Addr{}, err
	}
	if want6 != addr.Is6() {
		return netip.Addr{}, fmt.Errorf("address %s has wrong family", s)
	}
	return addr, nil
}

func parseHex(s string) ([]byte, error) {
	return hex.DecodeString(strings.ToLower(s))
}

// joinQuoted reassembles whitespace-split master-file fields into TXT
// character strings: quoted spans (possibly containing spaces) become one
// string each, bare tokens one string each.
func joinQuoted(fields []string) ([]string, error) {
	var out []string
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if !strings.HasPrefix(f, `"`) {
			out = append(out, f)
			continue
		}
		// Accumulate fields until the closing quote.
		parts := []string{strings.TrimPrefix(f, `"`)}
		closed := strings.HasSuffix(f, `"`) && len(f) > 1
		for !closed {
			i++
			if i >= len(fields) {
				return nil, fmt.Errorf("unterminated quoted string")
			}
			parts = append(parts, fields[i])
			closed = strings.HasSuffix(fields[i], `"`)
		}
		joined := strings.Join(parts, " ")
		out = append(out, strings.TrimSuffix(joined, `"`))
	}
	return out, nil
}
