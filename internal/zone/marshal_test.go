package zone

import (
	"strings"
	"testing"

	"repro/internal/dnswire"
)

func TestMarshalRoundTrip(t *testing.T) {
	z := testZone(t)
	z.MustAdd(dnswire.RR{Name: "note.cachetest.nl.", TTL: 30,
		Data: dnswire.TXT{Strings: []string{"when the dike breaks", "v=1"}}})
	z.MustAdd(dnswire.RR{Name: "mail.cachetest.nl.", TTL: 300,
		Data: dnswire.MX{Pref: 10, Host: "mx.cachetest.nl."}})

	text := z.MarshalString()
	if !strings.HasPrefix(text, "$ORIGIN cachetest.nl.\n") {
		t.Fatalf("missing $ORIGIN:\n%s", text)
	}
	// SOA is the first record line.
	lines := strings.Split(text, "\n")
	if !strings.Contains(lines[1], "SOA") {
		t.Errorf("SOA not first: %q", lines[1])
	}

	z2, err := ParseString(text, "")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if z2.Origin() != z.Origin() {
		t.Errorf("origin = %q", z2.Origin())
	}
	if z2.Len() != z.Len() {
		t.Fatalf("record count %d != %d\n%s", z2.Len(), z.Len(), text)
	}
	// Spot-check semantic equality across types.
	for _, k := range []struct {
		name string
		t    dnswire.Type
	}{
		{"cachetest.nl.", dnswire.TypeSOA},
		{"cachetest.nl.", dnswire.TypeNS},
		{"1414.cachetest.nl.", dnswire.TypeAAAA},
		{"www.cachetest.nl.", dnswire.TypeCNAME},
		{"note.cachetest.nl.", dnswire.TypeTXT},
		{"mail.cachetest.nl.", dnswire.TypeMX},
		{"sub.cachetest.nl.", dnswire.TypeDS},
		{"*.wild.cachetest.nl.", dnswire.TypeTXT},
	} {
		a, b := z.RRSet(k.name, k.t), z2.RRSet(k.name, k.t)
		if len(a) != len(b) {
			t.Fatalf("%s %s: %d vs %d records", k.name, k.t, len(a), len(b))
		}
		for i := range a {
			if !a[i].Data.Equal(b[i].Data) {
				t.Errorf("%s %s: %v != %v", k.name, k.t, a[i].Data, b[i].Data)
			}
			if a[i].TTL != b[i].TTL {
				t.Errorf("%s %s TTL: %d != %d", k.name, k.t, a[i].TTL, b[i].TTL)
			}
		}
	}
	// The multi-word TXT string survived.
	txt := z2.RRSet("note.cachetest.nl.", dnswire.TypeTXT)
	found := false
	for _, rr := range txt {
		for _, s := range rr.Data.(dnswire.TXT).Strings {
			if s == "when the dike breaks" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("quoted TXT string lost: %v", txt)
	}
}

func TestJoinQuoted(t *testing.T) {
	cases := []struct {
		in   []string
		want []string
		err  bool
	}{
		{[]string{`"hello"`}, []string{"hello"}, false},
		{[]string{`"hello`, `world"`}, []string{"hello world"}, false},
		{[]string{`bare`, `"two words"`}, []string{"bare", "two words"}, false},
		{[]string{`"unterminated`}, nil, true},
		{[]string{`"a"`, `"b c"`, `d`}, []string{"a", "b c", "d"}, false},
	}
	for _, c := range cases {
		got, err := joinQuoted(c.in)
		if (err != nil) != c.err {
			t.Errorf("joinQuoted(%v) err = %v", c.in, err)
			continue
		}
		if c.err {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("joinQuoted(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("joinQuoted(%v)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
