package zone

import (
	"sort"
	"strings"
	"testing"
)

// FuzzMasterFile asserts that the master-file parser never panics and that
// Marshal's claim holds on everything the parser accepts: the output
// re-parses into a zone with the same origin, the same owner names, and
// the same number of records. (Record contents are not compared byte for
// byte — TXT strings are re-escaped on output — but names and shape must
// survive.)
func FuzzMasterFile(f *testing.F) {
	f.Add(`$ORIGIN example.nl.
$TTL 3600
@ IN SOA ns1.example.nl. host.example.nl. 1 7200 3600 864000 60
@ IN NS ns1
ns1 IN A 192.0.2.1
www 300 IN AAAA 2001:db8::1
alias IN CNAME www
@ IN MX 10 mail.example.nl.
@ IN TXT "v=spf1 -all" "second string"
sub 3600 IN NS ns1.sub
ns1.sub IN A 192.0.2.53
`)
	f.Add("$ORIGIN test.\n@ 60 IN SOA ns. h. 1 2 3 4 5\n@ IN NS ns.\n")
	f.Add("www IN A 192.0.2.1\n")
	f.Add("$TTL abc\n")
	f.Add("@ IN TXT \"unterminated\n")
	f.Add("a ( b\n c ) IN A 192.0.2.1\n")
	f.Fuzz(func(t *testing.T, text string) {
		z, err := ParseString(text, "example.nl.")
		if err != nil {
			return
		}
		out := z.MarshalString()
		z2, err := ParseString(out, "")
		if err != nil {
			t.Fatalf("marshaled zone does not re-parse: %v\n%s", err, out)
		}
		if z2.Origin() != z.Origin() {
			t.Fatalf("origin changed: %q -> %q", z.Origin(), z2.Origin())
		}
		if z2.Len() != z.Len() {
			t.Fatalf("record count changed: %d -> %d\n%s", z.Len(), z2.Len(), out)
		}
		n1, n2 := z.Names(), z2.Names()
		sort.Strings(n1)
		sort.Strings(n2)
		if strings.Join(n1, "\n") != strings.Join(n2, "\n") {
			t.Fatalf("owner names changed:\nbefore: %v\nafter:  %v\n%s", n1, n2, out)
		}
	})
}
