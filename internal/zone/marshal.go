package zone

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dnswire"
)

// Marshal writes the zone in RFC 1035 master-file format: the $ORIGIN
// directive, the SOA first, then all other records sorted by owner name
// and type. The output round-trips through Parse.
func (z *Zone) Marshal(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "$ORIGIN %s\n", z.origin); err != nil {
		return err
	}

	z.mu.RLock()
	keys := make([]Key, 0, len(z.rrsets))
	for k := range z.rrsets {
		keys = append(keys, k)
	}
	sets := make(map[Key][]dnswire.RR, len(z.rrsets))
	for k, set := range z.rrsets {
		sets[k] = append([]dnswire.RR(nil), set...)
	}
	z.mu.RUnlock()

	sort.Slice(keys, func(i, j int) bool {
		// SOA first, then apex, then by name/type.
		si := keys[i].Type == dnswire.TypeSOA
		sj := keys[j].Type == dnswire.TypeSOA
		if si != sj {
			return si
		}
		if keys[i].Name != keys[j].Name {
			if keys[i].Name == z.origin {
				return true
			}
			if keys[j].Name == z.origin {
				return false
			}
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Type < keys[j].Type
	})

	for _, k := range keys {
		for _, rr := range sets[k] {
			// The apex prints as "@": an owner column equal to a "$"-prefixed
			// origin would otherwise re-parse as a directive.
			owner := rr.Name
			if owner == z.origin {
				owner = "@"
			}
			line := fmt.Sprintf("%s %d %s %s %s\n",
				owner, rr.TTL, rr.Class, rr.Type(), rr.Data)
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// MarshalString renders the zone as a master-file string.
func (z *Zone) MarshalString() string {
	var sb strings.Builder
	_ = z.Marshal(&sb)
	return sb.String()
}
