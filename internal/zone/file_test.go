package zone

import (
	"strings"
	"testing"

	"repro/internal/dnswire"
)

const sampleZone = `
$ORIGIN cachetest.nl.
$TTL 3600
@   IN SOA ns1 hostmaster (
        2018052201 ; serial
        7200       ; refresh
        3600       ; retry
        864000     ; expire
        60 )       ; negative TTL
@       IN NS  ns1
@       IN NS  ns2.cachetest.nl.
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
1414 60 IN AAAA fd0f:3897:faf7:a375:1:586::3c
www     IN CNAME 1414
mail    IN MX 10 mx.cachetest.nl.
mx      IN A   192.0.2.9
txt     IN TXT "hello world"
sub     IN NS  ns.sub
sub     IN DS  12345 8 2 deadbeef
ns.sub  IN A   192.0.2.53
`

func TestParseSampleZone(t *testing.T) {
	z, err := ParseString(sampleZone, "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin() != "cachetest.nl." {
		t.Errorf("origin = %q", z.Origin())
	}
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA parsed")
	}
	s := soa.Data.(dnswire.SOA)
	if s.Serial != 2018052201 || s.Minimum != 60 || s.MName != "ns1.cachetest.nl." {
		t.Errorf("SOA = %+v", s)
	}
	if got := len(z.RRSet("cachetest.nl.", dnswire.TypeNS)); got != 2 {
		t.Errorf("NS count = %d", got)
	}
	aaaa := z.RRSet("1414.cachetest.nl.", dnswire.TypeAAAA)
	if len(aaaa) != 1 || aaaa[0].TTL != 60 {
		t.Fatalf("AAAA = %v", aaaa)
	}
	cname := z.RRSet("www.cachetest.nl.", dnswire.TypeCNAME)
	if len(cname) != 1 || cname[0].Data.(dnswire.CNAME).Target != "1414.cachetest.nl." {
		t.Errorf("CNAME = %v", cname)
	}
	mx := z.RRSet("mail.cachetest.nl.", dnswire.TypeMX)
	if len(mx) != 1 || mx[0].Data.(dnswire.MX).Pref != 10 {
		t.Errorf("MX = %v", mx)
	}
	ds := z.RRSet("sub.cachetest.nl.", dnswire.TypeDS)
	if len(ds) != 1 || ds[0].Data.(dnswire.DS).KeyTag != 12345 {
		t.Errorf("DS = %v", ds)
	}
	txt := z.RRSet("txt.cachetest.nl.", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Errorf("TXT = %v", txt)
	}
}

func TestParseRootishZone(t *testing.T) {
	text := `
$ORIGIN .
$TTL 518400
.    IN SOA a.root-servers.net. nstld.verisign-grs.com. 2018052200 1800 900 604800 86400
.    IN NS a.root-servers.net.
nl.  172800 IN NS ns1.dns.nl.
nl.  86400  IN DS 34112 8 2 aabbcc
a.root-servers.net. 518400 IN A 198.41.0.4
ns1.dns.nl. 172800 IN A 194.0.28.53
`
	z, err := ParseString(text, "")
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("www.example.nl.", dnswire.TypeA)
	if res.Kind != Delegation {
		t.Fatalf("root lookup under nl: %s", res.Kind)
	}
	if len(res.Glue) != 1 {
		t.Errorf("glue = %v", res.Glue)
	}
	// DS at the nl cut comes from the parent.
	res = z.Lookup("nl.", dnswire.TypeDS)
	if res.Kind != Success {
		t.Errorf("nl DS: %s", res.Kind)
	}
}

func TestParseTTLForms(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		err  bool
	}{
		{"3600", 3600, false},
		{"1h", 3600, false},
		{"1h30m", 5400, false},
		{"2d", 172800, false},
		{"1w", 604800, false},
		{"90s", 90, false},
		{"", 0, true},
		{"abc", 0, true},
		{"1x", 0, true},
		{"h1", 0, true},
	}
	for _, c := range cases {
		got, err := parseTTL(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseTTL(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseTTL(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unterminated parens", "$ORIGIN x.\n@ 60 IN SOA a. b. (1 2 3 4 5\n"},
		{"unknown directive", "$BOGUS foo\n"},
		{"unknown type", "$ORIGIN x.\n@ 60 IN WKS data\n"},
		{"no TTL", "$ORIGIN x.\n@ IN A 10.0.0.1\n"},
		{"bad A", "$ORIGIN x.\n@ 60 IN A nonsense\n"},
		{"A with v6", "$ORIGIN x.\n@ 60 IN A ::1\n"},
		{"AAAA with v4", "$ORIGIN x.\n@ 60 IN AAAA 10.0.0.1\n"},
		{"relative origin", "$ORIGIN x\n"},
		{"bad DS digest", "$ORIGIN x.\n@ 60 IN DS 1 8 2 zz\n"},
		{"blank first record", "$ORIGIN x.\n  60 IN A 10.0.0.1\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.text, ""); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestParseInheritsOwnerAndTTL(t *testing.T) {
	text := `$ORIGIN example.nl.
$TTL 300
host IN A 10.0.0.1
     IN A 10.0.0.2
     IN AAAA ::1
`
	z, err := ParseString(text, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(z.RRSet("host.example.nl.", dnswire.TypeA)); got != 2 {
		t.Errorf("A count = %d, want 2", got)
	}
	if got := len(z.RRSet("host.example.nl.", dnswire.TypeAAAA)); got != 1 {
		t.Errorf("AAAA count = %d, want 1", got)
	}
}

func TestParseDefaultOrigin(t *testing.T) {
	z, err := Parse(strings.NewReader("@ 60 IN A 10.0.0.1\n"), "example.nl.")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(z.RRSet("example.nl.", dnswire.TypeA)); got != 1 {
		t.Errorf("A count = %d", got)
	}
}
