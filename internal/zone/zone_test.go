package zone

import (
	"testing"

	"repro/internal/dnswire"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := New("cachetest.nl.")
	z.MustAdd(dnswire.RR{Name: "cachetest.nl.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.cachetest.nl.", RName: "hostmaster.cachetest.nl.",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 864000, Minimum: 60,
	}})
	z.MustAdd(dnswire.RR{Name: "cachetest.nl.", TTL: 3600, Data: dnswire.NS{Host: "ns1.cachetest.nl."}})
	z.MustAdd(dnswire.RR{Name: "cachetest.nl.", TTL: 3600, Data: dnswire.NS{Host: "ns2.cachetest.nl."}})
	z.MustAdd(dnswire.RR{Name: "ns1.cachetest.nl.", TTL: 3600, Data: dnswire.A{Addr: dnswire.MustAddr("192.0.2.1")}})
	z.MustAdd(dnswire.RR{Name: "ns2.cachetest.nl.", TTL: 3600, Data: dnswire.A{Addr: dnswire.MustAddr("192.0.2.2")}})
	z.MustAdd(dnswire.RR{Name: "1414.cachetest.nl.", TTL: 60, Data: dnswire.AAAA{
		Addr: dnswire.MustAddr("fd0f:3897:faf7:a375:1:586::3c"),
	}})
	z.MustAdd(dnswire.RR{Name: "www.cachetest.nl.", TTL: 300, Data: dnswire.CNAME{Target: "1414.cachetest.nl."}})
	// Delegation with in-zone glue.
	z.MustAdd(dnswire.RR{Name: "sub.cachetest.nl.", TTL: 3600, Data: dnswire.NS{Host: "ns.sub.cachetest.nl."}})
	z.MustAdd(dnswire.RR{Name: "ns.sub.cachetest.nl.", TTL: 3600, Data: dnswire.A{Addr: dnswire.MustAddr("192.0.2.53")}})
	z.MustAdd(dnswire.RR{Name: "sub.cachetest.nl.", TTL: 3600, Data: dnswire.DS{
		KeyTag: 1, Algorithm: 8, DigestType: 2, Digest: []byte{1, 2},
	}})
	// Wildcard.
	z.MustAdd(dnswire.RR{Name: "*.wild.cachetest.nl.", TTL: 30, Data: dnswire.TXT{Strings: []string{"wild"}}})
	return z
}

func TestLookupSuccess(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.Kind != Success || len(res.Records) != 1 {
		t.Fatalf("got %s with %d records", res.Kind, len(res.Records))
	}
	if res.Records[0].TTL != 60 {
		t.Errorf("TTL = %d, want 60", res.Records[0].TTL)
	}
}

func TestLookupApexNS(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("cachetest.nl.", dnswire.TypeNS)
	if res.Kind != Success || len(res.Records) != 2 {
		t.Fatalf("apex NS: got %s with %d records", res.Kind, len(res.Records))
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("missing.cachetest.nl.", dnswire.TypeA)
	if res.Kind != NXDomain {
		t.Fatalf("got %s, want NXDomain", res.Kind)
	}
	if res.SOA.Data == nil {
		t.Error("NXDomain without SOA")
	}
}

func TestLookupNoData(t *testing.T) {
	z := testZone(t)
	// Name exists (has AAAA) but no A record.
	res := z.Lookup("1414.cachetest.nl.", dnswire.TypeA)
	if res.Kind != NoData {
		t.Fatalf("got %s, want NoData", res.Kind)
	}
	// Empty non-terminal: ns1 exists below it, so "cachetest.nl" subtree
	// node "sub" has NS. Use a pure ENT: x.y where only x.y.z exists.
	z.MustAdd(dnswire.RR{Name: "a.deep.cachetest.nl.", TTL: 5, Data: dnswire.TXT{Strings: []string{"x"}}})
	res = z.Lookup("deep.cachetest.nl.", dnswire.TypeA)
	if res.Kind != NoData {
		t.Errorf("empty non-terminal: got %s, want NoData", res.Kind)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.cachetest.nl.", dnswire.TypeAAAA)
	if res.Kind != CName {
		t.Fatalf("got %s, want CName", res.Kind)
	}
	if res.Records[0].Data.(dnswire.CNAME).Target != "1414.cachetest.nl." {
		t.Errorf("target = %v", res.Records[0].Data)
	}
	// Querying the CNAME type itself answers directly.
	res = z.Lookup("www.cachetest.nl.", dnswire.TypeCNAME)
	if res.Kind != Success {
		t.Errorf("CNAME qtype: got %s, want Success", res.Kind)
	}
}

func TestLookupDelegation(t *testing.T) {
	z := testZone(t)
	for _, name := range []string{"sub.cachetest.nl.", "host.sub.cachetest.nl.", "a.b.sub.cachetest.nl."} {
		res := z.Lookup(name, dnswire.TypeA)
		if res.Kind != Delegation {
			t.Fatalf("%s: got %s, want Delegation", name, res.Kind)
		}
		if len(res.Records) != 1 || res.Records[0].Type() != dnswire.TypeNS {
			t.Fatalf("%s: records %v", name, res.Records)
		}
		if len(res.Glue) != 1 || res.Glue[0].Name != "ns.sub.cachetest.nl." {
			t.Errorf("%s: glue %v", name, res.Glue)
		}
	}
}

func TestLookupDSAtCut(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("sub.cachetest.nl.", dnswire.TypeDS)
	if res.Kind != Success {
		t.Fatalf("DS at cut: got %s, want Success (parent-side answer)", res.Kind)
	}
	// But NS at the cut is a referral.
	res = z.Lookup("sub.cachetest.nl.", dnswire.TypeNS)
	if res.Kind != Delegation {
		t.Errorf("NS at cut: got %s, want Delegation", res.Kind)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("anything.wild.cachetest.nl.", dnswire.TypeTXT)
	if res.Kind != Success {
		t.Fatalf("wildcard: got %s", res.Kind)
	}
	if res.Records[0].Name != "anything.wild.cachetest.nl." {
		t.Errorf("wildcard owner = %s", res.Records[0].Name)
	}
	// Wrong type at wildcard is NODATA.
	res = z.Lookup("anything.wild.cachetest.nl.", dnswire.TypeA)
	if res.Kind != NoData {
		t.Errorf("wildcard NODATA: got %s", res.Kind)
	}
}

func TestLookupNotInZone(t *testing.T) {
	z := testZone(t)
	if res := z.Lookup("example.com.", dnswire.TypeA); res.Kind != NotInZone {
		t.Errorf("got %s, want NotInZone", res.Kind)
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := testZone(t)
	err := z.Add(dnswire.RR{Name: "example.com.", TTL: 1, Data: dnswire.A{Addr: dnswire.MustAddr("10.0.0.1")}})
	if err == nil {
		t.Error("Add accepted out-of-zone record")
	}
}

func TestAddDeduplicatesAndUnifiesTTL(t *testing.T) {
	z := New("example.nl.")
	a := dnswire.RR{Name: "example.nl.", TTL: 100, Data: dnswire.A{Addr: dnswire.MustAddr("10.0.0.1")}}
	z.MustAdd(a)
	z.MustAdd(a) // duplicate
	z.MustAdd(dnswire.RR{Name: "example.nl.", TTL: 999, Data: dnswire.A{Addr: dnswire.MustAddr("10.0.0.2")}})
	set := z.RRSet("example.nl.", dnswire.TypeA)
	if len(set) != 2 {
		t.Fatalf("set size = %d, want 2", len(set))
	}
	for _, rr := range set {
		if rr.TTL != 100 {
			t.Errorf("RRset TTL not unified: %d", rr.TTL)
		}
	}
}

func TestRemoveAndNodeCleanup(t *testing.T) {
	z := testZone(t)
	z.Remove("1414.cachetest.nl.", dnswire.TypeAAAA)
	res := z.Lookup("1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.Kind != NXDomain {
		t.Errorf("after Remove: got %s, want NXDomain", res.Kind)
	}
	// www's CNAME target removal must not break www itself.
	if res := z.Lookup("www.cachetest.nl.", dnswire.TypeAAAA); res.Kind != CName {
		t.Errorf("www after removal: %s", res.Kind)
	}
}

func TestReplaceRotatesData(t *testing.T) {
	z := testZone(t)
	err := z.Replace("1414.cachetest.nl.", dnswire.TypeAAAA, 60,
		dnswire.AAAA{Addr: dnswire.MustAddr("fd0f:3897:faf7:a375:2:586::3c")})
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("1414.cachetest.nl.", dnswire.TypeAAAA)
	if res.Kind != Success || len(res.Records) != 1 {
		t.Fatalf("after Replace: %s/%d", res.Kind, len(res.Records))
	}
	want := dnswire.MustAddr("fd0f:3897:faf7:a375:2:586::3c")
	if got := res.Records[0].Data.(dnswire.AAAA).Addr; got != want {
		t.Errorf("addr = %v, want %v", got, want)
	}
	// Type mismatch is rejected.
	if err := z.Replace("x.cachetest.nl.", dnswire.TypeAAAA, 60, dnswire.A{Addr: dnswire.MustAddr("10.0.0.1")}); err == nil {
		t.Error("Replace accepted mismatched data type")
	}
}

func TestSerialHelpers(t *testing.T) {
	z := testZone(t)
	if got := z.Serial(); got != 1 {
		t.Fatalf("Serial = %d", got)
	}
	if got := z.BumpSerial(); got != 2 {
		t.Fatalf("BumpSerial = %d", got)
	}
	if got := z.Serial(); got != 2 {
		t.Errorf("Serial after bump = %d", got)
	}
}

func TestNamesAndLen(t *testing.T) {
	z := testZone(t)
	names := z.Names()
	if len(names) == 0 || z.Len() == 0 {
		t.Fatal("empty Names/Len")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}
