package zone

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dnswire"
)

// randomZone builds a random zone under example.nl with nested names,
// delegations, and mixed record types.
func randomZone(r *rand.Rand) (*Zone, []string) {
	z := New("example.nl.")
	z.MustAdd(dnswire.RR{Name: "example.nl.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.example.nl.", RName: "h.example.nl.", Minimum: 60}})
	z.MustAdd(dnswire.RR{Name: "example.nl.", TTL: 3600, Data: dnswire.NS{Host: "ns1.example.nl."}})

	labels := []string{"a", "b", "c", "d"}
	var names []string
	for i := 0; i < 20; i++ {
		depth := 1 + r.Intn(3)
		name := ""
		for d := 0; d < depth; d++ {
			name += labels[r.Intn(len(labels))] + "."
		}
		name += "example.nl."
		names = append(names, name)
		switch r.Intn(4) {
		case 0:
			z.MustAdd(dnswire.RR{Name: name, TTL: 60, Data: dnswire.A{
				Addr: dnswire.MustAddr(fmt.Sprintf("10.0.%d.%d", r.Intn(256), r.Intn(256)))}})
		case 1:
			z.MustAdd(dnswire.RR{Name: name, TTL: 60, Data: dnswire.TXT{
				Strings: []string{fmt.Sprintf("t%d", i)}}})
		case 2:
			z.MustAdd(dnswire.RR{Name: name, TTL: 60, Data: dnswire.AAAA{
				Addr: dnswire.MustAddr("2001:db8::1")}})
		case 3:
			// A delegation (only if not the apex).
			z.MustAdd(dnswire.RR{Name: name, TTL: 60, Data: dnswire.NS{
				Host: "ns." + name}})
		}
	}
	return z, names
}

// TestQuickLookupInvariants: for random zones and random query names,
// Lookup never panics and its outcomes are internally consistent.
func TestQuickLookupInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z, names := randomZone(r)
		queries := append([]string{}, names...)
		// Plus names that likely do not exist, and out-of-zone ones.
		queries = append(queries, "zz.example.nl.", "a.zz.q.example.nl.", "example.com.", ".")
		for _, q := range queries {
			for _, qt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeTXT, dnswire.TypeNS} {
				res := z.Lookup(q, qt)
				switch res.Kind {
				case Success:
					if len(res.Records) == 0 {
						return false
					}
					for _, rr := range res.Records {
						if rr.Type() != qt {
							return false
						}
					}
				case Delegation:
					if len(res.Records) == 0 {
						return false
					}
					for _, rr := range res.Records {
						if rr.Type() != dnswire.TypeNS {
							return false
						}
					}
				case NXDomain, NoData:
					if res.SOA.Data == nil {
						return false
					}
				case NotInZone:
					if dnswire.IsSubdomain(q, "example.nl.") {
						return false
					}
				case CName:
					if len(res.Records) == 0 || res.Records[0].Type() != dnswire.TypeCNAME {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMarshalRoundTripRandomZones: random zones survive
// marshal-parse round trips with identical record counts.
func TestQuickMarshalRoundTripRandomZones(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z, _ := randomZone(r)
		z2, err := ParseString(z.MarshalString(), "")
		if err != nil {
			return false
		}
		return z2.Len() == z.Len() && z2.Origin() == z.Origin()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
