package proptest

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/authoritative"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/stub"
	"repro/internal/trace"
	"repro/internal/zone"
)

// Addresses of the generated hierarchy: a root, one TLD server for
// "test.", and two authoritatives for the leaf zone (the DDoS targets).
const (
	rootAddr  netsim.Addr = "198.41.0.4"
	tldAddr   netsim.Addr = "192.0.9.1"
	leaf1Addr netsim.Addr = "192.0.9.11"
	leaf2Addr netsim.Addr = "192.0.9.12"
)

var worldEpoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

// ResolverAddr returns the network address of the scenario's i-th
// resolver.
func ResolverAddr(i int) netsim.Addr {
	return netsim.Addr(fmt.Sprintf("10.0.0.%d", i+1))
}

func clientAddr(i int) netsim.Addr {
	return netsim.Addr(fmt.Sprintf("10.1.0.%d", i+1))
}

// Observation records one scheduled query's outcome.
type Observation struct {
	Query Query
	// Calls counts callback invocations; the exactly-once invariant
	// requires it to be 1 after the run drains.
	Calls   int
	Timeout bool
	RCode   dnswire.RCode
	// Stale and ServFail are visible on direct probes only (the wire
	// carries no staleness marker).
	Stale      bool
	ServFail   bool
	AnswerTTLs []uint32
}

// RunResult is everything the invariant checks need from one run.
type RunResult struct {
	Scenario Scenario
	Obs      []*Observation
	Stats    []recursive.Stats
	Net      netsim.Stats

	Scheduled, Fired, Stopped int64
	Pending                   int

	Report     *metrics.Report
	ReportJSON []byte
}

// SimClock is the clock driver a World needs: scheduling plus the run
// loop and its accounting. Both the timing-wheel clock (clock.Virtual)
// and the heap-backed reference (clock.Heap) satisfy it, which is what
// lets the differential property test run the same scenario on either
// engine and demand identical results.
type SimClock interface {
	clock.Clock
	Run()
	RunUntil(deadline time.Time)
	RunFor(d time.Duration)
	Pending() int
	Counters() (scheduled, fired, stopped int64)
}

var (
	_ SimClock = (*clock.Virtual)(nil)
	_ SimClock = (*clock.Heap)(nil)
)

// World is a materialized scenario: hierarchy, resolvers, and clients on
// one virtual clock. Tests that need finer control (pair delays, manual
// resolution phases) build a World and drive the pieces directly instead
// of calling Run.
type World struct {
	Clk       SimClock
	Net       *netsim.Network
	Auths     []*authoritative.Server // root, tld, leaf1, leaf2
	Resolvers []*recursive.Resolver
	Clients   []*stub.Client
	sc        Scenario
}

// NewWorld builds the scenario's ecosystem without scheduling any
// queries, on the production timing-wheel clock.
func NewWorld(sc Scenario) (*World, error) {
	return NewWorldOnClock(sc, clock.NewVirtual(worldEpoch))
}

// NewWorldOnClock is NewWorld on a caller-supplied clock engine. The
// clock must start at the world epoch (time.Date(2018, 5, 1, ...)) or
// TTL arithmetic in the scenario invariants will not line up.
func NewWorldOnClock(sc Scenario, clk SimClock) (*World, error) {
	w := &World{Clk: clk, sc: sc}
	w.Net = netsim.New(w.Clk, sc.Seed)

	rootZone, tldZone, leafZone, err := buildZones(sc)
	if err != nil {
		return nil, err
	}
	root := authoritative.New(rootZone)
	tld := authoritative.New(tldZone)
	leaf1 := authoritative.New(leafZone)
	leaf2 := authoritative.New(leafZone)
	root.Attach(w.Net, rootAddr)
	tld.Attach(w.Net, tldAddr)
	leaf1.Attach(w.Net, leaf1Addr)
	leaf2.Attach(w.Net, leaf2Addr)
	w.Auths = []*authoritative.Server{root, tld, leaf1, leaf2}

	for i, p := range sc.Resolvers {
		cfg := recursive.Config{
			Cache:          cache.Config{Shards: p.Shards, MinTTL: p.MinTTL, MaxTTL: p.MaxTTL},
			ServeStale:     p.ServeStale,
			InitialTimeout: p.InitialTimeout,
			Seed:           sc.Seed*1000 + int64(i) + 1,
		}
		if p.Forwarder {
			for _, b := range p.Backends {
				cfg.Forwarders = append(cfg.Forwarders, ResolverAddr(b))
			}
		} else {
			cfg.RootHints = []recursive.ServerHint{{Name: "a.root.", Addr: rootAddr}}
		}
		r := recursive.NewResolver(w.Clk, cfg)
		r.Attach(w.Net, ResolverAddr(i))
		w.Resolvers = append(w.Resolvers, r)
	}
	for i := range sc.Clients {
		c := stub.New(w.Clk, stub.Config{})
		c.Attach(w.Net, clientAddr(i))
		w.Clients = append(w.Clients, c)
	}
	return w, nil
}

// EnableTrace wires one trace buffer into every engine of the world —
// stub clients, resolvers (and their caches), authoritatives, and the
// network. Call it before Run; the returned buffer holds the run's
// events afterwards.
func (w *World) EnableTrace(cfg trace.Config) *trace.Buffer {
	tr := trace.NewBuffer(w.Clk, worldEpoch, 0, cfg)
	w.Net.SetTrace(tr)
	for _, a := range w.Auths {
		a.SetTrace(tr)
	}
	for _, r := range w.Resolvers {
		r.SetTrace(tr)
	}
	for _, c := range w.Clients {
		c.SetTrace(tr)
	}
	return tr
}

// buildZones renders the three zone files from the scenario parameters.
func buildZones(sc Scenario) (root, tld, leaf *zone.Zone, err error) {
	leafRel := strings.TrimSuffix(sc.LeafZone, ".test.")
	rootText := `$ORIGIN .
$TTL 518400
@ IN SOA a.root. nstld.root. 1 1800 900 604800 86400
@ IN NS a.root.
a.root. IN A 198.41.0.4
test. 172800 IN NS ns.tld.test.
ns.tld.test. 172800 IN A 192.0.9.1
`
	tldText := fmt.Sprintf(`$ORIGIN test.
$TTL 86400
@ IN SOA ns.tld.test. host.test. 1 1800 900 604800 3600
@ IN NS ns.tld
ns.tld IN A 192.0.9.1
%[1]s 3600 IN NS ns1.%[1]s
%[1]s 3600 IN NS ns2.%[1]s
ns1.%[1]s 3600 IN A 192.0.9.11
ns2.%[1]s 3600 IN A 192.0.9.12
`, leafRel)
	var b strings.Builder
	fmt.Fprintf(&b, "$ORIGIN %s\n$TTL %d\n", sc.LeafZone, sc.LeafTTL)
	fmt.Fprintf(&b, "@ IN SOA ns1.%[1]s host.%[1]s 1 7200 3600 864000 %[2]d\n",
		sc.LeafZone, sc.NegTTL)
	b.WriteString("@ IN NS ns1\n@ IN NS ns2\n")
	b.WriteString("ns1 3600 IN A 192.0.9.11\nns2 3600 IN A 192.0.9.12\n")
	for i, name := range sc.Names {
		rel := strings.TrimSuffix(name, "."+sc.LeafZone)
		fmt.Fprintf(&b, "%s %d IN AAAA fd00::%x\n", rel, sc.LeafTTL, i+1)
	}

	if root, err = zone.ParseString(rootText, ""); err != nil {
		return nil, nil, nil, fmt.Errorf("root zone: %w", err)
	}
	if tld, err = zone.ParseString(tldText, ""); err != nil {
		return nil, nil, nil, fmt.Errorf("tld zone: %w", err)
	}
	if leaf, err = zone.ParseString(b.String(), ""); err != nil {
		return nil, nil, nil, fmt.Errorf("leaf zone: %w", err)
	}
	return root, tld, leaf, nil
}

// Run schedules the scenario's queries and attack window, drains the
// event loop to completion, and collects observations, statistics, and
// the deterministic run report with its invariant verdicts.
func (w *World) Run() *RunResult {
	sc := w.sc

	if sc.AttackDur > 0 {
		targets := []netsim.Addr{leaf1Addr, leaf2Addr}
		if sc.AttackTLD {
			targets = append(targets, tldAddr)
		}
		w.Clk.AfterFunc(sc.AttackStart, func() {
			for _, a := range targets {
				w.Net.SetInboundLoss(a, sc.AttackLoss)
			}
		})
		w.Clk.AfterFunc(sc.AttackStart+sc.AttackDur, func() {
			for _, a := range targets {
				w.Net.SetInboundLoss(a, 0)
			}
		})
	}

	obs := make([]*Observation, len(sc.Queries))
	for i := range sc.Queries {
		q := sc.Queries[i]
		o := &Observation{Query: q}
		obs[i] = o
		if q.Direct {
			r := w.Resolvers[q.Resolver]
			w.Clk.AfterFunc(q.At, func() {
				r.Resolve(q.Name, dnswire.TypeAAAA, q.Shard, func(res recursive.Result) {
					o.Calls++
					o.RCode = res.RCode
					o.Stale = res.Stale
					o.ServFail = res.ServFail
					for _, rr := range res.Answers {
						o.AnswerTTLs = append(o.AnswerTTLs, rr.TTL)
					}
				})
			})
			continue
		}
		c := w.Clients[q.Client]
		dst := ResolverAddr(q.Resolver)
		w.Clk.AfterFunc(q.At, func() {
			c.Query(dst, q.Name, dnswire.TypeAAAA, func(res stub.Result) {
				o.Calls++
				if res.Err != nil {
					o.Timeout = true
					return
				}
				o.RCode = res.Msg.RCode
				for _, rr := range res.Msg.Answers {
					o.AnswerTTLs = append(o.AnswerTTLs, rr.TTL)
				}
			})
		})
	}

	// Drain everything: scheduled queries, retries, stale timers, client
	// timeouts, and the attack window. The virtual clock runs dry, which
	// is itself part of the conservation invariant (Pending == 0).
	w.Clk.Run()

	res := &RunResult{
		Scenario: sc,
		Obs:      obs,
		Net:      w.Net.Stats(),
		Pending:  w.Clk.Pending(),
	}
	res.Scheduled, res.Fired, res.Stopped = w.Clk.Counters()
	for _, r := range w.Resolvers {
		res.Stats = append(res.Stats, r.Stats())
	}
	res.Report = w.buildReport(res)
	var buf bytes.Buffer
	if err := res.Report.WriteJSON(&buf); err == nil {
		res.ReportJSON = buf.Bytes()
	}
	return res
}

// buildReport assembles the run's registry snapshot and invariant
// verdicts into a metrics.Report. Reports carry no wall-clock data, so
// identical seeds marshal to identical bytes.
func (w *World) buildReport(res *RunResult) *metrics.Report {
	reg := metrics.NewRegistry()
	for i, r := range w.Resolvers {
		r.CollectMetrics(reg.Scope(fmt.Sprintf("resolver-%02d", i)))
		r.Cache().CollectMetrics(reg.Scope(fmt.Sprintf("cache-%02d", i)))
	}
	authNames := []string{"auth-root", "auth-tld", "auth-leaf1", "auth-leaf2"}
	for i, a := range w.Auths {
		a.CollectMetrics(reg.Scope(authNames[i]))
	}
	w.Net.CollectMetrics(reg.Scope("netsim"))

	cs := reg.Scope("clock")
	cs.Gauge("scheduled").Set(res.Scheduled)
	cs.Gauge("fired").Set(res.Fired)
	cs.Gauge("stopped").Set(res.Stopped)
	cs.Gauge("pending").Set(int64(res.Pending))

	hs := reg.Scope("harness")
	var calls, timeouts, answered int64
	for _, o := range res.Obs {
		calls += int64(o.Calls)
		if o.Calls == 0 {
			continue
		}
		if o.Timeout {
			timeouts++
		} else {
			answered++
		}
	}
	hs.Counter("queries_scheduled").Add(int64(len(res.Obs)))
	hs.Counter("callbacks").Add(calls)
	hs.Counter("timeouts").Add(timeouts)
	hs.Counter("answered").Add(answered)

	return &metrics.Report{
		Name: fmt.Sprintf("proptest-seed%d", w.sc.Seed),
		Labels: map[string]string{
			"seed":        strconv.FormatInt(w.sc.Seed, 10),
			"leaf_zone":   w.sc.LeafZone,
			"leaf_ttl":    strconv.FormatUint(uint64(w.sc.LeafTTL), 10),
			"resolvers":   strconv.Itoa(len(w.sc.Resolvers)),
			"clients":     strconv.Itoa(len(w.sc.Clients)),
			"queries":     strconv.Itoa(len(w.sc.Queries)),
			"attack_loss": strconv.FormatFloat(w.sc.AttackLoss, 'g', -1, 64),
		},
		Metrics:    reg.Snapshot(),
		Invariants: Check(res),
	}
}
