package proptest

import (
	"fmt"

	"repro/internal/metrics"
)

// Check evaluates every cross-component invariant over one run. A failed
// invariant means the simulator violated its own accounting or protocol
// contracts on a random scenario — exactly the defect class that silently
// skews the paper's tables when it hides in a curated experiment.
func Check(res *RunResult) []metrics.Invariant {
	sc := res.Scenario

	// Exactly-once callback delivery for stub and resolver paths.
	var undelivered, duplicated int64
	// TTL monotonicity: no client-visible TTL above the profile's bound.
	var ttlViolations int64
	var worstTTL uint32
	// Outcome partition for packet-path queries.
	var stubTotal, stubTimeouts, stubAnswered int64
	for _, o := range res.Obs {
		switch {
		case o.Calls == 0:
			undelivered++
		case o.Calls > 1:
			duplicated++
		}
		bound := sc.TTLBound(sc.Resolvers[o.Query.Resolver], sc.LeafTTL)
		for _, ttl := range o.AnswerTTLs {
			if ttl > bound {
				ttlViolations++
				if ttl > worstTTL {
					worstTTL = ttl
				}
			}
		}
		if !o.Query.Direct && o.Calls > 0 {
			stubTotal++
			if o.Timeout {
				stubTimeouts++
			} else {
				stubAnswered++
			}
		}
	}

	invs := []metrics.Invariant{
		metrics.EqualInt("callbacks_none_lost",
			undelivered, 0, "undelivered", "zero"),
		metrics.EqualInt("callbacks_none_duplicated",
			duplicated, 0, "duplicated", "zero"),
		{
			Name: "ttl_monotonic",
			OK:   ttlViolations == 0,
			Detail: fmt.Sprintf("violations=%d worst=%d zone_ttl=%d",
				ttlViolations, worstTTL, sc.LeafTTL),
		},
		metrics.EqualInt("stub_outcomes_partition",
			stubTotal, stubTimeouts+stubAnswered,
			"stub_queries", "timeouts+answered"),
		// Packet conservation: everything sent is delivered, dropped by
		// the loss window, or dead-lettered — nothing vanishes.
		metrics.EqualInt("netsim_packets_conserved",
			res.Net.Sent, res.Net.Delivered+res.Net.Dropped+res.Net.Dead,
			"sent", "delivered+dropped+dead"),
		// Event-loop conservation: at full drain every scheduled event
		// either fired or was canceled, and none remain pending.
		metrics.EqualInt("clock_events_conserved",
			res.Scheduled, res.Fired+res.Stopped,
			"scheduled", "fired+stopped"),
		metrics.EqualInt("clock_drained",
			int64(res.Pending), 0, "pending", "zero"),
	}

	for i, st := range res.Stats {
		p := sc.Resolvers[i]
		// Every client query a resolver accepted produced exactly one
		// response by drain time (stale, SERVFAIL, or answer).
		invs = append(invs, metrics.EqualInt(
			fmt.Sprintf("resolver%02d_responses_match_queries", i),
			st.ClientQueries, st.ClientResponses,
			"client_queries", "client_responses"))
		// Stale answers may only come from serve-stale profiles.
		if !p.ServeStale {
			invs = append(invs, metrics.EqualInt(
				fmt.Sprintf("resolver%02d_no_stale_serves", i),
				st.StaleServes, 0, "stale_serves", "zero"))
		}
	}
	return invs
}
