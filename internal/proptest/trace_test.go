package proptest

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/trace"
)

// traceScenario builds a directed random scenario suited to span
// matching: one stub client (so DNS query IDs never collide across
// clients) and digit-led names ("1.leaf.test.", "2.leaf.test.", ...)
// so every name maps to a distinct trace probe ID. The rest — TTLs,
// serve-stale, query schedule, attack window — is randomized from the
// seed like Generate.
func traceScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:     seed,
		LeafZone: "leaf.test.",
		LeafTTL:  uint32(10 + rng.Intn(80)),
		NegTTL:   uint32(5 + rng.Intn(30)),
	}
	nNames := 3 + rng.Intn(4)
	for i := 0; i < nNames; i++ {
		sc.Names = append(sc.Names, strconv.Itoa(i+1)+"."+sc.LeafZone)
	}
	sc.Resolvers = []ResolverProfile{
		{Shards: 1 + rng.Intn(3), ServeStale: rng.Intn(2) == 1},
	}
	sc.Clients = []int{0}

	rounds := 3 + rng.Intn(3)
	interval := time.Duration(20+rng.Intn(40)) * time.Second
	for round := 0; round < rounds; round++ {
		base := time.Duration(round) * interval
		for _, name := range sc.Names {
			if rng.Intn(10) < 8 {
				sc.Queries = append(sc.Queries, Query{
					At:     base + time.Duration(rng.Intn(3000))*time.Millisecond,
					Client: 0, Resolver: 0, Name: name,
				})
			}
		}
	}

	if rng.Intn(3) > 0 {
		sc.AttackStart = time.Duration(5+rng.Intn(30)) * time.Second
		sc.AttackDur = time.Duration(20+rng.Intn(60)) * time.Second
		sc.AttackLoss = []float64{0.5, 0.75, 0.9, 1.0}[rng.Intn(4)]
		sc.AttackTLD = rng.Intn(4) == 0
	}
	sc.Total = time.Duration(rounds)*interval + 30*time.Second
	return sc
}

// runTraced materializes sc with tracing on every engine and returns
// the run's single-cell trace.
func runTraced(t *testing.T, sc Scenario) *trace.Data {
	t.Helper()
	w, err := NewWorld(sc)
	if err != nil {
		t.Fatalf("seed %d: NewWorld: %v", sc.Seed, err)
	}
	tr := w.EnableTrace(trace.Config{})
	w.Run()
	return &trace.Data{
		SampleEvery: tr.SampleEvery(),
		Cells:       []trace.CellTrace{{Cell: 0, Dropped: tr.Dropped(), Events: tr.Events()}},
	}
}

// TestTraceSpanCompleteness is the proptest trace axis: across random
// directed scenarios, the recorded trace must be structurally sound
// (Validate returns nothing) and span-complete — every stub query that
// was issued opens exactly one span and closes it with exactly one
// terminal event (an answer or a timeout), even under attack windows
// that force long retry chains.
func TestTraceSpanCompleteness(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		sc := traceScenario(seed)
		td := runTraced(t, sc)

		if td.Len() == 0 {
			t.Fatalf("seed %d: trace recorded no events", seed)
		}
		if problems := td.Validate(); len(problems) > 0 {
			t.Fatalf("seed %d: trace validation failed: %v", seed, problems)
		}

		counts := td.TypeCounts()
		issued := counts[trace.EvStubIssue.String()]
		terminal := counts[trace.EvStubAnswer.String()] + counts[trace.EvStubTimeout.String()]
		if issued != len(sc.Queries) {
			t.Fatalf("seed %d: %d stub_issue events, want %d (one per scheduled query)",
				seed, issued, len(sc.Queries))
		}
		if terminal != issued {
			t.Fatalf("seed %d: %d terminal events for %d issued queries", seed, terminal, issued)
		}

		spans := td.Spans()
		if len(spans) != issued {
			t.Fatalf("seed %d: %d spans for %d issued queries", seed, len(spans), issued)
		}
		for _, sp := range spans {
			if !sp.Complete {
				t.Fatalf("seed %d: incomplete span for probe %d (%q)", seed, sp.Probe, sp.Name)
			}
			if sp.End < sp.Start {
				t.Fatalf("seed %d: span for probe %d ends before it starts", seed, sp.Probe)
			}
		}
	}
}

// TestTraceDeterministicReplay asserts the trace side of the package's
// determinism invariant: materializing and running the same scenario
// twice yields byte-identical JSONL traces.
func TestTraceDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		sc := traceScenario(seed)
		var runs [2][]byte
		for i := range runs {
			td := runTraced(t, sc)
			var buf bytes.Buffer
			if err := td.WriteJSONL(&buf); err != nil {
				t.Fatalf("seed %d: WriteJSONL: %v", seed, err)
			}
			runs[i] = buf.Bytes()
		}
		if !bytes.Equal(runs[0], runs[1]) {
			t.Fatalf("seed %d: traces differ between identical runs (%d vs %d bytes)",
				seed, len(runs[0]), len(runs[1]))
		}
	}
}
