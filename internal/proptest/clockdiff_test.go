package proptest

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/clock"
)

// TestWheelHeapScenarioEquivalence is the whole-stack differential check
// behind the timing-wheel migration: the same generated ecosystem —
// hierarchy, resolvers, stub clients, DDoS window — is run once on the
// timing-wheel clock and once on the pre-wheel heap reference
// (clock.Heap), and every externally visible outcome must match
// exactly: per-query observations, the clock's scheduled/fired/stopped
// conservation counters, and the byte-identical deterministic run
// report. internal/clock's own property test covers raw schedules; this
// one proves the equivalence survives the full engine pipeline, where a
// single reordered or re-timed callback would shift RNG draws and
// cascade into different packet fates.
func TestWheelHeapScenarioEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sc := Generate(seed)

		wheelWorld, err := NewWorldOnClock(sc, clock.NewVirtual(worldEpoch))
		if err != nil {
			t.Fatalf("seed %d: wheel world: %v", seed, err)
		}
		heapWorld, err := NewWorldOnClock(sc, clock.NewHeap(worldEpoch))
		if err != nil {
			t.Fatalf("seed %d: heap world: %v", seed, err)
		}

		wres := wheelWorld.Run()
		hres := heapWorld.Run()

		if len(wres.Obs) != len(hres.Obs) {
			t.Fatalf("seed %d: observation counts diverge: wheel %d heap %d",
				seed, len(wres.Obs), len(hres.Obs))
		}
		for i := range wres.Obs {
			if !reflect.DeepEqual(wres.Obs[i], hres.Obs[i]) {
				t.Errorf("seed %d: query %d diverges:\n  wheel: %+v\n  heap:  %+v",
					seed, i, *wres.Obs[i], *hres.Obs[i])
			}
		}
		if wres.Scheduled != hres.Scheduled || wres.Fired != hres.Fired ||
			wres.Stopped != hres.Stopped || wres.Pending != hres.Pending {
			t.Errorf("seed %d: clock counters diverge: wheel (%d,%d,%d,%d) heap (%d,%d,%d,%d)",
				seed, wres.Scheduled, wres.Fired, wres.Stopped, wres.Pending,
				hres.Scheduled, hres.Fired, hres.Stopped, hres.Pending)
		}
		if wres.Net != hres.Net {
			t.Errorf("seed %d: network stats diverge: wheel %+v heap %+v",
				seed, wres.Net, hres.Net)
		}
		if !bytes.Equal(wres.ReportJSON, hres.ReportJSON) {
			t.Errorf("seed %d: run reports diverge:\n  wheel: %s\n  heap:  %s",
				seed, wres.ReportJSON, hres.ReportJSON)
		}
		if t.Failed() {
			return // later seeds would only repeat the same divergence
		}
	}
}
