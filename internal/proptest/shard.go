package proptest

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/experiment"
)

// Shard-count axis: the sharded experiment engine promises that the
// Shards concurrency knob never changes results — only the cell layout
// (Probes, ShardProbes, Seed) does. ShardCase draws a random experiment
// kind and cell geometry from a seed; RenderShardCase runs it at a given
// shard count and flattens every rendered table plus the run-report JSON
// into one byte string, so a property test can require byte-identity
// across shard counts the same way the world harness requires it across
// rebuilds.

// ShardCase is one generated point on the shard axis.
type ShardCase struct {
	Kind string // "ddos", "caching", or "glue"
	Cfg  experiment.RunConfig
	Spec experiment.DDoSSpec // used when Kind == "ddos"
}

// GenerateShardCase derives a shard-determinism case from seed. Geometry
// is drawn so most cases span several cells, including ragged trailing
// cells and the single-cell edge.
func GenerateShardCase(seed int64) ShardCase {
	rng := rand.New(rand.NewSource(seed))
	c := ShardCase{
		Kind: []string{"ddos", "caching", "glue"}[rng.Intn(3)],
		Cfg: experiment.RunConfig{
			Probes:      8 + rng.Intn(56),
			ShardProbes: 4 + rng.Intn(28),
			Seed:        rng.Int63(),
		},
	}
	switch c.Kind {
	case "ddos":
		interval := time.Duration(5+rng.Intn(11)) * time.Minute
		rounds := 3 + rng.Intn(3)
		c.Spec = experiment.DDoSSpec{
			Name: "P", TTL: uint32(60 + rng.Intn(600)),
			DDoSStart:     interval,
			DDoSDur:       time.Duration(1+rng.Intn(2)) * interval,
			QueriesBefore: 1 + rng.Intn(3),
			TotalDur:      time.Duration(rounds) * interval,
			ProbeInterval: interval,
			Loss:          []float64{0.5, 0.75, 0.9, 1.0}[rng.Intn(4)],
			TargetsAll:    rng.Intn(2) == 1,
		}
	case "caching":
		c.Cfg.TTL = uint32(60 + rng.Intn(1800))
		c.Cfg.ProbeInterval = time.Duration(5+rng.Intn(16)) * time.Minute
		c.Cfg.Rounds = 2 + rng.Intn(3)
	}
	return c
}

// RenderShardCase runs the case with the given shard count and returns
// the full rendered output (tables + report JSON).
func RenderShardCase(c ShardCase, shards int) ([]byte, error) {
	cfg := c.Cfg
	cfg.Shards = shards
	var sc experiment.Scenario
	switch c.Kind {
	case "ddos":
		sc = experiment.DDoSScenario(c.Spec)
	case "caching":
		sc = experiment.CachingScenario()
	case "glue":
		sc = experiment.GlueScenario()
	default:
		return nil, fmt.Errorf("unknown shard case kind %q", c.Kind)
	}
	out, err := experiment.Run(context.Background(), sc, cfg)
	if err != nil {
		return nil, err
	}
	return renderShardOutcome(out)
}

func renderShardOutcome(out *experiment.Outcome) ([]byte, error) {
	var buf []byte
	app := func(s string) { buf = append(buf, s...) }
	switch {
	case out.DDoS != nil:
		r := out.DDoS
		app(experiment.RenderTable4([]*experiment.DDoSResult{r}))
		app(experiment.RenderLatency(r))
		app(experiment.RenderUniqueRn(r))
		app(experiment.RenderAmplification(r))
		app(r.Answers.Table(nil))
		app(r.Classes.Table(nil))
		app(r.AuthQueries.Table(nil))
	case out.Caching != nil:
		r := out.Caching
		app(experiment.RenderTable1([]*experiment.CachingResult{r}))
		app(experiment.RenderTable2([]*experiment.CachingResult{r}))
		app(experiment.RenderTable3([]*experiment.CachingResult{r}))
		app(r.Fig13.Table(nil))
	case out.Glue != nil:
		app(experiment.RenderTable5(out.Glue))
	}
	if out.Report != nil {
		w := &sliceWriter{buf: buf}
		if err := out.Report.WriteJSON(w); err != nil {
			return nil, err
		}
		buf = w.buf
	}
	return buf, nil
}

type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
