package proptest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/recursive"
)

func mustRun(t *testing.T, seed int64) *RunResult {
	t.Helper()
	w, err := NewWorld(Generate(seed))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return w.Run()
}

// TestRandomScenarioInvariants runs a spread of generated ecosystems and
// requires every conservation and metamorphic invariant to hold on each.
func TestRandomScenarioInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := mustRun(t, seed)
		for _, inv := range res.Report.Invariants {
			if !inv.OK {
				t.Errorf("seed %d: invariant %s failed: %s", seed, inv.Name, inv.Detail)
			}
		}
	}
}

// TestRunReportDeterministic requires the same seed to produce a
// byte-identical run report across independent builds of the world.
func TestRunReportDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		a := mustRun(t, seed)
		b := mustRun(t, seed)
		if len(a.ReportJSON) == 0 {
			t.Fatalf("seed %d: empty report", seed)
		}
		if !bytes.Equal(a.ReportJSON, b.ReportJSON) {
			t.Errorf("seed %d: reports differ across runs of the same scenario", seed)
		}
	}
}

// TestStaleRefreshProperty is the directed property behind the serve-stale
// bugfix: across randomized TTLs, shard counts, and path delays, a
// resolver that answers a client with stale data must still absorb the
// late upstream answer into its cache. The delay is drawn so the answer
// lands after the 1.8 s stale-answer timer but inside the 3 s query
// timeout — the exact window the pre-fix code discarded.
func TestStaleRefreshProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := Scenario{
			Seed:     seed,
			LeafZone: "leaf.test.",
			LeafTTL:  uint32(10 + rng.Intn(50)),
			NegTTL:   30,
			Names:    []string{"n0.leaf.test."},
			Resolvers: []ResolverProfile{{
				Shards:         1 + rng.Intn(4),
				ServeStale:     true,
				InitialTimeout: 3 * time.Second,
			}},
			Clients: []int{0},
		}
		w, err := NewWorld(sc)
		if err != nil {
			t.Fatal(err)
		}
		r := w.Resolvers[0]
		name := sc.Names[0]

		warmed := false
		r.Resolve(name, dnswire.TypeAAAA, 0, func(res recursive.Result) {
			warmed = len(res.Answers) > 0
		})
		w.Clk.RunFor(10 * time.Second)
		if !warmed {
			t.Fatalf("seed %d: warm resolution failed", seed)
		}
		// Expire the record, then slow the path to both leaf servers.
		w.Clk.RunFor(time.Duration(sc.LeafTTL)*time.Second + 5*time.Second)
		delay := time.Duration(1000+rng.Intn(400)) * time.Millisecond
		w.Net.SetPairDelay(ResolverAddr(0), leaf1Addr, delay)
		w.Net.SetPairDelay(ResolverAddr(0), leaf2Addr, delay)

		stale := false
		r.Resolve(name, dnswire.TypeAAAA, 0, func(res recursive.Result) {
			stale = res.Stale
		})
		w.Clk.Run()
		if !stale {
			t.Fatalf("seed %d: expected a stale answer (delay %v)", seed, delay)
		}
		v := r.Cache().Get(cache.Key{Name: name, Type: dnswire.TypeAAAA}, 0)
		if !v.Hit || v.Stale {
			t.Errorf("seed %d: late refresh answer was not recached (delay %v): %+v",
				seed, delay, v)
		}
	}
}

// TestCacheCredibilityModel drives the cache with random operation
// sequences against a reference model of the RFC 2181 §5.4.1 contract:
// lower-rank data never overwrites fresher higher-rank data, and lookups
// return exactly what the surviving store said, for the effective
// (capped/floored) TTL. Reverting cache.Put's rank guard makes this fail
// within a few seeds.
func TestCacheCredibilityModel(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runCacheModel(t, seed)
	}
}

type modelEntry struct {
	rank    cache.Rank
	expires time.Time
	addr    string
}

func runCacheModel(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	clk := clock.NewVirtual(worldEpoch)
	cfg := cache.Config{}
	if rng.Intn(2) == 1 {
		cfg.MaxTTL = time.Duration(5+rng.Intn(60)) * time.Second
	}
	if rng.Intn(3) == 0 {
		cfg.MinTTL = time.Duration(2+rng.Intn(10)) * time.Second
	}
	c := cache.New(clk, cfg)

	model := map[string]*modelEntry{}
	keys := []string{"a.test.", "b.test.", "c.test."}
	nextAddr := 0

	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0, 1: // Put a one-record RRset with a unique address.
			name := keys[rng.Intn(len(keys))]
			rank := cache.Rank(1 + rng.Intn(3))
			ttl := uint32(1 + rng.Intn(90))
			nextAddr++
			addr := fmt.Sprintf("10.%d.%d.%d",
				nextAddr/65536%256, nextAddr/256%256, nextAddr%256)
			c.Put(cache.Key{Name: name, Type: dnswire.TypeA}, cache.Entry{
				Records: []dnswire.RR{{
					Name: name, Class: dnswire.ClassIN, TTL: ttl,
					Data: dnswire.A{Addr: dnswire.MustAddr(addr)},
				}},
				Rank: rank,
			}, 0)
			now := clk.Now()
			if m, ok := model[name]; ok && m.rank > rank && m.expires.After(now) {
				break // the model predicts the store is rejected
			}
			model[name] = &modelEntry{
				rank:    rank,
				expires: now.Add(effectiveTTL(ttl, cfg)),
				addr:    addr,
			}
		case 2:
			clk.RunFor(time.Duration(rng.Intn(30_000)) * time.Millisecond)
		case 3: // Get and compare against the model.
			name := keys[rng.Intn(len(keys))]
			v := c.Get(cache.Key{Name: name, Type: dnswire.TypeA}, 0)
			m, ok := model[name]
			fresh := ok && m.expires.After(clk.Now())
			if v.Hit != fresh {
				t.Fatalf("seed %d step %d: %s hit=%v, model fresh=%v",
					seed, step, name, v.Hit, fresh)
			}
			if !v.Hit {
				break
			}
			got := v.Records[0].Data.(dnswire.A).Addr.String()
			if got != m.addr || v.Rank != m.rank {
				t.Fatalf("seed %d step %d: %s cache=(%s, rank %d), model=(%s, rank %d)",
					seed, step, name, got, v.Rank, m.addr, m.rank)
			}
		}
	}
}

// effectiveTTL mirrors the cache's store-time TTL rewrite: cap first,
// then floor.
func effectiveTTL(ttl uint32, cfg cache.Config) time.Duration {
	d := time.Duration(ttl) * time.Second
	if cfg.MaxTTL > 0 && d > cfg.MaxTTL {
		d = cfg.MaxTTL
	}
	if cfg.MinTTL > 0 && d < cfg.MinTTL {
		d = cfg.MinTTL
	}
	return d
}
