package proptest

import (
	"bytes"
	"testing"
)

// TestShardCountAxis is the randomized form of the sharded engine's
// determinism contract: for a spread of generated experiment kinds, cell
// geometries, and seeds, every shard count must render byte-identical
// tables and run reports.
func TestShardCountAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized experiment sweep")
	}
	for seed := int64(0); seed < 12; seed++ {
		c := GenerateShardCase(seed)
		base, err := RenderShardCase(c, 1)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, c.Kind, err)
		}
		if len(base) == 0 {
			t.Fatalf("seed %d (%s): empty rendering", seed, c.Kind)
		}
		for _, k := range []int{2, 4, 8} {
			got, err := RenderShardCase(c, k)
			if err != nil {
				t.Fatalf("seed %d (%s) K=%d: %v", seed, c.Kind, k, err)
			}
			if !bytes.Equal(base, got) {
				t.Errorf("seed %d (%s): K=%d output differs from K=1", seed, c.Kind, k)
			}
		}
	}
}
