// Package proptest is a seeded randomized-scenario property harness for
// the simulator. Generate derives a small random DNS ecosystem from a
// seed — zone depth, record TTLs, resolver profiles (shard counts, TTL
// caps/floors, serve-stale, forwarding), client populations, query
// schedules, and a DDoS loss window — and World materializes and runs it,
// checking metamorphic and conservation invariants that must hold on
// every run, not just the curated paper experiments:
//
//   - determinism: the same seed produces a byte-identical run report
//   - TTL monotonicity: no client-visible TTL exceeds the zone TTL after
//     the profile's cap/floor rewriting
//   - exactly-once delivery: every stub and resolver callback fires once
//   - conservation: packets, clock events, and per-resolver query/response
//     tallies balance (the internal/metrics invariant style)
//
// The cache-credibility ordering property (lower-rank data never
// overwrites fresher higher-rank data) is checked separately by a
// model-based random-operation test in this package's tests.
package proptest

import (
	"fmt"
	"math/rand"
	"time"
)

// ResolverProfile describes one resolver of a generated scenario.
type ResolverProfile struct {
	// Forwarder selects forwarding mode; Backends index the scenario's
	// iterative resolvers it relays to.
	Forwarder bool
	Backends  []int
	// Shards is the number of independent backend caches (§3.5 cache
	// fragmentation).
	Shards int
	// ServeStale enables answering with expired entries (§5.3).
	ServeStale bool
	// MinTTL / MaxTTL are the cache's TTL floor and cap (§3.4 rewriting).
	MinTTL time.Duration
	MaxTTL time.Duration
	// InitialTimeout overrides the resolver's first per-query timeout;
	// zero keeps the engine default.
	InitialTimeout time.Duration
}

// Query is one scheduled client query. The schedule is fully materialized
// at generation time so a scenario replays identically.
type Query struct {
	At       time.Duration
	Client   int // index into Scenario.Clients; -1 for direct probes
	Resolver int
	Name     string // FQDN inside the leaf zone
	Shard    int    // shard hint, used by direct probes
	// Direct probes call Resolver.Resolve instead of sending a packet
	// through a stub, exercising the API path's exactly-once contract.
	Direct bool
}

// Scenario is a fully materialized random ecosystem. Every random choice
// is made from the seed at generation time; building and running the same
// scenario twice must yield byte-identical reports.
type Scenario struct {
	Seed int64

	// LeafZone is the delegated zone under test.; its depth varies.
	LeafZone string
	// LeafTTL is the TTL of the zone's answer records; NegTTL its SOA
	// minimum (negative-caching TTL).
	LeafTTL uint32
	NegTTL  uint32
	// Names are the queryable FQDNs inside LeafZone.
	Names []string

	Resolvers []ResolverProfile
	// Clients maps each stub client to the resolver it queries.
	Clients []int
	Queries []Query

	// Attack is a loss window on the leaf authoritatives (and optionally
	// the TLD server), the paper's DDoS dial. AttackDur == 0 disables it.
	AttackStart time.Duration
	AttackDur   time.Duration
	AttackLoss  float64
	AttackTLD   bool

	// Total is the scheduled experiment span; the run drains all events
	// past it.
	Total time.Duration
}

// Generate derives a scenario from seed.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed, LeafZone: "leaf.test."}
	if rng.Intn(2) == 1 {
		sc.LeafZone = "leaf.sub.test." // deeper delegation from the TLD
	}
	sc.LeafTTL = uint32(5 + rng.Intn(116))
	sc.NegTTL = uint32(5 + rng.Intn(56))

	nNames := 1 + rng.Intn(5)
	for i := 0; i < nNames; i++ {
		rel := fmt.Sprintf("n%d", i)
		if rng.Intn(3) == 0 {
			rel = fmt.Sprintf("deep%d.n%d", rng.Intn(3), i)
		}
		sc.Names = append(sc.Names, rel+"."+sc.LeafZone)
	}

	nDirect := 1 + rng.Intn(3)
	for i := 0; i < nDirect; i++ {
		p := ResolverProfile{Shards: 1 + rng.Intn(4), ServeStale: rng.Intn(2) == 1}
		if rng.Intn(2) == 1 {
			p.MaxTTL = time.Duration(10+rng.Intn(80)) * time.Second
		}
		if rng.Intn(3) == 0 {
			p.MinTTL = time.Duration(2+rng.Intn(20)) * time.Second
		}
		sc.Resolvers = append(sc.Resolvers, p)
	}
	if rng.Intn(5) < 2 {
		// An R1-style forwarder relaying to every iterative resolver.
		p := ResolverProfile{Forwarder: true, Shards: 1, ServeStale: rng.Intn(2) == 1}
		for b := 0; b < nDirect; b++ {
			p.Backends = append(p.Backends, b)
		}
		if rng.Intn(2) == 1 {
			p.MaxTTL = time.Duration(10+rng.Intn(80)) * time.Second
		}
		sc.Resolvers = append(sc.Resolvers, p)
	}

	nClients := 2 + rng.Intn(4)
	for i := 0; i < nClients; i++ {
		sc.Clients = append(sc.Clients, rng.Intn(len(sc.Resolvers)))
	}

	rounds := 2 + rng.Intn(4)
	interval := time.Duration(15+rng.Intn(46)) * time.Second
	for round := 0; round < rounds; round++ {
		base := time.Duration(round) * interval
		for cIdx, rIdx := range sc.Clients {
			if rng.Intn(10) < 8 {
				sc.Queries = append(sc.Queries, Query{
					At:     base + time.Duration(rng.Intn(3000))*time.Millisecond,
					Client: cIdx, Resolver: rIdx,
					Name: sc.Names[rng.Intn(len(sc.Names))],
				})
			}
		}
	}
	span := time.Duration(rounds) * interval
	for rIdx := range sc.Resolvers {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			sc.Queries = append(sc.Queries, Query{
				At:       time.Duration(rng.Int63n(int64(span))),
				Client:   -1,
				Resolver: rIdx,
				Name:     sc.Names[rng.Intn(len(sc.Names))],
				Shard:    rng.Intn(8),
				Direct:   true,
			})
		}
	}

	if rng.Intn(2) == 1 {
		sc.AttackStart = time.Duration(10+rng.Intn(50)) * time.Second
		sc.AttackDur = time.Duration(20+rng.Intn(70)) * time.Second
		sc.AttackLoss = []float64{0.5, 0.75, 0.9, 1.0}[rng.Intn(4)]
		sc.AttackTLD = rng.Intn(3) == 0
	}

	sc.Total = span + 30*time.Second
	return sc
}

// TTLBound is the largest client-visible answer TTL profile p may serve
// for a record published with zoneTTL. It mirrors cache.effectiveTTL
// (cap, then floor — both on store and on the finish-path rewrite); for
// forwarders, the input is the largest TTL any backend may relay.
func (s Scenario) TTLBound(p ResolverProfile, zoneTTL uint32) uint32 {
	in := zoneTTL
	if p.Forwarder {
		in = 0
		for _, b := range p.Backends {
			if v := s.TTLBound(s.Resolvers[b], zoneTTL); v > in {
				in = v
			}
		}
	}
	if max := uint32(p.MaxTTL / time.Second); max > 0 && in > max {
		in = max
	}
	if min := uint32(p.MinTTL / time.Second); min > 0 && in < min {
		in = min
	}
	return in
}
