package regress

import (
	"strings"
	"testing"
)

const reportsJSON = `{"reports":[{"name":"ddos-H","labels":{"seed":"42"},
 "metrics":{"scopes":[
  {"name":"resolver","counters":{"cache_hits":100,"timeouts":5},"gauges":{"inflight":0}},
  {"name":"clock","counters":{"events_fired":5000}}]},
 "invariants":[{"name":"answers_balance","ok":true,"detail":""}]}]}`

const timelineJSON = `{"bucket":60000000000,"metrics":["answered","failed"],
 "bins":[[10,0],[8,2],[0,0]],"marks":[{"at":60000000000,"label":"attack start"}]}`

const benchJSON = `{"BenchmarkRun/off":{"ns_per_op":1000,"allocs_per_op":50},
 "BenchmarkRun/on":{"ns_per_op":1020,"metrics":{"events":12345}}}`

func TestParseDetectsFormats(t *testing.T) {
	for _, tc := range []struct {
		data string
		kind Kind
		key  string
		want float64
	}{
		{reportsJSON, KindReports, "ddos-H.resolver.cache_hits", 100},
		{reportsJSON, KindReports, "ddos-H.invariant.answers_balance", 1},
		{timelineJSON, KindTimeline, "bin0001.failed", 2},
		{timelineJSON, KindTimeline, "bins", 3},
		{benchJSON, KindBench, "BenchmarkRun/off.ns_per_op", 1000},
		{benchJSON, KindBench, "BenchmarkRun/on.events", 12345},
	} {
		doc, err := Parse([]byte(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if doc.Kind != tc.kind {
			t.Errorf("kind = %s, want %s", doc.Kind, tc.kind)
		}
		if got := doc.Values[tc.key]; got != tc.want {
			t.Errorf("%s[%s] = %g, want %g", tc.kind, tc.key, got, tc.want)
		}
	}
}

func TestCompareExactAndMissing(t *testing.T) {
	a, _ := Parse([]byte(reportsJSON))
	b, _ := Parse([]byte(reportsJSON))
	if deltas := Compare(a, b, Options{}); len(deltas) != 0 {
		t.Errorf("identical docs produced deltas: %+v", deltas)
	}

	changed := strings.Replace(reportsJSON, `"cache_hits":100`, `"cache_hits":90`, 1)
	c, _ := Parse([]byte(changed))
	deltas := Compare(a, c, Options{})
	if !AnyRegressed(deltas) {
		t.Fatal("10% drop with zero tolerance not flagged")
	}
	// A decrease is still a regression for deterministic reports (any
	// direction), but inside tolerance it passes.
	if deltas := Compare(a, c, Options{Tolerance: 0.2}); AnyRegressed(deltas) {
		t.Errorf("within-tolerance change flagged: %+v", deltas)
	}

	// A key that vanished is always a regression.
	gone := strings.Replace(reportsJSON, `"timeouts":5`, `"other":5`, 1)
	g, _ := Parse([]byte(gone))
	deltas = Compare(a, g, Options{Tolerance: 100})
	if !AnyRegressed(deltas) {
		t.Error("missing key not flagged")
	}
}

func TestCompareBenchIncreaseOnly(t *testing.T) {
	a, _ := Parse([]byte(benchJSON))
	faster := strings.Replace(benchJSON, `"ns_per_op":1000`, `"ns_per_op":500`, 1)
	f, _ := Parse([]byte(faster))
	if deltas := Compare(a, f, Options{Tolerance: 0.02}); AnyRegressed(deltas) {
		t.Errorf("a speedup was flagged as regression: %+v", deltas)
	}
	slower := strings.Replace(benchJSON, `"ns_per_op":1000`, `"ns_per_op":1500`, 1)
	s, _ := Parse([]byte(slower))
	if deltas := Compare(a, s, Options{Tolerance: 0.02}); !AnyRegressed(deltas) {
		t.Error("a 50% slowdown passed a 2% gate")
	}
}

func TestPerKeyTolerance(t *testing.T) {
	a, _ := Parse([]byte(benchJSON))
	slower := strings.Replace(benchJSON, `"ns_per_op":1000`, `"ns_per_op":1100`, 1)
	s, _ := Parse([]byte(slower))
	opts := Options{Tolerance: 0.02, PerKey: map[string]float64{"ns_per_op": 0.5}}
	if deltas := Compare(a, s, opts); AnyRegressed(deltas) {
		t.Errorf("per-key override not applied: %+v", deltas)
	}
}

func TestRender(t *testing.T) {
	a, _ := Parse([]byte(reportsJSON))
	changed := strings.Replace(reportsJSON, `"cache_hits":100`, `"cache_hits":90`, 1)
	c, _ := Parse([]byte(changed))
	out := Render(Compare(a, c, Options{}))
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "cache_hits") {
		t.Errorf("render:\n%s", out)
	}
	if out := Render(nil); out != "no differences\n" {
		t.Errorf("empty render = %q", out)
	}
}
