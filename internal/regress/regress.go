// Package regress compares two observability documents — run reports
// (metrics.WriteReportsJSON), timelines (timeline JSON), or bench
// snapshots (cmd/benchsnap) — metric by metric, with per-metric
// tolerances. It is the engine behind `dikes diff` and the CI
// report-regression gate: flatten both sides to sorted key→value maps,
// diff, and report every change outside tolerance.
package regress

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Kind is the detected document format.
type Kind string

const (
	KindReports  Kind = "reports"
	KindTimeline Kind = "timeline"
	KindBench    Kind = "bench"
)

// Doc is one parsed document flattened to metric keys.
type Doc struct {
	Kind   Kind
	Values map[string]float64
}

// Delta is one metric's comparison verdict.
type Delta struct {
	Key      string
	Old, New float64
	// Missing marks keys present on only one side (Old or New is NaN).
	Missing bool
	// Regressed marks deltas outside tolerance.
	Regressed bool
}

// reportsDoc mirrors metrics.WriteReportsJSON without importing its
// types: only the fields the diff needs.
type reportsDoc struct {
	Reports []struct {
		Name    string `json:"name"`
		Metrics struct {
			Scopes []struct {
				Name     string           `json:"name"`
				Counters map[string]int64 `json:"counters"`
				Gauges   map[string]int64 `json:"gauges"`
			} `json:"scopes"`
		} `json:"metrics"`
		Invariants []struct {
			Name string `json:"name"`
			OK   bool   `json:"ok"`
		} `json:"invariants"`
	} `json:"reports"`
}

// timelineDoc mirrors timeline.Timeline's JSON shape.
type timelineDoc struct {
	Bucket  int64     `json:"bucket"`
	Metrics []string  `json:"metrics"`
	Bins    [][]int64 `json:"bins"`
}

// benchDoc mirrors cmd/benchsnap's snapshot shape.
type benchDoc map[string]struct {
	NsPerOp     *float64           `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// Load reads and flattens one document, auto-detecting its format.
func Load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse flattens one document, auto-detecting its format: an object
// with "reports" is a run-report bundle, one with "bins" and "metrics"
// is a timeline, and any other object of benchmark entries is a bench
// snapshot.
func Parse(data []byte) (*Doc, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("not a JSON object: %w", err)
	}
	switch {
	case probe["reports"] != nil:
		var d reportsDoc
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("reports document: %w", err)
		}
		return flattenReports(d), nil
	case probe["bins"] != nil && probe["metrics"] != nil:
		var d timelineDoc
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("timeline document: %w", err)
		}
		return flattenTimeline(d), nil
	default:
		var d benchDoc
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("bench snapshot: %w", err)
		}
		return flattenBench(d), nil
	}
}

func flattenReports(d reportsDoc) *Doc {
	v := make(map[string]float64)
	for _, r := range d.Reports {
		for _, sc := range r.Metrics.Scopes {
			for name, val := range sc.Counters {
				v[r.Name+"."+sc.Name+"."+name] = float64(val)
			}
			for name, val := range sc.Gauges {
				v[r.Name+"."+sc.Name+"."+name] = float64(val)
			}
		}
		for _, inv := range r.Invariants {
			ok := 0.0
			if inv.OK {
				ok = 1.0
			}
			v[r.Name+".invariant."+inv.Name] = ok
		}
	}
	return &Doc{Kind: KindReports, Values: v}
}

func flattenTimeline(d timelineDoc) *Doc {
	v := make(map[string]float64)
	v["bucket_ns"] = float64(d.Bucket)
	v["bins"] = float64(len(d.Bins))
	for i, row := range d.Bins {
		for j, count := range row {
			if count == 0 {
				continue // dense zero rows would swamp the key space
			}
			name := "m" + itoa(j)
			if j < len(d.Metrics) {
				name = d.Metrics[j]
			}
			v[fmt.Sprintf("bin%04d.%s", i, name)] = float64(count)
		}
	}
	return &Doc{Kind: KindTimeline, Values: v}
}

func flattenBench(d benchDoc) *Doc {
	v := make(map[string]float64)
	for name, r := range d {
		if r.NsPerOp != nil {
			v[name+".ns_per_op"] = *r.NsPerOp
		}
		if r.BytesPerOp != nil {
			v[name+".bytes_per_op"] = *r.BytesPerOp
		}
		if r.AllocsPerOp != nil {
			v[name+".allocs_per_op"] = *r.AllocsPerOp
		}
		for unit, val := range r.Metrics {
			v[name+"."+unit] = val
		}
	}
	return &Doc{Kind: KindBench, Values: v}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Options tunes a comparison.
type Options struct {
	// Tolerance is the allowed relative change (e.g. 0.02 = 2%) before a
	// delta counts as a regression. For KindBench only increases count
	// (bigger ns/op is worse, smaller is an improvement); for reports and
	// timelines any out-of-tolerance change in either direction counts —
	// those documents are deterministic, so the default 0 means
	// "identical".
	Tolerance float64
	// PerKey overrides Tolerance for keys containing the map key as a
	// substring; the longest matching pattern wins.
	PerKey map[string]float64
}

// tolFor picks the tolerance for one key.
func (o Options) tolFor(key string) float64 {
	tol, best := o.Tolerance, -1
	for pat, t := range o.PerKey {
		if strings.Contains(key, pat) && len(pat) > best {
			tol, best = t, len(pat)
		}
	}
	return tol
}

// Compare diffs old against new. The returned deltas list every changed
// or one-sided key, sorted; regressions are flagged per Options.
func Compare(oldDoc, newDoc *Doc, opts Options) []Delta {
	increaseOnly := oldDoc.Kind == KindBench && newDoc.Kind == KindBench
	keys := make(map[string]bool, len(oldDoc.Values)+len(newDoc.Values))
	for k := range oldDoc.Values {
		keys[k] = true
	}
	for k := range newDoc.Values {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var deltas []Delta
	for _, k := range sorted {
		ov, oOK := oldDoc.Values[k]
		nv, nOK := newDoc.Values[k]
		switch {
		case !oOK:
			deltas = append(deltas, Delta{Key: k, Old: math.NaN(), New: nv, Missing: true})
		case !nOK:
			deltas = append(deltas, Delta{Key: k, Old: ov, New: math.NaN(), Missing: true, Regressed: true})
		case ov != nv:
			d := Delta{Key: k, Old: ov, New: nv}
			change := relChange(ov, nv)
			if increaseOnly {
				d.Regressed = change > opts.tolFor(k)
			} else {
				d.Regressed = math.Abs(change) > opts.tolFor(k)
			}
			deltas = append(deltas, d)
		}
	}
	return deltas
}

// relChange is (new-old)/old, with the zero-baseline edge defined as
// total change.
func relChange(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (nv - ov) / math.Abs(ov)
}

// AnyRegressed reports whether the diff contains a regression.
func AnyRegressed(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Render prints the deltas as an aligned table; regressions are flagged
// with "REGRESSED", new keys with "new", vanished keys with "missing".
func Render(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no differences\n"
	}
	var b strings.Builder
	for _, d := range deltas {
		switch {
		case d.Missing && math.IsNaN(d.New):
			fmt.Fprintf(&b, "%-60s %14g %14s  missing REGRESSED\n", d.Key, d.Old, "-")
		case d.Missing:
			fmt.Fprintf(&b, "%-60s %14s %14g  new\n", d.Key, "-", d.New)
		default:
			flag := ""
			if d.Regressed {
				flag = "  REGRESSED"
			}
			fmt.Fprintf(&b, "%-60s %14g %14g  %+.1f%%%s\n",
				d.Key, d.Old, d.New, 100*relChange(d.Old, d.New), flag)
		}
	}
	return b.String()
}
