package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts has one
// entry per bound plus a final overflow bin.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed sample, or 0 for an empty histogram
// (never NaN — per-round summaries aggregate empty rounds routinely).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]; out-of-range values are
// clamped) by nearest-rank bin selection with linear interpolation
// inside the bin. Edge cases are defined, not NaN:
//
//   - empty histogram: 0 for every q;
//   - single observation: every quantile coincides (the one bin's
//     interpolated midpoint estimate);
//   - rank lands in the overflow bin: the largest bound is returned (a
//     floor on the true quantile — the histogram holds no upper edge).
//
// The first bin's lower edge is taken as 0, matching the repository's
// non-negative (latency/count) bucket sets.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rank <= cum+c {
			if i >= len(h.Bounds) {
				// Overflow bin: no upper edge to interpolate toward.
				if len(h.Bounds) == 0 {
					return h.Mean()
				}
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	// Unreachable when Count matches the bin counts; be safe anyway.
	return h.Mean()
}

// HistogramSummary is a division-safe digest of a histogram snapshot.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize digests the snapshot. Safe on empty (all zeros) and
// single-observation histograms (all quantiles equal); see Quantile.
func (h HistogramSnapshot) Summarize() HistogramSummary {
	return HistogramSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// ScopeSnapshot is a point-in-time copy of one scope. encoding/json
// serializes maps with sorted keys, so marshaling a snapshot is
// deterministic.
type ScopeSnapshot struct {
	Name       string                       `json:"name"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s ScopeSnapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot is a full registry snapshot, scopes sorted by name.
type Snapshot struct {
	Scopes []ScopeSnapshot `json:"scopes"`
}

// Scope returns the named scope snapshot (zero value when absent).
func (s Snapshot) Scope(name string) ScopeSnapshot {
	for _, sc := range s.Scopes {
		if sc.Name == name {
			return sc
		}
	}
	return ScopeSnapshot{}
}

// MergeSnapshots folds several registry snapshots into one: scope names
// are unioned (sorted, preserving Snapshot's ordering contract), counters
// and gauges sum, and histograms with identical bounds merge bin-wise.
// The integer fields are order-independent by construction; histogram
// Sum is a float accumulator, so snapshots are folded in argument order —
// callers that need determinism (the sharded experiment engine, which
// merges per-shard snapshots in shard-index order) get it by passing a
// deterministic argument order. Histograms whose bounds disagree keep
// the first version seen; the repository never mixes bucket layouts
// under one metric name.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	names := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, snap := range snaps {
		for _, sc := range snap.Scopes {
			if !seen[sc.Name] {
				seen[sc.Name] = true
				names = append(names, sc.Name)
			}
		}
	}
	sort.Strings(names)

	var out Snapshot
	for _, name := range names {
		merged := ScopeSnapshot{Name: name}
		for _, snap := range snaps {
			for _, sc := range snap.Scopes {
				if sc.Name != name {
					continue
				}
				for k, v := range sc.Counters {
					if merged.Counters == nil {
						merged.Counters = make(map[string]int64)
					}
					merged.Counters[k] += v
				}
				for k, v := range sc.Gauges {
					if merged.Gauges == nil {
						merged.Gauges = make(map[string]int64)
					}
					merged.Gauges[k] += v
				}
				for k, h := range sc.Histograms {
					if merged.Histograms == nil {
						merged.Histograms = make(map[string]HistogramSnapshot)
					}
					cur, ok := merged.Histograms[k]
					if !ok {
						cp := HistogramSnapshot{
							Bounds: append([]float64(nil), h.Bounds...),
							Counts: append([]int64(nil), h.Counts...),
							Count:  h.Count,
							Sum:    h.Sum,
						}
						merged.Histograms[k] = cp
						continue
					}
					if !equalBounds(cur.Bounds, h.Bounds) {
						continue
					}
					for i := range h.Counts {
						cur.Counts[i] += h.Counts[i]
					}
					cur.Count += h.Count
					cur.Sum += h.Sum
					merged.Histograms[k] = cur
				}
			}
		}
		out.Scopes = append(out.Scopes, merged)
	}
	return out
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Invariant is one cross-component consistency check evaluated over a
// run's metrics. A failed invariant means the run's accounting is
// internally inconsistent — exactly the class of defect that silently
// skews per-round figures.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// EqualInt builds an equality invariant over two counts.
func EqualInt(name string, a, b int64, aLabel, bLabel string) Invariant {
	return Invariant{
		Name:   name,
		OK:     a == b,
		Detail: fmt.Sprintf("%s=%d %s=%d", aLabel, a, bLabel, b),
	}
}

// AtLeastInt builds an a >= b invariant over two counts.
func AtLeastInt(name string, a, b int64, aLabel, bLabel string) Invariant {
	return Invariant{
		Name:   name,
		OK:     a >= b,
		Detail: fmt.Sprintf("%s=%d %s=%d", aLabel, a, bLabel, b),
	}
}

// AllOK reports whether every invariant holds.
func AllOK(invs []Invariant) bool {
	for _, inv := range invs {
		if !inv.OK {
			return false
		}
	}
	return true
}

// Report is one run's structured result: identifying labels, the full
// metrics snapshot, and the invariant verdicts. Reports carry no
// wall-clock timestamps, so two runs of the same seed marshal to
// identical bytes regardless of worker count or machine.
type Report struct {
	// Name identifies the run (e.g. "ddos-B", "caching-ttl3600").
	Name string `json:"name"`
	// Labels carry run parameters as strings (probes, seed, ttl, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Metrics is the run's registry snapshot.
	Metrics Snapshot `json:"metrics"`
	// Invariants are the cross-component consistency verdicts.
	Invariants []Invariant `json:"invariants,omitempty"`
}

// OK reports whether every invariant in the report holds.
func (r *Report) OK() bool { return AllOK(r.Invariants) }

// FailedInvariants returns the invariants that do not hold.
func (r *Report) FailedInvariants() []Invariant {
	var out []Invariant
	for _, inv := range r.Invariants {
		if !inv.OK {
			out = append(out, inv)
		}
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReportsJSON writes several run reports as one indented JSON
// document: {"reports": [...]}.
func WriteReportsJSON(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Reports []*Report `json:"reports"`
	}{Reports: reports})
}
