package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts has one
// entry per bound plus a final overflow bin.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// ScopeSnapshot is a point-in-time copy of one scope. encoding/json
// serializes maps with sorted keys, so marshaling a snapshot is
// deterministic.
type ScopeSnapshot struct {
	Name       string                       `json:"name"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s ScopeSnapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot is a full registry snapshot, scopes sorted by name.
type Snapshot struct {
	Scopes []ScopeSnapshot `json:"scopes"`
}

// Scope returns the named scope snapshot (zero value when absent).
func (s Snapshot) Scope(name string) ScopeSnapshot {
	for _, sc := range s.Scopes {
		if sc.Name == name {
			return sc
		}
	}
	return ScopeSnapshot{}
}

// Invariant is one cross-component consistency check evaluated over a
// run's metrics. A failed invariant means the run's accounting is
// internally inconsistent — exactly the class of defect that silently
// skews per-round figures.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// EqualInt builds an equality invariant over two counts.
func EqualInt(name string, a, b int64, aLabel, bLabel string) Invariant {
	return Invariant{
		Name:   name,
		OK:     a == b,
		Detail: fmt.Sprintf("%s=%d %s=%d", aLabel, a, bLabel, b),
	}
}

// AtLeastInt builds an a >= b invariant over two counts.
func AtLeastInt(name string, a, b int64, aLabel, bLabel string) Invariant {
	return Invariant{
		Name:   name,
		OK:     a >= b,
		Detail: fmt.Sprintf("%s=%d %s=%d", aLabel, a, bLabel, b),
	}
}

// AllOK reports whether every invariant holds.
func AllOK(invs []Invariant) bool {
	for _, inv := range invs {
		if !inv.OK {
			return false
		}
	}
	return true
}

// Report is one run's structured result: identifying labels, the full
// metrics snapshot, and the invariant verdicts. Reports carry no
// wall-clock timestamps, so two runs of the same seed marshal to
// identical bytes regardless of worker count or machine.
type Report struct {
	// Name identifies the run (e.g. "ddos-B", "caching-ttl3600").
	Name string `json:"name"`
	// Labels carry run parameters as strings (probes, seed, ttl, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Metrics is the run's registry snapshot.
	Metrics Snapshot `json:"metrics"`
	// Invariants are the cross-component consistency verdicts.
	Invariants []Invariant `json:"invariants,omitempty"`
}

// OK reports whether every invariant in the report holds.
func (r *Report) OK() bool { return AllOK(r.Invariants) }

// FailedInvariants returns the invariants that do not hold.
func (r *Report) FailedInvariants() []Invariant {
	var out []Invariant
	for _, inv := range r.Invariants {
		if !inv.OK {
			out = append(out, inv)
		}
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReportsJSON writes several run reports as one indented JSON
// document: {"reports": [...]}.
func WriteReportsJSON(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Reports []*Report `json:"reports"`
	}{Reports: reports})
}
