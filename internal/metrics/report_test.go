package metrics

import (
	"math"
	"testing"
)

func snapshotOf(bounds []float64, samples ...float64) HistogramSnapshot {
	var h Histogram
	h.Init(bounds)
	for _, v := range samples {
		h.Observe(v)
	}
	return h.Snapshot()
}

// TestHistogramSummaryEmpty pins the division-safe contract: an empty
// histogram summarizes to all zeros, never NaN — per-round summaries
// aggregate empty rounds routinely.
func TestHistogramSummaryEmpty(t *testing.T) {
	s := snapshotOf([]float64{10, 100})
	if got := s.Mean(); got != 0 {
		t.Errorf("Mean of empty = %v, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) of empty = %v, want 0", q, got)
		}
	}
	sum := s.Summarize()
	if sum.Count != 0 || sum.Mean != 0 || sum.P50 != 0 || sum.P90 != 0 || sum.P99 != 0 {
		t.Errorf("Summarize of empty = %+v, want all zeros", sum)
	}
	for _, v := range []float64{sum.Mean, sum.P50, sum.P90, sum.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty summary produced NaN/Inf: %+v", sum)
		}
	}
}

// TestHistogramSummarySingle: with one observation every quantile must
// coincide (the sole bin's interpolated estimate) and the mean is exact.
func TestHistogramSummarySingle(t *testing.T) {
	s := snapshotOf([]float64{10, 100, 1000}, 42)
	if got := s.Mean(); got != 42 {
		t.Errorf("Mean = %v, want 42", got)
	}
	sum := s.Summarize()
	if sum.Count != 1 {
		t.Fatalf("Count = %d, want 1", sum.Count)
	}
	if sum.P50 != sum.P90 || sum.P90 != sum.P99 {
		t.Errorf("single-observation quantiles differ: %+v", sum)
	}
	// The observation landed in the (10, 100] bin; the interpolated
	// estimate must stay inside it.
	if sum.P50 <= 10 || sum.P50 > 100 {
		t.Errorf("P50 = %v, want within the observation's bin (10, 100]", sum.P50)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	// 100 samples uniform over bins: quantiles must be monotone and land
	// in sensible bins.
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	s := snapshotOf([]float64{25, 50, 75, 100}, samples...)
	p50, p90, p99 := s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	if p50 <= 25 || p50 > 75 {
		t.Errorf("p50 = %v, want near the median bin", p50)
	}
	if p99 <= 75 {
		t.Errorf("p99 = %v, want in the top bin", p99)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

// TestHistogramQuantileOverflowBin: when the rank lands past the last
// bound, Quantile returns the largest bound (a floor, not NaN or +Inf).
func TestHistogramQuantileOverflowBin(t *testing.T) {
	s := snapshotOf([]float64{10}, 5000, 6000, 7000)
	for _, q := range []float64{0.5, 0.99} {
		if got := s.Quantile(q); got != 10 {
			t.Errorf("Quantile(%v) = %v, want 10 (largest bound as floor)", q, got)
		}
	}
	// No bounds at all: every sample is in the overflow bin; fall back to
	// the mean rather than inventing an edge.
	nb := snapshotOf(nil, 3, 5)
	if got := nb.Quantile(0.5); got != 4 {
		t.Errorf("boundless Quantile = %v, want mean fallback 4", got)
	}
}

func TestHistogramQuantileClampsRange(t *testing.T) {
	s := snapshotOf([]float64{10, 100}, 1, 2, 3)
	if got, want := s.Quantile(-0.5), s.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := s.Quantile(1.5), s.Quantile(1); got != want {
		t.Errorf("Quantile(1.5) = %v, want clamp to Quantile(1) = %v", got, want)
	}
}
