// Package metrics is a zero-dependency instrumentation layer for the
// simulator: atomic counters, gauges, and fixed-bin histograms that
// components embed as plain struct fields (so the hot paths allocate
// nothing and need no registration), plus named per-component scopes and
// a per-run registry that the experiment runners snapshot into a
// machine-readable run report (report.go).
//
// The design splits instrumentation from collection:
//
//   - Components (resolver, cache, authoritative, netsim, clock, vantage)
//     embed Counter/Histogram values directly in their structs and
//     increment them inline. Inc/Observe are single atomic operations —
//     no map lookups, no allocations, no sink required.
//
//   - At collection time (end of a run), each component folds its values
//     into a named Scope of the run's Registry via its CollectMetrics
//     method. One registry exists per experiment run, so parallel runs
//     never share metric state and reports are bit-for-bit deterministic
//     for a given seed at any worker count.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so components embed it by value.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only when folding snapshots; live code
// paths should treat counters as monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBucketsMs are the fixed upper bin edges (milliseconds)
// used for every latency histogram in the repository. The range covers a
// same-rack round trip up to the resolver client timeout; the paper's
// latency figures (9, 15) live comfortably inside it.
var DefaultLatencyBucketsMs = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// maxHistogramBins bounds a histogram's bin count (bounds plus the
// overflow bin). The bins live in a fixed inline array so Init allocates
// nothing — components embed histograms by value, and hundreds of
// resolvers are built per simulated run.
const maxHistogramBins = 16

// Histogram is a fixed-bin histogram with atomic bin counts. Init must be
// called once before Observe; a Histogram is embeddable by value and all
// methods are safe for concurrent use after Init.
type Histogram struct {
	bounds []float64 // ascending upper bin edges; values above the last land in the overflow bin
	counts [maxHistogramBins]atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Init sets the bin edges. bounds must be ascending with at most
// maxHistogramBins-1 entries; the slice is aliased, not copied (callers
// pass shared package-level bucket sets).
func (h *Histogram) Init(bounds []float64) {
	if len(bounds) >= maxHistogramBins {
		panic("metrics: too many histogram bounds")
	}
	h.bounds = bounds
}

// bins returns the number of live bins (bounds plus overflow).
func (h *Histogram) bins() int { return len(h.bounds) + 1 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear scan only for large bucket sets; the
	// fixed sets here are small, but sort.SearchFloat64s stays allocation
	// free and keeps the bins ordered by construction.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Merge folds o's samples into h. Both histograms must share identical
// bin edges (the repository uses shared package-level bucket sets, so
// mismatches are programming errors and panic).
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("metrics: merging histograms with different bounds")
	}
	for i := 0; i < o.bins(); i++ {
		if d := o.counts[i].Load(); d != 0 {
			h.counts[i].Add(d)
		}
	}
	h.n.Add(o.n.Load())
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Snapshot returns a copyable view of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, h.bins()),
		Count:  h.n.Load(),
		Sum:    h.Sum(),
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Scope is a named group of metrics (one per component kind). Lookups are
// get-or-create; the collection path is the only caller, so the mutex is
// never on a simulation hot path.
type Scope struct {
	name string

	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewScope creates an empty scope.
func NewScope(name string) *Scope {
	return &Scope{
		name:   name,
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Name returns the scope's name.
func (s *Scope) Name() string { return s.name }

// Counter returns the named counter, creating it at zero on first use.
func (s *Scope) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.ctrs[name]
	if !ok {
		c = new(Counter)
		s.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (s *Scope) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = new(Gauge)
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Later calls ignore bounds (the first registration wins).
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = new(Histogram)
		h.Init(bounds)
		s.hists[name] = h
	}
	return h
}

// Snapshot returns a deterministic copy of the scope's current values.
func (s *Scope) Snapshot() ScopeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ScopeSnapshot{Name: s.name}
	if len(s.ctrs) > 0 {
		snap.Counters = make(map[string]int64, len(s.ctrs))
		for name, c := range s.ctrs {
			snap.Counters[name] = c.Value()
		}
	}
	if len(s.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(s.gauges))
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(s.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(s.hists))
		for name, h := range s.hists {
			snap.Histograms[name] = h.Snapshot()
		}
	}
	return snap
}

// Registry is one run's set of scopes. Each experiment run owns exactly
// one registry, assembled at collection time from the run's component
// instances, so parallel runs never share metric state.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

// Scope returns the named scope, creating it on first use.
func (r *Registry) Scope(name string) *Scope {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scopes[name]
	if !ok {
		s = NewScope(name)
		r.scopes[name] = s
	}
	return s
}

// Snapshot returns a deterministic copy of every scope, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.scopes))
	for name := range r.scopes {
		names = append(names, name)
	}
	scopes := make([]*Scope, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		scopes = append(scopes, r.scopes[name])
	}
	r.mu.Unlock()

	snap := Snapshot{Scopes: make([]ScopeSnapshot, 0, len(scopes))}
	for _, s := range scopes {
		snap.Scopes = append(snap.Scopes, s.Snapshot())
	}
	return snap
}
