package metrics

import (
	"bytes"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	var h Histogram
	h.Init([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 99, 100, 101, 1e6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper-inclusive edges: [<=1, <=10, <=100, overflow].
	want := []int64{2, 2, 3, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
	if s.Sum < 1e6 {
		t.Errorf("sum = %v, want > 1e6", s.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Init(DefaultLatencyBucketsMs)
	b.Init(DefaultLatencyBucketsMs)
	a.Observe(3)
	b.Observe(3)
	b.Observe(700)
	a.Merge(&b)
	if got := a.Count(); got != 3 {
		t.Errorf("merged count = %d, want 3", got)
	}
	if got := a.Sum(); got != 706 {
		t.Errorf("merged sum = %v, want 706", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	h.Init([]float64{10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got != 8000 {
		t.Errorf("sum = %v, want 8000", got)
	}
}

// TestHotPathAllocationFree pins the tentpole's performance contract: with
// no report sink attached (i.e. just incrementing embedded metrics), the
// instrument operations allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	var h Histogram
	h.Init(DefaultLatencyBucketsMs)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12.5) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Scope("zulu").Counter("b").Add(2)
		r.Scope("alpha").Counter("a").Add(1)
		r.Scope("alpha").Histogram("h", DefaultLatencyBucketsMs).Observe(5)
		return r.Snapshot()
	}
	a, b := build(), build()
	if a.Scopes[0].Name != "alpha" || a.Scopes[1].Name != "zulu" {
		t.Errorf("scopes not sorted: %v, %v", a.Scopes[0].Name, a.Scopes[1].Name)
	}
	ja := marshal(t, &Report{Name: "x", Metrics: a})
	jb := marshal(t, &Report{Name: "x", Metrics: b})
	if !bytes.Equal(ja, jb) {
		t.Errorf("identical registries marshal differently:\n%s\nvs\n%s", ja, jb)
	}
}

func marshal(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestInvariants(t *testing.T) {
	ok := EqualInt("eq", 5, 5, "a", "b")
	if !ok.OK {
		t.Errorf("EqualInt(5,5) not OK")
	}
	bad := EqualInt("eq", 5, 6, "a", "b")
	if bad.OK {
		t.Errorf("EqualInt(5,6) OK")
	}
	if bad.Detail != "a=5 b=6" {
		t.Errorf("detail = %q", bad.Detail)
	}
	if !AtLeastInt("ge", 6, 5, "a", "b").OK || AtLeastInt("ge", 4, 5, "a", "b").OK {
		t.Errorf("AtLeastInt wrong")
	}
	if AllOK([]Invariant{ok, bad}) {
		t.Errorf("AllOK with a failed invariant")
	}
	r := &Report{Invariants: []Invariant{ok, bad}}
	if r.OK() {
		t.Errorf("report OK with failed invariant")
	}
	if got := r.FailedInvariants(); len(got) != 1 || got[0].Detail != "a=5 b=6" {
		t.Errorf("FailedInvariants = %+v", got)
	}
}
