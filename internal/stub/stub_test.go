package stub

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

// echoServer answers every query with a fixed AAAA record.
func echoServer(t *testing.T, net *netsim.Network, addr netsim.Addr) {
	t.Helper()
	var port *netsim.Port
	port = net.Bind(addr, func(src netsim.Addr, payload []byte) {
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Response {
			return
		}
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: q.Question1().Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::1")},
		})
		wire, err := resp.Pack()
		if err != nil {
			t.Errorf("pack: %v", err)
			return
		}
		port.Send(src, wire)
	})
}

func TestQueryAnswered(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	echoServer(t, net, "10.0.0.53")
	c := New(clk, Config{})
	c.Attach(net, "10.9.0.1")

	var got Result
	c.Query("10.0.0.53", "probe1.cachetest.nl.", dnswire.TypeAAAA, func(r Result) { got = r })
	clk.Run()
	if got.Err != nil {
		t.Fatalf("err = %v", got.Err)
	}
	if len(got.Msg.Answers) != 1 {
		t.Fatalf("answers = %v", got.Msg.Answers)
	}
	if got.RTT <= 0 {
		t.Errorf("RTT = %v", got.RTT)
	}
	if got.Server != "10.0.0.53" {
		t.Errorf("server = %v", got.Server)
	}
}

func TestQueryTimeout(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	c := New(clk, Config{})
	c.Attach(net, "10.9.0.1")
	var got Result
	c.Query("10.0.0.53", "x.nl.", dnswire.TypeA, func(r Result) { got = r })
	clk.Run()
	if got.Err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if got.RTT != DefaultTimeout {
		t.Errorf("RTT = %v, want %v", got.RTT, DefaultTimeout)
	}
}

func TestQueryRetries(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	received := 0
	net.Bind("10.0.0.53", func(netsim.Addr, []byte) { received++ })
	c := New(clk, Config{Timeout: time.Second, Retries: 2})
	c.Attach(net, "10.9.0.1")
	var got Result
	c.Query("10.0.0.53", "x.nl.", dnswire.TypeA, func(r Result) { got = r })
	clk.Run()
	if received != 3 {
		t.Errorf("server received %d queries, want 3", received)
	}
	if got.Err != ErrTimeout {
		t.Errorf("err = %v", got.Err)
	}
}

func TestLateAndForeignResponsesIgnored(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	// Server replies from a different address than queried.
	var port *netsim.Port
	port = net.Bind("10.0.0.53", func(src netsim.Addr, payload []byte) {
		q, _ := dnswire.Unpack(payload)
		resp := dnswire.NewResponse(q)
		wire, _ := resp.Pack()
		// Send from the wrong source.
		net.Send("10.0.0.99", src, wire)
		_ = port
	})
	c := New(clk, Config{Timeout: time.Second})
	c.Attach(net, "10.9.0.1")
	var got Result
	c.Query("10.0.0.53", "x.nl.", dnswire.TypeA, func(r Result) { got = r })
	clk.Run()
	if got.Err != ErrTimeout {
		t.Errorf("accepted response from wrong server: %+v", got)
	}
}

// TestIDWraparoundSkipsZero parks the allocator just below the 16-bit
// wraparound with the last ID busy, so the busy-scan must step
// 65535 -> 0 -> 1. Pre-fix, the scan incremented straight onto the
// reserved ID 0 and assigned it.
func TestIDWraparoundSkipsZero(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	echoServer(t, net, "10.0.0.53")
	c := New(clk, Config{})
	c.Attach(net, "10.9.0.1")

	blocker := &pending{}
	c.nextID = 65534
	c.inflight[65535] = blocker

	var got Result
	c.Query("10.0.0.53", "wrap.cachetest.nl.", dnswire.TypeAAAA, func(r Result) { got = r })
	if _, busy := c.inflight[0]; busy {
		t.Fatal("allocator assigned the reserved ID 0")
	}
	if p, busy := c.inflight[1]; !busy || p == blocker {
		t.Fatalf("expected the query at ID 1 after wraparound; got %v", c.inflight)
	}
	delete(c.inflight, 65535)
	clk.Run()
	if got.Err != nil || got.Msg == nil {
		t.Fatalf("query did not complete: %+v", got)
	}
}

func TestConcurrentQueriesKeepIDsDistinct(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	echoServer(t, net, "10.0.0.53")
	c := New(clk, Config{})
	c.Attach(net, "10.9.0.1")
	results := 0
	for i := 0; i < 100; i++ {
		c.Query("10.0.0.53", "x.nl.", dnswire.TypeAAAA, func(r Result) {
			if r.Err == nil {
				results++
			}
		})
	}
	clk.Run()
	if results != 100 {
		t.Errorf("answered %d/100", results)
	}
}
