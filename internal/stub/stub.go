// Package stub implements the client side of DNS resolution: a minimal
// stub resolver that sends one query to a recursive resolver and waits for
// the answer with a timeout, like the RIPE Atlas probes the paper measures
// from (5 s timeout, reporting "no answer" on expiry, §3.2).
package stub

import (
	"errors"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// ErrTimeout is reported when no response arrives within the deadline.
var ErrTimeout = errors.New("stub: query timed out")

// ErrTruncated is reported when the response came back TC=1 and TCP
// fallback was disabled (or unavailable): the data sections were
// stripped to fit the UDP limit, so there is no usable answer.
var ErrTruncated = errors.New("stub: response truncated, no TCP fallback")

// DefaultTimeout matches the Atlas probe DNS timeout.
const DefaultTimeout = 5 * time.Second

// Result is the outcome of one query.
type Result struct {
	// Msg is the response, nil on timeout.
	Msg *dnswire.Message
	// Err is non-nil on timeout or an unusable truncated response.
	Err error
	// RTT is the time from send to response (or to the timeout).
	RTT time.Duration
	// Server is the recursive that was queried.
	Server netsim.Addr
	// Truncated marks a TC=1 response that could not be retried over
	// TCP. Msg still carries the stripped response for inspection, but
	// it must never be classified as an answer.
	Truncated bool
	// TCP marks an answer obtained over the TCP plane (a TC fallback).
	TCP bool
}

// Config tunes a Client.
type Config struct {
	// Timeout per attempt; default DefaultTimeout.
	Timeout time.Duration
	// Retries re-sends the query on timeout this many extra times.
	// Atlas probes use 0.
	Retries int
	// EDNSSize, when non-zero, advertises this EDNS0 UDP payload size on
	// queries (RFC 6891), raising the server's truncation threshold
	// above the classic 512 octets.
	EDNSSize uint16
	// TCPFallback retries a TC=1 response over the simulated TCP plane
	// (RFC 7766) instead of reporting it as truncated. Requires a TCP
	// transport (Attach binds one; SetTCPConn for custom transports).
	TCPFallback bool
}

// Client is a stub resolver bound to one address.
type Client struct {
	clk     clock.Clock
	cfg     Config
	conn    netsim.Conn
	tcpConn netsim.Conn
	nextID  uint16
	trace   *trace.Buffer
	// inflight maps message IDs to pending queries.
	inflight map[uint16]*pending
}

type pending struct {
	id      uint16
	span    uint16 // first attempt's ID; stable across retries for tracing
	server  netsim.Addr
	sentAt  time.Time
	timer   clock.Timer
	retries int
	attempt int
	tcp     bool // current attempt rides the TCP plane (TC fallback)
	name    string
	qtype   dnswire.Type
	started time.Time
	cb      func(Result)
}

// New creates a stub client on clk.
func New(clk clock.Clock, cfg Config) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Client{clk: clk, cfg: cfg, inflight: make(map[uint16]*pending)}
}

// Attach binds the client at addr on the simulated network; with
// Config.TCPFallback armed it binds the TCP plane too, so TC=1 fallback
// works out of the box (SetTCPConn binds the TCP plane independently).
func (c *Client) Attach(net *netsim.Network, addr netsim.Addr) {
	c.conn = net.Bind(addr, c.Receive)
	if c.cfg.TCPFallback {
		c.tcpConn = net.BindTCP(addr, c.Receive)
	}
}

// SetConn binds the client to an existing transport.
func (c *Client) SetConn(conn netsim.Conn) { c.conn = conn }

// SetTCPConn binds the client's TCP-plane transport (nil disables TC
// fallback).
func (c *Client) SetTCPConn(conn netsim.Conn) { c.tcpConn = conn }

// SetTrace enables query-lifecycle tracing (nil disables).
func (c *Client) SetTrace(tr *trace.Buffer) { c.trace = tr }

// Receive is the raw packet entry point (both planes: responses are
// matched by ID, which is transport-agnostic).
func (c *Client) Receive(src netsim.Addr, payload []byte) {
	m, err := dnswire.Unpack(payload)
	if err != nil || !m.Response {
		return
	}
	p, ok := c.inflight[m.ID]
	if !ok || p.server != src {
		return
	}
	delete(c.inflight, m.ID)
	p.timer.Stop()
	if m.Truncated && !p.tcp {
		// TC=1 is not an answer: the server stripped the data sections to
		// fit the UDP limit. Retry over TCP, or report it as truncated —
		// never hand it to the callback as a final response.
		if c.cfg.TCPFallback && c.tcpConn != nil {
			if tr := c.trace; tr != nil {
				tr.Emit(trace.Event{Type: trace.EvTCPFallback,
					Probe: trace.ProbeFromName(p.name), B: uint32(p.span),
					Name: p.name, Dst: string(p.server)})
			}
			p.tcp = true
			c.sendAttempt(p)
			return
		}
		if tr := c.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvTruncate,
				Probe: trace.ProbeFromName(p.name), B: uint32(p.span),
				Name: p.name, Src: string(src)})
		}
		p.cb(Result{Msg: m, Err: ErrTruncated, Truncated: true,
			RTT: c.clk.Now().Sub(p.started), Server: src})
		return
	}
	if tr := c.trace; tr != nil {
		probe := trace.ProbeFromName(p.name)
		ev := trace.Event{Type: trace.EvStubAnswer, Probe: probe,
			A: uint32(m.RCode), B: uint32(p.span), Name: p.name, Src: string(src)}
		if m.RCode == dnswire.RCodeServFail {
			tr.Force(ev) // terminal failures are never sampled out
		} else {
			tr.Emit(ev)
		}
	}
	p.cb(Result{Msg: m, RTT: c.clk.Now().Sub(p.started), Server: src, TCP: p.tcp})
}

// Query sends a recursive query for (name, qtype) to server. cb runs
// exactly once with the response or a timeout error.
func (c *Client) Query(server netsim.Addr, name string, qtype dnswire.Type, cb func(Result)) {
	p := &pending{
		server: server, retries: c.cfg.Retries,
		name: name, qtype: qtype,
		started: c.clk.Now(), cb: cb,
	}
	c.sendAttempt(p)
}

func (c *Client) sendAttempt(p *pending) {
	for {
		c.nextID++
		if c.nextID == 0 {
			// ID 0 is the "never in flight" sentinel and must be skipped
			// on every wraparound, including mid-busy-scan.
			continue
		}
		if _, busy := c.inflight[c.nextID]; !busy {
			break
		}
	}
	p.id = c.nextID
	p.sentAt = c.clk.Now()
	c.inflight[p.id] = p
	p.attempt++
	if p.attempt == 1 {
		p.span = p.id
	}
	if tr := c.trace; tr != nil {
		probe := trace.ProbeFromName(p.name)
		if p.attempt == 1 {
			tr.Emit(trace.Event{Type: trace.EvStubIssue, Probe: probe,
				A: uint32(p.qtype), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		} else {
			tr.Emit(trace.Event{Type: trace.EvStubRetry, Probe: probe,
				A: uint32(p.attempt), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		}
	}

	q := dnswire.NewQuery(p.id, p.name, p.qtype)
	if c.cfg.EDNSSize > 0 {
		q.AddEDNS(c.cfg.EDNSSize, false)
	}
	wire, err := q.Pack()
	if err != nil {
		delete(c.inflight, p.id)
		p.cb(Result{Err: err, Server: p.server})
		return
	}
	p.timer = c.clk.AfterFunc(c.cfg.Timeout, func() {
		if c.inflight[p.id] != p {
			return
		}
		delete(c.inflight, p.id)
		if p.retries > 0 {
			p.retries--
			c.sendAttempt(p)
			return
		}
		if tr := c.trace; tr != nil {
			// Timeouts stay behind sampling: under a 90%-loss attack most
			// queries expire, and forcing them all would defeat the
			// sampling memory bound. SERVFAILs (rare, terminal) are forced.
			tr.Emit(trace.Event{Type: trace.EvStubTimeout, Probe: trace.ProbeFromName(p.name),
				A: uint32(p.attempt), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		}
		p.cb(Result{Err: ErrTimeout, RTT: c.clk.Now().Sub(p.started), Server: p.server})
	})
	if p.tcp {
		c.tcpConn.Send(p.server, wire)
		return
	}
	c.conn.Send(p.server, wire)
}
