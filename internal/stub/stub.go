// Package stub implements the client side of DNS resolution: a minimal
// stub resolver that sends one query to a recursive resolver and waits for
// the answer with a timeout, like the RIPE Atlas probes the paper measures
// from (5 s timeout, reporting "no answer" on expiry, §3.2).
package stub

import (
	"errors"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// ErrTimeout is reported when no response arrives within the deadline.
var ErrTimeout = errors.New("stub: query timed out")

// DefaultTimeout matches the Atlas probe DNS timeout.
const DefaultTimeout = 5 * time.Second

// Result is the outcome of one query.
type Result struct {
	// Msg is the response, nil on timeout.
	Msg *dnswire.Message
	// Err is non-nil on timeout.
	Err error
	// RTT is the time from send to response (or to the timeout).
	RTT time.Duration
	// Server is the recursive that was queried.
	Server netsim.Addr
}

// Config tunes a Client.
type Config struct {
	// Timeout per attempt; default DefaultTimeout.
	Timeout time.Duration
	// Retries re-sends the query on timeout this many extra times.
	// Atlas probes use 0.
	Retries int
}

// Client is a stub resolver bound to one address.
type Client struct {
	clk    clock.Clock
	cfg    Config
	conn   netsim.Conn
	nextID uint16
	trace  *trace.Buffer
	// inflight maps message IDs to pending queries.
	inflight map[uint16]*pending
}

type pending struct {
	id      uint16
	span    uint16 // first attempt's ID; stable across retries for tracing
	server  netsim.Addr
	sentAt  time.Time
	timer   clock.Timer
	retries int
	attempt int
	name    string
	qtype   dnswire.Type
	started time.Time
	cb      func(Result)
}

// New creates a stub client on clk.
func New(clk clock.Clock, cfg Config) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Client{clk: clk, cfg: cfg, inflight: make(map[uint16]*pending)}
}

// Attach binds the client at addr on the simulated network.
func (c *Client) Attach(net *netsim.Network, addr netsim.Addr) {
	c.conn = net.Bind(addr, c.Receive)
}

// SetConn binds the client to an existing transport.
func (c *Client) SetConn(conn netsim.Conn) { c.conn = conn }

// SetTrace enables query-lifecycle tracing (nil disables).
func (c *Client) SetTrace(tr *trace.Buffer) { c.trace = tr }

// Receive is the raw packet entry point.
func (c *Client) Receive(src netsim.Addr, payload []byte) {
	m, err := dnswire.Unpack(payload)
	if err != nil || !m.Response {
		return
	}
	p, ok := c.inflight[m.ID]
	if !ok || p.server != src {
		return
	}
	delete(c.inflight, m.ID)
	p.timer.Stop()
	if tr := c.trace; tr != nil {
		probe := trace.ProbeFromName(p.name)
		ev := trace.Event{Type: trace.EvStubAnswer, Probe: probe,
			A: uint32(m.RCode), B: uint32(p.span), Name: p.name, Src: string(src)}
		if m.RCode == dnswire.RCodeServFail {
			tr.Force(ev) // terminal failures are never sampled out
		} else {
			tr.Emit(ev)
		}
	}
	p.cb(Result{Msg: m, RTT: c.clk.Now().Sub(p.started), Server: src})
}

// Query sends a recursive query for (name, qtype) to server. cb runs
// exactly once with the response or a timeout error.
func (c *Client) Query(server netsim.Addr, name string, qtype dnswire.Type, cb func(Result)) {
	p := &pending{
		server: server, retries: c.cfg.Retries,
		name: name, qtype: qtype,
		started: c.clk.Now(), cb: cb,
	}
	c.sendAttempt(p)
}

func (c *Client) sendAttempt(p *pending) {
	for {
		c.nextID++
		if c.nextID == 0 {
			// ID 0 is the "never in flight" sentinel and must be skipped
			// on every wraparound, including mid-busy-scan.
			continue
		}
		if _, busy := c.inflight[c.nextID]; !busy {
			break
		}
	}
	p.id = c.nextID
	p.sentAt = c.clk.Now()
	c.inflight[p.id] = p
	p.attempt++
	if p.attempt == 1 {
		p.span = p.id
	}
	if tr := c.trace; tr != nil {
		probe := trace.ProbeFromName(p.name)
		if p.attempt == 1 {
			tr.Emit(trace.Event{Type: trace.EvStubIssue, Probe: probe,
				A: uint32(p.qtype), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		} else {
			tr.Emit(trace.Event{Type: trace.EvStubRetry, Probe: probe,
				A: uint32(p.attempt), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		}
	}

	q := dnswire.NewQuery(p.id, p.name, p.qtype)
	wire, err := q.Pack()
	if err != nil {
		delete(c.inflight, p.id)
		p.cb(Result{Err: err, Server: p.server})
		return
	}
	p.timer = c.clk.AfterFunc(c.cfg.Timeout, func() {
		if c.inflight[p.id] != p {
			return
		}
		delete(c.inflight, p.id)
		if p.retries > 0 {
			p.retries--
			c.sendAttempt(p)
			return
		}
		if tr := c.trace; tr != nil {
			// Timeouts stay behind sampling: under a 90%-loss attack most
			// queries expire, and forcing them all would defeat the
			// sampling memory bound. SERVFAILs (rare, terminal) are forced.
			tr.Emit(trace.Event{Type: trace.EvStubTimeout, Probe: trace.ProbeFromName(p.name),
				A: uint32(p.attempt), B: uint32(p.span), Name: p.name, Dst: string(p.server)})
		}
		p.cb(Result{Err: ErrTimeout, RTT: c.clk.Now().Sub(p.started), Server: p.server})
	})
	c.conn.Send(p.server, wire)
}
