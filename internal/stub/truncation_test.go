package stub

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// truncServer answers UDP queries with TC=1 (data sections stripped, OPT
// echoed when the query carried one) and, when tcp is set, serves the
// complete answer on the TCP plane.
func truncServer(t *testing.T, net *netsim.Network, addr netsim.Addr, tcp bool) {
	t.Helper()
	answer := func(q *dnswire.Message, truncate bool) []byte {
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		if truncate {
			resp.Truncated = true
			if size, do, ok := q.EDNS(); ok {
				resp.AddEDNS(size, do)
			}
		} else {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: q.Question1().Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::1")},
			})
		}
		wire, err := resp.Pack()
		if err != nil {
			t.Errorf("pack: %v", err)
		}
		return wire
	}
	var port *netsim.Port
	port = net.Bind(addr, func(src netsim.Addr, payload []byte) {
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Response {
			return
		}
		port.Send(src, answer(q, true))
	})
	if !tcp {
		return
	}
	var tport *netsim.TCPPort
	tport = net.BindTCP(addr, func(src netsim.Addr, payload []byte) {
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Response {
			return
		}
		tport.Send(src, answer(q, false))
	})
}

// TestTruncatedNotFinal is the TC=1 regression test: a truncated
// response with fallback disabled must surface as ErrTruncated — never
// as a successful answer. Pre-fix, the stub delivered the stripped TC=1
// message to the callback as the final result.
func TestTruncatedNotFinal(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	truncServer(t, net, "10.0.0.53", false)
	c := New(clk, Config{EDNSSize: 1232})
	c.Attach(net, "10.9.0.1")

	var got Result
	c.Query("10.0.0.53", "probe1.cachetest.nl.", dnswire.TypeAAAA, func(r Result) { got = r })
	clk.Run()
	if got.Err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", got.Err)
	}
	if !got.Truncated {
		t.Error("Result.Truncated not set")
	}
	if got.Msg == nil || !got.Msg.Truncated {
		t.Errorf("Msg = %+v, want the stripped TC=1 response for inspection", got.Msg)
	}
}

// TestTCPFallbackRecovers checks the retry leg: with TCPFallback on, a
// TC=1 response triggers a TCP retry and the complete answer comes back
// flagged as obtained over TCP.
func TestTCPFallbackRecovers(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	truncServer(t, net, "10.0.0.53", true)
	c := New(clk, Config{EDNSSize: 1232, TCPFallback: true})
	c.Attach(net, "10.9.0.1")

	var got Result
	c.Query("10.0.0.53", "probe1.cachetest.nl.", dnswire.TypeAAAA, func(r Result) { got = r })
	clk.Run()
	if got.Err != nil {
		t.Fatalf("err = %v", got.Err)
	}
	if !got.TCP {
		t.Error("Result.TCP not set on a fallback answer")
	}
	if len(got.Msg.Answers) != 1 {
		t.Fatalf("answers = %v", got.Msg.Answers)
	}
	if s := net.Stats(); s.TCPSent != 2 || s.TCPDelivered != 2 {
		t.Errorf("tcp stats = %+v", s)
	}
}

// TestTCPResponseNeverRefallsBack guards the p.tcp condition: a TC=1
// response arriving over TCP (a server bug) is delivered as-is instead
// of looping another fallback.
func TestTCPResponseNeverRefallsBack(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	// Server truncates on BOTH planes.
	var port *netsim.Port
	port = net.Bind("10.0.0.53", func(src netsim.Addr, payload []byte) {
		q, _ := dnswire.Unpack(payload)
		resp := dnswire.NewResponse(q)
		resp.Truncated = true
		wire, _ := resp.Pack()
		port.Send(src, wire)
	})
	tcpQueries := 0
	var tport *netsim.TCPPort
	tport = net.BindTCP("10.0.0.53", func(src netsim.Addr, payload []byte) {
		tcpQueries++
		q, _ := dnswire.Unpack(payload)
		resp := dnswire.NewResponse(q)
		resp.Truncated = true
		wire, _ := resp.Pack()
		tport.Send(src, wire)
	})
	c := New(clk, Config{TCPFallback: true})
	c.Attach(net, "10.9.0.1")

	var got Result
	c.Query("10.0.0.53", "x.nl.", dnswire.TypeA, func(r Result) { got = r })
	clk.Run()
	if got.Msg == nil || !got.Msg.Truncated {
		t.Fatalf("result = %+v, want the TC=1 TCP response delivered", got)
	}
	if tcpQueries != 1 {
		t.Errorf("tcp retries = %d, want exactly 1", tcpQueries)
	}
}
