package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one reconstructed stub query: an EvStubIssue matched with its
// closing EvStubAnswer or EvStubTimeout by (probe, stub query ID) in
// temporal order.
type Span struct {
	Cell     int
	Probe    uint16
	ID       uint32 // stub DNS query ID (the B field)
	Name     string
	Start    time.Duration
	End      time.Duration
	Retries  int
	Outcome  string // "ok", "servfail", "nxdomain", "rcode-N", "timeout"
	RCode    uint32
	Complete bool // closing event seen
}

// Failed reports whether the span ended without a usable answer.
func (s Span) Failed() bool {
	return !s.Complete || s.Outcome == "timeout" || s.Outcome == "servfail"
}

func outcomeForRCode(rc uint32) string {
	switch rc {
	case 0:
		return "ok"
	case 2:
		return "servfail"
	case 3:
		return "nxdomain"
	default:
		return fmt.Sprintf("rcode-%d", rc)
	}
}

type spanKey struct {
	probe uint16
	id    uint32
}

func sampledProbe(probe uint16, sample int) bool {
	if sample <= 1 {
		return true
	}
	return probe != 0 && int(probe-1)%sample == 0
}

// matchSpans reconstructs the stub query spans of one cell, in issue
// order, and reports any balance problems: a close without a matching
// open, a second open before the first closed, or opens never closed.
// Ring overwrites (Dropped > 0) legitimately truncate chains, so callers
// gate strictness on that counter. Unsampled probes only appear through
// forced terminal events (sample > 1), so their open-less closes become
// zero-length spans rather than problems.
func matchSpans(c CellTrace, sample int) (spans []Span, problems []string) {
	open := make(map[spanKey]int) // key -> index into spans
	for _, ev := range c.Events {
		switch ev.Type {
		case EvStubIssue:
			k := spanKey{ev.Probe, ev.B}
			if i, ok := open[k]; ok {
				problems = append(problems,
					fmt.Sprintf("cell %d probe %d id %d: reopened at %v before close (opened %v)",
						c.Cell, ev.Probe, ev.B, ev.At, spans[i].Start))
			}
			open[k] = len(spans)
			spans = append(spans, Span{
				Cell: c.Cell, Probe: ev.Probe, ID: ev.B, Name: ev.Name, Start: ev.At,
			})
		case EvStubRetry:
			if i, ok := open[spanKey{ev.Probe, ev.B}]; ok {
				spans[i].Retries++
			}
		case EvStubAnswer, EvStubTimeout:
			k := spanKey{ev.Probe, ev.B}
			i, ok := open[k]
			if !ok {
				if !sampledProbe(ev.Probe, sample) {
					// Forced terminal event for an unsampled probe: keep it
					// as a zero-length span so failures stay findable.
					sp := Span{Cell: c.Cell, Probe: ev.Probe, ID: ev.B,
						Name: ev.Name, Start: ev.At, End: ev.At, Complete: true}
					if ev.Type == EvStubTimeout {
						sp.Outcome = "timeout"
					} else {
						sp.RCode = ev.A
						sp.Outcome = outcomeForRCode(ev.A)
					}
					spans = append(spans, sp)
					continue
				}
				problems = append(problems,
					fmt.Sprintf("cell %d probe %d id %d: close at %v without open",
						c.Cell, ev.Probe, ev.B, ev.At))
				continue
			}
			delete(open, k)
			sp := &spans[i]
			sp.End = ev.At
			sp.Complete = true
			if ev.Type == EvStubTimeout {
				sp.Outcome = "timeout"
			} else {
				sp.RCode = ev.A
				sp.Outcome = outcomeForRCode(ev.A)
			}
		}
	}
	for k, i := range open {
		problems = append(problems,
			fmt.Sprintf("cell %d probe %d id %d: opened at %v, never closed",
				c.Cell, k.probe, k.id, spans[i].Start))
	}
	sort.Strings(problems)
	return spans, problems
}

// Spans reconstructs every cell's stub query spans.
func (d *Data) Spans() []Span {
	var out []Span
	for _, c := range d.Cells {
		spans, _ := matchSpans(c, d.SampleEvery)
		out = append(out, spans...)
	}
	return out
}

// Validate checks trace well-formedness: balanced span open/close per
// cell (skipped where the ring overwrote events), monotone non-negative
// timestamps, and at most one terminal close per span (enforced by the
// matcher). It returns a sorted list of problems, empty when clean.
func (d *Data) Validate() []string {
	var problems []string
	for _, c := range d.Cells {
		var last time.Duration = -1 << 62
		classifySeen := false
		for i, ev := range c.Events {
			if ev.Type == EvClassify {
				// Classification is a post-run annotation pass; its
				// timestamps rewind to each answer's send time.
				classifySeen = true
				continue
			}
			if classifySeen {
				problems = append(problems, fmt.Sprintf(
					"cell %d: runtime event %s at index %d after classify section", c.Cell, ev.Type, i))
				break
			}
			if ev.At < last {
				problems = append(problems, fmt.Sprintf(
					"cell %d: time went backwards at index %d (%v after %v)", c.Cell, i, ev.At, last))
				break
			}
			last = ev.At
		}
		if c.Dropped > 0 {
			continue // overwritten prefix can legitimately unbalance spans
		}
		_, sp := matchSpans(c, d.SampleEvery)
		problems = append(problems, sp...)
	}
	sort.Strings(problems)
	return problems
}

// TypeCounts tallies events by type name.
func (d *Data) TypeCounts() map[string]int {
	out := make(map[string]int)
	for _, c := range d.Cells {
		for _, ev := range c.Events {
			out[ev.Type.String()]++
		}
	}
	return out
}

// Timeline returns one probe's events within a cell, in order.
func (d *Data) Timeline(cell int, probe uint16) []Event {
	var out []Event
	for _, c := range d.Cells {
		if c.Cell != cell {
			continue
		}
		for _, ev := range c.Events {
			if ev.Probe == probe {
				out = append(out, ev)
			}
		}
	}
	return out
}

// FirstFailure finds the earliest failed stub span (timeout or
// SERVFAIL) across the run, scanning cells in index order.
func (d *Data) FirstFailure() (Span, bool) {
	var best Span
	found := false
	for _, sp := range d.Spans() {
		if !sp.Complete || !sp.Failed() {
			continue
		}
		if !found || sp.End < best.End {
			best = sp
			found = true
		}
	}
	return best, found
}

// FirstHijack finds the earliest stub span whose window contains a
// spoof_hit event — an answer delivered by an off-path spoofer instead
// of the legitimate authoritative. A poisoned span completes with
// outcome "ok" (the stub cannot tell), so FirstFailure never surfaces
// it; this is the adversary-family entry point behind `trace -fail`.
func (d *Data) FirstHijack() (Span, bool) {
	var best Span
	found := false
	for _, sp := range d.Spans() {
		if !sp.Complete || !d.spanContains(sp, EvSpoofHit) {
			continue
		}
		if !found || sp.End < best.End {
			best = sp
			found = true
		}
	}
	return best, found
}

// spanContains reports whether the span's probe saw an event of the
// given type inside the span window.
func (d *Data) spanContains(sp Span, typ Type) bool {
	for _, c := range d.Cells {
		if c.Cell != sp.Cell {
			continue
		}
		for _, ev := range c.Events {
			if ev.Type == typ && ev.Probe == sp.Probe &&
				ev.At >= sp.Start && ev.At <= sp.End {
				return true
			}
		}
	}
	return false
}

// Explain reconstructs the full event chain behind one stub span — the
// probe's own events inside the span window plus the global attack
// windows in force — answering "why did probe P fail at time T".
func (d *Data) Explain(sp Span) []Event {
	var out []Event
	for _, c := range d.Cells {
		if c.Cell != sp.Cell {
			continue
		}
		for _, ev := range c.Events {
			switch {
			case ev.Type == EvAttackStart || ev.Type == EvAttackEnd:
				if ev.At <= sp.End {
					out = append(out, ev)
				}
			case ev.Probe == sp.Probe && ev.Type != EvClassify:
				if ev.At >= sp.Start && ev.At <= sp.End {
					out = append(out, ev)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FormatEvent renders one event as a human-readable line.
func FormatEvent(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %-16s", ev.At, ev.Type)
	if ev.Probe != 0 {
		fmt.Fprintf(&b, " probe=%d", ev.Probe)
	}
	switch ev.Type {
	case EvStubIssue:
		fmt.Fprintf(&b, " qtype=%d id=%d", ev.A, ev.B)
	case EvStubRetry:
		fmt.Fprintf(&b, " attempt=%d id=%d", ev.A, ev.B)
	case EvStubAnswer:
		fmt.Fprintf(&b, " rcode=%d id=%d", ev.A, ev.B)
	case EvStubTimeout:
		fmt.Fprintf(&b, " attempts=%d id=%d", ev.A, ev.B)
	case EvResolveDone:
		fmt.Fprintf(&b, " rcode=%d stale=%d", ev.A, ev.B)
	case EvUpstreamQuery:
		fmt.Fprintf(&b, " qtype=%d", ev.A)
	case EvAttackStart:
		fmt.Fprintf(&b, " loss=%.2f", float64(ev.A)/1e6)
	case EvAuthAnswer:
		fmt.Fprintf(&b, " rcode=%d", ev.A)
	case EvClassify:
		fmt.Fprintf(&b, " round=%d class=%d", ev.A, ev.B)
	}
	if ev.Name != "" {
		fmt.Fprintf(&b, " name=%s", ev.Name)
	}
	if ev.Src != "" {
		fmt.Fprintf(&b, " src=%s", ev.Src)
	}
	if ev.Dst != "" {
		fmt.Fprintf(&b, " dst=%s", ev.Dst)
	}
	return b.String()
}
