// Package trace is the engine's deterministic query-lifecycle tracing
// subsystem (DESIGN.md §12). Each population cell owns one ring Buffer;
// the cell's event loop is single-threaded, so the buffer needs no lock
// ("lock-free" by construction, not by atomics). Events are stamped with
// the simulated clock, never the wall clock, so a trace is bit-identical
// for a given seed at any shard or worker count — the same guarantee the
// engine makes for run reports.
//
// Hot-path call sites follow one idiom:
//
//	if tr := r.trace; tr != nil {
//	    tr.Emit(trace.Event{Type: trace.EvCacheHit, Probe: p, Name: name})
//	}
//
// With tracing off that compiles to a single nil check; with tracing on,
// the Event literal lives on the stack, its strings alias existing
// memory, and Emit appends into a preallocated ring — no per-event
// allocation in steady state.
//
// Per-VP sampling bounds million-VP runs: Config.SampleEvery N keeps
// every Nth probe (by cell-local probe ID, which does not depend on the
// shard count). Terminal failures are always recorded — Force bypasses
// sampling so a SERVFAIL is never invisible, even for unsampled probes.
package trace

import "time"

// Type identifies one event kind in the fixed lifecycle schema.
type Type uint8

// The event schema, covering the full query lifecycle. A/B are
// type-specific small arguments (documented per constant); Name/Src/Dst
// carry the query name and simulated addresses where meaningful.
const (
	EvNone Type = iota
	// Stub (vantage-point) lifecycle. B carries the stub's DNS query ID,
	// which matches opening and closing events of one query span.
	EvStubIssue   // stub sent the first attempt; A=qtype, B=id
	EvStubRetry   // stub re-sent after a timeout; A=attempt (2..), B=id
	EvStubAnswer  // stub accepted an answer; A=rcode, B=id
	EvStubTimeout // stub exhausted its retries; A=attempts made, B=id
	// Recursive-resolver lifecycle.
	EvResolveStart    // resolver accepted a client query; A=qtype
	EvResolveDone     // resolver answered the client; A=rcode, B=1 if stale
	EvCacheHit        // fresh positive cache hit
	EvCacheStale      // expired entry served under serve-stale
	EvCacheNegHit     // negative (NXDOMAIN/NODATA) cache hit
	EvCacheMiss       // nothing cached for the key
	EvCacheExpired    // entry present but expired past the stale window
	EvStaleServe      // resolver served a stale answer; A=1 on the failure path
	EvReferral        // resolver descended a referral; Name=child zone, Dst=server
	EvUpstreamQuery   // resolver sent an upstream query; A=qtype, Dst=server
	EvUpstreamTimeout // an upstream attempt timed out; Dst=server
	// Simulated network.
	EvNetDeliver // packet delivered; Src/Dst
	EvNetDrop    // packet dropped by inbound loss (the DDoS dial); Src/Dst
	// Attack windows (ddos.Schedule / ddos.SchedulePhases); global
	// events, Probe 0. B carries the phase's forced rcode for the
	// NXDOMAIN/SERVFAIL failure modes and stays 0 for packet drops, so
	// pre-phase traces are unchanged.
	EvAttackStart // failure dial raised; A=intensity in millionths, B=forced rcode, Dst=target
	EvAttackEnd   // failure dial cleared; B=forced rcode, Dst=target
	// Authoritative side.
	EvAuthAnswer // authoritative answered; A=rcode, B=qtype
	// Terminal classification.
	EvServFail // resolver returned SERVFAIL to the client; always recorded
	EvClassify // post-run AA/CC/AC/CA verdict; A=round, B=class code
	// Adversary instrumentation (internal/adversary). Appended after
	// EvClassify: the numeric values of older events are part of the
	// on-disk trace format and never move.
	EvSpoofSend   // off-path spoofer emitted a forged response; A=guessed ID, B=wave index
	EvSpoofHit    // a forged answer was accepted by the victim resolver; A=guessed ID
	EvAdvReferral // malicious authoritative served an NXNS referral; A=delegation width
	EvReflect     // reflector bounced a spoofed-source query; A=request bytes
	// Transport realism (PR 8). Appended after EvReflect, same rule:
	// older numeric values never move.
	EvTruncate    // a response was truncated to the advertised UDP size; A=wire bytes, B=limit
	EvTCPConnect  // simulated TCP connection established; Src/Dst
	EvTCPFallback // a TC=1 response triggered a retry over TCP; Dst=server, B=id
)

var typeNames = [...]string{
	EvNone:            "none",
	EvStubIssue:       "stub_issue",
	EvStubRetry:       "stub_retry",
	EvStubAnswer:      "stub_answer",
	EvStubTimeout:     "stub_timeout",
	EvResolveStart:    "resolve_start",
	EvResolveDone:     "resolve_done",
	EvCacheHit:        "cache_hit",
	EvCacheStale:      "cache_stale",
	EvCacheNegHit:     "cache_neg_hit",
	EvCacheMiss:       "cache_miss",
	EvCacheExpired:    "cache_expired",
	EvStaleServe:      "stale_serve",
	EvReferral:        "referral",
	EvUpstreamQuery:   "upstream_query",
	EvUpstreamTimeout: "upstream_timeout",
	EvNetDeliver:      "net_deliver",
	EvNetDrop:         "net_drop",
	EvAttackStart:     "attack_start",
	EvAttackEnd:       "attack_end",
	EvAuthAnswer:      "auth_answer",
	EvServFail:        "servfail",
	EvClassify:        "classify",
	EvSpoofSend:       "spoof_send",
	EvSpoofHit:        "spoof_hit",
	EvAdvReferral:     "adv_referral",
	EvReflect:         "reflect",
	EvTruncate:        "truncate",
	EvTCPConnect:      "tcp_connect",
	EvTCPFallback:     "tcp_fallback",
}

// String returns the event type's stable wire name.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return "unknown"
}

// ParseType inverts String. It returns EvNone for unknown names.
func ParseType(s string) Type {
	for t, name := range typeNames {
		if name == s {
			return Type(t)
		}
	}
	return EvNone
}

// Event is one lifecycle record. At is simulated time since the run
// epoch (the testbed start), so it is identical across shard and worker
// counts. Probe is the cell-local probe ID the event belongs to (0 =
// infrastructure traffic: harvests, NS fetches, attack windows).
type Event struct {
	At    time.Duration
	Type  Type
	Probe uint16
	A, B  uint32
	Name  string
	Src   string
	Dst   string
}

// Clock is the tracer's view of time — satisfied by *clock.Virtual and
// clock.Real. The buffer reads it only inside Emit, so disabled tracing
// never touches the clock.
type Clock interface{ Now() time.Time }

// Config sizes and samples a Buffer.
type Config struct {
	// Capacity is the per-cell ring size in events (default DefaultCapacity).
	// When the ring is full the oldest events are overwritten; Dropped
	// counts the overwrites.
	Capacity int
	// SampleEvery keeps every Nth probe (cell-local probe IDs 1, 1+N,
	// 1+2N, ...). Values <= 1 trace every probe. Probe-0 infrastructure
	// events are recorded only when every probe is traced. Terminal
	// failures (EvServFail) bypass sampling via Force.
	SampleEvery int
}

// DefaultCapacity is the per-cell ring size when Config.Capacity is zero:
// 64Ki events (~4 MiB) per cell.
const DefaultCapacity = 1 << 16

// Buffer is one cell's event ring. It is single-writer: the owning
// cell's simulation loop is the only goroutine that emits, and readers
// (Events) run only after the loop has drained.
type Buffer struct {
	clk     Clock
	epoch   time.Time
	cell    int
	sample  int
	maxCap  int
	events  []Event
	head    int // overwrite cursor once len(events) == maxCap
	dropped uint64
}

// NewBuffer creates a cell buffer. Timestamps are clk.Now() minus epoch.
func NewBuffer(clk Clock, epoch time.Time, cell int, cfg Config) *Buffer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	initial := 256
	if initial > capacity {
		initial = capacity
	}
	return &Buffer{
		clk:    clk,
		epoch:  epoch,
		cell:   cell,
		sample: cfg.SampleEvery,
		maxCap: capacity,
		events: make([]Event, 0, initial),
	}
}

// Cell returns the buffer's cell index.
func (b *Buffer) Cell() int { return b.cell }

// SampleEvery returns the buffer's sampling stride (<=1 = every probe).
func (b *Buffer) SampleEvery() int { return b.sample }

// Sampled reports whether events for the given cell-local probe ID are
// recorded. Probe 0 (infrastructure) is recorded only under full tracing.
func (b *Buffer) Sampled(probe uint16) bool {
	if b.sample <= 1 {
		return true
	}
	if probe == 0 {
		return false
	}
	return int(probe-1)%b.sample == 0
}

// Emit records ev for a sampled probe, stamping At from the simulated
// clock. Unsampled probes are dropped without touching the clock.
func (b *Buffer) Emit(ev Event) {
	if !b.Sampled(ev.Probe) {
		return
	}
	ev.At = b.clk.Now().Sub(b.epoch)
	b.push(ev)
}

// Force records ev regardless of sampling — terminal failures use it so
// a SERVFAIL chain's ending is never invisible.
func (b *Buffer) Force(ev Event) {
	ev.At = b.clk.Now().Sub(b.epoch)
	b.push(ev)
}

// EmitAt records ev with a caller-supplied timestamp (relative to the
// run epoch), for post-run annotations such as classification verdicts.
func (b *Buffer) EmitAt(ev Event) {
	if !b.Sampled(ev.Probe) {
		return
	}
	b.push(ev)
}

// push appends into the ring, overwriting the oldest event when full.
// The ring grows geometrically up to its capacity, so short runs stay
// small and long runs stop allocating once warm.
func (b *Buffer) push(ev Event) {
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, ev)
		return
	}
	if cap(b.events) < b.maxCap {
		grow := 2 * cap(b.events)
		if grow > b.maxCap {
			grow = b.maxCap
		}
		next := make([]Event, len(b.events), grow)
		copy(next, b.events)
		b.events = append(next, ev)
		return
	}
	b.events[b.head] = ev
	b.head++
	if b.head == len(b.events) {
		b.head = 0
	}
	b.dropped++
}

// Dropped returns how many events were overwritten by ring wraparound.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the retained events oldest-first. The slice is a copy;
// call after the simulation loop has drained.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.head:]...)
	out = append(out, b.events[:b.head]...)
	return out
}
