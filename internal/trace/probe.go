package trace

// Probe attribution. The testbed names every vantage point's record
// after its cell-local probe ID — "1414.cachetest.nl." — so a query name
// (or any DNS message carrying one) identifies the probe it serves.
// Infrastructure traffic (NS fetches, harvests, ns1.* addresses) has no
// leading decimal label and maps to probe 0.

// ProbeFromName extracts the probe ID from a query name whose first
// label is a decimal probe ID. Returns 0 when the name is not a
// per-probe name.
func ProbeFromName(name string) uint16 {
	var n uint32
	i := 0
	for ; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint32(c-'0')
		if n > 0xffff {
			return 0
		}
	}
	if i == 0 || i >= len(name) || name[i] != '.' {
		return 0
	}
	return uint16(n)
}

// ProbeFromWire extracts the probe ID from a wire-format DNS message by
// scanning the first label of the first question, allocation-free.
// Responses echo the question section, so both directions attribute.
// Returns 0 on malformed input or non-probe names.
func ProbeFromWire(payload []byte) uint16 {
	// Header is 12 bytes; QDCOUNT at offset 4 must be nonzero for a
	// question to follow.
	if len(payload) < 14 || payload[4] == 0 && payload[5] == 0 {
		return 0
	}
	l := int(payload[12])
	if l == 0 || l > 63 || 13+l > len(payload) {
		return 0
	}
	var n uint32
	for _, c := range payload[13 : 13+l] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint32(c-'0')
		if n > 0xffff {
			return 0
		}
	}
	return uint16(n)
}
