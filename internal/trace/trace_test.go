package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tick is a manually-advanced Clock for buffer tests.
type tick struct{ now time.Time }

func (c *tick) Now() time.Time { return c.now }

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func newTestBuffer(cfg Config) (*Buffer, *tick) {
	clk := &tick{now: epoch}
	return NewBuffer(clk, epoch, 0, cfg), clk
}

func TestBufferStampsSimulatedTime(t *testing.T) {
	b, clk := newTestBuffer(Config{})
	clk.now = epoch.Add(42 * time.Second)
	b.Emit(Event{Type: EvCacheHit, Probe: 1})
	clk.now = epoch.Add(2 * time.Minute)
	b.Force(Event{Type: EvServFail, Probe: 2})
	b.EmitAt(Event{At: 7 * time.Second, Type: EvClassify, Probe: 3})

	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].At != 42*time.Second {
		t.Errorf("Emit stamped %v, want 42s", evs[0].At)
	}
	if evs[1].At != 2*time.Minute {
		t.Errorf("Force stamped %v, want 2m", evs[1].At)
	}
	if evs[2].At != 7*time.Second {
		t.Errorf("EmitAt overwrote the preset timestamp: %v", evs[2].At)
	}
}

func TestBufferRingWraparound(t *testing.T) {
	b, clk := newTestBuffer(Config{Capacity: 8})
	for i := 0; i < 12; i++ {
		clk.now = epoch.Add(time.Duration(i) * time.Second)
		b.Emit(Event{Type: EvNetDeliver, Probe: 1, A: uint32(i)})
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (ring capacity)", b.Len())
	}
	if b.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", b.Dropped())
	}
	evs := b.Events()
	for i, ev := range evs {
		if want := uint32(i + 4); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest-first after overwrite)", i, ev.A, want)
		}
	}
}

func TestBufferGrowsWithoutDropping(t *testing.T) {
	// Initial allocation is small; the ring must grow to capacity before
	// overwriting anything.
	b, _ := newTestBuffer(Config{Capacity: 1024})
	for i := 0; i < 1000; i++ {
		b.Emit(Event{Type: EvNetDeliver, Probe: 1, A: uint32(i)})
	}
	if b.Len() != 1000 || b.Dropped() != 0 {
		t.Fatalf("Len = %d Dropped = %d, want 1000 and 0", b.Len(), b.Dropped())
	}
}

func TestSampling(t *testing.T) {
	b, _ := newTestBuffer(Config{SampleEvery: 3})
	// Probes 1, 4, 7, ... are sampled; probe 0 (infrastructure) is not.
	cases := map[uint16]bool{0: false, 1: true, 2: false, 3: false, 4: true, 7: true}
	for probe, want := range cases {
		if got := b.Sampled(probe); got != want {
			t.Errorf("Sampled(%d) = %v, want %v", probe, got, want)
		}
	}

	b.Emit(Event{Type: EvCacheHit, Probe: 2})   // unsampled: dropped
	b.EmitAt(Event{Type: EvClassify, Probe: 2}) // unsampled: dropped
	b.Emit(Event{Type: EvCacheHit, Probe: 4})   // sampled
	b.Force(Event{Type: EvServFail, Probe: 2})  // forced through
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (sampled emit + forced terminal)", b.Len())
	}

	full, _ := newTestBuffer(Config{})
	if !full.Sampled(0) {
		t.Error("full tracing must record probe-0 infrastructure events")
	}
}

func TestProbeFromName(t *testing.T) {
	cases := map[string]uint16{
		"1414.cachetest.nl.": 1414,
		"5.leaf.test.":       5,
		"0.leaf.test.":       0, // probe 0 is the non-probe value anyway
		"ns1.leaf.test.":     0,
		"deep1.n2.leaf.":     0, // first label must be all digits
		"70000.leaf.test.":   0, // out of uint16 range
		"123":                0, // no label separator
		"":                   0,
	}
	for name, want := range cases {
		if got := ProbeFromName(name); got != want {
			t.Errorf("ProbeFromName(%q) = %d, want %d", name, got, want)
		}
	}
}

// wireQuery builds a minimal DNS wire message whose first question name
// starts with the given label.
func wireQuery(label string) []byte {
	msg := make([]byte, 12)
	msg[5] = 1 // QDCOUNT = 1
	msg = append(msg, byte(len(label)))
	msg = append(msg, label...)
	msg = append(msg, 0, 0, 28, 0, 1) // root, TYPE AAAA, CLASS IN
	return msg
}

func TestProbeFromWire(t *testing.T) {
	if got := ProbeFromWire(wireQuery("1414")); got != 1414 {
		t.Errorf("digit label: got %d, want 1414", got)
	}
	if got := ProbeFromWire(wireQuery("ns1")); got != 0 {
		t.Errorf("non-digit label: got %d, want 0", got)
	}
	if got := ProbeFromWire(wireQuery("70000")); got != 0 {
		t.Errorf("overflow label: got %d, want 0", got)
	}
	noQuestion := wireQuery("7")
	noQuestion[5] = 0
	if got := ProbeFromWire(noQuestion); got != 0 {
		t.Errorf("QDCOUNT 0: got %d, want 0", got)
	}
	if got := ProbeFromWire([]byte{1, 2, 3}); got != 0 {
		t.Errorf("short payload: got %d, want 0", got)
	}
}

// sampleData builds a two-cell trace exercising every serialized field.
func sampleData() *Data {
	return &Data{
		SampleEvery: 5,
		Cells: []CellTrace{
			{Cell: 0, Dropped: 3, Events: []Event{
				{At: time.Second, Type: EvStubIssue, Probe: 1, A: 28, B: 9, Name: "1.x."},
				{At: 2 * time.Second, Type: EvNetDrop, Probe: 1, Src: "10.0.0.1", Dst: "192.0.9.11"},
				{At: 3 * time.Second, Type: EvStubAnswer, Probe: 1, A: 0, B: 9, Name: "1.x."},
			}},
			{Cell: 1, Events: []Event{
				{At: 0, Type: EvAttackStart, A: 900000, Dst: "192.0.9.11"},
			}},
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	want := sampleData()
	var buf bytes.Buffer
	if err := want.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}

	// The writer's output must itself be deterministic.
	var buf2 bytes.Buffer
	if err := want.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSONL is not byte-deterministic")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": `{"v":9,"sample":0,"cells":0}` + "\n",
		"truncated":   `{"v":1,"sample":0,"cells":1}` + "\n",
		"unknown event": `{"v":1,"sample":0,"cells":1}` + "\n" +
			`{"cell":0,"events":1,"dropped":0}` + "\n" +
			`{"at":0,"ev":"warp-drive"}` + "\n",
	} {
		if _, err := ReadJSONL(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadJSONL accepted malformed input", name)
		}
	}
}

func TestChromeExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleData().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 2 process_name metadata + 1 span + 2 instants (net_drop, attack_start).
	if n != 5 {
		t.Errorf("ValidateChrome counted %d events, want 5", n)
	}
	if _, err := ValidateChrome(strings.NewReader(`{"traceEvents":[{"ph":"i"}]}`)); err == nil {
		t.Error("ValidateChrome accepted an event with no name/pid/tid")
	}
}

func TestSpansAndValidate(t *testing.T) {
	d := sampleData()
	spans := d.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Complete || sp.Outcome != "ok" || sp.Start != time.Second || sp.End != 3*time.Second {
		t.Fatalf("span = %+v", sp)
	}
	if problems := d.Validate(); len(problems) != 0 {
		t.Fatalf("Validate: %v", problems)
	}

	// An unclosed span is a problem — but only in cells that dropped
	// nothing; cell 0 above has Dropped > 0 and is exempt.
	d.Cells[1].Events = append(d.Cells[1].Events,
		Event{At: time.Second, Type: EvStubIssue, Probe: 1, B: 77})
	problems := d.Validate()
	if len(problems) != 1 || !strings.Contains(problems[0], "never closed") {
		t.Fatalf("Validate = %v, want one never-closed problem", problems)
	}
}

func TestMatchSpansForcedCloseForUnsampledProbe(t *testing.T) {
	// With sampling on, a forced terminal event for an unsampled probe has
	// no matching open; it must become a zero-length failed span, not a
	// structural problem.
	c := CellTrace{Events: []Event{
		{At: 9 * time.Second, Type: EvStubTimeout, Probe: 2, A: 3, B: 5, Name: "2.x."},
	}}
	spans, problems := matchSpans(c, 3)
	if len(problems) != 0 {
		t.Fatalf("problems: %v", problems)
	}
	if len(spans) != 1 || !spans[0].Failed() || spans[0].Outcome != "timeout" {
		t.Fatalf("spans = %+v", spans)
	}

	// The same close for a sampled probe IS a problem.
	c.Events[0].Probe = 1
	_, problems = matchSpans(c, 3)
	if len(problems) != 1 || !strings.Contains(problems[0], "without open") {
		t.Fatalf("problems = %v, want one close-without-open", problems)
	}
}

func TestFirstFailureAndExplain(t *testing.T) {
	d := &Data{Cells: []CellTrace{{Cell: 0, Events: []Event{
		{At: 0, Type: EvAttackStart, A: 1e6, Dst: "192.0.9.11"},
		{At: time.Second, Type: EvStubIssue, Probe: 3, A: 28, B: 1, Name: "3.x."},
		{At: 2 * time.Second, Type: EvNetDrop, Probe: 3, Src: "10.0.0.1", Dst: "192.0.9.11"},
		{At: 4 * time.Second, Type: EvStubTimeout, Probe: 3, A: 2, B: 1, Name: "3.x."},
		{At: 5 * time.Second, Type: EvStubIssue, Probe: 4, A: 28, B: 1, Name: "4.x."},
		{At: 6 * time.Second, Type: EvStubAnswer, Probe: 4, A: 0, B: 1, Name: "4.x."},
	}}}}
	sp, ok := d.FirstFailure()
	if !ok || sp.Probe != 3 || sp.Outcome != "timeout" {
		t.Fatalf("FirstFailure = %+v ok=%v", sp, ok)
	}
	chain := d.Explain(sp)
	// Attack context + the probe's issue, drop, and timeout.
	if len(chain) != 4 {
		t.Fatalf("Explain returned %d events, want 4: %+v", len(chain), chain)
	}
	if chain[0].Type != EvAttackStart {
		t.Errorf("chain starts with %s, want attack_start context", chain[0].Type)
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for ty := EvStubIssue; ty <= EvClassify; ty++ {
		name := ty.String()
		if name == "unknown" || name == "none" {
			t.Fatalf("type %d has no name", ty)
		}
		if got := ParseType(name); got != ty {
			t.Errorf("ParseType(%q) = %d, want %d", name, got, ty)
		}
	}
	if got := ParseType("warp-drive"); got != EvNone {
		t.Errorf("ParseType(unknown) = %d, want EvNone", got)
	}
}

func TestFormatEventRendersArgs(t *testing.T) {
	line := FormatEvent(Event{At: time.Second, Type: EvStubIssue, Probe: 7, A: 28, B: 3, Name: "7.x."})
	for _, want := range []string{"stub_issue", "probe=7", "qtype=28", "id=3", "name=7.x."} {
		if !strings.Contains(line, want) {
			t.Errorf("FormatEvent = %q, missing %q", line, want)
		}
	}
	if line := FormatEvent(Event{Type: EvAttackStart, A: 900000, Dst: "x"}); !strings.Contains(line, "loss=0.90") {
		t.Errorf("attack_start line = %q, missing loss", line)
	}
}
