package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Data is a whole run's merged trace: one CellTrace per population cell,
// in cell-index order. Because cell layout depends only on (probes,
// cell size, seed) and each cell's events are stamped by its own
// single-threaded virtual clock, Data marshals to identical bytes for
// any shard or worker count.
type Data struct {
	SampleEvery int
	Cells       []CellTrace
}

// CellTrace is one cell's retained events, oldest-first.
type CellTrace struct {
	Cell    int
	Dropped uint64
	Events  []Event
}

// Events returns the total retained event count.
func (d *Data) Len() int {
	n := 0
	for _, c := range d.Cells {
		n += len(c.Events)
	}
	return n
}

// jsonlHeader is the first line of a JSONL trace.
type jsonlHeader struct {
	V      int `json:"v"`
	Sample int `json:"sample"`
	Cells  int `json:"cells"`
}

// jsonlCell announces a cell's event stream.
type jsonlCell struct {
	Cell    int    `json:"cell"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// jsonlEvent is one event line. Field order is fixed by the struct, so
// output bytes are deterministic.
type jsonlEvent struct {
	At    int64  `json:"at"` // ns since the run epoch (simulated)
	Ev    string `json:"ev"`
	Probe uint16 `json:"probe,omitempty"`
	A     uint32 `json:"a,omitempty"`
	B     uint32 `json:"b,omitempty"`
	Name  string `json:"name,omitempty"`
	Src   string `json:"src,omitempty"`
	Dst   string `json:"dst,omitempty"`
}

// WriteJSONL writes the canonical trace format: a header line, then per
// cell a cell line followed by its event lines, one JSON object each.
func (d *Data) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{V: 1, Sample: d.SampleEvery, Cells: len(d.Cells)}); err != nil {
		return err
	}
	for _, c := range d.Cells {
		if err := enc.Encode(jsonlCell{Cell: c.Cell, Events: len(c.Events), Dropped: c.Dropped}); err != nil {
			return err
		}
		for _, ev := range c.Events {
			line := jsonlEvent{
				At: int64(ev.At), Ev: ev.Type.String(), Probe: ev.Probe,
				A: ev.A, B: ev.B, Name: ev.Name, Src: ev.Src, Dst: ev.Dst,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Data, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var h jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.V != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.V)
	}
	d := &Data{SampleEvery: h.Sample}
	for i := 0; i < h.Cells; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("trace: truncated at cell %d", i)
		}
		var ch jsonlCell
		if err := json.Unmarshal(sc.Bytes(), &ch); err != nil {
			return nil, fmt.Errorf("trace: bad cell header: %w", err)
		}
		ct := CellTrace{Cell: ch.Cell, Dropped: ch.Dropped, Events: make([]Event, 0, ch.Events)}
		for j := 0; j < ch.Events; j++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("trace: truncated in cell %d", ch.Cell)
			}
			var le jsonlEvent
			if err := json.Unmarshal(sc.Bytes(), &le); err != nil {
				return nil, fmt.Errorf("trace: bad event: %w", err)
			}
			t := ParseType(le.Ev)
			if t == EvNone {
				return nil, fmt.Errorf("trace: unknown event type %q", le.Ev)
			}
			ct.Events = append(ct.Events, Event{
				At: time.Duration(le.At), Type: t, Probe: le.Probe,
				A: le.A, B: le.B, Name: le.Name, Src: le.Src, Dst: le.Dst,
			})
		}
		d.Cells = append(d.Cells, ct)
	}
	return d, sc.Err()
}

// chromeEvent is one Chrome trace_event entry. Stub query spans become
// complete ("X") events with a duration; everything else is a
// thread-scoped instant ("i"). pid = cell, tid = probe.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome writes the trace in Chrome trace_event JSON format
// (loadable in Perfetto / about://tracing). Stub query spans are
// rendered as complete events so concurrent queries from one probe to
// several recursives do not violate the begin/end stack discipline.
func (d *Data) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, c := range d.Cells {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: c.Cell,
			Args: map[string]any{"name": fmt.Sprintf("cell %d", c.Cell)},
		}); err != nil {
			return err
		}
		spans, _ := matchSpans(c, d.SampleEvery)
		for _, sp := range spans {
			if !sp.Complete {
				continue
			}
			if err := emit(chromeEvent{
				Name: "query " + sp.Name, Cat: "stub", Ph: "X",
				Ts: usec(sp.Start), Dur: usec(sp.End - sp.Start),
				Pid: c.Cell, Tid: int(sp.Probe),
				Args: map[string]any{"id": sp.ID, "outcome": sp.Outcome, "retries": sp.Retries},
			}); err != nil {
				return err
			}
		}
		for _, ev := range c.Events {
			if ev.Type == EvStubIssue || ev.Type == EvStubAnswer || ev.Type == EvStubTimeout {
				continue // folded into the X span above
			}
			args := map[string]any{}
			if ev.A != 0 {
				args["a"] = ev.A
			}
			if ev.B != 0 {
				args["b"] = ev.B
			}
			if ev.Name != "" {
				args["name"] = ev.Name
			}
			if ev.Src != "" {
				args["src"] = ev.Src
			}
			if ev.Dst != "" {
				args["dst"] = ev.Dst
			}
			if err := emit(chromeEvent{
				Name: ev.Type.String(), Cat: "sim", Ph: "i",
				Ts: usec(ev.At), Pid: c.Cell, Tid: int(ev.Probe),
				Scope: "t", Args: args,
			}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChrome parses a Chrome trace_event document and checks the
// fields Perfetto requires (ph, ts, pid, tid, name per event). It
// returns the event count.
func ValidateChrome(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: chrome JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: chrome JSON has no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				return 0, fmt.Errorf("trace: chrome event %d missing %q", i, key)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			return 0, fmt.Errorf("trace: chrome event %d bad ph: %w", i, err)
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				return 0, fmt.Errorf("trace: chrome event %d missing ts", i)
			}
		}
	}
	return len(doc.TraceEvents), nil
}
