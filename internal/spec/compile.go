package spec

import (
	"fmt"

	"repro/internal/ddos"
	"repro/internal/experiment"
	"repro/internal/recursive"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// DefaultSeed is the paper seed used when engine.seed is absent.
const DefaultSeed = 42

// Compile lowers one expanded spec onto the Scenario API: it validates,
// rejects unexpanded sweeps, and returns the scenario plus the engine
// RunConfig to run it under. Compiled configs always select the sharded
// engine (Shards >= 1), whose output is byte-identical at every shard
// count, so the spec fully determines the experiment's bytes.
func Compile(s *Spec) (experiment.Scenario, experiment.RunConfig, error) {
	var zero experiment.RunConfig
	if err := Validate(s); err != nil {
		return nil, zero, err
	}
	if ax := sweepAxis(s); ax != "" {
		return nil, zero, fmt.Errorf("spec %q: %s is an unexpanded sweep: call Expand first", s.Name, ax)
	}
	cfg := runConfig(s.Engine)
	pop, err := population(s)
	if err != nil {
		return nil, zero, err
	}
	cfg.Population = pop
	if o := s.Observability; o != nil && o.Timeline {
		cfg.Timeline = &timeline.Config{Bucket: o.Bucket.D()}
	}

	switch s.Family {
	case "caching":
		if w := s.Workload; w != nil {
			if w.TTL != nil {
				cfg.TTL = uint32(w.TTL.Value())
			}
			cfg.ProbeInterval = w.ProbeInterval.D()
			cfg.Rounds = w.Rounds
		}
		return experiment.CachingScenario(), cfg, nil
	case "ddos":
		sc, err := compileDDoS(s)
		return sc, cfg, err
	case "glue":
		return experiment.GlueScenario(), cfg, nil
	case "check":
		return experiment.CheckScenario(), cfg, nil
	case "passive":
		return experiment.PassiveScenario(), cfg, nil
	case "retries":
		trials := 0
		if s.Workload != nil {
			trials = s.Workload.Trials
		}
		return experiment.RetriesScenario(trials), cfg, nil
	case "implications":
		return experiment.ImplicationsScenario(experiment.ImplicationsConfig{}), cfg, nil
	case "nxns":
		n := NXNSSection{}
		if s.Adversary != nil && s.Adversary.NXNS != nil {
			n = *s.Adversary.NXNS
		}
		es := experiment.NXNSSpec{Widths: n.Widths}
		if n.MaxFetch != nil {
			es.MaxFetch = int(n.MaxFetch.Value())
		}
		return experiment.NXNSScenario(es), cfg, nil
	case "poison":
		p := PoisonSection{}
		if s.Adversary != nil && s.Adversary.Poison != nil {
			p = *s.Adversary.Poison
		}
		es := experiment.PoisonSpec{
			IDWindow: p.IDWindow, Waves: p.Waves,
			WaveEvery: p.WaveEvery.D(), PortGuess: p.PortGuess,
		}
		if p.RandomIDs != nil {
			es.RandomIDs = p.RandomIDs.Value()
		}
		if p.NoBailiwick != nil {
			es.NoBailiwick = p.NoBailiwick.Value()
		}
		return experiment.PoisonScenario(es), cfg, nil
	case "reflect":
		r := ReflectSection{}
		if s.Adversary != nil && s.Adversary.Reflect != nil {
			r = *s.Adversary.Reflect
		}
		return experiment.ReflectScenario(experiment.ReflectSpec{
			Every: r.Every.D(), EDNSSize: uint16(r.EDNSSize),
		}), cfg, nil
	case "transport":
		t := TransportSection{}
		if s.Transport != nil {
			t = *s.Transport
		}
		es := experiment.TransportSpec{TCPLoss: t.TCPLoss}
		for _, b := range t.Bufs {
			es.BufSizes = append(es.BufSizes, uint16(b))
		}
		if t.Flood != nil {
			es.Flood = t.Flood.Value()
		}
		return experiment.TransportScenario(es), cfg, nil
	}
	return nil, zero, fmt.Errorf("spec %q: unknown family %q", s.Name, s.Family)
}

// CompileAll expands a spec and compiles every point into campaign
// items (source labels each item with the file it came from).
func CompileAll(s *Spec, source string) ([]experiment.CampaignItem, error) {
	expanded, err := Expand(s)
	if err != nil {
		return nil, err
	}
	items := make([]experiment.CampaignItem, 0, len(expanded))
	for _, sp := range expanded {
		sc, cfg, err := Compile(sp)
		if err != nil {
			return nil, err
		}
		items = append(items, experiment.CampaignItem{
			Name: sp.Name, Source: source, Scenario: sc, Config: cfg,
		})
	}
	return items, nil
}

// sweepAxis names the first unexpanded sweep axis ("" when none).
func sweepAxis(s *Spec) string {
	if len(s.Paper) > 1 {
		return "paper"
	}
	if s.Workload != nil && s.Workload.TTL != nil && s.Workload.TTL.IsSweep() {
		return "workload.ttl"
	}
	if s.Transport != nil && s.Transport.Flood != nil && s.Transport.Flood.IsSweep() {
		return "transport.flood"
	}
	if a := s.Adversary; a != nil {
		if a.NXNS != nil && a.NXNS.MaxFetch != nil && a.NXNS.MaxFetch.IsSweep() {
			return "adversary.nxns.max_fetch"
		}
		if a.Poison != nil {
			if a.Poison.RandomIDs != nil && a.Poison.RandomIDs.IsSweep() {
				return "adversary.poison.random_ids"
			}
			if a.Poison.NoBailiwick != nil && a.Poison.NoBailiwick.IsSweep() {
				return "adversary.poison.no_bailiwick"
			}
		}
	}
	return ""
}

// runConfig lowers the engine section. Shards 0 becomes 1: a compiled
// spec always runs on the sharded engine so its bytes are pinned for
// every shard count.
func runConfig(e *EngineSection) experiment.RunConfig {
	cfg := experiment.RunConfig{Seed: DefaultSeed, Shards: 1}
	if e == nil {
		return cfg
	}
	cfg.Probes = e.Probes
	if e.Seed != nil {
		cfg.Seed = *e.Seed
	}
	if e.Shards > 0 {
		cfg.Shards = e.Shards
	}
	cfg.ShardProbes = e.ShardProbes
	cfg.Workers = e.Workers
	cfg.KeepWorlds = e.KeepWorlds
	if e.Trace {
		cfg.Trace = &trace.Config{SampleEvery: e.TraceSample}
	}
	return cfg
}

// population lowers the population section onto PopulationConfig (zero
// value = the calibrated defaults).
func population(s *Spec) (experiment.PopulationConfig, error) {
	var pop experiment.PopulationConfig
	p := s.Population
	if p == nil {
		return pop, nil
	}
	switch p.Harvest {
	case "", "none":
		pop.Harvest = recursive.HarvestNone
	case "aaaa":
		pop.Harvest = recursive.HarvestAAAA
	case "full":
		pop.Harvest = recursive.HarvestFull
	default:
		return pop, fmt.Errorf("spec %q: population.harvest: unknown mode %q", s.Name, p.Harvest)
	}
	pop.ServeStaleDirect = p.ServeStale
	pop.PrefetchDirect = p.Prefetch
	pop.MaxFetch = p.MaxFetch
	pop.RandomIDs = p.RandomIDs
	pop.NoBailiwick = p.NoBailiwick
	return pop, nil
}

// compileDDoS lowers a ddos spec: a paper name resolves to the committed
// Table 4 row; otherwise the workload plus disruption phases build a
// DDoSSpec with a staged phase plan. A single drop phase lowers onto the
// legacy scalar window (same scheduling, simpler display); anything
// richer becomes a ddos.Phase list.
func compileDDoS(s *Spec) (experiment.Scenario, error) {
	if len(s.Paper) == 1 {
		base, ok := experiment.SpecByName(s.Paper[0])
		if !ok {
			return nil, fmt.Errorf("spec %q: unknown paper experiment %q", s.Name, s.Paper[0])
		}
		return experiment.DDoSScenario(base), nil
	}
	w := s.Workload
	d := experiment.DDoSSpec{
		Name:          s.Name,
		TTL:           uint32(w.TTL.Value()),
		TotalDur:      w.Total.D(),
		ProbeInterval: w.ProbeInterval.D(),
		QueriesBefore: w.QueriesBefore,
		TargetsAll:    true,
	}
	phases := make([]ddos.Phase, 0, len(s.Disruption))
	allFirst := true
	for _, ps := range s.Disruption {
		ph := ddos.Phase{
			Start:    ps.Start.D(),
			Duration: ps.Duration.D(),
			Records:  ps.Records,
		}
		if ps.Loss != nil {
			ph.Intensity = *ps.Loss
		} else {
			ph.Intensity = ddos.Flood{AttackQPS: ps.AttackQPS, CapacityQPS: ps.CapacityQPS}.LossRate()
		}
		switch ps.Mode {
		case "", "drop":
			ph.Mode = ddos.ModeDrop
		case "nxdomain":
			ph.Mode = ddos.ModeNXDomain
		case "servfail":
			ph.Mode = ddos.ModeServFail
		}
		if ps.Targets == "first" {
			ph.TargetCount = 1
		} else {
			allFirst = false
		}
		phases = append(phases, ph)
	}

	// Display envelope for Table 4: the attack window spans the phases,
	// the loss column shows the peak intensity.
	first, last := phases[0], phases[len(phases)-1]
	d.DDoSStart = first.Start
	if last.Duration > 0 {
		d.DDoSDur = last.Start + last.Duration - first.Start
	}
	for _, ph := range phases {
		if ph.Intensity > d.Loss {
			d.Loss = ph.Intensity
		}
	}
	d.TargetsAll = !allFirst
	if d.QueriesBefore == 0 {
		d.QueriesBefore = int(d.DDoSStart / d.ProbeInterval)
		if d.QueriesBefore < 1 {
			d.QueriesBefore = 1
		}
	}
	if len(phases) == 1 && phases[0].Mode == ddos.ModeDrop && len(phases[0].Records) == 0 {
		// One plain loss window is exactly the legacy schedule; lowering
		// onto the scalar fields keeps the display and the trace stream
		// on the long-standing path.
		return experiment.DDoSScenario(d), nil
	}
	d.Phases = phases
	return experiment.DDoSScenario(d), nil
}
