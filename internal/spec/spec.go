// Package spec is the declarative scenario-specification layer: a
// versioned JSON document that describes one experiment — family,
// population mix, time-windowed disruption phases, transport and
// adversary knobs, engine settings — and compiles onto the Scenario API
// of internal/experiment. The spec is the single authorable surface over
// every experiment family; the committed examples/specs/ files
// regenerate every paper table through `dikes campaign`.
//
// Pipeline: Load/Parse (strict JSON — unknown fields are errors) →
// Validate (schema and cross-field rules) → Expand (matrix expansion of
// sweep axes into one spec per point) → Compile (one expanded spec →
// experiment.Scenario + experiment.RunConfig). CompileAll chains the
// last two into campaign items.
//
// Compiled configs always select the sharded engine (Shards >= 1), whose
// results are byte-identical at any shard count, so a spec pins the
// experiment's output bytes regardless of how much hardware runs it.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Spec is one scenario-spec document. Optional sections are pointers so
// "absent" is distinguishable from "present with defaults"; which
// sections a family accepts is enforced by Validate.
type Spec struct {
	// Version must equal 1.
	Version int `json:"version"`
	// Name labels the runs this spec produces; sweep expansion appends
	// one axis suffix per swept value ("-ttl60", "-flood50", ...).
	Name string `json:"name"`
	// Family selects the experiment family: caching, ddos, glue, check,
	// nxns, poison, reflect, transport, passive, retries, implications.
	Family string `json:"family"`
	// Paper, on family ddos, names committed Table 4 experiments ("A"
	// through "I"; a string or a list) instead of spelling out workload
	// and disruption by hand.
	Paper PaperList `json:"paper,omitempty"`

	Engine        *EngineSection        `json:"engine,omitempty"`
	Population    *PopulationSection    `json:"population,omitempty"`
	Workload      *WorkloadSection      `json:"workload,omitempty"`
	Disruption    []PhaseSection        `json:"disruption,omitempty"`
	Transport     *TransportSection     `json:"transport,omitempty"`
	Adversary     *AdversarySection     `json:"adversary,omitempty"`
	Observability *ObservabilitySection `json:"observability,omitempty"`
}

// EngineSection carries the simulation-engine knobs shared by every
// family. Zero values take the engine defaults (1200 probes, seed 42,
// one shard of the default cell size).
type EngineSection struct {
	Probes int `json:"probes,omitempty"`
	// Seed is a pointer so an explicit 0 survives; nil means the paper
	// seed (42).
	Seed        *int64 `json:"seed,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	ShardProbes int    `json:"shard_probes,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	KeepWorlds  bool   `json:"keep_worlds,omitempty"`
	// Trace arms deterministic query-lifecycle tracing; TraceSample
	// keeps every Nth probe (<= 1 traces all).
	Trace       bool `json:"trace,omitempty"`
	TraceSample int  `json:"trace_sample,omitempty"`
}

// PopulationSection tunes the resolver population
// (experiment.PopulationConfig's experiment-relevant subset; the
// calibration fractions stay code-side).
type PopulationSection struct {
	// Harvest is the NS-harvesting mode: "none", "aaaa", or "full".
	Harvest string `json:"harvest,omitempty"`
	// ServeStale and Prefetch arm the §7 mitigations on the direct
	// resolvers (prefetch is the fraction armed).
	ServeStale bool    `json:"serve_stale,omitempty"`
	Prefetch   float64 `json:"prefetch,omitempty"`
	// MaxFetch is the NXNSAttack max-fetch(k) mitigation; 0 disables.
	MaxFetch int `json:"max_fetch,omitempty"`
	// RandomIDs and NoBailiwick set the poisoning-resistance posture
	// population-wide.
	RandomIDs   bool `json:"random_ids,omitempty"`
	NoBailiwick bool `json:"no_bailiwick,omitempty"`
}

// WorkloadSection shapes the probing workload.
type WorkloadSection struct {
	// TTL is the zone TTL in seconds; sweepable.
	TTL *Axis `json:"ttl,omitempty"`
	// ProbeInterval and Rounds drive the caching families; Total and
	// QueriesBefore drive the ddos timeline (QueriesBefore 0 derives the
	// pre-attack round count from the first disruption window).
	ProbeInterval Duration `json:"probe_interval,omitempty"`
	Rounds        int      `json:"rounds,omitempty"`
	Total         Duration `json:"total,omitempty"`
	QueriesBefore int      `json:"queries_before,omitempty"`
	// Trials is the retries family's per-profile trial count.
	Trials int `json:"trials,omitempty"`
}

// PhaseSection is one time-windowed disruption phase of a ddos spec.
// Exactly one of Loss or AttackQPS sets the intensity.
type PhaseSection struct {
	Start Duration `json:"start,omitempty"`
	// Duration 0 means "until the end of the run" and is only legal on
	// the last phase.
	Duration Duration `json:"duration,omitempty"`
	// Loss is the direct drop/forcing probability in [0, 1].
	Loss *float64 `json:"loss,omitempty"`
	// AttackQPS/CapacityQPS describe the flood as load instead; the
	// compiler converts overload into the equivalent loss rate.
	AttackQPS   float64 `json:"attack_qps,omitempty"`
	CapacityQPS float64 `json:"capacity_qps,omitempty"`
	// Mode is the failure mode: "drop" (default), "nxdomain", or
	// "servfail".
	Mode string `json:"mode,omitempty"`
	// Targets selects the attacked authoritatives: "all" (default) or
	// "first" (Experiment D's one-NS attack).
	Targets string `json:"targets,omitempty"`
	// Records limits a forged-rcode phase to specific owner names.
	Records []string `json:"records,omitempty"`
}

// TransportSection drives the DoTCP-fallback family.
type TransportSection struct {
	// Bufs is the advertised EDNS0 buffer axis (0 = no OPT).
	Bufs []int `json:"bufs,omitempty"`
	// Flood is the UDP inbound-loss probability at the authoritatives;
	// sweepable.
	Flood *Axis `json:"flood,omitempty"`
	// TCPLoss overrides the TCP-plane loss (default flood/2).
	TCPLoss float64 `json:"tcp_loss,omitempty"`
}

// ObservabilitySection arms run-output instrumentation that never
// changes results — currently the per-bucket simulated-time timeline.
type ObservabilitySection struct {
	// Timeline collects the per-bucket answered/failed/stale/... series
	// (see internal/timeline) for every run the spec expands to.
	Timeline bool `json:"timeline,omitempty"`
	// Bucket is the bin width (default "1m", the paper's figure
	// resolution).
	Bucket Duration `json:"bucket,omitempty"`
}

// AdversarySection gathers the adversarial families' knobs; only the
// subsection matching the spec's family may be present.
type AdversarySection struct {
	NXNS    *NXNSSection    `json:"nxns,omitempty"`
	Poison  *PoisonSection  `json:"poison,omitempty"`
	Reflect *ReflectSection `json:"reflect,omitempty"`
}

// NXNSSection shapes the referral-amplification attack.
type NXNSSection struct {
	Widths []int `json:"widths,omitempty"`
	// MaxFetch is the max-fetch(k) mitigation; sweepable (the paper's
	// unmitigated-vs-k=5 comparison).
	MaxFetch *Axis `json:"max_fetch,omitempty"`
}

// PoisonSection shapes the off-path poisoning attack.
type PoisonSection struct {
	// RandomIDs and NoBailiwick are sweepable — the committed matrix is
	// their cross product.
	RandomIDs   *BoolAxis `json:"random_ids,omitempty"`
	NoBailiwick *BoolAxis `json:"no_bailiwick,omitempty"`
	IDWindow    int       `json:"id_window,omitempty"`
	Waves       int       `json:"waves,omitempty"`
	WaveEvery   Duration  `json:"wave_every,omitempty"`
	PortGuess   float64   `json:"port_guess,omitempty"`
}

// ReflectSection shapes the reflection-amplification measurement.
type ReflectSection struct {
	Every    Duration `json:"every,omitempty"`
	EDNSSize int      `json:"edns_size,omitempty"`
}

// ---- Leaf JSON types ----

// Duration is a time.Duration that reads and writes Go duration strings
// ("10m", "1h30m") — bare JSON numbers are rejected as ambiguous.
type Duration time.Duration

func (d Duration) D() time.Duration { return time.Duration(d) }

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"10m\", got %s", b)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Axis is a numeric spec field that is either a scalar or a sweep
// declaration {"sweep": [v1, v2, ...]}. Expand turns sweeps into
// scalars; Compile rejects any sweep that survives.
type Axis struct {
	value float64
	sweep []float64 // non-nil marks an unexpanded sweep
}

// ScalarAxis returns a scalar axis (used by expansion and tests).
func ScalarAxis(v float64) *Axis { return &Axis{value: v} }

// Value returns the scalar value; only meaningful when !IsSweep.
func (a *Axis) Value() float64 { return a.value }

// IsSweep reports whether the axis is an unexpanded sweep.
func (a *Axis) IsSweep() bool { return a.sweep != nil }

// Sweep returns the sweep values (nil for a scalar).
func (a *Axis) Sweep() []float64 { return a.sweep }

func (a *Axis) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*a = Axis{value: v}
		return nil
	}
	var obj struct {
		Sweep *[]float64 `json:"sweep"`
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil || obj.Sweep == nil {
		return fmt.Errorf("axis must be a number or {\"sweep\": [...]}, got %s", b)
	}
	*a = Axis{sweep: *obj.Sweep}
	return nil
}

func (a Axis) MarshalJSON() ([]byte, error) {
	if a.sweep != nil {
		return json.Marshal(struct {
			Sweep []float64 `json:"sweep"`
		}{a.sweep})
	}
	return json.Marshal(a.value)
}

// BoolAxis is Axis for boolean knobs (the poisoning matrix axes).
type BoolAxis struct {
	value bool
	sweep []bool
}

// ScalarBoolAxis returns a scalar boolean axis.
func ScalarBoolAxis(v bool) *BoolAxis { return &BoolAxis{value: v} }

func (a *BoolAxis) Value() bool   { return a.value }
func (a *BoolAxis) IsSweep() bool { return a.sweep != nil }
func (a *BoolAxis) Sweep() []bool { return a.sweep }

func (a *BoolAxis) UnmarshalJSON(b []byte) error {
	var v bool
	if err := json.Unmarshal(b, &v); err == nil {
		*a = BoolAxis{value: v}
		return nil
	}
	var obj struct {
		Sweep *[]bool `json:"sweep"`
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil || obj.Sweep == nil {
		return fmt.Errorf("axis must be a bool or {\"sweep\": [...]}, got %s", b)
	}
	*a = BoolAxis{sweep: *obj.Sweep}
	return nil
}

func (a BoolAxis) MarshalJSON() ([]byte, error) {
	if a.sweep != nil {
		return json.Marshal(struct {
			Sweep []bool `json:"sweep"`
		}{a.sweep})
	}
	return json.Marshal(a.value)
}

// PaperList is the "paper" field: a single experiment name or a list.
type PaperList []string

func (p *PaperList) UnmarshalJSON(b []byte) error {
	var one string
	if err := json.Unmarshal(b, &one); err == nil {
		*p = PaperList{one}
		return nil
	}
	var many []string
	if err := json.Unmarshal(b, &many); err != nil {
		return fmt.Errorf("paper must be a string or a list of strings, got %s", b)
	}
	*p = PaperList(many)
	return nil
}

func (p PaperList) MarshalJSON() ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(p[0])
	}
	return json.Marshal([]string(p))
}

// ---- Parse ----

// Parse strict-decodes one spec document and validates it. Unknown
// fields anywhere in the document are errors — a typoed knob must never
// silently run the default experiment.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the document")
	}
	if err := Validate(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses the spec file at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
