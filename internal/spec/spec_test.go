package spec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ddos"
	"repro/internal/experiment"
)

// mustParse parses a spec that the test requires to be valid.
func mustParse(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

// wantErr asserts that parsing fails and the error mentions want.
func wantErr(t *testing.T, doc, want string) {
	t.Helper()
	_, err := Parse([]byte(doc))
	if err == nil {
		t.Fatalf("Parse accepted invalid spec (want error containing %q):\n%s", want, doc)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	// Top level.
	wantErr(t, `{"version": 1, "name": "x", "family": "glue", "bogus": 3}`, "bogus")
	// Nested section.
	wantErr(t, `{"version": 1, "name": "x", "family": "caching",
		"workload": {"ttl": 60, "probe_intervall": "20m"}}`, "probe_intervall")
	// Inside a disruption phase.
	wantErr(t, `{"version": 1, "name": "x", "family": "ddos",
		"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"},
		"disruption": [{"start": "60m", "duration": "30m", "loss": 1, "intensity": 2}]}`,
		"intensity")
}

func TestParseRejectsSchemaViolations(t *testing.T) {
	t.Parallel()
	wantErr(t, `{"version": 2, "name": "x", "family": "glue"}`, "version")
	wantErr(t, `{"version": 1, "family": "glue"}`, "name")
	wantErr(t, `{"version": 1, "name": "x", "family": "flood"}`, "unknown family")
	// Section not taken by the family.
	wantErr(t, `{"version": 1, "name": "x", "family": "glue", "transport": {}}`,
		"does not take a transport section")
	// paper conflicts with an explicit workload.
	wantErr(t, `{"version": 1, "name": "x", "family": "ddos", "paper": "B",
		"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"}}`,
		"mutually exclusive")
	wantErr(t, `{"version": 1, "name": "x", "family": "ddos", "paper": ["B", "Z"]}`,
		"unknown paper experiment")
	// Durations must be strings.
	wantErr(t, `{"version": 1, "name": "x", "family": "caching",
		"workload": {"probe_interval": 1200}}`, "duration must be a string")
}

func TestParseRejectsBadPhases(t *testing.T) {
	t.Parallel()
	base := func(phases string) string {
		return `{"version": 1, "name": "x", "family": "ddos",
			"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"},
			"disruption": [` + phases + `]}`
	}
	// Overlapping windows.
	wantErr(t, base(`{"start": "60m", "duration": "40m", "loss": 1},
		{"start": "80m", "duration": "20m", "loss": 0.5}`), "overlaps")
	// Open-ended phase before the last.
	wantErr(t, base(`{"start": "60m", "loss": 1},
		{"start": "90m", "duration": "10m", "loss": 0.5}`), "only legal on the last phase")
	// Loss out of range.
	wantErr(t, base(`{"start": "60m", "duration": "30m", "loss": 1.5}`), "[0, 1]")
	// Both intensity forms at once.
	wantErr(t, base(`{"start": "60m", "duration": "30m", "loss": 1, "attack_qps": 100}`),
		"exactly one of loss or attack_qps")
	// Neither intensity form.
	wantErr(t, base(`{"start": "60m", "duration": "30m"}`), "exactly one of loss or attack_qps")
	// Unknown mode / targets.
	wantErr(t, base(`{"start": "60m", "duration": "30m", "loss": 1, "mode": "slow"}`), "mode")
	wantErr(t, base(`{"start": "60m", "duration": "30m", "loss": 1, "targets": "second"}`), "targets")
	// Records need a forced-rcode mode.
	wantErr(t, base(`{"start": "60m", "duration": "30m", "loss": 1, "records": ["a.nl."]}`),
		"records require mode nxdomain or servfail")
}

func TestParseRejectsBadSweeps(t *testing.T) {
	t.Parallel()
	// Empty sweep.
	wantErr(t, `{"version": 1, "name": "x", "family": "caching",
		"workload": {"ttl": {"sweep": []}}}`, "empty sweep")
	// Malformed axis value.
	wantErr(t, `{"version": 1, "name": "x", "family": "caching",
		"workload": {"ttl": {"sweep": [60], "also": 1}}}`, "axis")
	wantErr(t, `{"version": 1, "name": "x", "family": "caching",
		"workload": {"ttl": "sixty"}}`, "axis")
	// Sweep values still range-checked.
	wantErr(t, `{"version": 1, "name": "x", "family": "transport",
		"transport": {"flood": {"sweep": [0, 1.5]}}}`, "[0, 1]")
}

func TestExpandPaperList(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "paper", "family": "ddos",
		"paper": ["A", "B", "C"]}`)
	out, err := Expand(s)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var names []string
	for _, sp := range out {
		names = append(names, sp.Name)
	}
	if got, want := strings.Join(names, " "), "paper-A paper-B paper-C"; got != want {
		t.Errorf("expanded names = %q, want %q", got, want)
	}
}

func TestExpandPoisonMatrixOrder(t *testing.T) {
	t.Parallel()
	// The committed poisoning matrix's column order: the spec declares
	// random_ids [false, true] (outer) and no_bailiwick [true, false]
	// (inner); expansion preserves the declared orders.
	s := mustParse(t, `{"version": 1, "name": "poison", "family": "poison",
		"adversary": {"poison": {
			"random_ids": {"sweep": [false, true]},
			"no_bailiwick": {"sweep": [true, false]}}}}`)
	out, err := Expand(s)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var names []string
	for _, sp := range out {
		names = append(names, sp.Name)
	}
	want := "poison-seqid-nobw poison-seqid-bw poison-randid-nobw poison-randid-bw"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("poison matrix order = %q, want %q", got, want)
	}
}

func TestExpandTTLSweep(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "caching", "family": "caching",
		"workload": {"ttl": {"sweep": [60, 1800]}, "probe_interval": "20m"}}`)
	out, err := Expand(s)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(out) != 2 || out[0].Name != "caching-ttl60" || out[1].Name != "caching-ttl1800" {
		t.Fatalf("ttl sweep expansion wrong: %+v", out)
	}
	if out[0].Workload.TTL.IsSweep() || out[0].Workload.TTL.Value() != 60 {
		t.Errorf("expanded axis not scalar 60: %+v", out[0].Workload.TTL)
	}
	// The shared sections survive the clone.
	if out[1].Workload.ProbeInterval.D() != 20*time.Minute {
		t.Errorf("probe_interval lost in expansion: %v", out[1].Workload.ProbeInterval.D())
	}
}

func TestCompileRejectsUnexpandedSweep(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "caching", "family": "caching",
		"workload": {"ttl": {"sweep": [60, 1800]}}}`)
	if _, _, err := Compile(s); err == nil || !strings.Contains(err.Error(), "unexpanded sweep") {
		t.Fatalf("Compile accepted an unexpanded sweep: %v", err)
	}
}

func TestCompileDefaults(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "g", "family": "glue"}`)
	sc, cfg, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sc.Name() != "glue" {
		t.Errorf("scenario = %q, want glue", sc.Name())
	}
	if cfg.Seed != DefaultSeed || cfg.Shards != 1 {
		t.Errorf("defaults: Seed=%d Shards=%d, want %d/1", cfg.Seed, cfg.Shards, int64(DefaultSeed))
	}
}

func TestCompileStagedPhases(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "staged", "family": "ddos",
		"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"},
		"disruption": [
			{"start": "60m", "duration": "30m", "loss": 0.5, "mode": "servfail",
			 "records": ["1414.cachetest.nl."]},
			{"start": "90m", "duration": "30m", "loss": 1}
		]}`)
	sc, _, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ds := sc.(interface{ Spec() experiment.DDoSSpec }).Spec()
	if len(ds.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2", ds.Phases)
	}
	p0, p1 := ds.Phases[0], ds.Phases[1]
	if p0.Mode != ddos.ModeServFail || p0.Intensity != 0.5 || p0.Start != 60*time.Minute ||
		p0.Duration != 30*time.Minute || len(p0.Records) != 1 {
		t.Errorf("phase 0 miscompiled: %+v", p0)
	}
	if p1.Mode != ddos.ModeDrop || p1.Intensity != 1 || p1.Start != 90*time.Minute {
		t.Errorf("phase 1 miscompiled: %+v", p1)
	}
	// Display envelope spans the staged window; pre-attack rounds derive
	// from the first phase.
	if ds.DDoSStart != 60*time.Minute || ds.DDoSDur != 60*time.Minute || ds.Loss != 1 {
		t.Errorf("envelope: start=%v dur=%v loss=%v", ds.DDoSStart, ds.DDoSDur, ds.Loss)
	}
	if ds.QueriesBefore != 6 {
		t.Errorf("QueriesBefore = %d, want 6", ds.QueriesBefore)
	}
}

func TestCompileSingleDropLowersToLegacyWindow(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "simple", "family": "ddos",
		"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"},
		"disruption": [{"start": "60m", "duration": "60m", "loss": 0.9, "targets": "first"}]}`)
	sc, _, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ds := sc.(interface{ Spec() experiment.DDoSSpec }).Spec()
	if len(ds.Phases) != 0 {
		t.Errorf("single drop phase should lower onto the legacy scalar window, got phases %+v", ds.Phases)
	}
	if ds.Loss != 0.9 || ds.DDoSStart != time.Hour || ds.DDoSDur != time.Hour || ds.TargetsAll {
		t.Errorf("legacy window miscompiled: %+v", ds)
	}
}

func TestCompileFloodIntensity(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "flood", "family": "ddos",
		"workload": {"ttl": 1800, "probe_interval": "10m", "total": "3h"},
		"disruption": [{"start": "60m", "duration": "60m",
			"attack_qps": 300, "capacity_qps": 100}]}`)
	sc, _, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ds := sc.(interface{ Spec() experiment.DDoSSpec }).Spec()
	want := ddos.Flood{AttackQPS: 300, CapacityQPS: 100}.LossRate()
	if ds.Loss != want {
		t.Errorf("flood-form intensity = %v, want LossRate %v", ds.Loss, want)
	}
}

func TestCompilePopulation(t *testing.T) {
	t.Parallel()
	s := mustParse(t, `{"version": 1, "name": "p", "family": "nxns",
		"population": {"harvest": "full", "serve_stale": true, "prefetch": 0.5, "max_fetch": 5},
		"adversary": {"nxns": {"max_fetch": 5}}}`)
	_, cfg, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pop := cfg.Population
	if !pop.ServeStaleDirect || pop.PrefetchDirect != 0.5 || pop.MaxFetch != 5 {
		t.Errorf("population miscompiled: %+v", pop)
	}
}
