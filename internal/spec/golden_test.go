package spec

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestCompileGoldens pins, for every committed example spec, the exact
// scenarios and run configs the compiler produces. When the schema or the
// lowering changes, the diff must be inspected and the goldens regenerated
// with -update — this is the drift gate for examples/specs/.
func TestCompileGoldens(t *testing.T) {
	t.Parallel()
	root := filepath.Join("..", "..", "examples", "specs")
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", root, err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example specs under %s", root)
	}
	sort.Strings(paths)

	for _, path := range paths {
		rel, _ := filepath.Rel(root, path)
		goldenName := strings.ReplaceAll(strings.TrimSuffix(rel, ".json"), string(filepath.Separator), "-") + ".golden"
		t.Run(goldenName, func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			items, err := CompileAll(s, rel)
			if err != nil {
				t.Fatalf("CompileAll: %v", err)
			}
			got := renderItems(items)
			goldenPath := filepath.Join("testdata", goldenName)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/spec -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("compiled output drifted from %s.\ngot:\n%swant:\n%s\n(regenerate with go test ./internal/spec -update after inspecting the diff)",
					goldenPath, got, want)
			}
		})
	}
}

// renderItems formats compiled campaign items deterministically: no
// pointer addresses, explicit field names, one block per run.
func renderItems(items []experiment.CampaignItem) string {
	var b strings.Builder
	for i, it := range items {
		fmt.Fprintf(&b, "run %d: %s\n", i+1, it.Name)
		fmt.Fprintf(&b, "  scenario: %s\n", it.Scenario.Name())
		b.WriteString(renderConfig(it.Config))
		b.WriteString(renderLowered(it.Scenario))
		b.WriteString("\n")
	}
	return b.String()
}

func renderConfig(cfg experiment.RunConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  config: Probes=%d Seed=%d Shards=%d ShardProbes=%d Workers=%d KeepWorlds=%t\n",
		cfg.Probes, cfg.Seed, cfg.Shards, cfg.ShardProbes, cfg.Workers, cfg.KeepWorlds)
	if cfg.TTL != 0 || cfg.ProbeInterval != 0 || cfg.Rounds != 0 {
		fmt.Fprintf(&b, "  workload: TTL=%d ProbeInterval=%v Rounds=%d\n", cfg.TTL, cfg.ProbeInterval, cfg.Rounds)
	}
	if cfg.Population != (experiment.PopulationConfig{}) {
		fmt.Fprintf(&b, "  population: %+v\n", cfg.Population)
	}
	if cfg.Trace != nil {
		fmt.Fprintf(&b, "  trace: %+v\n", *cfg.Trace)
	}
	if cfg.Timeline != nil {
		fmt.Fprintf(&b, "  timeline: %+v\n", *cfg.Timeline)
	}
	return b.String()
}

// renderLowered prints the family-specific spec a scenario wraps, via the
// Spec() accessors the experiment package exposes for exactly this purpose.
func renderLowered(sc experiment.Scenario) string {
	switch s := sc.(type) {
	case interface{ Spec() experiment.DDoSSpec }:
		d := s.Spec()
		var b strings.Builder
		fmt.Fprintf(&b, "  ddos: TTL=%d Start=%v Dur=%v Loss=%g TargetsAll=%t QueriesBefore=%d Total=%v Interval=%v\n",
			d.TTL, d.DDoSStart, d.DDoSDur, d.Loss, d.TargetsAll, d.QueriesBefore, d.TotalDur, d.ProbeInterval)
		for i, ph := range d.Phases {
			fmt.Fprintf(&b, "  phase %d: Start=%v Duration=%v Intensity=%g Mode=%v Targets=%d Records=%v\n",
				i, ph.Start, ph.Duration, ph.Intensity, ph.Mode, ph.TargetCount, ph.Records)
		}
		return b.String()
	case interface{ Spec() experiment.NXNSSpec }:
		return fmt.Sprintf("  nxns: %+v\n", s.Spec())
	case interface{ Spec() experiment.PoisonSpec }:
		return fmt.Sprintf("  poison: %+v\n", s.Spec())
	case interface{ Spec() experiment.ReflectSpec }:
		return fmt.Sprintf("  reflect: %+v\n", s.Spec())
	case interface {
		Spec() experiment.TransportSpec
	}:
		return fmt.Sprintf("  transport: %+v\n", s.Spec())
	}
	return ""
}
