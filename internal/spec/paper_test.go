package spec

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestPaperCampaignReproducesCommittedTables replays the committed
// examples/specs/ campaigns through the library (Load → CompileAll →
// RunCampaign → RenderCampaign) and pins the output against the committed
// report tables, at Shards 1 and 4. This is the full-scale determinism
// gate: ~1500 probes per run, tens of seconds per leg, so it is opt-in.
//
//	DIKES_PAPER_CAMPAIGN=1 go test ./internal/spec -run PaperCampaign -v
func TestPaperCampaignReproducesCommittedTables(t *testing.T) {
	if os.Getenv("DIKES_PAPER_CAMPAIGN") == "" {
		t.Skip("set DIKES_PAPER_CAMPAIGN=1 to run the full-scale paper campaign reproduction")
	}
	root := filepath.Join("..", "..")
	cases := []struct {
		committed string
		specs     string
	}{
		{"paper_run.txt", filepath.Join("examples", "specs", "paper")},
		{"paper_run_adversary.txt", filepath.Join("examples", "specs", "adversary")},
		{"paper_run_transport.txt", filepath.Join("examples", "specs", "transport.json")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.committed, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(root, tc.committed))
			if err != nil {
				t.Fatalf("read committed table: %v", err)
			}
			want := reportBody(string(raw))
			if want == "" {
				t.Fatalf("no 'campaign:' report body in %s", tc.committed)
			}
			for _, shards := range []int{1, 4} {
				items := compileSpecSet(t, filepath.Join(root, tc.specs), shards)
				results, err := experiment.RunCampaign(context.Background(), items, 0)
				if err != nil {
					t.Fatalf("RunCampaign (shards %d): %v", shards, err)
				}
				got := reportBody(experiment.RenderCampaign(results))
				if got != want {
					t.Errorf("shards=%d: rendered campaign differs from committed %s (regenerate with scripts/regen_tables.sh after inspecting)",
						shards, tc.committed)
				}
			}
		})
	}
}

// compileSpecSet loads every spec under path (file or directory, lexical
// order) and compiles it, overriding the engine shard count like the
// dikes -shards flag does.
func compileSpecSet(t *testing.T, path string, shards int) []experiment.CampaignItem {
	t.Helper()
	var paths []string
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir() {
		err := filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".json") {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		paths = []string{path}
	}
	var items []experiment.CampaignItem
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			t.Fatalf("Load %s: %v", p, err)
		}
		compiled, err := CompileAll(s, filepath.Base(p))
		if err != nil {
			t.Fatalf("CompileAll %s: %v", p, err)
		}
		for i := range compiled {
			compiled[i].Config.Shards = shards
		}
		items = append(items, compiled...)
	}
	return items
}

// reportBody strips everything outside the RenderCampaign output: the
// '#' header comments, the cmd preamble, and the wall-time footer. The
// body starts at the first line beginning with "campaign: ".
func reportBody(s string) string {
	lines := strings.Split(s, "\n")
	start := -1
	for i, ln := range lines {
		if strings.HasPrefix(ln, "campaign: ") {
			start = i
			break
		}
	}
	if start < 0 {
		return ""
	}
	var out []string
	for _, ln := range lines[start:] {
		if strings.HasPrefix(ln, "total wall time:") {
			continue
		}
		out = append(out, ln)
	}
	return strings.TrimRight(strings.Join(out, "\n"), "\n")
}
