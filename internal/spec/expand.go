package spec

import (
	"encoding/json"
	"fmt"
)

// Expand performs matrix expansion: every sweep axis in s multiplies the
// spec into one copy per value (cartesian product across axes, in the
// fixed axis order paper → ttl → flood → max_fetch → random_ids →
// no_bailiwick, each sweep in its declared value order). Run names get
// one suffix per swept axis, so expansion order — and therefore campaign
// report order — is deterministic and authorable: the committed
// poisoning matrix, for example, is exactly the declared sweep orders of
// its two boolean axes. A spec with no sweeps expands to itself.
func Expand(s *Spec) ([]*Spec, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	list := []*Spec{clone(s)}
	for _, ax := range expanders {
		var next []*Spec
		for _, sp := range list {
			next = append(next, ax(sp)...)
		}
		list = next
	}
	return list, nil
}

// expanders are the sweepable axes in expansion order. Each takes one
// spec and returns its expansion along that axis (identity for scalars).
var expanders = []func(*Spec) []*Spec{
	expandPaper,
	expandTTL,
	expandFlood,
	expandMaxFetch,
	expandRandomIDs,
	expandNoBailiwick,
}

func expandPaper(s *Spec) []*Spec {
	if len(s.Paper) <= 1 {
		return []*Spec{s}
	}
	out := make([]*Spec, 0, len(s.Paper))
	for _, name := range s.Paper {
		c := clone(s)
		c.Name = s.Name + "-" + name
		c.Paper = PaperList{name}
		out = append(out, c)
	}
	return out
}

func expandTTL(s *Spec) []*Spec {
	if s.Workload == nil || s.Workload.TTL == nil || !s.Workload.TTL.IsSweep() {
		return []*Spec{s}
	}
	out := make([]*Spec, 0, len(s.Workload.TTL.Sweep()))
	for _, v := range s.Workload.TTL.Sweep() {
		c := clone(s)
		c.Name = fmt.Sprintf("%s-ttl%d", s.Name, int64(v))
		c.Workload.TTL = ScalarAxis(v)
		out = append(out, c)
	}
	return out
}

func expandFlood(s *Spec) []*Spec {
	if s.Transport == nil || s.Transport.Flood == nil || !s.Transport.Flood.IsSweep() {
		return []*Spec{s}
	}
	out := make([]*Spec, 0, len(s.Transport.Flood.Sweep()))
	for _, v := range s.Transport.Flood.Sweep() {
		c := clone(s)
		c.Name = fmt.Sprintf("%s-flood%.0f", s.Name, 100*v)
		c.Transport.Flood = ScalarAxis(v)
		out = append(out, c)
	}
	return out
}

func expandMaxFetch(s *Spec) []*Spec {
	if s.Adversary == nil || s.Adversary.NXNS == nil ||
		s.Adversary.NXNS.MaxFetch == nil || !s.Adversary.NXNS.MaxFetch.IsSweep() {
		return []*Spec{s}
	}
	out := make([]*Spec, 0, len(s.Adversary.NXNS.MaxFetch.Sweep()))
	for _, v := range s.Adversary.NXNS.MaxFetch.Sweep() {
		c := clone(s)
		c.Name = fmt.Sprintf("%s-k%d", s.Name, int64(v))
		c.Adversary.NXNS.MaxFetch = ScalarAxis(v)
		out = append(out, c)
	}
	return out
}

func expandRandomIDs(s *Spec) []*Spec {
	if s.Adversary == nil || s.Adversary.Poison == nil ||
		s.Adversary.Poison.RandomIDs == nil || !s.Adversary.Poison.RandomIDs.IsSweep() {
		return []*Spec{s}
	}
	var out []*Spec
	for _, v := range s.Adversary.Poison.RandomIDs.Sweep() {
		c := clone(s)
		c.Name = s.Name + boolSuffix(v, "-randid", "-seqid")
		c.Adversary.Poison.RandomIDs = ScalarBoolAxis(v)
		out = append(out, c)
	}
	return out
}

func expandNoBailiwick(s *Spec) []*Spec {
	if s.Adversary == nil || s.Adversary.Poison == nil ||
		s.Adversary.Poison.NoBailiwick == nil || !s.Adversary.Poison.NoBailiwick.IsSweep() {
		return []*Spec{s}
	}
	var out []*Spec
	for _, v := range s.Adversary.Poison.NoBailiwick.Sweep() {
		c := clone(s)
		c.Name = s.Name + boolSuffix(v, "-nobw", "-bw")
		c.Adversary.Poison.NoBailiwick = ScalarBoolAxis(v)
		out = append(out, c)
	}
	return out
}

func boolSuffix(v bool, t, f string) string {
	if v {
		return t
	}
	return f
}

// clone deep-copies a spec via its JSON form (every leaf type
// round-trips by construction).
func clone(s *Spec) *Spec {
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("spec: clone marshal: %v", err))
	}
	var c Spec
	if err := json.Unmarshal(data, &c); err != nil {
		panic(fmt.Sprintf("spec: clone unmarshal: %v", err))
	}
	return &c
}
