package spec

import (
	"fmt"

	"repro/internal/experiment"
)

// familyRule says which optional sections a family accepts (engine is
// always legal).
type familyRule struct {
	population, workload, disruption, transport, adversary, paper, observability bool
}

var families = map[string]familyRule{
	"caching":      {population: true, workload: true},
	"ddos":         {population: true, workload: true, disruption: true, paper: true, observability: true},
	"glue":         {},
	"check":        {},
	"nxns":         {population: true, adversary: true},
	"poison":       {adversary: true},
	"reflect":      {adversary: true},
	"transport":    {transport: true},
	"passive":      {},
	"retries":      {workload: true},
	"implications": {},
}

var harvestModes = map[string]bool{"": true, "none": true, "aaaa": true, "full": true}
var phaseModes = map[string]bool{"": true, "drop": true, "nxdomain": true, "servfail": true}
var phaseTargets = map[string]bool{"": true, "all": true, "first": true}

// Validate checks one spec document against the schema rules: known
// family, only that family's sections present, well-formed engine and
// phase values, resolvable paper names, and non-overlapping disruption
// windows. Parse calls it; Compile calls it again so hand-built specs
// get the same checks.
func Validate(s *Spec) error {
	if s.Version != Version {
		return fmt.Errorf("spec %q: version must be %d, got %d", s.Name, Version, s.Version)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	rule, ok := families[s.Family]
	if !ok {
		return fmt.Errorf("spec %q: unknown family %q", s.Name, s.Family)
	}
	bad := func(section string) error {
		return fmt.Errorf("spec %q: family %s does not take a %s section", s.Name, s.Family, section)
	}
	switch {
	case s.Population != nil && !rule.population:
		return bad("population")
	case s.Workload != nil && !rule.workload:
		return bad("workload")
	case s.Disruption != nil && !rule.disruption:
		return bad("disruption")
	case s.Transport != nil && !rule.transport:
		return bad("transport")
	case s.Adversary != nil && !rule.adversary:
		return bad("adversary")
	case s.Paper != nil && !rule.paper:
		return bad("paper")
	case s.Observability != nil && !rule.observability:
		return bad("observability")
	}
	if o := s.Observability; o != nil && o.Bucket.D() < 0 {
		return fmt.Errorf("spec %q: observability.bucket must be positive, got %v", s.Name, o.Bucket.D())
	}
	if err := validateEngine(s); err != nil {
		return err
	}
	if err := validatePopulation(s); err != nil {
		return err
	}
	if err := validateWorkload(s); err != nil {
		return err
	}
	if err := validateFamily(s); err != nil {
		return err
	}
	return nil
}

func validateEngine(s *Spec) error {
	e := s.Engine
	if e == nil {
		return nil
	}
	switch {
	case e.Probes < 0:
		return fmt.Errorf("spec %q: engine.probes must be >= 0", s.Name)
	case e.Shards < 0:
		return fmt.Errorf("spec %q: engine.shards must be >= 0", s.Name)
	case e.ShardProbes < 0 || e.ShardProbes > experiment.MaxShardProbes:
		return fmt.Errorf("spec %q: engine.shard_probes must be in [0, %d]", s.Name, experiment.MaxShardProbes)
	}
	return nil
}

func validatePopulation(s *Spec) error {
	p := s.Population
	if p == nil {
		return nil
	}
	if !harvestModes[p.Harvest] {
		return fmt.Errorf("spec %q: population.harvest must be \"none\", \"aaaa\", or \"full\", got %q", s.Name, p.Harvest)
	}
	if p.Prefetch < 0 || p.Prefetch > 1 {
		return fmt.Errorf("spec %q: population.prefetch must be in [0, 1]", s.Name)
	}
	if p.MaxFetch < 0 {
		return fmt.Errorf("spec %q: population.max_fetch must be >= 0", s.Name)
	}
	return nil
}

func validateWorkload(s *Spec) error {
	w := s.Workload
	if w == nil {
		return nil
	}
	if w.TTL != nil {
		if err := eachAxis(w.TTL, "workload.ttl", s.Name, func(v float64) error {
			if v <= 0 || v != float64(int64(v)) || v > 1<<31 {
				return fmt.Errorf("spec %q: workload.ttl values must be positive integer seconds, got %g", s.Name, v)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if w.ProbeInterval < 0 || w.Total < 0 {
		return fmt.Errorf("spec %q: workload durations must be >= 0", s.Name)
	}
	if w.Rounds < 0 || w.QueriesBefore < 0 || w.Trials < 0 {
		return fmt.Errorf("spec %q: workload counts must be >= 0", s.Name)
	}
	return nil
}

// eachAxis applies check to the axis's scalar or every sweep value and
// rejects empty sweeps.
func eachAxis(a *Axis, field, name string, check func(float64) error) error {
	if a.IsSweep() {
		if len(a.Sweep()) == 0 {
			return fmt.Errorf("spec %q: %s: empty sweep", name, field)
		}
		for _, v := range a.Sweep() {
			if err := check(v); err != nil {
				return err
			}
		}
		return nil
	}
	return check(a.Value())
}

func validateFamily(s *Spec) error {
	switch s.Family {
	case "ddos":
		return validateDDoS(s)
	case "transport":
		return validateTransport(s)
	case "nxns", "poison", "reflect":
		return validateAdversary(s)
	}
	return nil
}

func validateDDoS(s *Spec) error {
	if len(s.Paper) > 0 {
		if s.Workload != nil || s.Disruption != nil {
			return fmt.Errorf("spec %q: paper is mutually exclusive with workload/disruption", s.Name)
		}
		for _, name := range s.Paper {
			if _, ok := experiment.SpecByName(name); !ok {
				return fmt.Errorf("spec %q: unknown paper experiment %q", s.Name, name)
			}
		}
		return nil
	}
	w := s.Workload
	if w == nil || w.Total <= 0 || w.ProbeInterval <= 0 {
		return fmt.Errorf("spec %q: family ddos needs workload.total and workload.probe_interval (or a paper list)", s.Name)
	}
	if w.TTL == nil {
		return fmt.Errorf("spec %q: family ddos needs workload.ttl", s.Name)
	}
	if len(s.Disruption) == 0 {
		return fmt.Errorf("spec %q: family ddos needs at least one disruption phase (or a paper list)", s.Name)
	}
	prevEnd := Duration(0)
	for i, ph := range s.Disruption {
		at := fmt.Sprintf("disruption[%d]", i)
		if ph.Start < 0 {
			return fmt.Errorf("spec %q: %s: start must be >= 0", s.Name, at)
		}
		if ph.Duration < 0 {
			return fmt.Errorf("spec %q: %s: duration must be >= 0", s.Name, at)
		}
		if ph.Duration == 0 && i != len(s.Disruption)-1 {
			return fmt.Errorf("spec %q: %s: duration 0 (open-ended) is only legal on the last phase", s.Name, at)
		}
		hasLoss, hasFlood := ph.Loss != nil, ph.AttackQPS > 0
		if hasLoss == hasFlood {
			return fmt.Errorf("spec %q: %s: exactly one of loss or attack_qps must be set", s.Name, at)
		}
		if hasLoss && (*ph.Loss < 0 || *ph.Loss > 1) {
			return fmt.Errorf("spec %q: %s: loss must be in [0, 1]", s.Name, at)
		}
		if hasFlood && ph.CapacityQPS < 0 {
			return fmt.Errorf("spec %q: %s: capacity_qps must be >= 0", s.Name, at)
		}
		if !phaseModes[ph.Mode] {
			return fmt.Errorf("spec %q: %s: mode must be \"drop\", \"nxdomain\", or \"servfail\", got %q", s.Name, at, ph.Mode)
		}
		if !phaseTargets[ph.Targets] {
			return fmt.Errorf("spec %q: %s: targets must be \"all\" or \"first\", got %q", s.Name, at, ph.Targets)
		}
		if len(ph.Records) > 0 && (ph.Mode == "" || ph.Mode == "drop") {
			return fmt.Errorf("spec %q: %s: records require mode nxdomain or servfail", s.Name, at)
		}
		if i > 0 && ph.Start < prevEnd {
			return fmt.Errorf("spec %q: %s: overlaps the previous phase (starts %v before %v)", s.Name, at, ph.Start.D(), prevEnd.D())
		}
		prevEnd = ph.Start + ph.Duration
	}
	return nil
}

func validateTransport(s *Spec) error {
	t := s.Transport
	if t == nil {
		return nil
	}
	for _, b := range t.Bufs {
		if b < 0 || b > 65535 {
			return fmt.Errorf("spec %q: transport.bufs values must be in [0, 65535]", s.Name)
		}
	}
	if t.Flood != nil {
		if err := eachAxis(t.Flood, "transport.flood", s.Name, func(v float64) error {
			if v < 0 || v > 1 {
				return fmt.Errorf("spec %q: transport.flood values must be in [0, 1], got %g", s.Name, v)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if t.TCPLoss < 0 || t.TCPLoss > 1 {
		return fmt.Errorf("spec %q: transport.tcp_loss must be in [0, 1]", s.Name)
	}
	return nil
}

func validateAdversary(s *Spec) error {
	a := s.Adversary
	if a == nil {
		return nil
	}
	switch s.Family {
	case "nxns":
		if a.Poison != nil || a.Reflect != nil {
			return fmt.Errorf("spec %q: family nxns only takes adversary.nxns", s.Name)
		}
		if n := a.NXNS; n != nil {
			for _, w := range n.Widths {
				if w <= 0 {
					return fmt.Errorf("spec %q: adversary.nxns.widths must be positive", s.Name)
				}
			}
			if n.MaxFetch != nil {
				if err := eachAxis(n.MaxFetch, "adversary.nxns.max_fetch", s.Name, func(v float64) error {
					if v < 0 || v != float64(int64(v)) {
						return fmt.Errorf("spec %q: adversary.nxns.max_fetch values must be non-negative integers, got %g", s.Name, v)
					}
					return nil
				}); err != nil {
					return err
				}
			}
		}
	case "poison":
		if a.NXNS != nil || a.Reflect != nil {
			return fmt.Errorf("spec %q: family poison only takes adversary.poison", s.Name)
		}
		if p := a.Poison; p != nil {
			if p.RandomIDs != nil && p.RandomIDs.IsSweep() && len(p.RandomIDs.Sweep()) == 0 {
				return fmt.Errorf("spec %q: adversary.poison.random_ids: empty sweep", s.Name)
			}
			if p.NoBailiwick != nil && p.NoBailiwick.IsSweep() && len(p.NoBailiwick.Sweep()) == 0 {
				return fmt.Errorf("spec %q: adversary.poison.no_bailiwick: empty sweep", s.Name)
			}
			if p.IDWindow < 0 || p.Waves < 0 || p.WaveEvery < 0 {
				return fmt.Errorf("spec %q: adversary.poison counts must be >= 0", s.Name)
			}
			if p.PortGuess < 0 || p.PortGuess > 1 {
				return fmt.Errorf("spec %q: adversary.poison.port_guess must be in [0, 1]", s.Name)
			}
		}
	case "reflect":
		if a.NXNS != nil || a.Poison != nil {
			return fmt.Errorf("spec %q: family reflect only takes adversary.reflect", s.Name)
		}
		if r := a.Reflect; r != nil {
			if r.Every < 0 {
				return fmt.Errorf("spec %q: adversary.reflect.every must be >= 0", s.Name)
			}
			if r.EDNSSize < 0 || r.EDNSSize > 65535 {
				return fmt.Errorf("spec %q: adversary.reflect.edns_size must be in [0, 65535]", s.Name)
			}
		}
	}
	return nil
}
