// Package vantage emulates the paper's measurement platform: a fleet of
// RIPE-Atlas-like probes, each querying its recursive resolvers for a
// probe-unique AAAA record at a fixed pacing (§3.2). Every (probe,
// recursive) pair is one vantage point (VP). Answers encode
// (serial, probeID, ttl) in the AAAA RDATA so the classifier can tell
// cached data from fresh data.
package vantage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stub"
	"repro/internal/trace"
)

// Prefix is the fixed 64-bit prefix of encoded answers
// (fd0f:3897:faf7:a375::/64), as in §3.2 of the paper.
var Prefix = [8]byte{0xfd, 0x0f, 0x38, 0x97, 0xfa, 0xf7, 0xa3, 0x75}

// EncodeAAAA packs (serial, probeID, ttl) into an answer address:
// prefix:serial:probeid:ttl-high:ttl-low. The TTL field is 32 bits so a
// day-long TTL (86400 s) fits, as in the paper's fifth experiment.
func EncodeAAAA(serial, probeID uint16, ttl uint32) netip.Addr {
	var b [16]byte
	copy(b[:8], Prefix[:])
	binary.BigEndian.PutUint16(b[8:], serial)
	binary.BigEndian.PutUint16(b[10:], probeID)
	binary.BigEndian.PutUint32(b[12:], ttl)
	return netip.AddrFrom16(b)
}

// DecodeAAAA unpacks an encoded answer address. ok is false when the
// address does not carry the experiment prefix.
func DecodeAAAA(addr netip.Addr) (serial, probeID uint16, ttl uint32, ok bool) {
	b := addr.As16()
	for i := range Prefix {
		if b[i] != Prefix[i] {
			return 0, 0, 0, false
		}
	}
	return binary.BigEndian.Uint16(b[8:]),
		binary.BigEndian.Uint16(b[10:]),
		binary.BigEndian.Uint32(b[12:]), true
}

// QName returns the probe-unique query name under domain, e.g.
// "1414.cachetest.nl.".
func QName(probeID uint16, domain string) string {
	return dnswire.CanonicalName(fmt.Sprintf("%d.%s", probeID, domain))
}

// Answer is one VP observation: the outcome of a single query from a probe
// to one of its recursives.
type Answer struct {
	ProbeID   uint16
	Recursive netsim.Addr
	Round     int
	SentAt    time.Time
	RTT       time.Duration

	// Timeout marks the Atlas "no answer" outcome (5 s without reply).
	Timeout bool
	RCode   dnswire.RCode
	// Valid is true when the reply carried an AAAA record with the
	// experiment prefix and the right probe ID.
	Valid bool
	// Discard marks errored or non-answer replies (SERVFAIL, REFUSED,
	// referrals), the paper's "answers (disc.)" row in Table 1.
	Discard bool

	Serial    uint16
	EncTTL    uint32 // TTL the zone configured, as encoded in the RDATA
	AnswerTTL uint32 // TTL the recursive returned on the record
}

// Ok reports whether the answer is a usable measurement.
func (a Answer) Ok() bool { return !a.Timeout && a.Valid && !a.Discard }

// Probe is one emulated Atlas probe: a stub resolver with a set of local
// recursives.
type Probe struct {
	ID         uint16
	Addr       netsim.Addr
	Recursives []netsim.Addr
	Domain     string

	client   *stub.Client
	seed     int64 // reserved for per-probe jitter; nothing draws today
	clk      clock.Clock
	answers  []Answer
	sent     metrics.Counter
	timeouts metrics.Counter
	// Dead marks a probe whose queries never get answered (the ~4.5%
	// discarded probes of Table 1 have unusable local resolvers).
	Dead bool
}

// NewProbe creates and attaches a probe at addr.
func NewProbe(clk clock.Clock, net *netsim.Network, id uint16, addr netsim.Addr,
	recursives []netsim.Addr, domain string, seed int64) *Probe {

	p := &Probe{
		ID: id, Addr: addr, Recursives: recursives,
		Domain: domain,
		client: stub.New(clk, stub.Config{}),
		seed:   seed,
		clk:    clk,
	}
	p.client.Attach(net, addr)
	return p
}

// QueryRound sends this round's query to every local recursive (each is a
// separate VP measurement).
func (p *Probe) QueryRound(round int) {
	name := QName(p.ID, p.Domain)
	for _, rec := range p.Recursives {
		rec := rec
		sentAt := p.clk.Now()
		p.sent.Inc()
		p.client.Query(rec, name, dnswire.TypeAAAA, func(res stub.Result) {
			p.answers = append(p.answers, p.interpret(round, rec, sentAt, res))
		})
	}
}

// interpret converts a stub result into an Answer.
func (p *Probe) interpret(round int, rec netsim.Addr, sentAt time.Time, res stub.Result) Answer {
	a := Answer{
		ProbeID: p.ID, Recursive: rec, Round: round,
		SentAt: sentAt, RTT: res.RTT,
	}
	if res.Err != nil {
		a.Timeout = true
		p.timeouts.Inc()
		return a
	}
	a.RCode = res.Msg.RCode
	if res.Msg.RCode != dnswire.RCodeNoError {
		a.Discard = true
		return a
	}
	for _, rr := range res.Msg.Answers {
		aaaa, ok := rr.Data.(dnswire.AAAA)
		if !ok {
			continue
		}
		serial, probeID, encTTL, ok := DecodeAAAA(aaaa.Addr)
		if !ok || probeID != p.ID {
			continue
		}
		a.Valid = true
		a.Serial = serial
		a.EncTTL = encTTL
		a.AnswerTTL = rr.TTL
		return a
	}
	// NOERROR without a usable AAAA (e.g. a referral leaked through).
	a.Discard = true
	return a
}

// Answers returns the probe's observation log.
func (p *Probe) Answers() []Answer { return p.answers }

// SetTrace enables query-lifecycle tracing on the probe's stub client
// (nil disables).
func (p *Probe) SetTrace(tr *trace.Buffer) { p.client.SetTrace(tr) }

// Fleet is a set of probes sharing a probing schedule.
type Fleet struct {
	Probes []*Probe
	clk    clock.Clock
	seed   int64
	rng    *rand.Rand // seeded on first draw; see random
}

// NewFleet groups probes for scheduling. seed drives the per-round smear.
func NewFleet(clk clock.Clock, probes []*Probe, seed int64) *Fleet {
	return &Fleet{Probes: probes, clk: clk, seed: seed}
}

// random seeds the fleet RNG on first use. Seeding math/rand's source
// walks a 607-entry table — measurable when many small worlds are built
// (one per cell, one per benchmark iteration) — so fleets that never
// smear a schedule never pay it. First-draw seeding produces the exact
// sequence eager seeding did.
func (f *Fleet) random() *rand.Rand {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.seed))
	}
	return f.rng
}

// Schedule arms timers for rounds of queries: round r fires at
// start + r*interval + smear, where smear is uniform in [0, smear) per
// probe per round (Atlas spreads queries over ~5 minutes, §5.2).
func (f *Fleet) Schedule(start time.Time, interval, smear time.Duration, rounds int) {
	now := f.clk.Now()
	for _, p := range f.Probes {
		if p.Dead {
			continue
		}
		p := p
		for r := 0; r < rounds; r++ {
			r := r
			at := start.Add(time.Duration(r) * interval)
			if smear > 0 {
				at = at.Add(time.Duration(f.random().Int63n(int64(smear))))
			}
			f.clk.AfterFunc(at.Sub(now), func() { p.QueryRound(r) })
		}
	}
}

// CollectMetrics folds the fleet's probing totals into s. A query counts
// as sent when its timer fires, answered when the callback records an
// Answer, so sent - answers_recorded is the number still unresolved when
// the run stopped.
func (f *Fleet) CollectMetrics(s *metrics.Scope) {
	for _, p := range f.Probes {
		s.Counter("queries_sent").Add(p.sent.Value())
		s.Counter("timeouts").Add(p.timeouts.Value())
		s.Counter("answers_recorded").Add(int64(len(p.answers)))
	}
}

// AllAnswers gathers every probe's log.
func (f *Fleet) AllAnswers() []Answer {
	var out []Answer
	for _, p := range f.Probes {
		out = append(out, p.answers...)
	}
	return out
}

// VPKey identifies a vantage point.
type VPKey struct {
	ProbeID   uint16
	Recursive netsim.Addr
}

// ByVP groups answers per vantage point, each sorted by send time.
func ByVP(answers []Answer) map[VPKey][]Answer {
	m := make(map[VPKey][]Answer)
	for _, a := range answers {
		k := VPKey{ProbeID: a.ProbeID, Recursive: a.Recursive}
		m[k] = append(m[k], a)
	}
	for _, list := range m {
		sortAnswers(list)
	}
	return m
}

func sortAnswers(list []Answer) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j].SentAt.Before(list[j-1].SentAt); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
}
