package vantage

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func TestEncodeDecodeAAAA(t *testing.T) {
	addr := EncodeAAAA(1, 1414, 60)
	// The paper's example: $PREFIX:1:586::3c for serial 1, probe 1414,
	// TTL 60.
	if got := addr.String(); got != "fd0f:3897:faf7:a375:1:586:0:3c" {
		t.Errorf("encoded = %s", got)
	}
	serial, probe, ttl, ok := DecodeAAAA(addr)
	if !ok || serial != 1 || probe != 1414 || ttl != 60 {
		t.Errorf("decoded = %d %d %d %v", serial, probe, ttl, ok)
	}
	if _, _, _, ok := DecodeAAAA(dnswire.MustAddr("2001:db8::1")); ok {
		t.Error("decoded a non-experiment address")
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(serial, probe uint16, ttl uint32) bool {
		s, p, tt, ok := DecodeAAAA(EncodeAAAA(serial, probe, ttl))
		return ok && s == serial && p == probe && tt == ttl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQName(t *testing.T) {
	if got := QName(1414, "cachetest.nl."); got != "1414.cachetest.nl." {
		t.Errorf("QName = %q", got)
	}
}

// answerServer answers AAAA queries with an encoded record for the probe
// ID found as the leftmost qname label. rcode, when nonzero, makes the
// server return errors instead.
func answerServer(t *testing.T, net *netsim.Network, addr netsim.Addr, serial uint16, ttl uint32, rcode dnswire.RCode) {
	t.Helper()
	var port *netsim.Port
	port = net.Bind(addr, func(src netsim.Addr, payload []byte) {
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Response {
			return
		}
		resp := dnswire.NewResponse(q)
		resp.RecursionAvailable = true
		resp.RCode = rcode
		if rcode == dnswire.RCodeNoError {
			label, _, _ := strings.Cut(q.Question1().Name, ".")
			if id, err := strconv.Atoi(label); err == nil {
				resp.Answers = append(resp.Answers, dnswire.RR{
					Name: q.Question1().Name, Class: dnswire.ClassIN, TTL: uint32(ttl),
					Data: dnswire.AAAA{Addr: EncodeAAAA(serial, uint16(id), ttl)},
				})
			}
		}
		wire, err := resp.Pack()
		if err != nil {
			t.Errorf("pack: %v", err)
			return
		}
		port.Send(src, wire)
	})
}

func TestProbeRoundAndFleet(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	answerServer(t, net, "10.0.0.53", 3, 60, dnswire.RCodeNoError)

	var probes []*Probe
	for i := uint16(1); i <= 3; i++ {
		p := NewProbe(clk, net, i, netsim.Addr("10.9.0."+strconv.Itoa(int(i))),
			[]netsim.Addr{"10.0.0.53"}, "cachetest.nl.", int64(i))
		probes = append(probes, p)
	}
	probes[2].Dead = true

	fleet := NewFleet(clk, probes, 7)
	fleet.Schedule(epoch, 10*time.Minute, 5*time.Minute, 2)
	clk.RunFor(30 * time.Minute)

	answers := fleet.AllAnswers()
	// 2 live probes x 1 recursive x 2 rounds.
	if len(answers) != 4 {
		t.Fatalf("answers = %d, want 4", len(answers))
	}
	for _, a := range answers {
		if !a.Ok() {
			t.Errorf("answer not ok: %+v", a)
		}
		if a.Serial != 3 || a.EncTTL != 60 || a.AnswerTTL != 60 {
			t.Errorf("decoded fields wrong: %+v", a)
		}
	}
	byVP := ByVP(answers)
	if len(byVP) != 2 {
		t.Fatalf("VPs = %d, want 2", len(byVP))
	}
	for _, list := range byVP {
		if len(list) != 2 {
			t.Errorf("VP answers = %d", len(list))
		}
		if list[1].SentAt.Before(list[0].SentAt) {
			t.Error("VP answers not time-sorted")
		}
		if list[0].Round == list[1].Round {
			t.Error("rounds not distinct")
		}
	}
}

func TestMultipleRecursivesAreSeparateVPs(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	answerServer(t, net, "10.0.0.53", 1, 60, dnswire.RCodeNoError)
	answerServer(t, net, "10.0.0.54", 1, 60, dnswire.RCodeNoError)
	p := NewProbe(clk, net, 5, "10.9.0.5",
		[]netsim.Addr{"10.0.0.53", "10.0.0.54"}, "cachetest.nl.", 1)
	p.QueryRound(0)
	clk.RunFor(time.Minute)
	if got := len(ByVP(p.Answers())); got != 2 {
		t.Errorf("VPs = %d, want 2", got)
	}
}

func TestProbeTimeout(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	// No server bound: the query times out after 5 s.
	p := NewProbe(clk, net, 9, "10.9.0.9", []netsim.Addr{"10.0.0.53"}, "cachetest.nl.", 1)
	p.QueryRound(0)
	clk.RunFor(10 * time.Second)
	answers := p.Answers()
	if len(answers) != 1 || !answers[0].Timeout || answers[0].Ok() {
		t.Fatalf("answers = %+v", answers)
	}
	if answers[0].RTT != 5*time.Second {
		t.Errorf("timeout RTT = %v", answers[0].RTT)
	}
}

func TestProbeDiscardsErrors(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	answerServer(t, net, "10.0.0.53", 1, 60, dnswire.RCodeServFail)
	p := NewProbe(clk, net, 9, "10.9.0.9", []netsim.Addr{"10.0.0.53"}, "cachetest.nl.", 1)
	p.QueryRound(0)
	clk.RunFor(time.Minute)
	a := p.Answers()[0]
	if !a.Discard || a.Ok() || a.RCode != dnswire.RCodeServFail {
		t.Errorf("answer = %+v", a)
	}
}

func TestProbeDiscardsForeignAAAA(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1)
	// Server answers with an AAAA that is not experiment-encoded.
	var port *netsim.Port
	port = net.Bind("10.0.0.53", func(src netsim.Addr, payload []byte) {
		q, _ := dnswire.Unpack(payload)
		resp := dnswire.NewResponse(q)
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: q.Question1().Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::1")},
		})
		wire, _ := resp.Pack()
		port.Send(src, wire)
	})
	p := NewProbe(clk, net, 9, "10.9.0.9", []netsim.Addr{"10.0.0.53"}, "cachetest.nl.", 1)
	p.QueryRound(0)
	clk.RunFor(time.Minute)
	a := p.Answers()[0]
	if a.Valid || !a.Discard {
		t.Errorf("foreign AAAA accepted: %+v", a)
	}
}
