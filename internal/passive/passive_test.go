package passive

import (
	"testing"
	"time"
)

var start = time.Date(2018, 2, 22, 12, 0, 0, 0, time.UTC)

func TestAnalyzeInterarrivals(t *testing.T) {
	var events []QueryEvent
	// Source "hourly": 7 queries, one per hour.
	for i := 0; i < 7; i++ {
		events = append(events, QueryEvent{At: start.Add(time.Duration(i) * time.Hour), Src: "hourly"})
	}
	// Source "burst": 6 queries 2 s apart (excluded as parallel).
	for i := 0; i < 6; i++ {
		events = append(events, QueryEvent{At: start.Add(time.Duration(i) * 2 * time.Second), Src: "burst"})
	}
	// Source "sparse": below the minQueries threshold.
	events = append(events, QueryEvent{At: start, Src: "sparse"})

	a := AnalyzeInterarrivals(events, 5, 10*time.Second)
	if a.Considered != 2 {
		t.Fatalf("considered = %d, want 2", a.Considered)
	}
	// The burst source's sub-10s deltas are all excluded, leaving only
	// the hourly source's median.
	if len(a.Medians) != 1 || a.Medians[0] != 3600 {
		t.Fatalf("medians = %v", a.Medians)
	}
	// 5 of the 11 total inter-arrivals were closely timed.
	if a.ExcludedFrac < 0.4 || a.ExcludedFrac > 0.5 {
		t.Errorf("excluded = %v, want ~5/11", a.ExcludedFrac)
	}
}

func TestRunNlShape(t *testing.T) {
	res := RunNl(NlConfig{Resolvers: 2000, Seed: 1})
	if res.ECDF.Len() == 0 {
		t.Fatal("no medians")
	}
	// The paper: ~28% of queries closely timed (excluded), largest peak
	// at the 3600 s TTL, ~22% of resolvers re-query early.
	if res.Analysis.ExcludedFrac < 0.15 || res.Analysis.ExcludedFrac > 0.45 {
		t.Errorf("excluded frac = %.2f, want ~0.28", res.Analysis.ExcludedFrac)
	}
	if res.FracAtTTL < 0.5 {
		t.Errorf("frac at TTL = %.2f, want dominant peak", res.FracAtTTL)
	}
	if res.FracBelowTTL < 0.1 || res.FracBelowTTL > 0.45 {
		t.Errorf("frac below TTL = %.2f, want ~0.22", res.FracBelowTTL)
	}
	// ~63% of recursives honor the full TTL (paper's discussion).
	honor := 1 - res.FracBelowTTL
	if honor < 0.5 {
		t.Errorf("honoring share = %.2f", honor)
	}
}

func TestRunNlDeterministic(t *testing.T) {
	a := RunNl(NlConfig{Resolvers: 500, Seed: 9})
	b := RunNl(NlConfig{Resolvers: 500, Seed: 9})
	if len(a.Analysis.Medians) != len(b.Analysis.Medians) {
		t.Fatal("same seed, different outcomes")
	}
	if a.FracAtTTL != b.FracAtTTL {
		t.Error("same seed, different FracAtTTL")
	}
}

func TestRunRootShape(t *testing.T) {
	res := RunRoot(RootConfig{Resolvers: 5000, Seed: 2})
	// ~87% of recursives send a single query in the day.
	if res.FracSingleObserved < 0.82 || res.FracSingleObserved > 0.92 {
		t.Errorf("single-query frac = %.3f, want ~0.87", res.FracSingleObserved)
	}
	// The tail is heavy: hundreds-to-thousands of queries from one
	// source.
	if res.MaxObserved < 100 {
		t.Errorf("max = %d, want a heavy tail", res.MaxObserved)
	}
	if len(res.PerLetter) != 13 {
		t.Fatalf("letters = %d", len(res.PerLetter))
	}
	// The per-letter "5+ queries" fractions are sorted; the spread
	// between friendliest and worst letters should be visible (paper:
	// ~5% at F vs ~10%+ at H).
	lo := res.FracAtLeast5PerLetter[0]
	hi := res.FracAtLeast5PerLetter[len(res.FracAtLeast5PerLetter)-1]
	if hi <= lo {
		t.Errorf("no per-letter spread: lo=%.3f hi=%.3f", lo, hi)
	}
	// The aggregate CDF at 1 query is below the per-letter fraction
	// (multi-letter spreading reduces per-letter counts).
	if got := res.All.At(1); got < 0.8 || got > 0.95 {
		t.Errorf("All.At(1) = %.3f", got)
	}
}

func TestRunRootDeterministic(t *testing.T) {
	a := RunRoot(RootConfig{Resolvers: 1000, Seed: 5})
	b := RunRoot(RootConfig{Resolvers: 1000, Seed: 5})
	if a.MaxObserved != b.MaxObserved || a.FracSingleObserved != b.FracSingleObserved {
		t.Error("same seed, different outcomes")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1000: "1000"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
