// Package passive reproduces the paper's production-zone analyses (§4).
// The originals use private traces (.nl authoritative traffic and the
// DNS-OARC DITL root captures); this package synthesizes query streams
// from the same behavioral mix the paper measures — recursives that honor
// the TTL, recursives with capped or fragmented caches, and
// parallel-query ("Happy Eyeballs") bursts — then runs the paper's exact
// analyses on them: per-recursive inter-arrival times against the zone
// TTL (Figure 4) and queries-per-recursive distributions at the root
// letters (Figure 5).
package passive

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/stats"
)

// QueryEvent is one observed query at an authoritative.
type QueryEvent struct {
	At  time.Time
	Src string
}

// InterarrivalAnalysis computes, per source with at least minQueries
// queries, the median inter-arrival time. Closely-timed queries (Δt below
// the exclusion threshold — parallel "Happy Eyeballs"-style bursts, the
// paper's 28%) are removed from each source's series before the median is
// taken, exactly as §4.1 describes.
type InterarrivalAnalysis struct {
	// Medians are the per-recursive median Δt values, seconds.
	Medians []float64
	// ExcludedFrac is the fraction of inter-arrivals dropped as
	// closely-timed.
	ExcludedFrac float64
	// Considered counts recursives meeting the minQueries threshold.
	Considered int
}

// AnalyzeInterarrivals groups events per source and computes the Figure 4
// distribution.
func AnalyzeInterarrivals(events []QueryEvent, minQueries int, exclude time.Duration) InterarrivalAnalysis {
	bySrc := make(map[string][]time.Time)
	for _, ev := range events {
		bySrc[ev.Src] = append(bySrc[ev.Src], ev.At)
	}
	var out InterarrivalAnalysis
	excluded, total := 0, 0
	for _, times := range bySrc {
		if len(times) < minQueries {
			continue
		}
		out.Considered++
		sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
		deltas := make([]float64, 0, len(times)-1)
		for i := 1; i < len(times); i++ {
			d := times[i].Sub(times[i-1]).Seconds()
			total++
			if d < exclude.Seconds() {
				excluded++
				continue
			}
			deltas = append(deltas, d)
		}
		if len(deltas) == 0 {
			continue
		}
		out.Medians = append(out.Medians, stats.Median(deltas))
	}
	if total > 0 {
		out.ExcludedFrac = float64(excluded) / float64(total)
	}
	return out
}

// NlConfig sizes the synthetic .nl trace (§4.1: six hours of A-record
// queries for ns1–ns5.dns.nl, TTL 3600 s).
type NlConfig struct {
	Resolvers int
	Duration  time.Duration
	TTL       time.Duration
	Seed      int64

	// Behavior mix; remainder honors the TTL. Defaults reproduce the
	// paper: ~22% of resolvers re-query inside the TTL, ~28% of queries
	// arrive in sub-10s bursts.
	FracCapped   float64 // re-fetches at TTL/2 (cache cap / limit)
	FracFrequent float64 // fragmented farms: exponential re-query
	FracParallel float64 // Happy-Eyeballs style paired queries
}

func (c NlConfig) withDefaults() NlConfig {
	if c.Resolvers == 0 {
		c.Resolvers = 7700
	}
	if c.Duration == 0 {
		c.Duration = 6 * time.Hour
	}
	if c.TTL == 0 {
		c.TTL = time.Hour
	}
	if c.FracCapped == 0 {
		c.FracCapped = 0.12
	}
	if c.FracFrequent == 0 {
		c.FracFrequent = 0.10
	}
	if c.FracParallel == 0 {
		c.FracParallel = 0.28
	}
	return c
}

// NlResult is the Figure 4 output.
type NlResult struct {
	Config   NlConfig
	Analysis InterarrivalAnalysis
	ECDF     *stats.ECDF
	// FracAtTTL is the fraction of medians within 5% of the zone TTL
	// (the paper's "largest peak is at 3600 s").
	FracAtTTL float64
	// FracBelowTTL is the fraction of resolvers re-querying early
	// (AC-type, the paper's 22%).
	FracBelowTTL float64
}

// RunNl synthesizes the trace and computes the Figure 4 analysis.
func RunNl(cfg NlConfig) *NlResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2018, 2, 22, 12, 0, 0, 0, time.UTC)
	var events []QueryEvent

	for i := 0; i < cfg.Resolvers; i++ {
		src := "rec-" + itoa(i)
		r := rng.Float64()
		var interval func() time.Duration
		parallel := false
		switch {
		case r < cfg.FracParallel:
			parallel = true
			interval = func() time.Duration {
				return jitter(rng, cfg.TTL, 0.05)
			}
		case r < cfg.FracParallel+cfg.FracCapped:
			interval = func() time.Duration {
				return jitter(rng, cfg.TTL/2, 0.05)
			}
		case r < cfg.FracParallel+cfg.FracCapped+cfg.FracFrequent:
			interval = func() time.Duration {
				// Fragmented farms re-fetch with an exponential law well
				// inside the TTL.
				d := time.Duration(rng.ExpFloat64() * float64(cfg.TTL) / 4)
				if d < 30*time.Second {
					d = 30 * time.Second
				}
				return d
			}
		default:
			interval = func() time.Duration {
				return jitter(rng, cfg.TTL, 0.02)
			}
		}

		at := start.Add(time.Duration(rng.Int63n(int64(cfg.TTL))))
		for at.Sub(start) < cfg.Duration {
			events = append(events, QueryEvent{At: at, Src: src})
			if parallel {
				// A burst of 2-4 near-simultaneous queries.
				for b := 0; b < 1+rng.Intn(3); b++ {
					events = append(events, QueryEvent{
						At: at.Add(time.Duration(rng.Int63n(int64(5 * time.Second)))), Src: src,
					})
				}
			}
			at = at.Add(interval())
		}
	}

	res := &NlResult{Config: cfg}
	res.Analysis = AnalyzeInterarrivals(events, 5, 10*time.Second)
	res.ECDF = stats.NewECDF(res.Analysis.Medians)
	ttlS := cfg.TTL.Seconds()
	at, below := 0, 0
	for _, m := range res.Analysis.Medians {
		if math.Abs(m-ttlS)/ttlS <= 0.05 {
			at++
		} else if m < ttlS*0.95 {
			below++
		}
	}
	if n := len(res.Analysis.Medians); n > 0 {
		res.FracAtTTL = float64(at) / float64(n)
		res.FracBelowTTL = float64(below) / float64(n)
	}
	return res
}

func jitter(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	span := float64(d) * frac
	return d + time.Duration((rng.Float64()*2-1)*span)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
