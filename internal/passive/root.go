package passive

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// RootConfig sizes the synthetic DITL-style root trace (§4.2: one day of
// DS queries for "nl" — TTL 86400 s — across the root letters).
type RootConfig struct {
	Resolvers int
	Letters   int
	Seed      int64
	// FracSingle is the fraction of recursives sending exactly one query
	// in the day (the paper: ~87%).
	FracSingle float64
	// TailAlpha shapes the Pareto tail of heavy requesters (lower =
	// heavier; the paper sees up to 21.8k queries from one source).
	TailAlpha float64
	// MaxQueries truncates the tail.
	MaxQueries int
}

func (c RootConfig) withDefaults() RootConfig {
	if c.Resolvers == 0 {
		c.Resolvers = 7000
	}
	if c.Letters == 0 {
		c.Letters = 13
	}
	if c.FracSingle == 0 {
		c.FracSingle = 0.87
	}
	if c.TailAlpha == 0 {
		c.TailAlpha = 0.9
	}
	if c.MaxQueries == 0 {
		c.MaxQueries = 22000
	}
	return c
}

// RootResult is the Figure 5 output: the per-letter and aggregate
// distributions of queries per recursive.
type RootResult struct {
	Config RootConfig
	// PerLetter[i] is the ECDF of queries per recursive at letter i.
	PerLetter []*stats.ECDF
	// All is the distribution across all letters combined.
	All *stats.ECDF
	// FracSingleObserved is the measured fraction of single-query
	// recursives across all letters.
	FracSingleObserved float64
	// MaxObserved is the heaviest single recursive.
	MaxObserved int
	// FracAtLeast5PerLetter reports, per letter, the fraction of its
	// recursives sending 5+ queries (the paper's F- vs H-root spread).
	FracAtLeast5PerLetter []float64
}

// RunRoot synthesizes the day of nl DS queries and computes Figure 5.
func RunRoot(cfg RootConfig) *RootResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Letter preference skew: recursives spread retries and
	// over-querying unevenly over letters (F "friendliest", H "worst").
	letterBias := make([]float64, cfg.Letters)
	for i := range letterBias {
		// Biases in [0.6, 1.5]: letter 0 plays F-root, the last plays H.
		letterBias[i] = 0.6 + 0.9*float64(i)/float64(cfg.Letters-1)
	}

	perLetterCounts := make([][]float64, cfg.Letters)
	var allCounts []float64
	single, total := 0, 0
	maxObserved := 0

	for i := 0; i < cfg.Resolvers; i++ {
		// Total queries for the day from this recursive.
		n := 1
		if rng.Float64() >= cfg.FracSingle {
			// Pareto tail: n = ceil(x), x >= 2.
			x := 2.0 / math.Pow(rng.Float64(), 1/cfg.TailAlpha)
			if x > float64(cfg.MaxQueries) {
				x = float64(cfg.MaxQueries)
			}
			n = int(math.Ceil(x))
		}
		total++
		if n == 1 {
			single++
		}
		if n > maxObserved {
			maxObserved = n
		}
		// Spread the n queries over letters with the bias weights.
		counts := make([]int, cfg.Letters)
		if n == 1 {
			counts[rng.Intn(cfg.Letters)] = 1
		} else {
			weights := make([]float64, cfg.Letters)
			sum := 0.0
			for l := range weights {
				weights[l] = letterBias[l] * (0.5 + rng.Float64())
				sum += weights[l]
			}
			for q := 0; q < n; q++ {
				r := rng.Float64() * sum
				for l := range weights {
					r -= weights[l]
					if r <= 0 {
						counts[l]++
						break
					}
				}
			}
		}
		for l, c := range counts {
			if c > 0 {
				perLetterCounts[l] = append(perLetterCounts[l], float64(c))
			}
		}
		allCounts = append(allCounts, float64(n))
	}

	res := &RootResult{
		Config:             cfg,
		All:                stats.NewECDF(allCounts),
		FracSingleObserved: float64(single) / float64(total),
		MaxObserved:        maxObserved,
	}
	for l := 0; l < cfg.Letters; l++ {
		counts := perLetterCounts[l]
		res.PerLetter = append(res.PerLetter, stats.NewECDF(counts))
		atLeast5 := 0
		for _, c := range counts {
			if c >= 5 {
				atLeast5++
			}
		}
		frac := 0.0
		if len(counts) > 0 {
			frac = float64(atLeast5) / float64(len(counts))
		}
		res.FracAtLeast5PerLetter = append(res.FracAtLeast5PerLetter, frac)
	}
	sort.Float64s(res.FracAtLeast5PerLetter)
	return res
}
