// Package udprun runs the DNS engines on real UDP sockets. The engines
// are written against clock.Clock and netsim.Conn and are not internally
// locked (the simulator is single-threaded), so this package provides an
// event loop that serializes packet receipt and timer callbacks onto one
// goroutine, plus a Conn backed by a net.UDPConn whose peer addresses are
// "ip:port" strings.
package udprun

import (
	"fmt"
	"net"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// Loop serializes callbacks onto a single goroutine.
type Loop struct {
	events chan func()
	done   chan struct{}
}

// NewLoop creates a loop with a buffered event queue.
func NewLoop() *Loop {
	return &Loop{events: make(chan func(), 1024), done: make(chan struct{})}
}

// Post enqueues f for execution on the loop goroutine. It blocks when the
// queue is full (backpressure) and drops events after Close.
func (l *Loop) Post(f func()) {
	select {
	case <-l.done:
	case l.events <- f:
	}
}

// Run processes events until Close. It must be called exactly once.
func (l *Loop) Run() {
	for {
		select {
		case <-l.done:
			return
		case f := <-l.events:
			f()
		}
	}
}

// Close stops the loop.
func (l *Loop) Close() {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
}

// Clock is a wall clock whose timer callbacks run on a Loop, so they are
// serialized with packet handling.
type Clock struct {
	Loop *Loop
}

// Now implements clock.Clock.
func (c Clock) Now() time.Time { return time.Now() }

// AfterFunc implements clock.Clock; f is posted to the loop when the
// timer fires.
func (c Clock) AfterFunc(d time.Duration, f func()) clock.Timer {
	return realTimer{time.AfterFunc(d, func() { c.Loop.Post(f) })}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Conn is a netsim.Conn over a real UDP socket. Peer addresses are
// "ip:port" strings.
type Conn struct {
	pc   *net.UDPConn
	loop *Loop
}

// Listen binds a UDP socket on listen (e.g. ":5300" or "127.0.0.1:0").
func Listen(listen string, loop *Loop) (*Conn, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("udprun: resolve %q: %w", listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprun: listen %q: %w", listen, err)
	}
	return &Conn{pc: pc, loop: loop}, nil
}

// Addr implements netsim.Conn with the socket's local address.
func (c *Conn) Addr() netsim.Addr { return netsim.Addr(c.pc.LocalAddr().String()) }

// Send implements netsim.Conn. Errors (unresolvable peers, closed socket)
// are dropped, matching UDP semantics.
func (c *Conn) Send(dst netsim.Addr, payload []byte) {
	addr, err := net.ResolveUDPAddr("udp", string(dst))
	if err != nil {
		return
	}
	_, _ = c.pc.WriteToUDP(payload, addr)
}

// Serve reads packets and posts handler calls to the loop until the
// socket is closed. Call it on its own goroutine; it returns the first
// read error.
func (c *Conn) Serve(handler func(src netsim.Addr, payload []byte)) error {
	buf := make([]byte, 65535)
	for {
		n, src, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		srcAddr := netsim.Addr(src.String())
		c.loop.Post(func() { handler(srcAddr, payload) })
	}
}

// Close closes the socket.
func (c *Conn) Close() error { return c.pc.Close() }

var _ netsim.Conn = (*Conn)(nil)
var _ clock.Clock = Clock{}
