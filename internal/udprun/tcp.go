package udprun

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// DNS over TCP (RFC 7766): each message is prefixed with a 2-octet
// big-endian length. Clients fall back to TCP when a UDP response has the
// TC bit set; authd serves both transports from the same engine.

// maxTCPMessage bounds accepted message sizes.
const maxTCPMessage = 1 << 16

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, payload []byte) error {
	if len(payload) >= maxTCPMessage {
		return fmt.Errorf("udprun: message too large for TCP framing (%d)", len(payload))
	}
	var lenbuf [2]byte
	binary.BigEndian.PutUint16(lenbuf[:], uint16(len(payload)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	var lenbuf [2]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenbuf[:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// TCPQuery sends one query over a fresh TCP connection and returns the
// response payload. This is the stub's TC-bit fallback path.
func TCPQuery(server string, payload []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", server, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := WriteTCPMessage(conn, payload); err != nil {
		return nil, err
	}
	return ReadTCPMessage(conn)
}

// ServeTCP accepts DNS-over-TCP connections on ln, answering each message
// with handler until the listener closes. Each connection may carry
// multiple queries (RFC 7766 pipelining); handler runs on the connection's
// goroutine, so it must be safe for concurrent use (authoritative.Server
// is; pass engine calls through a Loop if not).
func ServeTCP(ln net.Listener, handler func(payload []byte) []byte) error {
	return ServeTCPStream(ln, func(payload []byte) [][]byte {
		out := handler(payload)
		if out == nil {
			return nil
		}
		return [][]byte{out}
	})
}

// ServeTCPStream is ServeTCP for handlers that answer one query with a
// sequence of messages (zone transfers, RFC 5936).
func ServeTCPStream(ln net.Listener, handler func(payload []byte) [][]byte) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(conn net.Conn) {
			defer conn.Close()
			for {
				if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
					return
				}
				payload, err := ReadTCPMessage(conn)
				if err != nil {
					return
				}
				for _, out := range handler(payload) {
					if out == nil {
						continue
					}
					if err := WriteTCPMessage(conn, out); err != nil {
						return
					}
				}
			}
		}(conn)
	}
}
