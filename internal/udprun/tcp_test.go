package udprun

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

func TestTCPMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xab}, 4096)}
	for _, m := range msgs {
		if err := WriteTCPMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadTCPMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if err := WriteTCPMessage(&buf, make([]byte, maxTCPMessage)); err == nil {
		t.Error("oversized message accepted")
	}
	if _, err := ReadTCPMessage(strings.NewReader("\x00\x05abc")); err == nil {
		t.Error("short message accepted")
	}
}

// TestDNSOverTCPEndToEnd serves a zone over TCP and queries it, including
// the TC-bit fallback flow: big answer truncated over UDP, complete over
// TCP.
func TestDNSOverTCPEndToEnd(t *testing.T) {
	z, err := zone.ParseString(udpTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		z.MustAdd(dnswire.RR{Name: "big.cachetest.nl.", TTL: 60, Data: dnswire.TXT{
			Strings: []string{fmt.Sprintf("%02d-%s", i, strings.Repeat("x", 40))},
		}})
	}
	srv := authoritative.New(z)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeTCP(ln, srv.HandleWireTCP)

	q := dnswire.NewQuery(3, "big.cachetest.nl.", dnswire.TypeTXT)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Over UDP the answer would be truncated (verified in the
	// authoritative tests); over TCP it comes back whole.
	out, err := TCPQuery(ln.Addr().String(), wire, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Truncated || len(m.Answers) != 25 {
		t.Errorf("TCP answer: TC=%v answers=%d, want full", m.Truncated, len(m.Answers))
	}

	// Pipelining: two queries on one connection.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	small, _ := dnswire.NewQuery(4, "host.cachetest.nl.", dnswire.TypeAAAA).Pack()
	for i := 0; i < 2; i++ {
		if err := WriteTCPMessage(conn, small); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		out, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("pipelined read %d: %v", i, err)
		}
		m, err := dnswire.Unpack(out)
		if err != nil || len(m.Answers) != 1 {
			t.Fatalf("pipelined answer %d: %v %v", i, m, err)
		}
	}
}
