package udprun

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"testing/iotest"
	"time"

	"repro/internal/authoritative"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

func TestTCPMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xab}, 4096)}
	for _, m := range msgs {
		if err := WriteTCPMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadTCPMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if err := WriteTCPMessage(&buf, make([]byte, maxTCPMessage)); err == nil {
		t.Error("oversized message accepted")
	}
	if _, err := ReadTCPMessage(strings.NewReader("\x00\x05abc")); err == nil {
		t.Error("short message accepted")
	}
}

// TestTCPFramingEdgeCases pins the boundaries of the RFC 7766 framing:
// the largest legal message (65535 octets) round-trips, short reads mid
// prefix and mid payload never yield a partial message, and a reader
// that dribbles one byte at a time still reassembles cleanly.
func TestTCPFramingEdgeCases(t *testing.T) {
	// Largest message the 2-octet prefix can carry.
	max := bytes.Repeat([]byte{0xcd}, maxTCPMessage-1)
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, max); err != nil {
		t.Fatalf("max-size write: %v", err)
	}
	if buf.Len() != 2+len(max) {
		t.Fatalf("framed length = %d, want %d", buf.Len(), 2+len(max))
	}
	got, err := ReadTCPMessage(iotest.OneByteReader(&buf))
	if err != nil {
		t.Fatalf("max-size read: %v", err)
	}
	if !bytes.Equal(got, max) {
		t.Fatalf("max-size message corrupted: %d bytes back", len(got))
	}

	// A length prefix cut short must error, not return an empty message.
	if _, err := ReadTCPMessage(strings.NewReader("\x00")); err == nil {
		t.Error("truncated length prefix accepted")
	}
	if _, err := ReadTCPMessage(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}

	// A payload cut short behind an honest prefix must error too, even
	// when the bytes dribble in.
	if _, err := ReadTCPMessage(iotest.OneByteReader(strings.NewReader("\x01\x00" + strings.Repeat("x", 100)))); err == nil {
		t.Error("truncated payload accepted")
	}
}

// TestDNSOverTCPEndToEnd serves a zone over TCP and queries it, including
// the TC-bit fallback flow: big answer truncated over UDP, complete over
// TCP.
func TestDNSOverTCPEndToEnd(t *testing.T) {
	z, err := zone.ParseString(udpTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		z.MustAdd(dnswire.RR{Name: "big.cachetest.nl.", TTL: 60, Data: dnswire.TXT{
			Strings: []string{fmt.Sprintf("%02d-%s", i, strings.Repeat("x", 40))},
		}})
	}
	srv := authoritative.New(z)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeTCP(ln, srv.HandleWireTCP)

	q := dnswire.NewQuery(3, "big.cachetest.nl.", dnswire.TypeTXT)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Over UDP the answer would be truncated (verified in the
	// authoritative tests); over TCP it comes back whole.
	out, err := TCPQuery(ln.Addr().String(), wire, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Truncated || len(m.Answers) != 25 {
		t.Errorf("TCP answer: TC=%v answers=%d, want full", m.Truncated, len(m.Answers))
	}

	// Pipelining: two queries on one connection.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	small, _ := dnswire.NewQuery(4, "host.cachetest.nl.", dnswire.TypeAAAA).Pack()
	for i := 0; i < 2; i++ {
		if err := WriteTCPMessage(conn, small); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		out, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("pipelined read %d: %v", i, err)
		}
		m, err := dnswire.Unpack(out)
		if err != nil || len(m.Answers) != 1 {
			t.Fatalf("pipelined answer %d: %v %v", i, m, err)
		}
	}
}
