package udprun

import (
	"testing"
	"time"

	"repro/internal/authoritative"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/zone"
)

const udpTestZone = `
$ORIGIN cachetest.nl.
$TTL 3600
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A   127.0.0.1
host IN AAAA 2001:db8::7
`

func TestLoopSerializesAndCloses(t *testing.T) {
	loop := NewLoop()
	go loop.Run()
	done := make(chan int, 10)
	for i := 0; i < 10; i++ {
		i := i
		loop.Post(func() { done <- i })
	}
	for i := 0; i < 10; i++ {
		select {
		case got := <-done:
			if got != i {
				t.Fatalf("events out of order: got %d want %d", got, i)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("event never ran")
		}
	}
	loop.Close()
	loop.Post(func() { t.Error("event ran after Close") })
	time.Sleep(20 * time.Millisecond)
}

func TestClockAfterFuncOnLoop(t *testing.T) {
	loop := NewLoop()
	go loop.Run()
	defer loop.Close()
	clk := Clock{Loop: loop}
	fired := make(chan struct{})
	clk.AfterFunc(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	// Stop prevents firing.
	timer := clk.AfterFunc(50*time.Millisecond, func() { t.Error("stopped timer fired") })
	if !timer.Stop() {
		t.Error("Stop returned false")
	}
	time.Sleep(80 * time.Millisecond)
}

// TestAuthoritativeOverRealUDP serves a zone on a real socket and queries
// it with a raw UDP exchange.
func TestAuthoritativeOverRealUDP(t *testing.T) {
	z, err := zone.ParseString(udpTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := authoritative.New(z)

	loop := NewLoop()
	go loop.Run()
	defer loop.Close()
	conn, err := Listen("127.0.0.1:0", loop)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Serve(func(src netsim.Addr, payload []byte) {
		if out := srv.HandleWire(payload); out != nil {
			conn.Send(src, out)
		}
	})

	// Client side: second socket.
	cliLoop := NewLoop()
	go cliLoop.Run()
	defer cliLoop.Close()
	cli, err := Listen("127.0.0.1:0", cliLoop)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got := make(chan *dnswire.Message, 1)
	go cli.Serve(func(src netsim.Addr, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil {
			got <- m
		}
	})
	q := dnswire.NewQuery(7, "host.cachetest.nl.", dnswire.TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	cli.Send(conn.Addr(), wire)

	select {
	case m := <-got:
		if len(m.Answers) != 1 || !m.Authoritative {
			t.Fatalf("answer = %v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no response over UDP")
	}
}

// TestRecursiveOverRealUDP runs an authoritative and a recursive resolver
// on real sockets end to end.
func TestRecursiveOverRealUDP(t *testing.T) {
	z, err := zone.ParseString(udpTestZone, "")
	if err != nil {
		t.Fatal(err)
	}
	authLoop := NewLoop()
	go authLoop.Run()
	defer authLoop.Close()
	authConn, err := Listen("127.0.0.1:0", authLoop)
	if err != nil {
		t.Fatal(err)
	}
	defer authConn.Close()
	srv := authoritative.New(z)
	go authConn.Serve(func(src netsim.Addr, payload []byte) {
		if out := srv.HandleWire(payload); out != nil {
			authConn.Send(src, out)
		}
	})

	resLoop := NewLoop()
	go resLoop.Run()
	defer resLoop.Close()
	resConn, err := Listen("127.0.0.1:0", resLoop)
	if err != nil {
		t.Fatal(err)
	}
	defer resConn.Close()
	// The "root hint" points straight at the zone's server, which is
	// authoritative for everything we ask.
	res := recursive.NewResolver(Clock{Loop: resLoop}, recursive.Config{
		RootHints: []recursive.ServerHint{{Name: "ns1.cachetest.nl.", Addr: authConn.Addr()}},
	})
	res.SetConn(resConn)
	go resConn.Serve(res.Receive)

	done := make(chan recursive.Result, 1)
	resLoop.Post(func() {
		res.Resolve("host.cachetest.nl.", dnswire.TypeAAAA, 0, func(r recursive.Result) {
			done <- r
		})
	})
	select {
	case r := <-done:
		if r.ServFail || len(r.Answers) != 1 {
			t.Fatalf("result = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recursive resolution over UDP timed out")
	}
}
