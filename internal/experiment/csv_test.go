package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestSeriesCSV(t *testing.T) {
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	s := stats.NewRoundSeries(start, 10*time.Minute)
	s.AddRound(0, "OK", 5)
	s.AddRound(1, "OK", 3)
	s.AddRound(1, "FAIL", 2)
	out := SeriesCSV(s, []string{"OK", "FAIL"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "minute,OK,FAIL" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,5,0" || lines[2] != "10,3,2" {
		t.Errorf("rows = %v", lines[1:])
	}
	// Nil labels defaults to sorted labels.
	if out := SeriesCSV(s, nil); !strings.HasPrefix(out, "minute,FAIL,OK") {
		t.Errorf("default labels: %q", strings.Split(out, "\n")[0])
	}
}

func TestLatencyAndFigureCSVs(t *testing.T) {
	spec, _ := SpecByName("E")
	spec.TotalDur = 40 * time.Minute
	spec.DDoSStart = 10 * time.Minute
	spec.DDoSDur = 10 * time.Minute
	res := RunDDoS(spec, 40, 1, PopulationConfig{})

	lat := LatencyCSV(res)
	if !strings.HasPrefix(lat, "minute,n,median_ms") {
		t.Errorf("latency header: %q", strings.Split(lat, "\n")[0])
	}
	if got := len(strings.Split(strings.TrimSpace(lat), "\n")); got != 6 {
		t.Errorf("latency rows = %d, want 4 rounds + overflow bin + header", got)
	}
	amp := AmplificationCSV(res)
	if !strings.HasPrefix(amp, "minute,rn_median") {
		t.Errorf("amplification header: %q", strings.Split(amp, "\n")[0])
	}
	urn := UniqueRnCSV(res)
	if !strings.HasPrefix(urn, "minute,unique_rn") {
		t.Errorf("unique-rn header: %q", strings.Split(urn, "\n")[0])
	}
	ecdf := ECDFCSV(stats.NewECDF([]float64{1, 2, 3}), 3)
	if !strings.HasPrefix(ecdf, "x,cdf") || !strings.Contains(ecdf, "3.00,1.0000") {
		t.Errorf("ecdf csv:\n%s", ecdf)
	}
}

func TestPerProbeTable7(t *testing.T) {
	spec, _ := SpecByName("I")
	spec.TotalDur = 60 * time.Minute
	spec.DDoSStart = 30 * time.Minute
	spec.DDoSDur = 20 * time.Minute
	spec.QueriesBefore = 3
	res, tb := RunDDoSWithTestbed(spec, 60, 5, PopulationConfig{})
	probe := BusiestProbe(tb)
	if probe == 0 {
		t.Fatal("no busiest probe found")
	}
	t7 := PerProbe(tb, res, probe)
	if len(t7.Rounds) != 6 {
		t.Fatalf("rounds = %d", len(t7.Rounds))
	}
	totalClient, totalAuth := 0, 0
	for _, row := range t7.Rounds {
		totalClient += row.ClientQueries
		totalAuth += row.AuthQueries
	}
	if totalClient == 0 {
		t.Error("no client queries recorded")
	}
	if totalAuth == 0 {
		t.Error("no authoritative-side queries recorded")
	}
	out := RenderTable7(t7)
	if !strings.Contains(out, "cli-q") || !strings.Contains(out, "auth-q") {
		t.Errorf("render:\n%s", out)
	}
	// Unknown probe yields an empty (but well-formed) table.
	empty := PerProbe(tb, res, 60000)
	for _, row := range empty.Rounds {
		if row.ClientQueries != 0 {
			t.Error("unknown probe has client queries")
		}
	}
}
