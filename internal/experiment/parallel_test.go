package experiment

import (
	"testing"
	"time"
)

// renderDDoS flattens everything the cmd prints for one attack run into a
// single string, so a byte-level comparison covers Table 4 plus the
// Answers/Classes/latency series.
func renderDDoS(res *DDoSResult) string {
	return RenderTable4([]*DDoSResult{res}) +
		res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}) +
		res.Classes.Table([]string{"AA", "CC", "CA", "AC"}) +
		RenderLatency(res)
}

// TestMatrixParallelMatchesSequential pins the parallel runner's core
// guarantee: for every paper experiment A–I, fanning the matrix across
// workers produces byte-identical rendered tables to running it one spec
// at a time with the same seed.
func TestMatrixParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full A-I matrix twice")
	}
	const probes = 24
	const seed = 7
	seq := RunDDoSMatrix(PaperExperiments, probes, seed, PopulationConfig{}, 1)
	par := RunDDoSMatrix(PaperExperiments, probes, seed, PopulationConfig{}, 4)
	if len(seq) != len(PaperExperiments) || len(par) != len(PaperExperiments) {
		t.Fatalf("got %d sequential / %d parallel results for %d specs",
			len(seq), len(par), len(PaperExperiments))
	}
	for i, spec := range PaperExperiments {
		if par[i].Spec.Name != spec.Name {
			t.Fatalf("result %d is for experiment %q, want %q (order not preserved)",
				i, par[i].Spec.Name, spec.Name)
		}
		if got, want := renderDDoS(par[i]), renderDDoS(seq[i]); got != want {
			t.Errorf("experiment %s: parallel run diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
				spec.Name, want, got)
		}
	}
}

// TestCachingSweepParallelMatchesSequential does the same for the §3
// baseline sweep.
func TestCachingSweepParallelMatchesSequential(t *testing.T) {
	var cfgs []CachingConfig
	for _, ttl := range []uint32{60, 3600, 86400} {
		cfgs = append(cfgs, CachingConfig{
			Probes: 24, TTL: ttl, ProbeInterval: 20 * time.Minute,
			Rounds: 4, Seed: 7,
		})
	}
	seq := RunCachingSweep(cfgs, 1)
	par := RunCachingSweep(cfgs, 3)
	render := func(rs []*CachingResult) string {
		return RenderTable1(rs) + RenderTable2(rs) + RenderTable3(rs)
	}
	if got, want := render(par), render(seq); got != want {
		t.Errorf("parallel sweep diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
			want, got)
	}
}

// TestReplicateParallelDeterminism: the fan-out over seeds must not change
// what Replicate reports.
func TestReplicateParallelDeterminism(t *testing.T) {
	metric := func(seed int64) float64 {
		res := RunCaching(CachingConfig{
			Probes: 16, TTL: 3600, ProbeInterval: 20 * time.Minute,
			Rounds: 3, Seed: seed,
		})
		return res.MissRate
	}
	a := Replicate(4, 100, metric)
	b := Replicate(4, 100, metric)
	if a != b {
		t.Errorf("Replicate not deterministic across calls: %+v vs %+v", a, b)
	}
}
