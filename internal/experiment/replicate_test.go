package experiment

import "testing"

// TestReplicateSeedRobustness: the headline Experiment-H result (clients
// still served under 90% loss) holds across independent seeds, not just
// the default one.
func TestReplicateSeedRobustness(t *testing.T) {
	spec, _ := SpecByName("H")
	summary := Replicate(5, 100, func(seed int64) float64 {
		res := RunDDoS(spec, 120, seed, PopulationConfig{})
		return 1 - res.FailureRate(9) // fraction served during the attack
	})
	if summary.N != 5 {
		t.Fatalf("N = %d", summary.N)
	}
	// Paper: ~60% served. Every seed must stay in a generous band.
	if summary.Median < 0.45 || summary.Median > 0.85 {
		t.Errorf("median served = %.2f across seeds, want ~0.6", summary.Median)
	}
	spread := summary.Max - (2*summary.Median - summary.Max) // rough range proxy
	_ = spread
	if summary.Max-summary.Median > 0.25 {
		t.Errorf("seed variance too high: median %.2f max %.2f", summary.Median, summary.Max)
	}
}

func TestReplicateSummarizes(t *testing.T) {
	s := Replicate(4, 0, func(seed int64) float64 { return float64(seed) })
	if s.N != 4 || s.Max != 3000 || s.Mean != 1500 {
		t.Errorf("summary = %+v", s)
	}
}
