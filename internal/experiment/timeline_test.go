package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/ddos"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// timelineJSON runs the short DDoS spec with timeline collection on and
// returns the serialized merged timeline.
func timelineJSON(t *testing.T, shards int, tr *trace.Config) []byte {
	t.Helper()
	cfg := RunConfig{Probes: 48, ShardProbes: 16, Shards: shards, Seed: 42,
		Trace: tr, Timeline: &timeline.Config{}}
	out, err := Run(context.Background(), DDoSScenario(shortSpec()), cfg)
	if err != nil {
		t.Fatalf("Shards=%d: %v", shards, err)
	}
	if out.Timeline == nil {
		t.Fatalf("Shards=%d: no timeline collected", shards)
	}
	b, err := json.Marshal(out.Timeline)
	if err != nil {
		t.Fatalf("Shards=%d: marshal: %v", shards, err)
	}
	return b
}

// TestTimelineShardInvariance extends the engine's determinism contract
// to the timeline: the Shards concurrency knob must not change a single
// byte of the merged series — with and without tracing riding along.
func TestTimelineShardInvariance(t *testing.T) {
	for _, tr := range []*trace.Config{nil, {SampleEvery: 3}} {
		base := timelineJSON(t, 1, tr)
		for _, k := range []int{2, 4, 8} {
			got := timelineJSON(t, k, tr)
			if !bytes.Equal(base, got) {
				t.Fatalf("trace=%v Shards=%d timeline differs from Shards=1:\n%s\nvs\n%s",
					tr, k, got, base)
			}
		}
	}
}

// TestTimelineContent sanity-checks the collected series against the
// run's aggregate tallies: per-bucket outcome counts must sum to the VP
// totals, the attack marks must mirror the spec window, and the curve
// must actually dip during the 80%-loss window.
func TestTimelineContent(t *testing.T) {
	spec := shortSpec()
	cfg := RunConfig{Probes: 48, Seed: 42, Shards: 1, ShardProbes: 16,
		Timeline: &timeline.Config{}}
	out, err := Run(context.Background(), DDoSScenario(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := out.Timeline
	if tl == nil {
		t.Fatal("no timeline")
	}
	if tl.Bucket != time.Minute {
		t.Errorf("default bucket = %v, want 1m", tl.Bucket)
	}
	wantBins := int((spec.TotalDur+10*time.Minute)/time.Minute) + 1
	if len(tl.Bins) != wantBins {
		t.Errorf("bins = %d, want %d", len(tl.Bins), wantBins)
	}

	outcomes := tl.Total(timeline.Answered) + tl.Total(timeline.Failed) + tl.Total(timeline.ServFail)
	if got := int64(out.DDoS.Table4.Queries); outcomes != got {
		t.Errorf("timeline outcomes = %d, Table4 queries = %d", outcomes, got)
	}
	if len(tl.Marks) != 2 {
		t.Fatalf("marks = %+v, want start+end", tl.Marks)
	}
	if tl.Marks[0].At != spec.DDoSStart || tl.Marks[1].At != spec.DDoSStart+spec.DDoSDur {
		t.Errorf("mark offsets = %+v", tl.Marks)
	}

	// Answer rate during the attack must be below the pre-attack rate
	// (80% loss on all authoritatives, cold-cache rounds keep failing).
	pre, ok1 := tl.AnswerRate(int(spec.DDoSStart/time.Minute) - 10)
	mid, ok2 := tl.AnswerRate(int(spec.DDoSStart/time.Minute) + 10)
	if !ok1 || !ok2 {
		t.Fatalf("expected probing rounds at both offsets (pre ok=%v mid ok=%v)", ok1, ok2)
	}
	if mid >= pre {
		t.Errorf("answer rate did not dip during attack: pre=%.2f mid=%.2f", pre, mid)
	}

	// The renderers must run on real data without panicking.
	if s := tl.Table(); s == "" {
		t.Error("empty table")
	}
	if s := tl.Sparkline(); s == "" {
		t.Error("empty sparkline")
	}
}

// TestSpecMarks checks both annotation paths: the staged phase list and
// the legacy single loss window.
func TestSpecMarks(t *testing.T) {
	staged := DDoSSpec{Phases: []ddos.Phase{
		{Start: 30 * time.Minute, Duration: 15 * time.Minute, Intensity: 0.5, Mode: ddos.ModeDrop},
		{Start: 45 * time.Minute, Duration: 15 * time.Minute, Intensity: 1.0, Mode: ddos.ModeServFail},
	}}
	marks := specMarks(staged)
	if len(marks) != 4 {
		t.Fatalf("staged marks = %+v, want 4", marks)
	}
	if marks[0].Label != "drop 50% start" || marks[0].At != 30*time.Minute {
		t.Errorf("first mark = %+v", marks[0])
	}
	if marks[3].Label != "servfail 100% end" || marks[3].At != 60*time.Minute {
		t.Errorf("last mark = %+v", marks[3])
	}
	for i := 1; i < len(marks); i++ {
		if marks[i].At < marks[i-1].At {
			t.Errorf("marks out of order: %+v", marks)
		}
	}

	openEnded := DDoSSpec{DDoSStart: 10 * time.Minute, Loss: 1.0}
	marks = specMarks(openEnded)
	if len(marks) != 1 || marks[0].Label != "attack start (100% loss)" {
		t.Errorf("open-ended marks = %+v", marks)
	}
}
