package experiment

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// CSV renderers: each figure's data as comma-separated series, so the
// plots can be regenerated with any tool (`dikes -csv <dir>` writes one
// file per figure).

// SeriesCSV renders a RoundSeries with a leading minute column.
func SeriesCSV(s *stats.RoundSeries, labels []string) string {
	if labels == nil {
		labels = s.Labels()
	}
	var sb strings.Builder
	sb.WriteString("minute")
	for _, l := range labels {
		sb.WriteByte(',')
		sb.WriteString(l)
	}
	sb.WriteByte('\n')
	for r := 0; r < s.Rounds(); r++ {
		fmt.Fprintf(&sb, "%.0f", float64(r)*s.Interval.Minutes())
		for _, l := range labels {
			fmt.Fprintf(&sb, ",%.0f", s.Get(r, l))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LatencyCSV renders the per-round latency quantiles (Figure 9/15).
func LatencyCSV(r *DDoSResult) string {
	var sb strings.Builder
	sb.WriteString("minute,n,median_ms,mean_ms,p75_ms,p90_ms\n")
	for i, s := range r.Latency {
		fmt.Fprintf(&sb, "%.0f,%d,%.1f,%.1f,%.1f,%.1f\n",
			float64(i)*r.Spec.ProbeInterval.Minutes(), s.N, s.Median, s.Mean, s.P75, s.P90)
	}
	return sb.String()
}

// AmplificationCSV renders the Figure 11 quantile series.
func AmplificationCSV(r *DDoSResult) string {
	var sb strings.Builder
	sb.WriteString("minute,rn_median,rn_p90,rn_max,aaaa_median,aaaa_p90,aaaa_max\n")
	for i := range r.RnPerProbe {
		rn, q := r.RnPerProbe[i], r.QueriesPerProbe[i]
		fmt.Fprintf(&sb, "%.0f,%.1f,%.1f,%.0f,%.1f,%.1f,%.0f\n",
			float64(i)*r.Spec.ProbeInterval.Minutes(),
			rn.Median, rn.P90, rn.Max, q.Median, q.P90, q.Max)
	}
	return sb.String()
}

// UniqueRnCSV renders the Figure 12 series.
func UniqueRnCSV(r *DDoSResult) string {
	var sb strings.Builder
	sb.WriteString("minute,unique_rn\n")
	for i, n := range r.UniqueRn {
		fmt.Fprintf(&sb, "%.0f,%d\n", float64(i)*r.Spec.ProbeInterval.Minutes(), n)
	}
	return sb.String()
}

// ECDFCSV renders an ECDF sampled at n probabilities (Figures 4/5).
func ECDFCSV(e *stats.ECDF, n int) string {
	var sb strings.Builder
	sb.WriteString("x,cdf\n")
	for _, p := range e.Points(n) {
		fmt.Fprintf(&sb, "%.2f,%.4f\n", p.X, p.Y)
	}
	return sb.String()
}
