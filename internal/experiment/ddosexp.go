package experiment

import (
	"sort"
	"strings"
	"time"

	"repro/internal/classify"
	"repro/internal/ddos"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/vantage"
)

// DDoSSpec is one row of the paper's Table 4.
type DDoSSpec struct {
	Name          string
	TTL           uint32
	DDoSStart     time.Duration
	DDoSDur       time.Duration // 0 = until the end of the run (Experiment A)
	QueriesBefore int           // probing rounds before the attack
	TotalDur      time.Duration
	ProbeInterval time.Duration
	Loss          float64
	// TargetsAll attacks every authoritative; otherwise only the first
	// (Experiment D's "50% one NS").
	TargetsAll bool
}

// PaperExperiments are the paper's experiments A–I (Table 4). Durations
// follow the published figures (A runs 120 minutes with no recovery; B–I
// run 180 minutes with recovery after one hour of attack).
var PaperExperiments = []DDoSSpec{
	{Name: "A", TTL: 3600, DDoSStart: 10 * time.Minute, DDoSDur: 0, QueriesBefore: 1,
		TotalDur: 120 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "B", TTL: 3600, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "C", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "D", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.5, TargetsAll: false},
	{Name: "E", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.5, TargetsAll: true},
	{Name: "F", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.75, TargetsAll: true},
	{Name: "G", TTL: 300, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.75, TargetsAll: true},
	{Name: "H", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.9, TargetsAll: true},
	{Name: "I", TTL: 60, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.9, TargetsAll: true},
}

// SpecByName returns the named paper experiment.
func SpecByName(name string) (DDoSSpec, bool) {
	for _, s := range PaperExperiments {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return DDoSSpec{}, false
}

// Table4Row is the results block of Table 4.
type Table4Row struct {
	Spec         DDoSSpec
	Probes       int
	ProbesValid  int
	VPs          int
	Queries      int
	TotalAnswers int
	ValidAnswers int
}

// DDoSResult is everything one emulated attack produces.
type DDoSResult struct {
	Spec   DDoSSpec
	Table4 Table4Row
	// Answers counts OK / SERVFAIL / NoAnswer per probing round
	// (Figures 6, 8, 14).
	Answers *stats.RoundSeries
	// Classes counts AA/CC/AC/CA per round (Figure 7).
	Classes *stats.RoundSeries
	// Latency summarizes client RTT per round in milliseconds, answered
	// queries only (Figures 9, 15).
	Latency []stats.Summary
	// AuthQueries counts arrivals at the authoritatives per round by the
	// paper's query classes (Figure 10). Pre-drop, like the paper's
	// captures.
	AuthQueries *stats.RoundSeries
	// UniqueRn is the number of distinct resolver addresses querying the
	// authoritatives per round (Figure 12).
	UniqueRn []int
	// RnPerProbe and QueriesPerProbe summarize, per round, how many
	// distinct Rn served one probe's name and how many AAAA queries for
	// it reached the authoritatives (Figure 11).
	RnPerProbe      []stats.Summary
	QueriesPerProbe []stats.Summary
	// Report carries the run's metrics snapshot and the cross-component
	// accounting invariants (see internal/metrics and DESIGN.md §9).
	Report *metrics.Report
}

// RunDDoS executes one emulated attack experiment.
func RunDDoS(spec DDoSSpec, probes int, seed int64, pop PopulationConfig) *DDoSResult {
	tb := NewTestbed(TestbedConfig{
		Probes:      probes,
		TTL:         spec.TTL,
		Seed:        seed,
		Population:  pop,
		KeepAuthLog: true,
	})

	targets := tb.AuthAddrs
	if !spec.TargetsAll {
		targets = targets[:1]
	}
	scheduleAttack(tb, spec, targets)

	rounds := int(spec.TotalDur / spec.ProbeInterval)
	tb.ScheduleRotations(spec.TotalDur + RotationInterval)
	tb.Fleet.Schedule(tb.Start, spec.ProbeInterval, 5*time.Minute, rounds)
	tb.Clk.RunUntil(tb.Start.Add(spec.TotalDur + 10*time.Minute))

	return analyzeDDoS(spec, tb, rounds)
}

// scheduleAttack arms the spec's loss window on the targets.
func scheduleAttack(tb *Testbed, spec DDoSSpec, targets []netsim.Addr) {
	ddos.Schedule(tb.Clk, tb.Net, ddos.Attack{
		Targets: targets, Loss: spec.Loss,
		Start: spec.DDoSStart, Duration: spec.DDoSDur,
	})
}

func analyzeDDoS(spec DDoSSpec, tb *Testbed, rounds int) *DDoSResult {
	res := &DDoSResult{
		Spec:        spec,
		Answers:     stats.NewRoundSeries(tb.Start, spec.ProbeInterval),
		Classes:     stats.NewRoundSeries(tb.Start, spec.ProbeInterval),
		AuthQueries: stats.NewRoundSeries(tb.Start, spec.ProbeInterval),
	}
	answers := tb.Fleet.AllAnswers()

	res.Table4 = Table4Row{Spec: spec, Probes: len(tb.Pop.Probes), VPs: tb.Pop.VPCount()}
	res.tallyAnswers(answers, rounds)

	// Per-VP classification (Figure 7).
	for _, list := range vantage.ByVP(answers) {
		tracker := classify.NewTracker()
		for _, a := range list {
			if !a.Ok() {
				continue
			}
			out := tracker.Classify(a, tb.SerialAt(a.SentAt))
			cat := out.Category
			if cat == classify.Warmup {
				cat = classify.AA
			}
			res.Classes.AddRound(clampRound(a.Round, rounds), cat.String(), 1)
		}
	}

	res.analyzeAuthSide(spec, tb, rounds)
	res.Report = buildDDoSReport(spec, tb, res)
	return res
}

// clampRound maps an answer's round index into the [0, rounds] tally
// range; index rounds is the overflow bin for answers landing at or past
// TotalDur.
func clampRound(r, rounds int) int {
	if r < 0 {
		return 0
	}
	if r > rounds {
		return rounds
	}
	return r
}

// tallyAnswers fills Table4 counts, the per-round Answers series, and the
// per-round Latency summaries from the VP observation log. Outcome counts
// and RTT samples are binned with the same clamped round index, and the
// overflow bin is summarized too, so Latency[r].N always matches the
// answered (OK + SERVFAIL) count of round r — one of the report's
// invariants.
func (res *DDoSResult) tallyAnswers(answers []vantage.Answer, rounds int) {
	probeOK := make(map[uint16]bool)
	rtts := make([][]float64, rounds+1)
	for _, a := range answers {
		res.Table4.Queries++
		r := clampRound(a.Round, rounds)
		switch {
		case a.Timeout:
			res.Answers.AddRound(r, "NoAnswer", 1)
		case a.Ok():
			res.Table4.TotalAnswers++
			res.Table4.ValidAnswers++
			probeOK[a.ProbeID] = true
			res.Answers.AddRound(r, "OK", 1)
			rtts[r] = append(rtts[r], float64(a.RTT.Milliseconds()))
		default:
			res.Table4.TotalAnswers++
			res.Answers.AddRound(r, "SERVFAIL", 1)
			rtts[r] = append(rtts[r], float64(a.RTT.Milliseconds()))
		}
	}
	res.Table4.ProbesValid = len(probeOK)
	for r := 0; r <= rounds; r++ {
		res.Latency = append(res.Latency, stats.Summarize(rtts[r]))
	}
}

// analyzeAuthSide derives the Figures 10–12 series from the pre-drop tap.
func (res *DDoSResult) analyzeAuthSide(spec DDoSSpec, tb *Testbed, rounds int) {
	nsHosts := make(map[string]bool)
	for i := range tb.AuthAddrs {
		nsHosts["ns"+itoa(i+1)+"."+Domain] = true
	}
	uniqueRn := make([]map[netsim.Addr]bool, rounds)
	rnPerProbe := make([]map[string]map[netsim.Addr]bool, rounds)
	queriesPerProbe := make([]map[string]int, rounds)
	for i := range uniqueRn {
		uniqueRn[i] = make(map[netsim.Addr]bool)
		rnPerProbe[i] = make(map[string]map[netsim.Addr]bool)
		queriesPerProbe[i] = make(map[string]int)
	}

	for _, ev := range tb.AuthLog {
		r := res.AuthQueries.RoundOf(ev.At)
		if r < 0 || r >= rounds {
			continue
		}
		uniqueRn[r][ev.Src] = true
		label := ""
		switch {
		case ev.QName == Domain && ev.QType == dnswire.TypeNS:
			label = "NS"
		case nsHosts[ev.QName] && ev.QType == dnswire.TypeA:
			label = "A-for-NS"
		case nsHosts[ev.QName] && ev.QType == dnswire.TypeAAAA:
			label = "AAAA-for-NS"
		case ev.QType == dnswire.TypeAAAA:
			label = "AAAA-for-PID"
			if m := rnPerProbe[r][ev.QName]; m == nil {
				rnPerProbe[r][ev.QName] = map[netsim.Addr]bool{ev.Src: true}
			} else {
				m[ev.Src] = true
			}
			queriesPerProbe[r][ev.QName]++
		default:
			label = "other"
		}
		res.AuthQueries.AddRound(r, label, 1)
	}

	for r := 0; r < rounds; r++ {
		res.UniqueRn = append(res.UniqueRn, len(uniqueRn[r]))
		var rnCounts, qCounts []float64
		for _, m := range rnPerProbe[r] {
			rnCounts = append(rnCounts, float64(len(m)))
		}
		for _, n := range queriesPerProbe[r] {
			qCounts = append(qCounts, float64(n))
		}
		sort.Float64s(rnCounts)
		sort.Float64s(qCounts)
		res.RnPerProbe = append(res.RnPerProbe, stats.Summarize(rnCounts))
		res.QueriesPerProbe = append(res.QueriesPerProbe, stats.Summarize(qCounts))
	}
}
