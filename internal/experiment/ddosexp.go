package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ddos"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// DDoSSpec is one row of the paper's Table 4.
type DDoSSpec struct {
	Name          string
	TTL           uint32
	DDoSStart     time.Duration
	DDoSDur       time.Duration // 0 = until the end of the run (Experiment A)
	QueriesBefore int           // probing rounds before the attack
	TotalDur      time.Duration
	ProbeInterval time.Duration
	Loss          float64
	// TargetsAll attacks every authoritative; otherwise only the first
	// (Experiment D's "50% one NS").
	TargetsAll bool
	// Phases, when non-empty, replaces the single Loss/DDoSStart/DDoSDur
	// window with a staged multi-phase disruption (partial outage → total
	// → recovery, NXDOMAIN/SERVFAIL failure modes, per-phase target
	// counts). The scalar fields above then only describe the envelope
	// for display (Table 4). Compiled from spec disruption windows; see
	// internal/spec.
	Phases []ddos.Phase
}

// PaperExperiments are the paper's experiments A–I (Table 4). Durations
// follow the published figures (A runs 120 minutes with no recovery; B–I
// run 180 minutes with recovery after one hour of attack).
var PaperExperiments = []DDoSSpec{
	{Name: "A", TTL: 3600, DDoSStart: 10 * time.Minute, DDoSDur: 0, QueriesBefore: 1,
		TotalDur: 120 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "B", TTL: 3600, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "C", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true},
	{Name: "D", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.5, TargetsAll: false},
	{Name: "E", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.5, TargetsAll: true},
	{Name: "F", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.75, TargetsAll: true},
	{Name: "G", TTL: 300, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.75, TargetsAll: true},
	{Name: "H", TTL: 1800, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.9, TargetsAll: true},
	{Name: "I", TTL: 60, DDoSStart: 60 * time.Minute, DDoSDur: 60 * time.Minute, QueriesBefore: 6,
		TotalDur: 180 * time.Minute, ProbeInterval: 10 * time.Minute, Loss: 0.9, TargetsAll: true},
}

// SpecByName returns the named paper experiment.
func SpecByName(name string) (DDoSSpec, bool) {
	for _, s := range PaperExperiments {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return DDoSSpec{}, false
}

// Table4Row is the results block of Table 4.
type Table4Row struct {
	Spec         DDoSSpec
	Probes       int
	ProbesValid  int
	VPs          int
	Queries      int
	TotalAnswers int
	ValidAnswers int
}

// DDoSResult is everything one emulated attack produces.
type DDoSResult struct {
	Spec   DDoSSpec
	Table4 Table4Row
	// Answers counts OK / SERVFAIL / NoAnswer per probing round
	// (Figures 6, 8, 14).
	Answers *stats.RoundSeries
	// Classes counts AA/CC/AC/CA per round (Figure 7).
	Classes *stats.RoundSeries
	// Latency summarizes client RTT per round in milliseconds, answered
	// queries only (Figures 9, 15).
	Latency []stats.Summary
	// AuthQueries counts arrivals at the authoritatives per round by the
	// paper's query classes (Figure 10). Pre-drop, like the paper's
	// captures.
	AuthQueries *stats.RoundSeries
	// UniqueRn is the number of distinct resolver addresses querying the
	// authoritatives per round (Figure 12).
	UniqueRn []int
	// RnPerProbe and QueriesPerProbe summarize, per round, how many
	// distinct Rn served one probe's name and how many AAAA queries for
	// it reached the authoritatives (Figure 11).
	RnPerProbe      []stats.Summary
	QueriesPerProbe []stats.Summary
	// Report carries the run's metrics snapshot and the cross-component
	// accounting invariants (see internal/metrics and DESIGN.md §9).
	Report *metrics.Report
	// Timeline is the run's merged per-bucket series (nil unless the run
	// was configured with RunConfig.Timeline; see internal/timeline).
	Timeline *timeline.Timeline
}

// RunDDoS executes one emulated attack experiment.
//
// Deprecated: positional-argument wrapper kept for compatibility; it
// delegates to Run with DDoSScenario. New code should use the Scenario
// API, which adds cancellation and sharded population scaling.
func RunDDoS(spec DDoSSpec, probes int, seed int64, pop PopulationConfig) *DDoSResult {
	out, _ := Run(context.Background(), DDoSScenario(spec), RunConfig{
		Probes: probes, Seed: seed, Population: pop,
	})
	return out.DDoS
}

// runDDoSTestbed builds, schedules, and runs one attack world — either
// the whole monolithic population or a single cell of a sharded run —
// and returns it ready for analysis.
func runDDoSTestbed(spec DDoSSpec, probes int, seed int64, pop PopulationConfig,
	tr *trace.Config, tlc *timeline.Config, cell int) *Testbed {

	tb := NewTestbed(TestbedConfig{
		Probes:      probes,
		TTL:         spec.TTL,
		Seed:        seed,
		Population:  pop,
		KeepAuthLog: true,
		Trace:       tr,
		TraceCell:   cell,
	})
	if tlc != nil {
		// Every cell derives the same bin layout from (start, horizon,
		// bucket), which is what makes the cross-cell merge exact.
		tb.AttachTimeline(timeline.NewCollector(tb.Start, spec.TotalDur+10*time.Minute, *tlc))
	}

	targets := tb.AuthAddrs
	if !spec.TargetsAll {
		targets = targets[:1]
	}
	scheduleAttack(tb, spec, targets)

	rounds := int(spec.TotalDur / spec.ProbeInterval)
	tb.ScheduleRotations(spec.TotalDur + RotationInterval)
	tb.Fleet.Schedule(tb.Start, spec.ProbeInterval, 5*time.Minute, rounds)
	tb.Clk.RunUntil(tb.Start.Add(spec.TotalDur + 10*time.Minute))
	return tb
}

// specMarks renders the spec's disruption boundaries as timeline
// annotations: one mark per phase edge, or the legacy single-window
// start/end pair. Marks describe the spec, not the run, so every cell
// (and the merged timeline) carries the same list.
func specMarks(spec DDoSSpec) []timeline.Mark {
	var marks []timeline.Mark
	if len(spec.Phases) > 0 {
		for _, ph := range spec.Phases {
			pct := int(ph.Intensity * 100)
			marks = append(marks, timeline.Mark{At: ph.Start,
				Label: fmt.Sprintf("%s %d%% start", ph.Mode, pct)})
			if ph.Duration > 0 {
				marks = append(marks, timeline.Mark{At: ph.Start + ph.Duration,
					Label: fmt.Sprintf("%s %d%% end", ph.Mode, pct)})
			}
		}
		sort.SliceStable(marks, func(i, j int) bool { return marks[i].At < marks[j].At })
		return marks
	}
	marks = append(marks, timeline.Mark{At: spec.DDoSStart,
		Label: fmt.Sprintf("attack start (%d%% loss)", int(spec.Loss*100))})
	if spec.DDoSDur > 0 {
		marks = append(marks, timeline.Mark{At: spec.DDoSStart + spec.DDoSDur,
			Label: "attack end"})
	}
	return marks
}

// scheduleAttack arms the spec's disruption on the targets: the legacy
// single loss window, or the staged phase list when the spec carries
// one. Phases address the full authoritative set (Phase.TargetCount
// selects within it) and get the servers as rcode hooks so the
// NXDOMAIN/SERVFAIL failure modes can reach past the network layer.
func scheduleAttack(tb *Testbed, spec DDoSSpec, targets []netsim.Addr) {
	if len(spec.Phases) > 0 {
		servers := make([]ddos.RCodeServer, len(tb.Auths))
		for i, srv := range tb.Auths {
			servers[i] = srv
		}
		ddos.SchedulePhases(tb.Clk, tb.Net, ddos.Plan{
			Targets: tb.AuthAddrs, Servers: servers,
			Phases: spec.Phases, Trace: tb.Trace,
		})
		return
	}
	ddos.Schedule(tb.Clk, tb.Net, ddos.Attack{
		Targets: targets, Loss: spec.Loss,
		Start: spec.DDoSStart, Duration: spec.DDoSDur,
		Trace: tb.Trace,
	})
}

// analyzeDDoS runs the shared accumulator pipeline over one testbed (see
// stream.go) and attaches the run report.
func analyzeDDoS(spec DDoSSpec, tb *Testbed, rounds int) *DDoSResult {
	ac := newDDoSAccum(spec, tb.Start, rounds)
	ac.absorb(tb)
	res := ac.finalize()
	res.Report = buildDDoSReport(spec, tb, res)
	return res
}

// clampRound maps an answer's round index into the [0, rounds] tally
// range; index rounds is the overflow bin for answers landing at or past
// TotalDur.
func clampRound(r, rounds int) int {
	if r < 0 {
		return 0
	}
	if r > rounds {
		return rounds
	}
	return r
}
