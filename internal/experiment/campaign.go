package experiment

// The campaign runner: execute a list of compiled scenario runs (usually
// produced by internal/spec from declarative JSON files) across
// internal/parallel with context cancellation, and render one
// consolidated cross-scenario report. Per-run failures are captured in
// the results and surfaced in the report — a campaign never silently
// drops a run (the fix for the old RunDDoSMatrixCtx nil-slot behavior).
//
// Determinism contract: RenderCampaign and CampaignCSV iterate results
// in item order and every per-family renderer is deterministic, so the
// campaign output is byte-identical for any Workers/Shards value.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// CampaignItem is one compiled run of a campaign.
type CampaignItem struct {
	// Name labels the run in the report (unique within the campaign;
	// spec expansion derives it from the spec name plus axis suffixes).
	Name string
	// Source is the spec file the item came from ("" when assembled in
	// code).
	Source   string
	Scenario Scenario
	Config   RunConfig
}

// CampaignResult pairs one item with what running it produced. Err is
// non-nil when the run failed or was cancelled; Outcome may still carry
// partial results in that case.
type CampaignResult struct {
	Item    CampaignItem
	Outcome *Outcome
	Err     error
}

// RunCampaign executes every item, at most workers runs in flight at
// once (<= 0 means one per core). Per-run errors land in the matching
// CampaignResult; the returned error is non-nil only when ctx was
// cancelled (wrapped ErrCancelled), with the results of the finished
// runs still filled in.
func RunCampaign(ctx context.Context, items []CampaignItem, workers int) ([]CampaignResult, error) {
	return RunCampaignWithProgress(ctx, items, workers, nil)
}

// RunCampaignWithProgress is RunCampaign with campaign-wide telemetry:
// prog (one "cell" per compiled run) receives a completion tick after
// each run finishes, giving runs-done/total and an aggregate ETA across
// the whole campaign rather than per-run cell progress. nil prog is
// telemetry off.
func RunCampaignWithProgress(ctx context.Context, items []CampaignItem, workers int, prog *telemetry.Progress) ([]CampaignResult, error) {
	results := make([]CampaignResult, len(items))
	for i := range items {
		results[i].Item = items[i]
	}
	runErr := parallel.ForEachCtx(ctx, workers, len(items), func(i int) {
		out, err := Run(ctx, items[i].Scenario, items[i].Config)
		results[i].Outcome, results[i].Err = out, err
		prog.CellDone(runEvents(out), 0)
	})
	if runErr != nil {
		return results, cancelErr(runErr)
	}
	return results, nil
}

// runEvents extracts a finished run's simulator event total from its
// report, for campaign-level throughput telemetry (0 when unavailable).
func runEvents(out *Outcome) int64 {
	if out == nil || out.Report == nil {
		return 0
	}
	return out.Report.Metrics.Scope("clock").Counter("events_fired")
}

// status is the summary-table verdict of one run.
func (r CampaignResult) status() string {
	switch {
	case r.Err != nil:
		return "ERROR: " + r.Err.Error()
	case r.Outcome == nil:
		return "skipped"
	default:
		return "ok"
	}
}

// headline is the one-line takeaway of one run.
func (r CampaignResult) headline() string {
	o := r.Outcome
	if o == nil {
		return "-"
	}
	switch {
	case o.DDoS != nil:
		t := o.DDoS.Table4
		return fmt.Sprintf("valid answers %d/%d", t.ValidAnswers, t.TotalAnswers)
	case o.Caching != nil:
		return fmt.Sprintf("miss rate %.1f%%", 100*o.Caching.MissRate)
	case o.Glue != nil:
		return fmt.Sprintf("child-TTL share %.1f%%", 100*o.Glue.NS.AuthoritativeShare())
	case o.Check != nil:
		pass := 0
		for _, c := range o.Check {
			if c.Pass {
				pass++
			}
		}
		return fmt.Sprintf("%d/%d claims pass", pass, len(o.Check))
	case o.NXNS != nil:
		amp, width := 0.0, 0
		for _, row := range o.NXNS.Rows {
			if a := row.Amplification(); a > amp {
				amp, width = a, row.Width
			}
		}
		return fmt.Sprintf("max amplification %.1fx at width %d", amp, width)
	case o.Poison != nil:
		return fmt.Sprintf("hijacked %.1f%%", 100*o.Poison.SuccessRate())
	case o.Reflect != nil:
		amp := 0.0
		for _, row := range o.Reflect.Rows {
			if a := row.Amplification(); a > amp {
				amp = a
			}
		}
		return fmt.Sprintf("max amplification %.1fx", amp)
	case o.Transport != nil:
		var q, a int64
		for _, row := range o.Transport.Rows {
			q += row.Queries
			a += row.Answered
		}
		rate := 0.0
		if q > 0 {
			rate = float64(a) / float64(q)
		}
		return fmt.Sprintf("answered %.1f%%", 100*rate)
	case o.Passive != nil:
		return fmt.Sprintf("at-TTL re-queries %.1f%%", 100*o.Passive.Nl.FracAtTTL)
	case o.Retries != nil:
		up, down := 0.0, 0.0
		for _, row := range o.Retries.Rows {
			if row.Down {
				down += row.Result.Mean.Total()
			} else {
				up += row.Result.Mean.Total()
			}
		}
		mult := 0.0
		if up > 0 {
			mult = down / up
		}
		return fmt.Sprintf("retry amplification %.1fx", mult)
	case o.Implications != nil:
		return fmt.Sprintf("fail under attack: root %.1f%% vs cdn %.1f%%",
			100*o.Implications.RootFailDuringAttack, 100*o.Implications.CDNFailDuringAttack)
	}
	return "-"
}

// RenderCampaign formats the consolidated cross-scenario report: one
// block per run (the family's paper figures), the cross-run tables the
// paper prints over several runs at once (Tables 1-3 over the caching
// runs, Table 4 over the attack matrix, the poisoning matrix), and a
// summary table with per-run status — including errors.
func RenderCampaign(results []CampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d run(s)\n", len(results))

	for i, r := range results {
		fmt.Fprintf(&b, "\n---- run %d/%d: %s (%s) ----\n",
			i+1, len(results), r.Item.Name, r.Item.Scenario.Name())
		if r.Err != nil {
			fmt.Fprintf(&b, "ERROR: %v\n", r.Err)
			continue
		}
		if r.Outcome == nil {
			fmt.Fprintf(&b, "skipped\n")
			continue
		}
		renderRunBlock(&b, r)
	}

	renderConsolidated(&b, results)

	fmt.Fprintf(&b, "\n---- campaign summary ----\n")
	fmt.Fprintf(&b, "%-34s %-14s %-34s %s\n", "run", "scenario", "headline", "status")
	for _, r := range results {
		fmt.Fprintf(&b, "%-34s %-14s %-34s %s\n",
			r.Item.Name, r.Item.Scenario.Name(), r.headline(), r.status())
	}
	return b.String()
}

// renderRunBlock prints one run's own figures/tables.
func renderRunBlock(b *strings.Builder, r CampaignResult) {
	o := r.Outcome
	switch {
	case o.DDoS != nil:
		renderDDoSBlock(b, o.DDoS, o.Worlds)
	case o.Caching != nil:
		fmt.Fprintf(b, "miss rate: %.1f%%\n", 100*o.Caching.MissRate)
		fmt.Fprintf(b, "answer types over time (Figure 13 shape)\n%s",
			o.Caching.Fig13.Table([]string{"AA", "CC", "AC", "CA", "Warmup"}))
	case o.Glue != nil:
		fmt.Fprint(b, RenderTable5(o.Glue))
	case o.Check != nil:
		table, ok := RenderCheck(o.Check)
		fmt.Fprint(b, table)
		if !ok {
			fmt.Fprintf(b, "self-test FAILED\n")
		}
	case o.NXNS != nil:
		fmt.Fprint(b, RenderNXNS(o.NXNS))
	case o.Poison != nil:
		// Rendered consolidated: the poisoning table is a matrix over the
		// campaign's poison runs.
		fmt.Fprintf(b, "hijacked %d/%d attempts (see consolidated poisoning matrix)\n",
			o.Poison.Hijacked, o.Poison.Attempts)
	case o.Reflect != nil:
		fmt.Fprint(b, RenderReflect(o.Reflect))
	case o.Transport != nil:
		fmt.Fprint(b, RenderTransport(o.Transport))
	case o.Passive != nil:
		fmt.Fprint(b, RenderPassive(o.Passive))
	case o.Retries != nil:
		fmt.Fprint(b, RenderRetries(o.Retries))
	case o.Implications != nil:
		fmt.Fprint(b, RenderImplications(o.Implications))
	}
}

// renderDDoSBlock prints one attack run's full figure set (the cmd/dikes
// per-experiment block), plus the Table 7 drill-down when the run kept
// its worlds.
func renderDDoSBlock(b *strings.Builder, res *DDoSResult, worlds *ShardedTestbed) {
	name := res.Spec.Name
	fmt.Fprintf(b, "Figure 6/8/14 (exp %s): answers per round\n%s", name,
		res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))
	fmt.Fprintf(b, "Figure 9/15 (exp %s): latency quantiles\n%s", name, RenderLatency(res))
	fmt.Fprintf(b, "Figure 7 (exp %s): answer classes\n%s", name,
		res.Classes.Table([]string{"AA", "CC", "CA", "AC"}))
	fmt.Fprintf(b, "Figure 10 (exp %s): queries at the authoritatives\n%s", name,
		res.AuthQueries.Table([]string{"NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"}))
	fmt.Fprintf(b, "Figure 11 (exp %s): per-probe amplification\n%s", name,
		RenderAmplification(res))
	fmt.Fprintf(b, "Figure 12 (exp %s): unique Rn\n%s", name, RenderUniqueRn(res))
	if res.Timeline != nil {
		fmt.Fprintf(b, "Timeline (exp %s): per-%s series\n%s", name,
			res.Timeline.Bucket, res.Timeline.Table())
		fmt.Fprintf(b, "%s", res.Timeline.Sparkline())
	}
	if worlds != nil {
		ref := worlds.BusiestProbe()
		fmt.Fprintf(b, "Table 7 (exp %s): per-probe drill-down\n%s", name,
			RenderTable7(worlds.PerProbe(res, ref)))
	}
}

// renderConsolidated prints the cross-run tables.
func renderConsolidated(b *strings.Builder, results []CampaignResult) {
	var caching []*CachingResult
	var attacks []*DDoSResult
	var poisons []*PoisonResult
	for _, r := range results {
		if r.Outcome == nil {
			continue
		}
		if r.Outcome.Caching != nil {
			caching = append(caching, r.Outcome.Caching)
		}
		if r.Outcome.DDoS != nil {
			attacks = append(attacks, r.Outcome.DDoS)
		}
		if r.Outcome.Poison != nil {
			poisons = append(poisons, r.Outcome.Poison)
		}
	}
	if len(caching) > 0 {
		fmt.Fprintf(b, "\n---- consolidated: caching runs ----\n")
		fmt.Fprintf(b, "\nTable 1: caching baseline\n%s", RenderTable1(caching))
		fmt.Fprintf(b, "\nTable 2: answer classification\n%s", RenderTable2(caching))
		fmt.Fprintf(b, "\nTable 3: AC answers by public resolver\n%s", RenderTable3(caching))
	}
	if len(attacks) > 0 {
		fmt.Fprintf(b, "\n---- consolidated: attack matrix ----\n")
		fmt.Fprintf(b, "\nTable 4: experiment matrix\n%s", RenderTable4(attacks))
	}
	if len(poisons) > 0 {
		fmt.Fprintf(b, "\n---- consolidated: poisoning matrix ----\n")
		fmt.Fprint(b, RenderPoison(poisons))
	}
}

// CampaignCSV renders the summary table as CSV (one row per run).
func CampaignCSV(results []CampaignResult) string {
	var b strings.Builder
	b.WriteString("run,scenario,headline,status\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%q,%q\n",
			r.Item.Name, r.Item.Scenario.Name(), r.headline(), r.status())
	}
	return b.String()
}
