package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/stats"
	"repro/internal/stub"
	"repro/internal/zone"
)

// The §8 implications scenario: why did users barely notice the root DNS
// DDoSes while a DNS provider's customers felt theirs immediately? Two
// services are attacked side by side in one world:
//
//   - "root-like": day-long TTLs, four nameserver letters, each an
//     anycast group of several sites; the attack saturates some letters
//     completely and others partially, as in the Nov 2015 event [23].
//   - "CDN-like": 120-second TTLs (DNS-based load balancing), two unicast
//     nameservers, both at 90% loss — the Dyn shape.
//
// Clients keep resolving one popular name from each service through
// shared caching recursives; the per-minute failure rates tell the story.

// ImplicationsConfig sizes the §8 scenario.
type ImplicationsConfig struct {
	// Clients is the number of stub clients; each picks one of the shared
	// recursives.
	Clients int
	// Recursives is the pool of shared caching resolvers (popular names
	// stay cached because many clients share one cache).
	Recursives int
	Seed       int64
	// Letters and SitesPerLetter shape the root-like service.
	Letters        int
	SitesPerLetter int
	// Duration, AttackStart, AttackDur set the timeline.
	Duration    time.Duration
	AttackStart time.Duration
	AttackDur   time.Duration
	// QueryInterval is each client's re-resolution period.
	QueryInterval time.Duration
	// CDNTTL is the CDN-like record TTL (the paper's 120-300 s).
	CDNTTL uint32
}

func (c ImplicationsConfig) withDefaults() ImplicationsConfig {
	if c.Clients == 0 {
		c.Clients = 400
	}
	if c.Recursives == 0 {
		c.Recursives = 40
	}
	if c.Letters == 0 {
		c.Letters = 4
	}
	if c.SitesPerLetter == 0 {
		c.SitesPerLetter = 6
	}
	if c.Duration == 0 {
		c.Duration = 90 * time.Minute
	}
	if c.AttackStart == 0 {
		c.AttackStart = 30 * time.Minute
	}
	if c.AttackDur == 0 {
		c.AttackDur = 30 * time.Minute
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = time.Minute
	}
	if c.CDNTTL == 0 {
		c.CDNTTL = 120
	}
	return c
}

// ImplicationsResult reports per-minute failure fractions for both
// services.
type ImplicationsResult struct {
	Config ImplicationsConfig
	// Series counts "root-ok"/"root-fail"/"cdn-ok"/"cdn-fail" per minute.
	Series *stats.RoundSeries
	// RootFailDuringAttack and CDNFailDuringAttack are the aggregate
	// failure fractions inside the attack window.
	RootFailDuringAttack float64
	CDNFailDuringAttack  float64
}

// RunImplications executes the §8 side-by-side attack.
func RunImplications(cfg ImplicationsConfig) *ImplicationsResult {
	cfg = cfg.withDefaults()
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	clk := clock.NewVirtual(start)
	net := netsim.New(clk, cfg.Seed)

	rootZone := zone.New(".")
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.SOA{
		MName: "a.hint.test.", RName: "ops.hint.test.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}})
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.NS{Host: "a.hint.test."}})
	rootZone.MustAdd(dnswire.RR{Name: "a.hint.test.", TTL: 518400,
		Data: dnswire.A{Addr: dnswire.MustAddr("198.41.0.4")}})

	// Root-like service: long TTLs, anycast letters.
	rootlike := zone.New("rootlike.test.")
	rootlike.MustAdd(dnswire.RR{Name: "rootlike.test.", TTL: 86400, Data: dnswire.SOA{
		MName: "ns0.rootlike.test.", RName: "ops.rootlike.test.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}})
	rootlike.MustAdd(dnswire.RR{Name: "www.rootlike.test.", TTL: 86400,
		Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::1")}})
	rootSrv := authoritative.New(rootlike)
	var rootSites [][]netsim.Addr
	for l := 0; l < cfg.Letters; l++ {
		letterAddr := netsim.Addr(fmt.Sprintf("10.53.%d.1", l))
		host := fmt.Sprintf("ns%d.rootlike.test.", l)
		rootlike.MustAdd(dnswire.RR{Name: "rootlike.test.", TTL: 86400, Data: dnswire.NS{Host: host}})
		rootlike.MustAdd(dnswire.RR{Name: host, TTL: 86400,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(letterAddr))}})
		rootZone.MustAdd(dnswire.RR{Name: "rootlike.test.", TTL: 172800, Data: dnswire.NS{Host: host}})
		rootZone.MustAdd(dnswire.RR{Name: host, TTL: 172800,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(letterAddr))}})

		var sites []netsim.Addr
		for s := 0; s < cfg.SitesPerLetter; s++ {
			sites = append(sites, netsim.Addr(fmt.Sprintf("10.53.%d.%d", l, 100+s)))
		}
		rootSites = append(rootSites, sites)
		attachAnycastAuth(net, rootSrv, letterAddr, sites)
	}

	// CDN-like service: short TTLs, two unicast nameservers.
	cdn := zone.New("cdn.test.")
	cdn.MustAdd(dnswire.RR{Name: "cdn.test.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.cdn.test.", RName: "ops.cdn.test.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 60}})
	cdn.MustAdd(dnswire.RR{Name: "www.cdn.test.", TTL: cfg.CDNTTL,
		Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::2")}})
	cdnAddrs := []netsim.Addr{"203.0.113.1", "203.0.113.2"}
	for i, addr := range cdnAddrs {
		host := fmt.Sprintf("ns%d.cdn.test.", i+1)
		cdn.MustAdd(dnswire.RR{Name: "cdn.test.", TTL: 3600, Data: dnswire.NS{Host: host}})
		cdn.MustAdd(dnswire.RR{Name: host, TTL: 3600,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(addr))}})
		rootZone.MustAdd(dnswire.RR{Name: "cdn.test.", TTL: 172800, Data: dnswire.NS{Host: host}})
		rootZone.MustAdd(dnswire.RR{Name: host, TTL: 172800,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(addr))}})
	}
	cdnSrv := authoritative.New(cdn)
	for _, addr := range cdnAddrs {
		cdnSrv.Attach(net, addr)
	}
	authoritative.New(rootZone).Attach(net, "198.41.0.4")

	// Shared caching recursives and the client population.
	hints := []recursive.ServerHint{{Name: "a.hint.test.", Addr: "198.41.0.4"}}
	var resolverAddrs []netsim.Addr
	for i := 0; i < cfg.Recursives; i++ {
		addr := netsim.Addr(fmt.Sprintf("res-%d", i))
		r := recursive.NewResolver(clk, recursive.Config{
			RootHints: hints, Seed: cfg.Seed + int64(i),
		})
		r.Attach(net, addr)
		resolverAddrs = append(resolverAddrs, addr)
	}

	res := &ImplicationsResult{
		Config: cfg,
		Series: stats.NewRoundSeries(start, time.Minute),
	}
	var attackRootOK, attackRootFail, attackCDNOK, attackCDNFail float64
	inAttack := func(at time.Time) bool {
		off := at.Sub(start)
		return off >= cfg.AttackStart && off < cfg.AttackStart+cfg.AttackDur
	}

	for i := 0; i < cfg.Clients; i++ {
		client := stub.New(clk, stub.Config{})
		client.Attach(net, netsim.Addr(fmt.Sprintf("client-%d", i)))
		rec := resolverAddrs[i%len(resolverAddrs)]
		offset := time.Duration(i) * cfg.QueryInterval / time.Duration(cfg.Clients)
		for at := offset; at < cfg.Duration; at += cfg.QueryInterval {
			at := at
			clk.AfterFunc(at, func() {
				sentAt := clk.Now()
				for _, svc := range []string{"root", "cdn"} {
					svc := svc
					name := "www." + map[string]string{"root": "rootlike.test.", "cdn": "cdn.test."}[svc]
					client.Query(rec, name, dnswire.TypeAAAA, func(r stub.Result) {
						ok := r.Err == nil && r.Msg.RCode == dnswire.RCodeNoError && len(r.Msg.Answers) > 0
						label := svc + "-fail"
						if ok {
							label = svc + "-ok"
						}
						res.Series.Add(sentAt, label, 1)
						if inAttack(sentAt) {
							switch {
							case svc == "root" && ok:
								attackRootOK++
							case svc == "root":
								attackRootFail++
							case ok:
								attackCDNOK++
							default:
								attackCDNFail++
							}
						}
					})
				}
			})
		}
	}

	// The attack: two letters fully saturated, the rest half-saturated at
	// 90%; both CDN nameservers at 90% loss.
	clk.AfterFunc(cfg.AttackStart, func() {
		for l, sites := range rootSites {
			for s, site := range sites {
				switch {
				case l < cfg.Letters/2:
					net.SetInboundLoss(site, 1)
				case s%2 == 0:
					net.SetInboundLoss(site, 0.9)
				}
			}
		}
		for _, addr := range cdnAddrs {
			net.SetInboundLoss(addr, 0.9)
		}
	})
	clk.AfterFunc(cfg.AttackStart+cfg.AttackDur, func() {
		for _, sites := range rootSites {
			for _, site := range sites {
				net.SetInboundLoss(site, 0)
			}
		}
		for _, addr := range cdnAddrs {
			net.SetInboundLoss(addr, 0)
		}
	})

	clk.RunUntil(start.Add(cfg.Duration + time.Minute))

	if n := attackRootOK + attackRootFail; n > 0 {
		res.RootFailDuringAttack = attackRootFail / n
	}
	if n := attackCDNOK + attackCDNFail; n > 0 {
		res.CDNFailDuringAttack = attackCDNFail / n
	}
	return res
}

// attachAnycastAuth binds srv at every site, replying from the anycast
// service address.
func attachAnycastAuth(net *netsim.Network, srv *authoritative.Server, service netsim.Addr, sites []netsim.Addr) {
	port := net.BindAnycast(service, sites, nil)
	for _, site := range sites {
		net.Bind(site, func(src netsim.Addr, payload []byte) {
			if out := srv.HandleWire(payload); out != nil {
				port.Send(src, out)
			}
		})
	}
}

// RenderImplications prints the §8 comparison.
func RenderImplications(r *ImplicationsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s %10s %10s %10s\n",
		"minute", "root-ok", "root-fail", "cdn-ok", "cdn-fail")
	for m := 0; m < r.Series.Rounds(); m++ {
		fmt.Fprintf(&sb, "%8d %10.0f %10.0f %10.0f %10.0f\n", m,
			r.Series.Get(m, "root-ok"), r.Series.Get(m, "root-fail"),
			r.Series.Get(m, "cdn-ok"), r.Series.Get(m, "cdn-fail"))
	}
	fmt.Fprintf(&sb, "\nfailure during the attack: root-like %.1f%%, CDN-like %.1f%%\n",
		100*r.RootFailDuringAttack, 100*r.CDNFailDuringAttack)
	return sb.String()
}
