package experiment

// Streaming, mergeable analysis accumulators. Each accumulator absorbs
// one finished testbed (a whole monolithic run, or one cell of a sharded
// run) and merges with its siblings; finalize renders the familiar
// result structs. The monolithic analyzers delegate here, so both paths
// share one analysis pipeline — and because every summarized sample is
// integer-valued (RTTs in whole milliseconds, per-probe counts), the
// stats.Counts multisets reproduce the old sort-and-Summarize results
// bit for bit. Merges are order-independent (integer sums and multiset
// unions), which is what makes a K-shard run byte-identical to the
// 1-shard run over the same cells.

import (
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/vantage"
)

// ddosAccum accumulates one DDoS experiment's client- and
// authoritative-side tallies.
type ddosAccum struct {
	spec   DDoSSpec
	rounds int

	table4      Table4Row
	answers     *stats.RoundSeries
	classes     *stats.RoundSeries
	authQueries *stats.RoundSeries
	latency     []*stats.Counts // rounds+1: per-round RTTs + overflow bin
	uniqueRn    []int           // per-round distinct resolver addresses
	rnPerProbe  []*stats.Counts // per-round distinct-Rn-per-probe samples
	queriesPP   []*stats.Counts // per-round AAAA-queries-per-probe samples
	tl          *timeline.Timeline // nil unless the run collects a timeline
}

func newDDoSAccum(spec DDoSSpec, start time.Time, rounds int) *ddosAccum {
	ac := &ddosAccum{
		spec:        spec,
		rounds:      rounds,
		table4:      Table4Row{Spec: spec},
		answers:     stats.NewRoundSeries(start, spec.ProbeInterval),
		classes:     stats.NewRoundSeries(start, spec.ProbeInterval),
		authQueries: stats.NewRoundSeries(start, spec.ProbeInterval),
		latency:     make([]*stats.Counts, rounds+1),
		uniqueRn:    make([]int, rounds),
		rnPerProbe:  make([]*stats.Counts, rounds),
		queriesPP:   make([]*stats.Counts, rounds),
	}
	for i := range ac.latency {
		ac.latency[i] = stats.NewCounts()
	}
	for i := 0; i < rounds; i++ {
		ac.rnPerProbe[i] = stats.NewCounts()
		ac.queriesPP[i] = stats.NewCounts()
	}
	return ac
}

// absorb folds one finished testbed into the accumulator.
func (ac *ddosAccum) absorb(tb *Testbed) {
	answers := tb.Fleet.AllAnswers()
	ac.table4.Probes += len(tb.Pop.Probes)
	ac.table4.VPs += tb.Pop.VPCount()
	ac.tallyAnswers(answers)

	if tb.Timeline != nil {
		// Client outcomes are derived VP-side here rather than emitted by
		// the probes: each answer's event time is its arrival (or the
		// moment the stub gave up — RTT is the timeout duration then).
		for _, a := range answers {
			at := a.SentAt.Add(a.RTT)
			switch {
			case a.Timeout:
				tb.Timeline.ObserveAt(at, timeline.Failed)
			case a.Ok():
				tb.Timeline.ObserveAt(at, timeline.Answered)
			default:
				tb.Timeline.ObserveAt(at, timeline.ServFail)
			}
		}
		t := tb.Timeline.Finalize()
		if ac.tl == nil {
			ac.tl = t
		} else {
			ac.tl.Merge(t)
		}
	}

	// Per-VP classification (Figure 7). VPs are visited in sorted key
	// order: the tallies are order-independent, but the trace's classify
	// section must come out in the same order on every run.
	byVP := vantage.ByVP(answers)
	for _, k := range sortedVPKeys(byVP) {
		tracker := classify.NewTracker()
		for _, a := range byVP[k] {
			if !a.Ok() {
				continue
			}
			out := tracker.Classify(a, tb.SerialAt(a.SentAt))
			cat := out.Category
			if cat == classify.Warmup {
				cat = classify.AA
			}
			ac.classes.AddRound(clampRound(a.Round, ac.rounds), cat.String(), 1)
			if tr := tb.Trace; tr != nil {
				// Classification happens after the simulation finishes, so
				// these events form a trailing annotation section whose
				// timestamps rewind to each answer's send time (EmitAt).
				tr.EmitAt(trace.Event{
					At: a.SentAt.Sub(tb.Start), Type: trace.EvClassify,
					Probe: a.ProbeID, A: uint32(clampRound(a.Round, ac.rounds)),
					B: uint32(out.Category), Src: string(k.Recursive),
				})
			}
		}
	}

	ac.absorbAuthSide(tb)
}

// sortedVPKeys orders a ByVP map's keys by (probe, recursive).
func sortedVPKeys(m map[vantage.VPKey][]vantage.Answer) []vantage.VPKey {
	keys := make([]vantage.VPKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ProbeID != keys[j].ProbeID {
			return keys[i].ProbeID < keys[j].ProbeID
		}
		return keys[i].Recursive < keys[j].Recursive
	})
	return keys
}

// tallyAnswers fills the Table 4 counts, the per-round outcome series,
// and the per-round latency multisets from the VP observation log.
// Outcome counts and RTT samples are binned with the same clamped round
// index, and the overflow bin is summarized too, so Latency[r].N always
// matches the answered (OK + SERVFAIL) count of round r — one of the
// report's invariants.
func (ac *ddosAccum) tallyAnswers(answers []vantage.Answer) {
	probeOK := make(map[uint16]bool)
	for _, a := range answers {
		ac.table4.Queries++
		r := clampRound(a.Round, ac.rounds)
		switch {
		case a.Timeout:
			ac.answers.AddRound(r, "NoAnswer", 1)
		case a.Ok():
			ac.table4.TotalAnswers++
			ac.table4.ValidAnswers++
			probeOK[a.ProbeID] = true
			ac.answers.AddRound(r, "OK", 1)
			ac.latency[r].Observe(a.RTT.Milliseconds())
		default:
			ac.table4.TotalAnswers++
			ac.answers.AddRound(r, "SERVFAIL", 1)
			ac.latency[r].Observe(a.RTT.Milliseconds())
		}
	}
	// Probe IDs are local to this testbed, so the distinct count adds
	// cleanly across cells (cells hold disjoint probe sets).
	ac.table4.ProbesValid += len(probeOK)
}

// absorbAuthSide derives the Figures 10–12 tallies from the pre-drop tap.
// Distinct-count sets (unique Rn, Rn per probe) live only inside this
// call: each cell's resolvers and probe names are its own, so per-cell
// distinct counts add without any cross-cell set union.
func (ac *ddosAccum) absorbAuthSide(tb *Testbed) {
	nsHosts := make(map[string]bool)
	for i := range tb.AuthAddrs {
		nsHosts["ns"+itoa(i+1)+"."+Domain] = true
	}
	uniqueRn := make([]map[netsim.Addr]bool, ac.rounds)
	rnPerProbe := make([]map[string]map[netsim.Addr]bool, ac.rounds)
	queriesPerProbe := make([]map[string]int, ac.rounds)
	for i := range uniqueRn {
		uniqueRn[i] = make(map[netsim.Addr]bool)
		rnPerProbe[i] = make(map[string]map[netsim.Addr]bool)
		queriesPerProbe[i] = make(map[string]int)
	}

	for _, ev := range tb.AuthLog {
		r := ac.authQueries.RoundOf(ev.At)
		if r < 0 || r >= ac.rounds {
			continue
		}
		uniqueRn[r][ev.Src] = true
		label := ""
		switch {
		case ev.QName == Domain && ev.QType == dnswire.TypeNS:
			label = "NS"
		case nsHosts[ev.QName] && ev.QType == dnswire.TypeA:
			label = "A-for-NS"
		case nsHosts[ev.QName] && ev.QType == dnswire.TypeAAAA:
			label = "AAAA-for-NS"
		case ev.QType == dnswire.TypeAAAA:
			label = "AAAA-for-PID"
			if m := rnPerProbe[r][ev.QName]; m == nil {
				rnPerProbe[r][ev.QName] = map[netsim.Addr]bool{ev.Src: true}
			} else {
				m[ev.Src] = true
			}
			queriesPerProbe[r][ev.QName]++
		default:
			label = "other"
		}
		ac.authQueries.AddRound(r, label, 1)
	}

	for r := 0; r < ac.rounds; r++ {
		ac.uniqueRn[r] += len(uniqueRn[r])
		for _, m := range rnPerProbe[r] {
			ac.rnPerProbe[r].Observe(int64(len(m)))
		}
		for _, n := range queriesPerProbe[r] {
			ac.queriesPP[r].Observe(int64(n))
		}
	}
}

// merge folds another accumulator (over disjoint probe cells) into ac.
// Every operation is an integer sum or a multiset union, so the merge is
// commutative and associative — fold order cannot change the result.
func (ac *ddosAccum) merge(o *ddosAccum) {
	ac.table4.Probes += o.table4.Probes
	ac.table4.ProbesValid += o.table4.ProbesValid
	ac.table4.VPs += o.table4.VPs
	ac.table4.Queries += o.table4.Queries
	ac.table4.TotalAnswers += o.table4.TotalAnswers
	ac.table4.ValidAnswers += o.table4.ValidAnswers
	ac.answers.Merge(o.answers)
	ac.classes.Merge(o.classes)
	ac.authQueries.Merge(o.authQueries)
	for i := range ac.latency {
		ac.latency[i].Merge(o.latency[i])
	}
	for i := 0; i < ac.rounds; i++ {
		ac.uniqueRn[i] += o.uniqueRn[i]
		ac.rnPerProbe[i].Merge(o.rnPerProbe[i])
		ac.queriesPP[i].Merge(o.queriesPP[i])
	}
	if o.tl != nil {
		if ac.tl == nil {
			ac.tl = o.tl
		} else {
			ac.tl.Merge(o.tl)
		}
	}
}

// finalize renders the accumulated tallies as a DDoSResult (without a
// report — the caller attaches one with the right labels and snapshot).
func (ac *ddosAccum) finalize() *DDoSResult {
	res := &DDoSResult{
		Spec:        ac.spec,
		Table4:      ac.table4,
		Answers:     ac.answers,
		Classes:     ac.classes,
		AuthQueries: ac.authQueries,
	}
	for r := 0; r <= ac.rounds; r++ {
		res.Latency = append(res.Latency, ac.latency[r].Summary())
	}
	for r := 0; r < ac.rounds; r++ {
		res.UniqueRn = append(res.UniqueRn, ac.uniqueRn[r])
		res.RnPerProbe = append(res.RnPerProbe, ac.rnPerProbe[r].Summary())
		res.QueriesPerProbe = append(res.QueriesPerProbe, ac.queriesPP[r].Summary())
	}
	if ac.tl != nil {
		ac.tl.Marks = specMarks(ac.spec)
		res.Timeline = ac.tl
	}
	return res
}

// cachingAccum accumulates one §3 caching run's tallies.
type cachingAccum struct {
	cfg    CachingConfig
	table1 Table1
	table2 classify.Table2
	table3 Table3
	fig13  *stats.RoundSeries
}

func newCachingAccum(cfg CachingConfig, start time.Time) *cachingAccum {
	return &cachingAccum{
		cfg:    cfg,
		table1: Table1{TTL: cfg.TTL},
		fig13:  stats.NewRoundSeries(start, cfg.ProbeInterval),
	}
}

// absorb folds one finished testbed into the accumulator.
func (ac *cachingAccum) absorb(tb *Testbed) {
	answers := tb.Fleet.AllAnswers()

	ac.table1.Probes += tb.Cfg.Probes
	ac.table1.VPs += tb.Pop.VPCount()
	probeOK := make(map[uint16]bool)
	for _, a := range answers {
		ac.table1.Queries++
		if a.Timeout {
			continue
		}
		ac.table1.Answers++
		if a.Ok() {
			ac.table1.AnswersValid++
			probeOK[a.ProbeID] = true
		} else {
			ac.table1.AnswersDisc++
		}
	}
	ac.table1.ProbesValid += len(probeOK)

	// Rn attribution for Table 3: which resolvers fetched each
	// (probe, zone-round) from the authoritatives.
	fetchers := indexFetchers(tb)

	for _, list := range vantage.ByVP(answers) {
		valid := 0
		for _, a := range list {
			if a.Ok() {
				valid++
			}
		}
		if valid == 1 {
			ac.table2.OneAnswerVPs++
			continue
		}
		tracker := classify.NewTracker()
		for _, a := range list {
			if !a.Ok() {
				continue
			}
			out := tracker.Classify(a, tb.SerialAt(a.SentAt))
			ac.table2.Add(out)
			ac.fig13.Add(a.SentAt, out.Category.String(), 1)
			if out.Category == classify.AC {
				ac.absorbTable3(tb, a, fetchers)
			}
		}
	}
}

// absorbTable3 attributes one AC answer to its entry path.
func (ac *cachingAccum) absorbTable3(tb *Testbed, a vantage.Answer, fetchers map[fetcherKey][]netsim.Addr) {
	ac.table3.ACAnswers++
	meta := tb.Pop.R1Meta[a.Recursive]
	if meta.Public {
		ac.table3.PublicR1++
		if meta.Google {
			ac.table3.GoogleR1++
		} else {
			ac.table3.OtherPublicR1++
		}
		return
	}
	ac.table3.NonPublicR1++
	// Did the fetch emerge from a Google backend?
	k := fetcherKey{
		qname: vantage.QName(a.ProbeID, Domain),
		round: int(a.SentAt.Sub(tb.Start) / RotationInterval),
	}
	viaGoogle := false
	for _, rn := range fetchers[k] {
		if tb.Pop.IsGoogleRn(rn) {
			viaGoogle = true
			break
		}
	}
	if viaGoogle {
		ac.table3.GoogleRn++
	} else {
		ac.table3.OtherRn++
	}
}

// merge folds another caching accumulator into ac.
func (ac *cachingAccum) merge(o *cachingAccum) {
	ac.table1.Probes += o.table1.Probes
	ac.table1.ProbesValid += o.table1.ProbesValid
	ac.table1.VPs += o.table1.VPs
	ac.table1.Queries += o.table1.Queries
	ac.table1.Answers += o.table1.Answers
	ac.table1.AnswersValid += o.table1.AnswersValid
	ac.table1.AnswersDisc += o.table1.AnswersDisc
	mergeTable2(&ac.table2, o.table2)
	ac.table3.ACAnswers += o.table3.ACAnswers
	ac.table3.PublicR1 += o.table3.PublicR1
	ac.table3.GoogleR1 += o.table3.GoogleR1
	ac.table3.OtherPublicR1 += o.table3.OtherPublicR1
	ac.table3.NonPublicR1 += o.table3.NonPublicR1
	ac.table3.GoogleRn += o.table3.GoogleRn
	ac.table3.OtherRn += o.table3.OtherRn
	ac.fig13.Merge(o.fig13)
}

// finalize renders the accumulated tallies as a CachingResult (without a
// report).
func (ac *cachingAccum) finalize() *CachingResult {
	res := &CachingResult{
		Config: ac.cfg,
		Table1: ac.table1,
		Table2: ac.table2,
		Table3: ac.table3,
		Fig13:  ac.fig13,
	}
	res.Table1.ProbesDisc = res.Table1.Probes - res.Table1.ProbesValid
	res.Table2.AnswersValid = res.Table1.AnswersValid
	res.MissRate = res.Table2.MissRate()
	return res
}

// mergeTable2 adds src's classification counts into dst, field by field.
// AnswersValid is included for completeness but recomputed at finalize.
func mergeTable2(dst *classify.Table2, src classify.Table2) {
	dst.AnswersValid += src.AnswersValid
	dst.OneAnswerVPs += src.OneAnswerVPs
	dst.Warmup += src.Warmup
	dst.Duplicates += src.Duplicates
	dst.WarmupTTLZone += src.WarmupTTLZone
	dst.WarmupTTLAltered += src.WarmupTTLAltered
	dst.AA += src.AA
	dst.CC += src.CC
	dst.CCdec += src.CCdec
	dst.AC += src.AC
	dst.ACTTLZone += src.ACTTLZone
	dst.ACTTLAltered += src.ACTTLAltered
	dst.CA += src.CA
	dst.CAdec += src.CAdec
}

// glueAccum accumulates the Appendix A Table 5 TTL buckets.
type glueAccum struct {
	ns, a Table5
}

func (ac *glueAccum) absorb(g *GlueResult) {
	addTable5(&ac.ns, g.NS)
	addTable5(&ac.a, g.A)
}

func (ac *glueAccum) finalize() *GlueResult {
	return &GlueResult{NS: ac.ns, A: ac.a}
}

func addTable5(dst *Table5, src Table5) {
	dst.Total += src.Total
	dst.AboveParent += src.AboveParent
	dst.ExactParent += src.ExactParent
	dst.Between += src.Between
	dst.ExactChild += src.ExactChild
	dst.BelowChild += src.BelowChild
}
