package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dnswire"
	"repro/internal/recursive"
	"repro/internal/vantage"
)

// Small-but-meaningful scales keep the full test suite fast.
const (
	testProbes = 150
	testSeed   = 42
)

func TestTestbedBuildsAndRotates(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Probes: 50, TTL: 3600, Seed: 1})
	if len(tb.Auths) != 2 || tb.Pop.VPCount() < 50 {
		t.Fatalf("auths=%d VPs=%d", len(tb.Auths), tb.Pop.VPCount())
	}
	if got := tb.CurrentSerial(); got != 1 {
		t.Errorf("initial serial = %d", got)
	}
	tb.ScheduleRotations(30 * time.Minute)
	tb.Clk.RunFor(25 * time.Minute)
	if got := tb.CurrentSerial(); got != 3 {
		t.Errorf("serial after 25min = %d, want 3", got)
	}
	// The zone serves the round's serial.
	name := vantage.QName(7, Domain)
	rrs := tb.AuthZone.RRSet(name, dnswire.TypeAAAA)
	if len(rrs) != 1 {
		t.Fatalf("AAAA rrset = %v", rrs)
	}
	serial, probeID, encTTL, ok := vantage.DecodeAAAA(rrs[0].Data.(dnswire.AAAA).Addr)
	if !ok || serial != 3 || probeID != 7 || encTTL != 3600 {
		t.Errorf("decoded %d/%d/%d/%v", serial, probeID, encTTL, ok)
	}
}

func TestSerialAt(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Probes: 1, Seed: 1})
	cases := []struct {
		offset time.Duration
		want   uint16
	}{
		{-time.Hour, 1}, {0, 1}, {9 * time.Minute, 1},
		{10 * time.Minute, 2}, {25 * time.Minute, 3},
	}
	for _, c := range cases {
		if got := tb.SerialAt(tb.Start.Add(c.offset)); got != c.want {
			t.Errorf("SerialAt(+%v) = %d, want %d", c.offset, got, c.want)
		}
	}
}

func TestPopulationMix(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Probes: 400, Seed: 3})
	kinds := make(map[R1Kind]int)
	vps := 0
	for _, p := range tb.Pop.Probes {
		for _, rec := range p.Recursives {
			kinds[tb.Pop.KindOf(rec)]++
			vps++
		}
	}
	if vps < 500 || vps > 800 {
		t.Errorf("VPs = %d for 400 probes, want ~1.67x", vps)
	}
	if kinds[DirectHonest] == 0 || kinds[FarmGoogle] == 0 || kinds[MultiTier] == 0 {
		t.Errorf("kind mix = %v", kinds)
	}
	// Direct honest is the plurality kind (~half of VPs).
	if kinds[DirectHonest] < vps*4/10 {
		t.Errorf("direct honest = %d of %d", kinds[DirectHonest], vps)
	}
	if len(tb.Pop.GoogleRn) != 24 {
		t.Errorf("google backends = %d", len(tb.Pop.GoogleRn))
	}
	if !tb.Pop.IsGoogleRn(tb.Pop.GoogleRn[0]) || tb.Pop.IsGoogleRn("probe-1") {
		t.Error("IsGoogleRn misclassifies")
	}
}

// TestCachingBaseline runs a scaled §3 experiment with TTL 3600 and
// checks the paper's qualitative findings.
func TestCachingBaseline(t *testing.T) {
	res := RunCaching(CachingConfig{
		Probes: testProbes, TTL: 3600,
		ProbeInterval: 20 * time.Minute, Rounds: 6, Seed: testSeed,
	})
	t1 := res.Table1
	if t1.Queries == 0 || t1.AnswersValid == 0 {
		t.Fatalf("empty run: %+v", t1)
	}
	// Most probes answer; a few percent are discarded.
	discFrac := float64(t1.ProbesDisc) / float64(t1.Probes)
	if discFrac < 0.005 || discFrac > 0.15 {
		t.Errorf("probe discard fraction = %.3f, want a few percent", discFrac)
	}
	// The headline: ~30% warm-cache misses (paper: 28.5-32.9%; allow a
	// generous band at small scale).
	if res.MissRate < 0.15 || res.MissRate > 0.45 {
		t.Errorf("miss rate = %.3f, want ~0.3", res.MissRate)
	}
	// Caches mostly work: CC dominates CA.
	if res.Table2.CC == 0 || res.Table2.CA > res.Table2.CC {
		t.Errorf("CC=%d CA=%d", res.Table2.CC, res.Table2.CA)
	}
	// Roughly half the misses route via public resolvers (Table 3).
	if res.Table3.ACAnswers > 0 {
		pubShare := float64(res.Table3.PublicR1) / float64(res.Table3.ACAnswers)
		if pubShare < 0.2 || pubShare > 0.8 {
			t.Errorf("public share of misses = %.2f, want ~0.5", pubShare)
		}
	}
	// Rendering produces the paper-style rows.
	for _, render := range []string{
		RenderTable1([]*CachingResult{res}),
		RenderTable2([]*CachingResult{res}),
		RenderTable3([]*CachingResult{res}),
	} {
		if !strings.Contains(render, "3600") {
			t.Errorf("render missing TTL:\n%s", render)
		}
	}
}

// TestCachingShortTTLHasNoCacheHits reproduces the 60 s TTL column: with
// 20-minute probing every answer after warm-up should be fresh (AA).
func TestCachingShortTTLHasNoCacheHits(t *testing.T) {
	res := RunCaching(CachingConfig{
		Probes: testProbes, TTL: 60,
		ProbeInterval: 20 * time.Minute, Rounds: 4, Seed: testSeed,
	})
	total := res.Table2.AA + res.Table2.CC + res.Table2.AC + res.Table2.CA
	if total == 0 {
		t.Fatal("no classified answers")
	}
	aaShare := float64(res.Table2.AA) / float64(total)
	if aaShare < 0.9 {
		t.Errorf("AA share with 60s TTL = %.2f, want ~1.0 (paper: miss 0%%)", aaShare)
	}
}

// TestCachingDayLongTTLTruncation reproduces the 86400 s finding: ~30% of
// warm-up answers carry a shortened TTL.
func TestCachingDayLongTTLTruncation(t *testing.T) {
	res := RunCaching(CachingConfig{
		Probes: testProbes, TTL: 86400,
		ProbeInterval: 20 * time.Minute, Rounds: 4, Seed: testSeed,
	})
	warm := res.Table2.WarmupTTLZone + res.Table2.WarmupTTLAltered
	if warm == 0 {
		t.Fatal("no warmups")
	}
	truncated := float64(res.Table2.WarmupTTLAltered) / float64(warm)
	if truncated < 0.15 || truncated > 0.5 {
		t.Errorf("day-long truncation = %.2f, want ~0.3", truncated)
	}

	// And at one hour the truncation is rare (paper: ~2%).
	res2 := RunCaching(CachingConfig{
		Probes: testProbes, TTL: 3600,
		ProbeInterval: 20 * time.Minute, Rounds: 4, Seed: testSeed,
	})
	warm2 := res2.Table2.WarmupTTLZone + res2.Table2.WarmupTTLAltered
	trunc2 := float64(res2.Table2.WarmupTTLAltered) / float64(warm2)
	if trunc2 > 0.1 {
		t.Errorf("1-hour truncation = %.2f, want ~0.02", trunc2)
	}
}

// TestDDoSModerateLossMostlySurvives reproduces Experiment E: 50% loss on
// both authoritatives, nearly all clients still served.
func TestDDoSModerateLossMostlySurvives(t *testing.T) {
	spec, ok := SpecByName("E")
	if !ok {
		t.Fatal("spec E missing")
	}
	res := RunDDoS(spec, testProbes, testSeed, PopulationConfig{})
	// Rounds 6..11 are under attack.
	for round := 7; round <= 11; round++ {
		if fr := res.FailureRate(round); fr > 0.25 {
			t.Errorf("round %d failure rate %.2f under 50%% loss, want small", round, fr)
		}
	}
}

// TestDDoSCompleteFailureCacheProtection reproduces Experiment A's shape:
// partial protection while caches live, near-total failure after expiry.
func TestDDoSCompleteFailureCacheProtection(t *testing.T) {
	spec, ok := SpecByName("A")
	if !ok {
		t.Fatal("spec A missing")
	}
	res := RunDDoS(spec, testProbes, testSeed, PopulationConfig{})
	// Cache-only phase (rounds 2-5): some failures but far from all.
	early := res.FailureRate(2)
	if early < 0.1 || early > 0.8 {
		t.Errorf("early failure rate = %.2f, want partial protection", early)
	}
	// After TTL expiry (round 8+): nearly everything fails.
	late := res.FailureRate(9)
	if late < 0.85 {
		t.Errorf("post-expiry failure rate = %.2f, want ~1.0", late)
	}
	if late <= early {
		t.Errorf("failure should grow after cache expiry: %.2f -> %.2f", early, late)
	}
}

// TestDDoS90PercentLossRetriesAmplifyTraffic reproduces the §6 finding:
// legitimate traffic at the authoritatives grows several-fold under 90%
// loss.
func TestDDoS90PercentLossRetriesAmplifyTraffic(t *testing.T) {
	spec, ok := SpecByName("I") // TTL 60: no cache shielding
	if !ok {
		t.Fatal("spec I missing")
	}
	res := RunDDoS(spec, testProbes, testSeed, PopulationConfig{Harvest: recursive.HarvestFull})
	baseline := res.AuthQueries.Get(4, "AAAA-for-PID") + res.AuthQueries.Get(4, "other")
	attack := res.AuthQueries.Get(9, "AAAA-for-PID") + res.AuthQueries.Get(9, "other")
	if baseline == 0 {
		t.Fatal("no baseline authoritative traffic")
	}
	mult := attack / baseline
	if mult < 2 {
		t.Errorf("attack traffic multiplier = %.1f, want >= 2 (paper: up to 8x)", mult)
	}
	// More than half of VPs still answered during the attack with
	// caching disabled? Paper: ~37-40% get answers in experiment I. Allow
	// a broad band.
	fr := res.FailureRate(9)
	if fr < 0.2 || fr > 0.9 {
		t.Errorf("failure rate at 90%% loss TTL60 = %.2f, want substantial but not total", fr)
	}
	// Amplification also shows as more distinct Rn per probe (Figure 11).
	if len(res.RnPerProbe) > 9 {
		if res.RnPerProbe[9].Median < res.RnPerProbe[4].Median {
			t.Errorf("Rn per probe should not shrink under attack: %.1f -> %.1f",
				res.RnPerProbe[4].Median, res.RnPerProbe[9].Median)
		}
	}
}

// TestDDoSLatencyGrowsUnderAttack checks the Figure 9 shape: tail latency
// rises during the attack while the median stays moderate with caching.
func TestDDoSLatencyGrowsUnderAttack(t *testing.T) {
	spec, ok := SpecByName("H")
	if !ok {
		t.Fatal("spec H missing")
	}
	res := RunDDoS(spec, testProbes, testSeed, PopulationConfig{})
	pre := res.Latency[4]
	mid := res.Latency[9]
	if mid.P90 <= pre.P90 {
		t.Errorf("p90 latency did not grow: %.0f -> %.0f ms", pre.P90, mid.P90)
	}
	if s := RenderLatency(res); !strings.Contains(s, "median") {
		t.Error("latency render broken")
	}
}

// TestClassesSeriesHasCacheHitsDuringAttack checks the Figure 7 shape for
// Experiment B: CC answers persist into the attack window.
func TestClassesSeriesHasCacheHitsDuringAttack(t *testing.T) {
	spec, ok := SpecByName("B")
	if !ok {
		t.Fatal("spec B missing")
	}
	res := RunDDoS(spec, testProbes, testSeed, PopulationConfig{})
	ccDuring := res.Classes.Get(6, classify.CC.String()) + res.Classes.Get(7, classify.CC.String())
	if ccDuring == 0 {
		t.Error("no cache hits during the attack (Figure 7 shape lost)")
	}
	if s := RenderTable4([]*DDoSResult{res}); !strings.Contains(s, "B") {
		t.Error("table 4 render broken")
	}
}

// TestGlueVsAuthPrefersChildTTL reproduces Appendix A: the large majority
// of answers carry the child's (authoritative) TTL.
func TestGlueVsAuthPrefersChildTTL(t *testing.T) {
	res := RunGlueVsAuth(100, testSeed, PopulationConfig{})
	if res.NS.Total == 0 || res.A.Total == 0 {
		t.Fatalf("no answers: %+v", res)
	}
	if share := res.NS.AuthoritativeShare(); share < 0.75 {
		t.Errorf("NS child share = %.2f, want ~0.95", share)
	}
	if share := res.A.AuthoritativeShare(); share < 0.75 {
		t.Errorf("A child share = %.2f, want ~0.95", share)
	}
	if s := RenderTable5(res); !strings.Contains(s, "TTL=60") {
		t.Error("table 5 render broken")
	}
}
