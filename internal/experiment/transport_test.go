package experiment

import (
	"bytes"
	"context"
	"testing"
)

// TestTransportShardDeterminism extends the byte-identical contract to
// the transport family, with and without a flood (the flood path draws
// loss from per-cell RNG streams, the riskiest spot for shard skew).
func TestTransportShardDeterminism(t *testing.T) {
	scenarios := []Scenario{
		TransportScenario(TransportSpec{}),
		TransportScenario(TransportSpec{Flood: 0.5}),
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			var base []byte
			for _, shards := range []int{1, 4} {
				out, err := Run(context.Background(), sc, RunConfig{
					Probes: 40, Seed: 11, Shards: shards, ShardProbes: 12,
				})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !out.Report.OK() {
					t.Fatalf("shards=%d: failed invariants: %v",
						shards, out.Report.FailedInvariants())
				}
				got := renderOutcome(t, out)
				if base == nil {
					base = got
					continue
				}
				if !bytes.Equal(base, got) {
					t.Fatalf("shards=%d output differs from shards=1:\n%s\n----\n%s",
						shards, base, got)
				}
			}
		})
	}
}

// TestTransportSmoke pins the DoTCP story on a calm (flood-free) run:
// without EDNS or fallback the fat answer dead-ends in SERVFAIL,
// resolver-only fallback moves the truncation to the client leg, full
// fallback absorbs it over TCP, and a 4096-octet buffer needs no TCP at
// all.
func TestTransportSmoke(t *testing.T) {
	t.Parallel()
	out, err := Run(context.Background(),
		TransportScenario(TransportSpec{}),
		RunConfig{Probes: 36, Seed: 7, Shards: 2, ShardProbes: 18})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Report.OK() {
		t.Fatalf("failed invariants: %v", out.Report.FailedInvariants())
	}

	for _, row := range out.Transport.Rows {
		if row.Queries == 0 {
			t.Fatalf("row %s/%s got no probes", row.BufLabel(), row.Fallback)
		}
		small := row.Buf < 2048 // the fat TXT outgrows 0 and 1232
		switch {
		case small && row.Fallback == FallbackNone:
			if row.ServFail != row.Queries {
				t.Errorf("%s/none: servfail = %d of %d queries, want all",
					row.BufLabel(), row.ServFail, row.Queries)
			}
		case small && row.Fallback == FallbackResolver:
			if row.Truncated != row.Queries {
				t.Errorf("%s/rec: truncated = %d of %d queries, want all",
					row.BufLabel(), row.Truncated, row.Queries)
			}
			if row.UpstreamTC == 0 {
				t.Errorf("%s/rec: no upstream TC counted", row.BufLabel())
			}
		case small && row.Fallback == FallbackFull:
			if row.Answered != row.Queries || row.AnsweredTCP != row.Queries {
				t.Errorf("%s/full: answered = %d via-tcp = %d of %d queries, want all over TCP",
					row.BufLabel(), row.Answered, row.AnsweredTCP, row.Queries)
			}
		default: // 4096: UDP suffices for every mode
			if row.Answered != row.Queries || row.AnsweredTCP != 0 {
				t.Errorf("%s/%s: answered = %d via-tcp = %d of %d queries, want all over UDP",
					row.BufLabel(), row.Fallback, row.Answered, row.AnsweredTCP, row.Queries)
			}
		}
	}
}
