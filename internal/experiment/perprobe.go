package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/vantage"
)

// RunDDoSWithTestbed is RunDDoS but also returns the testbed for
// drill-down analyses (Appendix F / Table 7).
//
// Deprecated: positional-argument wrapper kept for compatibility; it
// delegates to Run with DDoSScenario and KeepWorlds, returning the
// single monolithic world. Sharded runs should use Outcome.Worlds and
// ShardedTestbed's ProbeRef-based drill-downs instead.
func RunDDoSWithTestbed(spec DDoSSpec, probes int, seed int64, pop PopulationConfig) (*DDoSResult, *Testbed) {
	out, _ := Run(context.Background(), DDoSScenario(spec), RunConfig{
		Probes: probes, Seed: seed, Population: pop, KeepWorlds: true,
	})
	return out.DDoS, out.Worlds.Shards[0]
}

// Table7Round is one row of the Appendix F per-probe table: the client
// and authoritative views of one probing round.
type Table7Round struct {
	Round int
	// Client view.
	ClientQueries int
	ClientAnswers int
	R1Used        int
	// Authoritative view (pre-drop arrivals for this probe's name).
	AuthQueries  int
	AuthAnswered int // arrivals that were not dropped
	ATsUsed      int
	RnUsed       int
}

// Table7 is the full per-probe drill-down.
type Table7 struct {
	ProbeID uint16
	Rounds  []Table7Round
}

// PerProbe computes Table 7 for one probe from a finished testbed.
func PerProbe(tb *Testbed, res *DDoSResult, probeID uint16) Table7 {
	spec := res.Spec
	rounds := int(spec.TotalDur / spec.ProbeInterval)
	out := Table7{ProbeID: probeID, Rounds: make([]Table7Round, rounds)}
	for r := range out.Rounds {
		out.Rounds[r].Round = r
	}

	var probe *vantage.Probe
	for _, p := range tb.Pop.Probes {
		if p.ID == probeID {
			probe = p
			break
		}
	}
	if probe == nil {
		return out
	}

	r1Used := make([]map[netsim.Addr]bool, rounds)
	for i := range r1Used {
		r1Used[i] = make(map[netsim.Addr]bool)
	}
	for _, a := range probe.Answers() {
		if a.Round < 0 || a.Round >= rounds {
			continue
		}
		row := &out.Rounds[a.Round]
		row.ClientQueries++
		if a.Ok() {
			row.ClientAnswers++
			r1Used[a.Round][a.Recursive] = true
		}
	}
	for r := range out.Rounds {
		out.Rounds[r].R1Used = len(r1Used[r])
	}

	qname := vantage.QName(probeID, Domain)
	ats := make([]map[netsim.Addr]bool, rounds)
	rns := make([]map[netsim.Addr]bool, rounds)
	for i := range ats {
		ats[i] = make(map[netsim.Addr]bool)
		rns[i] = make(map[netsim.Addr]bool)
	}
	series := res.AuthQueries // same binning
	for _, ev := range tb.AuthLog {
		if ev.QName != qname || ev.QType != dnswire.TypeAAAA {
			continue
		}
		r := series.RoundOf(ev.At)
		if r < 0 || r >= rounds {
			continue
		}
		row := &out.Rounds[r]
		row.AuthQueries++
		if !ev.Dropped {
			row.AuthAnswered++
		}
		ats[r][ev.Dst] = true
		rns[r][ev.Src] = true
	}
	for r := range out.Rounds {
		out.Rounds[r].ATsUsed = len(ats[r])
		out.Rounds[r].RnUsed = len(rns[r])
	}
	return out
}

// BusiestProbe returns the probe whose name drew the most authoritative
// queries — a good Table 7 subject, like the paper's probe 28477 with its
// multi-level recursives. For sharded runs use
// ShardedTestbed.BusiestProbe, which routes across cells.
func BusiestProbe(tb *Testbed) uint16 {
	id, _ := busiestProbeCount(tb)
	return id
}

// busiestProbeCount returns the busiest probe of one testbed along with
// its AAAA arrival count, so sharded runs can compare winners across
// cells.
func busiestProbeCount(tb *Testbed) (uint16, int) {
	counts := make(map[string]int)
	for _, ev := range tb.AuthLog {
		if ev.QType == dnswire.TypeAAAA {
			counts[ev.QName]++
		}
	}
	best, bestN := uint16(0), -1
	for _, p := range tb.Pop.Probes {
		if n := counts[vantage.QName(p.ID, Domain)]; n > bestN {
			best, bestN = p.ID, n
		}
	}
	return best, bestN
}

// RenderTable7 prints the per-probe drill-down.
func RenderTable7(t Table7) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "probe %d\n", t.ProbeID)
	fmt.Fprintf(&sb, "%5s | %8s %8s %6s | %8s %8s %6s %6s\n",
		"T", "cli-q", "cli-ans", "R1s", "auth-q", "auth-ans", "ATs", "Rn")
	for _, row := range t.Rounds {
		fmt.Fprintf(&sb, "%5d | %8d %8d %6d | %8d %8d %6d %6d\n",
			row.Round+1, row.ClientQueries, row.ClientAnswers, row.R1Used,
			row.AuthQueries, row.AuthAnswered, row.ATsUsed, row.RnUsed)
	}
	return sb.String()
}
