package experiment

import (
	"context"
	"fmt"
	"strings"
)

// Check runs a scaled-down version of every headline experiment and
// compares the results against qualitative bands derived from the paper.
// It is the repository's one-shot reproduction self-test
// (`dikes check`).

// CheckResult is one verified claim.
type CheckResult struct {
	Claim    string
	Paper    string
	Measured string
	Pass     bool
}

// Check executes the verification suite at the given probe scale.
//
// Deprecated: positional-argument wrapper kept for compatibility; it
// delegates to Run with CheckScenario, which adds cancellation and can
// route the sub-experiments through the sharded engine.
func Check(probes int, seed int64) []CheckResult {
	out, _ := Run(context.Background(), CheckScenario(), RunConfig{
		Probes: probes, Seed: seed,
	})
	return out.Check
}

// RenderCheck prints the verification table and returns true when every
// claim passed.
func RenderCheck(results []CheckResult) (string, bool) {
	var sb strings.Builder
	allPass := true
	fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", "claim", "paper", "measured", "verdict")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			allPass = false
		}
		fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", r.Claim, r.Paper, r.Measured, verdict)
	}
	return sb.String(), allPass
}
