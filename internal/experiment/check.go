package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/parallel"
	"repro/internal/recursive"
	"repro/internal/retrymodel"
)

// Check runs a scaled-down version of every headline experiment and
// compares the results against qualitative bands derived from the paper.
// It is the repository's one-shot reproduction self-test
// (`dikes check`).

// CheckResult is one verified claim.
type CheckResult struct {
	Claim    string
	Paper    string
	Measured string
	Pass     bool
}

// Check executes the verification suite at the given probe scale. The
// component experiments are independent worlds, so they run concurrently;
// the verdict table is assembled afterwards in the fixed claim order.
func Check(probes int, seed int64) []CheckResult {
	specE, okE := SpecByName("E")
	specH, okH := SpecByName("H")
	specI, okI := SpecByName("I")
	specA, okA := SpecByName("A")

	var (
		caching, short, day    *CachingResult
		resE, resH, resI, resA *DDoSResult
		resIHarvest            *DDoSResult
		bindUp, bindDown       retrymodel.Result
		glue                   *GlueResult
		impl                   *ImplicationsResult
	)
	runs := []func(){
		func() {
			caching = RunCaching(CachingConfig{
				Probes: probes, TTL: 3600, ProbeInterval: 20 * time.Minute,
				Rounds: 6, Seed: seed,
			})
		},
		func() {
			short = RunCaching(CachingConfig{
				Probes: probes, TTL: 60, ProbeInterval: 20 * time.Minute,
				Rounds: 4, Seed: seed,
			})
		},
		func() {
			day = RunCaching(CachingConfig{
				Probes: probes, TTL: 86400, ProbeInterval: 20 * time.Minute,
				Rounds: 4, Seed: seed,
			})
		},
		func() {
			bindUp = retrymodel.Run(retrymodel.BINDLike(), false, 25, seed)
			bindDown = retrymodel.Run(retrymodel.BINDLike(), true, 25, seed)
		},
		func() { glue = RunGlueVsAuth(probes/2, seed, PopulationConfig{}) },
		func() {
			impl = RunImplications(ImplicationsConfig{Clients: probes / 4, Recursives: 20, Seed: seed})
		},
	}
	if okE {
		runs = append(runs, func() { resE = RunDDoS(specE, probes, seed, PopulationConfig{}) })
	}
	if okH {
		runs = append(runs, func() { resH = RunDDoS(specH, probes, seed, PopulationConfig{}) })
	}
	if okI {
		runs = append(runs, func() { resI = RunDDoS(specI, probes, seed, PopulationConfig{}) })
		runs = append(runs, func() {
			resIHarvest = RunDDoS(specI, probes, seed, PopulationConfig{Harvest: recursive.HarvestFull})
		})
	}
	if okA {
		runs = append(runs, func() { resA = RunDDoS(specA, probes, seed, PopulationConfig{}) })
	}
	parallel.Do(runs...)

	var out []CheckResult
	add := func(claim, paper, measured string, pass bool) {
		out = append(out, CheckResult{Claim: claim, Paper: paper, Measured: measured, Pass: pass})
	}

	// §3: warm-cache miss rate ~30%.
	add("warm-cache miss rate (TTL 3600)", "28.5-32.9%",
		fmt.Sprintf("%.1f%%", 100*caching.MissRate),
		caching.MissRate > 0.18 && caching.MissRate < 0.42)

	// §3: short TTLs never hit the cache at 20-minute probing.
	total := short.Table2.AA + short.Table2.CC + short.Table2.AC + short.Table2.CA
	aaShare := 0.0
	if total > 0 {
		aaShare = float64(short.Table2.AA) / float64(total)
	}
	add("TTL 60 @ 20min probing: all fresh (AA)", "~100%",
		fmt.Sprintf("%.1f%%", 100*aaShare), aaShare > 0.9)

	// §3.4: day-long TTLs are truncated for ~30% of VPs.
	warm := day.Table2.WarmupTTLZone + day.Table2.WarmupTTLAltered
	trunc := 0.0
	if warm > 0 {
		trunc = float64(day.Table2.WarmupTTLAltered) / float64(warm)
	}
	add("TTL truncation at 1-day TTLs", "~30%",
		fmt.Sprintf("%.1f%%", 100*trunc), trunc > 0.15 && trunc < 0.5)

	// §5: Experiment E — 50% loss barely hurts.
	if okE {
		delta := resE.FailureRate(9) - resE.FailureRate(4)
		add("exp E (50% loss): failure increase small", "+3.7pp",
			fmt.Sprintf("+%.1fpp", 100*delta), delta >= 0 && delta < 0.15)
	}

	// §5: Experiment H — ~60% still served at 90% loss with 30-min TTLs.
	if okH {
		served := 1 - resH.FailureRate(9)
		add("exp H (90% loss, TTL 1800): still served", "~60%",
			fmt.Sprintf("%.1f%%", 100*served), served > 0.45 && served < 0.85)

		// And the cache's value: exp I (TTL 60) fares clearly worse.
		if okI {
			servedI := 1 - resI.FailureRate(9)
			add("exp I (90% loss, TTL 60): served less than H", "~37-40%",
				fmt.Sprintf("%.1f%%", 100*servedI),
				servedI > 0.2 && servedI < 0.6 && servedI < served)
		}
	}

	// §5.2: Experiment A — near-total failure after caches expire.
	if okA {
		late := resA.FailureRate(9)
		early := resA.FailureRate(3)
		add("exp A: cache cliff at TTL expiry", "partial, then ~100% fail",
			fmt.Sprintf("%.0f%% -> %.0f%%", 100*early, 100*late),
			early < 0.6 && late > 0.85)
	}

	// §6: traffic amplification at the authoritatives under 90% loss.
	if okI {
		base := resIHarvest.AuthQueries.Get(4, "AAAA-for-PID")
		attack := resIHarvest.AuthQueries.Get(9, "AAAA-for-PID")
		mult := 0.0
		if base > 0 {
			mult = attack / base
		}
		add("legit traffic multiplier under 90% loss", "up to 8.2x",
			fmt.Sprintf("%.1fx", mult), mult > 2 && mult < 15)
	}

	// §6.2: software retry amplification.
	bmult := bindDown.Mean.Total() / bindUp.Mean.Total()
	add("BIND-like retries during failure", "3 -> 12 queries (4x)",
		fmt.Sprintf("%.0f -> %.0f (%.1fx)", bindUp.Mean.Total(), bindDown.Mean.Total(), bmult),
		bindUp.Mean.Total() <= 4 && bmult > 2 && bmult < 8)

	// Appendix A: the child's TTL wins.
	add("answers carry the child-side TTL", "~95%",
		fmt.Sprintf("%.1f%%", 100*glue.NS.AuthoritativeShare()),
		glue.NS.AuthoritativeShare() > 0.85)

	// §8: root-like rides it out, CDN-like suffers.
	add("root-like vs CDN-like failure under attack", "≈0% vs visible",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*impl.RootFailDuringAttack, 100*impl.CDNFailDuringAttack),
		impl.RootFailDuringAttack < 0.05 && impl.CDNFailDuringAttack > 0.05)

	return out
}

// RenderCheck prints the verification table and returns true when every
// claim passed.
func RenderCheck(results []CheckResult) (string, bool) {
	var sb strings.Builder
	allPass := true
	fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", "claim", "paper", "measured", "verdict")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			allPass = false
		}
		fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", r.Claim, r.Paper, r.Measured, verdict)
	}
	return sb.String(), allPass
}
