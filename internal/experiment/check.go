package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/recursive"
	"repro/internal/retrymodel"
)

// Check runs a scaled-down version of every headline experiment and
// compares the results against qualitative bands derived from the paper.
// It is the repository's one-shot reproduction self-test
// (`dikes check`).

// CheckResult is one verified claim.
type CheckResult struct {
	Claim    string
	Paper    string
	Measured string
	Pass     bool
}

// Check executes the verification suite at the given probe scale.
func Check(probes int, seed int64) []CheckResult {
	var out []CheckResult
	add := func(claim, paper, measured string, pass bool) {
		out = append(out, CheckResult{Claim: claim, Paper: paper, Measured: measured, Pass: pass})
	}

	// §3: warm-cache miss rate ~30%.
	caching := RunCaching(CachingConfig{
		Probes: probes, TTL: 3600, ProbeInterval: 20 * time.Minute,
		Rounds: 6, Seed: seed,
	})
	add("warm-cache miss rate (TTL 3600)", "28.5-32.9%",
		fmt.Sprintf("%.1f%%", 100*caching.MissRate),
		caching.MissRate > 0.18 && caching.MissRate < 0.42)

	// §3: short TTLs never hit the cache at 20-minute probing.
	short := RunCaching(CachingConfig{
		Probes: probes, TTL: 60, ProbeInterval: 20 * time.Minute,
		Rounds: 4, Seed: seed,
	})
	total := short.Table2.AA + short.Table2.CC + short.Table2.AC + short.Table2.CA
	aaShare := 0.0
	if total > 0 {
		aaShare = float64(short.Table2.AA) / float64(total)
	}
	add("TTL 60 @ 20min probing: all fresh (AA)", "~100%",
		fmt.Sprintf("%.1f%%", 100*aaShare), aaShare > 0.9)

	// §3.4: day-long TTLs are truncated for ~30% of VPs.
	day := RunCaching(CachingConfig{
		Probes: probes, TTL: 86400, ProbeInterval: 20 * time.Minute,
		Rounds: 4, Seed: seed,
	})
	warm := day.Table2.WarmupTTLZone + day.Table2.WarmupTTLAltered
	trunc := 0.0
	if warm > 0 {
		trunc = float64(day.Table2.WarmupTTLAltered) / float64(warm)
	}
	add("TTL truncation at 1-day TTLs", "~30%",
		fmt.Sprintf("%.1f%%", 100*trunc), trunc > 0.15 && trunc < 0.5)

	// §5: Experiment E — 50% loss barely hurts.
	if spec, ok := SpecByName("E"); ok {
		res := RunDDoS(spec, probes, seed, PopulationConfig{})
		delta := res.FailureRate(9) - res.FailureRate(4)
		add("exp E (50% loss): failure increase small", "+3.7pp",
			fmt.Sprintf("+%.1fpp", 100*delta), delta >= 0 && delta < 0.15)
	}

	// §5: Experiment H — ~60% still served at 90% loss with 30-min TTLs.
	if spec, ok := SpecByName("H"); ok {
		res := RunDDoS(spec, probes, seed, PopulationConfig{})
		served := 1 - res.FailureRate(9)
		add("exp H (90% loss, TTL 1800): still served", "~60%",
			fmt.Sprintf("%.1f%%", 100*served), served > 0.45 && served < 0.85)

		// And the cache's value: exp I (TTL 60) fares clearly worse.
		if specI, ok := SpecByName("I"); ok {
			resI := RunDDoS(specI, probes, seed, PopulationConfig{})
			servedI := 1 - resI.FailureRate(9)
			add("exp I (90% loss, TTL 60): served less than H", "~37-40%",
				fmt.Sprintf("%.1f%%", 100*servedI),
				servedI > 0.2 && servedI < 0.6 && servedI < served)
		}
	}

	// §5.2: Experiment A — near-total failure after caches expire.
	if spec, ok := SpecByName("A"); ok {
		res := RunDDoS(spec, probes, seed, PopulationConfig{})
		late := res.FailureRate(9)
		early := res.FailureRate(3)
		add("exp A: cache cliff at TTL expiry", "partial, then ~100% fail",
			fmt.Sprintf("%.0f%% -> %.0f%%", 100*early, 100*late),
			early < 0.6 && late > 0.85)
	}

	// §6: traffic amplification at the authoritatives under 90% loss.
	if spec, ok := SpecByName("I"); ok {
		res := RunDDoS(spec, probes, seed, PopulationConfig{Harvest: recursive.HarvestFull})
		base := res.AuthQueries.Get(4, "AAAA-for-PID")
		attack := res.AuthQueries.Get(9, "AAAA-for-PID")
		mult := 0.0
		if base > 0 {
			mult = attack / base
		}
		add("legit traffic multiplier under 90% loss", "up to 8.2x",
			fmt.Sprintf("%.1fx", mult), mult > 2 && mult < 15)
	}

	// §6.2: software retry amplification.
	bindUp := retrymodel.Run(retrymodel.BINDLike(), false, 25, seed)
	bindDown := retrymodel.Run(retrymodel.BINDLike(), true, 25, seed)
	bmult := bindDown.Mean.Total() / bindUp.Mean.Total()
	add("BIND-like retries during failure", "3 -> 12 queries (4x)",
		fmt.Sprintf("%.0f -> %.0f (%.1fx)", bindUp.Mean.Total(), bindDown.Mean.Total(), bmult),
		bindUp.Mean.Total() <= 4 && bmult > 2 && bmult < 8)

	// Appendix A: the child's TTL wins.
	glue := RunGlueVsAuth(probes/2, seed, PopulationConfig{})
	add("answers carry the child-side TTL", "~95%",
		fmt.Sprintf("%.1f%%", 100*glue.NS.AuthoritativeShare()),
		glue.NS.AuthoritativeShare() > 0.85)

	// §8: root-like rides it out, CDN-like suffers.
	impl := RunImplications(ImplicationsConfig{Clients: probes / 4, Recursives: 20, Seed: seed})
	add("root-like vs CDN-like failure under attack", "≈0% vs visible",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*impl.RootFailDuringAttack, 100*impl.CDNFailDuringAttack),
		impl.RootFailDuringAttack < 0.05 && impl.CDNFailDuringAttack > 0.05)

	return out
}

// RenderCheck prints the verification table and returns true when every
// claim passed.
func RenderCheck(results []CheckResult) (string, bool) {
	var sb strings.Builder
	allPass := true
	fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", "claim", "paper", "measured", "verdict")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			allPass = false
		}
		fmt.Fprintf(&sb, "%-48s %-28s %-22s %s\n", r.Claim, r.Paper, r.Measured, verdict)
	}
	return sb.String(), allPass
}
