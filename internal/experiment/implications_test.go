package experiment

import (
	"strings"
	"testing"
)

// TestImplicationsRootVsCDN checks the paper's §8 explanation: with
// day-long TTLs and anycast letter redundancy, users of the root-like
// service barely notice the attack, while the short-TTL CDN-like service
// shows clear user-visible failures.
func TestImplicationsRootVsCDN(t *testing.T) {
	res := RunImplications(ImplicationsConfig{Clients: 200, Recursives: 20, Seed: 3})
	if res.Series.Rounds() == 0 {
		t.Fatal("no data")
	}
	if res.RootFailDuringAttack > 0.05 {
		t.Errorf("root-like failure = %.3f, want near zero (cached + surviving letters)",
			res.RootFailDuringAttack)
	}
	if res.CDNFailDuringAttack < 0.05 {
		t.Errorf("CDN-like failure = %.3f, want clearly visible", res.CDNFailDuringAttack)
	}
	if res.CDNFailDuringAttack <= res.RootFailDuringAttack {
		t.Errorf("CDN (%.3f) should fail more than root-like (%.3f)",
			res.CDNFailDuringAttack, res.RootFailDuringAttack)
	}
	out := RenderImplications(res)
	if !strings.Contains(out, "root-ok") || !strings.Contains(out, "failure during the attack") {
		t.Errorf("render:\n%s", out)
	}
}

// TestImplicationsLongTTLCDNRecovers shows the paper's recommendation: the
// same CDN-like service with 30-minute TTLs fails much less.
func TestImplicationsLongTTLCDNRecovers(t *testing.T) {
	short := RunImplications(ImplicationsConfig{Clients: 200, Recursives: 20, Seed: 3, CDNTTL: 120})
	long := RunImplications(ImplicationsConfig{Clients: 200, Recursives: 20, Seed: 3, CDNTTL: 1800})
	if long.CDNFailDuringAttack >= short.CDNFailDuringAttack {
		t.Errorf("long TTL (%.3f) should beat short TTL (%.3f)",
			long.CDNFailDuringAttack, short.CDNFailDuringAttack)
	}
}
