package experiment

import (
	"time"

	"repro/internal/dnswire"
	"repro/internal/passive"
	"repro/internal/recursive"
	"repro/internal/stats"
)

// RunNlFromSim derives the §4.1 analysis from an actual simulation rather
// than a synthesized trace: a harvesting resolver population serves probe
// queries for hours, and the authoritative-side tap records when each
// recursive re-fetches the zone's nameserver A records (TTL 3600). The
// inter-arrival distribution of those fetches is exactly what the paper
// measured at the .nl servers — honest resolvers re-appear once per TTL,
// fragmented farms more often.
type NlSimConfig struct {
	Probes   int
	Duration time.Duration
	Seed     int64
}

func (c NlSimConfig) withDefaults() NlSimConfig {
	if c.Probes == 0 {
		c.Probes = 400
	}
	if c.Duration == 0 {
		c.Duration = 6 * time.Hour
	}
	return c
}

// NlSimResult mirrors passive.NlResult for the simulated variant.
type NlSimResult struct {
	Config   NlSimConfig
	Analysis passive.InterarrivalAnalysis
	ECDF     *stats.ECDF
	// FracAtTTL is the fraction of per-recursive median inter-arrivals
	// within 10% of the 3600 s record TTL.
	FracAtTTL float64
	// FracBelowTTL counts recursives re-fetching early.
	FracBelowTTL float64
}

// RunNlFromSim executes the simulation and the paper's analysis.
func RunNlFromSim(cfg NlSimConfig) *NlSimResult {
	cfg = cfg.withDefaults()
	tb := NewTestbed(TestbedConfig{
		Probes: cfg.Probes,
		TTL:    3600,
		Seed:   cfg.Seed,
		Population: PopulationConfig{
			Harvest: recursive.HarvestFull,
		},
		KeepAuthLog: true,
	})
	rounds := int(cfg.Duration / (20 * time.Minute))
	tb.ScheduleRotations(cfg.Duration + RotationInterval)
	tb.Fleet.Schedule(tb.Start, 20*time.Minute, 5*time.Minute, rounds)
	tb.Clk.RunUntil(tb.Start.Add(cfg.Duration + 10*time.Minute))

	// The paper's target names: the zone's nameserver A records.
	nsHosts := map[string]bool{}
	for i := range tb.AuthAddrs {
		nsHosts["ns"+itoa(i+1)+"."+Domain] = true
	}
	var events []passive.QueryEvent
	for _, ev := range tb.AuthLog {
		if ev.QType != dnswire.TypeA || !nsHosts[ev.QName] {
			continue
		}
		events = append(events, passive.QueryEvent{At: ev.At, Src: string(ev.Src)})
	}

	res := &NlSimResult{Config: cfg}
	res.Analysis = passive.AnalyzeInterarrivals(events, 3, 10*time.Second)
	res.ECDF = stats.NewECDF(res.Analysis.Medians)
	at, below := 0, 0
	for _, m := range res.Analysis.Medians {
		switch {
		// Honoring resolvers re-fetch at or after the TTL; with paced
		// demand the refresh lands up to one probing interval late
		// ("expected or delayed cache refresh", §4.1).
		case m >= 3600*0.9:
			at++
		default:
			below++
		}
	}
	if n := len(res.Analysis.Medians); n > 0 {
		res.FracAtTTL = float64(at) / float64(n)
		res.FracBelowTTL = float64(below) / float64(n)
	}
	return res
}
