package experiment

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/vantage"
)

// R1Kind is the deployment shape behind one vantage point's first-hop
// recursive.
type R1Kind int

// Population mix of first-hop recursive kinds (§3.5 of the paper).
const (
	// DirectHonest is a single-tier ISP recursive with a well-behaved
	// cache.
	DirectHonest R1Kind = iota
	// DirectCap60 rewrites all TTLs down to 60 s (the EC2-resolver
	// behavior of §3.4).
	DirectCap60
	// FarmGoogle forwards into a large anycast farm with fragmented
	// backend caches (Google-like).
	FarmGoogle
	// FarmOther forwards into a smaller public farm whose backends also
	// serve stale (OpenDNS-like, §5.3).
	FarmOther
	// MultiTier is an uncached first-level forwarder (home router / first
	// ISP tier) spreading queries over a small Rn pool.
	MultiTier
	// DeadR1 never answers (the ~4.5% discarded probes of Table 1).
	DeadR1
	// BrokenR1 responds but always fails (SERVFAIL): the small
	// "answers (disc.)" fraction of Table 1.
	BrokenR1
)

func (k R1Kind) String() string {
	switch k {
	case DirectHonest:
		return "direct"
	case DirectCap60:
		return "direct-cap60"
	case FarmGoogle:
		return "farm-google"
	case FarmOther:
		return "farm-other"
	case MultiTier:
		return "multi-tier"
	case DeadR1:
		return "dead"
	case BrokenR1:
		return "broken"
	}
	return "unknown"
}

// R1Meta describes one first-hop recursive address.
type R1Meta struct {
	Kind R1Kind
	// Public marks addresses on the paper's public-resolver list
	// (Table 3).
	Public bool
	Google bool
}

// PopulationConfig sets the behavior mix. Fractions apply per vantage
// point; the remainder is DirectHonest. The defaults are calibrated so the
// §3 baseline lands near the paper's numbers: ~30% warm-cache misses,
// about half of them entering through public farms, ~2% TTL truncation
// for TTLs of an hour or less, ~30% for day-long TTLs.
type PopulationConfig struct {
	FracFarmGoogle float64
	FracFarmOther  float64
	FracMultiTier  float64
	FracCap60      float64
	// FracDead is the per-probe probability that all of a probe's
	// recursives are unreachable (Table 1's probes disc.).
	FracDead float64
	// FracBroken is the per-VP probability of a recursive that always
	// SERVFAILs (Table 1's answers disc.).
	FracBroken float64
	// FracDirectCap6h is the per-VP probability of a direct resolver
	// whose cache caps TTLs at 6 hours (with the farm caps, this yields
	// the paper's ~30% truncation of day-long TTLs).
	FracDirectCap6h float64

	// GoogleBackends and OtherBackends size the farm fragmentation.
	GoogleBackends int
	OtherBackends  int
	// MultiTierPoolSize is the Rn pool each multi-tier group shares.
	MultiTierPoolSize int
	// VPsPerMultiTierGroup bounds how many vantage points share one Rn
	// pool.
	VPsPerMultiTierGroup int
	// FracMultiTierViaGoogle routes this fraction of multi-tier groups
	// through the Google farm as one upstream (the paper's "10% of
	// non-public misses eventually emerge from Google").
	FracMultiTierViaGoogle float64
	// FarmTTLCap is the backend cache cap of public farms (the ~6 h
	// refresh the paper cites for day-long TTLs).
	FarmTTLCap time.Duration
	// FlushPerHour is the probability per hour that a direct resolver's
	// cache is flushed (restarts/operator flushes, §3.1).
	FlushPerHour float64
	// Harvest selects the NS-record harvesting mode of iterative
	// resolvers (HarvestFull produces the paper's Figure 10 query mix).
	Harvest recursive.HarvestMode
	// FracAnswerFromReferral is the fraction of direct resolvers that
	// answer clients from referral-learned (parent-side) data, the small
	// minority Appendix A finds in the wild.
	FracAnswerFromReferral float64
	// ServeStaleDirect turns on serve-stale at every direct (single-tier)
	// resolver, modeling universal adoption of the serve-stale draft —
	// the what-if behind the paper's §5.3 discussion.
	ServeStaleDirect bool
	// PrefetchDirect, when positive, enables Unbound-style prefetch at
	// every direct resolver with the given threshold fraction (an
	// extension experiment: prefetch keeps caches warm into an attack).
	PrefetchDirect float64
	// MaxFetch applies the NXNSAttack max-fetch(k) mitigation to every
	// iterative resolver in the population (recursive.Config.MaxFetch);
	// 0 leaves glueless fan-out uncapped.
	MaxFetch int
	// RandomIDs gives every iterative resolver full 16-bit query-ID
	// entropy instead of the sequential counter (the poisoning
	// experiments' ID-entropy axis).
	RandomIDs bool
	// NoBailiwick disables the bailiwick credibility check population-
	// wide, modeling pre-hardening resolvers. Experiments only.
	NoBailiwick bool
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.FracFarmGoogle == 0 {
		c.FracFarmGoogle = 0.15
	}
	if c.FracFarmOther == 0 {
		c.FracFarmOther = 0.06
	}
	if c.FracMultiTier == 0 {
		c.FracMultiTier = 0.22
	}
	if c.FracCap60 == 0 {
		c.FracCap60 = 0.02
	}
	if c.FracDead == 0 {
		c.FracDead = 0.045
	}
	if c.FracBroken == 0 {
		c.FracBroken = 0.004
	}
	if c.FracDirectCap6h == 0 {
		c.FracDirectCap6h = 0.10
	}
	if c.GoogleBackends == 0 {
		c.GoogleBackends = 24
	}
	if c.OtherBackends == 0 {
		c.OtherBackends = 8
	}
	if c.MultiTierPoolSize == 0 {
		c.MultiTierPoolSize = 3
	}
	if c.VPsPerMultiTierGroup == 0 {
		c.VPsPerMultiTierGroup = 40
	}
	if c.FracMultiTierViaGoogle == 0 {
		c.FracMultiTierViaGoogle = 0.10
	}
	if c.FarmTTLCap == 0 {
		c.FarmTTLCap = 6 * time.Hour
	}
	if c.FlushPerHour == 0 {
		c.FlushPerHour = 0.02
	}
	if c.FracAnswerFromReferral == 0 {
		c.FracAnswerFromReferral = 0.05
	}
	return c
}

// Population is the assembled resolver-and-probe world.
type Population struct {
	Probes []*vantage.Probe
	R1Meta map[netsim.Addr]R1Meta
	// GoogleRn lists the Google farm's backend addresses (the slice is
	// shared with the farm LB's forwarder list; treat as read-only).
	GoogleRn []netsim.Addr
	// Resolvers are the population's recursives, lazily materialized: a
	// cell describes thousands of resolvers but a run only pays for the
	// ones traffic actually reaches.
	Resolvers []*LazyResolver

	googleRnSet map[netsim.Addr]bool // lazy index over GoogleRn
}

// IsGoogleRn reports whether addr is a Google-farm backend. The lookup
// index is built on first use: construction stays allocation-free and
// only analysis passes pay for the map.
func (p *Population) IsGoogleRn(addr netsim.Addr) bool {
	if p.googleRnSet == nil {
		if len(p.GoogleRn) == 0 {
			return false
		}
		p.googleRnSet = make(map[netsim.Addr]bool, len(p.GoogleRn))
		for _, rn := range p.GoogleRn {
			p.googleRnSet[rn] = true
		}
	}
	return p.googleRnSet[addr]
}

// LazyResolver is a deferred recursive resolver: the full config is fixed
// at population build time (so RNG draw order is identical to eager
// construction), but NewResolver and the network bind run only when the
// first packet is delivered to its address.
type LazyResolver struct {
	clk  clock.Clock
	net  *netsim.Network
	cfg  recursive.Config
	addr netsim.Addr
	tr   *trace.Buffer
	tl   *timeline.Collector
	r    *recursive.Resolver
}

// Materialize builds the resolver; netsim calls it on first delivery.
func (l *LazyResolver) Materialize() {
	r := recursive.NewResolver(l.clk, l.cfg)
	if l.tr != nil {
		r.SetTrace(l.tr)
	}
	if l.tl != nil {
		r.SetTimeline(l.tl)
	}
	r.Attach(l.net, l.addr)
	l.r = r
}

// Resolver returns the materialized resolver, nil if it never saw traffic.
func (l *LazyResolver) Resolver() *recursive.Resolver { return l.r }

// Addr returns the resolver's network address.
func (l *LazyResolver) Addr() netsim.Addr { return l.addr }

// SetTrace enables query-lifecycle tracing, now or at materialization.
func (l *LazyResolver) SetTrace(tr *trace.Buffer) {
	l.tr = tr
	if l.r != nil {
		l.r.SetTrace(tr)
	}
}

// SetTimeline points the resolver at the cell's timeline collector, now
// or at materialization.
func (l *LazyResolver) SetTimeline(c *timeline.Collector) {
	l.tl = c
	if l.r != nil {
		l.r.SetTimeline(c)
	}
}

// defer registers a lazy resolver at addr. Handles are carved from a
// chunked arena: appending never moves earlier entries (a full chunk is
// retired, not grown), so returned pointers stay valid.
func (b *builder) deferResolver(addr netsim.Addr, cfg recursive.Config) *LazyResolver {
	if len(b.slab) == cap(b.slab) {
		n := 2 * cap(b.slab)
		if n < 64 {
			n = 64
		}
		b.slab = make([]LazyResolver, 0, n)
	}
	b.slab = append(b.slab, LazyResolver{clk: b.clk, net: b.net, cfg: cfg, addr: addr})
	l := &b.slab[len(b.slab)-1]
	b.net.BindLazy(addr, l)
	b.pop.Resolvers = append(b.pop.Resolvers, l)
	return l
}

// builder carries construction state.
type builder struct {
	clk    clock.Clock
	net    *netsim.Network
	hints  []recursive.ServerHint
	cfg    PopulationConfig
	rng    *rand.Rand
	domain string

	pop        *Population
	slab       []LazyResolver // arena for lazy handles; chunked, pointers stable
	nextAddr   int
	googleLB   netsim.Addr
	otherLB    netsim.Addr
	mtGroups   []netsim.Addr // current group's R1s share a pool via LB? no: pool addrs
	mtPool     []netsim.Addr
	mtPoolUsed int
	seedSeq    int64
}

// BuildPopulation creates the resolver infrastructure and probes. Each
// probe gets 1–3 first-hop recursives (so VPs ≈ 1.67 × probes, as in
// Table 1), with kinds drawn from the configured mix.
func BuildPopulation(clk clock.Clock, net *netsim.Network, probes int, domain string,
	hints []recursive.ServerHint, cfg PopulationConfig, seed int64) *Population {

	cfg = cfg.withDefaults()
	b := &builder{
		clk: clk, net: net, hints: hints, cfg: cfg,
		rng: rand.New(rand.NewSource(seed)), domain: domain,
		pop: &Population{
			R1Meta:    make(map[netsim.Addr]R1Meta),
			Resolvers: make([]*LazyResolver, 0, 64),
		},
		seedSeq: seed * 7919,
	}
	b.googleLB, b.pop.GoogleRn = b.buildFarm("google", "google-rn", "google-lb", cfg.GoogleBackends, false)
	b.otherLB, _ = b.buildFarm("pubdns", "pubdns-rn", "pubdns-lb", cfg.OtherBackends, true)

	for id := 1; id <= probes; id++ {
		nRec := 1
		switch r := b.rng.Float64(); {
		case r < 0.15:
			nRec = 3
		case r < 0.50:
			nRec = 2
		}
		// Discarded probes (Table 1) fail wholesale: every local
		// recursive is unreachable.
		dead := b.rng.Float64() < cfg.FracDead
		var recursives []netsim.Addr
		for j := 0; j < nRec; j++ {
			if dead {
				addr := b.addr("dead-r1")
				b.pop.R1Meta[addr] = R1Meta{Kind: DeadR1}
				recursives = append(recursives, addr)
				continue
			}
			recursives = append(recursives, b.buildR1())
		}
		p := vantage.NewProbe(clk, net, uint16(id), b.addr("probe"),
			recursives, domain, b.nextSeed())
		b.pop.Probes = append(b.pop.Probes, p)
	}
	return b.pop
}

// addrIntern caches generated host addresses. The builder's address
// sequence is deterministic, so same-shaped testbeds (every shard of a
// run, every benchmark iteration) produce the same strings; interning
// makes the steady-state cost zero allocations.
var addrIntern struct {
	mu sync.Mutex
	m  map[addrKey]netsim.Addr
}

type addrKey struct {
	prefix string
	n      int
}

func (b *builder) addr(prefix string) netsim.Addr {
	b.nextAddr++
	k := addrKey{prefix, b.nextAddr}
	addrIntern.mu.Lock()
	a, ok := addrIntern.m[k]
	if !ok {
		a = netsim.Addr(prefix + "-" + itoa(k.n))
		if addrIntern.m == nil {
			addrIntern.m = make(map[addrKey]netsim.Addr)
		}
		addrIntern.m[k] = a
	}
	addrIntern.mu.Unlock()
	return a
}

func (b *builder) nextSeed() int64 {
	b.seedSeq++
	return b.seedSeq
}

// farmAddrKey identifies a farm's backend address sequence: the interned
// addresses are fully determined by (prefix, first counter value, count).
type farmAddrKey struct {
	prefix string
	start  int
	n      int
}

// farmAddrIntern shares backend address slices across testbeds. The
// slices are read-only by contract (forwarder rotation copies before
// shuffling), so identical farm shapes reuse one allocation.
var farmAddrIntern struct {
	mu sync.Mutex
	m  map[farmAddrKey][]netsim.Addr
}

// buildFarm creates a fragmented public resolver farm: an uncached
// load-balancer frontend spreading queries over independently cached
// iterative backends. It returns the LB address and the backend list.
func (b *builder) buildFarm(name, rnPrefix, lbName string, backends int, serveStale bool) (netsim.Addr, []netsim.Addr) {
	key := farmAddrKey{prefix: rnPrefix, start: b.nextAddr, n: backends}
	farmAddrIntern.mu.Lock()
	backendAddrs, interned := farmAddrIntern.m[key]
	farmAddrIntern.mu.Unlock()
	if !interned {
		backendAddrs = make([]netsim.Addr, 0, backends)
	}
	for i := 0; i < backends; i++ {
		addr := b.addr(rnPrefix)
		b.deferResolver(addr, recursive.Config{
			RootHints:   b.hints,
			Cache:       cache.Config{MaxTTL: b.cfg.FarmTTLCap},
			ServeStale:  serveStale,
			Harvest:     b.cfg.Harvest,
			MaxFetch:    b.cfg.MaxFetch,
			RandomIDs:   b.cfg.RandomIDs,
			NoBailiwick: b.cfg.NoBailiwick,
			Seed:        b.nextSeed(),
		})
		if !interned {
			backendAddrs = append(backendAddrs, addr)
		}
	}
	if !interned {
		farmAddrIntern.mu.Lock()
		if farmAddrIntern.m == nil {
			farmAddrIntern.m = make(map[farmAddrKey][]netsim.Addr)
		}
		farmAddrIntern.m[key] = backendAddrs
		farmAddrIntern.mu.Unlock()
	}
	lb := b.addr(lbName)
	b.deferResolver(lb, recursive.Config{
		Forwarders:      backendAddrs,
		NoCache:         true,
		ExplorationProb: 1, // pure load balancing: uniform backend choice
		MaxAttempts:     4,
		Seed:            b.nextSeed(),
	})
	return lb, backendAddrs
}

// buildR1 creates (or reuses) the first-hop recursive for one vantage
// point and returns its address.
func (b *builder) buildR1() netsim.Addr {
	r := b.rng.Float64()
	cfg := b.cfg
	switch {
	case r < cfg.FracBroken:
		// A resolver that always SERVFAILs (no usable root hints).
		addr := b.addr("broken-r1")
		b.deferResolver(addr, recursive.Config{Seed: b.nextSeed()})
		b.pop.R1Meta[addr] = R1Meta{Kind: BrokenR1}
		return addr
	case r < cfg.FracBroken+cfg.FracFarmGoogle:
		b.pop.R1Meta[b.googleLB] = R1Meta{Kind: FarmGoogle, Public: true, Google: true}
		return b.googleLB
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther:
		b.pop.R1Meta[b.otherLB] = R1Meta{Kind: FarmOther, Public: true}
		return b.otherLB
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier:
		return b.buildMultiTierR1()
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier+cfg.FracCap60:
		return b.buildDirect(DirectCap60, cache.Config{MaxTTL: 60 * time.Second})
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier+cfg.FracCap60+cfg.FracDirectCap6h:
		return b.buildDirect(DirectHonest, cache.Config{MaxTTL: 6 * time.Hour})
	default:
		return b.buildDirect(DirectHonest, cache.Config{})
	}
}

// buildDirect creates a per-VP single-tier iterative recursive.
func (b *builder) buildDirect(kind R1Kind, cc cache.Config) netsim.Addr {
	addr := b.addr("isp-r1")
	l := b.deferResolver(addr, recursive.Config{
		RootHints:          b.hints,
		Cache:              cc,
		Harvest:            b.cfg.Harvest,
		AnswerFromReferral: b.rng.Float64() < b.cfg.FracAnswerFromReferral,
		ServeStale:         b.cfg.ServeStaleDirect,
		Prefetch:           b.cfg.PrefetchDirect,
		MaxFetch:           b.cfg.MaxFetch,
		RandomIDs:          b.cfg.RandomIDs,
		NoBailiwick:        b.cfg.NoBailiwick,
		Seed:               b.nextSeed(),
	})
	b.pop.R1Meta[addr] = R1Meta{Kind: kind}
	b.scheduleFlushes(l)
	return addr
}

// buildMultiTierR1 creates an uncached forwarder over the current Rn
// pool, cutting a fresh pool every VPsPerMultiTierGroup vantage points.
func (b *builder) buildMultiTierR1() netsim.Addr {
	if b.mtPool == nil || b.mtPoolUsed >= b.cfg.VPsPerMultiTierGroup {
		b.mtPool = nil
		b.mtPoolUsed = 0
		for i := 0; i < b.cfg.MultiTierPoolSize; i++ {
			rnAddr := b.addr("mt-rn")
			rn := b.deferResolver(rnAddr, recursive.Config{
				RootHints:   b.hints,
				Harvest:     b.cfg.Harvest,
				MaxFetch:    b.cfg.MaxFetch,
				RandomIDs:   b.cfg.RandomIDs,
				NoBailiwick: b.cfg.NoBailiwick,
				Seed:        b.nextSeed(),
			})
			b.scheduleFlushes(rn)
			b.mtPool = append(b.mtPool, rnAddr)
		}
		if b.rng.Float64() < b.cfg.FracMultiTierViaGoogle {
			b.mtPool = append(b.mtPool, b.googleLB)
		}
	}
	b.mtPoolUsed++

	addr := b.addr("mt-r1")
	b.deferResolver(addr, recursive.Config{
		Forwarders:      b.mtPool,
		NoCache:         true,
		ExplorationProb: 1, // spread over the pool
		MaxAttempts:     6,
		Seed:            b.nextSeed(),
	})
	b.pop.R1Meta[addr] = R1Meta{Kind: MultiTier}
	return addr
}

// scheduleFlushes arms random cache flushes over the next 12 hours,
// modeling resolver restarts (§3.1). Flushing a resolver that never
// materialized is a no-op either way: its cache is empty by definition.
func (b *builder) scheduleFlushes(l *LazyResolver) {
	if b.cfg.FlushPerHour <= 0 {
		return
	}
	for h := 0; h < 12; h++ {
		if b.rng.Float64() < b.cfg.FlushPerHour {
			at := time.Duration(h)*time.Hour +
				time.Duration(b.rng.Int63n(int64(time.Hour)))
			b.clk.AfterFunc(at, func() {
				if r := l.Resolver(); r != nil {
					r.Cache().Flush()
				}
			})
		}
	}
}

// KindOf returns the R1 kind behind addr.
func (p *Population) KindOf(addr netsim.Addr) R1Kind {
	return p.R1Meta[addr].Kind
}

// VPCount returns the total number of vantage points.
func (p *Population) VPCount() int {
	n := 0
	for _, probe := range p.Probes {
		n += len(probe.Recursives)
	}
	return n
}
