package experiment

import (
	"math/rand"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/vantage"
)

// R1Kind is the deployment shape behind one vantage point's first-hop
// recursive.
type R1Kind int

// Population mix of first-hop recursive kinds (§3.5 of the paper).
const (
	// DirectHonest is a single-tier ISP recursive with a well-behaved
	// cache.
	DirectHonest R1Kind = iota
	// DirectCap60 rewrites all TTLs down to 60 s (the EC2-resolver
	// behavior of §3.4).
	DirectCap60
	// FarmGoogle forwards into a large anycast farm with fragmented
	// backend caches (Google-like).
	FarmGoogle
	// FarmOther forwards into a smaller public farm whose backends also
	// serve stale (OpenDNS-like, §5.3).
	FarmOther
	// MultiTier is an uncached first-level forwarder (home router / first
	// ISP tier) spreading queries over a small Rn pool.
	MultiTier
	// DeadR1 never answers (the ~4.5% discarded probes of Table 1).
	DeadR1
	// BrokenR1 responds but always fails (SERVFAIL): the small
	// "answers (disc.)" fraction of Table 1.
	BrokenR1
)

func (k R1Kind) String() string {
	switch k {
	case DirectHonest:
		return "direct"
	case DirectCap60:
		return "direct-cap60"
	case FarmGoogle:
		return "farm-google"
	case FarmOther:
		return "farm-other"
	case MultiTier:
		return "multi-tier"
	case DeadR1:
		return "dead"
	case BrokenR1:
		return "broken"
	}
	return "unknown"
}

// R1Meta describes one first-hop recursive address.
type R1Meta struct {
	Kind R1Kind
	// Public marks addresses on the paper's public-resolver list
	// (Table 3).
	Public bool
	Google bool
}

// PopulationConfig sets the behavior mix. Fractions apply per vantage
// point; the remainder is DirectHonest. The defaults are calibrated so the
// §3 baseline lands near the paper's numbers: ~30% warm-cache misses,
// about half of them entering through public farms, ~2% TTL truncation
// for TTLs of an hour or less, ~30% for day-long TTLs.
type PopulationConfig struct {
	FracFarmGoogle float64
	FracFarmOther  float64
	FracMultiTier  float64
	FracCap60      float64
	// FracDead is the per-probe probability that all of a probe's
	// recursives are unreachable (Table 1's probes disc.).
	FracDead float64
	// FracBroken is the per-VP probability of a recursive that always
	// SERVFAILs (Table 1's answers disc.).
	FracBroken float64
	// FracDirectCap6h is the per-VP probability of a direct resolver
	// whose cache caps TTLs at 6 hours (with the farm caps, this yields
	// the paper's ~30% truncation of day-long TTLs).
	FracDirectCap6h float64

	// GoogleBackends and OtherBackends size the farm fragmentation.
	GoogleBackends int
	OtherBackends  int
	// MultiTierPoolSize is the Rn pool each multi-tier group shares.
	MultiTierPoolSize int
	// VPsPerMultiTierGroup bounds how many vantage points share one Rn
	// pool.
	VPsPerMultiTierGroup int
	// FracMultiTierViaGoogle routes this fraction of multi-tier groups
	// through the Google farm as one upstream (the paper's "10% of
	// non-public misses eventually emerge from Google").
	FracMultiTierViaGoogle float64
	// FarmTTLCap is the backend cache cap of public farms (the ~6 h
	// refresh the paper cites for day-long TTLs).
	FarmTTLCap time.Duration
	// FlushPerHour is the probability per hour that a direct resolver's
	// cache is flushed (restarts/operator flushes, §3.1).
	FlushPerHour float64
	// Harvest selects the NS-record harvesting mode of iterative
	// resolvers (HarvestFull produces the paper's Figure 10 query mix).
	Harvest recursive.HarvestMode
	// FracAnswerFromReferral is the fraction of direct resolvers that
	// answer clients from referral-learned (parent-side) data, the small
	// minority Appendix A finds in the wild.
	FracAnswerFromReferral float64
	// ServeStaleDirect turns on serve-stale at every direct (single-tier)
	// resolver, modeling universal adoption of the serve-stale draft —
	// the what-if behind the paper's §5.3 discussion.
	ServeStaleDirect bool
	// PrefetchDirect, when positive, enables Unbound-style prefetch at
	// every direct resolver with the given threshold fraction (an
	// extension experiment: prefetch keeps caches warm into an attack).
	PrefetchDirect float64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.FracFarmGoogle == 0 {
		c.FracFarmGoogle = 0.15
	}
	if c.FracFarmOther == 0 {
		c.FracFarmOther = 0.06
	}
	if c.FracMultiTier == 0 {
		c.FracMultiTier = 0.22
	}
	if c.FracCap60 == 0 {
		c.FracCap60 = 0.02
	}
	if c.FracDead == 0 {
		c.FracDead = 0.045
	}
	if c.FracBroken == 0 {
		c.FracBroken = 0.004
	}
	if c.FracDirectCap6h == 0 {
		c.FracDirectCap6h = 0.10
	}
	if c.GoogleBackends == 0 {
		c.GoogleBackends = 24
	}
	if c.OtherBackends == 0 {
		c.OtherBackends = 8
	}
	if c.MultiTierPoolSize == 0 {
		c.MultiTierPoolSize = 3
	}
	if c.VPsPerMultiTierGroup == 0 {
		c.VPsPerMultiTierGroup = 40
	}
	if c.FracMultiTierViaGoogle == 0 {
		c.FracMultiTierViaGoogle = 0.10
	}
	if c.FarmTTLCap == 0 {
		c.FarmTTLCap = 6 * time.Hour
	}
	if c.FlushPerHour == 0 {
		c.FlushPerHour = 0.02
	}
	if c.FracAnswerFromReferral == 0 {
		c.FracAnswerFromReferral = 0.05
	}
	return c
}

// Population is the assembled resolver-and-probe world.
type Population struct {
	Probes    []*vantage.Probe
	R1Meta    map[netsim.Addr]R1Meta
	RnGoogle  map[netsim.Addr]bool // Google farm backend addresses
	RnPublic  map[netsim.Addr]bool // all public farm backends
	Resolvers []*recursive.Resolver
}

// builder carries construction state.
type builder struct {
	clk    clock.Clock
	net    *netsim.Network
	hints  []recursive.ServerHint
	cfg    PopulationConfig
	rng    *rand.Rand
	domain string

	pop        *Population
	nextAddr   int
	googleLB   netsim.Addr
	otherLB    netsim.Addr
	mtGroups   []netsim.Addr // current group's R1s share a pool via LB? no: pool addrs
	mtPool     []netsim.Addr
	mtPoolUsed int
	seedSeq    int64
}

// BuildPopulation creates the resolver infrastructure and probes. Each
// probe gets 1–3 first-hop recursives (so VPs ≈ 1.67 × probes, as in
// Table 1), with kinds drawn from the configured mix.
func BuildPopulation(clk clock.Clock, net *netsim.Network, probes int, domain string,
	hints []recursive.ServerHint, cfg PopulationConfig, seed int64) *Population {

	cfg = cfg.withDefaults()
	b := &builder{
		clk: clk, net: net, hints: hints, cfg: cfg,
		rng: rand.New(rand.NewSource(seed)), domain: domain,
		pop: &Population{
			R1Meta:   make(map[netsim.Addr]R1Meta),
			RnGoogle: make(map[netsim.Addr]bool),
			RnPublic: make(map[netsim.Addr]bool),
		},
		seedSeq: seed * 7919,
	}
	b.googleLB = b.buildFarm("google", cfg.GoogleBackends, false)
	b.otherLB = b.buildFarm("pubdns", cfg.OtherBackends, true)

	for id := 1; id <= probes; id++ {
		nRec := 1
		switch r := b.rng.Float64(); {
		case r < 0.15:
			nRec = 3
		case r < 0.50:
			nRec = 2
		}
		// Discarded probes (Table 1) fail wholesale: every local
		// recursive is unreachable.
		dead := b.rng.Float64() < cfg.FracDead
		var recursives []netsim.Addr
		for j := 0; j < nRec; j++ {
			if dead {
				addr := b.addr("dead-r1")
				b.pop.R1Meta[addr] = R1Meta{Kind: DeadR1}
				recursives = append(recursives, addr)
				continue
			}
			recursives = append(recursives, b.buildR1())
		}
		p := vantage.NewProbe(clk, net, uint16(id), b.addr("probe"),
			recursives, domain, b.nextSeed())
		b.pop.Probes = append(b.pop.Probes, p)
	}
	return b.pop
}

func (b *builder) addr(prefix string) netsim.Addr {
	b.nextAddr++
	return netsim.Addr(prefix + "-" + itoa(b.nextAddr))
}

func (b *builder) nextSeed() int64 {
	b.seedSeq++
	return b.seedSeq
}

// buildFarm creates a fragmented public resolver farm: an uncached
// load-balancer frontend spreading queries over independently cached
// iterative backends.
func (b *builder) buildFarm(name string, backends int, serveStale bool) netsim.Addr {
	var backendAddrs []netsim.Addr
	for i := 0; i < backends; i++ {
		addr := b.addr(name + "-rn")
		r := recursive.NewResolver(b.clk, recursive.Config{
			RootHints:  b.hints,
			Cache:      cache.Config{MaxTTL: b.cfg.FarmTTLCap},
			ServeStale: serveStale,
			Harvest:    b.cfg.Harvest,
			Seed:       b.nextSeed(),
		})
		r.Attach(b.net, addr)
		b.pop.Resolvers = append(b.pop.Resolvers, r)
		backendAddrs = append(backendAddrs, addr)
		b.pop.RnPublic[addr] = true
		if name == "google" {
			b.pop.RnGoogle[addr] = true
		}
	}
	lb := b.addr(name + "-lb")
	front := recursive.NewResolver(b.clk, recursive.Config{
		Forwarders:      backendAddrs,
		NoCache:         true,
		ExplorationProb: 1, // pure load balancing: uniform backend choice
		MaxAttempts:     4,
		Seed:            b.nextSeed(),
	})
	front.Attach(b.net, lb)
	b.pop.Resolvers = append(b.pop.Resolvers, front)
	return lb
}

// buildR1 creates (or reuses) the first-hop recursive for one vantage
// point and returns its address.
func (b *builder) buildR1() netsim.Addr {
	r := b.rng.Float64()
	cfg := b.cfg
	switch {
	case r < cfg.FracBroken:
		// A resolver that always SERVFAILs (no usable root hints).
		addr := b.addr("broken-r1")
		br := recursive.NewResolver(b.clk, recursive.Config{Seed: b.nextSeed()})
		br.Attach(b.net, addr)
		b.pop.Resolvers = append(b.pop.Resolvers, br)
		b.pop.R1Meta[addr] = R1Meta{Kind: BrokenR1}
		return addr
	case r < cfg.FracBroken+cfg.FracFarmGoogle:
		b.pop.R1Meta[b.googleLB] = R1Meta{Kind: FarmGoogle, Public: true, Google: true}
		return b.googleLB
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther:
		b.pop.R1Meta[b.otherLB] = R1Meta{Kind: FarmOther, Public: true}
		return b.otherLB
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier:
		return b.buildMultiTierR1()
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier+cfg.FracCap60:
		return b.buildDirect(DirectCap60, cache.Config{MaxTTL: 60 * time.Second})
	case r < cfg.FracBroken+cfg.FracFarmGoogle+cfg.FracFarmOther+cfg.FracMultiTier+cfg.FracCap60+cfg.FracDirectCap6h:
		return b.buildDirect(DirectHonest, cache.Config{MaxTTL: 6 * time.Hour})
	default:
		return b.buildDirect(DirectHonest, cache.Config{})
	}
}

// buildDirect creates a per-VP single-tier iterative recursive.
func (b *builder) buildDirect(kind R1Kind, cc cache.Config) netsim.Addr {
	addr := b.addr("isp-r1")
	r := recursive.NewResolver(b.clk, recursive.Config{
		RootHints:          b.hints,
		Cache:              cc,
		Harvest:            b.cfg.Harvest,
		AnswerFromReferral: b.rng.Float64() < b.cfg.FracAnswerFromReferral,
		ServeStale:         b.cfg.ServeStaleDirect,
		Prefetch:           b.cfg.PrefetchDirect,
		Seed:               b.nextSeed(),
	})
	r.Attach(b.net, addr)
	b.pop.Resolvers = append(b.pop.Resolvers, r)
	b.pop.R1Meta[addr] = R1Meta{Kind: kind}
	b.scheduleFlushes(r)
	return addr
}

// buildMultiTierR1 creates an uncached forwarder over the current Rn
// pool, cutting a fresh pool every VPsPerMultiTierGroup vantage points.
func (b *builder) buildMultiTierR1() netsim.Addr {
	if b.mtPool == nil || b.mtPoolUsed >= b.cfg.VPsPerMultiTierGroup {
		b.mtPool = nil
		b.mtPoolUsed = 0
		for i := 0; i < b.cfg.MultiTierPoolSize; i++ {
			rnAddr := b.addr("mt-rn")
			rn := recursive.NewResolver(b.clk, recursive.Config{
				RootHints: b.hints,
				Harvest:   b.cfg.Harvest,
				Seed:      b.nextSeed(),
			})
			rn.Attach(b.net, rnAddr)
			b.pop.Resolvers = append(b.pop.Resolvers, rn)
			b.scheduleFlushes(rn)
			b.mtPool = append(b.mtPool, rnAddr)
		}
		if b.rng.Float64() < b.cfg.FracMultiTierViaGoogle {
			b.mtPool = append(b.mtPool, b.googleLB)
		}
	}
	b.mtPoolUsed++

	addr := b.addr("mt-r1")
	r1 := recursive.NewResolver(b.clk, recursive.Config{
		Forwarders:      b.mtPool,
		NoCache:         true,
		ExplorationProb: 1, // spread over the pool
		MaxAttempts:     6,
		Seed:            b.nextSeed(),
	})
	r1.Attach(b.net, addr)
	b.pop.Resolvers = append(b.pop.Resolvers, r1)
	b.pop.R1Meta[addr] = R1Meta{Kind: MultiTier}
	return addr
}

// scheduleFlushes arms random cache flushes over the next 12 hours,
// modeling resolver restarts (§3.1).
func (b *builder) scheduleFlushes(r *recursive.Resolver) {
	if b.cfg.FlushPerHour <= 0 {
		return
	}
	for h := 0; h < 12; h++ {
		if b.rng.Float64() < b.cfg.FlushPerHour {
			at := time.Duration(h)*time.Hour +
				time.Duration(b.rng.Int63n(int64(time.Hour)))
			b.clk.AfterFunc(at, func() { r.Cache().Flush() })
		}
	}
}

// KindOf returns the R1 kind behind addr.
func (p *Population) KindOf(addr netsim.Addr) R1Kind {
	return p.R1Meta[addr].Kind
}

// VPCount returns the total number of vantage points.
func (p *Population) VPCount() int {
	n := 0
	for _, probe := range p.Probes {
		n += len(probe.Recursives)
	}
	return n
}
