package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/trace"
)

// TestAdversaryShardDeterminism extends the engine's core contract to
// the adversary family: rendered tables and report JSON are
// byte-identical at every shard count.
func TestAdversaryShardDeterminism(t *testing.T) {
	scenarios := []Scenario{
		NXNSScenario(NXNSSpec{Widths: []int{3, 6}, MaxFetch: 2}),
		PoisonScenario(PoisonSpec{Waves: 8, IDWindow: 8}),
		ReflectScenario(ReflectSpec{}),
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			var base []byte
			for _, shards := range []int{1, 4} {
				out, err := Run(context.Background(), sc, RunConfig{
					Probes: 40, Seed: 11, Shards: shards, ShardProbes: 12,
				})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !out.Report.OK() {
					t.Fatalf("shards=%d: failed invariants: %v",
						shards, out.Report.FailedInvariants())
				}
				got := renderOutcome(t, out)
				if base == nil {
					base = got
					continue
				}
				if !bytes.Equal(base, got) {
					t.Fatalf("shards=%d output differs from shards=1:\n%s\n----\n%s",
						shards, base, got)
				}
			}
		})
	}
}

// TestNXNSMaxFetchCap checks the attack and its mitigation: uncapped,
// the victim-side amplification tracks the delegation width; with
// max-fetch(k) armed it is capped by k.
func TestNXNSMaxFetchCap(t *testing.T) {
	t.Parallel()
	run := func(k int) *NXNSResult {
		out, err := Run(context.Background(),
			NXNSScenario(NXNSSpec{Widths: []int{4, 12}, MaxFetch: k}),
			RunConfig{Probes: 24, Seed: 5, Shards: 2, ShardProbes: 12})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Report.OK() {
			t.Fatalf("k=%d: failed invariants: %v", k, out.Report.FailedInvariants())
		}
		return out.NXNS
	}

	uncapped := run(0)
	for _, row := range uncapped.Rows {
		if amp := row.Amplification(); amp < float64(row.Width) {
			t.Errorf("width %d uncapped: amplification %.2f, want >= width", row.Width, amp)
		}
	}

	capped := run(3)
	for i, row := range capped.Rows {
		if amp := row.Amplification(); amp > 3 {
			t.Errorf("width %d with max-fetch(3): amplification %.2f, want <= 3", row.Width, amp)
		}
		if row.VictimQueries >= uncapped.Rows[i].VictimQueries {
			t.Errorf("width %d: max-fetch did not reduce victim load (%d vs %d)",
				row.Width, row.VictimQueries, uncapped.Rows[i].VictimQueries)
		}
	}
}

// TestPoisonEfficacy checks the defense matrix end to end: a
// sequential-ID resolver is reliably poisoned, full ID entropy stops
// the same spray cold, and out-of-bailiwick writes happen only with
// the bailiwick check disabled.
func TestPoisonEfficacy(t *testing.T) {
	t.Parallel()
	run := func(spec PoisonSpec) *PoisonResult {
		out, err := Run(context.Background(), PoisonScenario(spec),
			RunConfig{Probes: 24, Seed: 3, Shards: 2, ShardProbes: 12})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Report.OK() {
			t.Fatalf("%+v: failed invariants: %v", spec, out.Report.FailedInvariants())
		}
		return out.Poison
	}

	weak := run(PoisonSpec{NoBailiwick: true})
	if weak.Hijacked < weak.Attempts/2 {
		t.Errorf("sequential IDs: only %d/%d attempts hijacked, want a majority",
			weak.Hijacked, weak.Attempts)
	}
	if weak.OOBWrites == 0 {
		t.Error("bailiwick check off: no out-of-bailiwick cache writes recorded")
	}

	bwOnly := run(PoisonSpec{})
	if bwOnly.OOBWrites != 0 {
		t.Errorf("bailiwick check on: %d out-of-bailiwick writes", bwOnly.OOBWrites)
	}

	strong := run(PoisonSpec{RandomIDs: true})
	if strong.Hijacked != 0 || strong.CachePoisoned != 0 {
		t.Errorf("full entropy + bailiwick: %d hijacks, %d poisoned caches, want 0",
			strong.Hijacked, strong.CachePoisoned)
	}
}

// TestReflectAmplification checks that EDNS shapes amplify harder than
// the plain-A shape and that the victim sees exactly one response per
// reflected query.
func TestReflectAmplification(t *testing.T) {
	t.Parallel()
	out, err := Run(context.Background(), ReflectScenario(ReflectSpec{}),
		RunConfig{Probes: 30, Seed: 7, Shards: 2, ShardProbes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Report.OK() {
		t.Fatalf("failed invariants: %v", out.Report.FailedInvariants())
	}
	r := out.Reflect
	byShape := map[string]ReflectRow{}
	for _, row := range r.Rows {
		byShape[row.Shape] = row
		if row.Packets != row.Queries {
			t.Errorf("%s: %d packets for %d queries", row.Shape, row.Packets, row.Queries)
		}
	}
	if txt, a := byShape["TXT+EDNS"], byShape["AAAA"]; txt.Amplification() <= a.Amplification() {
		t.Errorf("TXT+EDNS amp %.2f not above AAAA amp %.2f",
			txt.Amplification(), a.Amplification())
	}
	if txt := byShape["TXT+EDNS"]; txt.Amplification() < 5 {
		t.Errorf("TXT+EDNS amplification %.2f, want >= 5", txt.Amplification())
	}
	if r.VictimQPS <= 0 {
		t.Error("victim qps not computed")
	}
}

// TestPoisonTraceHijack pins the `dikes trace -fail` reconstruction of
// a poisoning race: the trace of a successful hijack yields a
// FirstHijack span whose Explain chain shows the spoof spray and the
// accepted forgery.
func TestPoisonTraceHijack(t *testing.T) {
	t.Parallel()
	out, err := Run(context.Background(), PoisonScenario(PoisonSpec{}),
		RunConfig{Probes: 8, Seed: 2, Shards: 1, ShardProbes: 8,
			Trace: &trace.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace data")
	}
	sp, ok := out.Trace.FirstHijack()
	if !ok {
		t.Fatal("sequential-ID run recorded no hijacked span")
	}
	var sends, hits int
	for _, ev := range out.Trace.Explain(sp) {
		switch ev.Type {
		case trace.EvSpoofSend:
			sends++
		case trace.EvSpoofHit:
			hits++
		}
	}
	if sends == 0 || hits != 1 {
		t.Errorf("explain chain: %d spoof_send, %d spoof_hit events (want >0, 1)", sends, hits)
	}
}

// TestAdversarySmoke is the CI adversary-smoke entry point: all three
// scenarios, small scale, sharded, invariants green.
func TestAdversarySmoke(t *testing.T) {
	t.Parallel()
	scenarios := []Scenario{
		NXNSScenario(NXNSSpec{Widths: []int{4, 8}, MaxFetch: 4}),
		PoisonScenario(PoisonSpec{RandomIDs: true}),
		ReflectScenario(ReflectSpec{}),
	}
	for _, sc := range scenarios {
		out, err := Run(context.Background(), sc, RunConfig{
			Probes: 16, Seed: 42, Shards: 2, ShardProbes: 8,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if !out.Report.OK() {
			t.Fatalf("%s: failed invariants: %v", sc.Name(), out.Report.FailedInvariants())
		}
	}
}
