package experiment

// The transport scenario family: the DoTCP-fallback resiliency study.
// Each probe asks its own dedicated resolver for a TXT record too fat
// for small UDP budgets (~1.8 KB: over the 1232-octet flag-day default,
// under 4096), while a volumetric flood drops packets at the
// cachetest.nl authoritatives. The sweep crosses the advertised EDNS0
// buffer size with how much of the path can fall back to TCP on TC=1:
//
//   none — classic UDP-only path. Small buffers dead-end: the
//          authoritative truncates, the resolver can't use TC=1, and
//          the client sees SERVFAIL.
//   rec  — the resolver retries truncated upstream responses over TCP
//          (RFC 7766) but the stub cannot; big answers reach the
//          resolver and are then truncated on the client leg.
//   full — both legs fall back; every truncation is absorbed and the
//          answer arrives over TCP.
//
// The report is the answer rate per (buffer, fallback) population —
// the resiliency axis of Dikshit et al. (arXiv:2307.06131) — and the
// flood knob shows how the TCP plane's separate loss budget keeps
// fallback populations alive when UDP is being dropped.
//
// Like the adversary scenarios, transport flows through the sharded
// cell engine: integer accumulators merged in cell-index order make
// reports byte-identical at any Shards value.

import (
	"context"
	"strconv"
	"strings"
	"time"

	"fmt"

	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/recursive"
	"repro/internal/stub"
	"repro/internal/trace"
)

// FallbackMode says how much of the stub→resolver→authoritative path
// may retry a TC=1 response over the simulated TCP plane.
type FallbackMode int

const (
	// FallbackNone is the UDP-only path: TC=1 is terminal on both legs.
	FallbackNone FallbackMode = iota
	// FallbackResolver arms TCP fallback on the resolver's upstream leg
	// only; the stub still treats TC=1 as truncated.
	FallbackResolver
	// FallbackFull arms TCP fallback on both legs.
	FallbackFull
)

// String renders the mode as the report label.
func (m FallbackMode) String() string {
	switch m {
	case FallbackResolver:
		return "rec"
	case FallbackFull:
		return "full"
	}
	return "none"
}

// transportModes is the fallback axis, in report order.
var transportModes = [...]FallbackMode{FallbackNone, FallbackResolver, FallbackFull}

// TransportSpec shapes the DoTCP-fallback experiment.
type TransportSpec struct {
	// BufSizes is the advertised EDNS0 buffer axis; 0 means no OPT at
	// all (the classic 512-octet limit). Probe i draws combo
	// (i-1) % (len(BufSizes)*3) — buffer size crossed with fallback
	// mode. Default {0, 1232, 4096}.
	BufSizes []uint16
	// Flood is the UDP inbound-loss probability armed at the
	// cachetest.nl authoritatives for the whole run (0 = no attack).
	Flood float64
	// TCPLoss is the loss probability of the TCP plane at the same
	// servers. The paper's volumetric floods are UDP reflection traffic,
	// so established TCP flows degrade less; default Flood/2.
	TCPLoss float64
}

func (s TransportSpec) withDefaults() TransportSpec {
	if len(s.BufSizes) == 0 {
		s.BufSizes = []uint16{0, 1232, 4096}
	}
	if s.TCPLoss == 0 && s.Flood > 0 {
		s.TCPLoss = s.Flood / 2
	}
	return s
}

// combos is the row count: every buffer size crossed with every
// fallback mode.
func (s TransportSpec) combos() int { return len(s.BufSizes) * len(transportModes) }

// row maps a cell-local probe ID onto its (buffer, fallback) combo.
func (s TransportSpec) row(pid int) int { return (pid - 1) % s.combos() }

// TransportRow is one (buffer size, fallback mode) population of the
// transport report.
type TransportRow struct {
	// Buf is the advertised EDNS0 size (0 = no OPT, classic 512).
	Buf      uint16
	Fallback FallbackMode

	// Queries is one per probe in this population; the next five split
	// their outcomes exactly.
	Queries int64
	// Answered counts usable answers; AnsweredTCP is the subset the stub
	// obtained over TCP after a TC=1.
	Answered    int64
	AnsweredTCP int64
	// Truncated counts TC=1 responses the stub could not retry.
	Truncated int64
	ServFail  int64
	Timeouts  int64
	// UpstreamTC counts TC=1 responses the population's resolvers saw
	// from the authoritatives (each is a fallback or a dead end).
	UpstreamTC int64
}

// AnswerRate is the fraction of queries that produced a usable answer.
func (r TransportRow) AnswerRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Answered) / float64(r.Queries)
}

// BufLabel renders the buffer-size axis value.
func (r TransportRow) BufLabel() string {
	if r.Buf == 0 {
		return "no-edns"
	}
	return itoa(int(r.Buf))
}

// TransportResult is the transport scenario outcome.
type TransportResult struct {
	Flood   float64
	TCPLoss float64
	Rows    []TransportRow

	Report *metrics.Report
}

// transportTXTName is the fat record every probe asks for; it is added
// to each testbed's (per-testbed, mutable) cachetest.nl zone.
const transportTXTName = "fat.txt." + Domain

// transportTXT builds the ~1.8 KB TXT payload: over the 1232-octet
// flag-day budget, comfortably under 4096.
func transportTXT() dnswire.TXT {
	big := make([]string, 8)
	for i := range big {
		b := make([]byte, 220)
		for j := range b {
			b[j] = 'q'
		}
		big[i] = string(b)
	}
	return dnswire.TXT{Strings: big}
}

// newTransportRows builds the empty row set of one spec.
func newTransportRows(spec TransportSpec) []TransportRow {
	rows := make([]TransportRow, spec.combos())
	for i := range rows {
		rows[i].Buf = spec.BufSizes[i/len(transportModes)]
		rows[i].Fallback = transportModes[i%len(transportModes)]
	}
	return rows
}

// runTransportTestbed runs one cell: per probe, a dedicated resolver and
// stub sharing the probe's (buffer, fallback) combo, querying the fat
// TXT record through a flood at the authoritatives.
func runTransportTestbed(spec TransportSpec, probes int, seed int64, trCfg *trace.Config, cell int) (*TransportResult, *Testbed) {
	tb := NewTestbed(TestbedConfig{Probes: probes, Seed: seed, Trace: trCfg, TraceCell: cell})

	tb.AuthZone.MustAdd(dnswire.RR{Name: transportTXTName, TTL: 3600,
		Data: transportTXT()})

	// The authoritatives answer on both planes; the flood drops UDP hard
	// and the TCP plane at its own (lower) rate.
	for i, addr := range tb.AuthAddrs {
		tb.Auths[i].AttachTCP(tb.Net, addr)
		if spec.Flood > 0 {
			tb.Net.SetInboundLoss(addr, spec.Flood)
			tb.Net.SetInboundLossTCP(addr, spec.TCPLoss)
		}
	}

	res := &TransportResult{Flood: spec.Flood, TCPLoss: spec.TCPLoss,
		Rows: newTransportRows(spec)}
	resolvers := make([]*recursive.Resolver, 0, probes)

	for pid := 1; pid <= probes; pid++ {
		ri := spec.row(pid)
		row := &res.Rows[ri]
		mode := row.Fallback

		r := recursive.NewResolver(tb.Clk, recursive.Config{
			RootHints:   rootHints(),
			Seed:        mixSeed(seed, pid),
			EDNSSize:    row.Buf,
			TCPFallback: mode != FallbackNone,
		})
		rAddr := advAddr("10.7", pid)
		r.Attach(tb.Net, rAddr)
		r.SetTrace(tb.Trace)
		resolvers = append(resolvers, r)

		c := stub.New(tb.Clk, stub.Config{
			Timeout:     15 * time.Second,
			EDNSSize:    row.Buf,
			TCPFallback: mode == FallbackFull,
		})
		c.Attach(tb.Net, advAddr("10.6", pid))
		c.SetTrace(tb.Trace)

		at := time.Duration(pid-1) * 5 * time.Millisecond
		tb.Clk.AfterFunc(at, func() {
			row.Queries++
			c.Query(rAddr, transportTXTName, dnswire.TypeTXT, func(sr stub.Result) {
				switch {
				case sr.Truncated:
					row.Truncated++
				case sr.Err != nil:
					row.Timeouts++
				case sr.Msg.RCode == dnswire.RCodeServFail:
					row.ServFail++
				default:
					row.Answered++
					if sr.TCP {
						row.AnsweredTCP++
					}
				}
			})
		})
	}
	tb.Clk.Run()

	// Attribute the upstream-leg truncations: resolvers are per-probe,
	// so each one's counter belongs to exactly one row.
	for i, r := range resolvers {
		res.Rows[spec.row(i+1)].UpstreamTC += r.Stats().Truncated
	}

	return res, advCollect(tb, resolvers, nil)
}

// transportAccum exactly merges per-cell rows (integer sums, aligned by
// combo index).
type transportAccum struct {
	spec TransportSpec
	rows []TransportRow
}

func newTransportAccum(spec TransportSpec) *transportAccum {
	return &transportAccum{spec: spec, rows: newTransportRows(spec)}
}

func (ac *transportAccum) absorb(res *TransportResult) {
	for i := range res.Rows {
		ac.rows[i].Queries += res.Rows[i].Queries
		ac.rows[i].Answered += res.Rows[i].Answered
		ac.rows[i].AnsweredTCP += res.Rows[i].AnsweredTCP
		ac.rows[i].Truncated += res.Rows[i].Truncated
		ac.rows[i].ServFail += res.Rows[i].ServFail
		ac.rows[i].Timeouts += res.Rows[i].Timeouts
		ac.rows[i].UpstreamTC += res.Rows[i].UpstreamTC
	}
}

func (ac *transportAccum) finalize() *TransportResult {
	return &TransportResult{Flood: ac.spec.Flood, TCPLoss: ac.spec.TCPLoss,
		Rows: ac.rows}
}

// transportInvariants checks the run's conservation laws. The glue
// no-drop invariants do not apply: the flood drops packets by design.
func transportInvariants(spec TransportSpec, res *TransportResult, snap metrics.Snapshot) []metrics.Invariant {
	var queries, outcomes, truncFull int64
	var answeredFull, queriesFull, servfailRec, queriesRec, timeouts int64
	for _, row := range res.Rows {
		queries += row.Queries
		outcomes += row.Answered + row.Truncated + row.ServFail + row.Timeouts
		timeouts += row.Timeouts
		switch row.Fallback {
		case FallbackFull:
			truncFull += row.Truncated
			answeredFull += row.Answered
			queriesFull += row.Queries
		case FallbackResolver:
			servfailRec += row.ServFail
			queriesRec += row.Queries
		}
	}
	ns := snap.Scope("netsim")
	invs := []metrics.Invariant{
		metrics.EqualInt("transport_outcomes_conserved",
			outcomes, queries, "answered+truncated+servfail+timeout", "queries"),
		metrics.EqualInt("tcp_plane_conserved",
			ns.Counter("tcp_delivered")+ns.Counter("tcp_dropped")+ns.Counter("tcp_dead"),
			ns.Counter("tcp_sent"), "delivered+dropped+dead", "sent"),
		metrics.EqualInt("full_fallback_absorbs_tc",
			truncFull, 0, "truncated under full fallback", "zero"),
	}
	if spec.Flood == 0 {
		// A lossless run resolves deterministically: no timeouts, full
		// fallback always answers, resolver-side fallback never SERVFAILs.
		invs = append(invs,
			metrics.EqualInt("no_flood_no_timeouts",
				timeouts, 0, "timeouts", "zero"),
			metrics.EqualInt("full_fallback_all_answered",
				answeredFull, queriesFull, "answered", "full-fallback queries"),
			metrics.EqualInt("resolver_fallback_no_servfail",
				servfailRec, 0, "servfails", "zero"),
		)
	}
	return invs
}

type transportScenario struct{ spec TransportSpec }

// TransportScenario wraps a DoTCP-fallback spec as a Scenario.
func TransportScenario(spec TransportSpec) Scenario {
	return transportScenario{spec: spec.withDefaults()}
}

// Spec exposes the wrapped (defaulted) spec for golden tests.
func (s transportScenario) Spec() TransportSpec { return s.spec }

func (s transportScenario) Name() string {
	if s.spec.Flood > 0 {
		return "transport-f" + itoa(int(s.spec.Flood*100+0.5))
	}
	return "transport"
}

func (s transportScenario) labels(cfg RunConfig) map[string]string {
	bufs := ""
	for i, b := range s.spec.BufSizes {
		if i > 0 {
			bufs += "x"
		}
		bufs += itoa(int(b))
	}
	return map[string]string{
		"probes":   strconv.Itoa(cfg.Probes),
		"seed":     strconv.FormatInt(cfg.Seed, 10),
		"bufs":     bufs,
		"flood":    strconv.FormatFloat(s.spec.Flood, 'g', -1, 64),
		"tcp_loss": strconv.FormatFloat(s.spec.TCPLoss, 'g', -1, 64),
	}
}

func (s transportScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: s.Name(), Config: cfg}

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runTransportTestbed(s.spec, cfg.Probes, cfg.Seed, cfg.Trace, 0)
		snap := tb.CollectMetrics().Snapshot()
		res.Report = &metrics.Report{
			Name:       s.Name(),
			Labels:     s.labels(cfg),
			Metrics:    snap,
			Invariants: transportInvariants(s.spec, res, snap),
		}
		out.Transport = res
		out.Report = res.Report
		if ct := captureCellTrace(tb, 0); ct != nil {
			out.Trace = &trace.Data{SampleEvery: cfg.Trace.SampleEvery, Cells: []trace.CellTrace{*ct}}
		}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		res  *TransportResult
		snap metrics.Snapshot
		tb   *Testbed
		ct   *trace.CellTrace
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		res, tb := runTransportTestbed(s.spec, n, mixSeed(cfg.Seed, i), cfg.Trace, i)
		cr := &cellResult{res: res, snap: tb.CollectMetrics().Snapshot(),
			ct: captureCellTrace(tb, i)}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	ac := newTransportAccum(s.spec)
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	var traced *trace.Data
	if cfg.Trace != nil {
		traced = &trace.Data{SampleEvery: cfg.Trace.SampleEvery}
	}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		ac.absorb(cr.res)
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
		if traced != nil && cr.ct != nil {
			traced.Cells = append(traced.Cells, *cr.ct)
		}
	}
	res := ac.finalize()
	snap := metrics.MergeSnapshots(snaps...)
	res.Report = &metrics.Report{
		Name:       s.Name(),
		Labels:     shardLabels(s.labels(cfg), cfg, len(cells)),
		Metrics:    snap,
		Invariants: transportInvariants(s.spec, res, snap),
	}
	out.Transport = res
	out.Report = res.Report
	out.Trace = traced
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// RenderTransport prints the answer-rate table of one transport run:
// one row per (buffer, fallback) population.
func RenderTransport(r *TransportResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flood %.0f%% udp / %.0f%% tcp\n", 100*r.Flood, 100*r.TCPLoss)
	fmt.Fprintf(&sb, "%-10s %-8s %8s %8s %8s %8s %8s %8s %8s %9s\n",
		"buffer", "fallback", "queries", "answered", "via-tcp",
		"trunc", "servfail", "timeout", "up-tc", "answer %")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %-8s %8d %8d %8d %8d %8d %8d %8d %9.1f\n",
			row.BufLabel(), row.Fallback.String(), row.Queries, row.Answered,
			row.AnsweredTCP, row.Truncated, row.ServFail, row.Timeouts,
			row.UpstreamTC, 100*row.AnswerRate())
	}
	return sb.String()
}
