package experiment

// Cell decomposition for population-scale runs. A large probe population
// is split into fixed-capacity cells of ShardProbes probes; each cell is
// a fully self-contained testbed (its own virtual clock, network,
// resolver population, and probe fleet) built from a seed derived only
// from (run seed, cell index). The Shards knob of RunConfig controls how
// many cells run concurrently — it never changes which cells exist or
// how they are seeded, which is why a K-shard run is byte-identical to a
// 1-shard run: same cells, same per-cell results, merged by
// order-independent accumulators.

// MaxShardProbes is the largest cell capacity: probe IDs are cell-local
// uint16 values (the AAAA encoding carries a 16-bit probe ID), so one
// cell can hold at most 65535 probes. Populations beyond that always
// span multiple cells.
const MaxShardProbes = 65535

// DefaultShardProbes is the default cell capacity of sharded runs, sized
// so one live cell stays within a few hundred MB of heap while leaving
// enough probes per cell for the population mix to be representative.
const DefaultShardProbes = 4096

// mixSeed derives the seed of cell index i from the run seed, using a
// splitmix64-style finalizer so nearby run seeds and cell indices land on
// unrelated testbed seeds. The derivation depends only on (seed, cell),
// never on the shard concurrency, so the cell layout is stable across K.
func mixSeed(seed int64, cell int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(cell+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// planCells splits probes into cell sizes: full cells of shardProbes with
// a smaller trailing cell for the remainder. shardProbes is clamped to
// MaxShardProbes; non-positive values plan a single cell.
func planCells(probes, shardProbes int) []int {
	if shardProbes <= 0 || shardProbes > MaxShardProbes {
		if probes <= MaxShardProbes && shardProbes <= 0 {
			return []int{probes}
		}
		shardProbes = MaxShardProbes
	}
	var cells []int
	for remaining := probes; remaining > 0; remaining -= shardProbes {
		n := shardProbes
		if remaining < n {
			n = remaining
		}
		cells = append(cells, n)
	}
	if len(cells) == 0 {
		cells = []int{0}
	}
	return cells
}

// ProbeRef addresses one probe in a sharded run: the cell (shard) it
// lives in plus its cell-local probe ID. IDs restart at 1 in every cell,
// so a bare uint16 is ambiguous once a run spans more than one cell.
type ProbeRef struct {
	Shard int
	ID    uint16
}

// ShardedTestbed is the set of per-cell worlds a KeepWorlds run retains
// for drill-down analyses (Table 7 / Appendix F). Shards[i] is cell i's
// testbed; a monolithic run keeps exactly one shard.
type ShardedTestbed struct {
	// ShardProbes is the planned cell capacity (the last cell may hold
	// fewer probes).
	ShardProbes int
	Shards      []*Testbed
}

// ShardOf maps a zero-based global probe index to its ProbeRef.
func (st *ShardedTestbed) ShardOf(global int) ProbeRef {
	per := st.ShardProbes
	if per <= 0 {
		return ProbeRef{Shard: 0, ID: uint16(global + 1)}
	}
	return ProbeRef{Shard: global / per, ID: uint16(global%per + 1)}
}

// PerProbe computes the Table 7 drill-down for one probe of a sharded
// run by routing to the shard that owns it. Probe names restart in every
// cell, so the authoritative-side filter must run against the owning
// cell's log only — that is exactly what the routed call does.
func (st *ShardedTestbed) PerProbe(res *DDoSResult, ref ProbeRef) Table7 {
	if ref.Shard < 0 || ref.Shard >= len(st.Shards) || st.Shards[ref.Shard] == nil {
		return Table7{ProbeID: ref.ID}
	}
	return PerProbe(st.Shards[ref.Shard], res, ref.ID)
}

// BusiestProbe returns the probe whose name drew the most authoritative
// queries across all cells, scanning cells in index order (ties keep the
// earliest cell, then the earliest probe — deterministic).
func (st *ShardedTestbed) BusiestProbe() ProbeRef {
	best, bestN := ProbeRef{}, -1
	for s, tb := range st.Shards {
		if tb == nil {
			continue
		}
		id, n := busiestProbeCount(tb)
		if n > bestN {
			best, bestN = ProbeRef{Shard: s, ID: id}, n
		}
	}
	return best
}
