package experiment

// The adversarial scenario family: three attacks from the DDoS
// literature run against the same simulated ecosystem the defensive
// experiments use, so the defenses the paper measures (caching,
// serve-stale, retries) can be weighed against the offense side.
//
//   - NXNS (Afek et al. 2020): a malicious authoritative answers every
//     query with a wide glueless referral into the victim's domain,
//     turning one client query into `width` NS-address fetches at the
//     victim's authoritatives. The mitigation axis is
//     recursive.Config.MaxFetch — max-fetch(k).
//
//   - Cache poisoning: an off-path spoofer races the legitimate answer
//     with forged responses sweeping a query-ID window. The defense
//     axes are ID entropy (recursive.Config.RandomIDs) and bailiwick
//     checking (recursive.Config.NoBailiwick disables it).
//
//   - Reflection/amplification: spoofed-source queries bounced off the
//     authoritatives flood a victim with larger responses; the report
//     is the victim-side amplification factor per query shape.
//
// Each scenario flows through the sharded cell engine: cells run
// independent testbeds, absorb into integer accumulators, and merge in
// cell-index order — reports are byte-identical at any Shards value.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/cache"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/recursive"
	"repro/internal/stub"
	"repro/internal/trace"
	"repro/internal/vantage"
)

// rootHints is the hint set every dedicated adversary-facing resolver
// starts from (the same root the population uses).
func rootHints() []recursive.ServerHint {
	return []recursive.ServerHint{{Name: "a.root-servers.net.", Addr: RootAddr}}
}

// advAddr maps a cell-local probe ID onto a unique address in one of
// the adversary experiments' private /16s (base.pid-high.pid-low).
func advAddr(base string, pid int) netsim.Addr {
	return netsim.Addr(base + "." + itoa(pid>>8) + "." + itoa(pid&0xff))
}

// ---- NXNS ----

// NXNSSpec shapes the NXNS amplification experiment: each probe issues
// one query into an attacker zone whose referral width cycles through
// Widths, and MaxFetch is the resolver-side mitigation cap (0 = off).
type NXNSSpec struct {
	// Widths is the delegation-width axis; probe i draws
	// Widths[(i-1) % len(Widths)]. Default {4, 8, 12, 20} — bounded by
	// the resolver work budget (40), which itself caps the fan-out.
	Widths []int
	// MaxFetch is recursive.Config.MaxFetch: at most k NS-address
	// fetches per glueless delegation. 0 disables the mitigation.
	MaxFetch int
}

func (s NXNSSpec) withDefaults() NXNSSpec {
	if len(s.Widths) == 0 {
		s.Widths = []int{4, 8, 12, 20}
	}
	return s
}

// NXNSRow is one delegation-width bucket of the NXNS report.
type NXNSRow struct {
	Width int
	// Queries is the number of client queries issued at this width;
	// Answered and ServFail split their outcomes.
	Queries  int64
	Answered int64
	ServFail int64
	// VictimQueries counts queries arriving at the victim's
	// authoritatives for fabricated NXNS targets triggered by this
	// width's probes.
	VictimQueries int64
}

// Amplification is the victim-side query amplification factor: victim
// queries forced per client query.
func (r NXNSRow) Amplification() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.VictimQueries) / float64(r.Queries)
}

// NXNSResult is the NXNS scenario outcome: amplification factor vs.
// delegation width.
type NXNSResult struct {
	MaxFetch int
	Rows     []NXNSRow

	Report *metrics.Report
}

// nxnsZone names the attacker zone serving width w.
func nxnsZone(w int) string { return "w" + itoa(w) + ".evil.nl." }

// nxnsAuthAddr is the malicious authoritative address for widths[i].
func nxnsAuthAddr(i int) netsim.Addr {
	return netsim.Addr("203.0.113." + itoa(10+i))
}

// nxnsExtraNL builds the nl. delegations (with glue) handing each
// attacker zone to its malicious authoritative.
func nxnsExtraNL(widths []int) []dnswire.RR {
	rrs := make([]dnswire.RR, 0, 2*len(widths))
	for i, w := range widths {
		z := nxnsZone(w)
		host := "ns." + z
		rrs = append(rrs,
			dnswire.RR{Name: z, TTL: 3600, Data: dnswire.NS{Host: host}},
			dnswire.RR{Name: host, TTL: 3600,
				Data: dnswire.A{Addr: dnswire.MustAddr(string(nxnsAuthAddr(i)))}})
	}
	return rrs
}

// runNXNSTestbed runs one cell of the NXNS experiment: a testbed whose
// nl. zone delegates one attacker zone per width, plus one dedicated
// iterative resolver per probe (fresh caches keep each probe's
// amplification measurement clean).
func runNXNSTestbed(spec NXNSSpec, probes int, seed int64, trCfg *trace.Config, cell int) (*NXNSResult, *Testbed) {
	tb := NewTestbed(TestbedConfig{
		Probes: probes, Seed: seed,
		Trace: trCfg, TraceCell: cell,
		ExtraNL: nxnsExtraNL(spec.Widths),
	})

	auths := make([]*adversary.NXNSAuth, len(spec.Widths))
	for i, w := range spec.Widths {
		a := adversary.NewNXNSAuth(adversary.NXNSConfig{
			Zone: nxnsZone(w), Width: w, VictimDomain: Domain,
		})
		a.Attach(tb.Net, nxnsAuthAddr(i))
		a.SetTrace(tb.Trace)
		auths[i] = a
	}

	rows := make([]NXNSRow, len(spec.Widths))
	for i, w := range spec.Widths {
		rows[i].Width = w
	}

	// Victim-side tap: count queries for fabricated NXNS targets at the
	// cachetest.nl authoritatives and attribute them — the triggering
	// query's first label is the probe ID, and the probe ID fixes the
	// width bucket.
	isVictim := make(map[netsim.Addr]bool, len(tb.AuthAddrs))
	for _, a := range tb.AuthAddrs {
		isVictim[a] = true
	}
	var tapMsg dnswire.Message
	tb.Net.AddTap(func(ev netsim.Event) {
		if !isVictim[ev.Dst] {
			return
		}
		if dnswire.UnpackInto(&tapMsg, ev.Payload) != nil || tapMsg.Response || len(tapMsg.Questions) != 1 {
			return
		}
		qlabel, ok := adversary.ParseNXNSHost(dnswire.CanonicalName(tapMsg.Questions[0].Name))
		if !ok {
			return
		}
		pid, err := strconv.Atoi(qlabel)
		if err != nil || pid < 1 || pid > probes {
			return
		}
		rows[(pid-1)%len(spec.Widths)].VictimQueries++
	})

	resolvers := make([]*recursive.Resolver, 0, probes)
	for pid := 1; pid <= probes; pid++ {
		wi := (pid - 1) % len(spec.Widths)
		r := recursive.NewResolver(tb.Clk, recursive.Config{
			RootHints: rootHints(),
			MaxFetch:  spec.MaxFetch,
			Seed:      mixSeed(seed, pid),
		})
		rAddr := advAddr("10.7", pid)
		r.Attach(tb.Net, rAddr)
		r.SetTrace(tb.Trace)
		resolvers = append(resolvers, r)

		c := stub.New(tb.Clk, stub.Config{Timeout: 15 * time.Second})
		c.Attach(tb.Net, advAddr("10.6", pid))
		c.SetTrace(tb.Trace)

		qname := itoa(pid) + "." + nxnsZone(spec.Widths[wi])
		row := &rows[wi]
		at := time.Duration(pid-1) * 5 * time.Millisecond
		tb.Clk.AfterFunc(at, func() {
			row.Queries++
			c.Query(rAddr, qname, dnswire.TypeAAAA, func(res stub.Result) {
				switch {
				case res.Err != nil:
				case res.Msg.RCode == dnswire.RCodeServFail:
					row.ServFail++
				default:
					row.Answered++
				}
			})
		})
	}
	tb.Clk.Run()

	return &NXNSResult{MaxFetch: spec.MaxFetch, Rows: rows},
		advCollect(tb, resolvers, func(s *metrics.Scope) {
			for _, a := range auths {
				a.CollectMetrics(s)
			}
		})
}

// advCollect is a shared post-run step: it leaves tb with its metrics
// untouched but folds the dedicated resolvers and adversary actors into
// the registry the caller will snapshot. It returns tb for convenience.
func advCollect(tb *Testbed, resolvers []*recursive.Resolver, adversaries func(*metrics.Scope)) *Testbed {
	tb.advResolvers = resolvers
	tb.advCollect = adversaries
	return tb
}

// nxnsAccum exactly merges per-cell NXNS rows (integer sums, aligned by
// width index).
type nxnsAccum struct {
	spec NXNSSpec
	rows []NXNSRow
}

func newNXNSAccum(spec NXNSSpec) *nxnsAccum {
	rows := make([]NXNSRow, len(spec.Widths))
	for i, w := range spec.Widths {
		rows[i].Width = w
	}
	return &nxnsAccum{spec: spec, rows: rows}
}

func (ac *nxnsAccum) absorb(res *NXNSResult) {
	for i := range res.Rows {
		ac.rows[i].Queries += res.Rows[i].Queries
		ac.rows[i].Answered += res.Rows[i].Answered
		ac.rows[i].ServFail += res.Rows[i].ServFail
		ac.rows[i].VictimQueries += res.Rows[i].VictimQueries
	}
}

func (ac *nxnsAccum) finalize() *NXNSResult {
	return &NXNSResult{MaxFetch: ac.spec.MaxFetch, Rows: ac.rows}
}

// nxnsInvariants checks tap conservation plus the NXNS-specific laws:
// every client query earns at least one referral and at least one
// victim query, and the victim load never exceeds the per-query width
// cap (min(width, k) with max-fetch(k) armed).
func nxnsInvariants(spec NXNSSpec, res *NXNSResult, snap metrics.Snapshot) []metrics.Invariant {
	var queries, victim, cap64 int64
	for _, row := range res.Rows {
		queries += row.Queries
		victim += row.VictimQueries
		w := int64(row.Width)
		if k := int64(spec.MaxFetch); k > 0 && k < w {
			w = k
		}
		cap64 += w * row.Queries
	}
	adv := snap.Scope("adversary")
	invs := glueInvariants(snap)
	return append(invs,
		metrics.AtLeastInt("nxns_referrals_cover_queries",
			adv.Counter("nxns_referrals"), queries, "referrals", "client queries"),
		metrics.AtLeastInt("nxns_victim_fanout",
			victim, queries, "victim queries", "client queries"),
		metrics.AtLeastInt("nxns_fanout_capped",
			cap64, victim, "min(width,k) cap", "victim queries"),
	)
}

type nxnsScenario struct{ spec NXNSSpec }

// NXNSScenario wraps an NXNS amplification spec as a Scenario.
func NXNSScenario(spec NXNSSpec) Scenario {
	return nxnsScenario{spec: spec.withDefaults()}
}

// Spec exposes the wrapped (defaulted) spec for golden tests.
func (s nxnsScenario) Spec() NXNSSpec { return s.spec }

func (s nxnsScenario) Name() string {
	if s.spec.MaxFetch > 0 {
		return "nxns-k" + itoa(s.spec.MaxFetch)
	}
	return "nxns"
}

func (s nxnsScenario) labels(cfg RunConfig) map[string]string {
	widths := ""
	for i, w := range s.spec.Widths {
		if i > 0 {
			widths += "x"
		}
		widths += itoa(w)
	}
	return map[string]string{
		"probes":    strconv.Itoa(cfg.Probes),
		"seed":      strconv.FormatInt(cfg.Seed, 10),
		"widths":    widths,
		"max_fetch": itoa(s.spec.MaxFetch),
	}
}

func (s nxnsScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: s.Name(), Config: cfg}

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runNXNSTestbed(s.spec, cfg.Probes, cfg.Seed, cfg.Trace, 0)
		snap := tb.CollectMetrics().Snapshot()
		res.Report = &metrics.Report{
			Name:       s.Name(),
			Labels:     s.labels(cfg),
			Metrics:    snap,
			Invariants: nxnsInvariants(s.spec, res, snap),
		}
		out.NXNS = res
		out.Report = res.Report
		if ct := captureCellTrace(tb, 0); ct != nil {
			out.Trace = &trace.Data{SampleEvery: cfg.Trace.SampleEvery, Cells: []trace.CellTrace{*ct}}
		}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		res  *NXNSResult
		snap metrics.Snapshot
		tb   *Testbed
		ct   *trace.CellTrace
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		res, tb := runNXNSTestbed(s.spec, n, mixSeed(cfg.Seed, i), cfg.Trace, i)
		cr := &cellResult{res: res, snap: tb.CollectMetrics().Snapshot(),
			ct: captureCellTrace(tb, i)}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	ac := newNXNSAccum(s.spec)
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	var traced *trace.Data
	if cfg.Trace != nil {
		traced = &trace.Data{SampleEvery: cfg.Trace.SampleEvery}
	}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		ac.absorb(cr.res)
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
		if traced != nil && cr.ct != nil {
			traced.Cells = append(traced.Cells, *cr.ct)
		}
	}
	res := ac.finalize()
	snap := metrics.MergeSnapshots(snaps...)
	res.Report = &metrics.Report{
		Name:       s.Name(),
		Labels:     shardLabels(s.labels(cfg), cfg, len(cells)),
		Metrics:    snap,
		Invariants: nxnsInvariants(s.spec, res, snap),
	}
	out.NXNS = res
	out.Report = res.Report
	out.Trace = traced
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// ---- Poisoning ----

// PoisonSpec shapes the off-path poisoning experiment: per probe, one
// dedicated resolver resolves its own record while a spoofer races the
// legitimate answer with forged responses.
type PoisonSpec struct {
	// RandomIDs arms full 16-bit query-ID entropy on the victim
	// resolvers (off = sequential IDs, the attacker's dream).
	RandomIDs bool
	// NoBailiwick disables the victim resolvers' bailiwick check, so
	// out-of-zone records smuggled in the forgery get cached.
	NoBailiwick bool
	// IDWindow, Waves, WaveEvery, and PortGuess shape the spray (see
	// adversary.SpoofConfig). Defaults: 16, 24, 2ms, 1.
	IDWindow  int
	Waves     int
	WaveEvery time.Duration
	// PortGuess is the per-packet source-port guess success rate.
	PortGuess float64
}

func (s PoisonSpec) withDefaults() PoisonSpec {
	if s.IDWindow == 0 {
		s.IDWindow = 16
	}
	if s.Waves == 0 {
		s.Waves = 24
	}
	if s.WaveEvery == 0 {
		s.WaveEvery = 2 * time.Millisecond
	}
	if s.PortGuess == 0 {
		s.PortGuess = 1
	}
	return s
}

// poisonAttackerAAAA is the address the forged answers point the victim
// name at — its presence marks a successful hijack.
var poisonAttackerAAAA = dnswire.MustAddr("2001:db8::bad")

// poisonOOBName is the out-of-bailiwick record smuggled in the
// forgery's additional section (the Kaminsky-style payload); it caching
// anywhere means the bailiwick check failed or was disabled.
const poisonOOBName = "ns.attacker.example."

// PoisonResult is the poisoning scenario outcome for one defense combo.
type PoisonResult struct {
	RandomIDs   bool
	NoBailiwick bool

	// Attempts is one per probe. Hijacked counts stubs that received
	// the attacker's record; CachePoisoned counts resolver caches left
	// holding it; OOBWrites counts caches holding the out-of-bailiwick
	// smuggled record.
	Attempts      int64
	Hijacked      int64
	CachePoisoned int64
	OOBWrites     int64

	Report *metrics.Report
}

// SuccessRate is the fraction of attempts that hijacked the answer.
func (r *PoisonResult) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Hijacked) / float64(r.Attempts)
}

// runPoisonTestbed runs one cell: per probe, a dedicated resolver, a
// stub triggering the resolution, and a spoofer racing it.
func runPoisonTestbed(spec PoisonSpec, probes int, seed int64, trCfg *trace.Config, cell int) (*PoisonResult, *Testbed) {
	tb := NewTestbed(TestbedConfig{Probes: probes, Seed: seed, Trace: trCfg, TraceCell: cell})

	res := &PoisonResult{RandomIDs: spec.RandomIDs, NoBailiwick: spec.NoBailiwick}
	resolvers := make([]*recursive.Resolver, 0, probes)
	spoofers := make([]*adversary.Spoofer, 0, probes)
	qnames := make([]string, 0, probes)

	for pid := 1; pid <= probes; pid++ {
		r := recursive.NewResolver(tb.Clk, recursive.Config{
			RootHints:   rootHints(),
			RandomIDs:   spec.RandomIDs,
			NoBailiwick: spec.NoBailiwick,
			Seed:        mixSeed(seed, pid),
		})
		rAddr := advAddr("10.7", pid)
		r.Attach(tb.Net, rAddr)
		r.SetTrace(tb.Trace)
		resolvers = append(resolvers, r)

		c := stub.New(tb.Clk, stub.Config{Timeout: 15 * time.Second})
		c.Attach(tb.Net, advAddr("10.6", pid))
		c.SetTrace(tb.Trace)

		sp := adversary.NewSpoofer(tb.Clk, tb.Net, adversary.SpoofConfig{
			Target: rAddr, Source: tb.AuthAddrs[0],
			IDFirst: 1, IDWindow: spec.IDWindow,
			Waves: spec.Waves, WaveEvery: spec.WaveEvery,
			PortGuess: spec.PortGuess,
			Seed:      mixSeed(seed, pid) + 1,
		})
		sp.SetTrace(tb.Trace)
		spoofers = append(spoofers, sp)

		qname := vantage.QName(uint16(pid), Domain)
		qnames = append(qnames, qname)
		payload := adversary.ForgedPayload{
			AA: true,
			Answers: []dnswire.RR{{Name: qname, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.AAAA{Addr: poisonAttackerAAAA}}},
			Authorities: []dnswire.RR{{Name: Domain, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.NS{Host: poisonOOBName}}},
			Additionals: []dnswire.RR{{Name: poisonOOBName, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.A{Addr: dnswire.MustAddr("203.0.113.99")}}},
		}

		pid := pid
		at := time.Duration(pid-1) * 10 * time.Millisecond
		tb.Clk.AfterFunc(at, func() {
			res.Attempts++
			sp.Spray(qname, dnswire.TypeAAAA, payload, 0)
			c.Query(rAddr, qname, dnswire.TypeAAAA, func(sr stub.Result) {
				if sr.Err != nil || sr.Msg == nil {
					return
				}
				for _, rr := range sr.Msg.Answers {
					if a, ok := rr.Data.(dnswire.AAAA); ok && a.Addr == poisonAttackerAAAA {
						res.Hijacked++
						if tb.Trace != nil {
							tb.Trace.Force(trace.Event{Type: trace.EvSpoofHit,
								Probe: uint16(pid), Name: qname,
								Src: string(tb.AuthAddrs[0]), Dst: string(rAddr)})
						}
						break
					}
				}
			})
		})
	}
	// Cache sweep: what did the race leave behind? The sweep runs inside
	// the simulation, shortly after the last attempt's spray settles —
	// the population models resolver restarts up to 12 virtual hours
	// out, so sweeping after Run() drains would find the forged TTLs
	// (3600 s) long expired.
	sweepAt := time.Duration(probes)*10*time.Millisecond + 10*time.Second
	tb.Clk.AfterFunc(sweepAt, func() {
		for i, r := range resolvers {
			if v := r.Cache().Peek(cache.Key{Name: qnames[i], Type: dnswire.TypeAAAA}, 0); v.Hit {
				for _, rr := range v.Records {
					if a, ok := rr.Data.(dnswire.AAAA); ok && a.Addr == poisonAttackerAAAA {
						res.CachePoisoned++
						break
					}
				}
			}
			if v := r.Cache().Peek(cache.Key{Name: poisonOOBName, Type: dnswire.TypeA}, 0); v.Hit {
				res.OOBWrites++
			}
		}
	})
	tb.Clk.Run()

	return res, advCollect(tb, resolvers, func(s *metrics.Scope) {
		for _, sp := range spoofers {
			sp.CollectMetrics(s)
		}
	})
}

// poisonInvariants checks the spray's packet conservation and, with the
// full defense stack on, that poisoning stayed (near) impossible.
func poisonInvariants(spec PoisonSpec, res *PoisonResult, snap metrics.Snapshot) []metrics.Invariant {
	adv := snap.Scope("adversary")
	draws := res.Attempts * int64(spec.Waves) * int64(spec.IDWindow)
	invs := []metrics.Invariant{
		metrics.EqualInt("spoof_draws_conserved",
			adv.Counter("spoof_sent")+adv.Counter("spoof_wrong_port"), draws,
			"sent+wrong-port", "attempts*waves*window"),
	}
	if !spec.NoBailiwick {
		invs = append(invs, metrics.EqualInt("no_oob_cache_writes",
			res.OOBWrites, 0, "out-of-bailiwick writes", "zero"))
	}
	if spec.RandomIDs {
		// Full ID entropy: a 16-ID window guesses one inflight ID with
		// p ≈ 3*window/65536 per wave — allow at most 5% before calling
		// the defense broken.
		invs = append(invs, metrics.AtLeastInt("poison_blocked_by_entropy",
			res.Attempts/20, res.Hijacked, "5% of attempts", "hijacks"))
	}
	return invs
}

type poisonScenario struct{ spec PoisonSpec }

// PoisonScenario wraps one poisoning defense combo as a Scenario.
func PoisonScenario(spec PoisonSpec) Scenario {
	return poisonScenario{spec: spec.withDefaults()}
}

// Spec exposes the wrapped (defaulted) spec for golden tests.
func (s poisonScenario) Spec() PoisonSpec { return s.spec }

func (s poisonScenario) Name() string {
	ids, bw := "seqid", "bw"
	if s.spec.RandomIDs {
		ids = "randid"
	}
	if s.spec.NoBailiwick {
		bw = "nobw"
	}
	return "poison-" + ids + "-" + bw
}

func (s poisonScenario) labels(cfg RunConfig) map[string]string {
	return map[string]string{
		"probes":       strconv.Itoa(cfg.Probes),
		"seed":         strconv.FormatInt(cfg.Seed, 10),
		"random_ids":   strconv.FormatBool(s.spec.RandomIDs),
		"no_bailiwick": strconv.FormatBool(s.spec.NoBailiwick),
		"id_window":    itoa(s.spec.IDWindow),
		"waves":        itoa(s.spec.Waves),
	}
}

func (s poisonScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: s.Name(), Config: cfg}

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runPoisonTestbed(s.spec, cfg.Probes, cfg.Seed, cfg.Trace, 0)
		snap := tb.CollectMetrics().Snapshot()
		res.Report = &metrics.Report{
			Name:       s.Name(),
			Labels:     s.labels(cfg),
			Metrics:    snap,
			Invariants: poisonInvariants(s.spec, res, snap),
		}
		out.Poison = res
		out.Report = res.Report
		if ct := captureCellTrace(tb, 0); ct != nil {
			out.Trace = &trace.Data{SampleEvery: cfg.Trace.SampleEvery, Cells: []trace.CellTrace{*ct}}
		}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		res  *PoisonResult
		snap metrics.Snapshot
		tb   *Testbed
		ct   *trace.CellTrace
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		res, tb := runPoisonTestbed(s.spec, n, mixSeed(cfg.Seed, i), cfg.Trace, i)
		cr := &cellResult{res: res, snap: tb.CollectMetrics().Snapshot(),
			ct: captureCellTrace(tb, i)}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	total := &PoisonResult{RandomIDs: s.spec.RandomIDs, NoBailiwick: s.spec.NoBailiwick}
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	var traced *trace.Data
	if cfg.Trace != nil {
		traced = &trace.Data{SampleEvery: cfg.Trace.SampleEvery}
	}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		total.Attempts += cr.res.Attempts
		total.Hijacked += cr.res.Hijacked
		total.CachePoisoned += cr.res.CachePoisoned
		total.OOBWrites += cr.res.OOBWrites
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
		if traced != nil && cr.ct != nil {
			traced.Cells = append(traced.Cells, *cr.ct)
		}
	}
	snap := metrics.MergeSnapshots(snaps...)
	total.Report = &metrics.Report{
		Name:       s.Name(),
		Labels:     shardLabels(s.labels(cfg), cfg, len(cells)),
		Metrics:    snap,
		Invariants: poisonInvariants(s.spec, total, snap),
	}
	out.Poison = total
	out.Report = total.Report
	out.Trace = traced
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// ---- Reflection ----

// ReflectSpec shapes the reflection/amplification experiment: per
// probe, one spoofed-source query per shape, paced Every apart.
type ReflectSpec struct {
	// Every is the per-probe pacing (default 2ms); the victim-side qps
	// figure divides by it.
	Every time.Duration
	// EDNSSize is the advertised buffer size of the EDNS shapes
	// (default 4096).
	EDNSSize uint16
}

func (s ReflectSpec) withDefaults() ReflectSpec {
	if s.Every == 0 {
		s.Every = 2 * time.Millisecond
	}
	if s.EDNSSize == 0 {
		s.EDNSSize = 4096
	}
	return s
}

// ReflectRow is one query shape of the reflection report.
type ReflectRow struct {
	// Shape names the query shape ("AAAA", "NS+EDNS", "TXT+EDNS").
	Shape string
	// Queries and RequestBytes are the attacker's spend; Packets and
	// ResponseBytes are what landed on the victim.
	Queries       int64
	RequestBytes  int64
	Packets       int64
	ResponseBytes int64
}

// Amplification is the byte amplification factor of this shape.
func (r ReflectRow) Amplification() float64 {
	if r.RequestBytes == 0 {
		return 0
	}
	return float64(r.ResponseBytes) / float64(r.RequestBytes)
}

// ReflectResult is the reflection scenario outcome.
type ReflectResult struct {
	Rows []ReflectRow
	// VictimPackets/VictimBytes total the flood across shapes;
	// VictimQPS is the victim-side packet rate over the attack window.
	VictimPackets int64
	VictimBytes   int64
	VictimQPS     float64

	Report *metrics.Report
}

// reflectTXTName is the fat TXT record the TXT shape queries; the
// record is added to each testbed's (per-testbed, mutable) zone.
const reflectTXTName = "txt." + Domain

// reflectVictimAddr is the flood target for shape i (one address per
// shape keeps the byte attribution exact).
func reflectVictimAddr(i int) netsim.Addr {
	return netsim.Addr("198.51.100." + itoa(10+i))
}

// runReflectTestbed runs one cell of the reflection experiment.
func runReflectTestbed(spec ReflectSpec, probes int, seed int64, trCfg *trace.Config, cell int) (*ReflectResult, *Testbed) {
	tb := NewTestbed(TestbedConfig{Probes: probes, Seed: seed, Trace: trCfg, TraceCell: cell})

	// A fat TXT record makes the worst shape worth amplifying, as open
	// resolvers' ANY/TXT responses do in the wild.
	big := make([]string, 4)
	for i := range big {
		b := make([]byte, 200)
		for j := range b {
			b[j] = 'x'
		}
		big[i] = string(b)
	}
	tb.AuthZone.MustAdd(dnswire.RR{Name: reflectTXTName, TTL: 3600,
		Data: dnswire.TXT{Strings: big}})

	shapes := []struct {
		label string
		qtype dnswire.Type
		edns  uint16
		qname func(pid int) string
	}{
		{"AAAA", dnswire.TypeAAAA, 0,
			func(pid int) string { return vantage.QName(uint16(pid), Domain) }},
		{"NS+EDNS", dnswire.TypeNS, spec.EDNSSize,
			func(int) string { return Domain }},
		{"TXT+EDNS", dnswire.TypeTXT, spec.EDNSSize,
			func(int) string { return reflectTXTName }},
	}

	sinks := make([]*adversary.VictimSink, len(shapes))
	refls := make([]*adversary.Reflector, len(shapes))
	for i, sh := range shapes {
		sinks[i] = adversary.NewVictimSink(tb.Net, reflectVictimAddr(i))
		refls[i] = adversary.NewReflector(tb.Clk, tb.Net, adversary.ReflectConfig{
			Victim:   reflectVictimAddr(i),
			Servers:  tb.AuthAddrs,
			EDNSSize: sh.edns,
		})
		refls[i].SetTrace(tb.Trace)
	}

	for pid := 1; pid <= probes; pid++ {
		at := time.Duration(pid-1) * spec.Every
		for i, sh := range shapes {
			i, qname, qtype := i, sh.qname(pid), sh.qtype
			tb.Clk.AfterFunc(at, func() { refls[i].Send(qname, qtype) })
		}
	}
	tb.Clk.Run()

	res := &ReflectResult{Rows: make([]ReflectRow, len(shapes))}
	for i, sh := range shapes {
		res.Rows[i] = ReflectRow{
			Shape:         sh.label,
			Queries:       refls[i].Sent(),
			RequestBytes:  refls[i].RequestBytes(),
			Packets:       sinks[i].Packets(),
			ResponseBytes: sinks[i].Bytes(),
		}
		res.VictimPackets += sinks[i].Packets()
		res.VictimBytes += sinks[i].Bytes()
	}

	return res, advCollect(tb, nil, func(s *metrics.Scope) {
		for i := range shapes {
			refls[i].CollectMetrics(s)
			sinks[i].CollectMetrics(s)
		}
	})
}

// reflectFinalize computes the rate figure from the exact-merged
// integers: the attack window is Probes*Every per definition of the
// spray schedule, so the value is a pure function of config and totals.
func reflectFinalize(spec ReflectSpec, res *ReflectResult, probes int) *ReflectResult {
	window := time.Duration(probes) * spec.Every
	if s := window.Seconds(); s > 0 {
		res.VictimQPS = float64(res.VictimPackets) / s
	}
	return res
}

// reflectInvariants checks the flood's conservation laws: every bounced
// query lands exactly one response on the victim (no loss window is
// armed), and responses at least repay the request bytes.
func reflectInvariants(res *ReflectResult, snap metrics.Snapshot) []metrics.Invariant {
	adv := snap.Scope("adversary")
	var reqBytes int64
	for _, row := range res.Rows {
		reqBytes += row.RequestBytes
	}
	invs := glueInvariants(snap)
	return append(invs,
		metrics.EqualInt("reflect_one_response_per_query",
			res.VictimPackets, adv.Counter("reflect_sent"),
			"victim packets", "reflected queries"),
		metrics.AtLeastInt("reflect_amplifies",
			res.VictimBytes, reqBytes, "victim bytes", "request bytes"),
	)
}

type reflectScenario struct{ spec ReflectSpec }

// ReflectScenario wraps the reflection/amplification spec as a Scenario.
func ReflectScenario(spec ReflectSpec) Scenario {
	return reflectScenario{spec: spec.withDefaults()}
}

// Spec exposes the wrapped (defaulted) spec for golden tests.
func (s reflectScenario) Spec() ReflectSpec { return s.spec }

func (reflectScenario) Name() string { return "reflect" }

func (s reflectScenario) labels(cfg RunConfig) map[string]string {
	return map[string]string{
		"probes":    strconv.Itoa(cfg.Probes),
		"seed":      strconv.FormatInt(cfg.Seed, 10),
		"edns_size": strconv.FormatUint(uint64(s.spec.EDNSSize), 10),
	}
}

func (s reflectScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "reflect", Config: cfg}

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runReflectTestbed(s.spec, cfg.Probes, cfg.Seed, cfg.Trace, 0)
		res = reflectFinalize(s.spec, res, cfg.Probes)
		snap := tb.CollectMetrics().Snapshot()
		res.Report = &metrics.Report{
			Name:       "reflect",
			Labels:     s.labels(cfg),
			Metrics:    snap,
			Invariants: reflectInvariants(res, snap),
		}
		out.Reflect = res
		out.Report = res.Report
		if ct := captureCellTrace(tb, 0); ct != nil {
			out.Trace = &trace.Data{SampleEvery: cfg.Trace.SampleEvery, Cells: []trace.CellTrace{*ct}}
		}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		res  *ReflectResult
		snap metrics.Snapshot
		tb   *Testbed
		ct   *trace.CellTrace
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		res, tb := runReflectTestbed(s.spec, n, mixSeed(cfg.Seed, i), cfg.Trace, i)
		cr := &cellResult{res: res, snap: tb.CollectMetrics().Snapshot(),
			ct: captureCellTrace(tb, i)}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	total := &ReflectResult{}
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	var traced *trace.Data
	if cfg.Trace != nil {
		traced = &trace.Data{SampleEvery: cfg.Trace.SampleEvery}
	}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		if total.Rows == nil {
			total.Rows = make([]ReflectRow, len(cr.res.Rows))
			for j := range cr.res.Rows {
				total.Rows[j].Shape = cr.res.Rows[j].Shape
			}
		}
		for j := range cr.res.Rows {
			total.Rows[j].Queries += cr.res.Rows[j].Queries
			total.Rows[j].RequestBytes += cr.res.Rows[j].RequestBytes
			total.Rows[j].Packets += cr.res.Rows[j].Packets
			total.Rows[j].ResponseBytes += cr.res.Rows[j].ResponseBytes
		}
		total.VictimPackets += cr.res.VictimPackets
		total.VictimBytes += cr.res.VictimBytes
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
		if traced != nil && cr.ct != nil {
			traced.Cells = append(traced.Cells, *cr.ct)
		}
	}
	total = reflectFinalize(s.spec, total, cfg.Probes)
	snap := metrics.MergeSnapshots(snaps...)
	total.Report = &metrics.Report{
		Name:       "reflect",
		Labels:     shardLabels(s.labels(cfg), cfg, len(cells)),
		Metrics:    snap,
		Invariants: reflectInvariants(total, snap),
	}
	out.Reflect = total
	out.Report = total.Report
	out.Trace = traced
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// ---- Rendering ----

// RenderNXNS prints the amplification-vs-width table of one NXNS run.
func RenderNXNS(r *NXNSResult) string {
	var sb strings.Builder
	k := "off"
	if r.MaxFetch > 0 {
		k = itoa(r.MaxFetch)
	}
	fmt.Fprintf(&sb, "%-18s %10s %10s %10s %10s\n",
		"max-fetch(k)="+k, "queries", "servfail", "victim q", "amp")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-18s %10d %10d %10d %10.2f\n",
			"width "+itoa(row.Width), row.Queries, row.ServFail,
			row.VictimQueries, row.Amplification())
	}
	return sb.String()
}

// RenderPoison prints the poison-success matrix, one column per combo.
func RenderPoison(results []*PoisonResult) string {
	var sb strings.Builder
	row := func(label string, get func(*PoisonResult) any) {
		fmt.Fprintf(&sb, "%-18s", label)
		for _, r := range results {
			fmt.Fprintf(&sb, " %10v", get(r))
		}
		sb.WriteByte('\n')
	}
	row("ID entropy", func(r *PoisonResult) any {
		if r.RandomIDs {
			return "16-bit"
		}
		return "seq"
	})
	row("bailiwick check", func(r *PoisonResult) any {
		if r.NoBailiwick {
			return "off"
		}
		return "on"
	})
	row("attempts", func(r *PoisonResult) any { return r.Attempts })
	row("hijacked", func(r *PoisonResult) any { return r.Hijacked })
	row("cache poisoned", func(r *PoisonResult) any { return r.CachePoisoned })
	row("oob writes", func(r *PoisonResult) any { return r.OOBWrites })
	row("success %", func(r *PoisonResult) any {
		return fmt.Sprintf("%.1f", 100*r.SuccessRate())
	})
	return sb.String()
}

// RenderReflect prints the per-shape amplification table.
func RenderReflect(r *ReflectResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %10s %10s %10s %10s\n",
		"shape", "queries", "req B", "victim B", "amp")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-18s %10d %10d %10d %10.2f\n",
			row.Shape, row.Queries, row.RequestBytes,
			row.ResponseBytes, row.Amplification())
	}
	fmt.Fprintf(&sb, "%-18s %10d packets, %.0f qps at the victim\n",
		"flood", r.VictimPackets, r.VictimQPS)
	return sb.String()
}
