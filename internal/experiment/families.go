package experiment

// The light experiment families — the §4 passive-measurement models, the
// §6.2/Appendix E software-retry model, and the §8 implications study —
// wrapped as Scenarios so the campaign runner (and the spec compiler)
// can drive every family through the same front door. These worlds are
// pure functions of their seed and do not use the cell engine: the
// Shards knob is accepted and ignored, so campaign output stays
// byte-identical at any shard count by construction.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/passive"
	"repro/internal/retrymodel"
)

// PassiveResult bundles the §4 production-zone models (Figures 4-5).
type PassiveResult struct {
	Nl   *passive.NlResult
	Root *passive.RootResult
}

// RetryRow is one profile/state line of the retry study (Figure 16).
type RetryRow struct {
	Profile string
	Down    bool
	Result  retrymodel.Result
}

// RetriesResult is the §6.2/Appendix E software-retry matrix.
type RetriesResult struct {
	Trials int
	Rows   []RetryRow
}

// ---- Passive ----

type passiveScenario struct{}

// PassiveScenario wraps the §4 passive measurements (RunNl + RunRoot) as
// a Scenario. Probes and shards are ignored: the models are driven by
// their own calibrated populations.
func PassiveScenario() Scenario { return passiveScenario{} }

func (passiveScenario) Name() string { return "passive" }

func (passiveScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "passive", Config: cfg}
	if err := ctx.Err(); err != nil {
		return out, cancelErr(err)
	}
	out.Passive = &PassiveResult{
		Nl:   passive.RunNl(passive.NlConfig{Seed: cfg.Seed}),
		Root: passive.RunRoot(passive.RootConfig{Seed: cfg.Seed}),
	}
	return out, nil
}

// ---- Retries ----

type retriesScenario struct{ trials int }

// RetriesScenario wraps the software-retry model as a Scenario: both
// profiles (BIND-like, Unbound-like) in both server states, trials
// trials each (default 100, the committed table's size).
func RetriesScenario(trials int) Scenario { return retriesScenario{trials: trials} }

func (retriesScenario) Name() string { return "retries" }

func (s retriesScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "retries", Config: cfg}
	if err := ctx.Err(); err != nil {
		return out, cancelErr(err)
	}
	trials := s.trials
	if trials <= 0 {
		trials = 100
	}
	res := &RetriesResult{Trials: trials}
	for _, profile := range []retrymodel.Profile{retrymodel.BINDLike(), retrymodel.UnboundLike()} {
		for _, down := range []bool{false, true} {
			res.Rows = append(res.Rows, RetryRow{
				Profile: profile.Name, Down: down,
				Result: retrymodel.Run(profile, down, trials, cfg.Seed),
			})
		}
	}
	out.Retries = res
	return out, nil
}

// ---- Implications ----

type implicationsScenario struct{ spec ImplicationsConfig }

// ImplicationsScenario wraps the §8 root-like vs CDN-like study as a
// Scenario. The spec's zero values use the calibrated defaults; the
// RunConfig seed always wins so campaign seeding stays uniform.
func ImplicationsScenario(spec ImplicationsConfig) Scenario {
	return implicationsScenario{spec: spec}
}

func (implicationsScenario) Name() string { return "implications" }

func (s implicationsScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "implications", Config: cfg}
	if err := ctx.Err(); err != nil {
		return out, cancelErr(err)
	}
	spec := s.spec
	spec.Seed = cfg.Seed
	out.Implications = RunImplications(spec)
	return out, nil
}

// ---- Renderers ----

// RenderPassive formats the §4 results (Figures 4-5) the way the
// committed paper tables print them.
func RenderPassive(r *PassiveResult) string {
	var b strings.Builder
	nl := r.Nl
	fmt.Fprintf(&b, "Figure 4: ECDF of median inter-arrival at .nl (TTL 3600)\n")
	for _, p := range nl.ECDF.Points(20) {
		fmt.Fprintf(&b, "  dt<=%7.0fs  cdf=%.3f\n", p.X, p.Y)
	}
	fmt.Fprintf(&b, "closely-timed excluded: %.1f%%  at-TTL: %.1f%%  early re-query: %.1f%%\n",
		100*nl.Analysis.ExcludedFrac, 100*nl.FracAtTTL, 100*nl.FracBelowTTL)

	root := r.Root
	fmt.Fprintf(&b, "\nFigure 5: queries per recursive for the nl DS at the roots\n")
	fmt.Fprintf(&b, "single-query recursives: %.1f%%  heaviest source: %d queries/day\n",
		100*root.FracSingleObserved, root.MaxObserved)
	for i, e := range root.PerLetter {
		fmt.Fprintf(&b, "  letter %2d: P(n<=1)=%.3f P(n<=5)=%.3f P(n<=30)=%.3f\n",
			i, e.At(1), e.At(5), e.At(30))
	}
	return b.String()
}

// RenderRetries formats the retry matrix (Figure 16) the way the
// committed paper tables print it.
func RenderRetries(r *RetriesResult) string {
	var b strings.Builder
	for _, row := range r.Rows {
		state := "up  "
		if row.Down {
			state = "down"
		}
		res := row.Result
		fmt.Fprintf(&b, "%-8s %s  root=%5.1f  net=%5.1f  cachetest.net=%5.1f  total=%5.1f  answered=%d/%d\n",
			row.Profile, state, res.Mean.Root, res.Mean.Net, res.Mean.Target,
			res.Mean.Total(), res.Answered, res.Trials)
	}
	return b.String()
}
