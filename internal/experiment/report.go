package experiment

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
)

// buildDDoSReport snapshots the testbed's registry and evaluates the
// run's accounting invariants against the analyzed result.
func buildDDoSReport(spec DDoSSpec, tb *Testbed, res *DDoSResult) *metrics.Report {
	snap := tb.CollectMetrics().Snapshot()
	return &metrics.Report{
		Name: "ddos-" + spec.Name,
		Labels: map[string]string{
			"experiment": spec.Name,
			"probes":     strconv.Itoa(tb.Cfg.Probes),
			"ttl":        strconv.FormatUint(uint64(spec.TTL), 10),
			"loss":       strconv.FormatFloat(spec.Loss, 'g', -1, 64),
			"seed":       strconv.FormatInt(tb.Cfg.Seed, 10),
		},
		Metrics:    snap,
		Invariants: DDoSInvariants(res, snap),
	}
}

// buildCachingReport is buildDDoSReport's §3 counterpart.
func buildCachingReport(cfg CachingConfig, tb *Testbed, res *CachingResult) *metrics.Report {
	snap := tb.CollectMetrics().Snapshot()
	return &metrics.Report{
		Name: fmt.Sprintf("caching-ttl%d", cfg.TTL),
		Labels: map[string]string{
			"probes": strconv.Itoa(tb.Cfg.Probes),
			"ttl":    strconv.FormatUint(uint64(cfg.TTL), 10),
			"rounds": strconv.Itoa(cfg.Rounds),
			"seed":   strconv.FormatInt(tb.Cfg.Seed, 10),
		},
		Metrics:    snap,
		Invariants: cachingInvariants(res, snap),
	}
}

// DDoSInvariants cross-checks a DDoS run's client-side tallies against
// the component counters in snap. It is exported (within the package API
// surface via the report) primarily so tests can inject an accounting
// error into a result and watch the checker fail.
func DDoSInvariants(res *DDoSResult, snap metrics.Snapshot) []metrics.Invariant {
	vp := snap.Scope("vantage")
	ts := snap.Scope("testbed")
	auth := snap.Scope("authoritative")

	invs := []metrics.Invariant{
		// Every probe query the fleet sent must appear exactly once in the
		// Table 4 query total (the analysis walks the same answer log the
		// probes filled in).
		metrics.EqualInt("vantage_queries_match_table4",
			vp.Counter("queries_sent"), int64(res.Table4.Queries),
			"queries_sent", "table4_queries"),
		// Per-round outcomes partition the queries: OK + SERVFAIL +
		// NoAnswer summed over all rounds (overflow bin included) equals
		// the query total.
		metrics.EqualInt("round_outcomes_sum_to_queries",
			sumOutcomes(res), int64(res.Table4.Queries),
			"ok+servfail+noanswer", "table4_queries"),
		// The pre-drop tap sees at least as many arrivals as survive the
		// loss window.
		metrics.AtLeastInt("auth_arrivals_ge_delivered",
			ts.Counter("auth_arrivals"), ts.Counter("auth_delivered"),
			"arrivals", "delivered"),
		// Arrivals split exactly into dropped and delivered.
		metrics.EqualInt("auth_arrivals_conserved",
			ts.Counter("auth_arrivals"),
			ts.Counter("auth_dropped")+ts.Counter("auth_delivered"),
			"arrivals", "dropped+delivered"),
		// Every query that survives the drop is handled (and counted) by
		// an authoritative.
		metrics.EqualInt("auth_delivered_match_handled",
			ts.Counter("auth_delivered"), auth.Counter("queries"),
			"delivered", "handled"),
	}
	invs = append(invs, latencyMatchesAnswered(res))
	return invs
}

// latencyMatchesAnswered checks that every round's latency summary holds
// exactly one RTT sample per answered (OK or SERVFAIL) query of that
// round. This is the invariant the pre-fix analyzeDDoS violated: RTTs
// were binned with a clamped round index while outcomes were not, so the
// two series disagreed on runs with late-landing answers.
func latencyMatchesAnswered(res *DDoSResult) metrics.Invariant {
	for r := range res.Latency {
		answered := int64(res.Answers.Get(r, "OK") + res.Answers.Get(r, "SERVFAIL"))
		if int64(res.Latency[r].N) != answered {
			return metrics.Invariant{
				Name: "latency_samples_match_answered",
				Detail: fmt.Sprintf("round=%d latency_n=%d answered=%d",
					r, res.Latency[r].N, answered),
			}
		}
	}
	return metrics.Invariant{
		Name:   "latency_samples_match_answered",
		OK:     true,
		Detail: fmt.Sprintf("rounds=%d", len(res.Latency)),
	}
}

// sumOutcomes totals OK + SERVFAIL + NoAnswer over every tallied round.
func sumOutcomes(res *DDoSResult) int64 {
	var total float64
	for r := 0; r < res.Answers.Rounds(); r++ {
		total += res.Answers.Get(r, "OK") +
			res.Answers.Get(r, "SERVFAIL") +
			res.Answers.Get(r, "NoAnswer")
	}
	return int64(total)
}

// cachingInvariants cross-checks a §3 run: the answer totals against the
// fleet counters and the tap conservation law (no loss window is active,
// so arrivals must equal deliveries).
func cachingInvariants(res *CachingResult, snap metrics.Snapshot) []metrics.Invariant {
	vp := snap.Scope("vantage")
	ts := snap.Scope("testbed")
	auth := snap.Scope("authoritative")
	return []metrics.Invariant{
		metrics.EqualInt("vantage_queries_match_table1",
			vp.Counter("queries_sent"), int64(res.Table1.Queries),
			"queries_sent", "table1_queries"),
		metrics.EqualInt("answers_partition",
			int64(res.Table1.Answers),
			int64(res.Table1.AnswersValid+res.Table1.AnswersDisc),
			"answers", "valid+disc"),
		metrics.EqualInt("auth_arrivals_conserved",
			ts.Counter("auth_arrivals"),
			ts.Counter("auth_dropped")+ts.Counter("auth_delivered"),
			"arrivals", "dropped+delivered"),
		metrics.EqualInt("no_attack_no_drops",
			ts.Counter("auth_dropped"), 0, "dropped", "zero"),
		metrics.EqualInt("auth_delivered_match_handled",
			ts.Counter("auth_delivered"), auth.Counter("queries"),
			"delivered", "handled"),
	}
}
