package experiment

import "testing"

// TestNlFromSimHonorsTTL derives the §4.1 analysis from a real simulated
// run instead of the synthesized trace: the vast majority of recursives
// re-fetch the zone's nameserver records no earlier than the 3600 s TTL
// (the paper's Figure 4 peak), with the early re-fetchers being the
// TTL-capping minority.
func TestNlFromSimHonorsTTL(t *testing.T) {
	res := RunNlFromSim(NlSimConfig{Probes: 150, Seed: 3})
	if len(res.Analysis.Medians) < 50 {
		t.Fatalf("only %d recursives measured", len(res.Analysis.Medians))
	}
	if res.FracAtTTL < 0.8 {
		t.Errorf("TTL-honoring fraction = %.2f, want dominant", res.FracAtTTL)
	}
	if res.FracBelowTTL > 0.2 {
		t.Errorf("early re-fetchers = %.2f, want small minority", res.FracBelowTTL)
	}
	// The harvest bursts (ns1+ns2 fetched together) are the closely-timed
	// queries the paper excludes; they must be visible and excluded.
	if res.Analysis.ExcludedFrac < 0.2 {
		t.Errorf("closely-timed fraction = %.2f, want the paper's ~28%%+", res.Analysis.ExcludedFrac)
	}
	// The median refresh interval sits between the TTL and TTL + one
	// probing interval (3600..4800 s).
	med := res.ECDF.InverseAt(0.5)
	if med < 3600 || med > 4800 {
		t.Errorf("median refresh = %.0f s, want TTL..TTL+interval", med)
	}
}
