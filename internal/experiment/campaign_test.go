package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ddos"
)

// smallCampaign is a cross-family item list small enough for unit tests:
// one staged multi-phase attack (partial outage → total outage →
// recovery, mixing drop and SERVFAIL modes), one caching run, and the
// engine-free families. ShardProbes 16 forces multi-cell layouts even at
// tiny populations so the shard-invariance check is meaningful.
func smallCampaign(shards int) []CampaignItem {
	staged := DDoSSpec{
		Name: "staged", TTL: 1800,
		DDoSStart: 30 * time.Minute, DDoSDur: 60 * time.Minute,
		QueriesBefore: 3, TotalDur: 120 * time.Minute,
		ProbeInterval: 10 * time.Minute, Loss: 1, TargetsAll: true,
		Phases: []ddos.Phase{
			{Start: 30 * time.Minute, Duration: 30 * time.Minute,
				Intensity: 0.75, Mode: ddos.ModeServFail},
			{Start: 60 * time.Minute, Duration: 30 * time.Minute,
				Intensity: 1, Mode: ddos.ModeDrop},
		},
	}
	engine := RunConfig{Probes: 60, Seed: 7, Shards: shards, ShardProbes: 16}
	return []CampaignItem{
		{Name: "staged-attack", Scenario: DDoSScenario(staged), Config: engine},
		{Name: "caching-1800", Scenario: CachingScenario(),
			Config: RunConfig{Probes: 60, Seed: 7, Shards: shards, ShardProbes: 16,
				TTL: 1800, ProbeInterval: 10 * time.Minute, Rounds: 4}},
		{Name: "retries", Scenario: RetriesScenario(10),
			Config: RunConfig{Seed: 7, Shards: shards}},
		{Name: "implications", Scenario: ImplicationsScenario(ImplicationsConfig{Clients: 100, Recursives: 10}),
			Config: RunConfig{Seed: 7, Shards: shards}},
	}
}

// TestCampaignShardInvariant pins the campaign determinism contract: the
// rendered report and the CSV are byte-identical whether the runs execute
// monocell, multi-cell, or with different worker counts.
func TestCampaignShardInvariant(t *testing.T) {
	t.Parallel()
	base, err := RunCampaign(context.Background(), smallCampaign(1), 1)
	if err != nil {
		t.Fatalf("RunCampaign(shards=1): %v", err)
	}
	for _, r := range base {
		if r.Err != nil {
			t.Fatalf("run %s failed: %v", r.Item.Name, r.Err)
		}
	}
	want := RenderCampaign(base)
	wantCSV := CampaignCSV(base)
	if !strings.Contains(want, "staged-attack") || !strings.Contains(want, "campaign summary") {
		t.Fatalf("report missing expected sections:\n%s", want)
	}

	multi, err := RunCampaign(context.Background(), smallCampaign(4), 3)
	if err != nil {
		t.Fatalf("RunCampaign(shards=4): %v", err)
	}
	if got := RenderCampaign(multi); got != want {
		t.Errorf("campaign report differs between Shards=1 and Shards=4/Workers=3:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", want, got)
	}
	if got := CampaignCSV(multi); got != wantCSV {
		t.Errorf("campaign CSV differs between shard counts:\n%s\nvs\n%s", wantCSV, got)
	}
}

// TestCampaignStagedPhases checks the staged attack actually bites: the
// SERVFAIL brownout phase must surface SERVFAIL answers mid-run and the
// total-outage phase must suppress answers, with recovery afterwards.
func TestCampaignStagedPhases(t *testing.T) {
	t.Parallel()
	results, err := RunCampaign(context.Background(), smallCampaign(1)[:1], 1)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	res := results[0].Outcome.DDoS
	if res == nil {
		t.Fatal("no DDoS result")
	}
	servfail := 0.0
	for r := 0; r < res.Answers.Rounds(); r++ {
		servfail += res.Answers.Get(r, "SERVFAIL")
	}
	if servfail == 0 {
		t.Error("SERVFAIL brownout phase produced no SERVFAIL answers")
	}
	// The last full round before the overflow bin is after recovery:
	// answers must flow again.
	last := res.Answers.Rounds() - 2
	if res.Answers.Get(last, "OK") == 0 {
		t.Errorf("no OK answers after recovery in round %d", last)
	}
}

// errScenario fails its run with a plain (non-cancellation) error.
type errScenario struct{}

func (errScenario) Name() string { return "boom" }
func (errScenario) run(context.Context, RunConfig) (*Outcome, error) {
	return nil, errors.New("synthetic failure")
}

// TestCampaignSurfacesRunErrors pins satellite 6: a run failing for a
// non-cancellation reason must not vanish — its error lands in the
// result, the report, and the CSV, while sibling runs still complete.
func TestCampaignSurfacesRunErrors(t *testing.T) {
	t.Parallel()
	items := []CampaignItem{
		{Name: "bad", Scenario: errScenario{}, Config: RunConfig{}},
		{Name: "good", Scenario: RetriesScenario(5), Config: RunConfig{Seed: 3}},
	}
	results, err := RunCampaign(context.Background(), items, 2)
	if err != nil {
		t.Fatalf("RunCampaign returned campaign-level error for per-run failure: %v", err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "synthetic failure") {
		t.Errorf("per-run error not captured: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Outcome == nil || results[1].Outcome.Retries == nil {
		t.Errorf("sibling run damaged by failing run: %+v", results[1])
	}
	report := RenderCampaign(results)
	if !strings.Contains(report, "ERROR: synthetic failure") {
		t.Errorf("report does not surface the run error:\n%s", report)
	}
	csv := CampaignCSV(results)
	if !strings.Contains(csv, "synthetic failure") {
		t.Errorf("CSV does not surface the run error:\n%s", csv)
	}
}

// TestCampaignCancellation: cancelling the context mid-campaign returns
// ErrCancelled with the finished runs' results intact.
func TestCampaignCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunCampaign(ctx, smallCampaign(1), 1)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 result slots, got %d", len(results))
	}
	report := RenderCampaign(results)
	if !strings.Contains(report, "campaign summary") {
		t.Errorf("cancelled campaign still renders a summary:\n%s", report)
	}
}

// TestMatrixCtxSurfacesErrors pins the RunDDoSMatrixCtx fix: invalid
// specs must yield a joined error, not silent nil slots.
func TestMatrixCtxSurfacesErrors(t *testing.T) {
	t.Parallel()
	good, ok := SpecByName("B")
	if !ok {
		t.Fatal("paper spec B missing")
	}
	good.TotalDur = 60 * time.Minute // keep the test fast
	good.DDoSStart = 20 * time.Minute
	good.DDoSDur = 20 * time.Minute
	good.QueriesBefore = 2
	bad := good
	bad.ProbeInterval = 0 // division by zero round count → run error
	results, err := RunDDoSMatrixCtx(context.Background(),
		[]DDoSSpec{good, bad}, RunConfig{Probes: 40, Seed: 5, Shards: 1, ShardProbes: 16})
	if err == nil {
		t.Fatal("matrix with an invalid spec returned nil error")
	}
	if errors.Is(err, ErrCancelled) {
		t.Fatalf("non-cancellation failure misreported as cancellation: %v", err)
	}
	if results[0] == nil {
		t.Error("valid spec's result dropped alongside the failing one")
	}
	if results[1] != nil {
		t.Error("failing spec produced a result")
	}
}
