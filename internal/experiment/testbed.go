// Package experiment reproduces the paper's measurement campaigns: the
// caching baseline (§3, Tables 1–3, Figures 3/13), the DDoS emulations
// (§5–6, Table 4, Figures 6–12, 14–15), and the glue-vs-authoritative TTL
// study (Appendix A, Table 5). Each runner assembles a testbed — the DNS
// hierarchy root → .nl → cachetest.nl plus a calibrated population of
// recursive resolvers — on the deterministic simulator and returns the
// rows/series the paper reports.
package experiment

import (
	"sync"
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/vantage"
	"repro/internal/zone"
)

// Well-known addresses of the emulated hierarchy.
const (
	RootAddr = "198.41.0.4"
	TLDAddr  = "194.0.28.53"
)

// Domain is the test zone, as in the paper.
const Domain = "cachetest.nl."

// RotationInterval is the zone-file rotation period (§3.2: serial
// incremented and zone reloaded every 10 minutes).
const RotationInterval = 10 * time.Minute

// AuthEvent is one query arrival at an authoritative, observed by the
// pre-drop tap (§6.1: the paper measures queries before the DDoS drops
// them).
type AuthEvent struct {
	At      time.Time
	Src     netsim.Addr
	Dst     netsim.Addr
	QName   string
	QType   dnswire.Type
	Dropped bool
}

// TestbedConfig sizes a testbed.
type TestbedConfig struct {
	// Probes is the number of emulated Atlas probes.
	Probes int
	// TTL is the record TTL of the probe AAAA records.
	TTL uint32
	// NegTTL is the zone's negative TTL (SOA minimum); the paper uses
	// 60 s.
	NegTTL uint32
	// Auths is the number of cachetest.nl authoritatives (the paper runs
	// two).
	Auths int
	// Seed drives every random choice in the testbed.
	Seed int64
	// Population tunes the resolver mix; zero value uses the calibrated
	// defaults.
	Population PopulationConfig
	// KeepAuthLog retains the per-query authoritative tap (needed for
	// Figures 10–12 and Table 3; costs memory on large runs).
	KeepAuthLog bool
	// Trace, when non-nil, enables deterministic query-lifecycle tracing:
	// one ring buffer per testbed wired into every engine (stub, recursive,
	// cache, netsim, authoritative). TraceCell tags the buffer with the
	// cell index of a sharded run.
	Trace     *trace.Config
	TraceCell int
	// ExtraNL appends records to this testbed's copy of the nl. TLD zone
	// — delegations (plus glue) for adversary-controlled zones. The
	// shared, memoized nl zone is immutable, so setting this clones it
	// for the testbed instead.
	ExtraNL []dnswire.RR
}

func (c TestbedConfig) withDefaults() TestbedConfig {
	if c.Probes == 0 {
		c.Probes = 1200
	}
	if c.TTL == 0 {
		c.TTL = 3600
	}
	if c.NegTTL == 0 {
		c.NegTTL = 60
	}
	if c.Auths == 0 {
		c.Auths = 2
	}
	c.Population = c.Population.withDefaults()
	return c
}

// Testbed is a fully assembled simulated DNS ecosystem.
type Testbed struct {
	Cfg   TestbedConfig
	Clk   *clock.Virtual
	Net   *netsim.Network
	Start time.Time

	AuthAddrs []netsim.Addr
	AuthZone  *zone.Zone // shared by all cachetest.nl authoritatives
	Auths     []*authoritative.Server
	Pop       *Population
	Fleet     *vantage.Fleet
	// Trace is the testbed's event buffer; nil unless Cfg.Trace is set.
	Trace *trace.Buffer
	// Timeline is the cell's per-bucket series collector; nil unless
	// AttachTimeline was called.
	Timeline *timeline.Collector

	serial0 uint16
	AuthLog []AuthEvent

	// Tap totals, counted on every run (the AuthLog itself is only kept
	// with KeepAuthLog). Arrivals are pre-drop, deliveries post-drop.
	tapArrivals  metrics.Counter
	tapDropped   metrics.Counter
	tapDelivered metrics.Counter

	// The adversary experiments attach actors outside the population:
	// dedicated per-probe resolvers and the attack-side machinery.
	// CollectMetrics folds them in so their counters reach run reports.
	advResolvers []*recursive.Resolver
	advCollect   func(*metrics.Scope)
}

// testbedStart is the fixed virtual start time of every testbed (the
// paper's measurement began 2018-05-01). Cells of a sharded run all
// share it, which is what lets their round series merge bin-for-bin.
var testbedStart = time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)

// NewTestbed builds the hierarchy, resolver population, and probe fleet.
func NewTestbed(cfg TestbedConfig) *Testbed {
	cfg = cfg.withDefaults()
	tb := &Testbed{
		Cfg:   cfg,
		Start: testbedStart,
	}
	tb.Clk = clock.NewVirtual(tb.Start)
	tb.Net = netsim.New(tb.Clk, cfg.Seed)
	if cfg.Trace != nil {
		tb.Trace = trace.NewBuffer(tb.Clk, tb.Start, cfg.TraceCell, *cfg.Trace)
		tb.Net.SetTrace(tb.Trace)
	}

	tb.AuthAddrs = authAddrs(cfg.Auths)

	tb.buildZones()
	tb.installTap()

	tb.Pop = BuildPopulation(tb.Clk, tb.Net, cfg.Probes, Domain,
		[]recursive.ServerHint{{Name: "a.root-servers.net.", Addr: RootAddr}},
		cfg.Population, cfg.Seed+1)
	tb.Fleet = vantage.NewFleet(tb.Clk, tb.Pop.Probes, cfg.Seed+2)
	if tb.Trace != nil {
		for _, r := range tb.Pop.Resolvers {
			r.SetTrace(tb.Trace) // applies now or at lazy materialization
		}
		for _, p := range tb.Pop.Probes {
			p.SetTrace(tb.Trace)
		}
	}
	return tb
}

// AttachTimeline points every resolver in the cell at one shared
// per-bucket series collector. Call before the clock runs; answers are
// derived VP-side at analysis time, so only resolver-side metrics flow
// through here.
func (tb *Testbed) AttachTimeline(c *timeline.Collector) {
	tb.Timeline = c
	for _, r := range tb.Pop.Resolvers {
		r.SetTimeline(c) // applies now or at lazy materialization
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// sharedHierarchy memoizes the root and nl zones plus the authoritative
// address list. Both zones are immutable once built (only the per-testbed
// cachetest.nl zone sees Replace/BumpSerial from rotations and the glue
// study), zone.Zone is safe for concurrent readers, and their contents
// depend only on the authoritative count — so every testbed with the same
// count shares one copy instead of re-parsing ~15 records per build.
var sharedHierarchy struct {
	mu    sync.Mutex
	addrs map[int][]netsim.Addr
	root  *zone.Zone
	nl    map[int]*zone.Zone
}

// authAddrs returns the shared cachetest.nl authoritative address list for
// an n-server testbed. Callers treat the slice as read-only.
func authAddrs(n int) []netsim.Addr {
	h := &sharedHierarchy
	h.mu.Lock()
	defer h.mu.Unlock()
	if a, ok := h.addrs[n]; ok {
		return a
	}
	a := make([]netsim.Addr, n)
	for i := range a {
		a[i] = netsim.Addr("192.0.2." + itoa(i+1))
	}
	if h.addrs == nil {
		h.addrs = make(map[int][]netsim.Addr)
	}
	h.addrs[n] = a
	return a
}

// hierarchyZones returns the shared root and nl zones delegating to the
// given authoritatives.
func hierarchyZones(authAddrs []netsim.Addr) (root, nl *zone.Zone) {
	h := &sharedHierarchy
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.root == nil {
		h.root = buildRootZone()
		h.nl = make(map[int]*zone.Zone)
	}
	nl = h.nl[len(authAddrs)]
	if nl == nil {
		nl = buildNLZone(authAddrs)
		h.nl[len(authAddrs)] = nl
	}
	return h.root, nl
}

func buildRootZone() *zone.Zone {
	rootZone := zone.New(".")
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.SOA{
		MName: "a.root-servers.net.", RName: "nstld.verisign-grs.com.",
		Serial: 2018050100, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}})
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.NS{Host: "a.root-servers.net."}})
	rootZone.MustAdd(dnswire.RR{Name: "a.root-servers.net.", TTL: 518400,
		Data: dnswire.A{Addr: dnswire.MustAddr(RootAddr)}})
	rootZone.MustAdd(dnswire.RR{Name: "nl.", TTL: 172800, Data: dnswire.NS{Host: "ns1.dns.nl."}})
	rootZone.MustAdd(dnswire.RR{Name: "ns1.dns.nl.", TTL: 172800,
		Data: dnswire.A{Addr: dnswire.MustAddr(TLDAddr)}})
	rootZone.MustAdd(dnswire.RR{Name: "nl.", TTL: 86400, Data: dnswire.DS{
		KeyTag: 34112, Algorithm: 8, DigestType: 2, Digest: []byte{0xaa, 0xbb},
	}})
	return rootZone
}

func buildNLZone(authAddrs []netsim.Addr) *zone.Zone {
	nlZone := zone.New("nl.")
	nlZone.MustAdd(dnswire.RR{Name: "nl.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.dns.nl.", RName: "hostmaster.dns.nl.",
		Serial: 2018050100, Refresh: 3600, Retry: 600, Expire: 2419200, Minimum: 3600,
	}})
	nlZone.MustAdd(dnswire.RR{Name: "nl.", TTL: 3600, Data: dnswire.NS{Host: "ns1.dns.nl."}})
	nlZone.MustAdd(dnswire.RR{Name: "ns1.dns.nl.", TTL: 3600,
		Data: dnswire.A{Addr: dnswire.MustAddr(TLDAddr)}})
	// Delegation of the test domain, glue with the paper's 3600 s
	// referral TTL (Appendix A).
	for i, addr := range authAddrs {
		host := "ns" + itoa(i+1) + "." + Domain
		nlZone.MustAdd(dnswire.RR{Name: Domain, TTL: 3600, Data: dnswire.NS{Host: host}})
		nlZone.MustAdd(dnswire.RR{Name: host, TTL: 3600,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(addr))}})
	}
	return nlZone
}

// authZoneKey identifies a cachetest.nl zone shape for template reuse.
type authZoneKey struct {
	ttl, negTTL   uint32
	probes, auths int
}

// authZoneTemplates memoizes pristine cachetest.nl zones by shape. A
// testbed's zone is mutated over a run (serial bumps, AAAA rotations, the
// glue study's Replace calls), so each testbed gets its own Clone of the
// shared template — cloning copies prebuilt maps instead of re-validating
// and re-parsing every record, which matters when shards build thousands
// of same-shaped testbeds.
var authZoneTemplates struct {
	mu sync.Mutex
	m  map[authZoneKey]*zone.Zone
}

func authZoneTemplate(k authZoneKey, addrs []netsim.Addr) *zone.Zone {
	t := &authZoneTemplates
	t.mu.Lock()
	defer t.mu.Unlock()
	if z, ok := t.m[k]; ok {
		return z
	}
	z := zone.New(Domain)
	z.MustAdd(dnswire.RR{Name: Domain, TTL: k.ttl, Data: dnswire.SOA{
		MName: "ns1." + Domain, RName: "hostmaster." + Domain,
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 864000, Minimum: k.negTTL,
	}})
	for i, addr := range addrs {
		host := "ns" + itoa(i+1) + "." + Domain
		z.MustAdd(dnswire.RR{Name: Domain, TTL: k.ttl, Data: dnswire.NS{Host: host}})
		z.MustAdd(dnswire.RR{Name: host, TTL: k.ttl,
			Data: dnswire.A{Addr: dnswire.MustAddr(string(addr))}})
	}
	for id := 1; id <= k.probes; id++ {
		z.MustAdd(dnswire.RR{
			Name: vantage.QName(uint16(id), Domain), TTL: k.ttl,
			Data: dnswire.AAAA{Addr: vantage.EncodeAAAA(1, uint16(id), k.ttl)},
		})
	}
	if t.m == nil {
		t.m = make(map[authZoneKey]*zone.Zone)
	}
	t.m[k] = z
	return z
}

// buildZones builds the per-testbed cachetest.nl zone, fetches the shared
// root/nl zones, and attaches the servers.
func (tb *Testbed) buildZones() {
	rootZone, nlZone := hierarchyZones(tb.AuthAddrs)
	if len(tb.Cfg.ExtraNL) > 0 {
		nlZone = nlZone.Clone()
		for _, rr := range tb.Cfg.ExtraNL {
			nlZone.MustAdd(rr)
		}
	}

	tb.AuthZone = authZoneTemplate(authZoneKey{
		ttl: tb.Cfg.TTL, negTTL: tb.Cfg.NegTTL,
		probes: tb.Cfg.Probes, auths: len(tb.AuthAddrs),
	}, tb.AuthAddrs).Clone()
	tb.serial0 = 1

	// One slab for the whole hierarchy's servers; tb.Auths views into it.
	servers := make([]authoritative.Server, 2+len(tb.AuthAddrs))
	rootSrv := &servers[0]
	rootSrv.Init(rootZone)
	rootSrv.Attach(tb.Net, RootAddr)
	rootSrv.SetTrace(tb.Trace)
	tldSrv := &servers[1]
	tldSrv.Init(nlZone)
	tldSrv.Attach(tb.Net, TLDAddr)
	tldSrv.SetTrace(tb.Trace)
	tb.Auths = make([]*authoritative.Server, 0, len(tb.AuthAddrs))
	for i, addr := range tb.AuthAddrs {
		srv := &servers[2+i]
		srv.Init(tb.AuthZone)
		srv.Attach(tb.Net, addr)
		srv.SetTrace(tb.Trace)
		tb.Auths = append(tb.Auths, srv)
	}
}

// installTap records every query arriving at a cachetest.nl authoritative,
// including ones the emulated DDoS drops.
func (tb *Testbed) installTap() {
	isAuth := make(map[netsim.Addr]bool, len(tb.AuthAddrs))
	for _, a := range tb.AuthAddrs {
		isAuth[a] = true
	}
	// The tap decodes into one scratch message: the simulator delivers
	// packets on a single goroutine and the tap retains nothing.
	var tapMsg dnswire.Message
	tb.Net.AddTap(func(ev netsim.Event) {
		if !isAuth[ev.Dst] {
			return
		}
		m := &tapMsg
		if err := dnswire.UnpackInto(m, ev.Payload); err != nil || m.Response || len(m.Questions) != 1 {
			return
		}
		tb.tapArrivals.Inc()
		if ev.Dropped {
			tb.tapDropped.Inc()
		} else {
			tb.tapDelivered.Inc()
		}
		if !tb.Cfg.KeepAuthLog {
			return
		}
		tb.AuthLog = append(tb.AuthLog, AuthEvent{
			At: ev.Time, Src: ev.Src, Dst: ev.Dst,
			QName:   dnswire.CanonicalName(m.Questions[0].Name),
			QType:   m.Questions[0].Type,
			Dropped: ev.Dropped,
		})
	})
}

// CollectMetrics folds every component's counters into one registry:
// resolver and cache totals across the population, the cachetest.nl
// authoritatives, the network, the event loop, the probe fleet, and the
// testbed's own pre-drop tap. Scopes and metric names are stable, so two
// runs with the same seed produce byte-identical report JSON regardless
// of worker count.
func (tb *Testbed) CollectMetrics() *metrics.Registry {
	reg := metrics.NewRegistry()
	rs, cs := reg.Scope("resolver"), reg.Scope("cache")
	for _, l := range tb.Pop.Resolvers {
		r := l.Resolver()
		if r == nil {
			continue // never materialized: all counters are zero
		}
		r.CollectMetrics(rs)
		r.Cache().CollectMetrics(cs)
	}
	for _, r := range tb.advResolvers {
		r.CollectMetrics(rs)
		r.Cache().CollectMetrics(cs)
	}
	if tb.advCollect != nil {
		tb.advCollect(reg.Scope("adversary"))
	}
	as := reg.Scope("authoritative")
	for _, a := range tb.Auths {
		a.CollectMetrics(as)
	}
	tb.Net.CollectMetrics(reg.Scope("netsim"))

	scheduled, fired, stopped := tb.Clk.Counters()
	ck := reg.Scope("clock")
	ck.Counter("events_scheduled").Add(scheduled)
	ck.Counter("events_fired").Add(fired)
	ck.Counter("timers_stopped").Add(stopped)

	tb.Fleet.CollectMetrics(reg.Scope("vantage"))

	ts := reg.Scope("testbed")
	ts.Counter("auth_arrivals").Add(tb.tapArrivals.Value())
	ts.Counter("auth_dropped").Add(tb.tapDropped.Value())
	ts.Counter("auth_delivered").Add(tb.tapDelivered.Value())
	return reg
}

// ScheduleRotations arms the 10-minute zone rotations for the run length:
// each rotation bumps the serial and re-encodes every probe's AAAA record
// (§3.2).
func (tb *Testbed) ScheduleRotations(total time.Duration) {
	for at := RotationInterval; at <= total; at += RotationInterval {
		at := at
		tb.Clk.AfterFunc(at, func() { tb.rotate() })
	}
}

func (tb *Testbed) rotate() {
	serial := tb.CurrentSerial()
	for id := 1; id <= tb.Cfg.Probes; id++ {
		name := vantage.QName(uint16(id), Domain)
		if err := tb.AuthZone.Replace(name, dnswire.TypeAAAA, tb.Cfg.TTL,
			dnswire.AAAA{Addr: vantage.EncodeAAAA(serial, uint16(id), tb.Cfg.TTL)}); err != nil {
			panic(err)
		}
	}
	tb.AuthZone.BumpSerial()
}

// CurrentSerial returns the serial the zone serves at the current virtual
// time.
func (tb *Testbed) CurrentSerial() uint16 {
	return tb.SerialAt(tb.Clk.Now())
}

// SerialAt returns the serial the zone served at t. Rotations are exact,
// so this is a pure function of time.
func (tb *Testbed) SerialAt(t time.Time) uint16 {
	if t.Before(tb.Start) {
		return tb.serial0
	}
	return tb.serial0 + uint16(t.Sub(tb.Start)/RotationInterval)
}
