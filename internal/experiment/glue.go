package experiment

import (
	"context"
	"time"

	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stub"
	"repro/internal/vantage"
)

// Table5 reproduces Appendix A's Table 5: the distribution of TTLs that
// vantage points see for records that exist both as parent-side glue
// (referral TTL 3600 s) and as child-side authoritative data (TTL 60 s).
type Table5 struct {
	Total int
	// AboveParent counts TTLs above the parent's 3600 s (unclear origin).
	AboveParent int
	// ExactParent counts the parent's 3600 s (referral data returned).
	ExactParent int
	// Between counts 60 < TTL < 3600 (parent data, decremented or
	// rewritten).
	Between int
	// ExactChild counts the child's 60 s (authoritative data).
	ExactChild int
	// BelowChild counts TTL < 60 (authoritative data, decremented).
	BelowChild int
}

// AuthoritativeShare is the fraction answered from the child
// (authoritative) side, the paper's ~95%.
func (t Table5) AuthoritativeShare() float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(t.ExactChild+t.BelowChild) / float64(t.Total)
}

// GlueResult holds both Table 5 columns (NS and A record queries).
type GlueResult struct {
	NS Table5
	A  Table5
	// Report carries the run's metrics snapshot and accounting
	// invariants when the run was routed through the Scenario API.
	Report *metrics.Report
}

// childNSTTL is the child zone's NS/A TTL in the glue experiment (the
// paper configured 60 s at the authoritatives vs 3600 s referral glue at
// the parent).
const childNSTTL = 60

// RunGlueVsAuth reproduces the Appendix A experiment: the parent keeps the
// 3600 s delegation records while the child's own NS and nameserver A
// records carry 60 s; vantage points then ask their recursives for the NS
// and A records and the distribution of returned TTLs shows which side
// recursives trust.
//
// Deprecated: positional-argument wrapper kept for compatibility; it
// delegates to Run with GlueScenario.
func RunGlueVsAuth(probes int, seed int64, pop PopulationConfig) *GlueResult {
	out, _ := Run(context.Background(), GlueScenario(), RunConfig{
		Probes: probes, Seed: seed, Population: pop,
	})
	return out.Glue
}

// runGlueTestbed builds one glue world — monolithic or one cell — runs
// the Appendix A measurement on it, and returns the tallies plus the
// testbed for metric collection.
func runGlueTestbed(probes int, seed int64, pop PopulationConfig) (*GlueResult, *Testbed) {
	tb := NewTestbed(TestbedConfig{
		Probes:     probes,
		TTL:        3600,
		Seed:       seed,
		Population: pop,
	})
	// Lower the child-side NS/A TTLs to 60 s, diverging from the
	// parent's 3600 s glue.
	var nsData []dnswire.RData
	for i, addr := range tb.AuthAddrs {
		host := "ns" + itoa(i+1) + "." + Domain
		nsData = append(nsData, dnswire.NS{Host: host})
		if err := tb.AuthZone.Replace(host, dnswire.TypeA, childNSTTL,
			dnswire.A{Addr: dnswire.MustAddr(string(addr))}); err != nil {
			panic(err)
		}
	}
	if err := tb.AuthZone.Replace(Domain, dnswire.TypeNS, childNSTTL, nsData...); err != nil {
		panic(err)
	}

	res := &GlueResult{}
	// Each VP first warms the delegation path with its AAAA name, then
	// asks for the NS and the A record.
	for i, probe := range tb.Pop.Probes {
		client := stub.New(tb.Clk, stub.Config{})
		client.Attach(tb.Net, netsim.Addr("glue-probe-"+itoa(i+1)))
		for _, rec := range probe.Recursives {
			rec := rec
			client := client
			warm := vantage.QName(probe.ID, Domain)
			tb.Clk.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				client.Query(rec, warm, dnswire.TypeAAAA, func(stub.Result) {
					client.Query(rec, Domain, dnswire.TypeNS, func(r stub.Result) {
						tally(&res.NS, r, dnswire.TypeNS)
					})
					client.Query(rec, "ns1."+Domain, dnswire.TypeA, func(r stub.Result) {
						tally(&res.A, r, dnswire.TypeA)
					})
				})
			})
		}
	}
	tb.Clk.RunFor(10 * time.Minute)
	return res, tb
}

// tally buckets one answer's TTL into Table 5.
func tally(t *Table5, r stub.Result, want dnswire.Type) {
	if r.Err != nil || r.Msg == nil || r.Msg.RCode != dnswire.RCodeNoError {
		return
	}
	for _, rr := range r.Msg.Answers {
		if rr.Type() != want {
			continue
		}
		t.Total++
		switch ttl := rr.TTL; {
		case ttl > 3600:
			t.AboveParent++
		case ttl == 3600:
			t.ExactParent++
		case ttl > childNSTTL:
			t.Between++
		case ttl == childNSTTL:
			t.ExactChild++
		default:
			t.BelowChild++
		}
		return
	}
}
