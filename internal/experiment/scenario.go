package experiment

// The Scenario API: one config shape and one entry point for every
// experiment in the repository. A Scenario names an experiment (a DDoS
// spec, the caching baseline, the glue study, the self-check); RunConfig
// carries the knobs every experiment shares; Run executes it with
// cancellation support and, when Shards > 0, with the population split
// into fixed-capacity cells that run concurrently and stream into the
// mergeable accumulators of stream.go.
//
// Determinism contract: the set of cells, their sizes, and their seeds
// depend only on (Probes, ShardProbes, Seed) — the Shards knob is pure
// concurrency. Combined with the order-independent accumulator merge, a
// run with Shards=K is byte-identical to the same run with Shards=1.
// Shards=0 selects the legacy monolithic path (single testbed, legacy
// seeding), preserved bit-for-bit for the deprecated Run* wrappers.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/recursive"
	"repro/internal/retrymodel"
	"repro/internal/telemetry"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// ErrCancelled is returned (wrapped) when a run's context fires before
// every cell completes. The partial Outcome still carries the merged
// results and metrics of the cells that finished.
var ErrCancelled = errors.New("experiment run cancelled")

// RunConfig is the one config shape every Scenario accepts.
type RunConfig struct {
	// Probes is the total emulated probe population (default 1200). The
	// VP count is larger: each probe queries through 1–3 recursives.
	Probes int
	// Seed drives every random choice; same seed, same results.
	Seed int64
	// Shards is the number of population cells running concurrently.
	// 0 selects the legacy monolithic engine; K >= 1 selects the sharded
	// engine, whose results are identical for every K (the cell layout
	// depends only on Probes, ShardProbes, and Seed).
	Shards int
	// ShardProbes is the probe capacity of one cell (default 4096,
	// max 65535). Setting it implies the sharded engine.
	ShardProbes int
	// Workers bounds sweep-level concurrency in the Ctx fan-outs
	// (RunDDoSMatrixCtx et al.); <= 0 means one per core.
	Workers int
	// Population tunes the resolver mix; zero value uses the calibrated
	// defaults.
	Population PopulationConfig
	// TTL, ProbeInterval, and Rounds configure the caching scenario
	// (defaults 3600 s, 20 min, 7). DDoS scenarios take these from
	// their spec instead.
	TTL           uint32
	ProbeInterval time.Duration
	Rounds        int
	// KeepWorlds retains every cell's testbed in Outcome.Worlds for
	// drill-downs (Table 7). Costs memory proportional to the whole
	// population — leave off for scale runs.
	KeepWorlds bool
	// Trace enables deterministic query-lifecycle tracing: every cell
	// records into its own ring buffer and Outcome.Trace carries the
	// per-cell traces in cell-index order, so trace bytes are identical
	// for every Shards/Workers value. DDoS scenarios only; caching and
	// glue ignore it.
	Trace *trace.Config
	// Timeline enables per-bucket simulated-time series collection: each
	// cell counts into a fixed bin layout derived from the spec horizon,
	// and the cells exact-merge, so Outcome.Timeline is byte-identical
	// for every Shards/Workers value. DDoS scenarios only.
	Timeline *timeline.Config
	// Progress, when non-nil, receives one CellDone per finished cell
	// (live run telemetry). Display only — it never affects results.
	Progress *telemetry.Progress

	// afterShard, when set, runs after each cell completes (on the
	// worker that ran it). Tests use it to trigger deterministic
	// mid-run cancellation.
	afterShard func(cell int)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Probes == 0 {
		c.Probes = 1200
	}
	if c.ShardProbes > MaxShardProbes {
		c.ShardProbes = MaxShardProbes
	}
	if c.Shards > 0 && c.ShardProbes == 0 {
		c.ShardProbes = DefaultShardProbes
	}
	if c.ShardProbes > 0 && c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// sharded reports whether the cell-decomposed engine is selected.
func (c RunConfig) sharded() bool { return c.Shards > 0 }

// cachingConfig projects the RunConfig onto the legacy CachingConfig.
func (c RunConfig) cachingConfig() CachingConfig {
	return CachingConfig{
		Probes: c.Probes, TTL: c.TTL, ProbeInterval: c.ProbeInterval,
		Rounds: c.Rounds, Seed: c.Seed, Population: c.Population,
	}.withDefaults()
}

// Outcome is what any Scenario produces. Exactly one of the result
// fields matching the scenario kind is set (Check sets Check; the DDoS
// scenarios set DDoS; ...). Report is the scenario's primary run report
// when it has one.
type Outcome struct {
	Scenario string
	Config   RunConfig

	DDoS         *DDoSResult
	Caching      *CachingResult
	Glue         *GlueResult
	Check        []CheckResult
	NXNS         *NXNSResult
	Poison       *PoisonResult
	Reflect      *ReflectResult
	Transport    *TransportResult
	Passive      *PassiveResult
	Retries      *RetriesResult
	Implications *ImplicationsResult

	// Worlds holds the per-cell testbeds when Config.KeepWorlds was set
	// and the run completed (nil on cancelled runs).
	Worlds *ShardedTestbed

	// Trace holds the run's merged per-cell traces when Config.Trace was
	// set (DDoS scenarios only).
	Trace *trace.Data

	// Timeline holds the run's merged per-bucket series when
	// Config.Timeline was set (DDoS scenarios only). Identical bytes for
	// every shard count.
	Timeline *timeline.Timeline

	Report *metrics.Report
}

// Scenario is one runnable experiment. Implementations live in this
// package; construct them with DDoSScenario, CachingScenario,
// GlueScenario, or CheckScenario and execute them with Run.
type Scenario interface {
	Name() string
	run(ctx context.Context, cfg RunConfig) (*Outcome, error)
}

// Run executes a scenario under ctx. On cancellation it returns a
// partial Outcome (results merged from the cells that finished) and an
// error satisfying errors.Is(err, ErrCancelled). Monolithic runs
// (Shards == 0) can only be cancelled between build/run/analyze phases;
// sharded runs cancel at cell granularity.
func Run(ctx context.Context, sc Scenario, cfg RunConfig) (*Outcome, error) {
	return sc.run(ctx, cfg.withDefaults())
}

func cancelErr(cause error) error {
	return fmt.Errorf("%w: %v", ErrCancelled, cause)
}

// shardLabels returns the extra report labels of a sharded run. The
// Shards concurrency knob is deliberately absent: reports must be
// byte-identical across K, and K never changes the results.
func shardLabels(labels map[string]string, cfg RunConfig, cells int) map[string]string {
	labels["shard_probes"] = strconv.Itoa(cfg.ShardProbes)
	labels["shard_cells"] = strconv.Itoa(cells)
	return labels
}

// ---- DDoS ----

type ddosScenario struct{ spec DDoSSpec }

// DDoSScenario wraps one Table 4 attack spec as a Scenario.
func DDoSScenario(spec DDoSSpec) Scenario { return ddosScenario{spec: spec} }

func (s ddosScenario) Name() string { return "ddos-" + s.spec.Name }

// Spec exposes the wrapped attack spec, so the spec compiler's lowering
// (phase plans, display envelope) is inspectable in golden tests.
func (s ddosScenario) Spec() DDoSSpec { return s.spec }

func (s ddosScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: s.Name(), Config: cfg}
	spec := s.spec
	if spec.ProbeInterval <= 0 || spec.TotalDur <= 0 {
		return out, fmt.Errorf("ddos spec %q: ProbeInterval and TotalDur must be positive", spec.Name)
	}
	rounds := int(spec.TotalDur / spec.ProbeInterval)

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		tb := runDDoSTestbed(spec, cfg.Probes, cfg.Seed, cfg.Population, cfg.Trace, cfg.Timeline, 0)
		out.DDoS = analyzeDDoS(spec, tb, rounds)
		out.Report = out.DDoS.Report
		out.Timeline = out.DDoS.Timeline
		if ct := captureCellTrace(tb, 0); ct != nil {
			out.Trace = &trace.Data{SampleEvery: cfg.Trace.SampleEvery, Cells: []trace.CellTrace{*ct}}
		}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		ac   *ddosAccum
		snap metrics.Snapshot
		tb   *Testbed
		ct   *trace.CellTrace
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		tb := runDDoSTestbed(spec, n, mixSeed(cfg.Seed, i), cfg.Population, cfg.Trace, cfg.Timeline, i)
		ac := newDDoSAccum(spec, tb.Start, rounds)
		ac.absorb(tb)
		cr := &cellResult{ac: ac, snap: tb.CollectMetrics().Snapshot(),
			ct: captureCellTrace(tb, i)}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	total := newDDoSAccum(spec, testbedStart, rounds)
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	var traced *trace.Data
	if cfg.Trace != nil {
		traced = &trace.Data{SampleEvery: cfg.Trace.SampleEvery}
	}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		total.merge(cr.ac)
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
		if traced != nil && cr.ct != nil {
			// results is in cell-index order, so the merged trace is too —
			// independent of which worker ran which cell.
			traced.Cells = append(traced.Cells, *cr.ct)
		}
	}
	res := total.finalize()
	snap := metrics.MergeSnapshots(snaps...)
	res.Report = &metrics.Report{
		Name: "ddos-" + spec.Name,
		Labels: shardLabels(map[string]string{
			"experiment": spec.Name,
			"probes":     strconv.Itoa(cfg.Probes),
			"ttl":        strconv.FormatUint(uint64(spec.TTL), 10),
			"loss":       strconv.FormatFloat(spec.Loss, 'g', -1, 64),
			"seed":       strconv.FormatInt(cfg.Seed, 10),
		}, cfg, len(cells)),
		Metrics:    snap,
		Invariants: DDoSInvariants(res, snap),
	}
	out.DDoS = res
	out.Report = res.Report
	out.Trace = traced
	out.Timeline = res.Timeline
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// captureCellTrace snapshots one testbed's ring buffer as a CellTrace;
// nil when tracing is off.
func captureCellTrace(tb *Testbed, cell int) *trace.CellTrace {
	if tb.Trace == nil {
		return nil
	}
	return &trace.CellTrace{Cell: cell, Dropped: tb.Trace.Dropped(), Events: tb.Trace.Events()}
}

// cellDone reports one finished cell's simulator totals to the run's
// Progress tracker, when any.
func cellDone(cfg RunConfig, tb *Testbed) {
	if cfg.Progress == nil {
		return
	}
	_, fired, _ := tb.Clk.Counters()
	cfg.Progress.CellDone(fired, tb.Clk.Now().Sub(tb.Start))
}

// ---- Caching ----

type cachingScenario struct{}

// CachingScenario is the §3 caching baseline as a Scenario; TTL,
// ProbeInterval, and Rounds come from the RunConfig.
func CachingScenario() Scenario { return cachingScenario{} }

func (cachingScenario) Name() string { return "caching" }

func (cachingScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "caching", Config: cfg}
	cc := cfg.cachingConfig()

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runCachingTestbed(cc)
		out.Caching = res
		out.Report = res.Report
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		ac   *cachingAccum
		snap metrics.Snapshot
		tb   *Testbed
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		cellCfg := cc
		cellCfg.Probes = n
		cellCfg.Seed = mixSeed(cfg.Seed, i)
		tb := runCachingWorld(cellCfg)
		ac := newCachingAccum(cc, testbedStart)
		ac.absorb(tb)
		cr := &cellResult{ac: ac, snap: tb.CollectMetrics().Snapshot()}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	total := newCachingAccum(cc, testbedStart)
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		total.merge(cr.ac)
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
	}
	res := total.finalize()
	snap := metrics.MergeSnapshots(snaps...)
	res.Report = &metrics.Report{
		Name: fmt.Sprintf("caching-ttl%d", cc.TTL),
		Labels: shardLabels(map[string]string{
			"probes": strconv.Itoa(cfg.Probes),
			"ttl":    strconv.FormatUint(uint64(cc.TTL), 10),
			"rounds": strconv.Itoa(cc.Rounds),
			"seed":   strconv.FormatInt(cfg.Seed, 10),
		}, cfg, len(cells)),
		Metrics:    snap,
		Invariants: cachingInvariants(res, snap),
	}
	out.Caching = res
	out.Report = res.Report
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// ---- Glue vs authoritative ----

type glueScenario struct{}

// GlueScenario is the Appendix A glue-vs-authoritative TTL study as a
// Scenario.
func GlueScenario() Scenario { return glueScenario{} }

func (glueScenario) Name() string { return "glue" }

func (glueScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "glue", Config: cfg}

	if !cfg.sharded() {
		if err := ctx.Err(); err != nil {
			return out, cancelErr(err)
		}
		res, tb := runGlueTestbed(cfg.Probes, cfg.Seed, cfg.Population)
		snap := tb.CollectMetrics().Snapshot()
		res.Report = &metrics.Report{
			Name: "glue",
			Labels: map[string]string{
				"probes": strconv.Itoa(cfg.Probes),
				"seed":   strconv.FormatInt(cfg.Seed, 10),
			},
			Metrics:    snap,
			Invariants: glueInvariants(snap),
		}
		out.Glue = res
		out.Report = res.Report
		if cfg.KeepWorlds {
			out.Worlds = &ShardedTestbed{ShardProbes: cfg.Probes, Shards: []*Testbed{tb}}
		}
		if cfg.afterShard != nil {
			cfg.afterShard(0)
		}
		return out, nil
	}

	cells := planCells(cfg.Probes, cfg.ShardProbes)
	type cellResult struct {
		res  *GlueResult
		snap metrics.Snapshot
		tb   *Testbed
	}
	results, runErr := parallel.MapCtx(ctx, cfg.Shards, cells, func(i int, n int) *cellResult {
		res, tb := runGlueTestbed(n, mixSeed(cfg.Seed, i), cfg.Population)
		cr := &cellResult{res: res, snap: tb.CollectMetrics().Snapshot()}
		cellDone(cfg, tb)
		if cfg.KeepWorlds {
			cr.tb = tb
		}
		if cfg.afterShard != nil {
			cfg.afterShard(i)
		}
		return cr
	})

	var ac glueAccum
	var snaps []metrics.Snapshot
	worlds := &ShardedTestbed{ShardProbes: cfg.ShardProbes, Shards: make([]*Testbed, len(cells))}
	for i, cr := range results {
		if cr == nil {
			continue
		}
		ac.absorb(cr.res)
		snaps = append(snaps, cr.snap)
		worlds.Shards[i] = cr.tb
	}
	res := ac.finalize()
	snap := metrics.MergeSnapshots(snaps...)
	res.Report = &metrics.Report{
		Name: "glue",
		Labels: shardLabels(map[string]string{
			"probes": strconv.Itoa(cfg.Probes),
			"seed":   strconv.FormatInt(cfg.Seed, 10),
		}, cfg, len(cells)),
		Metrics:    snap,
		Invariants: glueInvariants(snap),
	}
	out.Glue = res
	out.Report = res.Report
	if runErr != nil {
		return out, cancelErr(runErr)
	}
	if cfg.KeepWorlds {
		out.Worlds = worlds
	}
	return out, nil
}

// ---- Check ----

type checkScenario struct{}

// CheckScenario is the one-shot reproduction self-test as a Scenario.
// Sub-experiments inherit the config's Shards/ShardProbes, so the
// self-test can exercise the sharded engine too.
func CheckScenario() Scenario { return checkScenario{} }

func (checkScenario) Name() string { return "check" }

func (checkScenario) run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	out := &Outcome{Scenario: "check", Config: cfg}
	probes, seed := cfg.Probes, cfg.Seed

	specE, okE := SpecByName("E")
	specH, okH := SpecByName("H")
	specI, okI := SpecByName("I")
	specA, okA := SpecByName("A")

	// sub derives a sub-experiment's RunConfig: same engine selection,
	// scenario-specific probe count and caching knobs.
	sub := func(p int, ttl uint32, rounds int, pop PopulationConfig) RunConfig {
		return RunConfig{
			Probes: p, Seed: seed, Shards: cfg.Shards, ShardProbes: cfg.ShardProbes,
			Population: pop, TTL: ttl, ProbeInterval: 20 * time.Minute, Rounds: rounds,
		}
	}
	ddosRun := func(spec DDoSSpec, pop PopulationConfig, dst **DDoSResult) func() {
		return func() {
			o, err := Run(ctx, DDoSScenario(spec), sub(probes, 0, 0, pop))
			if err == nil {
				*dst = o.DDoS
			}
		}
	}

	var (
		caching, short, day *CachingResult
		resE, resH, resI    *DDoSResult
		resA, resIHarvest   *DDoSResult
		bindUp, bindDown    retrymodel.Result
		glue                *GlueResult
		impl                *ImplicationsResult
	)
	cachingRun := func(ttl uint32, rounds int, dst **CachingResult) func() {
		return func() {
			o, err := Run(ctx, CachingScenario(), sub(probes, ttl, rounds, PopulationConfig{}))
			if err == nil {
				*dst = o.Caching
			}
		}
	}
	runs := []func(){
		cachingRun(3600, 6, &caching),
		cachingRun(60, 4, &short),
		cachingRun(86400, 4, &day),
		func() {
			bindUp = retrymodel.Run(retrymodel.BINDLike(), false, 25, seed)
			bindDown = retrymodel.Run(retrymodel.BINDLike(), true, 25, seed)
		},
		func() {
			o, err := Run(ctx, GlueScenario(), sub(probes/2, 0, 0, PopulationConfig{}))
			if err == nil {
				glue = o.Glue
			}
		},
		func() {
			impl = RunImplications(ImplicationsConfig{Clients: probes / 4, Recursives: 20, Seed: seed})
		},
	}
	if okE {
		runs = append(runs, ddosRun(specE, PopulationConfig{}, &resE))
	}
	if okH {
		runs = append(runs, ddosRun(specH, PopulationConfig{}, &resH))
	}
	if okI {
		runs = append(runs, ddosRun(specI, PopulationConfig{}, &resI))
		runs = append(runs, ddosRun(specI, PopulationConfig{Harvest: recursive.HarvestFull}, &resIHarvest))
	}
	if okA {
		runs = append(runs, ddosRun(specA, PopulationConfig{}, &resA))
	}
	if err := parallel.ForEachCtx(ctx, cfg.Workers, len(runs), func(i int) { runs[i]() }); err != nil {
		// Verdicts need every sub-result; a cancelled suite has none to
		// assemble.
		return out, cancelErr(err)
	}

	var res []CheckResult
	add := func(claim, paper, measured string, pass bool) {
		res = append(res, CheckResult{Claim: claim, Paper: paper, Measured: measured, Pass: pass})
	}

	// §3: warm-cache miss rate ~30%.
	add("warm-cache miss rate (TTL 3600)", "28.5-32.9%",
		fmt.Sprintf("%.1f%%", 100*caching.MissRate),
		caching.MissRate > 0.18 && caching.MissRate < 0.42)

	// §3: short TTLs never hit the cache at 20-minute probing.
	total := short.Table2.AA + short.Table2.CC + short.Table2.AC + short.Table2.CA
	aaShare := 0.0
	if total > 0 {
		aaShare = float64(short.Table2.AA) / float64(total)
	}
	add("TTL 60 @ 20min probing: all fresh (AA)", "~100%",
		fmt.Sprintf("%.1f%%", 100*aaShare), aaShare > 0.9)

	// §3.4: day-long TTLs are truncated for ~30% of VPs.
	warm := day.Table2.WarmupTTLZone + day.Table2.WarmupTTLAltered
	trunc := 0.0
	if warm > 0 {
		trunc = float64(day.Table2.WarmupTTLAltered) / float64(warm)
	}
	add("TTL truncation at 1-day TTLs", "~30%",
		fmt.Sprintf("%.1f%%", 100*trunc), trunc > 0.15 && trunc < 0.5)

	// §5: Experiment E — 50% loss barely hurts.
	if okE {
		delta := resE.FailureRate(9) - resE.FailureRate(4)
		add("exp E (50% loss): failure increase small", "+3.7pp",
			fmt.Sprintf("+%.1fpp", 100*delta), delta >= 0 && delta < 0.15)
	}

	// §5: Experiment H — ~60% still served at 90% loss with 30-min TTLs.
	if okH {
		served := 1 - resH.FailureRate(9)
		add("exp H (90% loss, TTL 1800): still served", "~60%",
			fmt.Sprintf("%.1f%%", 100*served), served > 0.45 && served < 0.85)

		// And the cache's value: exp I (TTL 60) fares clearly worse.
		if okI {
			servedI := 1 - resI.FailureRate(9)
			add("exp I (90% loss, TTL 60): served less than H", "~37-40%",
				fmt.Sprintf("%.1f%%", 100*servedI),
				servedI > 0.2 && servedI < 0.6 && servedI < served)
		}
	}

	// §5.2: Experiment A — near-total failure after caches expire.
	if okA {
		late := resA.FailureRate(9)
		early := resA.FailureRate(3)
		add("exp A: cache cliff at TTL expiry", "partial, then ~100% fail",
			fmt.Sprintf("%.0f%% -> %.0f%%", 100*early, 100*late),
			early < 0.6 && late > 0.85)
	}

	// §6: traffic amplification at the authoritatives under 90% loss.
	if okI {
		base := resIHarvest.AuthQueries.Get(4, "AAAA-for-PID")
		attack := resIHarvest.AuthQueries.Get(9, "AAAA-for-PID")
		mult := 0.0
		if base > 0 {
			mult = attack / base
		}
		add("legit traffic multiplier under 90% loss", "up to 8.2x",
			fmt.Sprintf("%.1fx", mult), mult > 2 && mult < 15)
	}

	// §6.2: software retry amplification.
	bmult := bindDown.Mean.Total() / bindUp.Mean.Total()
	add("BIND-like retries during failure", "3 -> 12 queries (4x)",
		fmt.Sprintf("%.0f -> %.0f (%.1fx)", bindUp.Mean.Total(), bindDown.Mean.Total(), bmult),
		bindUp.Mean.Total() <= 4 && bmult > 2 && bmult < 8)

	// Appendix A: the child's TTL wins.
	add("answers carry the child-side TTL", "~95%",
		fmt.Sprintf("%.1f%%", 100*glue.NS.AuthoritativeShare()),
		glue.NS.AuthoritativeShare() > 0.85)

	// §8: root-like rides it out, CDN-like suffers.
	add("root-like vs CDN-like failure under attack", "≈0% vs visible",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*impl.RootFailDuringAttack, 100*impl.CDNFailDuringAttack),
		impl.RootFailDuringAttack < 0.05 && impl.CDNFailDuringAttack > 0.05)

	out.Check = res
	return out, nil
}

// glueInvariants checks the glue run's tap conservation laws: no loss
// window is armed, so every arrival must be delivered and handled.
func glueInvariants(snap metrics.Snapshot) []metrics.Invariant {
	ts := snap.Scope("testbed")
	auth := snap.Scope("authoritative")
	return []metrics.Invariant{
		metrics.EqualInt("auth_arrivals_conserved",
			ts.Counter("auth_arrivals"),
			ts.Counter("auth_dropped")+ts.Counter("auth_delivered"),
			"arrivals", "dropped+delivered"),
		metrics.EqualInt("no_attack_no_drops",
			ts.Counter("auth_dropped"), 0, "dropped", "zero"),
		metrics.EqualInt("auth_delivered_match_handled",
			ts.Counter("auth_delivered"), auth.Counter("queries"),
			"delivered", "handled"),
	}
}
