package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/trace"
)

// traceJSONL runs the short DDoS spec through the sharded engine with
// tracing on and returns the serialized trace.
func traceJSONL(t *testing.T, shards, sampleEvery int) []byte {
	t.Helper()
	cfg := RunConfig{Probes: 48, ShardProbes: 16, Shards: shards, Seed: 42,
		Trace: &trace.Config{SampleEvery: sampleEvery}}
	out, err := Run(context.Background(), DDoSScenario(shortSpec()), cfg)
	if err != nil {
		t.Fatalf("Shards=%d: %v", shards, err)
	}
	if out.Trace == nil {
		t.Fatalf("Shards=%d: no trace captured", shards)
	}
	if problems := out.Trace.Validate(); len(problems) > 0 {
		t.Fatalf("Shards=%d: trace validation failed: %v", shards, problems)
	}
	var buf bytes.Buffer
	if err := out.Trace.WriteJSONL(&buf); err != nil {
		t.Fatalf("Shards=%d: WriteJSONL: %v", shards, err)
	}
	return buf.Bytes()
}

// TestTraceShardInvariance extends the engine's determinism contract to
// the trace: with the cell layout fixed by (Probes, ShardProbes, Seed),
// the Shards concurrency knob must not change a single byte of the
// merged trace — full and sampled.
func TestTraceShardInvariance(t *testing.T) {
	for _, sample := range []int{1, 3} {
		base := traceJSONL(t, 1, sample)
		if len(base) == 0 {
			t.Fatalf("sample=%d: empty trace", sample)
		}
		for _, k := range []int{2, 4, 8} {
			got := traceJSONL(t, k, sample)
			if !bytes.Equal(base, got) {
				t.Fatalf("sample=%d: Shards=%d trace differs from Shards=1 (%d vs %d bytes)",
					sample, k, len(got), len(base))
			}
		}
	}
}

// TestTraceMonolithicAndChrome covers the remaining export paths: the
// monolithic (unsharded) engine honors RunConfig.Trace too, and the
// Chrome conversion of a real run's trace passes its validator.
func TestTraceMonolithicAndChrome(t *testing.T) {
	cfg := RunConfig{Probes: 16, Seed: 7, Trace: &trace.Config{}}
	out, err := Run(context.Background(), DDoSScenario(shortSpec()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Len() == 0 {
		t.Fatal("monolithic run captured no trace")
	}
	if problems := out.Trace.Validate(); len(problems) > 0 {
		t.Fatalf("trace validation failed: %v", problems)
	}
	var chrome bytes.Buffer
	if err := out.Trace.WriteChrome(&chrome); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	n, err := trace.ValidateChrome(bytes.NewReader(chrome.Bytes()))
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if n == 0 {
		t.Fatal("Chrome export contains no events")
	}
}
