package experiment

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// RenderTable1 prints one or more Table 1 columns side by side.
func RenderTable1(results []*CachingResult) string {
	var sb strings.Builder
	row := func(label string, get func(*CachingResult) any) {
		fmt.Fprintf(&sb, "%-18s", label)
		for _, r := range results {
			fmt.Fprintf(&sb, " %10v", get(r))
		}
		sb.WriteByte('\n')
	}
	row("TTL", func(r *CachingResult) any { return r.Table1.TTL })
	row("Probes", func(r *CachingResult) any { return r.Table1.Probes })
	row("Probes (val.)", func(r *CachingResult) any { return r.Table1.ProbesValid })
	row("Probes (disc.)", func(r *CachingResult) any { return r.Table1.ProbesDisc })
	row("VPs", func(r *CachingResult) any { return r.Table1.VPs })
	row("Queries", func(r *CachingResult) any { return r.Table1.Queries })
	row("Answers", func(r *CachingResult) any { return r.Table1.Answers })
	row("Answers (val.)", func(r *CachingResult) any { return r.Table1.AnswersValid })
	row("Answers (disc.)", func(r *CachingResult) any { return r.Table1.AnswersDisc })
	return sb.String()
}

// RenderTable2 prints the classification table for multiple runs.
func RenderTable2(results []*CachingResult) string {
	var sb strings.Builder
	row := func(label string, get func(*CachingResult) any) {
		fmt.Fprintf(&sb, "%-18s", label)
		for _, r := range results {
			fmt.Fprintf(&sb, " %10v", get(r))
		}
		sb.WriteByte('\n')
	}
	row("TTL", func(r *CachingResult) any { return r.Table1.TTL })
	row("Answers (valid)", func(r *CachingResult) any { return r.Table2.AnswersValid })
	row("1-answer VPs", func(r *CachingResult) any { return r.Table2.OneAnswerVPs })
	row("Warm-up (AAi)", func(r *CachingResult) any { return r.Table2.Warmup })
	row("TTL as zone", func(r *CachingResult) any { return r.Table2.WarmupTTLZone })
	row("TTL altered", func(r *CachingResult) any { return r.Table2.WarmupTTLAltered })
	row("AA", func(r *CachingResult) any { return r.Table2.AA })
	row("CC", func(r *CachingResult) any { return r.Table2.CC })
	row("CCdec", func(r *CachingResult) any { return r.Table2.CCdec })
	row("AC", func(r *CachingResult) any { return r.Table2.AC })
	row("AC TTL as zone", func(r *CachingResult) any { return r.Table2.ACTTLZone })
	row("AC TTL altered", func(r *CachingResult) any { return r.Table2.ACTTLAltered })
	row("CA", func(r *CachingResult) any { return r.Table2.CA })
	row("CAdec", func(r *CachingResult) any { return r.Table2.CAdec })
	row("miss rate %", func(r *CachingResult) any {
		return fmt.Sprintf("%.1f", 100*r.MissRate)
	})
	return sb.String()
}

// RenderTable3 prints the public-resolver attribution of cache misses.
func RenderTable3(results []*CachingResult) string {
	var sb strings.Builder
	row := func(label string, get func(*CachingResult) any) {
		fmt.Fprintf(&sb, "%-18s", label)
		for _, r := range results {
			fmt.Fprintf(&sb, " %10v", get(r))
		}
		sb.WriteByte('\n')
	}
	row("TTL", func(r *CachingResult) any { return r.Table1.TTL })
	row("AC answers", func(r *CachingResult) any { return r.Table3.ACAnswers })
	row("Public R1", func(r *CachingResult) any { return r.Table3.PublicR1 })
	row("Google R1", func(r *CachingResult) any { return r.Table3.GoogleR1 })
	row("other public R1", func(r *CachingResult) any { return r.Table3.OtherPublicR1 })
	row("Non-public R1", func(r *CachingResult) any { return r.Table3.NonPublicR1 })
	row("Google Rn", func(r *CachingResult) any { return r.Table3.GoogleRn })
	row("other Rn", func(r *CachingResult) any { return r.Table3.OtherRn })
	return sb.String()
}

// RenderTable4 prints the DDoS experiment matrix.
func RenderTable4(results []*DDoSResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %6s %6s %6s %7s %5s %8s %8s %8s %8s %8s\n",
		"Exp", "TTL", "start", "dur", "loss%", "NSes",
		"probes", "VPs", "queries", "answers", "valid")
	for _, r := range results {
		s := r.Spec
		dur := "end"
		if s.DDoSDur > 0 {
			dur = fmt.Sprintf("%.0f", s.DDoSDur.Minutes())
		}
		nses := 2
		if !s.TargetsAll {
			nses = 1
		}
		fmt.Fprintf(&sb, "%-4s %6d %6.0f %6s %7.0f %5d %8d %8d %8d %8d %8d\n",
			s.Name, s.TTL, s.DDoSStart.Minutes(), dur, s.Loss*100, nses,
			r.Table4.Probes, r.Table4.VPs, r.Table4.Queries,
			r.Table4.TotalAnswers, r.Table4.ValidAnswers)
	}
	return sb.String()
}

// RenderLatency prints the per-round latency quantiles of Figure 9/15.
func RenderLatency(r *DDoSResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %8s %8s %8s %8s\n",
		"minute", "n", "median", "mean", "p75", "p90")
	for i, s := range r.Latency {
		fmt.Fprintf(&sb, "%8.0f %8d %8.0f %8.0f %8.0f %8.0f\n",
			float64(i)*r.Spec.ProbeInterval.Minutes(), s.N, s.Median, s.Mean, s.P75, s.P90)
	}
	return sb.String()
}

// RenderUniqueRn prints the Figure 12 series.
func RenderUniqueRn(r *DDoSResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s\n", "minute", "unique-Rn")
	for i, n := range r.UniqueRn {
		fmt.Fprintf(&sb, "%8.0f %10d\n", float64(i)*r.Spec.ProbeInterval.Minutes(), n)
	}
	return sb.String()
}

// RenderAmplification prints the Figure 11 series.
func RenderAmplification(r *DDoSResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s %10s %10s %12s %12s %12s\n", "minute",
		"Rn-med", "Rn-p90", "Rn-max", "AAAA-med", "AAAA-p90", "AAAA-max")
	for i := range r.RnPerProbe {
		rn, q := r.RnPerProbe[i], r.QueriesPerProbe[i]
		fmt.Fprintf(&sb, "%8.0f %10.1f %10.1f %10.0f %12.1f %12.1f %12.0f\n",
			float64(i)*r.Spec.ProbeInterval.Minutes(),
			rn.Median, rn.P90, rn.Max, q.Median, q.P90, q.Max)
	}
	return sb.String()
}

// RenderTable5 prints the Appendix A TTL-trust distribution.
func RenderTable5(g *GlueResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "bucket", "NS record", "A record")
	row := func(label string, ns, a int) {
		fmt.Fprintf(&sb, "%-16s %10d %10d\n", label, ns, a)
	}
	row("Total answers", g.NS.Total, g.A.Total)
	row("TTL>3600", g.NS.AboveParent, g.A.AboveParent)
	row("TTL=3600", g.NS.ExactParent, g.A.ExactParent)
	row("60<TTL<3600", g.NS.Between, g.A.Between)
	row("TTL=60", g.NS.ExactChild, g.A.ExactChild)
	row("TTL<60", g.NS.BelowChild, g.A.BelowChild)
	fmt.Fprintf(&sb, "%-16s %9.1f%% %9.1f%%\n", "child share",
		100*g.NS.AuthoritativeShare(), 100*g.A.AuthoritativeShare())
	return sb.String()
}

// FailureRate returns the fraction of failed queries (SERVFAIL or no
// answer) in round r of a DDoS result.
func (r *DDoSResult) FailureRate(round int) float64 {
	ok := r.Answers.Get(round, "OK")
	bad := r.Answers.Get(round, "SERVFAIL") + r.Answers.Get(round, "NoAnswer")
	if ok+bad == 0 {
		return 0
	}
	return bad / (ok + bad)
}

// MeanSeries extracts one label's per-round values.
func MeanSeries(s *stats.RoundSeries, label string) []float64 {
	out := make([]float64, s.Rounds())
	for i := range out {
		out[i] = s.Get(i, label)
	}
	return out
}
