package experiment

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vantage"
)

// TestTallyAnswersOverflowRound pins the round-attribution fix: answers
// landing at or past TotalDur go into the overflow bin (index rounds) in
// BOTH the outcome series and the latency series, and the overflow bin is
// summarized. Pre-fix, outcomes used the raw round index while RTTs used
// a clamped one, and the overflow latency bin was silently dropped.
func TestTallyAnswersOverflowRound(t *testing.T) {
	const rounds = 3
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	ac := newDDoSAccum(DDoSSpec{ProbeInterval: 10 * time.Minute}, start, rounds)
	answers := []vantage.Answer{
		{Round: 0, Valid: true, RTT: 20 * time.Millisecond},
		{Round: 1, Discard: true, RTT: 35 * time.Millisecond}, // SERVFAIL-class
		{Round: rounds, Valid: true, RTT: 42 * time.Millisecond},
		{Round: rounds + 5, Timeout: true}, // clamps into the overflow bin
	}
	ac.tallyAnswers(answers)
	res := ac.finalize()

	if got := len(res.Latency); got != rounds+1 {
		t.Fatalf("len(Latency) = %d, want %d (rounds + overflow bin)", got, rounds+1)
	}
	if got := res.Answers.Get(rounds, "OK"); got != 1 {
		t.Errorf("overflow OK = %v, want 1", got)
	}
	if got := res.Answers.Get(rounds, "NoAnswer"); got != 1 {
		t.Errorf("overflow NoAnswer = %v, want 1", got)
	}
	if got := res.Latency[rounds].N; got != 1 {
		t.Errorf("overflow latency samples = %d, want 1", got)
	}
	if res.Table4.Queries != 4 || res.Table4.TotalAnswers != 3 || res.Table4.ValidAnswers != 2 {
		t.Errorf("Table4 = %+v", res.Table4)
	}
	// The per-round consistency the report checks must hold by
	// construction now that both series share the clamped index.
	if inv := latencyMatchesAnswered(res); !inv.OK {
		t.Errorf("latency invariant failed: %s", inv.Detail)
	}
}

// smallSpec is a short DDoS run for report-level tests.
func smallSpec() DDoSSpec {
	spec, _ := SpecByName("B")
	spec.TotalDur = 40 * time.Minute
	spec.DDoSStart = 10 * time.Minute
	spec.DDoSDur = 10 * time.Minute
	return spec
}

// TestDDoSReportInvariantsHold runs a real (small) attack and requires
// every cross-component invariant to pass, then injects an accounting
// error into the result and requires the checker to catch it.
func TestDDoSReportInvariantsHold(t *testing.T) {
	res := RunDDoS(smallSpec(), 30, 11, PopulationConfig{})
	if res.Report == nil {
		t.Fatal("no report attached")
	}
	if !res.Report.OK() {
		t.Fatalf("invariants failed on a clean run: %+v", res.Report.FailedInvariants())
	}
	if len(res.Report.Invariants) < 5 {
		t.Errorf("only %d invariants evaluated", len(res.Report.Invariants))
	}

	// Inject a phantom answer: the outcome series no longer sums to the
	// query total and the latency series no longer matches the answered
	// count. The checker must flag the run.
	res.Answers.AddRound(0, "OK", 1)
	invs := DDoSInvariants(res, res.Report.Metrics)
	if metrics.AllOK(invs) {
		t.Error("injected accounting error not detected")
	}
}

// TestCachingReportInvariantsHold is the §3 counterpart.
func TestCachingReportInvariantsHold(t *testing.T) {
	res := RunCaching(CachingConfig{Probes: 30, TTL: 1800, Rounds: 4, Seed: 5})
	if res.Report == nil {
		t.Fatal("no report attached")
	}
	if !res.Report.OK() {
		t.Fatalf("invariants failed on a clean run: %+v", res.Report.FailedInvariants())
	}
}

// TestReportsIdenticalAcrossWorkers requires the run reports — metrics
// snapshots included — to be byte-identical between sequential and
// parallel execution of the same seeds.
func TestReportsIdenticalAcrossWorkers(t *testing.T) {
	specs := []DDoSSpec{smallSpec()}
	spec2 := smallSpec()
	spec2.Name = "C"
	spec2.Loss = 0.5
	specs = append(specs, spec2)

	seq := RunDDoSMatrix(specs, 24, 7, PopulationConfig{}, 1)
	par := RunDDoSMatrix(specs, 24, 7, PopulationConfig{}, 4)
	for i := range specs {
		var a, b bytes.Buffer
		if err := seq[i].Report.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := par[i].Report.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("spec %s: reports differ between workers=1 and workers=4", specs[i].Name)
		}
	}
}
