package experiment

import (
	"time"

	"repro/internal/classify"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/vantage"
)

// CachingConfig parameterizes one §3 baseline run (a column of Table 1).
type CachingConfig struct {
	Probes        int
	TTL           uint32
	ProbeInterval time.Duration // 20 min in the first four runs, 10 in the fifth
	Rounds        int
	Seed          int64
	Population    PopulationConfig
}

func (c CachingConfig) withDefaults() CachingConfig {
	if c.Probes == 0 {
		c.Probes = 1200
	}
	if c.TTL == 0 {
		c.TTL = 3600
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 20 * time.Minute
	}
	if c.Rounds == 0 {
		c.Rounds = 7
	}
	return c
}

// Table1 is one column of the paper's Table 1.
type Table1 struct {
	TTL          uint32
	Probes       int
	ProbesValid  int
	ProbesDisc   int
	VPs          int
	Queries      int
	Answers      int
	AnswersValid int
	AnswersDisc  int
}

// Table3 is the paper's public-resolver attribution of cache misses.
type Table3 struct {
	ACAnswers     int
	PublicR1      int
	GoogleR1      int
	OtherPublicR1 int
	NonPublicR1   int
	GoogleRn      int // non-public R1 whose fetch emerged from Google
	OtherRn       int
}

// CachingResult bundles everything a §3 run produces.
type CachingResult struct {
	Config CachingConfig
	Table1 Table1
	Table2 classify.Table2
	Table3 Table3
	// Fig13 counts answer categories per probing round (Appendix B).
	Fig13 *stats.RoundSeries
	// MissRate is the headline warm-cache miss fraction (Figure 3).
	MissRate float64
	// Report carries the run's metrics snapshot and the accounting
	// invariants (see internal/metrics and DESIGN.md §9).
	Report *metrics.Report
}

// RunCaching executes one caching baseline experiment.
func RunCaching(cfg CachingConfig) *CachingResult {
	cfg = cfg.withDefaults()
	tb := NewTestbed(TestbedConfig{
		Probes:      cfg.Probes,
		TTL:         cfg.TTL,
		Seed:        cfg.Seed,
		Population:  cfg.Population,
		KeepAuthLog: true,
	})
	total := time.Duration(cfg.Rounds) * cfg.ProbeInterval
	tb.ScheduleRotations(total + RotationInterval)
	tb.Fleet.Schedule(tb.Start, cfg.ProbeInterval, 5*time.Minute, cfg.Rounds)
	tb.Clk.RunUntil(tb.Start.Add(total + 10*time.Minute))

	return analyzeCaching(cfg, tb)
}

func analyzeCaching(cfg CachingConfig, tb *Testbed) *CachingResult {
	res := &CachingResult{Config: cfg}
	res.Fig13 = stats.NewRoundSeries(tb.Start, cfg.ProbeInterval)

	answers := tb.Fleet.AllAnswers()
	res.Table1 = tabulateTable1(cfg, tb, answers)

	// Rn attribution for Table 3: which resolvers fetched each
	// (probe, zone-round) from the authoritatives.
	fetchers := indexFetchers(tb)

	byVP := vantage.ByVP(answers)
	for _, list := range byVP {
		valid := 0
		for _, a := range list {
			if a.Ok() {
				valid++
			}
		}
		if valid == 1 {
			res.Table2.OneAnswerVPs++
			continue
		}
		tracker := classify.NewTracker()
		for _, a := range list {
			if !a.Ok() {
				continue
			}
			out := tracker.Classify(a, tb.SerialAt(a.SentAt))
			res.Table2.Add(out)
			res.Fig13.Add(a.SentAt, out.Category.String(), 1)
			if out.Category == classify.AC {
				res.tabulateTable3(tb, a, fetchers)
			}
		}
	}
	res.Table2.AnswersValid = res.Table1.AnswersValid
	res.MissRate = res.Table2.MissRate()
	res.Report = buildCachingReport(cfg, tb, res)
	return res
}

func tabulateTable1(cfg CachingConfig, tb *Testbed, answers []vantage.Answer) Table1 {
	t1 := Table1{TTL: cfg.TTL, Probes: cfg.Probes, VPs: tb.Pop.VPCount()}
	probeOK := make(map[uint16]bool)
	for _, a := range answers {
		t1.Queries++
		if a.Timeout {
			continue
		}
		t1.Answers++
		if a.Ok() {
			t1.AnswersValid++
			probeOK[a.ProbeID] = true
		} else {
			t1.AnswersDisc++
		}
	}
	t1.ProbesValid = len(probeOK)
	t1.ProbesDisc = cfg.Probes - t1.ProbesValid
	return t1
}

// fetcherKey identifies one probe's name in one zone round.
type fetcherKey struct {
	qname string
	round int
}

// indexFetchers maps (probe name, rotation round) to the recursive
// addresses that fetched it from the authoritatives.
func indexFetchers(tb *Testbed) map[fetcherKey][]netsim.Addr {
	idx := make(map[fetcherKey][]netsim.Addr)
	for _, ev := range tb.AuthLog {
		if ev.QType != dnswire.TypeAAAA || ev.Dropped {
			continue
		}
		k := fetcherKey{qname: ev.QName, round: int(ev.At.Sub(tb.Start) / RotationInterval)}
		idx[k] = append(idx[k], ev.Src)
	}
	return idx
}

// tabulateTable3 attributes one AC answer to its entry path.
func (res *CachingResult) tabulateTable3(tb *Testbed, a vantage.Answer, fetchers map[fetcherKey][]netsim.Addr) {
	res.Table3.ACAnswers++
	meta := tb.Pop.R1Meta[a.Recursive]
	if meta.Public {
		res.Table3.PublicR1++
		if meta.Google {
			res.Table3.GoogleR1++
		} else {
			res.Table3.OtherPublicR1++
		}
		return
	}
	res.Table3.NonPublicR1++
	// Did the fetch emerge from a Google backend?
	k := fetcherKey{
		qname: vantage.QName(a.ProbeID, Domain),
		round: int(a.SentAt.Sub(tb.Start) / RotationInterval),
	}
	viaGoogle := false
	for _, rn := range fetchers[k] {
		if tb.Pop.RnGoogle[rn] {
			viaGoogle = true
			break
		}
	}
	if viaGoogle {
		res.Table3.GoogleRn++
	} else {
		res.Table3.OtherRn++
	}
}
