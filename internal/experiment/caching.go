package experiment

import (
	"time"

	"repro/internal/classify"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// CachingConfig parameterizes one §3 baseline run (a column of Table 1).
type CachingConfig struct {
	Probes        int
	TTL           uint32
	ProbeInterval time.Duration // 20 min in the first four runs, 10 in the fifth
	Rounds        int
	Seed          int64
	Population    PopulationConfig
}

func (c CachingConfig) withDefaults() CachingConfig {
	if c.Probes == 0 {
		c.Probes = 1200
	}
	if c.TTL == 0 {
		c.TTL = 3600
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 20 * time.Minute
	}
	if c.Rounds == 0 {
		c.Rounds = 7
	}
	return c
}

// Table1 is one column of the paper's Table 1.
type Table1 struct {
	TTL          uint32
	Probes       int
	ProbesValid  int
	ProbesDisc   int
	VPs          int
	Queries      int
	Answers      int
	AnswersValid int
	AnswersDisc  int
}

// Table3 is the paper's public-resolver attribution of cache misses.
type Table3 struct {
	ACAnswers     int
	PublicR1      int
	GoogleR1      int
	OtherPublicR1 int
	NonPublicR1   int
	GoogleRn      int // non-public R1 whose fetch emerged from Google
	OtherRn       int
}

// CachingResult bundles everything a §3 run produces.
type CachingResult struct {
	Config CachingConfig
	Table1 Table1
	Table2 classify.Table2
	Table3 Table3
	// Fig13 counts answer categories per probing round (Appendix B).
	Fig13 *stats.RoundSeries
	// MissRate is the headline warm-cache miss fraction (Figure 3).
	MissRate float64
	// Report carries the run's metrics snapshot and the accounting
	// invariants (see internal/metrics and DESIGN.md §9).
	Report *metrics.Report
}

// RunCaching executes one caching baseline experiment. For sharded,
// cancellable runs route through Run with CachingScenario instead.
func RunCaching(cfg CachingConfig) *CachingResult {
	res, _ := runCachingTestbed(cfg.withDefaults())
	return res
}

// runCachingTestbed builds and runs one caching world — the whole
// monolithic population or one cell — and analyzes it.
func runCachingTestbed(cfg CachingConfig) (*CachingResult, *Testbed) {
	tb := runCachingWorld(cfg)
	return analyzeCaching(cfg, tb), tb
}

// runCachingWorld builds, schedules, and runs one caching testbed
// without analyzing it (the sharded engine analyzes into an
// accumulator instead).
func runCachingWorld(cfg CachingConfig) *Testbed {
	tb := NewTestbed(TestbedConfig{
		Probes:      cfg.Probes,
		TTL:         cfg.TTL,
		Seed:        cfg.Seed,
		Population:  cfg.Population,
		KeepAuthLog: true,
	})
	total := time.Duration(cfg.Rounds) * cfg.ProbeInterval
	tb.ScheduleRotations(total + RotationInterval)
	tb.Fleet.Schedule(tb.Start, cfg.ProbeInterval, 5*time.Minute, cfg.Rounds)
	tb.Clk.RunUntil(tb.Start.Add(total + 10*time.Minute))
	return tb
}

// analyzeCaching runs the shared accumulator pipeline over one testbed
// (see stream.go) and attaches the run report.
func analyzeCaching(cfg CachingConfig, tb *Testbed) *CachingResult {
	ac := newCachingAccum(cfg, tb.Start)
	ac.absorb(tb)
	res := ac.finalize()
	res.Report = buildCachingReport(cfg, tb, res)
	return res
}

// fetcherKey identifies one probe's name in one zone round.
type fetcherKey struct {
	qname string
	round int
}

// indexFetchers maps (probe name, rotation round) to the recursive
// addresses that fetched it from the authoritatives.
func indexFetchers(tb *Testbed) map[fetcherKey][]netsim.Addr {
	idx := make(map[fetcherKey][]netsim.Addr)
	for _, ev := range tb.AuthLog {
		if ev.QType != dnswire.TypeAAAA || ev.Dropped {
			continue
		}
		k := fetcherKey{qname: ev.QName, round: int(ev.At.Sub(tb.Start) / RotationInterval)}
		idx[k] = append(idx[k], ev.Src)
	}
	return idx
}
