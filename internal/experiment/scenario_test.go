package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// shortSpec is a fast DDoS spec for sharded-engine tests: 6 probing
// rounds with a 20-minute loss window in the middle.
func shortSpec() DDoSSpec {
	return DDoSSpec{
		Name: "T", TTL: 300,
		DDoSStart: 20 * time.Minute, DDoSDur: 20 * time.Minute,
		QueriesBefore: 2, TotalDur: 60 * time.Minute,
		ProbeInterval: 10 * time.Minute, Loss: 0.8, TargetsAll: true,
	}
}

// renderOutcome flattens everything a scenario outcome reports — tables,
// series, and the full report JSON (metrics snapshot + invariants) —
// into one byte string for identity comparison.
func renderOutcome(t *testing.T, out *Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	switch {
	case out.DDoS != nil:
		r := out.DDoS
		buf.WriteString(RenderTable4([]*DDoSResult{r}))
		buf.WriteString(RenderLatency(r))
		buf.WriteString(RenderUniqueRn(r))
		buf.WriteString(RenderAmplification(r))
		buf.WriteString(r.Answers.Table(nil))
		buf.WriteString(r.Classes.Table(nil))
		buf.WriteString(r.AuthQueries.Table(nil))
	case out.Caching != nil:
		r := out.Caching
		buf.WriteString(RenderTable1([]*CachingResult{r}))
		buf.WriteString(RenderTable2([]*CachingResult{r}))
		buf.WriteString(RenderTable3([]*CachingResult{r}))
		buf.WriteString(r.Fig13.Table(nil))
	case out.Glue != nil:
		buf.WriteString(RenderTable5(out.Glue))
	case out.NXNS != nil:
		buf.WriteString(RenderNXNS(out.NXNS))
	case out.Poison != nil:
		buf.WriteString(RenderPoison([]*PoisonResult{out.Poison}))
	case out.Reflect != nil:
		buf.WriteString(RenderReflect(out.Reflect))
	case out.Transport != nil:
		buf.WriteString(RenderTransport(out.Transport))
	}
	if out.Report != nil {
		if err := out.Report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestShardDeterminism is the engine's core contract: with the cell
// layout fixed by (Probes, ShardProbes, Seed), the Shards concurrency
// knob must not change a single byte of any rendered table or of the
// report JSON (metrics snapshot and invariants included).
func TestShardDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		sc   Scenario
		cfg  RunConfig
	}{
		{"ddos", DDoSScenario(shortSpec()),
			RunConfig{Probes: 48, ShardProbes: 16, Seed: 42}},
		{"caching", CachingScenario(),
			RunConfig{Probes: 48, ShardProbes: 16, Seed: 42, TTL: 600,
				ProbeInterval: 10 * time.Minute, Rounds: 3}},
		{"glue", GlueScenario(),
			RunConfig{Probes: 30, ShardProbes: 8, Seed: 42}},
	}
	for _, tc := range scenarios {
		t.Run(tc.name, func(t *testing.T) {
			var base []byte
			for _, k := range []int{1, 2, 4, 8} {
				cfg := tc.cfg
				cfg.Shards = k
				out, err := Run(context.Background(), tc.sc, cfg)
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if out.Report == nil {
					t.Fatalf("K=%d: no report", k)
				}
				if !out.Report.OK() {
					t.Fatalf("K=%d: invariants failed: %+v", k, out.Report.FailedInvariants())
				}
				rendered := renderOutcome(t, out)
				if base == nil {
					base = rendered
					continue
				}
				if !bytes.Equal(base, rendered) {
					t.Fatalf("K=%d output differs from K=1:\n%s\nvs\n%s", k, rendered, base)
				}
			}
		})
	}
}

// TestShardPlanStability pins the cell layout rules the determinism
// contract rests on.
func TestShardPlanStability(t *testing.T) {
	cases := []struct {
		probes, shardProbes int
		want                []int
	}{
		{10, 4, []int{4, 4, 2}},
		{8, 4, []int{4, 4}},
		{3, 4, []int{3}},
		{5, 0, []int{5}},
		{0, 4, []int{0}},
	}
	for _, c := range cases {
		got := planCells(c.probes, c.shardProbes)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("planCells(%d, %d) = %v, want %v", c.probes, c.shardProbes, got, c.want)
		}
	}
	// Cell seeds depend only on (seed, index) and must differ across cells.
	if mixSeed(7, 0) == mixSeed(7, 1) {
		t.Error("adjacent cells share a seed")
	}
	if mixSeed(7, 0) != mixSeed(7, 0) {
		t.Error("mixSeed is not a pure function")
	}
}

// TestRunConfigDefaults pins the withDefaults rules the API documents.
func TestRunConfigDefaults(t *testing.T) {
	if got := (RunConfig{}).withDefaults(); got.Probes != 1200 || got.sharded() {
		t.Errorf("zero config: %+v (want 1200 probes, monolithic)", got)
	}
	if got := (RunConfig{Shards: 4}).withDefaults(); got.ShardProbes != DefaultShardProbes {
		t.Errorf("Shards=4: ShardProbes = %d, want %d", got.ShardProbes, DefaultShardProbes)
	}
	if got := (RunConfig{ShardProbes: 100}).withDefaults(); got.Shards != 1 {
		t.Errorf("ShardProbes set: Shards = %d, want 1", got.Shards)
	}
	if got := (RunConfig{Shards: 2, ShardProbes: 1 << 20}).withDefaults(); got.ShardProbes != MaxShardProbes {
		t.Errorf("oversized ShardProbes not clamped: %d", got.ShardProbes)
	}
}

// TestRunCancelledPartial cancels a sharded run after its first cell and
// requires a typed error plus a partial outcome whose merged metrics are
// still internally consistent.
func TestRunCancelledPartial(t *testing.T) {
	spec := shortSpec()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := RunConfig{Probes: 48, ShardProbes: 16, Shards: 1, Seed: 3}
	cfg.afterShard = func(cell int) {
		if cell == 0 {
			cancel()
		}
	}
	out, err := Run(ctx, DDoSScenario(spec), cfg)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if out == nil || out.DDoS == nil {
		t.Fatal("cancelled run returned no partial outcome")
	}
	if got := out.DDoS.Table4.Probes; got != 16 {
		t.Errorf("partial outcome covers %d probes, want 16 (first cell only)", got)
	}
	if out.Report == nil {
		t.Fatal("cancelled run has no partial metrics report")
	}
	if !out.Report.OK() {
		t.Errorf("partial metrics inconsistent: %+v", out.Report.FailedInvariants())
	}

	// The uncancelled run over the same config covers the whole population.
	full, err := Run(context.Background(), DDoSScenario(spec),
		RunConfig{Probes: 48, ShardProbes: 16, Shards: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.DDoS.Table4.Probes; got != 48 {
		t.Errorf("full run covers %d probes, want 48", got)
	}
}

// TestShardedPerProbe is the probe→shard routing regression test:
// Table 7 drill-downs on a multi-cell run must read the owning cell's
// authoritative log (probe IDs restart in every cell, so the flat
// uint16 lookup is ambiguous). Summing the per-probe authoritative
// queries over every ProbeRef must reproduce the merged AAAA-for-PID
// series exactly — double-counting (reading another cell's log) or
// missing probes would break the equality.
func TestShardedPerProbe(t *testing.T) {
	spec := shortSpec()
	out, err := Run(context.Background(), DDoSScenario(spec),
		RunConfig{Probes: 40, ShardProbes: 16, Shards: 2, Seed: 9, KeepWorlds: true})
	if err != nil {
		t.Fatal(err)
	}
	st := out.Worlds
	if st == nil || len(st.Shards) != 3 {
		t.Fatalf("expected 3 retained cells, got %+v", st)
	}

	ref := st.BusiestProbe()
	tab := st.PerProbe(out.DDoS, ref)
	busiestAuth := 0
	for _, row := range tab.Rounds {
		busiestAuth += row.AuthQueries
	}
	if busiestAuth == 0 {
		t.Errorf("busiest probe %+v saw no authoritative queries", ref)
	}

	rounds := int(spec.TotalDur / spec.ProbeInterval)
	perRound := make([]int, rounds)
	for s, tb := range st.Shards {
		for _, p := range tb.Pop.Probes {
			t7 := st.PerProbe(out.DDoS, ProbeRef{Shard: s, ID: p.ID})
			for r, row := range t7.Rounds {
				perRound[r] += row.AuthQueries
			}
		}
	}
	for r := 0; r < rounds; r++ {
		want := int(out.DDoS.AuthQueries.Get(r, "AAAA-for-PID"))
		if perRound[r] != want {
			t.Errorf("round %d: per-probe auth queries sum to %d, series says %d",
				r, perRound[r], want)
		}
	}
}

// TestCheckScenarioSharded smoke-checks that the self-test suite runs
// through the sharded engine end to end (claims may legitimately fail at
// this tiny scale; the run itself must complete and produce verdicts).
func TestCheckScenarioSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment suite")
	}
	out, err := Run(context.Background(), CheckScenario(),
		RunConfig{Probes: 24, Seed: 1, Shards: 2, ShardProbes: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Check) < 8 {
		t.Errorf("only %d verdicts assembled", len(out.Check))
	}
}
