package experiment

import (
	"strings"
	"testing"
)

// TestCheckAllClaimsPass is the repository's compact end-to-end
// reproduction gate: every paper claim must verify at test scale.
func TestCheckAllClaimsPass(t *testing.T) {
	results := Check(200, 42)
	if len(results) < 10 {
		t.Fatalf("only %d claims checked", len(results))
	}
	table, ok := RenderCheck(results)
	if !ok {
		t.Errorf("reproduction self-test failed:\n%s", table)
	}
	if !strings.Contains(table, "PASS") {
		t.Error("render missing verdicts")
	}
}

func TestRenderCheckReportsFailure(t *testing.T) {
	table, ok := RenderCheck([]CheckResult{
		{Claim: "x", Paper: "1", Measured: "2", Pass: false},
	})
	if ok || !strings.Contains(table, "FAIL") {
		t.Errorf("failure not reported: %s", table)
	}
}
