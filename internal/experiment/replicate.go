package experiment

import (
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Replicate runs metric across n different seeds and summarizes the
// distribution — the harness's answer to "is this result an artifact of
// one seed?". The seeds fan out across cores, so metric must be safe to
// call from multiple goroutines at once (the experiment runners are: each
// run builds its own world from the seed). Used by the robustness tests
// and the BenchmarkReplicationVariance target.
func Replicate(n int, baseSeed int64, metric func(seed int64) float64) stats.Summary {
	values := make([]float64, n)
	parallel.ForEach(0, n, func(i int) {
		values[i] = metric(baseSeed + int64(i)*1000)
	})
	return stats.Summarize(values)
}
