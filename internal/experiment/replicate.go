package experiment

import (
	"context"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Replicate runs metric across n different seeds and summarizes the
// distribution — the harness's answer to "is this result an artifact of
// one seed?". The seeds fan out across cores, so metric must be safe to
// call from multiple goroutines at once (the experiment runners are: each
// run builds its own world from the seed). Used by the robustness tests
// and the BenchmarkReplicationVariance target.
func Replicate(n int, baseSeed int64, metric func(seed int64) float64) stats.Summary {
	sum, _ := ReplicateCtx(context.Background(), n, RunConfig{Seed: baseSeed}, metric)
	return sum
}

// ReplicateCtx is Replicate with cooperative cancellation at replicate
// granularity and the sweep runners' (ctx, n, RunConfig) shape:
// cfg.Seed is the base seed (replicate i runs at cfg.Seed + i*1000, the
// stride the robustness suite has always used) and cfg.Workers bounds
// the fan-out. On cancellation it summarizes only the replicates that
// completed and returns an error satisfying errors.Is(err, ErrCancelled)
// — a partial summary over fewer seeds, never one padded with zeros.
func ReplicateCtx(ctx context.Context, n int, cfg RunConfig, metric func(seed int64) float64) (stats.Summary, error) {
	values := make([]float64, n)
	done := make([]bool, n)
	err := parallel.ForEachCtx(ctx, cfg.Workers, n, func(i int) {
		values[i] = metric(cfg.Seed + int64(i)*1000)
		done[i] = true
	})
	if err != nil {
		var completed []float64
		for i, ok := range done {
			if ok {
				completed = append(completed, values[i])
			}
		}
		return stats.Summarize(completed), cancelErr(err)
	}
	return stats.Summarize(values), nil
}

// ReplicateWithReports is Replicate for runs that also produce a
// *metrics.Report: it returns the metric summary plus the per-seed
// reports in seed order, so a caller can both summarize a headline number
// and audit every replicate's invariants.
func ReplicateWithReports(n int, baseSeed int64,
	run func(seed int64) (float64, *metrics.Report)) (stats.Summary, []*metrics.Report) {

	values := make([]float64, n)
	reports := make([]*metrics.Report, n)
	parallel.ForEach(0, n, func(i int) {
		values[i], reports[i] = run(baseSeed + int64(i)*1000)
	})
	return stats.Summarize(values), reports
}
