package experiment

import "repro/internal/stats"

// Replicate runs metric across n different seeds and summarizes the
// distribution — the harness's answer to "is this result an artifact of
// one seed?". Used by the robustness tests and the
// BenchmarkReplicationVariance target.
func Replicate(n int, baseSeed int64, metric func(seed int64) float64) stats.Summary {
	values := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		values = append(values, metric(baseSeed+int64(i)*1000))
	}
	return stats.Summarize(values)
}
