package experiment

// Parallel sweep runners. Every experiment run owns its entire world — a
// virtual clock, a network, and all RNGs are created inside the run,
// seeded only by the run's parameters — so independent runs never share
// mutable state and can fan out across cores. Results come back in input
// order and each run is bit-for-bit identical to the same run executed
// sequentially (TestMatrixParallelMatchesSequential pins this down).

import (
	"context"

	"repro/internal/parallel"
)

// RunDDoSMatrix executes the given Table 4 attack specs concurrently on at
// most workers goroutines (workers <= 0 means one per core). results[i]
// corresponds to specs[i].
func RunDDoSMatrix(specs []DDoSSpec, probes int, seed int64, pop PopulationConfig, workers int) []*DDoSResult {
	results, _ := RunDDoSMatrixCtx(context.Background(), specs, RunConfig{
		Probes: probes, Seed: seed, Population: pop, Workers: workers,
	})
	return results
}

// RunDDoSMatrixCtx is the cancellable, RunConfig-routed matrix runner:
// each spec runs as one DDoSScenario under cfg (so cfg.Shards selects
// the sharded engine for every run), fanned across cfg.Workers
// goroutines. On cancellation it returns the completed results (nil for
// runs that never finished) and an error satisfying
// errors.Is(err, ErrCancelled).
func RunDDoSMatrixCtx(ctx context.Context, specs []DDoSSpec, cfg RunConfig) ([]*DDoSResult, error) {
	results, err := parallel.MapCtx(ctx, cfg.Workers, specs, func(_ int, spec DDoSSpec) *DDoSResult {
		out, runErr := Run(ctx, DDoSScenario(spec), cfg)
		if runErr != nil {
			return nil
		}
		return out.DDoS
	})
	if err != nil {
		return results, cancelErr(err)
	}
	return results, nil
}

// RunDDoSMatrixWithTestbeds is RunDDoSMatrix but also returns each run's
// testbed for drill-downs (Table 7, Appendix F). Testbeds retain the full
// authoritative-side query log, so prefer RunDDoSMatrix when the drill-down
// is not needed.
func RunDDoSMatrixWithTestbeds(specs []DDoSSpec, probes int, seed int64, pop PopulationConfig, workers int) ([]*DDoSResult, []*Testbed) {
	type pair struct {
		res *DDoSResult
		tb  *Testbed
	}
	pairs := parallel.Map(workers, specs, func(_ int, spec DDoSSpec) pair {
		res, tb := RunDDoSWithTestbed(spec, probes, seed, pop)
		return pair{res, tb}
	})
	results := make([]*DDoSResult, len(pairs))
	testbeds := make([]*Testbed, len(pairs))
	for i, p := range pairs {
		results[i], testbeds[i] = p.res, p.tb
	}
	return results, testbeds
}

// RunCachingSweep executes the §3 baseline configurations (the Table 1
// columns) concurrently on at most workers goroutines. results[i]
// corresponds to cfgs[i].
func RunCachingSweep(cfgs []CachingConfig, workers int) []*CachingResult {
	results, _ := RunCachingSweepCtx(context.Background(), cfgs, workers)
	return results
}

// RunCachingSweepCtx is RunCachingSweep with cooperative cancellation at
// run granularity: once ctx fires no new run starts, completed results
// keep their slots (nil elsewhere), and the error satisfies
// errors.Is(err, ErrCancelled).
func RunCachingSweepCtx(ctx context.Context, cfgs []CachingConfig, workers int) ([]*CachingResult, error) {
	results, err := parallel.MapCtx(ctx, workers, cfgs, func(_ int, cfg CachingConfig) *CachingResult {
		return RunCaching(cfg)
	})
	if err != nil {
		return results, cancelErr(err)
	}
	return results, nil
}
