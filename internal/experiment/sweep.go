package experiment

// Parallel sweep runners. Every experiment run owns its entire world — a
// virtual clock, a network, and all RNGs are created inside the run,
// seeded only by the run's parameters — so independent runs never share
// mutable state and can fan out across cores. Results come back in input
// order and each run is bit-for-bit identical to the same run executed
// sequentially (TestMatrixParallelMatchesSequential pins this down).
//
// Every Ctx runner here takes the same (ctx, items, RunConfig) shape:
// the items carry the per-run experiment axes, the RunConfig carries the
// engine knobs (probes, seed, shards, workers) shared by the sweep.

import (
	"context"
	"errors"

	"repro/internal/parallel"
)

// RunDDoSMatrix executes the given Table 4 attack specs concurrently on at
// most workers goroutines (workers <= 0 means one per core). results[i]
// corresponds to specs[i].
func RunDDoSMatrix(specs []DDoSSpec, probes int, seed int64, pop PopulationConfig, workers int) []*DDoSResult {
	results, _ := RunDDoSMatrixCtx(context.Background(), specs, RunConfig{
		Probes: probes, Seed: seed, Population: pop, Workers: workers,
	})
	return results
}

// RunDDoSMatrixCtx is the cancellable, RunConfig-routed matrix runner:
// each spec runs as one DDoSScenario under cfg (so cfg.Shards selects
// the sharded engine for every run), fanned across cfg.Workers
// goroutines. Cancellation returns the completed results (nil for runs
// that never finished) and an error satisfying
// errors.Is(err, ErrCancelled); a run failing for any other reason keeps
// its partial result slot and its error is joined into the returned
// error instead of being dropped.
func RunDDoSMatrixCtx(ctx context.Context, specs []DDoSSpec, cfg RunConfig) ([]*DDoSResult, error) {
	runErrs := make([]error, len(specs))
	results, err := parallel.MapCtx(ctx, cfg.Workers, specs, func(i int, spec DDoSSpec) *DDoSResult {
		out, runErr := Run(ctx, DDoSScenario(spec), cfg)
		runErrs[i] = runErr
		if runErr != nil {
			return nil
		}
		return out.DDoS
	})
	if err != nil {
		return results, cancelErr(err)
	}
	return results, errors.Join(runErrs...)
}

// RunDDoSMatrixWithTestbeds is RunDDoSMatrix but also returns each run's
// testbed for drill-downs (Table 7, Appendix F). Testbeds retain the full
// authoritative-side query log, so prefer RunDDoSMatrix when the drill-down
// is not needed.
//
// Deprecated: thin wrapper over the Scenario API (Run with KeepWorlds),
// kept for compatibility. New code should run DDoSScenario with
// RunConfig.KeepWorlds — or drive the whole matrix through RunCampaign —
// and read Outcome.Worlds.
func RunDDoSMatrixWithTestbeds(specs []DDoSSpec, probes int, seed int64, pop PopulationConfig, workers int) ([]*DDoSResult, []*Testbed) {
	type pair struct {
		res *DDoSResult
		tb  *Testbed
	}
	cfg := RunConfig{Probes: probes, Seed: seed, Population: pop, KeepWorlds: true}
	pairs := parallel.Map(workers, specs, func(_ int, spec DDoSSpec) pair {
		out, err := Run(context.Background(), DDoSScenario(spec), cfg)
		if err != nil {
			return pair{}
		}
		return pair{out.DDoS, out.Worlds.Shards[0]}
	})
	results := make([]*DDoSResult, len(pairs))
	testbeds := make([]*Testbed, len(pairs))
	for i, p := range pairs {
		results[i], testbeds[i] = p.res, p.tb
	}
	return results, testbeds
}

// RunCachingSweep executes the §3 baseline configurations (the Table 1
// columns) concurrently on at most workers goroutines. results[i]
// corresponds to cfgs[i].
//
// Deprecated: thin wrapper kept for compatibility; it delegates to
// RunCachingSweepCtx, which takes the matrix runner's
// (ctx, items, RunConfig) shape.
func RunCachingSweep(cfgs []CachingConfig, workers int) []*CachingResult {
	results, _ := RunCachingSweepCtx(context.Background(), cfgs, RunConfig{Workers: workers})
	return results
}

// RunCachingSweepCtx runs each caching configuration as one
// CachingScenario under cfg — the same (ctx, items, RunConfig) shape as
// RunDDoSMatrixCtx, so cfg.Shards selects the sharded engine for every
// run and cfg.Workers bounds the fan-out. The items carry the experiment
// axes (TTL, ProbeInterval, Rounds); an item's Probes/Seed/Population,
// when set, override cfg's (the legacy sweep passed fully-populated
// configs). Cancellation keeps completed slots (nil elsewhere) and the
// error satisfies errors.Is(err, ErrCancelled).
func RunCachingSweepCtx(ctx context.Context, items []CachingConfig, cfg RunConfig) ([]*CachingResult, error) {
	results, err := parallel.MapCtx(ctx, cfg.Workers, items, func(_ int, item CachingConfig) *CachingResult {
		runCfg := cfg
		if item.Probes != 0 {
			runCfg.Probes = item.Probes
		}
		if item.Seed != 0 {
			runCfg.Seed = item.Seed
		}
		if item.Population != (PopulationConfig{}) {
			runCfg.Population = item.Population
		}
		runCfg.TTL, runCfg.ProbeInterval, runCfg.Rounds = item.TTL, item.ProbeInterval, item.Rounds
		out, runErr := Run(ctx, CachingScenario(), runCfg)
		if runErr != nil {
			return nil
		}
		return out.Caching
	})
	if err != nil {
		return results, cancelErr(err)
	}
	return results, nil
}
