package authoritative

import (
	"repro/internal/dnswire"
	"repro/internal/zone"
)

// TypeAXFR is the zone-transfer query type (RFC 5936). Transfers run over
// TCP; HandleAXFR produces the message sequence for one transfer.
const TypeAXFR dnswire.Type = 252

// HandleAXFR answers a zone-transfer query with the RFC 5936 message
// sequence: the SOA, every other record, and the SOA again. A nil return
// means the query is not an AXFR or the zone is not served here; callers
// fall through to normal handling. Real deployments restrict AXFR to
// secondaries; cmd/authd exposes an allow flag.
func (s *Server) HandleAXFR(q *dnswire.Message) []*dnswire.Message {
	if q.Response || len(q.Questions) != 1 || q.Questions[0].Type != TypeAXFR {
		return nil
	}
	name := dnswire.CanonicalName(q.Questions[0].Name)
	var z *zone.Zone
	for _, candidate := range s.Zones() {
		if candidate.Origin() == name {
			z = candidate
			break
		}
	}
	resp := dnswire.NewResponse(q)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return []*dnswire.Message{resp}
	}
	soa, ok := z.SOA()
	if !ok {
		resp.RCode = dnswire.RCodeServFail
		return []*dnswire.Message{resp}
	}

	// One record batch per message, capped so each message packs within
	// the TCP frame comfortably.
	const perMessage = 100
	var msgs []*dnswire.Message
	current := dnswire.NewResponse(q)
	current.Authoritative = true
	add := func(rr dnswire.RR) {
		if len(current.Answers) >= perMessage {
			msgs = append(msgs, current)
			current = dnswire.NewResponse(q)
			current.Authoritative = true
			current.Questions = nil // only the first message repeats the question
		}
		current.Answers = append(current.Answers, rr)
	}

	add(soa)
	for _, name := range z.Names() {
		for _, t := range []dnswire.Type{
			dnswire.TypeNS, dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeCNAME,
			dnswire.TypePTR, dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeDS,
			dnswire.TypeDNSKEY, dnswire.TypeNSEC, dnswire.TypeRRSIG,
		} {
			for _, rr := range z.RRSet(name, t) {
				add(rr)
			}
		}
	}
	add(soa)
	msgs = append(msgs, current)
	return msgs
}

// LoadAXFR rebuilds a zone from a transfer's message sequence (the
// secondary side). It validates the SOA bracketing.
func LoadAXFR(origin string, msgs []*dnswire.Message) (*zone.Zone, error) {
	var rrs []dnswire.RR
	for _, m := range msgs {
		if m.RCode != dnswire.RCodeNoError {
			return nil, errTransferFailed(m.RCode)
		}
		rrs = append(rrs, m.Answers...)
	}
	if len(rrs) < 2 {
		return nil, errBadTransfer
	}
	first, last := rrs[0], rrs[len(rrs)-1]
	if first.Type() != dnswire.TypeSOA || last.Type() != dnswire.TypeSOA ||
		!first.Data.Equal(last.Data) {
		return nil, errBadTransfer
	}
	z := zone.New(origin)
	for _, rr := range rrs[:len(rrs)-1] { // drop the trailing SOA copy
		if err := z.Add(rr); err != nil {
			return nil, err
		}
	}
	return z, nil
}

type axfrError string

func (e axfrError) Error() string { return string(e) }

const errBadTransfer = axfrError("authoritative: malformed zone transfer")

func errTransferFailed(rc dnswire.RCode) error {
	return axfrError("authoritative: transfer failed: " + rc.String())
}
