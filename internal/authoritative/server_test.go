package authoritative

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

const testZoneText = `
$ORIGIN cachetest.nl.
$TTL 3600
@       IN SOA ns1 hostmaster 1 7200 3600 864000 60
@       IN NS  ns1
@       IN NS  ns2
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
1414 60 IN AAAA fd0f:3897:faf7:a375:1:586::3c
www     IN CNAME 1414
ext     IN CNAME target.example.com.
sub     IN NS  ns.sub
ns.sub  IN A   192.0.2.53
`

func testServer(t *testing.T) *Server {
	t.Helper()
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	return New(z)
}

func query(name string, qt dnswire.Type) *dnswire.Message {
	return dnswire.NewQuery(42, name, qt)
}

func TestAuthoritativeAnswer(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
	if resp == nil || !resp.Authoritative || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("resp = %v", resp)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].TTL != 60 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if resp.ID != 42 || !resp.Response {
		t.Error("response header not mirrored")
	}
}

func TestNSAnswerCarriesGlue(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("cachetest.nl.", dnswire.TypeNS))
	if len(resp.Answers) != 2 {
		t.Fatalf("NS answers = %v", resp.Answers)
	}
	if len(resp.Additionals) != 2 {
		t.Errorf("glue = %v", resp.Additionals)
	}
}

func TestCNAMEChasedInZone(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("www.cachetest.nl.", dnswire.TypeAAAA))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if resp.Answers[0].Type() != dnswire.TypeCNAME || resp.Answers[1].Type() != dnswire.TypeAAAA {
		t.Errorf("chain = %v", resp.Answers)
	}
}

func TestCNAMEOutOfZoneNotChased(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("ext.cachetest.nl.", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Type() != dnswire.TypeCNAME {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func TestReferral(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("host.sub.cachetest.nl.", dnswire.TypeA))
	if resp.Authoritative {
		t.Error("referral must not set AA")
	}
	if resp.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", resp.RCode)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type() != dnswire.TypeNS {
		t.Fatalf("authority = %v", resp.Authorities)
	}
	if len(resp.Additionals) != 1 {
		t.Errorf("glue = %v", resp.Additionals)
	}
	if s.Stats().Referrals != 1 {
		t.Errorf("referral counter = %d", s.Stats().Referrals)
	}
}

func TestNXDomainCarriesSOA(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("missing.cachetest.nl.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNXDomain || !resp.Authoritative {
		t.Fatalf("resp = %+v", resp.Header)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authorities)
	}
}

func TestNoData(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("resp = %v", resp)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authorities)
	}
}

func TestRefusedOutOfZone(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("example.com.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestIgnoresResponsesAndMalformed(t *testing.T) {
	s := testServer(t)
	m := query("1414.cachetest.nl.", dnswire.TypeAAAA)
	m.Response = true
	if resp := s.Handle(m); resp != nil {
		t.Error("handled a response packet")
	}
	if out := s.HandleWire([]byte{1, 2, 3}); out != nil {
		t.Error("answered malformed packet")
	}
	if s.Stats().Malformed != 1 {
		t.Errorf("malformed counter = %d", s.Stats().Malformed)
	}
}

func TestNotImpAndRefusedClasses(t *testing.T) {
	s := testServer(t)
	m := query("cachetest.nl.", dnswire.TypeA)
	m.Opcode = dnswire.OpcodeUpdate
	if resp := s.Handle(m); resp.RCode != dnswire.RCodeNotImp {
		t.Errorf("update rcode = %v", resp.RCode)
	}
	m = query("cachetest.nl.", dnswire.TypeA)
	m.Questions[0].Class = dnswire.Class(3) // CHAOS
	if resp := s.Handle(m); resp.RCode != dnswire.RCodeRefused {
		t.Errorf("chaos rcode = %v", resp.RCode)
	}
}

func TestMultiZoneSelection(t *testing.T) {
	parent, err := zone.ParseString(`
$ORIGIN nl.
$TTL 7200
@         IN SOA ns1.dns.nl. h.dns.nl. 1 2 3 4 60
@         IN NS ns1.dns.nl.
ns1.dns   IN A 194.0.28.53
cachetest IN NS ns1.cachetest.nl.
ns1.cachetest IN A 192.0.2.1
`, "")
	if err != nil {
		t.Fatal(err)
	}
	child, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	s := New(parent, child)
	// The child zone, not the parent's delegation, must answer.
	resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("child zone not preferred: %v", resp)
	}
	// Parent still answers for other nl names.
	resp = s.Handle(query("other.nl.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("parent lookup rcode = %v", resp.RCode)
	}
}

func TestAttachServesOverNetwork(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1)
	s := testServer(t)
	s.Attach(net, "192.0.2.1")

	var got *dnswire.Message
	net.Bind("198.51.100.7", func(src netsim.Addr, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("bad response: %v", err)
			return
		}
		got = m
	})
	wire, err := query("1414.cachetest.nl.", dnswire.TypeAAAA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	net.Send("198.51.100.7", "192.0.2.1", wire)
	clk.Run()
	if got == nil || len(got.Answers) != 1 {
		t.Fatalf("no answer over network: %v", got)
	}
	if s.Stats().Queries != 1 {
		t.Errorf("queries = %d", s.Stats().Queries)
	}
}

func TestTruncationOverUDP(t *testing.T) {
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	// A name with enough TXT data to blow the 512-octet limit.
	for i := 0; i < 20; i++ {
		z.MustAdd(dnswire.RR{Name: "big.cachetest.nl.", TTL: 60, Data: dnswire.TXT{
			Strings: []string{fmt.Sprintf("record-%02d-%s", i, strings.Repeat("x", 30))},
		}})
	}
	s := New(z)

	q := query("big.cachetest.nl.", dnswire.TypeTXT)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := s.HandleWire(wire)
	if out == nil {
		t.Fatal("no response")
	}
	if len(out) > 512 {
		t.Fatalf("response %d bytes exceeds 512 without EDNS", len(out))
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated || len(m.Answers) != 0 {
		t.Errorf("want TC with empty sections, got TC=%v answers=%d", m.Truncated, len(m.Answers))
	}
	if s.Stats().Truncated != 1 {
		t.Errorf("Truncated counter = %d", s.Stats().Truncated)
	}

	// With an EDNS0 OPT advertising 4096, the full answer fits.
	q.Additionals = append(q.Additionals, dnswire.RR{
		Name: ".", Class: dnswire.Class(4096), Data: dnswire.OPT{},
	})
	wire, err = q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	m, err = dnswire.Unpack(s.HandleWire(wire))
	if err != nil {
		t.Fatal(err)
	}
	if m.Truncated || len(m.Answers) != 20 {
		t.Errorf("EDNS response: TC=%v answers=%d, want full answer", m.Truncated, len(m.Answers))
	}
}

// TestDNSSECSignaturesWithDOBit: a signed zone returns RRSIGs only when
// the query sets the EDNS0 DO bit, and the returned signature verifies.
func TestDNSSECSignaturesWithDOBit(t *testing.T) {
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	key, err := dnssec.GenerateKey("cachetest.nl.", dnssec.FlagZone, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	if err := dnssec.SignZone(z, key, now, 7*24*time.Hour); err != nil {
		t.Fatal(err)
	}
	s := New(z)

	// Without DO: no signatures.
	resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
	for _, rr := range resp.Answers {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Fatal("RRSIG returned without DO bit")
		}
	}

	// With DO: the covering RRSIG rides along and verifies.
	q := query("1414.cachetest.nl.", dnswire.TypeAAAA)
	q.AddEDNS(4096, true)
	resp = s.Handle(q)
	var dataRRs, sigs []dnswire.RR
	for _, rr := range resp.Answers {
		if rr.Type() == dnswire.TypeRRSIG {
			sigs = append(sigs, rr)
		} else {
			dataRRs = append(dataRRs, rr)
		}
	}
	if len(sigs) != 1 || len(dataRRs) != 1 {
		t.Fatalf("answers: %d data, %d sigs", len(dataRRs), len(sigs))
	}
	if err := dnssec.Verify(key.Public, sigs[0], dataRRs, now.Add(time.Hour)); err != nil {
		t.Fatalf("served signature does not verify: %v", err)
	}
	// The response echoes EDNS with DO.
	if _, do, ok := resp.EDNS(); !ok || !do {
		t.Error("response missing EDNS/DO echo")
	}
}

// TestNSECDenialWithDOBit: a signed zone with an NSEC chain proves
// nonexistence in negative responses to DO queries.
func TestNSECDenialWithDOBit(t *testing.T) {
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := dnssec.BuildNSECChain(z); err != nil {
		t.Fatal(err)
	}
	key, err := dnssec.GenerateKey("cachetest.nl.", dnssec.FlagZone, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	if err := dnssec.SignZone(z, key, now, 7*24*time.Hour); err != nil {
		t.Fatal(err)
	}
	s := New(z)

	q := query("missing.cachetest.nl.", dnswire.TypeA)
	q.AddEDNS(4096, true)
	resp := s.Handle(q)
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	var nsecRR *dnswire.RR
	nsecSigned := false
	for i, rr := range resp.Authorities {
		switch rr.Type() {
		case dnswire.TypeNSEC:
			nsecRR = &resp.Authorities[i]
		case dnswire.TypeRRSIG:
			if rr.Data.(dnswire.RRSIG).TypeCovered == dnswire.TypeNSEC {
				nsecSigned = true
			}
		}
	}
	if nsecRR == nil {
		t.Fatal("NXDOMAIN response missing NSEC proof")
	}
	if !dnssec.VerifyDenial(*nsecRR, "missing.cachetest.nl.", dnswire.TypeA) {
		t.Errorf("NSEC %v does not deny the name", nsecRR)
	}
	if !nsecSigned {
		t.Error("NSEC proof not signed")
	}

	// NODATA: existing name, absent type.
	q = query("1414.cachetest.nl.", dnswire.TypeA)
	q.AddEDNS(4096, true)
	resp = s.Handle(q)
	found := false
	for _, rr := range resp.Authorities {
		if rr.Type() == dnswire.TypeNSEC {
			found = true
			if !dnssec.VerifyDenial(rr, "1414.cachetest.nl.", dnswire.TypeA) {
				t.Error("NODATA NSEC does not deny the type")
			}
		}
	}
	if !found {
		t.Error("NODATA response missing NSEC")
	}
	// Without DO, no NSEC appears.
	resp = s.Handle(query("missing.cachetest.nl.", dnswire.TypeA))
	for _, rr := range resp.Authorities {
		if rr.Type() == dnswire.TypeNSEC {
			t.Error("NSEC leaked into a non-DO response")
		}
	}
}
