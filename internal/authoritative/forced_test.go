package authoritative

import (
	"testing"

	"repro/internal/dnswire"
)

// TestForcedRCodeErrorDiffusion: a 50% dial must force exactly every
// second in-zone answer — deterministic error diffusion, not a coin
// flip. Reverting the accumulator (e.g. flooring the fraction) breaks
// the exact 5-of-10 pattern.
func TestForcedRCodeErrorDiffusion(t *testing.T) {
	s := testServer(t)
	s.SetForcedRCode(dnswire.RCodeServFail, 0.5)
	var forced []int
	for i := 1; i <= 10; i++ {
		resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
		if resp.RCode == dnswire.RCodeServFail {
			forced = append(forced, i)
		} else if resp.RCode != dnswire.RCodeNoError {
			t.Fatalf("query %d: rcode = %v", i, resp.RCode)
		}
	}
	want := []int{2, 4, 6, 8, 10}
	if len(forced) != len(want) {
		t.Fatalf("forced answers at %v, want %v", forced, want)
	}
	for i := range want {
		if forced[i] != want[i] {
			t.Fatalf("forced answers at %v, want %v", forced, want)
		}
	}
	if got := s.Stats().Forced; got != 5 {
		t.Errorf("Stats.Forced = %d, want 5", got)
	}
}

// TestForcedRCodeFull: intensity 1 forces every answer, with the AA bit
// so caches accept the denial as authoritative.
func TestForcedRCodeFull(t *testing.T) {
	s := testServer(t)
	s.SetForcedRCode(dnswire.RCodeNXDomain, 1)
	for i := 0; i < 3; i++ {
		resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
		if resp.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("query %d: rcode = %v, want NXDOMAIN", i, resp.RCode)
		}
		if !resp.Authoritative {
			t.Fatal("forced NXDOMAIN lost the AA bit")
		}
		if len(resp.Answers) != 0 {
			t.Fatalf("forced answer carries records: %v", resp.Answers)
		}
	}
}

// TestForcedRCodePerRecord: a name filter confines the dial to the
// listed records; every other name answers from the zone.
func TestForcedRCodePerRecord(t *testing.T) {
	s := testServer(t)
	s.SetForcedRCode(dnswire.RCodeServFail, 1, "1414.CacheTest.nl.")
	if resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA)); resp.RCode != dnswire.RCodeServFail {
		t.Errorf("targeted record not forced: rcode = %v", resp.RCode)
	}
	if resp := s.Handle(query("ns1.cachetest.nl.", dnswire.TypeA)); resp.RCode != dnswire.RCodeNoError ||
		len(resp.Answers) != 1 {
		t.Errorf("untargeted record corrupted: %v", resp)
	}
}

// TestForcedRCodeClear: frac <= 0 restores normal answers.
func TestForcedRCodeClear(t *testing.T) {
	s := testServer(t)
	s.SetForcedRCode(dnswire.RCodeServFail, 1)
	if resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA)); resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("dial not armed: rcode = %v", resp.RCode)
	}
	s.SetForcedRCode(dnswire.RCodeServFail, 0)
	resp := s.Handle(query("1414.cachetest.nl.", dnswire.TypeAAAA))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Errorf("dial not cleared: %v", resp)
	}
	if got := s.Stats().Forced; got != 1 {
		t.Errorf("Stats.Forced = %d, want 1", got)
	}
}
