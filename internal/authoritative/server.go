// Package authoritative implements an authoritative DNS server engine: it
// answers queries for the zones it hosts with authoritative answers,
// referrals with glue, CNAME chains, and RFC 2308 negative answers. The
// engine is transport-agnostic (Handle is a pure function of the query);
// Attach binds it to a netsim network, and cmd/authd runs it on real UDP.
package authoritative

import (
	"sort"
	"sync"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/zone"
)

// maxCNAMEChase bounds in-zone CNAME chain expansion.
const maxCNAMEChase = 8

// Stats counts served traffic.
type Stats struct {
	Queries   int64
	Responses int64
	ByRCode   map[dnswire.RCode]int64
	ByType    map[dnswire.Type]int64
	Referrals int64
	Malformed int64
	Truncated int64
	// Forced counts answers whose rcode was overridden by the
	// SetForcedRCode failure dial (disruption-phase emulation).
	Forced int64
}

// counters holds the server's scalar metrics as embedded atomics so the
// wire paths never take the zone lock just to count (see internal/metrics).
type counters struct {
	queries   metrics.Counter
	responses metrics.Counter
	referrals metrics.Counter
	malformed metrics.Counter
	truncated metrics.Counter
}

// Server hosts one or more zones at a single network address.
type Server struct {
	mu    sync.RWMutex
	zones []*zone.Zone // sorted by descending origin label count
	// zone0 backs zones for the ubiquitous single-zone server, so adding
	// the first zone allocates nothing.
	zone0   [1]*zone.Zone
	m       counters
	trace   *trace.Buffer
	port    netsim.Port
	tcpPort *netsim.TCPPort
	// byRCode and byType tally responses and queries. Fixed arrays keep
	// the per-query paths allocation-free; the rare query type outside
	// the array range falls back to a lazily built map.
	byRCode     [16]int64
	byType      [64]int64
	byTypeOther map[dnswire.Type]int64
	// Forced-rcode failure dial (SetForcedRCode), all under mu. The
	// accumulator implements deterministic error diffusion: no RNG, so a
	// run's forced-answer pattern is a pure function of arrival order.
	forcedRC    dnswire.RCode
	forcedFrac  float64
	forcedAcc   float64
	forcedNames map[string]bool
	forcedHits  int64
}

// SetForcedRCode makes the server answer frac of subsequent in-zone
// queries with rc instead of zone data, emulating an authoritative that
// stays reachable but fails (the NXDOMAIN/SERVFAIL disruption modes of
// internal/ddos.Phase). The selection is deterministic error diffusion —
// an accumulator gains frac per eligible query and a forced answer fires
// each time it crosses 1 — so the same query sequence always corrupts
// the same answers. Optional names limit the dial to those query names
// (per-record disruption). frac <= 0 clears the dial.
func (s *Server) SetForcedRCode(rc dnswire.RCode, frac float64, names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if frac <= 0 {
		s.forcedFrac, s.forcedAcc, s.forcedNames = 0, 0, nil
		return
	}
	s.forcedRC, s.forcedFrac, s.forcedAcc = rc, frac, 0
	s.forcedNames = nil
	if len(names) > 0 {
		s.forcedNames = make(map[string]bool, len(names))
		for _, n := range names {
			s.forcedNames[dnswire.CanonicalName(n)] = true
		}
	}
}

// forceRCode advances the error-diffusion accumulator for one eligible
// query and reports whether this answer's rcode is overridden.
func (s *Server) forceRCode(resp *dnswire.Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forcedFrac <= 0 {
		return false
	}
	s.forcedAcc += s.forcedFrac
	if s.forcedAcc < 1 {
		return false
	}
	s.forcedAcc--
	s.forcedHits++
	resp.RCode = s.forcedRC
	// The server is authoritative for the zone, so the forced negative
	// carries the AA bit — caches treat it like a genuine denial.
	resp.Authoritative = true
	return true
}

// SetTrace enables answer tracing (nil disables). The buffer carries its
// own clock, so the transport-agnostic Handle needs none.
func (s *Server) SetTrace(tr *trace.Buffer) { s.trace = tr }

// New creates a server hosting the given zones.
func New(zones ...*zone.Zone) *Server {
	s := &Server{}
	for _, z := range zones {
		s.AddZone(z)
	}
	return s
}

// Init prepares a single-zone server in place (the arena-friendly twin of
// New, for callers that batch-allocate servers).
func (s *Server) Init(z *zone.Zone) {
	*s = Server{}
	s.AddZone(z)
}

// AddZone adds z to the served set.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.zones == nil {
		s.zones = s.zone0[:0]
	}
	s.zones = append(s.zones, z)
	if len(s.zones) > 1 {
		sort.SliceStable(s.zones, func(i, j int) bool {
			return dnswire.CountLabels(s.zones[i].Origin()) > dnswire.CountLabels(s.zones[j].Origin())
		})
	}
}

// Zones returns the hosted zones, most specific first.
func (s *Server) Zones() []*zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*zone.Zone(nil), s.zones...)
}

// findZone returns the most specific hosted zone containing name.
func (s *Server) findZone(name string) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, z := range s.zones {
		if dnswire.IsSubdomain(name, z.Origin()) {
			return z
		}
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	out := Stats{
		Queries:   s.m.queries.Value(),
		Responses: s.m.responses.Value(),
		Referrals: s.m.referrals.Value(),
		Malformed: s.m.malformed.Value(),
		Truncated: s.m.truncated.Value(),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out.Forced = s.forcedHits
	out.ByRCode = make(map[dnswire.RCode]int64)
	for k, v := range s.byRCode {
		if v != 0 {
			out.ByRCode[dnswire.RCode(k)] = v
		}
	}
	out.ByType = make(map[dnswire.Type]int64)
	for k, v := range s.byType {
		if v != 0 {
			out.ByType[dnswire.Type(k)] = v
		}
	}
	for k, v := range s.byTypeOther {
		out.ByType[k] = v
	}
	return out
}

// CollectMetrics folds the server's counters into sc. Per-rcode and
// per-qtype tallies become counters named rcode_NOERROR, qtype_AAAA, etc.
func (s *Server) CollectMetrics(sc *metrics.Scope) {
	sc.Counter("queries").Add(s.m.queries.Value())
	sc.Counter("responses").Add(s.m.responses.Value())
	sc.Counter("referrals").Add(s.m.referrals.Value())
	sc.Counter("malformed").Add(s.m.malformed.Value())
	sc.Counter("truncated").Add(s.m.truncated.Value())
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.forcedHits != 0 {
		sc.Counter("forced_rcode").Add(s.forcedHits)
	}
	for k, v := range s.byRCode {
		if v != 0 {
			sc.Counter("rcode_" + dnswire.RCode(k).String()).Add(v)
		}
	}
	for k, v := range s.byType {
		if v != 0 {
			sc.Counter("qtype_" + dnswire.Type(k).String()).Add(v)
		}
	}
	for k, v := range s.byTypeOther {
		sc.Counter("qtype_" + k.String()).Add(v)
	}
}

// HandleWire unpacks a query, answers it, and packs the response. A nil
// return means the input should be dropped silently (malformed, or a
// response packet). Responses exceeding the client's UDP payload size
// (512 octets, or the EDNS0-advertised size) are truncated: sections
// emptied and the TC bit set, telling the client to retry over TCP.
func (s *Server) HandleWire(payload []byte) []byte {
	return s.handleWire(payload, false)
}

// HandleWireTCP is HandleWire without the UDP size limit (RFC 7766: TCP
// responses are never truncated below the 64 KiB framing bound).
func (s *Server) HandleWireTCP(payload []byte) []byte {
	return s.handleWire(payload, true)
}

// msgPool recycles decode/encode scratch messages for the wire path. The
// pool (rather than per-server scratch) keeps handleWire safe for the
// real servers in cmd/, which handle connections concurrently.
var msgPool = sync.Pool{New: func() any { return new(dnswire.Message) }}

func (s *Server) handleWire(payload []byte, tcp bool) []byte {
	return s.handleWireAppend(payload, tcp, nil)
}

// handleWireAppend is handleWire appending the response onto dst (which
// may be nil): the simulated packet path hands in a pooled buffer, the
// TCP/UDP daemons pass nil and own the returned slice.
func (s *Server) handleWireAppend(payload []byte, tcp bool, dst []byte) []byte {
	q := msgPool.Get().(*dnswire.Message)
	defer msgPool.Put(q)
	if err := dnswire.UnpackInto(q, payload); err != nil {
		s.m.malformed.Inc()
		return nil
	}
	resp := msgPool.Get().(*dnswire.Message)
	defer msgPool.Put(resp)
	if !s.handle(q, resp) {
		return nil
	}
	wire, err := resp.AppendPack(dst)
	if err != nil {
		return nil
	}
	if limit := q.UDPPayloadLimit(); !tcp && len(wire) > limit {
		s.m.truncated.Inc()
		if tr := s.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvTruncate,
				Probe: trace.ProbeFromWire(payload),
				A:     uint32(len(wire)), B: uint32(limit)})
		}
		trunc := *resp
		trunc.Truncated = true
		// RFC 6891/2181: strip the data sections but keep the OPT record,
		// so the client still sees the server's EDNS parameters and can
		// renegotiate (or fall back to TCP).
		trunc.Answers, trunc.Authorities, trunc.Additionals = nil, nil, nil
		for i := range resp.Additionals {
			if resp.Additionals[i].Type() == dnswire.TypeOPT {
				trunc.Additionals = resp.Additionals[i : i+1]
				break
			}
		}
		if wire, err = trunc.AppendPack(wire[:0]); err != nil {
			return nil
		}
	}
	return wire
}

// Handle answers a parsed query. It returns nil for messages that must be
// ignored (responses, or queries without a question).
func (s *Server) Handle(q *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{}
	if !s.handle(q, resp) {
		return nil
	}
	return resp
}

// handle answers q into resp (a response skeleton is built in place, so
// pooled messages keep their section capacity). It reports whether resp
// holds a response to send.
func (s *Server) handle(q, resp *dnswire.Message) bool {
	if q.Response {
		return false
	}
	s.m.queries.Inc()
	resp.ResetResponse(q)
	resp.RecursionAvailable = false

	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		resp.RCode = dnswire.RCodeNotImp
		s.finish(resp)
		return true
	}
	question := q.Questions[0]
	question.Name = dnswire.CanonicalName(question.Name)
	if question.Class != dnswire.ClassIN && question.Class != dnswire.ClassANY {
		resp.RCode = dnswire.RCodeRefused
		s.finish(resp)
		return true
	}
	s.mu.Lock()
	if question.Type < dnswire.Type(len(s.byType)) {
		s.byType[question.Type]++
	} else {
		if s.byTypeOther == nil {
			s.byTypeOther = make(map[dnswire.Type]int64)
		}
		s.byTypeOther[question.Type]++
	}
	// Sampled inside the critical section the tally already pays for, so
	// the disabled dial costs the fast path nothing extra.
	forcedArmed := s.forcedFrac > 0 &&
		(s.forcedNames == nil || s.forcedNames[question.Name])
	s.mu.Unlock()

	z := s.findZone(question.Name)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		s.finish(resp)
		return true
	}
	_, do, hasEDNS := q.EDNS()
	if forcedArmed && s.forceRCode(resp) {
		if hasEDNS {
			resp.AddEDNS(4096, do)
		}
		s.finish(resp)
		if tr := s.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvAuthAnswer,
				Probe: trace.ProbeFromName(question.Name),
				A:     uint32(resp.RCode), B: uint32(question.Type), Name: question.Name})
		}
		return true
	}
	s.answerFromZone(resp, z, question.Name, question.Type, 0)
	if do {
		s.addDenialProof(resp, z, question)
		s.addSignatures(resp, z)
	}
	if hasEDNS {
		resp.AddEDNS(4096, do)
	}
	s.finish(resp)
	if tr := s.trace; tr != nil {
		tr.Emit(trace.Event{Type: trace.EvAuthAnswer,
			Probe: trace.ProbeFromName(question.Name),
			A:     uint32(resp.RCode), B: uint32(question.Type), Name: question.Name})
	}
	return true
}

// addDenialProof attaches the covering NSEC record to negative responses
// (RFC 4035 §3.1.3) when the zone carries a chain. Wildcard-denial NSECs
// are not included (this implementation synthesizes no signed wildcards).
func (s *Server) addDenialProof(resp *dnswire.Message, z *zone.Zone, q dnswire.Question) {
	negative := resp.RCode == dnswire.RCodeNXDomain ||
		(resp.RCode == dnswire.RCodeNoError && len(resp.Answers) == 0 && resp.Authoritative)
	if !negative {
		return
	}
	if nsec, ok := dnssec.CoveringNSEC(z, q.Name); ok {
		resp.Authorities = append(resp.Authorities, nsec)
	}
}

// addSignatures appends the RRSIGs covering every RRset already placed in
// the answer and authority sections (RFC 4035 §3.1: signatures accompany
// the data when the DO bit is set).
func (s *Server) addSignatures(resp *dnswire.Message, z *zone.Zone) {
	appendSigs := func(section []dnswire.RR) []dnswire.RR {
		type setKey struct {
			name string
			t    dnswire.Type
		}
		seen := make(map[setKey]bool)
		out := section
		for _, rr := range section {
			k := setKey{name: dnswire.CanonicalName(rr.Name), t: rr.Type()}
			if seen[k] || k.t == dnswire.TypeRRSIG {
				continue
			}
			seen[k] = true
			for _, sigRR := range z.RRSet(k.name, dnswire.TypeRRSIG) {
				if sig, ok := sigRR.Data.(dnswire.RRSIG); ok && sig.TypeCovered == k.t {
					out = append(out, sigRR)
				}
			}
		}
		return out
	}
	resp.Answers = appendSigs(resp.Answers)
	resp.Authorities = appendSigs(resp.Authorities)
}

func (s *Server) answerFromZone(resp *dnswire.Message, z *zone.Zone, name string, qtype dnswire.Type, depth int) {
	// Records land in resp.Answers and glue in resp.Additionals without an
	// intermediate slice; the delegation branch relocates the NS set into
	// the authority section afterwards.
	ansStart := len(resp.Answers)
	kind, soa := z.AppendLookup(name, qtype, &resp.Answers, &resp.Additionals)
	switch kind {
	case zone.Success:
		resp.Authoritative = true
		if qtype == dnswire.TypeNS {
			s.addNSGlue(resp, z, resp.Answers[ansStart:])
		}
	case zone.CName:
		resp.Authoritative = true
		target := dnswire.CanonicalName(resp.Answers[ansStart].Data.(dnswire.CNAME).Target)
		if depth < maxCNAMEChase && dnswire.IsSubdomain(target, z.Origin()) {
			s.answerFromZone(resp, z, target, qtype, depth+1)
		}
	case zone.Delegation:
		// Referral: not authoritative, NS set in authority, glue in
		// additional (the Appendix A parent-side shape).
		resp.Authorities = append(resp.Authorities, resp.Answers[ansStart:]...)
		resp.Answers = resp.Answers[:ansStart]
		s.m.referrals.Inc()
	case zone.NXDomain:
		resp.Authoritative = true
		if depth == 0 {
			resp.RCode = dnswire.RCodeNXDomain
		}
		if soa.Data != nil {
			resp.Authorities = append(resp.Authorities, soa)
		}
	case zone.NoData:
		resp.Authoritative = true
		if soa.Data != nil {
			resp.Authorities = append(resp.Authorities, soa)
		}
	case zone.NotInZone:
		resp.RCode = dnswire.RCodeRefused
	}
}

// addNSGlue appends in-zone addresses for NS answer targets.
func (s *Server) addNSGlue(resp *dnswire.Message, z *zone.Zone, nsSet []dnswire.RR) {
	for _, rr := range nsSet {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		host := dnswire.CanonicalName(ns.Host)
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			start := len(resp.Additionals)
			var spill []dnswire.RR
			if kind, _ := z.AppendLookup(host, t, &resp.Additionals, &spill); kind != zone.Success {
				resp.Additionals = resp.Additionals[:start]
			}
		}
	}
}

func (s *Server) finish(resp *dnswire.Message) {
	s.m.responses.Inc()
	s.mu.Lock()
	s.byRCode[resp.RCode&0xF]++
	s.mu.Unlock()
}

// Attach binds the server to addr on the network and returns the port.
func (s *Server) Attach(net *netsim.Network, addr netsim.Addr) *netsim.Port {
	s.port = net.BindPort(addr, s.receive)
	return &s.port
}

// AttachTCP additionally binds the server on the network's TCP plane at
// addr, serving the same zones without the UDP size limit.
func (s *Server) AttachTCP(net *netsim.Network, addr netsim.Addr) *netsim.TCPPort {
	s.tcpPort = net.BindTCP(addr, s.receiveTCP)
	return s.tcpPort
}

// receiveTCP is the wire entry point for the TCP plane.
func (s *Server) receiveTCP(src netsim.Addr, payload []byte) {
	bp := wireBufPool.Get().(*[]byte)
	if out := s.handleWireAppend(payload, true, (*bp)[:0]); out != nil {
		s.tcpPort.Send(src, out)
		*bp = out[:0]
	}
	wireBufPool.Put(bp)
}

// receive is the wire entry point for the attached port.
func (s *Server) receive(src netsim.Addr, payload []byte) {
	bp := wireBufPool.Get().(*[]byte)
	if out := s.handleWireAppend(payload, false, (*bp)[:0]); out != nil {
		s.port.Send(src, out) // Send copies; out's buffer goes back to the pool
		*bp = out[:0]
	}
	wireBufPool.Put(bp)
}

// wireBufPool recycles response wire buffers for the simulated packet
// path (netsim copies payloads on Send, so a buffer is free for reuse as
// soon as Send returns).
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}
