package authoritative

import (
	"fmt"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

func TestAXFRRoundTrip(t *testing.T) {
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	s := New(z)

	q := dnswire.NewQuery(7, "cachetest.nl.", TypeAXFR)
	msgs := s.HandleAXFR(q)
	if len(msgs) == 0 {
		t.Fatal("no transfer messages")
	}
	// SOA brackets the stream.
	first := msgs[0].Answers[0]
	lastMsg := msgs[len(msgs)-1]
	last := lastMsg.Answers[len(lastMsg.Answers)-1]
	if first.Type() != dnswire.TypeSOA || last.Type() != dnswire.TypeSOA {
		t.Fatalf("SOA bracketing broken: %v ... %v", first.Type(), last.Type())
	}

	// The secondary reconstructs an identical zone.
	z2, err := LoadAXFR("cachetest.nl.", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if z2.Len() != z.Len() {
		t.Fatalf("transferred %d records, want %d", z2.Len(), z.Len())
	}
	for _, name := range z.Names() {
		for _, typ := range []dnswire.Type{dnswire.TypeSOA, dnswire.TypeNS,
			dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeCNAME, dnswire.TypeDS} {
			a, b := z.RRSet(name, typ), z2.RRSet(name, typ)
			if len(a) != len(b) {
				t.Errorf("%s %s: %d vs %d", name, typ, len(a), len(b))
			}
		}
	}
	// And the copy serves the same answers.
	s2 := New(z2)
	resp := s2.Handle(dnswire.NewQuery(1, "1414.cachetest.nl.", dnswire.TypeAAAA))
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Errorf("secondary serves %v", resp)
	}
}

func TestAXFRLargeZoneSplitsMessages(t *testing.T) {
	z, err := zone.ParseString(testZoneText, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		z.MustAdd(dnswire.RR{Name: fmt.Sprintf("h%d.cachetest.nl.", i), TTL: 60,
			Data: dnswire.A{Addr: dnswire.MustAddr(fmt.Sprintf("10.1.%d.%d", i/250, i%250+1))}})
	}
	s := New(z)
	msgs := s.HandleAXFR(dnswire.NewQuery(7, "cachetest.nl.", TypeAXFR))
	if len(msgs) < 5 {
		t.Fatalf("large transfer fit in %d messages", len(msgs))
	}
	z2, err := LoadAXFR("cachetest.nl.", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if z2.Len() != z.Len() {
		t.Errorf("transferred %d, want %d", z2.Len(), z.Len())
	}
}

func TestAXFRRefusalsAndErrors(t *testing.T) {
	s := testServer(t)
	// Unknown zone: REFUSED.
	msgs := s.HandleAXFR(dnswire.NewQuery(7, "other.nl.", TypeAXFR))
	if len(msgs) != 1 || msgs[0].RCode != dnswire.RCodeRefused {
		t.Errorf("unknown zone: %v", msgs)
	}
	// Non-AXFR queries fall through (nil).
	if msgs := s.HandleAXFR(dnswire.NewQuery(7, "cachetest.nl.", dnswire.TypeA)); msgs != nil {
		t.Error("non-AXFR handled as transfer")
	}
	// LoadAXFR rejects malformed streams.
	if _, err := LoadAXFR("x.", nil); err == nil {
		t.Error("empty transfer accepted")
	}
	bad := dnswire.NewResponse(dnswire.NewQuery(1, "x.", TypeAXFR))
	bad.Answers = []dnswire.RR{{Name: "x.", TTL: 1, Data: dnswire.A{Addr: dnswire.MustAddr("10.0.0.1")}}}
	if _, err := LoadAXFR("x.", []*dnswire.Message{bad, bad}); err == nil {
		t.Error("unbracketed transfer accepted")
	}
	refused := dnswire.NewResponse(dnswire.NewQuery(1, "x.", TypeAXFR))
	refused.RCode = dnswire.RCodeRefused
	if _, err := LoadAXFR("x.", []*dnswire.Message{refused}); err == nil {
		t.Error("refused transfer accepted")
	}
}
