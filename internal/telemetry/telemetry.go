// Package telemetry publishes live run state: a Progress tracker that
// prints throttled snapshots to a writer while a sharded run executes,
// and an optional HTTP endpoint exposing expvar counters plus
// net/http/pprof profiles. Telemetry is observation-only — it reads wall
// time for display pacing but never feeds anything back into the
// simulation, so enabling it cannot change results.
package telemetry

import (
	"bufio"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Serve starts an HTTP listener at addr exposing /debug/vars (expvar),
// /debug/pprof/, and an OpenMetrics /metrics endpoint on a private mux.
// src, when non-nil, supplies the registry snapshot /metrics renders
// (live Progress gauges are appended either way). It returns the bound
// address (useful with ":0") and a shutdown func that closes the
// listener, and never blocks. CLI callers typically discard the shutdown
// func — the endpoint is a diagnostic tap that may live for the process
// lifetime — while tests use it to release the port.
func Serve(addr string, src func() metrics.Snapshot) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", Handler(src))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	shutdown := func() error {
		// Close the raw listener too: srv.Close only knows about it once
		// the Serve goroutine has registered it, and shutdown may win
		// that race.
		err := srv.Close()
		if cerr := ln.Close(); err == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}

// Snapshot is one observation of a run in flight.
type Snapshot struct {
	CellsDone  int
	CellsTotal int
	// Events is the cumulative simulator event count across finished
	// cells; EventsPerSec relates it to wall time since Start.
	Events       int64
	EventsPerSec float64
	// SimHorizon is the furthest simulated time any finished cell
	// reached, relative to the testbed start.
	SimHorizon time.Duration
	// PeakRSSMB is the process high-water-mark RSS (VmHWM), in MiB;
	// 0 where /proc is unavailable.
	PeakRSSMB int64
	Elapsed   time.Duration
	// ETA extrapolates the remaining cells from the per-cell average so
	// far; 0 until at least one cell finished.
	ETA time.Duration
}

func (s Snapshot) String() string {
	b := fmt.Sprintf("cells %d/%d", s.CellsDone, s.CellsTotal)
	if s.Events > 0 {
		b += fmt.Sprintf("  events %d (%.0f/s)", s.Events, s.EventsPerSec)
	}
	if s.SimHorizon > 0 {
		b += fmt.Sprintf("  sim %s", s.SimHorizon.Round(time.Second))
	}
	if s.PeakRSSMB > 0 {
		b += fmt.Sprintf("  rss %dMB", s.PeakRSSMB)
	}
	if s.ETA > 0 {
		b += fmt.Sprintf("  eta %s", s.ETA.Round(time.Second))
	}
	return b
}

// Progress aggregates cell completions of a sharded run and prints
// throttled snapshots. Safe for concurrent CellDone calls from the
// worker pool. The zero value is unusable; a nil *Progress is a valid
// "telemetry off" value for every method.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	every   time.Duration
	start   time.Time
	lastOut time.Time

	cellsDone  int
	cellsTotal int
	events     int64
	simHorizon time.Duration
	finished   bool
}

// NewProgress tracks a run of cellsTotal cells, printing to w (stderr
// when nil) at most once per every (default 2 s).
func NewProgress(w io.Writer, label string, cellsTotal int, every time.Duration) *Progress {
	if w == nil {
		w = os.Stderr
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	p := &Progress{w: w, label: label, every: every,
		start: time.Now(), cellsTotal: cellsTotal}
	publishOnce.Do(func() { expvar.Publish("dikes_progress", expvar.Func(current.snapshotAny)) })
	current.set(p)
	return p
}

// publishOnce guards the process-wide expvar registration (Publish
// panics on duplicates).
var publishOnce sync.Once

// current points expvar at the most recent Progress.
var current progressRef

type progressRef struct {
	mu sync.Mutex
	p  *Progress
}

func (r *progressRef) set(p *Progress) {
	r.mu.Lock()
	r.p = p
	r.mu.Unlock()
}

// clear drops the ref, but only if it still points at p — a newer run's
// Progress must not be clobbered by a stale Finish.
func (r *progressRef) clear(p *Progress) {
	r.mu.Lock()
	if r.p == p {
		r.p = nil
	}
	r.mu.Unlock()
}

func (r *progressRef) snapshotAny() any {
	r.mu.Lock()
	p := r.p
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Snapshot()
}

// currentSnapshot returns the in-flight run's snapshot, false when no
// run is live (used by the /metrics progress gauges).
func currentSnapshot() (Snapshot, bool) {
	current.mu.Lock()
	p := current.p
	current.mu.Unlock()
	if p == nil {
		return Snapshot{}, false
	}
	return p.Snapshot(), true
}

// CellDone records one finished cell: its simulator event count and the
// simulated horizon it reached (relative to the testbed start). Prints a
// snapshot when the throttle allows.
func (p *Progress) CellDone(events int64, simHorizon time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cellsDone++
	p.events += events
	if simHorizon > p.simHorizon {
		p.simHorizon = simHorizon
	}
	now := time.Now()
	emit := now.Sub(p.lastOut) >= p.every || p.cellsDone == p.cellsTotal
	var snap Snapshot
	if emit {
		p.lastOut = now
		snap = p.snapshotLocked(now)
	}
	p.mu.Unlock()
	if emit {
		fmt.Fprintf(p.w, "%s: %s\n", p.label, snap)
	}
}

// Finish prints the final snapshot unconditionally and retires the run
// from the expvar/metrics endpoints: a scrape between runs must report
// "no run in flight", not the previous run's last snapshot frozen in
// time.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	snap := p.snapshotLocked(time.Now())
	p.mu.Unlock()
	current.clear(p)
	fmt.Fprintf(p.w, "%s: done: %s\n", p.label, snap)
}

// Snapshot returns the current observation.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked(time.Now())
}

func (p *Progress) snapshotLocked(now time.Time) Snapshot {
	s := Snapshot{
		CellsDone: p.cellsDone, CellsTotal: p.cellsTotal,
		Events: p.events, SimHorizon: p.simHorizon,
		PeakRSSMB: PeakRSSMB(), Elapsed: now.Sub(p.start),
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.EventsPerSec = float64(s.Events) / sec
	}
	if p.cellsDone > 0 && p.cellsDone < p.cellsTotal {
		perCell := s.Elapsed / time.Duration(p.cellsDone)
		s.ETA = perCell * time.Duration(p.cellsTotal-p.cellsDone)
	}
	return s
}

// PeakRSSMB reads the process peak resident set (VmHWM) from
// /proc/self/status, in MiB; 0 when unavailable (non-Linux).
func PeakRSSMB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
