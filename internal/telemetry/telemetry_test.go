package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.CellDone(100, time.Minute) // must not panic
	p.Finish()
	if s := p.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
}

func TestProgressAggregatesAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "test", 3, time.Hour) // throttle silences mid-run lines
	p.CellDone(100, time.Minute)
	p.CellDone(250, 2*time.Minute)

	s := p.Snapshot()
	if s.CellsDone != 2 || s.CellsTotal != 3 {
		t.Errorf("cells = %d/%d, want 2/3", s.CellsDone, s.CellsTotal)
	}
	if s.Events != 350 {
		t.Errorf("events = %d, want 350", s.Events)
	}
	if s.SimHorizon != 2*time.Minute {
		t.Errorf("sim horizon = %v, want the max (2m)", s.SimHorizon)
	}

	p.CellDone(50, time.Minute) // final cell prints despite the throttle
	p.Finish()
	p.Finish() // idempotent
	out := buf.String()
	if !strings.Contains(out, "cells 3/3") {
		t.Errorf("output missing final cell line:\n%s", out)
	}
	if got := strings.Count(out, "done:"); got != 1 {
		t.Errorf("Finish printed %d times, want 1:\n%s", got, out)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{CellsDone: 2, CellsTotal: 8, Events: 1000,
		EventsPerSec: 500, SimHorizon: time.Hour, ETA: 3 * time.Second}
	line := s.String()
	for _, want := range []string{"cells 2/8", "events 1000", "sim 1h0m0s", "eta 3s"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() = %q, missing %q", line, want)
		}
	}
}

func TestServeExposesVarsAndPprof(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	NewProgress(io.Discard, "serve-test", 1, time.Hour).CellDone(7, time.Second)

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "dikes_progress") {
			t.Errorf("/debug/vars missing the dikes_progress expvar")
		}
	}
}

func TestPeakRSSMB(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM requires /proc")
	}
	if got := PeakRSSMB(); got <= 0 {
		t.Errorf("PeakRSSMB = %d, want > 0 on Linux", got)
	}
}
